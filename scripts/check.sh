#!/usr/bin/env bash
# Full verification pipeline: configure, build (warnings as errors), run
# the test suite, then regenerate every figure/table.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DDSSQ_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "===== $b ====="
    "$b"
    echo
  fi
done
