#!/usr/bin/env bash
# Full verification pipeline: configure, build (warnings as errors), lint,
# run the test suite, then regenerate every figure/table.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DDSSQ_WERROR=ON
cmake --build build

# Static analysis first — it is the cheapest failure.  Build the lint and
# its CFG self-test, prove the rules still classify the fixture corpus
# correctly, then gate the real tree (src, tools, bench; the lint skips
# fixtures/ directories itself) and validate the SARIF it emits.
cmake --build build --target pmem_lint pmem_lint_cfg_selftest
ctest --test-dir build --output-on-failure -R '^pmem_lint\.'
./build/tools/pmem_lint/pmem_lint --verbose --sarif build/pmem_lint.sarif \
    src tools bench
python3 scripts/check_sarif.py build/pmem_lint.sarif

ctest --test-dir build --output-on-failure
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "===== $b ====="
    "$b"
    echo
  fi
done
