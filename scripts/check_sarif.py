#!/usr/bin/env python3
"""Structural validator for pmem_lint's SARIF 2.1.0 output.

Checks the constraints the SARIF 2.1.0 schema places on the subset of the
format pmem_lint emits (and that GitHub code scanning requires), using only
the standard library so it runs anywhere the repo builds:

  * top level: version == "2.1.0", runs is a non-empty array
  * each run: tool.driver.name present; driver.rules entries have unique
    string ids
  * each result: ruleId names a driver rule; ruleIndex (when present)
    agrees with it; level is a valid SARIF level; message.text non-empty;
    locations carry a physicalLocation with artifactLocation.uri and a
    positive integer region.startLine

Exit 0 when valid, 1 with a diagnostic per problem otherwise.
"""

import json
import sys

VALID_LEVELS = {"none", "note", "warning", "error"}


def fail(problems):
    for p in problems:
        print(f"check_sarif: {p}", file=sys.stderr)
    return 1


def check_result(result, i, rule_ids, rule_index_of, problems):
    where = f"runs[0].results[{i}]"
    rule_id = result.get("ruleId")
    if not isinstance(rule_id, str) or not rule_id:
        problems.append(f"{where}: missing or empty ruleId")
    elif rule_id not in rule_ids:
        problems.append(f"{where}: ruleId '{rule_id}' not in driver.rules")
    if "ruleIndex" in result:
        idx = result["ruleIndex"]
        if not isinstance(idx, int) or idx < 0:
            problems.append(f"{where}: ruleIndex must be a non-negative int")
        elif rule_id in rule_index_of and rule_index_of[rule_id] != idx:
            problems.append(
                f"{where}: ruleIndex {idx} disagrees with driver.rules "
                f"position {rule_index_of[rule_id]} of '{rule_id}'")
    level = result.get("level")
    if level is not None and level not in VALID_LEVELS:
        problems.append(f"{where}: invalid level '{level}'")
    message = result.get("message")
    if (not isinstance(message, dict)
            or not isinstance(message.get("text"), str)
            or not message["text"]):
        problems.append(f"{where}: message.text missing or empty")
    locations = result.get("locations", [])
    if not isinstance(locations, list) or not locations:
        problems.append(f"{where}: locations missing or empty")
        return
    for j, loc in enumerate(locations):
        phys = loc.get("physicalLocation") if isinstance(loc, dict) else None
        if not isinstance(phys, dict):
            problems.append(f"{where}.locations[{j}]: no physicalLocation")
            continue
        art = phys.get("artifactLocation")
        if not isinstance(art, dict) or not isinstance(art.get("uri"), str):
            problems.append(
                f"{where}.locations[{j}]: artifactLocation.uri missing")
        region = phys.get("region")
        if region is not None:
            start = region.get("startLine")
            if not isinstance(start, int) or start < 1:
                problems.append(
                    f"{where}.locations[{j}]: region.startLine must be a "
                    f"positive integer (got {start!r})")


def main():
    if len(sys.argv) != 2:
        print("usage: check_sarif.py <file.sarif>", file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail([f"cannot parse {sys.argv[1]}: {e}"])

    problems = []
    if doc.get("version") != "2.1.0":
        problems.append(f"version must be '2.1.0', got {doc.get('version')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return fail(problems + ["runs must be a non-empty array"])

    for r, run in enumerate(runs):
        driver = run.get("tool", {}).get("driver", {})
        if not isinstance(driver.get("name"), str) or not driver["name"]:
            problems.append(f"runs[{r}]: tool.driver.name missing")
        rules = driver.get("rules", [])
        rule_ids = set()
        rule_index_of = {}
        for k, rule in enumerate(rules):
            rid = rule.get("id") if isinstance(rule, dict) else None
            if not isinstance(rid, str) or not rid:
                problems.append(f"runs[{r}].tool.driver.rules[{k}]: bad id")
                continue
            if rid in rule_ids:
                problems.append(
                    f"runs[{r}].tool.driver.rules[{k}]: duplicate id '{rid}'")
            rule_ids.add(rid)
            rule_index_of[rid] = k
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"runs[{r}]: results must be an array")
            continue
        for i, result in enumerate(results):
            check_result(result, i, rule_ids, rule_index_of, problems)

    if problems:
        return fail(problems)
    n = sum(len(run.get("results", [])) for run in runs)
    print(f"check_sarif: OK ({n} result(s), "
          f"{len(runs)} run(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
