#!/usr/bin/env python3
"""Compare two BENCH_*.json reports (scripts/bench_diff.py).

Pairs up the (series, threads) cells of a baseline and a candidate report
(schema_version >= 1; latency columns appear with schema_version >= 2),
prints throughput and p99-latency deltas, and exits nonzero when any cell
regresses past the threshold — so CI (or a laptop) can gate a change on
"no more than X% slower, no more than X% longer tail":

    python3 scripts/bench_diff.py BENCH_fig5a.base.json BENCH_fig5a.json \
        --threshold 10

Stdlib only; no dependencies.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    if "series" not in doc:
        sys.exit(f"bench_diff: {path} is not a BENCH report (no 'series')")
    return doc


def cells(doc):
    """{(series, threads): point} for every measured cell."""
    out = {}
    for series in doc["series"]:
        for pt in series.get("points", []):
            out[(series["name"], pt["threads"])] = pt
    return out


def pct(base, cand):
    """Signed percent change, or None when the base is unusable."""
    if base is None or cand is None or base == 0:
        return None
    return (cand - base) / base * 100.0


def fmt_pct(d):
    return "     —" if d is None else f"{d:+6.1f}%"


def p99_ns(pt):
    lat = pt.get("latency_ns")
    if not lat or lat.get("count", 0) == 0:
        return None
    return lat.get("p99")


def main():
    ap = argparse.ArgumentParser(
        description="Diff two BENCH_*.json reports cell by cell.")
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=None, metavar="PCT",
                    help="fail when throughput drops more than PCT%% "
                         "(and, unless --p99-threshold overrides it, when "
                         "p99 latency grows more than PCT%%)")
    ap.add_argument("--p99-threshold", type=float, default=None,
                    metavar="PCT",
                    help="separate regression threshold for p99 latency")
    ap.add_argument("--series", action="append", default=None,
                    metavar="NAME",
                    help="restrict the diff to the named series "
                         "(repeatable; default: every shared series)")
    args = ap.parse_args()
    p99_threshold = (args.p99_threshold if args.p99_threshold is not None
                     else args.threshold)

    base_doc, cand_doc = load(args.baseline), load(args.candidate)
    base, cand = cells(base_doc), cells(cand_doc)
    if args.series is not None:
        wanted = set(args.series)
        present = {k[0] for k in base} | {k[0] for k in cand}
        for name in sorted(wanted - present):
            sys.exit(f"bench_diff: series {name!r} is in neither report")
        base = {k: v for k, v in base.items() if k[0] in wanted}
        cand = {k: v for k, v in cand.items() if k[0] in wanted}

    common = [k for k in base if k in cand]
    if not common:
        sys.exit("bench_diff: the reports share no (series, threads) cells")
    for k in sorted(set(base) - set(cand)):
        print(f"note: {k[0]}@{k[1]} only in baseline", file=sys.stderr)
    for k in sorted(set(cand) - set(base)):
        print(f"note: {k[0]}@{k[1]} only in candidate", file=sys.stderr)

    header = (f"{'series':<22} {'thr':>4} {'base Mops':>10} "
              f"{'cand Mops':>10} {'Δmops':>8} {'base p99':>10} "
              f"{'cand p99':>10} {'Δp99':>8}")
    print(header)
    print("-" * len(header))

    regressions = []
    for key in sorted(common):
        b, c = base[key], cand[key]
        d_mops = pct(b.get("mean_mops"), c.get("mean_mops"))
        bp, cp = p99_ns(b), p99_ns(c)
        d_p99 = pct(bp, cp)
        flags = []
        if (args.threshold is not None and d_mops is not None
                and d_mops < -args.threshold):
            flags.append("THROUGHPUT")
        if (p99_threshold is not None and d_p99 is not None
                and d_p99 > p99_threshold):
            flags.append("P99")
        mark = "  << " + "+".join(flags) if flags else ""
        print(f"{key[0]:<22} {key[1]:>4} "
              f"{b.get('mean_mops', 0):>10.3f} "
              f"{c.get('mean_mops', 0):>10.3f} {fmt_pct(d_mops):>8} "
              f"{bp if bp is not None else 0:>10} "
              f"{cp if cp is not None else 0:>10} {fmt_pct(d_p99):>8}"
              f"{mark}")
        if flags:
            regressions.append((key, flags))

    if regressions:
        names = ", ".join(f"{k[0]}@{k[1]} ({'+'.join(f)})"
                          for k, f in regressions)
        print(f"\nbench_diff: {len(regressions)} regression(s): {names}")
        return 1
    print("\nbench_diff: no regressions"
          + ("" if args.threshold is not None or p99_threshold is not None
             else " checked (informational run; pass --threshold to gate)"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
