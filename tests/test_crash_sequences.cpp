// Program-level crash sweeps: a fixed sequence of detectable operations is
// interrupted by a crash at EVERY instrumented point; after
// recover+resolve the queue's exact FIFO content must equal the state of
// the specification replayed over (completed ops) + (the in-flight op iff
// resolve says it took effect).  This pins down *order*, not just
// multisets, and exercises multi-operation histories (the single-op sweeps
// live in test_dss_queue_crash.cpp).
//
// A second suite runs randomized multi-era fuzzing: random op sequences,
// random crash points, random survival adversaries, across several eras,
// continuously cross-checked against the replayed specification.

#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"
#include "queues/durable_queue.hpp"

namespace dssq::queues {
namespace {

using pmem::ShadowPool;
using pmem::SimulatedCrash;
using SimQ = DssQueue<pmem::SimContext>;

struct ProgramOp {
  bool is_enq;
  Value arg;  // for enqueues
};

// The fixed test program: interleaves enqueues and dequeues, passes
// through an empty-queue point, and ends deeper than it started.
std::vector<ProgramOp> program() {
  return {
      {true, 10}, {true, 20}, {false, 0}, {false, 0}, {false, 0},  // EMPTY
      {true, 30}, {true, 40}, {false, 0}, {true, 50},
  };
}

// Replay the specification over the first `completed` operations of the
// program, plus optionally the in-flight op.  Returns the expected queue
// content in FIFO order.
std::deque<Value> replay(std::size_t completed, std::optional<bool> in_flight,
                         bool in_flight_applied) {
  std::deque<Value> q;
  const auto prog = program();
  std::size_t limit = completed;
  if (in_flight.has_value() && in_flight_applied) ++limit;
  for (std::size_t i = 0; i < limit && i < prog.size(); ++i) {
    if (prog[i].is_enq) {
      q.push_back(prog[i].arg);
    } else if (!q.empty()) {
      q.pop_front();
    }
  }
  return q;
}

class ProgramSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProgramSweep, FifoContentMatchesSpecReplayAtEveryCrashPoint) {
  const auto survival = static_cast<ShadowPool::Survival>(GetParam());
  const auto prog = program();
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 1, 128);

    std::size_t completed = 0;
    std::optional<bool> in_flight;  // is_enq of the interrupted op
    bool crashed = false;
    points.arm_countdown(k);
    try {
      for (const ProgramOp& op : prog) {
        in_flight = op.is_enq;
        if (op.is_enq) {
          q.prep_enqueue(0, op.arg);
          q.exec_enqueue(0);
        } else {
          q.prep_dequeue(0);
          (void)q.exec_dequeue(0);
        }
        in_flight.reset();
        ++completed;
      }
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash({survival, 0.5, 17 + static_cast<std::uint64_t>(k)});
    q.recover();

    // Decide from resolve whether the in-flight op applied.  A crash
    // inside prep may leave X holding the PREVIOUS completed operation's
    // record (Figure 2 case (d)), so the resolve output is attributed to
    // the in-flight op only when it matches what that op — and not a
    // stale record — would report.  All program values are distinct, so
    // the expected response disambiguates.
    bool applied = false;
    if (in_flight.has_value()) {
      const Resolved r = q.resolve(0);
      const std::deque<Value> pre = replay(completed, std::nullopt, false);
      if (*in_flight) {
        applied = r.op == Resolved::Op::kEnqueue &&
                  r.arg == prog[completed].arg && r.response.has_value();
      } else {
        const Value expect_resp = pre.empty() ? kEmpty : pre.front();
        applied = r.op == Resolved::Op::kDequeue &&
                  r.response.has_value() && *r.response == expect_resp;
      }
    }
    const std::deque<Value> expected = replay(completed, in_flight, applied);
    std::vector<Value> actual;
    q.drain_to(actual);
    EXPECT_EQ(std::vector<Value>(expected.begin(), expected.end()), actual)
        << "k=" << k << " completed=" << completed
        << " in_flight=" << (in_flight ? (*in_flight ? "enq" : "deq") : "-")
        << " applied=" << applied;
  }
}

INSTANTIATE_TEST_SUITE_P(Survival, ProgramSweep, ::testing::Values(0, 1, 2));

// ---- the durable queue under the same program ------------------------------
// The durable queue is recoverable but NOT detectable: after a crash the
// recovery phase reports the last dequeue's value via returnedValues, and
// enqueue-side ambiguity is unresolvable by the thread.  We verify the
// weaker guarantee it does give: the recovered content is the spec replay
// of the completed prefix with the in-flight op either applied or not.
class DurableProgramSweep : public ::testing::TestWithParam<int> {};

TEST_P(DurableProgramSweep, RecoveredContentIsSomeValidPrefixState) {
  const auto survival = static_cast<ShadowPool::Survival>(GetParam());
  const auto prog = program();
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    DurableQueue<pmem::SimContext> q(ctx, 1, 128);

    std::size_t completed = 0;
    std::optional<bool> in_flight;
    bool crashed = false;
    points.arm_countdown(k);
    try {
      for (const ProgramOp& op : prog) {
        in_flight = op.is_enq;
        if (op.is_enq) {
          q.enqueue(0, op.arg);
        } else {
          (void)q.dequeue(0);
        }
        in_flight.reset();
        ++completed;
      }
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash({survival, 0.5, 31 + static_cast<std::uint64_t>(k)});
    q.recover();

    std::vector<Value> actual;
    q.drain_to(actual);
    const std::deque<Value> without = replay(completed, in_flight, false);
    const std::deque<Value> with = replay(completed, in_flight, true);
    const std::vector<Value> without_v(without.begin(), without.end());
    const std::vector<Value> with_v(with.begin(), with.end());
    EXPECT_TRUE(actual == without_v || actual == with_v)
        << "k=" << k << ": recovered content is not a valid prefix state";
  }
}

INSTANTIATE_TEST_SUITE_P(Survival, DurableProgramSweep,
                         ::testing::Values(0, 1, 2));

// ---- randomized multi-era fuzzing ----------------------------------------------

TEST(CrashFuzz, MultiEraRandomProgramsStayConsistent) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Xoshiro256 rng(seed * 0x9e37);
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 1, 512);
    std::deque<Value> spec;  // the replayed specification state
    Value next = 1;

    for (int era = 0; era < 5; ++era) {
      const std::int64_t crash_after =
          static_cast<std::int64_t>(rng.next_below(60));
      points.arm_countdown(crash_after);
      bool crashed = false;
      std::optional<ProgramOp> in_flight;
      try {
        const int ops = 3 + static_cast<int>(rng.next_below(12));
        for (int i = 0; i < ops; ++i) {
          if (rng.next_bool(0.55)) {
            const Value v = next++;
            in_flight = ProgramOp{true, v};
            q.prep_enqueue(0, v);
            q.exec_enqueue(0);
            spec.push_back(v);
          } else {
            in_flight = ProgramOp{false, 0};
            q.prep_dequeue(0);
            const Value got = q.exec_dequeue(0);
            const Value want = spec.empty() ? kEmpty : spec.front();
            if (!spec.empty()) spec.pop_front();
            ASSERT_EQ(got, want) << "seed=" << seed << " era=" << era;
          }
          in_flight.reset();
        }
      } catch (const SimulatedCrash&) {
        crashed = true;
      }
      points.disarm();

      if (crashed) {
        const ShadowPool::Survival survival = static_cast<
            ShadowPool::Survival>(rng.next_below(3));
        pool.crash({survival, rng.next_double(), rng.next()});
        q.recover();
        if (in_flight.has_value()) {
          const Resolved r = q.resolve(0);
          if (in_flight->is_enq) {
            if (r.op == Resolved::Op::kEnqueue &&
                r.arg == in_flight->arg && r.response.has_value()) {
              spec.push_back(in_flight->arg);
            }
          } else if (r.op == Resolved::Op::kDequeue &&
                     r.response.has_value()) {
            // Attribute the record to the in-flight dequeue only if its
            // response matches what that dequeue would return (a stale
            // pre-crash record carries an older, distinct value — the
            // Figure 2(d) ambiguity).
            if (!spec.empty() && *r.response == spec.front()) {
              spec.pop_front();
            }
          }
        }
      }
      // Cross-check the full content at each era boundary.
      std::vector<Value> actual;
      q.drain_to(actual);
      ASSERT_EQ(actual, std::vector<Value>(spec.begin(), spec.end()))
          << "seed=" << seed << " era=" << era << " crashed=" << crashed;
    }
  }
}

}  // namespace
}  // namespace dssq::queues
