// Unit tests for the per-thread node pools.

#include <gtest/gtest.h>

#include <set>

#include "pmem/context.hpp"
#include "pmem/node_arena.hpp"
#include "queues/types.hpp"

namespace dssq::pmem {
namespace {

using queues::Node;

TEST(NodeArena, AcquireGivesDistinctAlignedSlots) {
  VolatileContext ctx(1 << 20);
  NodeArena<Node> arena(ctx, 2, 8);
  std::set<Node*> seen;
  for (int i = 0; i < 8; ++i) {
    Node* n = arena.acquire(0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(n) % kCacheLineSize, 0u);
    EXPECT_TRUE(seen.insert(n).second);
  }
}

TEST(NodeArena, ExhaustionThrowsPerThread) {
  VolatileContext ctx(1 << 20);
  NodeArena<Node> arena(ctx, 2, 2);
  arena.acquire(0);
  arena.acquire(0);
  EXPECT_THROW(arena.acquire(0), std::bad_alloc);
  // Thread 1's pool is independent.
  EXPECT_NO_THROW(arena.acquire(1));
}

TEST(NodeArena, ReleaseEnablesReuse) {
  VolatileContext ctx(1 << 20);
  NodeArena<Node> arena(ctx, 1, 1);
  Node* n = arena.acquire(0);
  arena.release(0, n);
  EXPECT_EQ(arena.acquire(0), n);
}

TEST(NodeArena, FreeCountTracksBoth) {
  VolatileContext ctx(1 << 20);
  NodeArena<Node> arena(ctx, 1, 4);
  EXPECT_EQ(arena.free_count(0), 4u);
  Node* n = arena.acquire(0);
  EXPECT_EQ(arena.free_count(0), 3u);
  arena.release(0, n);
  EXPECT_EQ(arena.free_count(0), 4u);
}

TEST(NodeArena, ForEachAllocatedVisitsHandedOutSlots) {
  VolatileContext ctx(1 << 20);
  NodeArena<Node> arena(ctx, 2, 4);
  Node* a = arena.acquire(0);
  Node* b = arena.acquire(1);
  std::set<Node*> visited;
  arena.for_each_allocated([&](std::size_t, Node* n) { visited.insert(n); });
  EXPECT_EQ(visited.size(), 2u);
  EXPECT_TRUE(visited.contains(a));
  EXPECT_TRUE(visited.contains(b));
}

TEST(NodeArena, ReleaseToOwnerFindsOwningThread) {
  VolatileContext ctx(1 << 20);
  NodeArena<Node> arena(ctx, 2, 2);
  Node* a0 = arena.acquire(0);
  Node* a1 = arena.acquire(1);
  arena.reset_volatile_state();
  // Simulated recovery: slots are returned to the threads that own them.
  arena.release_to_owner(a0);
  arena.release_to_owner(a1);
  EXPECT_EQ(arena.acquire(0), a0);
  EXPECT_EQ(arena.acquire(1), a1);
}

TEST(NodeArena, ContainsIdentifiesSlabMembership) {
  VolatileContext ctx(1 << 20);
  NodeArena<Node> arena(ctx, 1, 2);
  Node* n = arena.acquire(0);
  EXPECT_TRUE(arena.contains(n));
  Node local;
  EXPECT_FALSE(arena.contains(&local));
}

TEST(NodeArena, SlotsInsideSimPoolAreCrashCovered) {
  ShadowPool pool(1 << 16);
  CrashPoints points;
  SimContext ctx(pool, points);
  NodeArena<Node> arena(ctx, 1, 2);
  Node* n = arena.acquire(0);
  n->value = 99;
  EXPECT_TRUE(pool.contains(n)) << "sim-mode nodes must live in the pool";
  pool.crash();
  EXPECT_EQ(n->value, 0) << "unpersisted node contents must not survive";
}

TEST(NodeArena, EmptyGeometryRejected) {
  VolatileContext ctx(1 << 20);
  EXPECT_THROW((NodeArena<Node>(ctx, 0, 4)), std::invalid_argument);
  EXPECT_THROW((NodeArena<Node>(ctx, 4, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace dssq::pmem
