// Tests of the hand-crafted detectable base objects: D⟨counter⟩,
// D⟨register⟩, D⟨CAS⟩ — semantics plus exhaustive crash sweeps realizing
// the Figure 2 case analysis on real (simulated-pmem) implementations.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "objects/detectable_cas.hpp"
#include "objects/detectable_counter.hpp"
#include "objects/detectable_register.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"

namespace dssq::objects {
namespace {

struct ObjFixture : ::testing::Test {
  pmem::ShadowPool pool{1 << 20};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

// ---- counter -------------------------------------------------------------------

TEST_F(ObjFixture, CounterAddAndRead) {
  DetectableCounter<pmem::SimContext> c(ctx, 2);
  c.prep_add(0, 5);
  c.exec_add(0);
  c.prep_add(1, 3);
  c.exec_add(1);
  EXPECT_EQ(c.read(), 8);
  c.add(0, 2);  // non-detectable
  EXPECT_EQ(c.read(), 10);
}

TEST_F(ObjFixture, CounterResolveStates) {
  DetectableCounter<pmem::SimContext> c(ctx, 1);
  auto r = c.resolve(0);
  EXPECT_FALSE(r.prepared());  // (⊥, ⊥)
  c.prep_add(0, 4);
  r = c.resolve(0);
  EXPECT_TRUE(r.prepared());
  EXPECT_EQ(r.arg, 4);
  EXPECT_FALSE(r.response.has_value());
  c.exec_add(0);
  r = c.resolve(0);
  EXPECT_TRUE(r.response.has_value());
}

TEST_F(ObjFixture, CounterCrashSweepIsExact) {
  // The counter's detectability is EXACT: at every crash point, resolve's
  // answer equals whether the slot actually changed.  The two adds use
  // DISTINCT amounts — resolving repeated identical operations is
  // inherently ambiguous, which is precisely why Section 2.1 prescribes
  // an auxiliary disambiguation argument.
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 20);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    DetectableCounter<pmem::SimContext> c(ctx, 1);
    c.prep_add(0, 3);
    c.exec_add(0);  // baseline completed add: read() == 3

    bool crashed = false;
    points.arm_countdown(k);
    try {
      c.prep_add(0, 7);
      c.exec_add(0);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash();
    const auto r = c.resolve(0);
    const std::int64_t total = c.read();
    ASSERT_TRUE(total == 3 || total == 10) << "k=" << k;
    if (r.prepared() && r.arg == 7) {
      EXPECT_EQ(r.response.has_value(), total == 10)
          << "k=" << k << ": resolve must exactly match the slot";
    } else {
      // Crash before the second prep persisted: the record still
      // describes the completed first add; the second never took effect.
      EXPECT_EQ(total, 3) << "k=" << k;
      EXPECT_TRUE(r.prepared() && r.arg == 3 && r.response.has_value())
          << "k=" << k;
    }
  }
}

TEST_F(ObjFixture, CounterConcurrentSum) {
  DetectableCounter<pmem::SimContext> c(ctx, 4);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        c.prep_add(t, 1);
        c.exec_add(t);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.read(), 2000);
}

// ---- register ------------------------------------------------------------------

TEST_F(ObjFixture, RegisterWriteRead) {
  DetectableRegister<pmem::SimContext> reg(ctx, 2);
  EXPECT_EQ(reg.read(), 0);
  reg.prep_write(0, 11);
  reg.exec_write(0);
  EXPECT_EQ(reg.read(), 11);
  reg.write(1, 22);  // non-detectable
  EXPECT_EQ(reg.read(), 22);
}

TEST_F(ObjFixture, RegisterResolveFigure2Cases) {
  // Case (a): completed write resolves (write(v), OK).
  DetectableRegister<pmem::SimContext> reg(ctx, 2);
  reg.prep_write(0, 1);
  reg.exec_write(0);
  auto r = reg.resolve(0);
  EXPECT_TRUE(r.prepared());
  EXPECT_EQ(r.arg, 1);
  EXPECT_TRUE(r.took_effect());
  // Case (c): prep only.
  reg.prep_write(0, 2);
  r = reg.resolve(0);
  EXPECT_TRUE(r.prepared());
  EXPECT_EQ(r.arg, 2);
  EXPECT_FALSE(r.took_effect());
}

TEST_F(ObjFixture, RegisterOverwrittenWriteStillResolvesViaHelping) {
  // Thread 0's write completes its store but crashes before its completion
  // record persists; thread 1 then overwrites.  The helping record must
  // still let 0 resolve its write as taken-effect.
  DetectableRegister<pmem::SimContext> reg(ctx, 2);
  reg.prep_write(0, 5);
  points.arm_at_label("register:exec-write:stored");
  EXPECT_THROW(reg.exec_write(0), pmem::SimulatedCrash);
  points.disarm();
  // The store persisted (exec persists the word before the crash point).
  pool.crash({pmem::ShadowPool::Survival::kAll, 1.0, 1});
  reg.prep_write(1, 9);
  reg.exec_write(1);  // overwrites; helps thread 0 first
  const auto r = reg.resolve(0);
  EXPECT_TRUE(r.prepared());
  EXPECT_TRUE(r.took_effect())
      << "overwriting writer must have recorded 0's completion";
  EXPECT_EQ(reg.read(), 9);
}

TEST_F(ObjFixture, RegisterCrashSweepConsistent) {
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 20);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    DetectableRegister<pmem::SimContext> reg(ctx, 1);
    bool crashed = false;
    points.arm_countdown(k);
    try {
      reg.prep_write(0, 3);
      reg.exec_write(0);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;
    pool.crash();
    const auto r = reg.resolve(0);
    if (r.prepared() && r.arg == 3 && r.took_effect()) {
      EXPECT_EQ(reg.read(), 3) << "k=" << k;
    }
    if (reg.read() == 3) {
      EXPECT_TRUE(r.prepared() && r.took_effect())
          << "k=" << k << ": effect present but resolve denies it";
    }
  }
}

// ---- CAS ------------------------------------------------------------------------

TEST_F(ObjFixture, CasSuccessAndFailure) {
  DetectableCas<pmem::SimContext> cas(ctx, 2);
  cas.prep_cas(0, 0, 10);
  EXPECT_TRUE(cas.exec_cas(0));
  EXPECT_EQ(cas.read(), 10);
  cas.prep_cas(1, 0, 20);
  EXPECT_FALSE(cas.exec_cas(1));
  EXPECT_EQ(cas.read(), 10);
}

TEST_F(ObjFixture, CasResolveStates) {
  DetectableCas<pmem::SimContext> cas(ctx, 1);
  auto r = cas.resolve(0);
  EXPECT_FALSE(r.prepared());
  cas.prep_cas(0, 0, 5);
  r = cas.resolve(0);
  EXPECT_TRUE(r.prepared());
  EXPECT_FALSE(r.response.has_value());
  cas.exec_cas(0);
  r = cas.resolve(0);
  ASSERT_TRUE(r.response.has_value());
  EXPECT_TRUE(*r.response);
  cas.prep_cas(0, 99, 1);
  cas.exec_cas(0);
  r = cas.resolve(0);
  ASSERT_TRUE(r.response.has_value());
  EXPECT_FALSE(*r.response);
}

TEST_F(ObjFixture, CasOverwrittenSuccessResolvesViaHelping) {
  DetectableCas<pmem::SimContext> cas(ctx, 2);
  cas.prep_cas(0, 0, 5);
  points.arm_at_label("cas:exec:swapped");
  EXPECT_THROW(cas.exec_cas(0), pmem::SimulatedCrash);
  points.disarm();
  pool.crash({pmem::ShadowPool::Survival::kAll, 1.0, 1});
  // Thread 1 CASes the word away; it must record 0's completion first.
  cas.prep_cas(1, 5, 9);
  EXPECT_TRUE(cas.exec_cas(1));
  const auto r = cas.resolve(0);
  ASSERT_TRUE(r.response.has_value());
  EXPECT_TRUE(*r.response);
}

TEST_F(ObjFixture, CasCrashSweepConsistent) {
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 20);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    DetectableCas<pmem::SimContext> cas(ctx, 1);
    bool crashed = false;
    points.arm_countdown(k);
    try {
      cas.prep_cas(0, 0, 5);
      cas.exec_cas(0);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;
    pool.crash();
    const auto r = cas.resolve(0);
    const std::int64_t v = cas.read();
    ASSERT_TRUE(v == 0 || v == 5) << "k=" << k;
    if (r.prepared() && r.response.has_value() && *r.response) {
      EXPECT_EQ(v, 5) << "k=" << k << ": claimed success without effect";
    }
    if (v == 5) {
      EXPECT_TRUE(r.prepared() && r.response.has_value() && *r.response)
          << "k=" << k << ": effect present but resolve denies it";
    }
  }
}

TEST_F(ObjFixture, CasConcurrentExactlyOneWinnerPerRound) {
  DetectableCas<pmem::SimContext> cas(ctx, 4);
  constexpr int kRounds = 200;
  std::vector<int> wins(4, 0);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        cas.prep_cas(t, round, round + 1);
        if (cas.exec_cas(t)) ++wins[t];
        // Spin until the round is over (someone advanced the value).
        while (cas.read() == round) std::this_thread::yield();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(cas.read(), kRounds);
  EXPECT_EQ(wins[0] + wins[1] + wins[2] + wins[3], kRounds)
      << "each round must have exactly one CAS winner";
}

}  // namespace
}  // namespace dssq::objects
