// Tests of the detectable hash set: set semantics (including failing
// operations), the boolean-outcome detectability records, exhaustive
// crash sweeps, compaction, and concurrent storms.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "sets/dss_hash_set.hpp"

namespace dssq::sets {
namespace {

using SimSet = DssHashSet<pmem::SimContext>;
using pmem::ShadowPool;
using pmem::SimulatedCrash;

struct SetFixture : ::testing::Test {
  ShadowPool pool{1 << 22};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

TEST_F(SetFixture, InsertRemoveContains) {
  SimSet s(ctx, 2, 16, 64);
  EXPECT_FALSE(s.contains(0, 5));
  EXPECT_TRUE(s.insert(0, 5));
  EXPECT_TRUE(s.contains(1, 5));
  EXPECT_FALSE(s.insert(1, 5)) << "duplicate insert must fail";
  EXPECT_TRUE(s.remove(0, 5));
  EXPECT_FALSE(s.contains(0, 5));
  EXPECT_FALSE(s.remove(1, 5)) << "remove of absent must fail";
}

TEST_F(SetFixture, ReinsertAfterRemove) {
  SimSet s(ctx, 1, 4, 64);
  EXPECT_TRUE(s.insert(0, 7));
  EXPECT_TRUE(s.remove(0, 7));
  EXPECT_TRUE(s.insert(0, 7)) << "value must be insertable again";
  EXPECT_TRUE(s.contains(0, 7));
}

TEST_F(SetFixture, ManyValuesAcrossBuckets) {
  SimSet s(ctx, 1, 8, 512);
  for (Value v = 0; v < 300; ++v) EXPECT_TRUE(s.insert(0, v));
  for (Value v = 0; v < 300; ++v) EXPECT_TRUE(s.contains(0, v));
  auto snap = s.snapshot();
  std::sort(snap.begin(), snap.end());
  EXPECT_EQ(snap.size(), 300u);
  for (Value v = 0; v < 300; ++v) {
    EXPECT_EQ(snap[static_cast<std::size_t>(v)], v);
  }
}

TEST_F(SetFixture, ResolveTracksBooleanOutcomes) {
  SimSet s(ctx, 1, 4, 64);
  s.prep_insert(0, 9);
  SetResolve r = s.resolve(0);
  EXPECT_EQ(r.op, SetResolve::Op::kInsert);
  EXPECT_EQ(r.arg, 9);
  EXPECT_FALSE(r.response.has_value());

  EXPECT_TRUE(s.exec_insert(0));
  r = s.resolve(0);
  ASSERT_TRUE(r.response.has_value());
  EXPECT_TRUE(*r.response);

  s.prep_insert(0, 9);          // duplicate
  EXPECT_FALSE(s.exec_insert(0));
  r = s.resolve(0);
  ASSERT_TRUE(r.response.has_value());
  EXPECT_FALSE(*r.response) << "failed insert must resolve to false";

  s.prep_remove(0, 9);
  EXPECT_TRUE(s.exec_remove(0));
  r = s.resolve(0);
  EXPECT_EQ(r.op, SetResolve::Op::kRemove);
  EXPECT_EQ(r.arg, 9);
  ASSERT_TRUE(r.response.has_value());
  EXPECT_TRUE(*r.response);

  s.prep_remove(0, 9);          // now absent
  EXPECT_FALSE(s.exec_remove(0));
  r = s.resolve(0);
  ASSERT_TRUE(r.response.has_value());
  EXPECT_FALSE(*r.response);
}

TEST_F(SetFixture, CompactionReclaimsRemovedNodes) {
  SimSet s(ctx, 1, 4, 40);
  // 4 rounds × 30 insert+remove = 120 node uses with a 40-node pool:
  // impossible without compaction returning removed nodes.
  for (int round = 0; round < 4; ++round) {
    for (Value v = 0; v < 30; ++v) ASSERT_TRUE(s.insert(0, v));
    for (Value v = 0; v < 30; ++v) ASSERT_TRUE(s.remove(0, v));
    s.compact();
  }
  EXPECT_TRUE(s.snapshot().empty());
}

// ---- crash sweeps ---------------------------------------------------------------

class SetSweep : public ::testing::TestWithParam<int> {};

TEST_P(SetSweep, InsertEveryCrashLocationResolvesConsistently) {
  const auto survival = static_cast<ShadowPool::Survival>(GetParam());
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimSet s(ctx, 1, 4, 64);
    s.insert(0, 1);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      s.prep_insert(0, 100);
      s.exec_insert(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash({survival, 0.5, 61});
    s.recover();
    const SetResolve r = s.resolve(0);
    auto snap = s.snapshot();
    const bool present =
        std::find(snap.begin(), snap.end(), 100) != snap.end();
    if (r.op == SetResolve::Op::kInsert && r.arg == 100) {
      if (r.response.has_value()) {
        EXPECT_EQ(*r.response, present)
            << "k=" << k << ": a true insert must be present, a false "
                            "insert means a duplicate existed (impossible "
                            "here)";
        EXPECT_TRUE(*r.response) << "k=" << k;
      } else {
        EXPECT_FALSE(present) << "k=" << k;
      }
    } else {
      EXPECT_FALSE(present) << "k=" << k;
    }
    EXPECT_TRUE(std::find(snap.begin(), snap.end(), 1) != snap.end());
  }
}

TEST_P(SetSweep, RemoveEveryCrashLocationResolvesConsistently) {
  const auto survival = static_cast<ShadowPool::Survival>(GetParam());
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimSet s(ctx, 1, 4, 64);
    s.insert(0, 1);
    s.insert(0, 2);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      s.prep_remove(0, 2);
      s.exec_remove(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash({survival, 0.5, 67});
    s.recover();
    const SetResolve r = s.resolve(0);
    auto snap = s.snapshot();
    std::sort(snap.begin(), snap.end());
    const bool removed =
        std::find(snap.begin(), snap.end(), 2) == snap.end();
    if (r.op == SetResolve::Op::kRemove && r.arg == 2 &&
        r.response.has_value() && *r.response) {
      EXPECT_TRUE(removed) << "k=" << k;
    } else {
      // ⊥ or stale: the remove must not have taken effect.
      EXPECT_EQ(snap, (std::vector<Value>{1, 2})) << "k=" << k;
    }
  }
}

TEST_P(SetSweep, RemoveAbsentSweep) {
  const auto survival = static_cast<ShadowPool::Survival>(GetParam());
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimSet s(ctx, 1, 4, 64);
    s.insert(0, 1);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      s.prep_remove(0, 99);  // absent
      s.exec_remove(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash({survival, 0.5, 71});
    s.recover();
    const SetResolve r = s.resolve(0);
    if (r.op == SetResolve::Op::kRemove && r.response.has_value()) {
      EXPECT_FALSE(*r.response) << "k=" << k;
    }
    auto snap = s.snapshot();
    EXPECT_EQ(snap, (std::vector<Value>{1})) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Survival, SetSweep, ::testing::Values(0, 1, 2));

// Exactly-once retry over the whole insert+remove cycle.
TEST(SetRetry, InsertRetryExactlyOnce) {
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimSet s(ctx, 1, 4, 64);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      s.prep_insert(0, 100);
      s.exec_insert(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash();
    s.recover();
    const SetResolve r = s.resolve(0);
    const bool done = r.op == SetResolve::Op::kInsert && r.arg == 100 &&
                      r.response.has_value();
    if (!done) {
      s.prep_insert(0, 100);
      EXPECT_TRUE(s.exec_insert(0)) << "k=" << k;
    }
    auto snap = s.snapshot();
    EXPECT_EQ(std::count(snap.begin(), snap.end(), 100), 1) << "k=" << k;
  }
}

// ---- concurrency -------------------------------------------------------------------

TEST(SetConcurrent, DisjointRangesAllSucceed) {
  pmem::ShadowPool pool(1 << 24);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  SimSet s(ctx, 4, 64, 512);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (Value v = 0; v < 200; ++v) {
        ASSERT_TRUE(s.insert(t, static_cast<Value>(t) * 1000 + v));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(s.snapshot().size(), 800u);
}

TEST(SetConcurrent, ContendedSameValueExactlyOneWinner) {
  // All threads repeatedly insert the SAME value; exactly one insert per
  // "era" may succeed, and after a successful remove the next insert may
  // succeed again.
  pmem::ShadowPool pool(1 << 23);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  SimSet s(ctx, 4, 4, 4096);
  std::atomic<int> successful_inserts{0};
  std::atomic<int> successful_removes{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        if (s.insert(t, 42)) successful_inserts.fetch_add(1);
        if (s.remove(t, 42)) successful_removes.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  const int ins = successful_inserts.load();
  const int rem = successful_removes.load();
  const bool still_there = s.contains(0, 42);
  EXPECT_EQ(ins - rem, still_there ? 1 : 0)
      << "insert/remove successes must interleave one-for-one";
}

TEST(SetConcurrent, CrashStormExactlyOnce) {
  // Threads insert from disjoint ranges and remove their own earlier
  // inserts; after the crash, resolve settles each thread's in-flight
  // operation and the final membership must equal the replayed knowledge.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ShadowPool pool(1 << 24);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    constexpr std::size_t kThreads = 3;
    SimSet s(ctx, kThreads, 32, 1024);

    struct Outcome {
      std::set<Value> members;  // this thread's view of its own range
      bool crashed = false;
      bool has_pending = false;
      bool pending_is_insert = false;
      Value pending_arg = 0;
    };
    std::vector<Outcome> outcomes(kThreads);
    points.arm_countdown(350);
    {
      std::vector<std::thread> workers;
      for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
          Outcome& o = outcomes[t];
          Xoshiro256 rng(seed * 131 + t);
          const Value base = static_cast<Value>(t + 1) * 100000;
          try {
            for (int i = 0; i < 250; ++i) {
              const Value v = base + static_cast<Value>(rng.next_below(40));
              if (rng.next_bool(0.55)) {
                o.has_pending = true;
                o.pending_is_insert = true;
                o.pending_arg = v;
                s.prep_insert(t, v);
                if (s.exec_insert(t)) o.members.insert(v);
              } else {
                o.has_pending = true;
                o.pending_is_insert = false;
                o.pending_arg = v;
                s.prep_remove(t, v);
                if (s.exec_remove(t)) o.members.erase(v);
              }
              o.has_pending = false;
            }
          } catch (const SimulatedCrash&) {
            o.crashed = true;
          }
        });
      }
      for (auto& w : workers) w.join();
    }
    points.disarm();
    pool.crash({ShadowPool::Survival::kRandom, 0.5, seed * 5});
    s.recover();

    std::set<Value> expected;
    for (std::size_t t = 0; t < kThreads; ++t) {
      Outcome& o = outcomes[t];
      if (o.crashed && o.has_pending) {
        const SetResolve r = s.resolve(t);
        const bool mine =
            r.arg == o.pending_arg &&
            ((o.pending_is_insert && r.op == SetResolve::Op::kInsert) ||
             (!o.pending_is_insert && r.op == SetResolve::Op::kRemove));
        if (mine && r.response.has_value() && *r.response) {
          if (o.pending_is_insert) {
            o.members.insert(o.pending_arg);
          } else {
            o.members.erase(o.pending_arg);
          }
        }
      }
      expected.insert(o.members.begin(), o.members.end());
    }
    auto snap = s.snapshot();
    std::set<Value> actual(snap.begin(), snap.end());
    EXPECT_EQ(actual, expected) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace dssq::sets
