// Systematic interleaving exploration of the DSS queue and stack: every
// schedule of algorithm-step interleavings for small two-thread scenarios
// is executed, and every outcome is checked against the specification —
// deterministic, exhaustive (at step granularity), and replayable.

#include <gtest/gtest.h>

#include <cstring>
#include <algorithm>
#include <memory>
#include <set>

#include "dss/checker.hpp"
#include "dss/history.hpp"
#include "dss/specs/queue_spec.hpp"
#include "harness/explorer.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"
#include "queues/dss_stack.hpp"

namespace dssq::harness {
namespace {

using dss::kEmpty;
using dss::kOk;
using dss::QueueSpec;
using queues::Value;

// A self-contained world: pool + points + queue (+ recorder).
struct QueueWorld {
  pmem::ShadowPool pool{1 << 21};
  pmem::CrashPoints points_;
  pmem::SimContext ctx{pool, points_};
  queues::DssQueue<pmem::SimContext> queue{ctx, 2, 64};
  dss::HistoryRecorder<QueueSpec> recorder;

  pmem::CrashPoints& points() { return points_; }
};

TEST(Explorer, TwoEnqueuersAllInterleavingsLinearizable) {
  InterleavingExplorer explorer(/*threads=*/2);
  std::set<std::vector<Value>> outcomes;
  const auto stats = explorer.explore(
      [] { return std::make_unique<QueueWorld>(); },
      [](QueueWorld& w, std::size_t tid) {
        const Value v = static_cast<Value>(tid) + 1;
        const auto tok =
            w.recorder.invoke(static_cast<int>(tid),
                              QueueSpec::Op{QueueSpec::Enq{v}});
        w.queue.prep_enqueue(tid, v);
        w.queue.exec_enqueue(tid);
        w.recorder.respond(tok, kOk);
      },
      [&](QueueWorld& w, const InterleavingExplorer::RunHandle&) {
        std::vector<Value> rest;
        w.queue.drain_to(rest);
        outcomes.insert(rest);
        const auto res =
            dss::check_strict_linearizability(w.recorder.take());
        ASSERT_TRUE(res.linearizable) << res.message;
      });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_GT(stats.runs, 2u) << "scheduler found no interleavings to vary";
  // Both orders must actually be exercised by some schedule.
  EXPECT_TRUE(outcomes.contains({1, 2}));
  EXPECT_TRUE(outcomes.contains({2, 1}));
}

TEST(Explorer, EnqueueVersusDequeueAllOutcomesLegal) {
  // Thread 0 enqueues 7 into an EMPTY queue while thread 1 dequeues:
  // the dequeue returns 7 or EMPTY, and each outcome must be strictly
  // linearizable given the recorded overlap.
  InterleavingExplorer explorer(2);
  std::set<Value> deq_results;
  const auto stats = explorer.explore(
      [] { return std::make_unique<QueueWorld>(); },
      [&](QueueWorld& w, std::size_t tid) {
        if (tid == 0) {
          const auto tok = w.recorder.invoke(
              0, QueueSpec::Op{QueueSpec::Enq{7}});
          w.queue.prep_enqueue(0, 7);
          w.queue.exec_enqueue(0);
          w.recorder.respond(tok, kOk);
        } else {
          const auto tok =
              w.recorder.invoke(1, QueueSpec::Op{QueueSpec::Deq{}});
          w.queue.prep_dequeue(1);
          const Value v = w.queue.exec_dequeue(1);
          w.recorder.respond(tok, v);
        }
      },
      [&](QueueWorld& w, const InterleavingExplorer::RunHandle&) {
        // Reconstruct the dequeue result from the recorder BEFORE taking.
        const auto h = w.recorder.take();
        for (const auto& op : h.ops) {
          if (std::holds_alternative<QueueSpec::Deq>(op.op)) {
            deq_results.insert(*op.resp);
          }
        }
        const auto res = dss::check_strict_linearizability(h);
        ASSERT_TRUE(res.linearizable) << res.message;
      });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(deq_results.contains(7)) << "some schedule must hand over 7";
  EXPECT_TRUE(deq_results.contains(kEmpty))
      << "some schedule must dequeue before the enqueue lands";
}

TEST(Explorer, TwoDequeuersExactlyOneWinner) {
  // One seeded value, two racing detectable dequeues: in EVERY schedule
  // exactly one thread gets the value and the other gets EMPTY or loses
  // the race to a later retry (the queue has one element, so the loser
  // must see EMPTY).
  struct SeededWorld : QueueWorld {
    SeededWorld() { queue.enqueue(0, 42); }
  };
  InterleavingExplorer explorer(2);
  const auto stats = explorer.explore(
      [] { return std::make_unique<SeededWorld>(); },
      [](QueueWorld& w, std::size_t tid) {
        w.queue.prep_dequeue(tid);
        const Value v = w.queue.exec_dequeue(tid);
        auto* seeded = static_cast<SeededWorld*>(&w);
        (void)seeded;
        // Stash the result in the recorder for the check.
        const auto tok = w.recorder.invoke(
            static_cast<int>(tid), QueueSpec::Op{QueueSpec::Deq{}});
        w.recorder.respond(tok, v);
      },
      [&](QueueWorld& w, const InterleavingExplorer::RunHandle& run) {
        const auto h = w.recorder.take();
        int got_value = 0, got_empty = 0;
        for (const auto& op : h.ops) {
          if (*op.resp == 42) ++got_value;
          if (*op.resp == kEmpty) ++got_empty;
        }
        EXPECT_EQ(got_value, 1)
            << "schedule length " << run.schedule.size();
        EXPECT_EQ(got_empty, 1);
        std::vector<Value> rest;
        w.queue.drain_to(rest);
        EXPECT_TRUE(rest.empty());
      });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_GT(stats.runs, 1u);
}

// ---- the stack under the same treatment ------------------------------------------

struct StackWorld {
  pmem::ShadowPool pool{1 << 21};
  pmem::CrashPoints points_;
  pmem::SimContext ctx{pool, points_};
  queues::DssStack<pmem::SimContext> stack{ctx, 2, 64};
  std::vector<Value> pop_results;

  pmem::CrashPoints& points() { return points_; }
};

TEST(Explorer, StackPushVersusPopAllOutcomesLegal) {
  InterleavingExplorer explorer(2);
  std::set<Value> results;
  const auto stats = explorer.explore(
      [] { return std::make_unique<StackWorld>(); },
      [](StackWorld& w, std::size_t tid) {
        if (tid == 0) {
          w.stack.prep_push(0, 9);
          w.stack.exec_push(0);
        } else {
          w.stack.prep_pop(1);
          w.pop_results.push_back(w.stack.exec_pop(1));
        }
      },
      [&](StackWorld& w, const InterleavingExplorer::RunHandle&) {
        ASSERT_EQ(w.pop_results.size(), 1u);
        const Value v = w.pop_results[0];
        ASSERT_TRUE(v == 9 || v == kEmpty);
        results.insert(v);
        std::vector<Value> rest;
        w.stack.drain_to(rest);
        if (v == 9) {
          EXPECT_TRUE(rest.empty());
        } else {
          EXPECT_EQ(rest, (std::vector<Value>{9}));
        }
      });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(results.contains(9));
  EXPECT_TRUE(results.contains(kEmpty));
}

// ---- systematic crash placement within systematic interleavings -----------------

TEST(Explorer, CrashAtEveryPositionOfEveryScheduleResolvesConsistently) {
  // First enumerate the schedules of enqueue(7) vs dequeue(); then, for
  // every schedule and every crash position within it, run the truncated
  // schedule, crash the pool, recover, resolve both threads, and check
  // consistency — the multi-threaded generalization of the single-thread
  // countdown sweeps.
  InterleavingExplorer explorer(2);
  auto make_world = [] { return std::make_unique<QueueWorld>(); };
  auto body = [](QueueWorld& w, std::size_t tid) {
    if (tid == 0) {
      w.queue.prep_enqueue(0, 7);
      w.queue.exec_enqueue(0);
    } else {
      w.queue.prep_dequeue(1);
      (void)w.queue.exec_dequeue(1);
    }
  };

  // Collect the full schedules.
  std::vector<std::vector<int>> schedules;
  explorer.explore(make_world, body,
                   [&](QueueWorld&, const InterleavingExplorer::RunHandle& r) {
                     schedules.push_back(r.schedule);
                   });
  ASSERT_GT(schedules.size(), 3u);

  std::size_t crash_runs = 0;
  for (const auto& schedule : schedules) {
    for (std::size_t cut = 0; cut <= schedule.size(); ++cut) {
      const std::vector<int> prefix(schedule.begin(),
                                    schedule.begin() +
                                        static_cast<std::ptrdiff_t>(cut));
      explorer.run_truncated(prefix, make_world, body, [&](QueueWorld& w) {
        w.pool.crash({pmem::ShadowPool::Survival::kRandom, 0.5,
                      crash_runs + 1});
        w.queue.recover();
        // Consistency: resolve's answers must match the recovered state.
        const auto r0 = w.queue.resolve(0);
        const auto r1 = w.queue.resolve(1);
        std::vector<Value> rest;
        w.queue.drain_to(rest);
        const bool enq_effective =
            r0.op == queues::Resolved::Op::kEnqueue && r0.arg == 7 &&
            r0.response.has_value();
        const bool deq_got_7 =
            r1.op == queues::Resolved::Op::kDequeue &&
            r1.response.has_value() && *r1.response == 7;
        const bool in_queue =
            std::find(rest.begin(), rest.end(), 7) != rest.end();
        // 7 exists in exactly the places the records claim.
        EXPECT_EQ(enq_effective, in_queue || deq_got_7)
            << "schedule len " << schedule.size() << " cut " << cut;
        EXPECT_FALSE(in_queue && deq_got_7)
            << "value both delivered and still queued";
        if (!enq_effective) {
          EXPECT_TRUE(rest.empty());
          EXPECT_FALSE(deq_got_7);
        }
      });
      ++crash_runs;
    }
  }
  EXPECT_GT(crash_runs, 30u);
}

}  // namespace
}  // namespace dssq::harness
