// Tests of the NRL-style ensure-completion recovery adapter: for every
// crash location, recover_and_complete must return the operation's
// response with the operation applied EXACTLY once — the "ensure it took
// effect" semantics derived from the DSS primitives.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"
#include "queues/nrl_recovery.hpp"

namespace dssq::queues {
namespace {

using SimQ = DssQueue<pmem::SimContext>;
using Adapter = NrlRecoveryAdapter<pmem::SimContext>;

TEST(NrlRecovery, NothingPendingOnFreshThread) {
  pmem::ShadowPool pool(1 << 22);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  SimQ q(ctx, 1, 64);
  Adapter nrl(q);
  EXPECT_EQ(nrl.recover_and_complete(0), Adapter::kNothingPending);
}

TEST(NrlRecovery, CompletedOperationJustReturnsResponse) {
  pmem::ShadowPool pool(1 << 22);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  SimQ q(ctx, 1, 64);
  Adapter nrl(q);
  q.prep_enqueue(0, 5);
  q.exec_enqueue(0);
  EXPECT_EQ(nrl.recover_and_complete(0), kOk);
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<Value>{5})) << "must not re-apply";
}

TEST(NrlRecovery, EnqueueSweepAlwaysCompletesExactlyOnce) {
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 1, 64);
    Adapter nrl(q);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      q.prep_enqueue(0, 100);
      q.exec_enqueue(0);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash();
    q.recover();
    const Value resp = nrl.recover_and_complete(0);
    std::vector<Value> rest;
    q.drain_to(rest);
    if (resp == Adapter::kNothingPending) {
      // Crash inside prep before X persisted: NRL-style recovery has no
      // operation to complete; the value must be absent.
      EXPECT_TRUE(rest.empty()) << "k=" << k;
    } else {
      EXPECT_EQ(resp, kOk) << "k=" << k;
      EXPECT_EQ(std::count(rest.begin(), rest.end(), 100), 1)
          << "k=" << k << ": ensure-completion must be exactly-once";
    }
  }
}

TEST(NrlRecovery, DequeueSweepAlwaysReturnsAResponse) {
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 1, 64);
    Adapter nrl(q);
    for (Value v = 1; v <= 3; ++v) q.enqueue(0, v);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      q.prep_dequeue(0);
      (void)q.exec_dequeue(0);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash();
    q.recover();
    const Value resp = nrl.recover_and_complete(0);
    std::vector<Value> rest;
    q.drain_to(rest);
    if (resp == Adapter::kNothingPending) {
      EXPECT_EQ(rest, (std::vector<Value>{1, 2, 3})) << "k=" << k;
    } else {
      // One dequeue completed: its response is the old head, and the
      // remainder is exactly the other two values.
      EXPECT_EQ(resp, 1) << "k=" << k;
      EXPECT_EQ(rest, (std::vector<Value>{2, 3})) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace dssq::queues
