// Unit tests for the sequential specifications (the paper's T tuples).

#include <gtest/gtest.h>

#include "dss/specs/cas_spec.hpp"
#include "dss/specs/counter_spec.hpp"
#include "dss/specs/queue_spec.hpp"
#include "dss/specs/register_spec.hpp"
#include "dss/specs/stack_spec.hpp"

namespace dssq::dss {
namespace {

// ---- queue -------------------------------------------------------------------

TEST(QueueSpec, FifoSemantics) {
  auto s = QueueSpec::initial();
  EXPECT_EQ(QueueSpec::apply(s, QueueSpec::Enq{1}, 0), kOk);
  EXPECT_EQ(QueueSpec::apply(s, QueueSpec::Enq{2}, 1), kOk);
  EXPECT_EQ(QueueSpec::apply(s, QueueSpec::Deq{}, 2), 1);
  EXPECT_EQ(QueueSpec::apply(s, QueueSpec::Deq{}, 0), 2);
  EXPECT_EQ(QueueSpec::apply(s, QueueSpec::Deq{}, 0), kEmpty);
}

TEST(QueueSpec, EmptyDequeueLeavesStateUnchanged) {
  auto s = QueueSpec::initial();
  QueueSpec::apply(s, QueueSpec::Deq{}, 0);
  EXPECT_TRUE(s.empty());
}

TEST(QueueSpec, HashDistinguishesContentAndOrder) {
  auto a = QueueSpec::initial();
  auto b = QueueSpec::initial();
  QueueSpec::apply(a, QueueSpec::Enq{1}, 0);
  QueueSpec::apply(a, QueueSpec::Enq{2}, 0);
  QueueSpec::apply(b, QueueSpec::Enq{2}, 0);
  QueueSpec::apply(b, QueueSpec::Enq{1}, 0);
  EXPECT_NE(QueueSpec::hash(a), QueueSpec::hash(b));
}

TEST(QueueSpec, Printing) {
  EXPECT_EQ(QueueSpec::to_string(QueueSpec::Op{QueueSpec::Enq{7}}),
            "enqueue(7)");
  EXPECT_EQ(QueueSpec::to_string(QueueSpec::Op{QueueSpec::Deq{}}),
            "dequeue()");
  EXPECT_EQ(QueueSpec::resp_to_string(kOk), "OK");
  EXPECT_EQ(QueueSpec::resp_to_string(kEmpty), "EMPTY");
  EXPECT_EQ(QueueSpec::resp_to_string(42), "42");
}

TEST(QueueSpec, SentinelsAreNotAppValues) {
  EXPECT_FALSE(is_app_value(kOk));
  EXPECT_FALSE(is_app_value(kEmpty));
  EXPECT_TRUE(is_app_value(0));
  EXPECT_TRUE(is_app_value(-7));
}

// ---- register ----------------------------------------------------------------

TEST(RegisterSpec, WriteThenRead) {
  auto s = RegisterSpec::initial();
  EXPECT_EQ(RegisterSpec::apply(s, RegisterSpec::Read{}, 0), 0);
  EXPECT_EQ(RegisterSpec::apply(s, RegisterSpec::Write{5}, 0), kOk);
  EXPECT_EQ(RegisterSpec::apply(s, RegisterSpec::Read{}, 1), 5);
}

TEST(RegisterSpec, LastWriterWins) {
  auto s = RegisterSpec::initial();
  RegisterSpec::apply(s, RegisterSpec::Write{1}, 0);
  RegisterSpec::apply(s, RegisterSpec::Write{2}, 1);
  EXPECT_EQ(RegisterSpec::apply(s, RegisterSpec::Read{}, 0), 2);
}

// ---- counter -----------------------------------------------------------------

TEST(CounterSpec, FetchAddReturnsPreValue) {
  auto s = CounterSpec::initial();
  EXPECT_EQ(CounterSpec::apply(s, CounterSpec::Add{5}, 0), 0);
  EXPECT_EQ(CounterSpec::apply(s, CounterSpec::Add{3}, 1), 5);
  EXPECT_EQ(CounterSpec::apply(s, CounterSpec::Get{}, 0), 8);
}

TEST(CounterSpec, MarkerIsIgnoredByDelta) {
  auto a = CounterSpec::initial();
  auto b = CounterSpec::initial();
  CounterSpec::apply(a, CounterSpec::Add{5, /*marker=*/1}, 0);
  CounterSpec::apply(b, CounterSpec::Add{5, /*marker=*/2}, 0);
  EXPECT_EQ(a, b) << "the auxiliary argument must not affect δ";
  const CounterSpec::Op op1{CounterSpec::Add{5, 1}};
  const CounterSpec::Op op2{CounterSpec::Add{5, 2}};
  EXPECT_NE(op1, op2)
      << "...but must distinguish the operations (Section 2.1)";
}

// ---- stack -------------------------------------------------------------------

TEST(StackSpec, LifoSemantics) {
  auto s = StackSpec::initial();
  EXPECT_EQ(StackSpec::apply(s, StackSpec::Push{1}, 0), kOk);
  EXPECT_EQ(StackSpec::apply(s, StackSpec::Push{2}, 1), kOk);
  EXPECT_EQ(StackSpec::apply(s, StackSpec::Pop{}, 0), 2);
  EXPECT_EQ(StackSpec::apply(s, StackSpec::Pop{}, 0), 1);
  EXPECT_EQ(StackSpec::apply(s, StackSpec::Pop{}, 0), kEmpty);
}

TEST(StackSpec, HashOrderSensitive) {
  auto a = StackSpec::initial();
  auto b = StackSpec::initial();
  StackSpec::apply(a, StackSpec::Push{1}, 0);
  StackSpec::apply(a, StackSpec::Push{2}, 0);
  StackSpec::apply(b, StackSpec::Push{2}, 0);
  StackSpec::apply(b, StackSpec::Push{1}, 0);
  EXPECT_NE(StackSpec::hash(a), StackSpec::hash(b));
}

// ---- CAS ----------------------------------------------------------------------

TEST(CasSpec, SuccessAndFailure) {
  auto s = CasSpec::initial();
  EXPECT_EQ(CasSpec::apply(s, CasSpec::Cas{0, 10}, 0), 1);
  EXPECT_EQ(s, 10);
  EXPECT_EQ(CasSpec::apply(s, CasSpec::Cas{0, 20}, 1), 0);
  EXPECT_EQ(s, 10);
  EXPECT_EQ(CasSpec::apply(s, CasSpec::CasRead{}, 0), 10);
}

}  // namespace
}  // namespace dssq::dss
