// Tests of the PMwCAS engine: single/multi-word semantics, helping under
// contention, the persistent read protocol, private-word fast path, and
// post-crash descriptor roll-forward/back.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ebr/ebr.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "pmwcas/pmwcas.hpp"

namespace dssq::pmwcas {
namespace {

using SimEngine = Engine<pmem::SimContext>;
using PerfEngine = Engine<pmem::EmulatedNvmContext>;

struct PmwcasFixture : ::testing::Test {
  pmem::ShadowPool pool{1 << 22};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

std::atomic<std::uint64_t>* alloc_word(pmem::SimContext& ctx,
                                       std::uint64_t init = 0) {
  auto* w = pmem::alloc_object<std::atomic<std::uint64_t>>(ctx, init);
  ctx.persist(w, sizeof(*w));
  return w;
}

TEST_F(PmwcasFixture, SingleWordSuccess) {
  SimEngine eng(ctx, 2, 16);
  auto* w = alloc_word(ctx, 5);
  ebr::EpochGuard guard(eng.ebr(), 0);
  Descriptor* d = eng.allocate(0);
  eng.add_word(d, w, 5, 9);
  EXPECT_TRUE(eng.mwcas(0, d));
  EXPECT_EQ(eng.read(w), 9u);
}

TEST_F(PmwcasFixture, SingleWordFailureLeavesValue) {
  SimEngine eng(ctx, 2, 16);
  auto* w = alloc_word(ctx, 5);
  ebr::EpochGuard guard(eng.ebr(), 0);
  Descriptor* d = eng.allocate(0);
  eng.add_word(d, w, 4, 9);  // wrong expected
  EXPECT_FALSE(eng.mwcas(0, d));
  EXPECT_EQ(eng.read(w), 5u);
}

TEST_F(PmwcasFixture, MultiWordAllOrNothing) {
  SimEngine eng(ctx, 2, 16);
  auto* a = alloc_word(ctx, 1);
  auto* b = alloc_word(ctx, 2);
  auto* c = alloc_word(ctx, 3);
  ebr::EpochGuard guard(eng.ebr(), 0);
  // One mismatching word poisons the whole operation.
  Descriptor* d = eng.allocate(0);
  eng.add_word(d, a, 1, 10);
  eng.add_word(d, b, 99, 20);  // mismatch
  eng.add_word(d, c, 3, 30);
  EXPECT_FALSE(eng.mwcas(0, d));
  EXPECT_EQ(eng.read(a), 1u);
  EXPECT_EQ(eng.read(b), 2u);
  EXPECT_EQ(eng.read(c), 3u);
  // All matching: all words change.
  d = eng.allocate(0);
  eng.add_word(d, a, 1, 10);
  eng.add_word(d, b, 2, 20);
  eng.add_word(d, c, 3, 30);
  EXPECT_TRUE(eng.mwcas(0, d));
  EXPECT_EQ(eng.read(a), 10u);
  EXPECT_EQ(eng.read(b), 20u);
  EXPECT_EQ(eng.read(c), 30u);
}

TEST_F(PmwcasFixture, PrivateWordWrittenOnSuccessOnly) {
  SimEngine eng(ctx, 2, 16);
  auto* shared = alloc_word(ctx, 1);
  auto* priv = alloc_word(ctx, 100);
  ebr::EpochGuard guard(eng.ebr(), 0);
  Descriptor* d = eng.allocate(0);
  eng.add_word(d, shared, 2, 10);  // will fail
  eng.add_word(d, priv, 100, 200, /*is_private=*/true);
  EXPECT_FALSE(eng.mwcas(0, d));
  EXPECT_EQ(eng.read(priv), 100u) << "failed op must not write private word";

  d = eng.allocate(0);
  eng.add_word(d, shared, 1, 10);
  eng.add_word(d, priv, 100, 200, /*is_private=*/true);
  EXPECT_TRUE(eng.mwcas(0, d));
  EXPECT_EQ(eng.read(priv), 200u);
}

TEST_F(PmwcasFixture, ReadNeverReturnsFlaggedValue) {
  SimEngine eng(ctx, 2, 64);
  auto* w = alloc_word(ctx, 0);
  ebr::EpochGuard guard(eng.ebr(), 0);
  for (std::uint64_t i = 0; i < 32; ++i) {
    Descriptor* d = eng.allocate(0);
    eng.add_word(d, w, i, i + 1);
    ASSERT_TRUE(eng.mwcas(0, d));
    const std::uint64_t v = eng.read(w);
    EXPECT_EQ(v & kFlagsMask, 0u);
    EXPECT_EQ(v, i + 1);
  }
}

TEST_F(PmwcasFixture, DescriptorPoolRecycles) {
  SimEngine eng(ctx, 1, 8);  // tiny pool: must recycle across 1000 ops
  auto* w = alloc_word(ctx, 0);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ebr::EpochGuard guard(eng.ebr(), 0);
    Descriptor* d = eng.allocate(0);
    eng.add_word(d, w, i, i + 1);
    ASSERT_TRUE(eng.mwcas(0, d));
  }
  ebr::EpochGuard guard(eng.ebr(), 0);
  EXPECT_EQ(eng.read(w), 1000u);
}

TEST(PmwcasConcurrent, ContendedCountersStayConsistent) {
  // Two counters advanced together by a 2-word PMwCAS from many threads:
  // they must remain equal at every successful step and sum to the number
  // of successes at the end.
  pmem::EmulatedNvmContext ctx(1 << 24, pmem::EmulatedNvmBackend(
                                            pmem::EmulationParams{0, 0}));
  constexpr std::size_t kThreads = 4;
  constexpr int kSuccessTarget = 800;
  PerfEngine eng(ctx, kThreads, 128);
  auto* a = pmem::alloc_object<std::atomic<std::uint64_t>>(ctx, 0);
  auto* b = pmem::alloc_object<std::atomic<std::uint64_t>>(ctx, 0);

  std::atomic<int> successes{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (successes.load(std::memory_order_relaxed) < kSuccessTarget) {
        ebr::EpochGuard guard(eng.ebr(), t);
        Descriptor* d = eng.allocate(t);
        const std::uint64_t av = eng.read(a);
        const std::uint64_t bv = eng.read(b);
        if (av != bv) {
          // A successful PMwCAS updates both atomically, and reads help
          // in-flight operations to completion — but two separate reads
          // are not a snapshot, so unequal reads just mean "raced";
          // retry.  What must NEVER happen is a committed state with
          // a != b, which the final check verifies.
          eng.discard(t, d);
          continue;
        }
        eng.add_word(d, a, av, av + 1);
        eng.add_word(d, b, bv, bv + 1);
        if (eng.mwcas(t, d)) successes.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  ebr::EpochGuard guard(eng.ebr(), 0);
  const std::uint64_t av = eng.read(a);
  const std::uint64_t bv = eng.read(b);
  EXPECT_EQ(av, bv);
  EXPECT_GE(static_cast<int>(av), kSuccessTarget);
}

// ---- crash recovery -----------------------------------------------------------

TEST_F(PmwcasFixture, RecoveryRollsBackUndecided) {
  SimEngine eng(ctx, 1, 16);
  auto* a = alloc_word(ctx, 1);
  auto* b = alloc_word(ctx, 2);
  {
    ebr::EpochGuard guard(eng.ebr(), 0);
    Descriptor* d = eng.allocate(0);
    eng.add_word(d, a, 1, 10);
    eng.add_word(d, b, 2, 20);
    points.arm_at_label("pmwcas:pre-decision");
    EXPECT_THROW(eng.mwcas(0, d), pmem::SimulatedCrash);
    points.disarm();
  }
  pool.crash({pmem::ShadowPool::Survival::kAll, 1.0, 1});
  eng.recover();
  EXPECT_EQ(a->load() & ~kFlagsMask, 1u) << "undecided op must roll back";
  EXPECT_EQ(b->load() & ~kFlagsMask, 2u);
}

TEST_F(PmwcasFixture, RecoveryRollsForwardSucceeded) {
  SimEngine eng(ctx, 1, 16);
  auto* a = alloc_word(ctx, 1);
  auto* b = alloc_word(ctx, 2);
  {
    ebr::EpochGuard guard(eng.ebr(), 0);
    Descriptor* d = eng.allocate(0);
    eng.add_word(d, a, 1, 10);
    eng.add_word(d, b, 2, 20);
    points.arm_at_label("pmwcas:decided");
    EXPECT_THROW(eng.mwcas(0, d), pmem::SimulatedCrash);
    points.disarm();
  }
  pool.crash({pmem::ShadowPool::Survival::kAll, 1.0, 1});
  eng.recover();
  EXPECT_EQ(a->load() & ~kFlagsMask, 10u)
      << "succeeded op must roll forward";
  EXPECT_EQ(b->load() & ~kFlagsMask, 20u);
}

TEST_F(PmwcasFixture, RecoverySweepAllCrashPointsAtomicOutcome) {
  // For every crash point inside a 2-word PMwCAS, after crash+recovery the
  // words are either BOTH old or BOTH new — failure atomicity.
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimEngine eng(ctx, 1, 16);
    auto* a = alloc_word(ctx, 1);
    auto* b = alloc_word(ctx, 2);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      ebr::EpochGuard guard(eng.ebr(), 0);
      Descriptor* d = eng.allocate(0);
      eng.add_word(d, a, 1, 10);
      eng.add_word(d, b, 2, 20);
      eng.mwcas(0, d);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash();
    eng.recover();
    const std::uint64_t av = a->load() & ~kFlagsMask;
    const std::uint64_t bv = b->load() & ~kFlagsMask;
    const bool both_old = av == 1 && bv == 2;
    const bool both_new = av == 10 && bv == 20;
    EXPECT_TRUE(both_old || both_new)
        << "k=" << k << ": torn multi-word update (a=" << av << " b=" << bv
        << ")";
  }
}

TEST_F(PmwcasFixture, RecoveryIsIdempotentUnderRepeatedCrashes) {
  // Crash inside the PMwCAS, then crash inside recovery itself at every
  // point; a second recovery must still produce an atomic outcome.
  for (std::int64_t k = 0; k < 30; ++k) {
    pmem::ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimEngine eng(ctx, 1, 16);
    auto* a = alloc_word(ctx, 1);
    auto* b = alloc_word(ctx, 2);
    {
      ebr::EpochGuard guard(eng.ebr(), 0);
      Descriptor* d = eng.allocate(0);
      eng.add_word(d, a, 1, 10);
      eng.add_word(d, b, 2, 20);
      points.arm_at_label("pmwcas:decided");
      EXPECT_THROW(eng.mwcas(0, d), pmem::SimulatedCrash);
      points.disarm();
    }
    pool.crash();

    points.arm_countdown(k);
    bool recovery_crashed = false;
    try {
      eng.recover();
    } catch (const pmem::SimulatedCrash&) {
      recovery_crashed = true;
    }
    points.disarm();
    if (recovery_crashed) {
      pool.crash();
      eng.recover();
    }
    const std::uint64_t av = a->load() & ~kFlagsMask;
    const std::uint64_t bv = b->load() & ~kFlagsMask;
    const bool both_old = av == 1 && bv == 2;
    const bool both_new = av == 10 && bv == 20;
    EXPECT_TRUE(both_old || both_new) << "k=" << k << " a=" << av
                                      << " b=" << bv;
    if (!recovery_crashed) break;
  }
}

}  // namespace
}  // namespace dssq::pmwcas
