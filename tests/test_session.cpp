// Unit tests for the dss::Session facade: attach/open round trips for
// every adoptable type, the single-place root validation (absent names,
// wrong-kind roots, tampered geometry all refused), the creator path, and
// the Handle submit/poll/await surface end to end over a real heap file —
// including a second process (fork) attaching purely by name.

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "dss/session.hpp"
#include "harness/fork_crash.hpp"
#include "pmem/dss_uring.hpp"
#include "pmem/persistent_heap.hpp"
#include "pmem/slot_lease.hpp"
#include "queues/dss_queue.hpp"
#include "queues/sharded_queue.hpp"

namespace dssq::dss {
namespace {

using SingleQ = queues::DssQueue<pmem::MmapContext>;
using ShardedQ = queues::ShardedDssQueue<pmem::MmapContext>;

std::string temp_heap_path(const char* tag) {
  return ::testing::TempDir() + "dssq-session-" + tag + "-" +
         std::to_string(::getpid()) + ".bin";
}

struct PathGuard {
  std::string path;
  explicit PathGuard(std::string p) : path(std::move(p)) {
    ::unlink(path.c_str());
  }
  ~PathGuard() { ::unlink(path.c_str()); }
};

constexpr std::size_t kThreads = 2;

/// Create a heap and publish one of everything, via the Session creator
/// path; returns with the heap closed so attach() reopens it cold.
void publish_everything(const std::string& path, bool sharded) {
  Session::Options opt;
  opt.bytes = 8u << 20;
  Session s = Session::create(path, opt);
  queues::QueueRoot* qroot = nullptr;
  if (sharded) {
    ShardedQ q(s.ctx(), kThreads, 128, 2);
    qroot = q.make_root();
  } else {
    SingleQ q(s.ctx(), kThreads, 128);
    qroot = q.make_root();
  }
  harness::Oracle oracle(s.heap(), kThreads, 32);
  harness::Oracle::Root* oroot = oracle.make_root();
  void* lbase = s.heap().raw_alloc(
      pmem::SlotLeaseTable::bytes_for(kThreads), kCacheLineSize);
  pmem::SlotLeaseTable::format(lbase, kThreads, s.heap().backend());
  void* ubase = s.heap().raw_alloc(pmem::UringTable::bytes_for(kThreads, 8),
                                   kCacheLineSize);
  pmem::UringTable::format(ubase, kThreads, 8, s.heap().backend());
  s.publish<queues::QueueRoot>("t/queue", qroot);
  s.publish<harness::Oracle::Root>("t/oracle", oroot);
  s.publish<pmem::SlotLeaseTable::Header>(
      "t/leases", static_cast<pmem::SlotLeaseTable::Header*>(lbase));
  s.publish<pmem::UringTable::Header>(
      "t/rings", static_cast<pmem::UringTable::Header*>(ubase));
  s.close();
}

TEST(Session, OpensEveryPublishedTypeByName) {
  PathGuard g(temp_heap_path("open-all"));
  publish_everything(g.path, /*sharded=*/false);
  Session s = Session::attach(g.path);
  EXPECT_EQ(s.path(), g.path);
  EXPECT_EQ(s.queue_kind("t/queue"), queues::QueueRoot::kKindSingle);
  EXPECT_EQ(s.queue_kind("t/none"), 0u);

  SingleQ q = s.open<SingleQ>("t/queue");
  harness::Oracle oracle = s.open<harness::Oracle>("t/oracle");
  pmem::SlotLeaseTable leases = s.open<pmem::SlotLeaseTable>("t/leases");
  pmem::UringTable rings = s.open<pmem::UringTable>("t/rings");
  EXPECT_EQ(q.max_threads(), kThreads);
  EXPECT_EQ(oracle.threads(), kThreads);
  EXPECT_EQ(leases.slots(), kThreads);
  EXPECT_EQ(rings.slots(), kThreads);
  EXPECT_EQ(rings.capacity(), 8u);

  // The adopted queue serves.
  q.prep_enqueue(0, 11);
  q.exec_enqueue(0);
  q.prep_dequeue(0);
  EXPECT_EQ(q.exec_dequeue(0), 11);
}

TEST(Session, OpenSharded) {
  PathGuard g(temp_heap_path("sharded"));
  publish_everything(g.path, /*sharded=*/true);
  Session s = Session::attach(g.path);
  EXPECT_EQ(s.queue_kind("t/queue"), queues::QueueRoot::kKindSharded);
  ShardedQ q = s.open<ShardedQ>("t/queue");
  q.prep_enqueue(1, 22);
  q.exec_enqueue(1);
  q.prep_dequeue(1);
  EXPECT_EQ(q.exec_dequeue(1), 22);
}

TEST(Session, AbsentNameThrows) {
  PathGuard g(temp_heap_path("absent"));
  publish_everything(g.path, /*sharded=*/false);
  Session s = Session::attach(g.path);
  EXPECT_THROW(s.open<SingleQ>("no/such/thing"), std::runtime_error);
  // A name bound to a DIFFERENT type misses too: directory lookups are
  // type-tagged, so the queue name is invisible to a lease-table lookup.
  EXPECT_THROW(s.open<pmem::SlotLeaseTable>("t/queue"), std::runtime_error);
}

TEST(Session, WrongQueueKindIsRefusedAtOpen) {
  PathGuard g(temp_heap_path("kind"));
  publish_everything(g.path, /*sharded=*/false);
  Session s = Session::attach(g.path);
  // Single-lane root opened as sharded: one validate_queue_root call site
  // must catch it (and vice versa, covered by the sharded fixture).
  EXPECT_THROW(s.open<ShardedQ>("t/queue"), std::runtime_error);
}

TEST(Session, TamperedRootGeometryIsRefused) {
  PathGuard g(temp_heap_path("tamper"));
  publish_everything(g.path, /*sharded=*/false);
  Session s = Session::attach(g.path);
  auto* root = s.lookup<queues::QueueRoot>("t/queue");
  ASSERT_NE(root, nullptr);
  const auto saved = *root;

  root->magic ^= 1;
  EXPECT_THROW(s.open<SingleQ>("t/queue"), std::runtime_error);
  *root = saved;

  root->max_threads = 0;
  EXPECT_THROW(s.open<SingleQ>("t/queue"), std::runtime_error);
  *root = saved;

  root->x_addr = 0;
  EXPECT_THROW(s.open<SingleQ>("t/queue"), std::runtime_error);
  *root = saved;

  EXPECT_NO_THROW(s.open<SingleQ>("t/queue"));
}

TEST(Session, AcquireOrReclaimPrefersFreeSlot) {
  PathGuard g(temp_heap_path("lease"));
  publish_everything(g.path, /*sharded=*/false);
  Session s = Session::attach(g.path);
  auto leases = s.open<pmem::SlotLeaseTable>("t/leases");
  bool settled = false;
  const std::size_t a =
      s.acquire_or_reclaim(leases, [&](std::size_t) { settled = true; });
  ASSERT_NE(a, pmem::SlotLeaseTable::kNoSlot);
  EXPECT_FALSE(settled) << "free slots must not trigger a reclaim";
  const std::size_t b =
      s.acquire_or_reclaim(leases, [&](std::size_t) { settled = true; });
  ASSERT_NE(b, pmem::SlotLeaseTable::kNoSlot);
  // All slots held by this live process: neither path can yield one.
  EXPECT_EQ(s.acquire_or_reclaim(leases, [&](std::size_t) {}),
            pmem::SlotLeaseTable::kNoSlot);
  leases.release(a, s.heap().backend());
  leases.release(b, s.heap().backend());
}

TEST(Session, HandleSubmitPollAwaitEndToEnd) {
  PathGuard g(temp_heap_path("handle"));
  publish_everything(g.path, /*sharded=*/false);
  Session s = Session::attach(g.path);
  auto q = s.open<SingleQ>("t/queue");
  auto rings = s.open<pmem::UringTable>("t/rings");
  auto leases = s.open<pmem::SlotLeaseTable>("t/leases");
  const std::size_t slot = s.acquire_or_reclaim(leases, [](std::size_t) {});
  ASSERT_NE(slot, pmem::SlotLeaseTable::kNoSlot);

  Handle<SingleQ> h(s, q, rings, slot);
  EXPECT_EQ(h.slot(), slot);
  ASSERT_TRUE(h.submit_enqueue(31));
  ASSERT_TRUE(h.submit_enqueue(32));
  EXPECT_FALSE(h.poll().has_value()) << "nothing drained yet";
  const auto c1 = h.await();  // kSelf drain: await pumps the ring itself
  EXPECT_EQ(c1.seq, 1u);
  EXPECT_EQ(c1.result, queues::kOk);
  const auto c2 = h.await();
  EXPECT_EQ(c2.seq, 2u);
  ASSERT_TRUE(h.submit_dequeue());
  EXPECT_EQ(h.await().result, 31);
  ASSERT_TRUE(h.submit_dequeue());
  EXPECT_EQ(h.await().result, 32);
  EXPECT_EQ(h.cursor(), 4u);
  leases.release(slot, s.heap().backend());
}

#if !DSSQ_UNDER_TSAN
// Two processes, one service file: the parent publishes, a forked child
// attaches BY NAME ONLY (no inherited pointers — a fresh Session), serves
// one op through a Handle, and exits; the parent then observes the
// child's value through its own Session.
TEST(Session, SecondProcessAttachesByNameAlone) {
  PathGuard g(temp_heap_path("fork"));
  publish_everything(g.path, /*sharded=*/false);

  const std::string path = g.path;
  const harness::ChildResult res = harness::run_in_child([&] {
    Session s = Session::attach(path);
    auto q = s.open<SingleQ>("t/queue");
    auto rings = s.open<pmem::UringTable>("t/rings");
    auto leases = s.open<pmem::SlotLeaseTable>("t/leases");
    const std::size_t slot =
        s.acquire_or_reclaim(leases, [](std::size_t) {});
    if (slot == pmem::SlotLeaseTable::kNoSlot) return 3;
    Handle<SingleQ> h(s, q, rings, slot);
    if (!h.submit_enqueue(777)) return 4;
    if (h.await().result != queues::kOk) return 5;
    leases.release(slot, s.heap().backend());
    s.close();
    return 0;
  });
  ASSERT_TRUE(res.clean()) << "child exit code " << res.exit_code;

  Session s = Session::attach(path);
  auto q = s.open<SingleQ>("t/queue");
  std::vector<queues::Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<queues::Value>{777}));
}
#endif  // !DSSQ_UNDER_TSAN

}  // namespace
}  // namespace dssq::dss
