// Tests for the crash-surviving flight recorder
// (src/common/flight_recorder.hpp):
//
//   * value-type protocol — format/attach round trips, ring wraparound,
//     and the torn-tail trust protocol: a garbled tail record (a crash in
//     the middle of a record body) costs exactly the untrustworthy suffix,
//     and a record written but not yet counted (crash between body and
//     count bump) is recovered by the forward probe;
//   * forensic discovery — find() locates a block inside a larger byte
//     buffer, the way traceview scans a dead heap image;
//   * label interning — crash-point names survive to readers that never
//     saw the dead binary;
//   * process-global glue — ring leases bind, recycle at thread exit, and
//     drop (with a count) when every ring is claimed.  Glue tests skip in
//     DSSQ_TRACE=OFF builds; the value type is always compiled.

#include <gtest/gtest.h>

#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "common/cacheline.hpp"
#include "common/flight_recorder.hpp"

namespace dssq::trace {
namespace {

/// Cache-line-aligned buffer holding a freshly formatted block.
class Block {
 public:
  Block(std::size_t rings, std::size_t per_ring)
      : bytes_(FlightRecorder::bytes_for(rings, per_ring)),
        mem_(::operator new(bytes_, std::align_val_t{kCacheLineSize})),
        rec_(FlightRecorder::format(mem_, rings, per_ring)) {}
  ~Block() { ::operator delete(mem_, std::align_val_t{kCacheLineSize}); }
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  FlightRecorder& rec() noexcept { return rec_; }
  std::size_t bytes() const noexcept { return bytes_; }
  void* mem() noexcept { return mem_; }

  /// Raw slot address for ring `ring`, sequence `seq` (layout mirror of
  /// the recorder's private accessors; kept in the test so a layout change
  /// breaks loudly here).
  Record* slot(std::size_t ring, std::uint64_t seq, std::size_t rings,
               std::size_t per_ring) noexcept {
    char* p = static_cast<char*>(mem_);
    p += sizeof(RecorderHeader);
    p += sizeof(Label) * FlightRecorder::kLabelCapacity;
    p += sizeof(RingControl) * rings;
    p += (ring * per_ring + (seq - 1) % per_ring) * sizeof(Record);
    return reinterpret_cast<Record*>(p);
  }

 private:
  std::size_t bytes_;
  void* mem_;
  FlightRecorder rec_;
};

TEST(FlightRecorderValue, FormatAttachRoundTrip) {
  Block b(4, 16);
  EXPECT_TRUE(b.rec().valid());
  EXPECT_EQ(b.rec().ring_count(), 4u);
  EXPECT_EQ(b.rec().records_per_ring(), 16u);

  const FlightRecorder view = FlightRecorder::attach(b.mem(), b.bytes());
  ASSERT_TRUE(view.valid());
  EXPECT_EQ(view.ring_count(), 4u);
  EXPECT_EQ(view.records_per_ring(), 16u);

  // Too-small windows and garbage must not validate.
  EXPECT_FALSE(FlightRecorder::attach(b.mem(), 64).valid());
  char junk[256] = {};
  EXPECT_FALSE(FlightRecorder::attach(junk, sizeof junk).valid());
}

TEST(FlightRecorderValue, EmitDecodePreservesOrderAndPayload) {
  Block b(2, 32);
  b.rec().emit(0, Event::kOpBegin, Op::kEnqueue, Phase::kPrep);
  b.rec().emit(0, Event::kCasRetry);
  b.rec().emit(0, Event::kOpEnd, Op::kEnqueue, Phase::kPrep);
  b.rec().emit(1, Event::kFlush);

  const auto r0 = b.rec().decode_ring(0);
  ASSERT_EQ(r0.size(), 3u);
  EXPECT_EQ(r0[0].seq, 1u);
  EXPECT_EQ(r0[0].event, Event::kOpBegin);
  EXPECT_EQ(r0[0].op, Op::kEnqueue);
  EXPECT_EQ(r0[0].phase, Phase::kPrep);
  EXPECT_EQ(r0[1].event, Event::kCasRetry);
  EXPECT_EQ(r0[2].event, Event::kOpEnd);
  EXPECT_LE(r0[0].time_ns, r0[2].time_ns);

  const auto r1 = b.rec().decode_ring(1);
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].event, Event::kFlush);
}

TEST(FlightRecorderValue, WraparoundKeepsNewestWindow) {
  constexpr std::size_t kPerRing = 8;
  Block b(1, kPerRing);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    b.rec().emit(0, Event::kFence, Op::kNone, Phase::kNone, i);
  }
  const auto recs = b.rec().decode_ring(0);
  ASSERT_EQ(recs.size(), kPerRing);
  // Exactly the newest kPerRing records, ascending.
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].seq, 20 - kPerRing + 1 + i);
    EXPECT_EQ(recs[i].arg, recs[i].seq);
  }
}

TEST(FlightRecorderValue, TornTailRecordIsDroppedExactly) {
  constexpr std::size_t kRings = 1, kPerRing = 16;
  Block b(kRings, kPerRing);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    b.rec().emit(0, Event::kFlush, Op::kNone, Phase::kNone, i);
  }
  // Tear the newest record mid-body: its stamp no longer validates.
  Record* tail = b.slot(0, 10, kRings, kPerRing);
  tail->data ^= 0xff;

  const auto recs = b.rec().decode_ring(0);
  ASSERT_EQ(recs.size(), 9u);  // exactly the torn suffix is dropped
  EXPECT_EQ(recs.back().seq, 9u);
  EXPECT_EQ(recs.front().seq, 1u);
}

TEST(FlightRecorderValue, ForwardProbeRecoversUncountedRecord) {
  constexpr std::size_t kRings = 1, kPerRing = 16;
  Block b(kRings, kPerRing);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    b.rec().emit(0, Event::kFlush, Op::kNone, Phase::kNone, i);
  }
  // Simulate a crash between a record body and its count bump: write a
  // fully valid record for seq 6 without touching next_seq.
  Record* r = b.slot(0, 6, kRings, kPerRing);
  const std::uint64_t data =
      pack_data(Event::kCrashPointArmed, Op::kNone, Phase::kNone, 7);
  r->seq = 6;
  r->time_ns = 123;
  r->data = data;
  r->check = record_check(6, 123, data);

  EXPECT_EQ(b.rec().ring_seq(0), 5u);
  const auto recs = b.rec().decode_ring(0);
  ASSERT_EQ(recs.size(), 6u);  // the probe recovered the uncounted tail
  EXPECT_EQ(recs.back().seq, 6u);
  EXPECT_EQ(recs.back().event, Event::kCrashPointArmed);
  EXPECT_EQ(recs.back().arg, 7u);
}

TEST(FlightRecorderValue, FindLocatesBlockInsideLargerBuffer) {
  constexpr std::size_t kOffset = 4096;  // cache-line multiple
  const std::size_t block_bytes = FlightRecorder::bytes_for(2, 8);
  const std::size_t image_bytes = kOffset + block_bytes + 1024;
  char* image = static_cast<char*>(
      ::operator new(image_bytes, std::align_val_t{kCacheLineSize}));
  std::memset(image, 0x5a, image_bytes);
  FlightRecorder rec = FlightRecorder::format(image + kOffset, 2, 8);
  rec.emit(0, Event::kOpBegin, Op::kDequeue);

  const std::size_t off = FlightRecorder::find(image, image_bytes);
  EXPECT_EQ(off, kOffset);
  ASSERT_NE(off, SIZE_MAX);
  FlightRecorder view =
      FlightRecorder::attach(image + off, image_bytes - off);
  ASSERT_TRUE(view.valid());
  const auto recs = view.decode_ring(0);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].op, Op::kDequeue);
  ::operator delete(image, std::align_val_t{kCacheLineSize});

  // No block → no find.
  std::vector<char> empty(8192, '\0');
  EXPECT_EQ(FlightRecorder::find(empty.data(), empty.size()), SIZE_MAX);
}

TEST(FlightRecorderValue, LabelInterningSurvivesReattach) {
  Block b(1, 8);
  const std::uint32_t h1 = b.rec().intern_label("tail-link");
  const std::uint32_t h2 = b.rec().intern_label("tail-link");
  EXPECT_EQ(h1, h2);
  const std::uint32_t h3 = b.rec().intern_label("head-swing");
  EXPECT_NE(h1, h3);

  // A fresh view over the same bytes resolves the names (forensic reader).
  const FlightRecorder view = FlightRecorder::attach(b.mem(), b.bytes());
  ASSERT_TRUE(view.valid());
  EXPECT_STREQ(view.label(h1), "tail-link");
  EXPECT_STREQ(view.label(h3), "head-swing");
  EXPECT_EQ(view.label(0xdeadbeefu), nullptr);
}

// ---- process-global glue ----------------------------------------------------

class Glue : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kEnabled) GTEST_SKIP() << "flight recorder compiled out";
  }
  void TearDown() override { uninstall(); }
};

TEST_F(Glue, InstallBindEmitDecode) {
  Block b(3, 32);
  install(b.rec());
  {
    ThreadRing ring(1);
    op_begin(Op::kEnqueue, Phase::kExec);
    op_end(Op::kEnqueue, Phase::kExec);
  }
  uninstall();
  emit(Event::kFlush);  // after uninstall: must be a silent no-op

  const auto recs = b.rec().decode_ring(1);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].event, Event::kOpBegin);
  EXPECT_EQ(recs[1].event, Event::kOpEnd);
  EXPECT_EQ(b.rec().decode_ring(0).size(), 0u);
  EXPECT_EQ(b.rec().decode_ring(2).size(), 0u);
}

TEST_F(Glue, AnonymousLeaseIsRecycledAtThreadExit) {
  Block b(4, 32);
  install(b.rec());
  // Two sequential unbound threads: the second must reuse the lease the
  // first released at exit (leases scan from the top ring down).
  std::thread([] { emit(Event::kCasRetry); }).join();
  std::thread([] { emit(Event::kFence); }).join();
  uninstall();

  const auto recs = b.rec().decode_ring(3);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].event, Event::kCasRetry);
  EXPECT_EQ(recs[1].event, Event::kFence);
}

TEST_F(Glue, EmissionsAreDroppedAndCountedWhenRingsExhaust) {
  Block b(1, 8);
  install(b.rec());
  const std::uint64_t before = dropped();
  std::thread([] { emit(Event::kFlush); }).join();  // leases the only ring
  // A bound main thread claims ring 0 of a fresh install, so a second
  // emitter finds every ring taken.
  Block b2(1, 8);
  install(b2.rec());
  bind_ring(0);
  emit(Event::kFence);
  std::thread([] { emit(Event::kFlush); }).join();
  unbind_ring();
  uninstall();
  EXPECT_EQ(dropped(), before + 1);
  ASSERT_EQ(b2.rec().decode_ring(0).size(), 1u);
}

TEST_F(Glue, CrashPointLabelIsReadableAfterwards) {
  Block b(1, 8);
  install(b.rec());
  bind_ring(0);
  crash_point_armed("exec-enq/after-link");
  unbind_ring();
  uninstall();

  const auto recs = b.rec().decode_ring(0);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].event, Event::kCrashPointArmed);
  EXPECT_STREQ(b.rec().label(recs[0].arg), "exec-enq/after-link");
}

}  // namespace
}  // namespace dssq::trace
