// Unit tests for the slot-lease table: acquire/heartbeat/release life
// cycle, exhaustion, provable-death detection via forged {pid, birth}
// identities (no storm needed), reclaim of crashed-mid-claim and
// crashed-mid-reclaim slots, ABA generation bumps — and a real fork-and-
// SIGKILL orphan whose pending operation must be settled BEFORE its slot
// is reissued (the settle-before-reissue safety contract).

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "harness/fork_crash.hpp"
#include "pmem/backend.hpp"
#include "pmem/persistent_heap.hpp"
#include "pmem/slot_lease.hpp"
#include "queues/dss_queue.hpp"

namespace dssq::pmem {
namespace {

std::string temp_heap_path(const char* tag) {
  return ::testing::TempDir() + "dssq-lease-" + tag + "-" +
         std::to_string(::getpid()) + ".bin";
}

struct PathGuard {
  std::string path;
  explicit PathGuard(std::string p) : path(std::move(p)) {
    ::unlink(path.c_str());
  }
  ~PathGuard() { ::unlink(path.c_str()); }
};

/// A formatted lease table in a throwaway heap.
struct TableFixture {
  PathGuard guard;
  PersistentHeap heap;
  SlotLeaseTable table;

  explicit TableFixture(const char* tag, std::size_t slots)
      : guard(temp_heap_path(tag)),
        heap(guard.path, PersistentHeap::OpenMode::kCreate,
             [] {
               PersistentHeap::Options o;
               o.bytes = 4u << 20;
               return o;
             }()),
        table([&] {
          void* base = heap.raw_alloc(SlotLeaseTable::bytes_for(slots),
                                      kCacheLineSize);
          SlotLeaseTable::format(base, slots, heap.backend());
          return base;
        }()) {}
};

TEST(ClientIdentity, SelfHasALiveBirthStamp) {
  const ClientIdentity me = ClientIdentity::self();
  EXPECT_NE(me.pid, 0u);
  EXPECT_NE(me.birth, 0u);  // /proc parse worked
  EXPECT_EQ(ClientIdentity::birth_of(me.pid), me.birth);  // stable
  EXPECT_FALSE(SlotLeaseTable::provably_dead(me.pid, me.birth));
}

TEST(SlotLease, AcquireBeatReleaseLifeCycle) {
  TableFixture f("lifecycle", 3);
  const std::size_t i = f.table.acquire(f.heap.backend());
  ASSERT_NE(i, SlotLeaseTable::kNoSlot);
  const std::uint64_t w = f.table.owner_word(i);
  EXPECT_EQ(SlotLeaseTable::state_of(w), SlotLeaseTable::kHeld);
  EXPECT_EQ(SlotLeaseTable::pid_of(w),
            static_cast<std::uint32_t>(::getpid()));
  EXPECT_EQ(f.table.birth(i), ClientIdentity::self().birth);
  EXPECT_EQ(f.table.acquire_count(i), 1u);

  f.table.beat(i, f.heap.backend());
  f.table.beat(i, f.heap.backend());
  EXPECT_EQ(f.table.heartbeat(i), 2u);

  f.table.release(i, f.heap.backend());
  const std::uint64_t after = f.table.owner_word(i);
  EXPECT_EQ(SlotLeaseTable::state_of(after), SlotLeaseTable::kFree);
  EXPECT_GT(SlotLeaseTable::gen_of(after), SlotLeaseTable::gen_of(w))
      << "every transition must bump the ABA generation";
}

TEST(SlotLease, ExhaustionReturnsNoSlotWhileHoldersLive) {
  TableFixture f("exhaust", 2);
  ASSERT_NE(f.table.acquire(f.heap.backend()), SlotLeaseTable::kNoSlot);
  ASSERT_NE(f.table.acquire(f.heap.backend()), SlotLeaseTable::kNoSlot);
  // Both slots held by THIS (live) process: no free slot, and reclaim must
  // refuse too — we are demonstrably alive.
  EXPECT_EQ(f.table.acquire(f.heap.backend()), SlotLeaseTable::kNoSlot);
  EXPECT_EQ(f.table.reclaim_dead(f.heap.backend(),
                                 [](std::size_t) { FAIL(); }),
            SlotLeaseTable::kNoSlot);
}

TEST(SlotLease, ForgedDeadHolderIsReclaimedSettleFirst) {
  TableFixture f("forged", 2);
  const ClientIdentity me = ClientIdentity::self();
  // A held slot whose "owner" is this pid with the WRONG birth stamp: the
  // pid exists but is provably a different (recycled) incarnation.
  f.table.forge_owner(0, SlotLeaseTable::pack(SlotLeaseTable::kHeld, 5,
                                              me.pid),
                      me.birth + 1, f.heap.backend());
  bool settled = false;
  std::size_t settled_slot = SlotLeaseTable::kNoSlot;
  const std::size_t i =
      f.table.reclaim_dead(f.heap.backend(), [&](std::size_t s) {
        settled = true;
        settled_slot = s;
        // At settle time the slot must be claimed for reclamation but NOT
        // yet reissued as held.
        EXPECT_EQ(SlotLeaseTable::state_of(f.table.owner_word(s)),
                  SlotLeaseTable::kReclaiming);
      });
  ASSERT_EQ(i, 0u);
  EXPECT_TRUE(settled);
  EXPECT_EQ(settled_slot, 0u);
  const std::uint64_t w = f.table.owner_word(0);
  EXPECT_EQ(SlotLeaseTable::state_of(w), SlotLeaseTable::kHeld);
  EXPECT_EQ(SlotLeaseTable::pid_of(w), me.pid);
  EXPECT_EQ(f.table.birth(0), me.birth);  // our identity now
  EXPECT_EQ(f.table.reclaim_count(0), 1u);
  EXPECT_EQ(f.table.total_reclaims(), 1u);
}

TEST(SlotLease, NonexistentPidIsDeadCrashedClaimAndReclaimToo) {
  TableFixture f("states", 3);
  // A pid from the far end of the default pid space: overwhelmingly
  // nonexistent, and birth_of() returning 0 proves it either way.  The
  // mid-transition slots below need the pid GONE (not merely recycled),
  // so guard on the stricter predicate.
  const std::uint32_t ghost = 4194000;
  if (!SlotLeaseTable::provably_gone(ghost)) {
    GTEST_SKIP() << "pid " << ghost << " exists on this machine";
  }
  // Dead holders in every non-free state are reclaimable: a crash can
  // strand a slot mid-claim (kClaiming) or mid-reclaim (kReclaiming) just
  // as well as mid-hold.
  f.table.forge_owner(
      0, SlotLeaseTable::pack(SlotLeaseTable::kHeld, 1, ghost), 12345,
      f.heap.backend());
  f.table.forge_owner(
      1, SlotLeaseTable::pack(SlotLeaseTable::kClaiming, 1, ghost), 12345,
      f.heap.backend());
  f.table.forge_owner(
      2, SlotLeaseTable::pack(SlotLeaseTable::kReclaiming, 1, ghost), 12345,
      f.heap.backend());
  std::size_t reclaimed = 0;
  while (f.table.reclaim_dead(f.heap.backend(), [](std::size_t) {}) !=
         SlotLeaseTable::kNoSlot) {
    ++reclaimed;
  }
  EXPECT_EQ(reclaimed, 3u);
  EXPECT_EQ(f.table.total_reclaims(), 3u);
}

// The lost-update guard: a slot still mid-transition (kClaiming or
// kReclaiming) may carry the PREVIOUS generation's birth stamp, so a
// birth mismatch there proves nothing.  While the recorded pid lives,
// reclaim must refuse — else a stalled claimer's pending birth store
// could land on a usurper's live lease and poison its death verdicts.
TEST(SlotLease, MidTransitionLiveHolderIsNeverUsurpedByBirthMismatch) {
  TableFixture f("midclaim", 2);
  const ClientIdentity me = ClientIdentity::self();
  // Our live pid, mid-claim, with a stale (mismatched) birth stamp —
  // exactly what a reclaimer racing our acquire() would observe.
  f.table.forge_owner(0, SlotLeaseTable::pack(SlotLeaseTable::kClaiming, 7,
                                              me.pid),
                      me.birth + 1, f.heap.backend());
  f.table.forge_owner(1, SlotLeaseTable::pack(SlotLeaseTable::kReclaiming, 7,
                                              me.pid),
                      me.birth + 1, f.heap.backend());
  EXPECT_EQ(f.table.reclaim_dead(f.heap.backend(),
                                 [](std::size_t) { FAIL(); }),
            SlotLeaseTable::kNoSlot)
      << "a live mid-transition holder must not be usurped on birth alone";
  // The same stale stamp on a HELD slot IS a verdict (the holder itself
  // wrote the stamp there): reclaim must take slot 0 once it is kHeld.
  f.table.forge_owner(0, SlotLeaseTable::pack(SlotLeaseTable::kHeld, 8,
                                              me.pid),
                      me.birth + 1, f.heap.backend());
  EXPECT_EQ(f.table.reclaim_dead(f.heap.backend(), [](std::size_t) {}), 0u);
}

// A settle callback that throws must not wedge the slot on the live
// reclaimer's pid: the takeover is abandoned as kReclaiming(pid 0) —
// provably dead — so the next reclaimer (even the thrower) can retry.
TEST(SlotLease, SettleThrowAbandonsTakeoverReclaimably) {
  TableFixture f("throw", 1);
  f.table.forge_owner(0, SlotLeaseTable::pack(SlotLeaseTable::kHeld, 3,
                                              ClientIdentity::self().pid),
                      ClientIdentity::self().birth + 1, f.heap.backend());
  EXPECT_THROW(f.table.reclaim_dead(
                   f.heap.backend(),
                   [](std::size_t) { throw std::runtime_error("settle"); }),
               std::runtime_error);
  const std::uint64_t w = f.table.owner_word(0);
  EXPECT_EQ(SlotLeaseTable::state_of(w), SlotLeaseTable::kReclaiming);
  EXPECT_EQ(SlotLeaseTable::pid_of(w), 0u) << "abandoned, not wedged";
  // Retry settles and serves.
  bool settled = false;
  EXPECT_EQ(f.table.reclaim_dead(f.heap.backend(),
                                 [&](std::size_t) { settled = true; }),
            0u);
  EXPECT_TRUE(settled);
  EXPECT_EQ(SlotLeaseTable::state_of(f.table.owner_word(0)),
            SlotLeaseTable::kHeld);
}

#if !DSSQ_UNDER_TSAN
// The real thing: a forked client leases a slot, prepares a detectable
// enqueue, and dies by SIGKILL.  The parent reclaims the orphaned lease;
// the settle callback runs the dead client's per-slot recovery and settles
// its pending op BEFORE the slot is reissued — then the exactly-once
// multiset over the shared oracle must hold.  (Fork tests are compiled out
// under TSan, which cannot follow the child.)
TEST(SlotLease, SigkilledClientIsSettledBeforeReissue) {
  PathGuard g(temp_heap_path("orphan"));
  constexpr std::size_t kSlots = 2;
  PersistentHeap::Options opt;
  opt.bytes = 8u << 20;
  PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
  MmapContext ctx(heap);
  queues::DssQueue<MmapContext> q(ctx, kSlots, 128);
  harness::Oracle oracle(heap, kSlots, 64);
  (void)q.make_root();  // shared-serving mode (durable cursors, no reuse)
  void* lbase =
      heap.raw_alloc(SlotLeaseTable::bytes_for(kSlots), kCacheLineSize);
  SlotLeaseTable::format(lbase, kSlots, heap.backend());
  SlotLeaseTable leases(lbase);

  // The child inherits the MAP_SHARED mapping, so its persisted writes are
  // the parent's too — process death is real, re-mapping is not needed.
  const harness::ChildResult res = harness::run_in_child([&] {
    const std::size_t slot = leases.acquire(heap.backend());
    if (slot == SlotLeaseTable::kNoSlot) return 3;
    const queues::Value v = oracle.begin_enqueue(slot);
    q.prep_enqueue(slot, v);
    q.exec_enqueue(slot);  // effect lands; completion record never does
    ::kill(::getpid(), SIGKILL);
    return 125;
  });
  ASSERT_TRUE(res.sigkilled());

  // The orphan's lease is held by a provably dead pid.  Reclaim it; the
  // settle callback must observe and resolve the pending enqueue.
  std::size_t settled = 0;
  std::size_t lost = 0;
  const std::size_t i =
      leases.reclaim_dead(heap.backend(), [&](std::size_t t) {
        oracle.repair_slot(t);
        q.recover_independent(t);
        harness::settle_pending(q, oracle, t, &settled, &lost);
      });
  ASSERT_NE(i, SlotLeaseTable::kNoSlot);
  EXPECT_EQ(settled + lost, 1u) << "the orphan died with one op in flight";
  EXPECT_EQ(settled, 1u) << "exec completed, so the enqueue took effect";

  // The slot serves again — and the settled value is in the queue exactly
  // once, never doubled by the reissue.
  oracle.begin_dequeue(i);
  q.prep_dequeue(i);
  const queues::Value got = q.exec_dequeue(i);
  oracle.complete_dequeue(i, got);
  const harness::VerifyResult vr = harness::verify_exactly_once(q, oracle);
  EXPECT_TRUE(vr.ok) << vr.error;
  EXPECT_EQ(vr.enqueued, 1u);
  EXPECT_EQ(vr.dequeued, 1u);
  EXPECT_EQ(vr.remaining, 0u);
  heap.close();
}
#endif  // !DSSQ_UNDER_TSAN

}  // namespace
}  // namespace dssq::pmem
