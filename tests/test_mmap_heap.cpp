// Unit tests for the file-backed persistence subsystem: MmapBackend,
// PersistentHeap (header validation, generation protocol, fixed-base
// re-mapping, positional allocation replay), tagged pointers over real
// mapped addresses, and an in-process crash→attach→recover round trip of
// the DSS queue.  The cross-process SIGKILL version of the last scenario
// lives in tools/crashrun (exercised by the crashrun.smoke ctest and the
// CI crash-restart job).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "harness/fork_crash.hpp"
#include "pmem/persistent_heap.hpp"
#include "queues/dss_queue.hpp"

namespace dssq::pmem {
namespace {

std::string temp_heap_path(const char* tag) {
  return ::testing::TempDir() + "dssq-heap-" + tag + "-" +
         std::to_string(::getpid()) + ".bin";
}

/// RAII unlink so failing tests do not leak files between runs.
struct PathGuard {
  std::string path;
  explicit PathGuard(std::string p) : path(std::move(p)) {
    ::unlink(path.c_str());
  }
  ~PathGuard() { ::unlink(path.c_str()); }
};

TEST(PersistentHeap, CreateOpenRoundTripsDataAtSameBase) {
  PathGuard g(temp_heap_path("roundtrip"));
  PersistentHeap::Options opt;
  opt.bytes = 1u << 20;
  std::uintptr_t base = 0;
  std::uintptr_t payload_addr = 0;
  {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
    EXPECT_FALSE(heap.recovered());
    EXPECT_EQ(heap.generation(), 1u);
    base = reinterpret_cast<std::uintptr_t>(heap.base());
    auto* p = static_cast<std::uint64_t*>(
        heap.raw_alloc(sizeof(std::uint64_t), alignof(std::uint64_t)));
    *p = 0xfeedface;
    heap.persist(p, sizeof(*p));
    payload_addr = reinterpret_cast<std::uintptr_t>(p);
    std::memcpy(heap.root(), "cfg!", 4);
    heap.persist(heap.root(), 4);
    heap.close();
  }
  {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kOpen);
    EXPECT_TRUE(heap.recovered());
    EXPECT_TRUE(heap.previous_shutdown_clean());
    EXPECT_EQ(heap.generation(), 2u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(heap.base()), base);
    // Positional allocation replay hands back the same address…
    auto* p = static_cast<std::uint64_t*>(
        heap.raw_alloc(sizeof(std::uint64_t), alignof(std::uint64_t)));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p), payload_addr);
    // …and the bytes written before close are there.
    EXPECT_EQ(*p, 0xfeedfaceu);
    EXPECT_EQ(std::memcmp(heap.root(), "cfg!", 4), 0);
    heap.close();
  }
}

TEST(PersistentHeap, DirtyTeardownReadsAsCrash) {
  PathGuard g(temp_heap_path("dirty"));
  PersistentHeap::Options opt;
  opt.bytes = 1u << 20;
  {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
    heap.close();
  }
  {
    // Destroyed without close(): crash-equivalent.
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kOpen);
    EXPECT_TRUE(heap.previous_shutdown_clean());
  }
  {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kOpen);
    EXPECT_FALSE(heap.previous_shutdown_clean());
    EXPECT_EQ(heap.generation(), 3u);  // every open bumps, clean or not
    heap.close();
  }
}

TEST(PersistentHeap, ContainsAndDisengagedBackendScratch) {
  PathGuard g(temp_heap_path("contains"));
  PersistentHeap::Options opt;
  opt.bytes = 1u << 20;
  PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
  void* inside = heap.raw_alloc(64, 64);
  int outside = 0;
  EXPECT_TRUE(heap.contains(inside));
  EXPECT_FALSE(heap.contains(&outside));
  // Persisting a DRAM address through the heap backend must be a no-op,
  // not an msync fault: contexts persist stack temporaries too.
  heap.persist(&outside, sizeof(outside));
  heap.close();
}

// ---- header validation: corrupt heaps are refused with a clear error ----

/// Clobber `len` bytes at `off` in the (closed) heap file.
void clobber(const std::string& path, off_t off, const void* bytes,
             std::size_t len) {
  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::pwrite(fd, bytes, len, off), static_cast<ssize_t>(len));
  ::close(fd);
}

void make_closed_heap(const std::string& path) {
  PersistentHeap::Options opt;
  opt.bytes = 1u << 20;
  PersistentHeap heap(path, PersistentHeap::OpenMode::kCreate, opt);
  heap.close();
}

void expect_refused(const std::string& path, const char* needle) {
  try {
    PersistentHeap heap(path, PersistentHeap::OpenMode::kOpen);
    FAIL() << "open() accepted a corrupt heap (wanted error containing '"
           << needle << "')";
  } catch (const HeapOpenError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(PersistentHeapCorruption, BadMagicIsRefused) {
  PathGuard g(temp_heap_path("magic"));
  make_closed_heap(g.path);
  const std::uint64_t junk = 0x1122334455667788ULL;
  clobber(g.path, offsetof(HeapHeader, magic), &junk, sizeof(junk));
  expect_refused(g.path, "bad magic");
}

TEST(PersistentHeapCorruption, UnsupportedVersionIsRefused) {
  PathGuard g(temp_heap_path("version"));
  make_closed_heap(g.path);
  // Bump version AND fix the checksum: the version check must fire on its
  // own, not by riding the checksum mismatch.
  HeapHeader h{};
  {
    const int fd = ::open(g.path.c_str(), O_RDONLY);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::pread(fd, &h, sizeof(h), 0), static_cast<ssize_t>(sizeof(h)));
    ::close(fd);
  }
  h.version = PersistentHeap::kVersion + 7;
  h.checksum = PersistentHeap::header_checksum(h);
  clobber(g.path, 0, &h, sizeof(h));
  expect_refused(g.path, "unsupported layout version");
}

TEST(PersistentHeapCorruption, TornChecksumIsRefused) {
  PathGuard g(temp_heap_path("checksum"));
  make_closed_heap(g.path);
  // Any checksummed field changed without a checksum update must refuse
  // the open (the v2 header is immutable, so EVERY field is covered).
  const std::uint64_t db = 999;
  clobber(g.path, offsetof(HeapHeader, dir_bytes), &db, sizeof(db));
  expect_refused(g.path, "checksum mismatch");
}

TEST(PersistentHeapCorruption, TruncatedFileIsRefused) {
  PathGuard g(temp_heap_path("truncated"));
  make_closed_heap(g.path);
  const int fd = ::open(g.path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 1 << 12), 0);
  ::close(fd);
  expect_refused(g.path, "file size");
}

TEST(PersistentHeapCorruption, EmptyFileIsRefused) {
  PathGuard g(temp_heap_path("empty"));
  const int fd = ::open(g.path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ::close(fd);
  expect_refused(g.path, "too small");
}

// ---- tagged pointers over real mapped addresses --------------------------

TEST(MmapTaggedPtr, RoundTripsAddressesNearThe48BitBoundary) {
  PathGuard g(temp_heap_path("highbase"));
  PersistentHeap::Options opt;
  opt.bytes = 1u << 20;
  // The highest practical userspace base: just under the x86-64 canonical
  // 47-bit userspace limit, itself well inside the 48 tag-free bits.  The
  // kernel may refuse the hint (ASLR layout, sanitizer shadow, 32-bit VA)
  // — skip rather than fail, the arithmetic below is what matters.
  opt.base_hint = 0x7ffe'0000'0000ULL;
  try {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
    auto* node = static_cast<std::uint64_t*>(heap.raw_alloc(64, 64));
    ASSERT_TRUE(
        fits_in_address_bits(reinterpret_cast<std::uintptr_t>(node)));
    const TaggedWord w = make_tagged(node, tag_bit(0) | tag_bit(3));
    EXPECT_EQ(untag<std::uint64_t>(w), node);
    EXPECT_TRUE(has_tag(w, tag_bit(0)));
    EXPECT_TRUE(has_tag(w, tag_bit(3)));
    // The address survives a store/reload through persistent memory.
    auto* cell = static_cast<TaggedWord*>(heap.raw_alloc(8, 8));
    *cell = w;
    heap.persist(cell, sizeof(*cell));
    EXPECT_EQ(untag<std::uint64_t>(*cell), node);
    heap.close();
  } catch (const HeapOpenError&) {
    GTEST_SKIP() << "kernel refused the high fixed base; covered only on "
                    "layouts that grant it";
  }
}

// ---- queue attach + recovery across a (simulated in-process) restart -----

TEST(MmapQueueRestart, AttachRecoverPreservesValuesAndDetectability) {
  PathGuard g(temp_heap_path("queue"));
  constexpr std::size_t kThreads = 2;
  constexpr std::size_t kNodes = 64;
  PersistentHeap::Options opt;
  opt.bytes = 4u << 20;
  {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
    MmapContext ctx(heap);
    queues::DssQueue<MmapContext> q(ctx, kThreads, kNodes);
    for (queues::Value v = 1; v <= 5; ++v) {
      q.prep_enqueue(0, v * 10);
      q.exec_enqueue(0);
    }
    q.prep_dequeue(1);
    EXPECT_EQ(q.exec_dequeue(1), 10);
    // Leave thread 0 with a prepared-but-unexecuted enqueue, then "crash"
    // (scope exit without close): the announcement is persisted, the link
    // never happened.
    q.prep_enqueue(0, 777);
  }
  {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kOpen);
    EXPECT_FALSE(heap.previous_shutdown_clean());
    MmapContext ctx(heap);
    queues::DssQueue<MmapContext> q(pmem::attach, ctx, kThreads, kNodes);
    q.recover();
    // Thread 0's in-flight enqueue: prepared, never linked — resolve must
    // report (enqueue 777, ⊥).
    const queues::Resolved r0 = q.resolve(0);
    EXPECT_EQ(r0.op, queues::Resolved::Op::kEnqueue);
    EXPECT_EQ(r0.arg, 777);
    EXPECT_FALSE(r0.response.has_value());
    // Thread 1's completed dequeue of 10 is detectable too.
    const queues::Resolved r1 = q.resolve(1);
    EXPECT_EQ(r1.op, queues::Resolved::Op::kDequeue);
    ASSERT_TRUE(r1.response.has_value());
    EXPECT_EQ(*r1.response, 10);
    // FIFO contents survived: 20,30,40,50.
    std::vector<queues::Value> rest;
    q.drain_to(rest);
    ASSERT_EQ(rest.size(), 4u);
    EXPECT_EQ(rest.front(), 20);
    EXPECT_EQ(rest.back(), 50);
    // And the queue is live: normal operation continues post-recovery.
    q.prep_enqueue(0, 60);
    q.exec_enqueue(0);
    q.prep_dequeue(1);
    EXPECT_EQ(q.exec_dequeue(1), 20);
    heap.close();
  }
}

TEST(MmapQueueRestart, AttachToVirginHeapIsRefused) {
  PathGuard g(temp_heap_path("virgin"));
  PersistentHeap::Options opt;
  opt.bytes = 4u << 20;
  {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
    heap.close();  // heap exists but never held a queue
  }
  PersistentHeap heap(g.path, PersistentHeap::OpenMode::kOpen);
  MmapContext ctx(heap);
  EXPECT_THROW((queues::DssQueue<MmapContext>(pmem::attach, ctx, 2, 64)),
               std::runtime_error);
}

// ---- the persisted oracle's own crash protocol ---------------------------

TEST(ForkCrashOracle, LogSurvivesReopenAndReportsPending) {
  PathGuard g(temp_heap_path("oracle"));
  PersistentHeap::Options opt;
  opt.bytes = 4u << 20;
  queues::Value v0 = 0;
  {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
    harness::Oracle log(heap, /*threads=*/2, /*capacity=*/16);
    v0 = log.begin_enqueue(0);
    log.complete_enqueue(0);
    log.begin_dequeue(0);
    log.complete_dequeue(0, v0);
    log.begin_enqueue(1);  // in flight at the "crash"
  }
  {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kOpen);
    harness::Oracle log(heap, 2, 16);
    EXPECT_EQ(log.completed(0), 2u);
    std::size_t seen = 0;
    log.for_each_completed(0, [&](const harness::Oracle::Entry& e) {
      ++seen;
      if (e.op == harness::Oracle::kOpEnqueue) {
        EXPECT_EQ(e.arg, v0);
      }
      if (e.op == harness::Oracle::kOpDequeue) {
        EXPECT_EQ(e.result, v0);
      }
    });
    EXPECT_EQ(seen, 2u);
    EXPECT_EQ(log.pending(0), nullptr);
    harness::Oracle::Entry* p = log.pending(1);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->op, harness::Oracle::kOpEnqueue);
    // Settling as lost erases the pending record but never reuses its
    // value: a fresh begin draws a strictly later sequence number.
    const queues::Value lost = p->arg;
    log.settle(1, /*took_effect=*/false, 0);
    EXPECT_EQ(log.pending(1), nullptr);
    EXPECT_GT(log.begin_enqueue(1), lost);
  }
}

}  // namespace
}  // namespace dssq::pmem
