// Tests of the sharded DSS queue: cross-lane FIFO via the global enqueue
// ticket, deterministic operation combining through the announce/combine
// test seam, the resolve state machine (including the EMPTY-after-failed-
// attempt regression), exhaustive crash sweeps, crash→attach→recover over
// the file-backed heap at 1, 2 and 8 lanes, multi-threaded crash storms,
// and a strict-linearizability check of a recorded sharded history.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "dss/checker.hpp"
#include "dss/history.hpp"
#include "harness/crash_harness.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/persistent_heap.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"
#include "queues/sharded_queue.hpp"

namespace dssq::queues {
namespace {

using SimQ = ShardedDssQueue<pmem::SimContext>;
using pmem::ShadowPool;
using pmem::SimulatedCrash;

std::vector<Value> sorted_drain(const SimQ& q) {
  std::vector<Value> rest;
  q.drain_to(rest);
  std::sort(rest.begin(), rest.end());
  return rest;
}

bool contains(const std::vector<Value>& v, Value x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// ---- functional behaviour at 1, 2 and 8 lanes ----------------------------

class ShardedLanes : public ::testing::TestWithParam<std::size_t> {
 protected:
  pmem::ShadowPool pool{1 << 22};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

TEST_P(ShardedLanes, ReportsRequestedLaneCount) {
  SimQ q(ctx, 2, 64, GetParam());
  EXPECT_EQ(q.lane_count(), GetParam());
}

TEST_P(ShardedLanes, DetectableEnqueueDequeueIsFifoAcrossLanes) {
  // One thread round-robins its enqueues over every lane; the global
  // ticket must still deliver them strictly in enqueue order.
  SimQ q(ctx, 1, 128, GetParam());
  for (Value v = 1; v <= 24; ++v) {
    q.prep_enqueue(0, v);
    q.exec_enqueue(0);
  }
  for (Value v = 1; v <= 24; ++v) {
    q.prep_dequeue(0);
    EXPECT_EQ(q.exec_dequeue(0), v) << "lanes=" << GetParam();
  }
  q.prep_dequeue(0);
  EXPECT_EQ(q.exec_dequeue(0), kEmpty);
}

TEST_P(ShardedLanes, DrainPreservesFifoOrderAcrossLanes) {
  SimQ q(ctx, 3, 64, GetParam());
  std::vector<Value> expect;
  for (Value v = 1; v <= 12; ++v) {
    const std::size_t tid = static_cast<std::size_t>(v) % 3;
    q.prep_enqueue(tid, v * 10);
    q.exec_enqueue(tid);
    expect.push_back(v * 10);
  }
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest, expect);
}

TEST_P(ShardedLanes, ResolveStateMachine) {
  SimQ q(ctx, 2, 64, GetParam());
  // Nothing prepared: (⊥, ⊥).
  EXPECT_EQ(q.resolve(0).op, Resolved::Op::kNone);
  // Prepared-only enqueue: (enqueue 42, ⊥).
  q.prep_enqueue(0, 42);
  Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kEnqueue);
  EXPECT_EQ(r.arg, 42);
  EXPECT_FALSE(r.response.has_value());
  // Completed enqueue: (enqueue 42, OK).
  q.exec_enqueue(0);
  r = q.resolve(0);
  EXPECT_EQ(r.response, kOk);
  // Prepared-only dequeue: (dequeue, ⊥).
  q.prep_dequeue(1);
  r = q.resolve(1);
  EXPECT_EQ(r.op, Resolved::Op::kDequeue);
  EXPECT_FALSE(r.response.has_value());
  // Completed dequeue: (dequeue, 42).
  EXPECT_EQ(q.exec_dequeue(1), 42);
  r = q.resolve(1);
  EXPECT_EQ(r.response, 42);
  // Empty dequeue: (dequeue, EMPTY).
  q.prep_dequeue(1);
  EXPECT_EQ(q.exec_dequeue(1), kEmpty);
  EXPECT_EQ(q.resolve(1).response, kEmpty);
  // Resolve is idempotent.
  EXPECT_EQ(q.resolve(1), q.resolve(1));
}

TEST_P(ShardedLanes, ExecEnqueueIdempotentWhenCompleted) {
  SimQ q(ctx, 1, 64, GetParam());
  q.prep_enqueue(0, 5);
  q.exec_enqueue(0);
  q.exec_enqueue(0);  // no-op: ENQ_COMPL already set
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<Value>{5}));
}

TEST_P(ShardedLanes, NonDetectableMarkShieldsResolve) {
  // A non-detectable dequeue by the same tid must not be mistaken for the
  // thread's detectable dequeue by a later resolve.
  SimQ q(ctx, 1, 64, GetParam());
  q.enqueue(0, 7);
  q.enqueue(0, 8);
  q.prep_dequeue(0);
  EXPECT_EQ(q.exec_dequeue(0), 7);
  EXPECT_EQ(q.resolve(0).response, 7);
  EXPECT_EQ(q.dequeue(0), 8);  // non-detectable
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kDequeue);
  EXPECT_EQ(r.response, 7) << "resolve must still report the detectable op";
}

// Regression: a dequeue that saves a predecessor, loses the race (here:
// simulated by aborting at the post-save crash point while another thread
// empties the queue), and then completes as EMPTY must resolve as EMPTY —
// the X word then holds pred|DEQ_PREP|EMPTY, and resolution must prefer
// the EMPTY tag over the stale predecessor.
TEST_P(ShardedLanes, EmptyAfterFailedAttemptResolvesEmpty) {
  SimQ q(ctx, 2, 64, GetParam());
  q.enqueue(0, 99);
  points.arm_at_label("shard:exec-deq:pred-saved");
  q.prep_dequeue(0);
  EXPECT_THROW((void)q.exec_dequeue(0), SimulatedCrash);
  points.disarm();
  // Thread 1 empties the queue out from under thread 0's saved pred.
  EXPECT_EQ(q.dequeue(1), 99);
  // Thread 0 retries its exec (same prepared op) and finds EMPTY.
  EXPECT_EQ(q.exec_dequeue(0), kEmpty);
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kDequeue);
  ASSERT_TRUE(r.response.has_value())
      << "stale predecessor shadowed the EMPTY record";
  EXPECT_EQ(*r.response, kEmpty);
}

TEST_P(ShardedLanes, SeqTicketsAreStampedAndMonotone) {
  SimQ q(ctx, 1, 64, GetParam());
  const std::uint64_t s0 = q.next_seq();
  for (Value v = 1; v <= 6; ++v) {
    q.prep_enqueue(0, v);
    q.exec_enqueue(0);
  }
  EXPECT_EQ(q.next_seq(), s0 + 6);
}

INSTANTIATE_TEST_SUITE_P(Lanes, ShardedLanes, ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "lanes" + std::to_string(info.param);
                         });

// The same regression exists on the single-lane queue; pin the fix there
// too (same scenario, single-lane crash-point label).
TEST(DssQueueRegression, EmptyAfterFailedAttemptResolvesEmpty) {
  pmem::ShadowPool pool{1 << 22};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
  DssQueue<pmem::SimContext> q(ctx, 2, 64);
  q.enqueue(0, 99);
  points.arm_at_label("dss:exec-deq:pred-saved");
  q.prep_dequeue(0);
  EXPECT_THROW((void)q.exec_dequeue(0), SimulatedCrash);
  points.disarm();
  EXPECT_EQ(q.dequeue(1), 99);
  EXPECT_EQ(q.exec_dequeue(0), kEmpty);
  const Resolved r = q.resolve(0);
  ASSERT_TRUE(r.response.has_value());
  EXPECT_EQ(*r.response, kEmpty);
}

// ---- deterministic operation combining -----------------------------------

struct CombiningFixture : ::testing::Test {
  pmem::ShadowPool pool{1 << 22};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

TEST_F(CombiningFixture, ManualCombinePassAppliesTheWholeBatch) {
  SimQ q(ctx, 4, 64, /*lanes=*/2);
  q.set_lane_affinity(true);  // tid % 2: tids 0 and 2 both pick lane 0
  q.prep_enqueue(0, 10);
  q.prep_enqueue(2, 20);
  q.announce_enqueue(0);
  q.announce_enqueue(2);
  const metrics::Snapshot before = metrics::snapshot();
  const std::size_t batch = q.combine_lane(0);
  EXPECT_EQ(batch, 2u) << "one combiner pass must collect both requests";
  if (metrics::kEnabled) {
    EXPECT_EQ((metrics::snapshot() - before)[metrics::Counter::kOpsCombined],
              2u);
  }
  // Both operations took effect and are detectably complete...
  EXPECT_TRUE(has_tag(q.x_word(0), kEnqComplTag));
  EXPECT_TRUE(has_tag(q.x_word(2), kEnqComplTag));
  EXPECT_EQ(q.resolve(0).response, kOk);
  EXPECT_EQ(q.resolve(2).response, kOk);
  // ...exec after the fact is a no-op...
  q.exec_enqueue(0);
  q.exec_enqueue(2);
  // ...and the batch linked in slot order with consecutive tickets.
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<Value>{10, 20}));
}

TEST_F(CombiningFixture, CombinePassOnIdleLaneIsEmpty) {
  SimQ q(ctx, 2, 64, /*lanes=*/2);
  EXPECT_EQ(q.combine_lane(0), 0u);
  EXPECT_EQ(q.combine_lane(1), 0u);
}

TEST_F(CombiningFixture, BatchedAndUnbatchedEnqueuesInterleaveFifo) {
  SimQ q(ctx, 4, 64, /*lanes=*/2);
  q.set_lane_affinity(true);
  // Tid 1 (lane 1) enqueues solo; tids 0 and 2 (lane 0) combine a batch.
  q.prep_enqueue(1, 5);
  q.exec_enqueue(1);
  q.prep_enqueue(0, 6);
  q.prep_enqueue(2, 7);
  q.announce_enqueue(0);
  q.announce_enqueue(2);
  ASSERT_EQ(q.combine_lane(0), 2u);
  // Ticket order: 5 before the batch {6, 7}.
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<Value>{5, 6, 7}));
  for (Value v = 5; v <= 7; ++v) {
    q.prep_dequeue(3);
    EXPECT_EQ(q.exec_dequeue(3), v);
  }
}

// ---- exhaustive crash sweeps over the sharded paths ----------------------

struct Adversary {
  ShadowPool::CrashOptions options;
  const char* name;
};

std::vector<Adversary> adversaries() {
  return {{{ShadowPool::Survival::kNone, 0.0, 1}, "none"},
          {{ShadowPool::Survival::kAll, 1.0, 1}, "all"},
          {{ShadowPool::Survival::kRandom, 0.5, 7}, "random"}};
}

class ShardedCrashSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedCrashSweep, EnqueueEveryCrashLocationResolvesConsistently) {
  for (const Adversary& adv : adversaries()) {
    for (std::int64_t k = 0;; ++k) {
      ShadowPool pool(1 << 22);
      pmem::CrashPoints points;
      pmem::SimContext ctx(pool, points);
      SimQ q(ctx, 1, 64, GetParam());
      for (Value v = 1; v <= 3; ++v) q.enqueue(0, v);

      bool crashed = false;
      points.arm_countdown(k);
      try {
        q.prep_enqueue(0, 100);
        q.exec_enqueue(0);
      } catch (const SimulatedCrash&) {
        crashed = true;
      }
      points.disarm();

      if (!crashed) {
        EXPECT_TRUE(contains(sorted_drain(q), 100));
        ASSERT_GT(k, 3) << "suspiciously few crash points instrumented";
        break;
      }

      pool.crash(adv.options);
      q.recover();
      const Resolved r = q.resolve(0);
      const auto rest = sorted_drain(q);
      if (r.op == Resolved::Op::kEnqueue && r.arg == 100) {
        EXPECT_EQ(r.response.has_value(), contains(rest, 100))
            << adv.name << " lanes=" << GetParam() << " k=" << k;
      } else {
        EXPECT_FALSE(contains(rest, 100))
            << adv.name << " lanes=" << GetParam() << " k=" << k;
      }
      for (Value v = 1; v <= 3; ++v) {
        EXPECT_TRUE(contains(rest, v))
            << adv.name << " lanes=" << GetParam() << " k=" << k;
      }
    }
  }
}

TEST_P(ShardedCrashSweep, DequeueEveryCrashLocationResolvesConsistently) {
  for (const Adversary& adv : adversaries()) {
    for (std::int64_t k = 0;; ++k) {
      ShadowPool pool(1 << 22);
      pmem::CrashPoints points;
      pmem::SimContext ctx(pool, points);
      SimQ q(ctx, 1, 64, GetParam());
      for (Value v = 1; v <= 3; ++v) q.enqueue(0, v);

      bool crashed = false;
      points.arm_countdown(k);
      try {
        q.prep_dequeue(0);
        (void)q.exec_dequeue(0);
      } catch (const SimulatedCrash&) {
        crashed = true;
      }
      points.disarm();
      if (!crashed) break;

      pool.crash(adv.options);
      q.recover();
      const Resolved r = q.resolve(0);
      const auto rest = sorted_drain(q);
      if (r.op == Resolved::Op::kDequeue && r.response.has_value()) {
        ASSERT_NE(*r.response, kEmpty)
            << adv.name << " lanes=" << GetParam() << " k=" << k;
        EXPECT_EQ(*r.response, 1)
            << "global FIFO: only the minimum ticket can be dequeued";
        EXPECT_FALSE(contains(rest, 1));
        EXPECT_TRUE(contains(rest, 2));
        EXPECT_TRUE(contains(rest, 3));
      } else {
        EXPECT_EQ(rest, (std::vector<Value>{1, 2, 3}))
            << adv.name << " lanes=" << GetParam() << " k=" << k;
      }
    }
  }
}

TEST_P(ShardedCrashSweep, EmptyDequeueCrashLocations) {
  for (const Adversary& adv : adversaries()) {
    for (std::int64_t k = 0;; ++k) {
      ShadowPool pool(1 << 22);
      pmem::CrashPoints points;
      pmem::SimContext ctx(pool, points);
      SimQ q(ctx, 1, 64, GetParam());

      bool crashed = false;
      points.arm_countdown(k);
      try {
        q.prep_dequeue(0);
        (void)q.exec_dequeue(0);
      } catch (const SimulatedCrash&) {
        crashed = true;
      }
      points.disarm();
      if (!crashed) break;

      pool.crash(adv.options);
      q.recover();
      const Resolved r = q.resolve(0);
      EXPECT_TRUE(sorted_drain(q).empty());
      if (r.op == Resolved::Op::kDequeue && r.response.has_value()) {
        EXPECT_EQ(*r.response, kEmpty);
      }
    }
  }
}

// Exactly-once under the standard retry protocol, at every crash location.
TEST_P(ShardedCrashSweep, EnqueueRetriesExactlyOnce) {
  for (const Adversary& adv : adversaries()) {
    for (std::int64_t k = 0;; ++k) {
      ShadowPool pool(1 << 22);
      pmem::CrashPoints points;
      pmem::SimContext ctx(pool, points);
      SimQ q(ctx, 1, 64, GetParam());

      bool crashed = false;
      points.arm_countdown(k);
      try {
        q.prep_enqueue(0, 100);
        q.exec_enqueue(0);
      } catch (const SimulatedCrash&) {
        crashed = true;
      }
      points.disarm();
      if (!crashed) break;

      pool.crash(adv.options);
      q.recover();
      const Resolved r = q.resolve(0);
      const bool took_effect = r.op == Resolved::Op::kEnqueue &&
                               r.arg == 100 && r.response.has_value();
      if (!took_effect) {
        q.prep_enqueue(0, 100);
        q.exec_enqueue(0);
      }
      const auto rest = sorted_drain(q);
      EXPECT_EQ(std::count(rest.begin(), rest.end(), 100), 1)
          << adv.name << " lanes=" << GetParam() << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, ShardedCrashSweep,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "lanes" + std::to_string(info.param);
                         });

// Crash inside a manually-driven combining pass: the batch is the unit of
// recovery — after the crash every announced operation resolves either
// complete (value present) or incomplete (value absent), never torn.
TEST_F(CombiningFixture, CrashInsideCombinePassRecoversConsistently) {
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 4, 64, /*lanes=*/2);
    q.set_lane_affinity(true);
    q.prep_enqueue(0, 10);
    q.prep_enqueue(2, 20);
    q.announce_enqueue(0);
    q.announce_enqueue(2);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      (void)q.combine_lane(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash();
    q.recover();
    const auto rest = sorted_drain(q);
    for (const auto& [tid, val] :
         {std::pair<std::size_t, Value>{0, 10}, {2, 20}}) {
      const Resolved r = q.resolve(tid);
      ASSERT_EQ(r.op, Resolved::Op::kEnqueue) << "k=" << k;
      EXPECT_EQ(r.response.has_value(), contains(rest, val))
          << "k=" << k << " tid=" << tid
          << ": detectability record disagrees with queue contents";
    }
  }
}

// ---- crash → attach → recover over the file-backed heap ------------------

std::string temp_heap_path(const char* tag) {
  return ::testing::TempDir() + "dssq-sharded-" + tag + "-" +
         std::to_string(::getpid()) + ".bin";
}

struct PathGuard {
  std::string path;
  explicit PathGuard(std::string p) : path(std::move(p)) {
    ::unlink(path.c_str());
  }
  ~PathGuard() { ::unlink(path.c_str()); }
};

class ShardedMmapRestart : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedMmapRestart, AttachRecoverPreservesValuesAndDetectability) {
  const std::size_t lanes = GetParam();
  PathGuard g(temp_heap_path("restart"));
  constexpr std::size_t kThreads = 2;
  constexpr std::size_t kNodes = 64;
  pmem::PersistentHeap::Options opt;
  opt.bytes = 4u << 20;
  {
    pmem::PersistentHeap heap(g.path, pmem::PersistentHeap::OpenMode::kCreate,
                              opt);
    pmem::MmapContext ctx(heap);
    ShardedDssQueue<pmem::MmapContext> q(ctx, kThreads, kNodes, lanes);
    for (Value v = 1; v <= 5; ++v) {
      q.prep_enqueue(0, v * 10);
      q.exec_enqueue(0);
    }
    q.prep_dequeue(1);
    EXPECT_EQ(q.exec_dequeue(1), 10);
    // "Crash" with a prepared-but-unexecuted enqueue in flight.
    q.prep_enqueue(0, 777);
  }
  {
    pmem::PersistentHeap heap(g.path, pmem::PersistentHeap::OpenMode::kOpen);
    EXPECT_FALSE(heap.previous_shutdown_clean());
    pmem::MmapContext ctx(heap);
    ShardedDssQueue<pmem::MmapContext> q(pmem::attach, ctx, kThreads, kNodes,
                                         lanes);
    q.recover();
    const Resolved r0 = q.resolve(0);
    EXPECT_EQ(r0.op, Resolved::Op::kEnqueue);
    EXPECT_EQ(r0.arg, 777);
    EXPECT_FALSE(r0.response.has_value());
    const Resolved r1 = q.resolve(1);
    EXPECT_EQ(r1.op, Resolved::Op::kDequeue);
    ASSERT_TRUE(r1.response.has_value());
    EXPECT_EQ(*r1.response, 10);
    // FIFO contents survived in ticket order across every lane.
    std::vector<Value> rest;
    q.drain_to(rest);
    EXPECT_EQ(rest, (std::vector<Value>{20, 30, 40, 50}));
    // Exactly-once under retry: r0 says ⊥, so the application re-runs it.
    q.prep_enqueue(0, 777);
    q.exec_enqueue(0);
    q.prep_dequeue(1);
    EXPECT_EQ(q.exec_dequeue(1), 20);
    rest.clear();
    q.drain_to(rest);
    EXPECT_EQ(std::count(rest.begin(), rest.end(), 777), 1);
    heap.close();
  }
}

TEST_P(ShardedMmapRestart, AttachToVirginHeapIsRefused) {
  PathGuard g(temp_heap_path("virgin"));
  pmem::PersistentHeap::Options opt;
  opt.bytes = 4u << 20;
  {
    pmem::PersistentHeap heap(g.path, pmem::PersistentHeap::OpenMode::kCreate,
                              opt);
    heap.close();
  }
  pmem::PersistentHeap heap(g.path, pmem::PersistentHeap::OpenMode::kOpen);
  pmem::MmapContext ctx(heap);
  EXPECT_THROW((ShardedDssQueue<pmem::MmapContext>(pmem::attach, ctx, 2, 64,
                                                   GetParam())),
               std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Lanes, ShardedMmapRestart,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "lanes" + std::to_string(info.param);
                         });

// ---- multi-threaded crash storms ----------------------------------------

void run_sharded_storm(std::size_t threads, std::size_t lanes,
                       std::int64_t crash_after,
                       const ShadowPool::CrashOptions& adv,
                       std::uint64_t seed) {
  ShadowPool pool(1 << 24);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  SimQ q(ctx, threads, 512, lanes);

  auto outcomes = harness::run_crash_storm(q, threads, /*ops_per_thread=*/300,
                                           points, crash_after, seed);
  pool.crash(adv);
  q.recover();

  std::multiset<Value> enqueued, dequeued;
  for (std::size_t t = 0; t < threads; ++t) {
    const auto& out = outcomes[t];
    for (const Value v : out.enqueued) enqueued.insert(v);
    for (const Value v : out.dequeued) dequeued.insert(v);
    if (!out.crashed || out.pending == harness::ThreadOutcome::Pending::kNone) {
      continue;
    }
    const Resolved r = q.resolve(t);
    if (out.pending == harness::ThreadOutcome::Pending::kEnqueue) {
      if (r.op == Resolved::Op::kEnqueue && r.arg == out.pending_arg &&
          r.response.has_value()) {
        enqueued.insert(out.pending_arg);
      }
    } else if (r.op == Resolved::Op::kDequeue && r.response.has_value() &&
               *r.response != kEmpty &&
               std::find(out.dequeued.begin(), out.dequeued.end(),
                         *r.response) == out.dequeued.end()) {
      dequeued.insert(*r.response);
    }
  }

  std::multiset<Value> remaining;
  {
    std::vector<Value> rest;
    q.drain_to(rest);
    remaining.insert(rest.begin(), rest.end());
  }
  std::multiset<Value> consumed_plus_left = dequeued;
  consumed_plus_left.insert(remaining.begin(), remaining.end());
  EXPECT_EQ(enqueued, consumed_plus_left)
      << "value lost or duplicated (threads=" << threads
      << " lanes=" << lanes << " crash_after=" << crash_after
      << " seed=" << seed << ")";
}

TEST(ShardedCrashStorm, TwoThreadsTwoLanesEarlyCrash) {
  run_sharded_storm(2, 2, 25, {ShadowPool::Survival::kNone, 0.0, 1}, 11);
}

TEST(ShardedCrashStorm, FourThreadsTwoLanesMidCrash) {
  run_sharded_storm(4, 2, 400, {ShadowPool::Survival::kRandom, 0.5, 2}, 22);
}

TEST(ShardedCrashStorm, FourThreadsEightLanesMidCrash) {
  run_sharded_storm(4, 8, 400, {ShadowPool::Survival::kRandom, 0.5, 3}, 33);
}

TEST(ShardedCrashStorm, EightThreadsFourLanesLateCrash) {
  run_sharded_storm(8, 4, 2000, {ShadowPool::Survival::kRandom, 0.3, 5}, 55);
}

// ---- strict linearizability of a recorded sharded history ----------------

TEST(ShardedChecker, RecordedConcurrentHistoryIsStrictlyLinearizable) {
  ShadowPool pool(1 << 24);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  constexpr std::size_t kThreads = 3;
  SimQ q(ctx, kThreads, 256, /*lanes=*/2);

  dss::HistoryRecorder<dss::QueueSpec> rec;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 12; ++i) {
        const Value v = static_cast<Value>(t * 1000 + i);
        auto tok =
            rec.invoke(static_cast<dss::Pid>(t), dss::QueueSpec::Enq{v});
        q.prep_enqueue(t, v);
        q.exec_enqueue(t);
        rec.respond(tok, kOk);
        if (i % 2 == 1) {
          tok = rec.invoke(static_cast<dss::Pid>(t), dss::QueueSpec::Deq{});
          q.prep_dequeue(t);
          rec.respond(tok, q.exec_dequeue(t));
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  dss::StrictLinChecker<dss::QueueSpec> checker;
  const dss::CheckResult res = checker.check(rec.take());
  EXPECT_TRUE(res.linearizable) << res.message;
}

// And across a crash: the post-recovery resolutions join the history as
// the crashed era's pending-op outcomes.
TEST(ShardedChecker, CrashedHistoryWithResolutionsIsStrictlyLinearizable) {
  ShadowPool pool(1 << 24);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  SimQ q(ctx, 2, 256, /*lanes=*/2);
  dss::HistoryRecorder<dss::QueueSpec> rec;

  for (Value v = 1; v <= 4; ++v) {
    const auto tok = rec.invoke(0, dss::QueueSpec::Enq{v});
    q.prep_enqueue(0, v);
    q.exec_enqueue(0);
    rec.respond(tok, kOk);
  }
  // Thread 1 crashes mid-dequeue, after the mark persisted.  The invoke
  // token is never responded to — the crash era ends this op, and the
  // post-recovery resolution re-enters it as a fresh completed op below.
  points.arm_at_label("shard:exec-deq:marked");
  (void)rec.invoke(1, dss::QueueSpec::Deq{});
  q.prep_dequeue(1);
  EXPECT_THROW((void)q.exec_dequeue(1), SimulatedCrash);
  points.disarm();
  pool.crash();
  rec.crash();
  q.recover();
  // The resolution supplies the crashed op's effect; replay it into the
  // next era as a completed operation so the checker sees the claim.
  const Resolved r = q.resolve(1);
  ASSERT_TRUE(r.response.has_value());
  const auto tok = rec.invoke(1, dss::QueueSpec::Deq{});
  rec.respond(tok, *r.response);
  // Drain the rest inside the recorded history.
  for (;;) {
    const auto t2 = rec.invoke(0, dss::QueueSpec::Deq{});
    q.prep_dequeue(0);
    const Value v = q.exec_dequeue(0);
    rec.respond(t2, v);
    if (v == kEmpty) break;
  }

  dss::StrictLinChecker<dss::QueueSpec> checker;
  const dss::CheckResult res = checker.check(rec.take());
  EXPECT_TRUE(res.linearizable) << res.message;
}

}  // namespace
}  // namespace dssq::queues
