// Tests of the volatile MS-queue baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "pmem/context.hpp"
#include "queues/ms_queue.hpp"

namespace dssq::queues {
namespace {

using Ctx = pmem::VolatileContext;

TEST(MsQueue, FifoSingleThread) {
  Ctx ctx(1 << 22);
  MsQueue<Ctx> q(ctx, 1, 64);
  for (Value v = 1; v <= 10; ++v) q.enqueue(0, v);
  for (Value v = 1; v <= 10; ++v) EXPECT_EQ(q.dequeue(0), v);
  EXPECT_EQ(q.dequeue(0), kEmpty);
}

TEST(MsQueue, EmptyOnFreshQueue) {
  Ctx ctx(1 << 22);
  MsQueue<Ctx> q(ctx, 1, 8);
  EXPECT_EQ(q.dequeue(0), kEmpty);
  EXPECT_EQ(q.dequeue(0), kEmpty);
}

TEST(MsQueue, InterleavedEnqueueDequeue) {
  Ctx ctx(1 << 22);
  MsQueue<Ctx> q(ctx, 1, 64);
  q.enqueue(0, 1);
  q.enqueue(0, 2);
  EXPECT_EQ(q.dequeue(0), 1);
  q.enqueue(0, 3);
  EXPECT_EQ(q.dequeue(0), 2);
  EXPECT_EQ(q.dequeue(0), 3);
  EXPECT_EQ(q.dequeue(0), kEmpty);
}

TEST(MsQueue, DrainToListsRemainingInOrder) {
  Ctx ctx(1 << 22);
  MsQueue<Ctx> q(ctx, 1, 64);
  for (Value v = 1; v <= 5; ++v) q.enqueue(0, v);
  q.dequeue(0);
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<Value>{2, 3, 4, 5}));
}

TEST(MsQueue, NodeReuseAfterManyOperations) {
  // Far more operations than pool capacity: EBR must recycle nodes.
  Ctx ctx(1 << 22);
  MsQueue<Ctx> q(ctx, 1, 32);
  for (int round = 0; round < 1000; ++round) {
    q.enqueue(0, round);
    EXPECT_EQ(q.dequeue(0), round);
  }
}

TEST(MsQueue, ConcurrentPairsPreserveValueMultiset) {
  constexpr std::size_t kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  Ctx ctx(1 << 24);
  MsQueue<Ctx> q(ctx, kThreads, 256);

  std::vector<std::vector<Value>> popped(kThreads);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        q.enqueue(t, static_cast<Value>(t * 1'000'000 + i));
        const Value v = q.dequeue(t);
        if (v != kEmpty) popped[t].push_back(v);
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<Value> all;
  for (const auto& p : popped) all.insert(all.end(), p.begin(), p.end());
  std::vector<Value> rest;
  q.drain_to(rest);
  all.insert(all.end(), rest.begin(), rest.end());
  std::sort(all.begin(), all.end());

  std::vector<Value> expected;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      expected.push_back(static_cast<Value>(t * 1'000'000 + i));
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(all, expected) << "values lost or duplicated under concurrency";
}

TEST(MsQueue, PerThreadFifoOrderUnderConcurrency) {
  // One producer and one consumer: values must come out in enqueue order.
  Ctx ctx(1 << 24);
  MsQueue<Ctx> q(ctx, 2, 6000);  // producer pool is never refilled by the consumer
  constexpr int kN = 5000;
  std::vector<Value> seen;
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) q.enqueue(0, i);
  });
  std::thread consumer([&] {
    while (static_cast<int>(seen.size()) < kN) {
      const Value v = q.dequeue(1);
      if (v != kEmpty) seen.push_back(v);
    }
  });
  producer.join();
  consumer.join();
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kN));
}

}  // namespace
}  // namespace dssq::queues
