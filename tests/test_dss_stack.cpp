// Tests of the detectable stack: LIFO semantics, the prep/exec/resolve
// protocol, exhaustive crash-point sweeps (mirroring the queue's), the
// independent-recovery variant, and concurrent storms.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_stack.hpp"

namespace dssq::queues {
namespace {

using SimS = DssStack<pmem::SimContext>;
using pmem::ShadowPool;
using pmem::SimulatedCrash;

struct StackFixture : ::testing::Test {
  ShadowPool pool{1 << 22};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

TEST_F(StackFixture, LifoSingleThread) {
  SimS s(ctx, 1, 64);
  for (Value v = 1; v <= 5; ++v) {
    s.prep_push(0, v);
    s.exec_push(0);
  }
  for (Value v = 5; v >= 1; --v) {
    s.prep_pop(0);
    EXPECT_EQ(s.exec_pop(0), v);
  }
  s.prep_pop(0);
  EXPECT_EQ(s.exec_pop(0), kEmpty);
}

TEST_F(StackFixture, NonDetectablePath) {
  SimS s(ctx, 1, 64);
  s.push(0, 1);
  s.push(0, 2);
  EXPECT_EQ(s.x_word(0), 0u);
  EXPECT_EQ(s.pop(0), 2);
  EXPECT_EQ(s.pop(0), 1);
  EXPECT_EQ(s.pop(0), kEmpty);
  EXPECT_EQ(s.resolve(0).op, Resolved::Op::kNone);
}

TEST_F(StackFixture, ResolveLifecycle) {
  SimS s(ctx, 1, 64);
  s.prep_push(0, 42);
  Resolved r = s.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kEnqueue);
  EXPECT_EQ(r.arg, 42);
  EXPECT_FALSE(r.response.has_value());
  s.exec_push(0);
  EXPECT_EQ(s.resolve(0).response, kOk);

  s.prep_pop(0);
  r = s.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kDequeue);
  EXPECT_FALSE(r.response.has_value());
  EXPECT_EQ(s.exec_pop(0), 42);
  EXPECT_EQ(s.resolve(0).response, 42);

  s.prep_pop(0);
  EXPECT_EQ(s.exec_pop(0), kEmpty);
  EXPECT_EQ(s.resolve(0).response, kEmpty);
}

TEST_F(StackFixture, NodeRecyclingThroughManyRounds) {
  SimS s(ctx, 1, 32);
  for (int round = 0; round < 2000; ++round) {
    s.prep_push(0, round);
    s.exec_push(0);
    s.prep_pop(0);
    ASSERT_EQ(s.exec_pop(0), round);
  }
}

TEST_F(StackFixture, RePrepReclaimsFailedPushNode) {
  SimS s(ctx, 1, 4);
  for (int i = 0; i < 20; ++i) s.prep_push(0, i);
  SUCCEED();
}

// ---- crash sweeps --------------------------------------------------------------

class StackSweep : public ::testing::TestWithParam<int> {};

TEST_P(StackSweep, PushEveryCrashLocationResolvesConsistently) {
  const auto survival = static_cast<ShadowPool::Survival>(GetParam());
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimS s(ctx, 1, 64);
    s.push(0, 1);
    s.push(0, 2);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      s.prep_push(0, 100);
      s.exec_push(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash({survival, 0.5, 41});
    s.recover();
    const Resolved r = s.resolve(0);
    std::vector<Value> rest;
    s.drain_to(rest);
    const bool present =
        std::find(rest.begin(), rest.end(), 100) != rest.end();
    if (r.op == Resolved::Op::kEnqueue && r.arg == 100) {
      EXPECT_EQ(r.response.has_value(), present) << "k=" << k;
    } else {
      EXPECT_FALSE(present) << "k=" << k;
    }
    // Completed pushes survive, in LIFO positions below 100 if present.
    EXPECT_TRUE(std::find(rest.begin(), rest.end(), 1) != rest.end());
    EXPECT_TRUE(std::find(rest.begin(), rest.end(), 2) != rest.end());
  }
}

TEST_P(StackSweep, PopEveryCrashLocationResolvesConsistently) {
  const auto survival = static_cast<ShadowPool::Survival>(GetParam());
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimS s(ctx, 1, 64);
    s.push(0, 1);
    s.push(0, 2);  // top

    bool crashed = false;
    points.arm_countdown(k);
    try {
      s.prep_pop(0);
      (void)s.exec_pop(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash({survival, 0.5, 43});
    s.recover();
    const Resolved r = s.resolve(0);
    std::vector<Value> rest;
    s.drain_to(rest);
    if (r.op == Resolved::Op::kDequeue && r.response.has_value()) {
      ASSERT_NE(*r.response, kEmpty) << "k=" << k;
      EXPECT_EQ(*r.response, 2) << "LIFO: only the top can be popped";
      EXPECT_EQ(rest, (std::vector<Value>{1})) << "k=" << k;
    } else {
      EXPECT_EQ(rest, (std::vector<Value>{2, 1})) << "k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Survival, StackSweep, ::testing::Values(0, 1, 2));

TEST(StackIndependentRecovery, PushSweepWithoutCentralizedPhase) {
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimS s(ctx, 1, 64);
    s.push(0, 1);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      s.prep_push(0, 100);
      s.exec_push(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash();
    s.recover_independent(0);
    s.rebuild_free_lists();
    const Resolved r = s.resolve(0);
    std::vector<Value> rest;
    s.drain_to(rest);
    const bool present =
        std::find(rest.begin(), rest.end(), 100) != rest.end();
    if (r.op == Resolved::Op::kEnqueue && r.arg == 100) {
      EXPECT_EQ(r.response.has_value(), present) << "k=" << k;
    } else {
      EXPECT_FALSE(present) << "k=" << k;
    }
    // The stack must remain operational without structural repair.
    s.prep_push(0, 200);
    s.exec_push(0);
    s.prep_pop(0);
    EXPECT_EQ(s.exec_pop(0), 200) << "k=" << k;
  }
}

// ---- concurrency -----------------------------------------------------------------

TEST(StackConcurrent, MultisetInvariant) {
  pmem::EmulatedNvmContext ctx(1 << 24, pmem::EmulatedNvmBackend(
                                            pmem::EmulationParams{0, 0}));
  DssStack<pmem::EmulatedNvmContext> s(ctx, 4, 256);
  constexpr int kOps = 1200;
  std::vector<std::vector<Value>> popped(4);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        s.prep_push(t, static_cast<Value>(t * 1'000'000 + i));
        s.exec_push(t);
        s.prep_pop(t);
        const Value v = s.exec_pop(t);
        if (v != kEmpty) popped[t].push_back(v);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<Value> all;
  for (const auto& p : popped) all.insert(all.end(), p.begin(), p.end());
  std::vector<Value> rest;
  s.drain_to(rest);
  all.insert(all.end(), rest.begin(), rest.end());
  std::sort(all.begin(), all.end());
  std::vector<Value> expected;
  for (std::size_t t = 0; t < 4; ++t) {
    for (int i = 0; i < kOps; ++i) {
      expected.push_back(static_cast<Value>(t * 1'000'000 + i));
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(all, expected);
}

TEST(StackConcurrent, CrashStormExactlyOnce) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ShadowPool pool(1 << 24);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    constexpr std::size_t kThreads = 3;
    DssStack<pmem::SimContext> s(ctx, kThreads, 512);

    struct Outcome {
      std::vector<Value> pushed, popped;
      bool crashed = false;
      bool pending_is_push = false;
      Value pending_arg = 0;
      bool has_pending = false;
    };
    std::vector<Outcome> outcomes(kThreads);
    points.arm_countdown(300);
    {
      std::vector<std::thread> workers;
      for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
          Outcome& o = outcomes[t];
          Xoshiro256 rng(seed * 977 + t);
          Value next = static_cast<Value>(t + 1) * 1'000'000;
          try {
            for (int i = 0; i < 200; ++i) {
              if (rng.next_bool(0.5)) {
                const Value v = next++;
                o.has_pending = true;
                o.pending_is_push = true;
                o.pending_arg = v;
                s.prep_push(t, v);
                s.exec_push(t);
                o.pushed.push_back(v);
              } else {
                o.has_pending = true;
                o.pending_is_push = false;
                s.prep_pop(t);
                const Value v = s.exec_pop(t);
                if (v != kEmpty) o.popped.push_back(v);
              }
              o.has_pending = false;
            }
          } catch (const SimulatedCrash&) {
            o.crashed = true;
          }
        });
      }
      for (auto& w : workers) w.join();
    }
    points.disarm();
    pool.crash({ShadowPool::Survival::kRandom, 0.5, seed});
    s.recover();

    std::multiset<Value> pushed, popped;
    for (std::size_t t = 0; t < kThreads; ++t) {
      const Outcome& o = outcomes[t];
      for (const Value v : o.pushed) pushed.insert(v);
      for (const Value v : o.popped) popped.insert(v);
      if (!o.crashed || !o.has_pending) continue;
      const Resolved r = s.resolve(t);
      if (o.pending_is_push) {
        if (r.op == Resolved::Op::kEnqueue &&
            r.arg == o.pending_arg && r.response.has_value()) {
          pushed.insert(o.pending_arg);
        }
      } else if (r.op == Resolved::Op::kDequeue &&
                 r.response.has_value() && *r.response != kEmpty &&
                 std::find(o.popped.begin(), o.popped.end(), *r.response) ==
                     o.popped.end()) {
        popped.insert(*r.response);
      }
    }
    std::multiset<Value> remaining;
    {
      std::vector<Value> rest;
      s.drain_to(rest);
      remaining.insert(rest.begin(), rest.end());
    }
    std::multiset<Value> consumed_plus_left = popped;
    consumed_plus_left.insert(remaining.begin(), remaining.end());
    EXPECT_EQ(pushed, consumed_plus_left) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace dssq::queues
