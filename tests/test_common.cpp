// Unit tests for the common substrate: cache-line math, tagged pointers,
// deterministic RNG, stats, thread registry, calibrated spinning.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "common/cacheline.hpp"
#include "common/rng.hpp"
#include "common/spin.hpp"
#include "common/stats.hpp"
#include "common/tagged_ptr.hpp"
#include "common/thread_registry.hpp"

namespace dssq {
namespace {

// ---- cacheline -------------------------------------------------------------

TEST(Cacheline, BaseRoundsDown) {
  EXPECT_EQ(cache_line_base(0), 0u);
  EXPECT_EQ(cache_line_base(63), 0u);
  EXPECT_EQ(cache_line_base(64), 64u);
  EXPECT_EQ(cache_line_base(130), 128u);
}

TEST(Cacheline, SpannedCountsLines) {
  EXPECT_EQ(cache_lines_spanned(0, 1), 1u);
  EXPECT_EQ(cache_lines_spanned(0, 64), 1u);
  EXPECT_EQ(cache_lines_spanned(0, 65), 2u);
  EXPECT_EQ(cache_lines_spanned(63, 2), 2u);   // straddles a boundary
  EXPECT_EQ(cache_lines_spanned(60, 200), 5u);
  EXPECT_EQ(cache_lines_spanned(8, 0), 1u);    // zero-size touches its line
}

TEST(Cacheline, LineIndexRelativeToBase) {
  EXPECT_EQ(cache_line_index(0, 0), 0u);
  EXPECT_EQ(cache_line_index(0, 63), 0u);
  EXPECT_EQ(cache_line_index(0, 64), 1u);
  EXPECT_EQ(cache_line_index(128, 128 + 640), 10u);
}

TEST(Cacheline, RoundUpToLine) {
  EXPECT_EQ(round_up_to_line(0), 0u);
  EXPECT_EQ(round_up_to_line(1), 64u);
  EXPECT_EQ(round_up_to_line(64), 64u);
  EXPECT_EQ(round_up_to_line(65), 128u);
}

// ---- tagged pointers -------------------------------------------------------

TEST(TaggedPtr, RoundTripsPointerAndTags) {
  int dummy = 0;
  const TaggedWord t0 = tag_bit(0);
  const TaggedWord t3 = tag_bit(3);
  const TaggedWord w = make_tagged(&dummy, t0 | t3);
  EXPECT_EQ(untag<int>(w), &dummy);
  EXPECT_TRUE(has_tag(w, t0));
  EXPECT_TRUE(has_tag(w, t3));
  EXPECT_TRUE(has_tag(w, t0 | t3));
  EXPECT_FALSE(has_tag(w, tag_bit(1)));
}

TEST(TaggedPtr, NullPointerWithTags) {
  const TaggedWord w = tag_bit(2);
  EXPECT_EQ(untag<int>(w), nullptr);
  EXPECT_TRUE(is_null_ptr(w));
  EXPECT_TRUE(has_tag(w, tag_bit(2)));
}

TEST(TaggedPtr, WithAndWithoutTag) {
  int dummy = 0;
  TaggedWord w = make_tagged(&dummy);
  EXPECT_EQ(tags_of(w), 0u);
  w = with_tag(w, tag_bit(5));
  EXPECT_TRUE(has_tag(w, tag_bit(5)));
  EXPECT_EQ(untag<int>(w), &dummy);
  w = without_tag(w, tag_bit(5));
  EXPECT_EQ(tags_of(w), 0u);
  EXPECT_EQ(untag<int>(w), &dummy);
}

TEST(TaggedPtr, TagBitsDoNotOverlapAddressBits) {
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(tag_bit(i) & kAddressMask, 0u) << "tag bit " << i;
  }
}

TEST(TaggedPtr, HasAnyTag) {
  const TaggedWord w = tag_bit(1);
  EXPECT_TRUE(has_any_tag(w, tag_bit(0) | tag_bit(1)));
  EXPECT_FALSE(has_any_tag(w, tag_bit(0) | tag_bit(2)));
}

// ---- rng --------------------------------------------------------------------

TEST(Rng, DeterministicUnderSeed) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyUnbiased) {
  Xoshiro256 rng(5);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.next_bool(0.5);
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(Rng, HashCombineDistinguishes) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(0, 0), hash_combine(0, 1));
}

// ---- stats ------------------------------------------------------------------

TEST(Stats, MeanAndStddev) {
  Stats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_NEAR(s.coeff_of_variation(), 2.138 / 5.0, 1e-3);
}

TEST(Stats, MinMaxPercentile) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Stats, EmptyAndSingle) {
  Stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_THROW(s.percentile(50), std::logic_error);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

// ---- thread registry ---------------------------------------------------------

TEST(ThreadRegistry, AcquiresLowestFree) {
  ThreadRegistry reg(4);
  EXPECT_EQ(reg.acquire(), 0u);
  EXPECT_EQ(reg.acquire(), 1u);
  reg.release(0);
  EXPECT_EQ(reg.acquire(), 0u);
  EXPECT_EQ(reg.active(), 2u);
}

TEST(ThreadRegistry, ExactReacquisitionAfterCrash) {
  ThreadRegistry reg(4);
  const std::size_t tid = reg.acquire();
  reg.release(tid);  // "crash"
  reg.acquire_exact(tid);  // revived thread reclaims its identity
  EXPECT_THROW(reg.acquire_exact(tid), std::runtime_error);
}

TEST(ThreadRegistry, ExhaustionThrows) {
  ThreadRegistry reg(2);
  reg.acquire();
  reg.acquire();
  EXPECT_THROW(reg.acquire(), std::runtime_error);
}

TEST(ThreadRegistry, RaiiLease) {
  ThreadRegistry reg(2);
  {
    ThreadIdentity id(reg);
    EXPECT_EQ(id.tid(), 0u);
    EXPECT_EQ(reg.active(), 1u);
  }
  EXPECT_EQ(reg.active(), 0u);
}

TEST(ThreadRegistry, ConcurrentAcquireIsRaceFree) {
  ThreadRegistry reg(16);
  std::vector<std::thread> threads;
  std::vector<std::size_t> ids(16);
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&, t] { ids[t] = reg.acquire(); });
  }
  for (auto& th : threads) th.join();
  std::set<std::size_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 16u);
}

// ---- spin --------------------------------------------------------------------

TEST(Spin, CalibrationIsPositive) {
  EXPECT_GT(spin_iterations_per_ns(), 0.0);
}

TEST(Spin, SpinTakesRoughlyRequestedTime) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  spin_for_ns(2'000'000);  // 2 ms: long enough to measure reliably
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - start)
                           .count();
  EXPECT_GT(elapsed, 500);       // at least 0.5 ms
  EXPECT_LT(elapsed, 200'000);   // sanity bound (scheduler noise tolerant)
}

TEST(Spin, BackoffGrowsAndResets) {
  Backoff b;
  b.pause();
  b.pause();
  b.reset();  // must not crash; behavioural: subsequent pause is short
  b.pause();
  SUCCEED();
}

}  // namespace
}  // namespace dssq
