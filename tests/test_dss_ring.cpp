// Tests of the detectable SPSC ring: wait-free semantics, FULL/EMPTY
// handling, EXACT detection at every crash point (the index-monotonicity
// argument), slot-recycling safety of resolve, and a producer/consumer
// crash-recover-continue workout.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_ring.hpp"

namespace dssq::queues {
namespace {

using SimRing = DssRing<pmem::SimContext>;

struct RingFixture : ::testing::Test {
  pmem::ShadowPool pool{1 << 20};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

TEST_F(RingFixture, FifoAndCapacity) {
  SimRing ring(ctx, 4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (Value v = 1; v <= 4; ++v) EXPECT_EQ(ring.enqueue(v), kOk);
  EXPECT_EQ(ring.enqueue(5), kFull);
  for (Value v = 1; v <= 4; ++v) EXPECT_EQ(ring.dequeue(), v);
  EXPECT_EQ(ring.dequeue(), kEmpty);
}

TEST_F(RingFixture, WrapAroundManyTimes) {
  SimRing ring(ctx, 8);
  for (Value v = 0; v < 1000; ++v) {
    ASSERT_EQ(ring.enqueue(v), kOk);
    ASSERT_EQ(ring.dequeue(), v);
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST_F(RingFixture, ResolveLifecycle) {
  SimRing ring(ctx, 4);
  auto r = ring.resolve_producer();
  EXPECT_EQ(r.op, SimRing::Resolved::Op::kNone);

  ring.prep_enqueue(7);
  r = ring.resolve_producer();
  EXPECT_EQ(r.op, SimRing::Resolved::Op::kEnqueue);
  EXPECT_EQ(r.arg, 7);
  EXPECT_FALSE(r.response.has_value());

  ring.exec_enqueue();
  r = ring.resolve_producer();
  EXPECT_EQ(r.response, kOk);

  ring.prep_dequeue();
  auto c = ring.resolve_consumer();
  EXPECT_EQ(c.op, SimRing::Resolved::Op::kDequeue);
  EXPECT_FALSE(c.response.has_value());
  EXPECT_EQ(ring.exec_dequeue(), 7);
  c = ring.resolve_consumer();
  EXPECT_EQ(c.response, 7);
}

TEST_F(RingFixture, FullAndEmptyAreDetectableOutcomes) {
  SimRing ring(ctx, 2);
  ring.enqueue(1);
  ring.enqueue(2);
  ring.prep_enqueue(3);
  EXPECT_EQ(ring.exec_enqueue(), kFull);
  EXPECT_EQ(ring.resolve_producer().response, kFull);

  ring.dequeue();
  ring.dequeue();
  ring.prep_dequeue();
  EXPECT_EQ(ring.exec_dequeue(), kEmpty);
  EXPECT_EQ(ring.resolve_consumer().response, kEmpty);
}

// ---- exact detection: crash sweeps ------------------------------------------------

class RingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingSweep, EnqueueDetectionIsExactAtEveryCrashPoint) {
  const auto survival = static_cast<pmem::ShadowPool::Survival>(GetParam());
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 20);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimRing ring(ctx, 8);
    ring.enqueue(1);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      ring.prep_enqueue(100);
      ring.exec_enqueue();
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash({survival, 0.5, 7});
    ring.recover();
    const auto r = ring.resolve_producer();
    const std::size_t size = ring.size();
    if (r.op == SimRing::Resolved::Op::kEnqueue && r.arg == 100) {
      // EXACTNESS: unlike the unbounded queue (whose Figure 2 case (b)
      // may legitimately report ⊥ for an effect-less crash mid-exec), the
      // ring's answer is never ambiguous: response present iff the tail
      // advanced iff the element is in the ring.
      EXPECT_EQ(r.response.has_value(), size == 2) << "k=" << k;
      if (r.response.has_value()) {
        EXPECT_EQ(*r.response, kOk);
      }
    } else {
      EXPECT_EQ(size, 1u) << "k=" << k;
    }
  }
}

TEST_P(RingSweep, DequeueDetectionIsExactAtEveryCrashPoint) {
  const auto survival = static_cast<pmem::ShadowPool::Survival>(GetParam());
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 20);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimRing ring(ctx, 8);
    ring.enqueue(11);
    ring.enqueue(22);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      ring.prep_dequeue();
      ring.exec_dequeue();
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash({survival, 0.5, 9});
    ring.recover();
    const auto r = ring.resolve_consumer();
    const std::size_t size = ring.size();
    if (r.op == SimRing::Resolved::Op::kDequeue &&
        r.response.has_value()) {
      EXPECT_EQ(*r.response, 11) << "k=" << k << ": FIFO head only";
      EXPECT_EQ(size, 1u) << "k=" << k;
    } else {
      EXPECT_EQ(size, 2u) << "k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Survival, RingSweep, ::testing::Values(0, 1, 2));

TEST_F(RingFixture, ResolveSurvivesSlotRecycling) {
  // The consumer's resolve must report the value IT dequeued even after
  // the producer overwrote that slot (the copy-into-X discipline).
  SimRing ring(ctx, 2);
  ring.enqueue(10);
  ring.prep_dequeue();
  EXPECT_EQ(ring.exec_dequeue(), 10);
  // Producer laps the ring: slot of value 10 is overwritten twice.
  ring.enqueue(20);
  ring.enqueue(30);
  EXPECT_EQ(ring.resolve_consumer().response, 10)
      << "resolve leaked a recycled slot's content";
}

TEST(RingWorkout, ProducerConsumerWithRepeatedCrashes) {
  // A producer and a consumer thread stream 300 values through a tiny
  // ring; the world crashes several times; each role resolves its own
  // interrupted op, retries exactly-once, and the consumer must receive
  // 0..299 in order.
  pmem::ShadowPool pool(1 << 20);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  DssRing<pmem::SimContext> ring(ctx, 8);

  constexpr Value kN = 300;
  Value produced = 0;
  std::vector<Value> received;

  bool finished = false;
  for (int era = 0; era < 60 && !finished; ++era) {
    points.arm_countdown(2000 + era * 37);
    std::atomic<bool> done{false};
    std::thread producer([&] {
      try {
        while (produced < kN) {
          ring.prep_enqueue(produced);
          if (ring.exec_enqueue() == kOk) {
            ++produced;
          } else {
            std::this_thread::yield();  // full: let the consumer drain
          }
        }
      } catch (const pmem::SimulatedCrash&) {
      }
      done.store(true);
    });
    std::thread consumer([&] {
      try {
        while (static_cast<Value>(received.size()) < kN &&
               !(done.load() && ring.size() == 0 && produced >= kN)) {
          ring.prep_dequeue();
          const Value v = ring.exec_dequeue();
          if (v != kEmpty) {
            received.push_back(v);
          } else {
            std::this_thread::yield();  // empty: let the producer refill
          }
          if (done.load() && produced >= kN && ring.size() == 0) break;
        }
      } catch (const pmem::SimulatedCrash&) {
      }
    });
    producer.join();
    consumer.join();
    points.disarm();
    if (static_cast<Value>(received.size()) >= kN) {
      finished = true;
      break;
    }

    pool.crash({pmem::ShadowPool::Survival::kRandom, 0.5,
                static_cast<std::uint64_t>(era) + 1});
    ring.recover();
    // Producer settles its interrupted enqueue.
    const auto pr = ring.resolve_producer();
    if (pr.op == DssRing<pmem::SimContext>::Resolved::Op::kEnqueue &&
        pr.arg == produced && pr.response.has_value() &&
        *pr.response == kOk) {
      ++produced;  // it landed; do not re-send
    }
    // Consumer settles its interrupted dequeue.
    const auto cr = ring.resolve_consumer();
    if (cr.op == DssRing<pmem::SimContext>::Resolved::Op::kDequeue &&
        cr.response.has_value() && *cr.response != kEmpty) {
      if (received.empty() || received.back() != *cr.response) {
        received.push_back(*cr.response);
      }
    }
  }

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kN));
  for (Value i = 0; i < kN; ++i) {
    ASSERT_EQ(received[static_cast<std::size_t>(i)], i) << "gap or dup";
  }
}

}  // namespace
}  // namespace dssq::queues
