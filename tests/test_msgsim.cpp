// Tests of the message-passing DSS demonstration: the exactly-once RPC
// protocol built from prep/exec/resolve, under server crashes, message
// loss and reordering, swept through every server-side crash point.

#include <gtest/gtest.h>

#include "msgsim/msgsim.hpp"

namespace dssq::msgsim {
namespace {

struct MsgFixture : ::testing::Test {
  pmem::ShadowPool pool{1 << 20};
  pmem::CrashPoints points;
};

TEST_F(MsgFixture, FailureFreeWriteCompletes) {
  RegisterServer server(pool, points, 2);
  Network net(/*seed=*/1);
  WriteClient client(0, 42);
  client.start(net);
  run_until_quiet(net, server, {&client});
  EXPECT_EQ(client.phase(), WriteClient::Phase::kDone);
  EXPECT_TRUE(client.write_took_effect());
  EXPECT_EQ(server.current_value(), 42);
}

TEST_F(MsgFixture, TwoClientsLastWriterWins) {
  RegisterServer server(pool, points, 2);
  Network net(/*seed=*/7);
  WriteClient a(0, 10), b(1, 20);
  a.start(net);
  b.start(net);
  run_until_quiet(net, server, {&a, &b});
  EXPECT_TRUE(a.write_took_effect());
  EXPECT_TRUE(b.write_took_effect());
  const std::int64_t v = server.current_value();
  EXPECT_TRUE(v == 10 || v == 20);
}

TEST_F(MsgFixture, ServerCrashMidProtocolResolvedExactlyOnce) {
  // Sweep: crash the server at every persistence-relevant point of the
  // request handling; after restart the client's recovery round must
  // converge with the write applied exactly once.
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 20);
    pmem::CrashPoints points;
    RegisterServer server(pool, points, 1);
    Network net(/*seed=*/3 + static_cast<std::uint64_t>(k));
    WriteClient client(0, 42);
    client.start(net);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      run_until_quiet(net, server, {&client});
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) {
      EXPECT_TRUE(client.write_took_effect());
      break;
    }

    server.crash(net);  // in-flight messages die; pmem survives
    client.begin_recovery(net);
    run_until_quiet(net, server, {&client});
    EXPECT_EQ(client.phase(), WriteClient::Phase::kDone) << "k=" << k;
    EXPECT_TRUE(client.write_took_effect()) << "k=" << k;
    EXPECT_EQ(server.current_value(), 42) << "k=" << k;
  }
}

TEST_F(MsgFixture, MessageLossIsSurvivedByRetry) {
  // Drop half the in-flight messages several times; the client's
  // resolve-driven retry loop must still converge to exactly-once.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    pmem::ShadowPool pool(1 << 20);
    pmem::CrashPoints points;
    RegisterServer server(pool, points, 1);
    Network net(seed);
    WriteClient client(0, 42);
    client.start(net);

    for (int round = 0; round < 4; ++round) {
      // Deliver a few, then lose some.
      for (int i = 0; i < 2; ++i) {
        const auto m = net.deliver_one();
        if (!m.has_value()) break;
        if (m->dst == kServer) {
          server.handle(*m, net);
        } else {
          client.on_message(*m, net);
        }
      }
      net.drop_randomly(0.5);
      if (net.pending() == 0 &&
          client.phase() != WriteClient::Phase::kDone) {
        client.begin_recovery(net);  // timeout: ask what happened
      }
    }
    // Let the tail of the protocol finish.
    while (client.phase() != WriteClient::Phase::kDone) {
      if (net.pending() == 0) client.begin_recovery(net);
      run_until_quiet(net, server, {&client});
    }
    EXPECT_TRUE(client.write_took_effect()) << "seed=" << seed;
    EXPECT_EQ(server.current_value(), 42) << "seed=" << seed;
  }
}

TEST_F(MsgFixture, DuplicateExecRequestsApplyOnce) {
  // Deliver the same ExecRequest twice (at-least-once transport): the
  // server's rpc-id guard must apply it once.  Observable via a second
  // client whose write lands in between.
  RegisterServer server(pool, points, 2);
  Network net(/*seed=*/5);
  // Client 0 prepares+executes 100 by hand so we control duplication.
  server.handle(Message{0, kServer, MsgKind::kPrepRequest, 100, false, 0,
                        false, 1},
                net);
  server.handle(Message{0, kServer, MsgKind::kExecRequest, 100, false, 0,
                        false, 1},
                net);
  EXPECT_EQ(server.current_value(), 100);
  // Client 1 writes 200.
  server.handle(Message{1, kServer, MsgKind::kPrepRequest, 200, false, 0,
                        false, 1},
                net);
  server.handle(Message{1, kServer, MsgKind::kExecRequest, 200, false, 0,
                        false, 1},
                net);
  EXPECT_EQ(server.current_value(), 200);
  // The duplicated exec of client 0 must NOT clobber 200.
  server.handle(Message{0, kServer, MsgKind::kExecRequest, 100, false, 0,
                        false, 1},
                net);
  EXPECT_EQ(server.current_value(), 200)
      << "duplicate exec re-applied: at-least-once leaked through";
}

TEST_F(MsgFixture, ResolveIsIdempotentOverRpc) {
  RegisterServer server(pool, points, 1);
  Network net(/*seed=*/9);
  server.handle(Message{0, kServer, MsgKind::kPrepRequest, 7, false, 0,
                        false, 1},
                net);
  for (int i = 0; i < 3; ++i) {
    server.handle(Message{0, kServer, MsgKind::kResolveRequest, 0, false, 0,
                          false, 1},
                  net);
  }
  int acks = 0;
  while (auto m = net.deliver_one()) {
    if (m->kind == MsgKind::kResolveAck) {
      ++acks;
      EXPECT_TRUE(m->prepared);
      EXPECT_EQ(m->prepared_value, 7);
      EXPECT_FALSE(m->took_effect);
    }
  }
  EXPECT_EQ(acks, 3);
}

// ---- the queue server ---------------------------------------------------------

TEST_F(MsgFixture, QueueServerBasicFlow) {
  pmem::ShadowPool qpool(1 << 23);
  pmem::CrashPoints qpoints;
  QueueServer server(qpool, qpoints, 2);
  Network net(/*seed=*/3);

  // Client 0 enqueues 7 via prep + exec RPCs (driven by hand).
  server.handle(Message{0, kServer, MsgKind::kPrepRequest, 7, false, 0,
                        false, 1},
                net);
  server.handle(Message{0, kServer, MsgKind::kExecRequest, 7, false, 0,
                        false, 1},
                net);
  // Client 1 dequeues.
  server.handle(Message{1, kServer, MsgKind::kPrepRequest, kDeqMark, false,
                        0, false, 1},
                net);
  server.handle(Message{1, kServer, MsgKind::kExecRequest, kDeqMark, false,
                        0, false, 1},
                net);
  // Find the dequeue's ExecAck among the replies.
  std::int64_t got = -100;
  while (auto m = net.deliver_one()) {
    if (m->dst == 1 && m->kind == MsgKind::kExecAck) got = m->value;
  }
  EXPECT_EQ(got, 7);
}

TEST_F(MsgFixture, QueueServerCrashSweepExactlyOnceHandoff) {
  // A producer client enqueues task 42; the server crashes at every
  // possible persistence point; after recovery the producer resolves and
  // retries only if needed; finally a consumer dequeues.  Exactly one
  // copy of the task must ever be handed out.
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 23);
    pmem::CrashPoints points;
    QueueServer server(pool, points, 2);
    Network net(/*seed=*/17 + static_cast<std::uint64_t>(k));

    bool crashed = false;
    points.arm_countdown(k);
    try {
      server.handle(Message{0, kServer, MsgKind::kPrepRequest, 42, false, 0,
                            false, 1},
                    net);
      server.handle(Message{0, kServer, MsgKind::kExecRequest, 42, false, 0,
                            false, 1},
                    net);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();

    if (crashed) {
      server.crash_and_recover(net,
                               {pmem::ShadowPool::Survival::kRandom, 0.5,
                                static_cast<std::uint64_t>(k) + 1});
      // Producer resolves; retries iff the enqueue did not take effect.
      server.handle(Message{0, kServer, MsgKind::kResolveRequest, 0, false,
                            0, false, 1},
                    net);
      bool took_effect = false;
      bool prepared_as_enqueue = false;
      while (auto m = net.deliver_one()) {
        if (m->dst == 0 && m->kind == MsgKind::kResolveAck) {
          prepared_as_enqueue = m->prepared && m->prepared_value == 42;
          took_effect = m->took_effect;
        }
      }
      if (!prepared_as_enqueue || !took_effect) {
        server.handle(Message{0, kServer, MsgKind::kPrepRequest, 42, false,
                              0, false, 2},
                      net);
        server.handle(Message{0, kServer, MsgKind::kExecRequest, 42, false,
                              0, false, 2},
                      net);
      }
    }

    // Consumer drains: must receive 42 exactly once.
    int received = 0;
    for (int round = 0; round < 3; ++round) {
      server.handle(Message{1, kServer, MsgKind::kPrepRequest, kDeqMark,
                            false, 0, false,
                            static_cast<std::uint64_t>(round + 1)},
                    net);
      server.handle(Message{1, kServer, MsgKind::kExecRequest, kDeqMark,
                            false, 0, false,
                            static_cast<std::uint64_t>(round + 1)},
                    net);
    }
    while (auto m = net.deliver_one()) {
      if (m->dst == 1 && m->kind == MsgKind::kExecAck && m->value == 42) {
        ++received;
      }
    }
    EXPECT_EQ(received, 1) << "k=" << k << " crashed=" << crashed;
    if (!crashed) break;
  }
}

}  // namespace
}  // namespace dssq::msgsim
