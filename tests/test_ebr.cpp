// Unit tests for epoch-based reclamation: grace-period safety, epoch
// advancement, the pre-reclaim hook, and post-crash draining.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ebr/ebr.hpp"

namespace dssq::ebr {
namespace {

TEST(Ebr, RetiredNodeReclaimedAfterQuiescence) {
  EpochManager ebr(2);
  int reclaimed = 0;
  int node = 0;
  ebr.enter(0);
  ebr.retire(0, &node, [&](void*) { ++reclaimed; });
  ebr.exit(0);
  // Drive epochs forward from a quiescent state.
  for (int i = 0; i < 4; ++i) {
    ebr.enter(0);
    ebr.try_advance_and_drain(0);
    ebr.exit(0);
  }
  EXPECT_EQ(reclaimed, 1);
}

TEST(Ebr, ActiveReaderBlocksReclamation) {
  EpochManager ebr(2);
  std::atomic<int> reclaimed{0};
  int node = 0;

  ebr.enter(1);  // thread 1 holds a region open at the old epoch
  ebr.enter(0);
  ebr.retire(0, &node, [&](void*) { reclaimed.fetch_add(1); });
  for (int i = 0; i < 8; ++i) ebr.try_advance_and_drain(0);
  EXPECT_EQ(reclaimed.load(), 0)
      << "node reclaimed while a pre-retirement reader is still active";
  ebr.exit(0);
  ebr.exit(1);

  for (int i = 0; i < 4; ++i) {
    ebr.enter(0);
    ebr.try_advance_and_drain(0);
    ebr.exit(0);
  }
  EXPECT_EQ(reclaimed.load(), 1);
}

TEST(Ebr, EpochAdvancesWhenAllCaughtUp) {
  EpochManager ebr(2);
  const auto before = ebr.global_epoch();
  ebr.try_advance_and_drain(0);
  EXPECT_GT(ebr.global_epoch(), before);
}

TEST(Ebr, DrainAllUnsafeReclaimsEverything) {
  EpochManager ebr(1);
  int reclaimed = 0;
  int nodes[4];
  ebr.enter(0);
  for (auto& n : nodes) ebr.retire(0, &n, [&](void*) { ++reclaimed; });
  ebr.exit(0);
  EXPECT_EQ(ebr.limbo_size(), 4u);
  ebr.drain_all_unsafe();
  EXPECT_EQ(reclaimed, 4);
  EXPECT_EQ(ebr.limbo_size(), 0u);
}

TEST(Ebr, DrainWithoutReclaimingDropsCallbacks) {
  EpochManager ebr(1);
  int reclaimed = 0;
  int node = 0;
  ebr.enter(0);
  ebr.retire(0, &node, [&](void*) { ++reclaimed; });
  ebr.exit(0);
  ebr.drain_all_unsafe_without_reclaiming();
  EXPECT_EQ(reclaimed, 0);
  EXPECT_EQ(ebr.limbo_size(), 0u);
}

TEST(Ebr, PreReclaimHookRunsOncePerBatch) {
  EpochManager ebr(1);
  int hook_calls = 0;
  int reclaimed = 0;
  ebr.set_pre_reclaim_hook([&](std::size_t tid) {
    EXPECT_EQ(tid, 0u);
    ++hook_calls;
  });
  int nodes[3];
  ebr.enter(0);
  for (auto& n : nodes) ebr.retire(0, &n, [&](void*) { ++reclaimed; });
  ebr.exit(0);
  ebr.drain_all_unsafe();
  EXPECT_EQ(reclaimed, 3);
  EXPECT_EQ(hook_calls, 1) << "hook is per batch, not per node";
}

TEST(Ebr, ConcurrentStressNoUseAfterFree) {
  // Readers copy a published pointer and read through it inside a region;
  // the writer retires old values.  A reclaimed-while-read value would
  // show up as a torn canary.
  constexpr std::size_t kThreads = 4;
  EpochManager ebr(kThreads);
  struct Boxed {
    std::atomic<std::uint64_t> canary{0xABCD};
    bool live = true;
  };
  std::atomic<Boxed*> published{new Boxed};
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (std::size_t t = 1; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochGuard guard(ebr, t);
        Boxed* b = published.load(std::memory_order_acquire);
        if (b->canary.load(std::memory_order_relaxed) != 0xABCD) {
          violations.fetch_add(1);
        }
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    auto* fresh = new Boxed;
    Boxed* old = published.exchange(fresh, std::memory_order_acq_rel);
    ebr.enter(0);
    ebr.retire(0, old, [](void* p) {
      auto* b = static_cast<Boxed*>(p);
      b->canary.store(0xDEAD, std::memory_order_relaxed);  // poison
      delete b;
    });
    ebr.exit(0);
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(violations.load(), 0);
  ebr.drain_all_unsafe();
  delete published.load();
}

}  // namespace
}  // namespace dssq::ebr
