// Integration tests: recorded concurrent histories of the real DSS queue
// checked for strict linearizability against D⟨queue⟩ (the paper's
// Theorem 1, tested), including histories with crashes; plus a
// differential test of the queue against the DetectableModel oracle.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dss/checker.hpp"
#include "dss/detectable.hpp"
#include "dss/history.hpp"
#include "dss/specs/queue_spec.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "dss/specs/stack_spec.hpp"
#include "queues/dss_queue.hpp"
#include "queues/dss_stack.hpp"

namespace dssq {
namespace {

using dss::DetectableSpec;
using dss::History;
using dss::HistoryRecorder;
using dss::kEmpty;
using dss::kOk;
using dss::QueueSpec;
using dss::Value;
using DQ = DetectableSpec<QueueSpec>;
using SimQ = queues::DssQueue<pmem::SimContext>;

// Convert the queue's Resolved to the model's response type.
DQ::Resp to_model_resolve(const queues::Resolved& r) {
  DQ::ResolveResult out;
  if (r.op == queues::Resolved::Op::kEnqueue) {
    out.op = QueueSpec::Op{QueueSpec::Enq{r.arg}};
  } else if (r.op == queues::Resolved::Op::kDequeue) {
    out.op = QueueSpec::Op{QueueSpec::Deq{}};
  }
  if (r.response.has_value()) out.resp = *r.response;
  return DQ::Resp{out};
}

// Run `threads` workers doing random detectable ops on the real queue,
// recording a D⟨queue⟩ history; optionally crash mid-run, recover, resolve
// every thread (recorded as resolve operations), then check strict
// linearizability.
void record_and_check(std::size_t threads, int ops_per_thread,
                      bool with_crash, std::uint64_t seed) {
  pmem::ShadowPool pool(1 << 24);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  SimQ q(ctx, threads, 256);
  HistoryRecorder<DQ> rec;

  if (with_crash) {
    points.arm_countdown(
        static_cast<std::int64_t>(threads) * ops_per_thread * 2);
  }

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(hash_combine(seed, t));
      Value next = static_cast<Value>(t + 1) * 1000;
      try {
        for (int i = 0; i < ops_per_thread; ++i) {
          if (rng.next_bool(0.5)) {
            const Value v = next++;
            auto tok = rec.invoke(
                static_cast<int>(t),
                DQ::Op{DQ::Prep{QueueSpec::Op{QueueSpec::Enq{v}}}});
            q.prep_enqueue(t, v);
            rec.respond(tok, DQ::Resp{std::monostate{}});
            tok = rec.invoke(static_cast<int>(t), DQ::Op{DQ::Exec{}});
            q.exec_enqueue(t);
            rec.respond(tok, DQ::Resp{QueueSpec::Resp{kOk}});
          } else {
            auto tok = rec.invoke(
                static_cast<int>(t),
                DQ::Op{DQ::Prep{QueueSpec::Op{QueueSpec::Deq{}}}});
            q.prep_dequeue(t);
            rec.respond(tok, DQ::Resp{std::monostate{}});
            tok = rec.invoke(static_cast<int>(t), DQ::Op{DQ::Exec{}});
            const Value v = q.exec_dequeue(t);
            rec.respond(tok, DQ::Resp{QueueSpec::Resp{v}});
          }
        }
      } catch (const pmem::SimulatedCrash&) {
        // volatile state gone; the in-flight op stays pending in the
        // history
      }
    });
  }
  for (auto& w : workers) w.join();
  points.disarm();

  if (with_crash) {
    rec.crash();
    pool.crash({pmem::ShadowPool::Survival::kRandom, 0.5, seed});
    q.recover();
    for (std::size_t t = 0; t < threads; ++t) {
      const auto tok =
          rec.invoke(static_cast<int>(t), DQ::Op{DQ::Resolve{}});
      rec.respond(tok, to_model_resolve(q.resolve(t)));
    }
  }

  const History<DQ> h = rec.take();
  const auto result = dss::check_strict_linearizability(h, 20'000'000);
  EXPECT_TRUE(result.linearizable)
      << "threads=" << threads << " seed=" << seed << " crash=" << with_crash
      << ": " << result.message
      << " (configs=" << result.configurations << ")";
}

TEST(Linearizability, SingleThreadFailureFree) {
  record_and_check(1, 20, /*with_crash=*/false, 1);
}

TEST(Linearizability, TwoThreadsFailureFree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    record_and_check(2, 12, /*with_crash=*/false, seed);
  }
}

TEST(Linearizability, ThreeThreadsFailureFree) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    record_and_check(3, 8, /*with_crash=*/false, seed);
  }
}

TEST(Linearizability, TwoThreadsWithCrashAndResolve) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    record_and_check(2, 10, /*with_crash=*/true, seed);
  }
}

TEST(Linearizability, ThreeThreadsWithCrashAndResolve) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    record_and_check(3, 6, /*with_crash=*/true, seed);
  }
}

// ---- stack linearizability ------------------------------------------------------

using DS = DetectableSpec<dss::StackSpec>;
using SimStack = queues::DssStack<pmem::SimContext>;

// Record a concurrent history of the real detectable stack and check it
// against D⟨stack⟩, optionally with a crash + resolve era.
void record_and_check_stack(std::size_t threads, int ops_per_thread,
                            bool with_crash, std::uint64_t seed) {
  pmem::ShadowPool pool(1 << 24);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  SimStack st(ctx, threads, 256);
  HistoryRecorder<DS> rec;

  if (with_crash) {
    points.arm_countdown(
        static_cast<std::int64_t>(threads) * ops_per_thread * 2);
  }
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(hash_combine(seed ^ 0xABCD, t));
      Value next = static_cast<Value>(t + 1) * 1000;
      try {
        for (int i = 0; i < ops_per_thread; ++i) {
          if (rng.next_bool(0.5)) {
            const Value v = next++;
            auto tok = rec.invoke(
                static_cast<int>(t),
                DS::Op{DS::Prep{dss::StackSpec::Op{dss::StackSpec::Push{v}}}});
            st.prep_push(t, v);
            rec.respond(tok, DS::Resp{std::monostate{}});
            tok = rec.invoke(static_cast<int>(t), DS::Op{DS::Exec{}});
            st.exec_push(t);
            rec.respond(tok, DS::Resp{dss::StackSpec::Resp{kOk}});
          } else {
            auto tok = rec.invoke(
                static_cast<int>(t),
                DS::Op{DS::Prep{dss::StackSpec::Op{dss::StackSpec::Pop{}}}});
            st.prep_pop(t);
            rec.respond(tok, DS::Resp{std::monostate{}});
            tok = rec.invoke(static_cast<int>(t), DS::Op{DS::Exec{}});
            const Value v = st.exec_pop(t);
            rec.respond(tok, DS::Resp{dss::StackSpec::Resp{v}});
          }
        }
      } catch (const pmem::SimulatedCrash&) {
      }
    });
  }
  for (auto& w : workers) w.join();
  points.disarm();

  if (with_crash) {
    rec.crash();
    pool.crash({pmem::ShadowPool::Survival::kRandom, 0.5, seed});
    st.recover();
    for (std::size_t t = 0; t < threads; ++t) {
      const auto tok = rec.invoke(static_cast<int>(t), DS::Op{DS::Resolve{}});
      const queues::Resolved r = st.resolve(t);
      DS::ResolveResult out;
      if (r.op == queues::Resolved::Op::kEnqueue) {
        out.op = dss::StackSpec::Op{dss::StackSpec::Push{r.arg}};
      } else if (r.op == queues::Resolved::Op::kDequeue) {
        out.op = dss::StackSpec::Op{dss::StackSpec::Pop{}};
      }
      if (r.response.has_value()) out.resp = *r.response;
      rec.respond(tok, DS::Resp{out});
    }
  }
  const History<DS> h = rec.take();
  const auto result = dss::check_strict_linearizability(h, 20'000'000);
  EXPECT_TRUE(result.linearizable)
      << "stack threads=" << threads << " seed=" << seed
      << " crash=" << with_crash << ": " << result.message;
}

TEST(StackLinearizability, TwoThreadsFailureFree) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    record_and_check_stack(2, 10, /*with_crash=*/false, seed);
  }
}

TEST(StackLinearizability, TwoThreadsWithCrashAndResolve) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    record_and_check_stack(2, 8, /*with_crash=*/true, seed);
  }
}

TEST(StackLinearizability, ThreeThreadsFailureFree) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    record_and_check_stack(3, 6, /*with_crash=*/false, seed);
  }
}

// ---- differential test against the model oracle --------------------------------

TEST(Differential, SequentialQueueMatchesModel) {
  pmem::ShadowPool pool(1 << 23);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  SimQ q(ctx, 1, 256);
  dss::DetectableModel<QueueSpec> model;

  Xoshiro256 rng(4242);
  Value next = 1;
  for (int i = 0; i < 3000; ++i) {
    const double dice = rng.next_double();
    if (dice < 0.35) {
      const Value v = next++;
      q.prep_enqueue(0, v);
      q.exec_enqueue(0);
      model.prep(0, QueueSpec::Enq{v});
      model.exec(0);
    } else if (dice < 0.7) {
      q.prep_dequeue(0);
      const Value got = q.exec_dequeue(0);
      model.prep(0, QueueSpec::Deq{});
      const Value want = model.exec(0);
      ASSERT_EQ(got, want) << "op " << i;
    } else if (dice < 0.8) {
      const Value v = next++;
      q.enqueue(0, v);
      model.plain(0, QueueSpec::Enq{v});
    } else if (dice < 0.9) {
      const Value got = q.dequeue(0);
      const Value want = model.plain(0, QueueSpec::Deq{});
      ASSERT_EQ(got, want) << "op " << i;
    } else {
      const auto got = q.resolve(0);
      const auto want = model.resolve(0);
      // Compare resolve outputs field by field.
      if (!want.op.has_value()) {
        ASSERT_EQ(got.op, queues::Resolved::Op::kNone) << "op " << i;
      } else if (std::holds_alternative<QueueSpec::Enq>(*want.op)) {
        ASSERT_EQ(got.op, queues::Resolved::Op::kEnqueue) << "op " << i;
        ASSERT_EQ(got.arg, std::get<QueueSpec::Enq>(*want.op).value);
      } else {
        ASSERT_EQ(got.op, queues::Resolved::Op::kDequeue) << "op " << i;
      }
      ASSERT_EQ(got.response.has_value(), want.resp.has_value())
          << "op " << i;
      if (want.resp.has_value()) {
        ASSERT_EQ(*got.response, *want.resp) << "op " << i;
      }
    }
  }
}

}  // namespace
}  // namespace dssq
