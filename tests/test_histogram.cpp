// Tests for the log-bucketed latency histogram (src/common/histogram.hpp):
//
//   * bucket geometry — index/lower/upper round-trip for every bucket, the
//     buckets tile the value axis with no gaps or overlaps, and relative
//     width stays within the advertised ~3.2% above the identity region;
//   * percentile math — nearest-rank estimates agree with a sorted-vector
//     oracle (exactly in the identity region, within one bucket above it);
//   * merge / extremes bookkeeping;
//   * the per-thread recording glue (skips in DSSQ_TRACE=OFF builds).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "common/histogram.hpp"

namespace dssq {
namespace {

using H = LatencyHistogram;

TEST(HistogramBuckets, IndexLowerUpperRoundTrip) {
  for (std::size_t idx = 0; idx < H::kBucketCount; ++idx) {
    const std::uint64_t lo = H::bucket_lower(idx);
    const std::uint64_t hi = H::bucket_upper(idx);
    EXPECT_LE(lo, hi);
    EXPECT_EQ(H::bucket_index(lo), idx) << "idx=" << idx;
    EXPECT_EQ(H::bucket_index(hi), idx) << "idx=" << idx;
  }
}

TEST(HistogramBuckets, BucketsTileTheAxis) {
  for (std::size_t idx = 0; idx + 1 < H::kBucketCount; ++idx) {
    EXPECT_EQ(H::bucket_upper(idx) + 1, H::bucket_lower(idx + 1))
        << "gap/overlap at idx=" << idx;
  }
  // Saturation: everything past the last bucket's range still maps to it.
  EXPECT_EQ(H::bucket_index(UINT64_MAX), H::kBucketCount - 1);
}

TEST(HistogramBuckets, RelativeWidthStaysBounded) {
  for (std::size_t idx = H::kSubBuckets; idx + 1 < H::kBucketCount; ++idx) {
    const double lo = static_cast<double>(H::bucket_lower(idx));
    const double width = static_cast<double>(H::bucket_upper(idx)) -
                         static_cast<double>(H::bucket_lower(idx)) + 1;
    EXPECT_LE(width / lo, 1.0 / 16 + 1e-12) << "idx=" << idx;
  }
}

// Nearest-rank oracle with Stats::percentile semantics.
std::uint64_t oracle_percentile(std::vector<std::uint64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  if (p <= 0) return v.front();
  if (p >= 100) return v.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  return v[std::max<std::size_t>(rank, 1) - 1];
}

TEST(HistogramPercentile, ExactInIdentityRegion) {
  H h;
  std::vector<std::uint64_t> samples;
  std::mt19937 rng(42);
  std::uniform_int_distribution<std::uint64_t> dist(0, 31);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = dist(rng);
    h.add(v);
    samples.push_back(v);
  }
  for (const double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(h.percentile(p), oracle_percentile(samples, p)) << "p=" << p;
  }
}

TEST(HistogramPercentile, WithinOneBucketOfSortedOracle) {
  H h;
  std::vector<std::uint64_t> samples;
  std::mt19937 rng(7);
  // Log-uniform-ish spread over ~6 decades, the shape of latency data.
  std::uniform_real_distribution<double> mag(0.0, 20.0);
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<std::uint64_t>(std::exp2(mag(rng)));
    h.add(v);
    samples.push_back(v);
  }
  for (const double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    const std::uint64_t exact = oracle_percentile(samples, p);
    const std::uint64_t est = h.percentile(p);
    // The rank element and the estimate share a bucket (the estimate is
    // that bucket's midpoint, clamped to the observed extremes).
    EXPECT_GE(est, H::bucket_lower(H::bucket_index(exact))) << "p=" << p;
    EXPECT_LE(est, H::bucket_upper(H::bucket_index(exact))) << "p=" << p;
  }
  EXPECT_EQ(h.percentile(0), h.min());
  EXPECT_EQ(h.percentile(100), h.max());
}

TEST(HistogramPercentile, EmptyAndSingleton) {
  H h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);

  h.add(777);
  EXPECT_EQ(h.count(), 1u);
  for (const double p : {0.0, 50.0, 99.9, 100.0}) {
    EXPECT_EQ(h.percentile(p), 777u) << "p=" << p;
  }
}

TEST(Histogram, MergeAndExtremes) {
  H a, b;
  a.add(10, 3);
  b.add(1000, 2);
  b.add(5);

  H m;
  m.merge(a);
  m.merge(b);
  EXPECT_EQ(m.count(), 6u);
  EXPECT_EQ(m.min(), 5u);
  EXPECT_EQ(m.max(), 1000u);

  // note_extremes widens only the extremes (the transfer-via-bucket-lower
  // path in hist::merged()), never the counts.
  m.note_extremes(2, 2000);
  EXPECT_EQ(m.count(), 6u);
  EXPECT_EQ(m.min(), 2u);
  EXPECT_EQ(m.max(), 2000u);

  // ...and is a no-op on an empty histogram (min() must stay 0).
  H e;
  e.note_extremes(1, 1);
  EXPECT_EQ(e.count(), 0u);
  EXPECT_EQ(e.min(), 0u);
  EXPECT_EQ(e.max(), 0u);

  // Merging an empty histogram must not disturb extremes.
  m.merge(e);
  EXPECT_EQ(m.min(), 2u);
  EXPECT_EQ(m.max(), 2000u);
}

// ---- per-thread recording glue ---------------------------------------------

class HistGlue : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!hist::kEnabled) GTEST_SKIP() << "histograms compiled out";
    hist::reset();
  }
  void TearDown() override {
    if (hist::kEnabled) hist::reset();
  }
};

TEST_F(HistGlue, ConcurrentRecordsAllLand) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> ws;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ws.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist::record(100 * (t + 1));
      }
    });
  }
  for (auto& w : ws) w.join();

  const H m = hist::merged();
  EXPECT_EQ(m.count(), kThreads * kPerThread);
  EXPECT_EQ(m.min(), 100u);
  // 800 is above the identity region: the merge transfers bucket lower
  // bounds, and note_extremes restores the exact observed max.
  EXPECT_EQ(m.max(), 800u);
}

TEST_F(HistGlue, SlotsRecycleAcrossThreadLifetimes) {
  // Sequential short-lived threads reuse recycled registry slots; nothing
  // is lost and nothing is double-counted.
  for (int round = 0; round < 100; ++round) {
    std::thread([] { hist::record(50); }).join();
  }
  const H m = hist::merged();
  EXPECT_EQ(m.count(), 100u);
  EXPECT_EQ(m.min(), 50u);
  EXPECT_EQ(m.max(), 50u);

  hist::reset();
  EXPECT_EQ(hist::merged().count(), 0u);
}

}  // namespace
}  // namespace dssq
