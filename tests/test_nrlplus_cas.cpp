// Tests of the NRL+-style sequence-number CAS, including the executable
// counterexample for the paper's footnote 1: with a narrow sequence
// field, detection ALIASES after 2^SeqBits operations — the stale helper
// record of an old operation is indistinguishable from the current one.
// The DSS approach (prep records operation identity out-of-band, the DSS
// queue uses pointer identity) does not spend word bits on this.

#include <gtest/gtest.h>

#include "objects/nrlplus_cas.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"

namespace dssq::objects {
namespace {

struct NrlFixture : ::testing::Test {
  pmem::ShadowPool pool{1 << 20};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

using WideCas = NrlPlusCas<pmem::SimContext>;            // 16-bit seq
using NarrowCas = NrlPlusCas<pmem::SimContext, 2, 6>;    // 2-bit seq!

TEST_F(NrlFixture, BasicCasSemantics) {
  WideCas cas(ctx, 2);
  EXPECT_TRUE(cas.cas(0, 0, 10));
  EXPECT_EQ(cas.read(), 10);
  EXPECT_FALSE(cas.cas(1, 0, 20));
  EXPECT_EQ(cas.read(), 10);
}

TEST_F(NrlFixture, ValueRangeShrinksWithSeqBits) {
  // The bits ledger the paper's footnote describes, as constants.
  EXPECT_EQ(WideCas::kValueBits, 42u);
  EXPECT_EQ(NarrowCas::kValueBits, 56u);
  // Compare: the hand-built D⟨CAS⟩ keeps 48 value bits, and the DSS
  // queue's X word spends only 4 tag bits.
  EXPECT_LT(WideCas::kValueBits, 48u);
}

TEST_F(NrlFixture, RecoverAfterCompletedOps) {
  WideCas cas(ctx, 2);
  cas.cas(0, 0, 5);
  auto r = cas.recover(0);
  ASSERT_TRUE(r.succeeded.has_value());
  EXPECT_TRUE(*r.succeeded);
  cas.cas(1, 99, 1);  // fails
  r = cas.recover(1);
  ASSERT_TRUE(r.succeeded.has_value());
  EXPECT_FALSE(*r.succeeded);
}

TEST_F(NrlFixture, CrashSweepConsistentWithinSeqWindow) {
  // Inside the 2^SeqBits window the scheme is sound: sweep all crash
  // points of a single cas and check recover() against the word.
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 20);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    WideCas cas(ctx, 1);
    bool crashed = false;
    points.arm_countdown(k);
    try {
      cas.cas(0, 0, 7);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;
    pool.crash();
    const auto r = cas.recover(0);
    const std::int64_t v = cas.read();
    ASSERT_TRUE(v == 0 || v == 7) << "k=" << k;
    if (r.succeeded.has_value() && *r.succeeded) {
      EXPECT_EQ(v, 7) << "k=" << k;
    }
    if (v == 7 && r.expected == 0 && r.desired == 7) {
      // Effect present and the announce names this op: must detect it…
      // unless the announce itself was lost (crash before it persisted).
      if (r.succeeded.has_value()) {
        EXPECT_TRUE(*r.succeeded);
      }
    }
  }
}

TEST_F(NrlFixture, FootnoteCounterexampleSeqAliasing) {
  // With SeqBits = 2, run 4 operations by thread 0 so its sequence number
  // wraps to the value an OLD helper record carries; a crashed fifth
  // operation that never executed then ALIASES: recover() claims success
  // for an operation that never took effect.
  NarrowCas cas(ctx, 2);

  // op seq=1 by thread 0: succeeds, gets overwritten by thread 1 — the
  // helper record for (tid 0, seq 1) is persisted by the helper.
  ASSERT_TRUE(cas.cas(0, 0, 5));
  ASSERT_TRUE(cas.cas(1, 5, 6));  // records help for (0, seq 1)

  // Three more ops by thread 0 wrap its 2-bit counter: 2, 3, 0, next is 1.
  ASSERT_FALSE(cas.cas(0, 42, 1));  // seq 2 (fails, cheap)
  ASSERT_FALSE(cas.cas(0, 42, 1));  // seq 3
  ASSERT_FALSE(cas.cas(0, 42, 1));  // seq 0

  // Fifth op: seq wraps to 1.  Crash right after the announce persists —
  // the op NEVER executed, so ground truth is "did not take effect".
  points.arm_at_label("nrlplus:announced", /*occurrence=*/0);
  bool crashed = false;
  try {
    cas.cas(0, 6, 9);  // announce persists (2nd announce point), then dies
  } catch (const pmem::SimulatedCrash&) {
    crashed = true;
  }
  points.disarm();
  ASSERT_TRUE(crashed);
  pool.crash({pmem::ShadowPool::Survival::kAll, 1.0, 1});

  const auto r = cas.recover(0);
  EXPECT_EQ(cas.read(), 6) << "the fifth cas never executed";
  // THE ALIAS: the stale helper record for (tid 0, seq 1) matches the
  // wrapped sequence number, so recovery wrongly reports success.
  ASSERT_TRUE(r.succeeded.has_value())
      << "expected the aliasing false-positive this test documents";
  EXPECT_TRUE(*r.succeeded)
      << "if this fails, the aliasing window closed — update the docs";
}

TEST_F(NrlFixture, WideSeqDelaysButDoesNotEliminateAliasing) {
  // The same program does NOT alias with 16 sequence bits (the window is
  // 65536 operations instead of 4) — the defect is quantitative, which is
  // exactly the paper's point: "unbounded" sequence numbers cannot be
  // stored in a bounded word.
  WideCas cas(ctx, 2);
  ASSERT_TRUE(cas.cas(0, 0, 5));
  ASSERT_TRUE(cas.cas(1, 5, 6));
  ASSERT_FALSE(cas.cas(0, 42, 1));
  ASSERT_FALSE(cas.cas(0, 42, 1));
  ASSERT_FALSE(cas.cas(0, 42, 1));
  points.arm_at_label("nrlplus:announced", /*occurrence=*/0);
  bool crashed = false;
  try {
    cas.cas(0, 6, 9);
  } catch (const pmem::SimulatedCrash&) {
    crashed = true;
  }
  points.disarm();
  ASSERT_TRUE(crashed);
  pool.crash({pmem::ShadowPool::Survival::kAll, 1.0, 1});
  const auto r = cas.recover(0);
  EXPECT_FALSE(r.succeeded.has_value())
      << "seq 6 aliases nothing yet: recovery must report ⊥";
}

}  // namespace
}  // namespace dssq::objects
