// Functional tests of the DSS queue (no crashes): the prep/exec/resolve
// protocol, the non-detectable fast path, tag handling in X, EMPTY
// semantics, node recycling and the X-pinning rule.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <type_traits>
#include <vector>

#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"

namespace dssq::queues {
namespace {

using SimQ = DssQueue<pmem::SimContext>;

struct DssFixture : ::testing::Test {
  pmem::ShadowPool pool{1 << 22};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

// ---- detectable path ---------------------------------------------------------

TEST_F(DssFixture, DetectableEnqueueDequeueFifo) {
  SimQ q(ctx, 1, 64);
  for (Value v = 1; v <= 10; ++v) {
    q.prep_enqueue(0, v);
    q.exec_enqueue(0);
  }
  for (Value v = 1; v <= 10; ++v) {
    q.prep_dequeue(0);
    EXPECT_EQ(q.exec_dequeue(0), v);
  }
  q.prep_dequeue(0);
  EXPECT_EQ(q.exec_dequeue(0), kEmpty);
}

TEST_F(DssFixture, ResolveAfterCompletedEnqueue) {
  SimQ q(ctx, 1, 64);
  q.prep_enqueue(0, 42);
  q.exec_enqueue(0);
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kEnqueue);
  EXPECT_EQ(r.arg, 42);
  EXPECT_EQ(r.response, kOk);
}

TEST_F(DssFixture, ResolveAfterPrepOnlyEnqueue) {
  SimQ q(ctx, 1, 64);
  q.prep_enqueue(0, 42);
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kEnqueue);
  EXPECT_EQ(r.arg, 42);
  EXPECT_FALSE(r.response.has_value()) << "(enqueue(42), ⊥) expected";
}

TEST_F(DssFixture, ResolveAfterCompletedDequeue) {
  SimQ q(ctx, 1, 64);
  q.enqueue(0, 7);
  q.prep_dequeue(0);
  EXPECT_EQ(q.exec_dequeue(0), 7);
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kDequeue);
  EXPECT_EQ(r.response, 7);
}

TEST_F(DssFixture, ResolveAfterPrepOnlyDequeue) {
  SimQ q(ctx, 1, 64);
  q.enqueue(0, 7);
  q.prep_dequeue(0);
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kDequeue);
  EXPECT_FALSE(r.response.has_value());
}

TEST_F(DssFixture, ResolveAfterEmptyDequeue) {
  SimQ q(ctx, 1, 64);
  q.prep_dequeue(0);
  EXPECT_EQ(q.exec_dequeue(0), kEmpty);
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kDequeue);
  EXPECT_EQ(r.response, kEmpty);
}

TEST_F(DssFixture, ResolveWithNothingPreparedIsBottomBottom) {
  SimQ q(ctx, 1, 64);
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kNone);
  EXPECT_FALSE(r.response.has_value());
  EXPECT_EQ(r.to_string(), "(⊥, ⊥)");
}

TEST_F(DssFixture, ResolveIsIdempotent) {
  SimQ q(ctx, 1, 64);
  q.prep_enqueue(0, 5);
  q.exec_enqueue(0);
  const Resolved first = q.resolve(0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.resolve(0), first);
}

TEST_F(DssFixture, ExecEnqueueIdempotentWhenCompleted) {
  // Per Axiom 2 the application should not re-exec a completed op, but the
  // implementation tolerates it (recovery code paths may retry).
  SimQ q(ctx, 1, 64);
  q.prep_enqueue(0, 5);
  q.exec_enqueue(0);
  q.exec_enqueue(0);  // no-op: ENQ_COMPL already set
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<Value>{5})) << "value must not be duplicated";
}

TEST_F(DssFixture, PerThreadResolveIndependence) {
  SimQ q(ctx, 3, 64);
  q.prep_enqueue(0, 1);
  q.exec_enqueue(0);
  q.prep_enqueue(1, 2);
  // thread 2 never prepared anything
  EXPECT_EQ(q.resolve(0).response, kOk);
  EXPECT_FALSE(q.resolve(1).response.has_value());
  EXPECT_EQ(q.resolve(2).op, Resolved::Op::kNone);
}

// ---- X tag discipline -----------------------------------------------------------

TEST_F(DssFixture, XTagsFollowTheProtocol) {
  SimQ q(ctx, 1, 64);
  EXPECT_EQ(q.x_word(0), 0u);
  q.prep_enqueue(0, 5);
  EXPECT_TRUE(has_tag(q.x_word(0), kEnqPrepTag));
  EXPECT_FALSE(has_tag(q.x_word(0), kEnqComplTag));
  q.exec_enqueue(0);
  EXPECT_TRUE(has_tag(q.x_word(0), kEnqPrepTag | kEnqComplTag));
  q.prep_dequeue(0);
  EXPECT_EQ(q.x_word(0), kDeqPrepTag);
  q.exec_dequeue(0);
  EXPECT_TRUE(has_tag(q.x_word(0), kDeqPrepTag));
  EXPECT_FALSE(is_null_ptr(q.x_word(0))) << "X holds the predecessor";
}

TEST_F(DssFixture, EmptyDequeueSetsEmptyTag) {
  SimQ q(ctx, 1, 64);
  q.prep_dequeue(0);
  q.exec_dequeue(0);
  EXPECT_EQ(q.x_word(0), kDeqPrepTag | kEmptyTag);
}

// ---- non-detectable path -----------------------------------------------------------

TEST_F(DssFixture, NonDetectableOpsDoNotTouchX) {
  SimQ q(ctx, 1, 64);
  q.enqueue(0, 1);
  q.enqueue(0, 2);
  EXPECT_EQ(q.x_word(0), 0u);
  EXPECT_EQ(q.dequeue(0), 1);
  EXPECT_EQ(q.x_word(0), 0u);
  EXPECT_EQ(q.resolve(0).op, Resolved::Op::kNone);
}

TEST_F(DssFixture, NonDetectableDequeueCannotConfuseResolve) {
  // A detectable dequeue is prepared; before exec, the SAME thread's
  // earlier non-detectable dequeue must not make resolve claim success
  // (Section 3.2: non-detectable marks combine TID with a special tag).
  SimQ q(ctx, 1, 64);
  q.enqueue(0, 1);
  q.enqueue(0, 2);
  q.prep_dequeue(0);
  EXPECT_EQ(q.dequeue(0), 1);  // non-detectable, same thread
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kDequeue);
  EXPECT_FALSE(r.response.has_value())
      << "the prepared dequeue never executed";
}

TEST_F(DssFixture, MixedDetectableAndNonDetectable) {
  SimQ q(ctx, 2, 64);
  q.enqueue(0, 1);                      // plain
  q.prep_enqueue(1, 2);
  q.exec_enqueue(1);                    // detectable
  EXPECT_EQ(q.dequeue(0), 1);           // plain
  q.prep_dequeue(1);
  EXPECT_EQ(q.exec_dequeue(1), 2);      // detectable
  EXPECT_EQ(q.resolve(1).response, 2);
}

TEST_F(DssFixture, RepeatedOperationsAreDisambiguatedStructurally) {
  // Section 2.1 flags repeated identical operations as the ambiguous case
  // for resolve.  The DSS queue disambiguates structurally: each
  // prep-enqueue allocates a fresh node (distinct X pointer), and each
  // prep-dequeue resets X to the bare DEQ_PREP tag.  A second prepared
  // dequeue must therefore resolve as ⊥ even though the first completed.
  SimQ q(ctx, 1, 64);
  q.enqueue(0, 1);
  q.enqueue(0, 2);
  q.prep_dequeue(0);
  EXPECT_EQ(q.exec_dequeue(0), 1);
  q.prep_dequeue(0);  // second identical op; crash happens "here"
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kDequeue);
  EXPECT_FALSE(r.response.has_value())
      << "the completed first dequeue must not leak into the second's "
         "resolution";
}

TEST_F(DssFixture, RepeatedEnqueueOfSameValueDisambiguated) {
  SimQ q(ctx, 1, 64);
  q.prep_enqueue(0, 7);
  q.exec_enqueue(0);
  q.prep_enqueue(0, 7);  // same argument, fresh node
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kEnqueue);
  EXPECT_EQ(r.arg, 7);
  EXPECT_FALSE(r.response.has_value());
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<Value>{7})) << "only the first was applied";
}

// ---- memory management --------------------------------------------------------------

TEST_F(DssFixture, NodesRecycleThroughManyRounds) {
  SimQ q(ctx, 1, 32);
  for (int round = 0; round < 2000; ++round) {
    q.prep_enqueue(0, round);
    q.exec_enqueue(0);
    q.prep_dequeue(0);
    EXPECT_EQ(q.exec_dequeue(0), round);
  }
}

TEST_F(DssFixture, RePrepReclaimsFailedEnqueueNode) {
  SimQ q(ctx, 1, 4);
  // Prepare without exec 20 times: each prep must reclaim the previous
  // never-executed node, or the 4-node pool exhausts.
  for (int i = 0; i < 20; ++i) q.prep_enqueue(0, i);
  SUCCEED();
}

TEST(DssQueuePerf, ConcurrentDetectableMultiset) {
  pmem::EmulatedNvmContext ctx(1 << 24, pmem::EmulatedNvmBackend(
                                            pmem::EmulationParams{0, 0}));
  DssQueue<pmem::EmulatedNvmContext> q(ctx, 4, 256);
  constexpr int kOps = 1500;
  std::vector<std::vector<Value>> popped(4);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        q.prep_enqueue(t, static_cast<Value>(t * 1'000'000 + i));
        q.exec_enqueue(t);
        q.prep_dequeue(t);
        const Value v = q.exec_dequeue(t);
        if (v != kEmpty) popped[t].push_back(v);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<Value> all;
  for (const auto& p : popped) all.insert(all.end(), p.begin(), p.end());
  std::vector<Value> rest;
  q.drain_to(rest);
  all.insert(all.end(), rest.begin(), rest.end());
  std::sort(all.begin(), all.end());
  std::vector<Value> expected;
  for (std::size_t t = 0; t < 4; ++t) {
    for (int i = 0; i < kOps; ++i) {
      expected.push_back(static_cast<Value>(t * 1'000'000 + i));
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(all, expected);
}

TEST(DssQueuePerf, ConcurrentProducerConsumerFifo) {
  pmem::EmulatedNvmContext ctx(1 << 24, pmem::EmulatedNvmBackend(
                                            pmem::EmulationParams{0, 0}));
  DssQueue<pmem::EmulatedNvmContext> q(ctx, 2, 6000);  // asymmetric roles: size for the producer
  constexpr int kN = 4000;
  std::vector<Value> seen;
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) {
      q.prep_enqueue(0, i);
      q.exec_enqueue(0);
    }
  });
  std::thread consumer([&] {
    while (static_cast<int>(seen.size()) < kN) {
      q.prep_dequeue(1);
      const Value v = q.exec_dequeue(1);
      if (v != kEmpty) seen.push_back(v);
    }
  });
  producer.join();
  consumer.join();
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kN));
}

// ---- deprecated-alias source compatibility ----------------------------------

TEST(Resolve, DeprecatedResolveResultAliasStaysSourceCompatible) {
  // queues::ResolveResult is kept for one release as a deprecated alias of
  // queues::Resolved; existing downstream code spelling the old name (and
  // its Op enum) must keep compiling and behaving identically.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  static_assert(std::is_same_v<ResolveResult, Resolved>);
  pmem::ShadowPool pool(1 << 20);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  DssQueue<pmem::SimContext> q(ctx, 1, 16);
  q.prep_enqueue(0, 41);
  q.exec_enqueue(0);
  const ResolveResult r = q.resolve(0);
  EXPECT_EQ(r.op, ResolveResult::Op::kEnqueue);
  EXPECT_EQ(r.arg, 41);
  EXPECT_TRUE(r.took_effect());
#pragma GCC diagnostic pop
}

}  // namespace
}  // namespace dssq::queues
