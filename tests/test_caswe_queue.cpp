// Tests of the General and Fast CASWithEffect queues (PMwCAS-based,
// Figure 5b competitors).  Both variants share one templated test suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "harness/crash_harness.hpp"
#include "pmwcas/caswe_queue.hpp"

namespace dssq::pmwcas {
namespace {

using queues::kEmpty;
using queues::kOk;

template <class Q>
class CasweTest : public ::testing::Test {
 protected:
  pmem::ShadowPool pool{1 << 23};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

using Variants =
    ::testing::Types<GeneralCasWithEffectQueue<pmem::SimContext>,
                     FastCasWithEffectQueue<pmem::SimContext>>;
TYPED_TEST_SUITE(CasweTest, Variants);

TYPED_TEST(CasweTest, FifoSingleThread) {
  TypeParam q(this->ctx, 1, 64);
  for (Value v = 1; v <= 10; ++v) q.enqueue(0, v);
  for (Value v = 1; v <= 10; ++v) EXPECT_EQ(q.dequeue(0), v);
  EXPECT_EQ(q.dequeue(0), kEmpty);
}

TYPED_TEST(CasweTest, ResolveTracksOperations) {
  TypeParam q(this->ctx, 1, 64);
  q.prep_enqueue(0, 42);
  Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kEnqueue);
  EXPECT_EQ(r.arg, 42);
  EXPECT_FALSE(r.response.has_value());

  q.exec_enqueue(0);
  r = q.resolve(0);
  EXPECT_EQ(r.response, kOk);

  q.prep_dequeue(0);
  r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kDequeue);
  EXPECT_FALSE(r.response.has_value());

  EXPECT_EQ(q.exec_dequeue(0), 42);
  r = q.resolve(0);
  EXPECT_EQ(r.response, 42);
}

TYPED_TEST(CasweTest, EmptyDequeueResolvesEmpty) {
  TypeParam q(this->ctx, 1, 64);
  q.prep_dequeue(0);
  EXPECT_EQ(q.exec_dequeue(0), kEmpty);
  EXPECT_EQ(q.resolve(0).response, kEmpty);
}

TYPED_TEST(CasweTest, FreshQueueResolvesBottom) {
  TypeParam q(this->ctx, 1, 64);
  EXPECT_EQ(q.resolve(0).op, Resolved::Op::kNone);
}

TYPED_TEST(CasweTest, NodeAndDescriptorRecycling) {
  TypeParam q(this->ctx, 1, 32);
  for (int round = 0; round < 2000; ++round) {
    q.enqueue(0, round);
    ASSERT_EQ(q.dequeue(0), round);
  }
}

TYPED_TEST(CasweTest, CrashSweepEnqueueFailureAtomic) {
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 23);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    TypeParam q(ctx, 1, 64);
    q.enqueue(0, 1);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      q.enqueue(0, 100);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash();
    q.recover();
    const Resolved r = q.resolve(0);
    std::vector<Value> rest;
    q.drain_to(rest);
    const bool in_queue =
        std::find(rest.begin(), rest.end(), 100) != rest.end();
    if (r.op == Resolved::Op::kEnqueue && r.arg == 100) {
      EXPECT_EQ(r.response.has_value(), in_queue)
          << "k=" << k << ": X and queue state disagree";
    } else {
      EXPECT_FALSE(in_queue) << "k=" << k;
    }
    EXPECT_TRUE(std::find(rest.begin(), rest.end(), 1) != rest.end())
        << "k=" << k << ": completed enqueue lost";
  }
}

TYPED_TEST(CasweTest, CrashSweepDequeueFailureAtomic) {
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 23);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    TypeParam q(ctx, 1, 64);
    q.enqueue(0, 1);
    q.enqueue(0, 2);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      (void)q.dequeue(0);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash();
    q.recover();
    const Resolved r = q.resolve(0);
    std::vector<Value> rest;
    q.drain_to(rest);
    if (r.op == Resolved::Op::kDequeue && r.response.has_value() &&
        *r.response != kEmpty) {
      EXPECT_EQ(*r.response, 1) << "k=" << k;
      EXPECT_EQ(rest, (std::vector<Value>{2})) << "k=" << k;
    } else {
      EXPECT_EQ(rest, (std::vector<Value>{1, 2}))
          << "k=" << k << ": dequeue reported no effect but state changed";
    }
  }
}

TYPED_TEST(CasweTest, ConcurrentCrashStormExactlyOnce) {
  // Multi-threaded storm: random detectable ops, a system-wide crash,
  // descriptor roll-forward/back recovery, resolve-based accounting.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    pmem::ShadowPool pool(1 << 24);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    TypeParam q(ctx, 3, 512);

    auto outcomes = harness::run_crash_storm(q, 3, /*ops_per_thread=*/200,
                                             points, /*crash_after=*/300,
                                             seed * 101);
    pool.crash({pmem::ShadowPool::Survival::kRandom, 0.5, seed});
    q.recover();

    std::multiset<Value> enqueued, dequeued;
    for (std::size_t t = 0; t < 3; ++t) {
      const auto& o = outcomes[t];
      for (const Value v : o.enqueued) enqueued.insert(v);
      for (const Value v : o.dequeued) dequeued.insert(v);
      if (!o.crashed ||
          o.pending == harness::ThreadOutcome::Pending::kNone) {
        continue;
      }
      const Resolved r = q.resolve(t);
      if (o.pending == harness::ThreadOutcome::Pending::kEnqueue) {
        if (r.op == Resolved::Op::kEnqueue && r.arg == o.pending_arg &&
            r.response.has_value()) {
          enqueued.insert(o.pending_arg);
        }
      } else if (r.op == Resolved::Op::kDequeue &&
                 r.response.has_value() && *r.response != queues::kEmpty &&
                 std::find(o.dequeued.begin(), o.dequeued.end(),
                           *r.response) == o.dequeued.end()) {
        // The completed-list check filters the Figure 2(d) stale-record
        // case: a crash inside prep-dequeue before X persisted leaves the
        // PREVIOUS (already counted) dequeue's record in X.
        dequeued.insert(*r.response);
      }
    }
    std::multiset<Value> remaining;
    {
      std::vector<Value> rest;
      q.drain_to(rest);
      remaining.insert(rest.begin(), rest.end());
    }
    std::multiset<Value> consumed_plus_left = dequeued;
    consumed_plus_left.insert(remaining.begin(), remaining.end());
    EXPECT_EQ(enqueued, consumed_plus_left) << "seed=" << seed;
  }
}

TYPED_TEST(CasweTest, ConcurrentMultisetInvariant) {
  pmem::ShadowPool pool(1 << 24);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  TypeParam q(ctx, 4, 256);
  constexpr int kOps = 600;
  std::vector<std::vector<Value>> popped(4);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        q.enqueue(t, static_cast<Value>(t * 1'000'000 + i));
        const Value v = q.dequeue(t);
        if (v != kEmpty) popped[t].push_back(v);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<Value> all;
  for (const auto& p : popped) all.insert(all.end(), p.begin(), p.end());
  std::vector<Value> rest;
  q.drain_to(rest);
  all.insert(all.end(), rest.begin(), rest.end());
  std::sort(all.begin(), all.end());
  std::vector<Value> expected;
  for (std::size_t t = 0; t < 4; ++t) {
    for (int i = 0; i < kOps; ++i) {
      expected.push_back(static_cast<Value>(t * 1'000'000 + i));
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(all, expected);
}

}  // namespace
}  // namespace dssq::pmwcas
