// Unit tests for the persistence substrate: backends, the shadow-pool
// crash simulator, crash-point injection, and the context policies.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "pmem/backend.hpp"
#include "pmem/combiner.hpp"
#include "pmem/context.hpp"
#include "pmem/mmap_backend.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"

namespace dssq::pmem {
namespace {

// ---- backends ----------------------------------------------------------------

TEST(Backend, NullBackendIsNoop) {
  NullBackend b;
  int x = 0;
  b.persist(&x, sizeof(x));  // must not crash
  EXPECT_STREQ(NullBackend::name(), "null");
}

TEST(Backend, EmulatedLatencyScalesWithLines) {
  EmulationParams p;
  p.flush_ns_per_line = 50'000;  // big enough to measure: 50 µs per line
  p.fence_ns = 0;
  EmulatedNvmBackend b(p);
  alignas(64) char buf[64 * 8] = {};
  using Clock = std::chrono::steady_clock;
  spin_for_ns(1);  // force one-time spin calibration outside the timing

  // Best of several trials: a single measurement can be inflated by
  // preemption (parallel ctest, sanitizer runtimes), but the *minimum*
  // converges on the emulated spin time.
  auto min_elapsed = [&](std::size_t bytes) {
    Clock::duration best = Clock::duration::max();
    for (int trial = 0; trial < 5; ++trial) {
      const auto t0 = Clock::now();
      b.flush(buf, bytes);
      best = std::min(best, Clock::now() - t0);
    }
    return best;
  };
  const auto one = min_elapsed(64);        // 1 line
  const auto eight = min_elapsed(64 * 8);  // 8 lines

  EXPECT_GT(eight.count(), one.count() * 3);  // superlinear vs 1 line
}

TEST(Backend, EnvParamsFallBackToDefaults) {
  // (Environment is not set in the test runner.)
  const EmulationParams p = emulation_params_from_env();
  EXPECT_GT(p.flush_ns_per_line, 0u);
  EXPECT_GT(p.fence_ns, 0u);
}

TEST(Backend, ClwbBackendFlushesWithoutFaulting) {
  ClwbBackend b;
  alignas(64) char buf[256] = {};
  b.persist(buf, sizeof(buf));
  EXPECT_NE(ClwbBackend::name(), nullptr);
}

// ---- shadow pool ----------------------------------------------------------------

TEST(ShadowPool, AllocZeroedAndAligned) {
  ShadowPool pool(1 << 16);
  auto* p = static_cast<std::uint64_t*>(pool.alloc(64, 64));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  EXPECT_EQ(*p, 0u);
  EXPECT_TRUE(pool.contains(p));
}

TEST(ShadowPool, AllocExhaustionThrows) {
  ShadowPool pool(128);
  pool.alloc(64, 8);
  pool.alloc(64, 8);
  EXPECT_THROW(pool.alloc(1, 1), std::bad_alloc);
}

TEST(ShadowPool, UnflushedWritesAreLostOnCrash) {
  ShadowPool pool(1 << 12);
  auto* p = static_cast<std::uint64_t*>(pool.alloc(8, 8));
  *p = 0xdeadbeef;
  EXPECT_TRUE(pool.line_dirty(p));
  const auto report = pool.crash();  // Survival::kNone
  EXPECT_EQ(report.dirty_lines, 1u);
  EXPECT_EQ(report.survived_lines, 0u);
  EXPECT_EQ(*p, 0u) << "unflushed write must not survive";
}

TEST(ShadowPool, FlushAlonePersistsNothing) {
  ShadowPool pool(1 << 12);
  auto* p = static_cast<std::uint64_t*>(pool.alloc(8, 8));
  *p = 42;
  pool.flush(p, 8);  // CLWB without SFENCE: no guarantee yet
  pool.crash();
  EXPECT_EQ(*p, 0u);
}

TEST(ShadowPool, FlushPlusFenceSurvivesCrash) {
  ShadowPool pool(1 << 12);
  auto* p = static_cast<std::uint64_t*>(pool.alloc(8, 8));
  *p = 42;
  pool.persist(p, 8);
  EXPECT_FALSE(pool.line_dirty(p));
  pool.crash();
  EXPECT_EQ(*p, 42u);
}

TEST(ShadowPool, FencedLinesSurviveLaterUnfencedOverwrite) {
  ShadowPool pool(1 << 12);
  auto* p = static_cast<std::uint64_t*>(pool.alloc(8, 8));
  *p = 1;
  pool.persist(p, 8);
  *p = 2;  // overwrite, never flushed
  pool.crash();
  EXPECT_EQ(*p, 1u) << "crash must restore the last persisted value";
}

TEST(ShadowPool, SurvivalAllKeepsDirtyLines) {
  ShadowPool pool(1 << 12);
  auto* p = static_cast<std::uint64_t*>(pool.alloc(8, 8));
  *p = 7;
  ShadowPool::CrashOptions opt;
  opt.survival = ShadowPool::Survival::kAll;
  const auto report = pool.crash(opt);
  EXPECT_EQ(report.survived_lines, report.dirty_lines);
  EXPECT_EQ(*p, 7u);
}

TEST(ShadowPool, SurvivalRandomIsSeedDeterministic) {
  // Two identical pools with identical writes and the same seed must make
  // identical survival decisions (replayability of crash tests).
  auto run = [](std::uint64_t seed) {
    ShadowPool pool(1 << 14);
    std::vector<std::uint64_t*> ptrs;
    for (int i = 0; i < 32; ++i) {
      auto* p = static_cast<std::uint64_t*>(pool.alloc(64, 64));
      *p = 0x1000 + i;
      ptrs.push_back(p);
    }
    ShadowPool::CrashOptions opt;
    opt.survival = ShadowPool::Survival::kRandom;
    opt.p_survive = 0.5;
    opt.seed = seed;
    pool.crash(opt);
    std::vector<std::uint64_t> out;
    for (auto* p : ptrs) out.push_back(*p);
    return out;
  };
  EXPECT_EQ(run(123), run(123));
  EXPECT_NE(run(123), run(456));
}

TEST(ShadowPool, PendingFlushesInvalidatedByCrash) {
  ShadowPool pool(1 << 12);
  auto* p = static_cast<std::uint64_t*>(pool.alloc(8, 8));
  *p = 5;
  pool.flush(p, 8);  // pending, no fence
  pool.crash();
  EXPECT_EQ(*p, 0u);
  // A fence AFTER the crash must not commit the pre-crash pending flush.
  *p = 9;
  pool.fence();  // no flush since crash: commits nothing
  pool.crash();
  EXPECT_EQ(*p, 0u) << "pre-crash pending flush leaked through the crash";
}

TEST(ShadowPool, PerThreadPendingSetsAreIndependent) {
  ShadowPool pool(1 << 12);
  auto* a = static_cast<std::uint64_t*>(pool.alloc(64, 64));
  auto* b = static_cast<std::uint64_t*>(pool.alloc(64, 64));
  *a = 1;
  pool.flush(a, 8);  // main thread pending
  std::thread other([&] {
    *b = 2;
    pool.flush(b, 8);
    pool.fence();  // commits only b
  });
  other.join();
  pool.crash();
  EXPECT_EQ(*a, 0u) << "main thread never fenced";
  EXPECT_EQ(*b, 2u) << "other thread's fence must commit its flush";
}

TEST(ShadowPool, FlushOutsidePoolThrows) {
  ShadowPool pool(1 << 12);
  std::uint64_t local = 0;
  EXPECT_THROW(pool.flush(&local, 8), std::logic_error);
}

TEST(ShadowPool, PersistEverythingCleansAllLines) {
  ShadowPool pool(1 << 12);
  for (int i = 0; i < 8; ++i) {
    auto* p = static_cast<std::uint64_t*>(pool.alloc(64, 64));
    *p = i + 1;
  }
  EXPECT_GT(pool.count_dirty_lines(), 0u);
  pool.persist_everything();
  EXPECT_EQ(pool.count_dirty_lines(), 0u);
}

TEST(ShadowPool, WholeLineGranularity) {
  // Persisting one word persists its whole cache line (hardware behaviour).
  ShadowPool pool(1 << 12);
  auto* line = static_cast<std::uint64_t*>(pool.alloc(64, 64));
  line[0] = 11;
  line[7] = 77;
  pool.persist(&line[0], 8);  // flush word 0 only
  pool.crash();
  EXPECT_EQ(line[0], 11u);
  EXPECT_EQ(line[7], 77u) << "same-line neighbour persists with the line";
}

TEST(ShadowPool, ConcurrentPersistStress) {
  // Many threads persist increasing counters to their own lines; after a
  // kNone crash each line must hold exactly the last value its owner
  // persisted — concurrent flush/fence bookkeeping must not lose or leak
  // commits across threads.
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kRounds = 400;
  ShadowPool pool(1 << 16);
  std::vector<std::uint64_t*> slots(kThreads);
  for (auto& s : slots) {
    s = static_cast<std::uint64_t*>(pool.alloc(64, 64));
  }
  std::vector<std::uint64_t> last_persisted(kThreads, 0);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 1; i <= kRounds; ++i) {
        *slots[t] = i;
        pool.persist(slots[t], 8);
        last_persisted[t] = i;
      }
      *slots[t] = 999'999;  // never persisted: must not survive
    });
  }
  for (auto& w : workers) w.join();
  pool.crash();  // kNone
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(*slots[t], last_persisted[t]) << "thread " << t;
  }
}

// ---- crash points -----------------------------------------------------------------

TEST(CrashPoints, CountdownFiresAtNthPoint) {
  CrashPoints cp;
  cp.arm_countdown(2);
  EXPECT_NO_THROW(cp.point("a"));
  EXPECT_NO_THROW(cp.point("b"));
  EXPECT_THROW(cp.point("c"), SimulatedCrash);
}

TEST(CrashPoints, SystemWideOnceFired) {
  CrashPoints cp;
  cp.arm_countdown(0);
  EXPECT_THROW(cp.point("a"), SimulatedCrash);
  // Every subsequent point (any thread) must also die until disarmed.
  EXPECT_THROW(cp.point("b"), SimulatedCrash);
  EXPECT_TRUE(cp.fired());
  cp.disarm();
  EXPECT_NO_THROW(cp.point("c"));
}

TEST(CrashPoints, LabelTargeting) {
  CrashPoints cp;
  cp.arm_at_label("hot", 1);  // second occurrence of "hot"
  EXPECT_NO_THROW(cp.point("cold"));
  EXPECT_NO_THROW(cp.point("hot"));
  EXPECT_NO_THROW(cp.point("cold"));
  EXPECT_THROW(cp.point("hot"), SimulatedCrash);
}

TEST(CrashPoints, HitCountingForSweepBounds) {
  CrashPoints cp;
  cp.reset_hits();
  cp.point("x");
  cp.point("y");
  cp.point("z");
  EXPECT_EQ(cp.hits(), 3u);
}

TEST(CrashPoints, DisarmedIsFree) {
  CrashPoints cp;
  for (int i = 0; i < 1000; ++i) EXPECT_NO_THROW(cp.point("p"));
}

// ---- contexts -----------------------------------------------------------------------

TEST(Context, PerfContextAllocatesAligned) {
  VolatileContext ctx(1 << 16);
  auto* p = static_cast<std::uint64_t*>(ctx.raw_alloc(128, 64));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  EXPECT_EQ(*p, 0u);
  ctx.persist(p, 8);
  ctx.crash_point("ignored");  // no-op by construction
}

TEST(Context, PerfContextExhaustionThrows) {
  VolatileContext ctx(256);
  ctx.raw_alloc(128, 64);
  EXPECT_THROW(ctx.raw_alloc(512, 64), std::bad_alloc);
}

TEST(Context, SimContextRoutesToPoolAndPoints) {
  ShadowPool pool(1 << 12);
  CrashPoints points;
  SimContext ctx(pool, points);
  auto* p = static_cast<std::uint64_t*>(ctx.raw_alloc(8, 8));
  *p = 3;
  points.reset_hits();
  ctx.persist(p, 8);
  EXPECT_GE(points.hits(), 2u) << "persist must pass flush+fence points";
  pool.crash();
  EXPECT_EQ(*p, 3u);
}

TEST(Context, SimContextCrashAtFlushPoint) {
  ShadowPool pool(1 << 12);
  CrashPoints points;
  SimContext ctx(pool, points);
  auto* p = static_cast<std::uint64_t*>(ctx.raw_alloc(8, 8));
  *p = 3;
  points.arm_at_label("pmem:flush");
  EXPECT_THROW(ctx.persist(p, 8), SimulatedCrash);
  points.disarm();
  pool.crash();
  EXPECT_EQ(*p, 0u) << "crash at the flush point precedes the write-back";
}

// ---- backend crash hooks ----------------------------------------------------

/// Label tally used as CrashHook state.
struct HookLog {
  int flush = 0;
  int fence = 0;
  int fence_done = 0;
  static void hook(void* state, const char* label) {
    auto* self = static_cast<HookLog*>(state);
    if (std::strcmp(label, "pmem:flush") == 0) ++self->flush;
    if (std::strcmp(label, "pmem:fence") == 0) ++self->fence;
    if (std::strcmp(label, "pmem:fence-done") == 0) ++self->fence_done;
  }
};

TEST(Backend, EmulatedCrashHookFiresOnFlushAndFence) {
  // The regression this pins down: injection used to reach only flush
  // paths, so a crash could never land in the flush→fence window — the
  // exact window where write-back has begun but is not yet guaranteed.
  EmulatedNvmBackend b(EmulationParams{0, 0});
  HookLog log;
  b.set_crash_hook(&HookLog::hook, &log);
  int x = 0;
  b.flush(&x, sizeof(x));
  EXPECT_EQ(log.flush, 1);
  EXPECT_EQ(log.fence, 0);
  b.fence();
  EXPECT_EQ(log.fence, 1);
  EXPECT_EQ(log.fence_done, 1);
  b.persist(&x, sizeof(x));  // = flush + fence
  EXPECT_EQ(log.flush, 2);
  EXPECT_EQ(log.fence, 2);
  EXPECT_EQ(log.fence_done, 2);
  b.set_crash_hook(nullptr, nullptr);
  b.persist(&x, sizeof(x));
  EXPECT_EQ(log.flush, 2) << "disarmed hook must not fire";
}

TEST(Backend, MmapBackendHooksAndDisengagedNoop) {
  // A default-constructed (disengaged) MmapBackend must still fire hooks
  // symmetrically — the KillSwitch counts points, mapped or not — while
  // flush/fence themselves are no-ops.
  MmapBackend b;
  EXPECT_STREQ(MmapBackend::name(), "mmap");
  EXPECT_STREQ(b.mode_name(), "mmap-msync");
  HookLog log;
  b.set_crash_hook(&HookLog::hook, &log);
  int x = 0;
  b.persist(&x, sizeof(x));
  EXPECT_EQ(log.flush, 1);
  EXPECT_EQ(log.fence, 1);
  EXPECT_EQ(log.fence_done, 1);
}

// ---- fence combiner -----------------------------------------------------------

TEST(FenceCombiner, SingleThreadAlwaysClaimsItsOwnTicket) {
  // Degenerate case: with no concurrency there is never a fence to share,
  // so every call must claim its own ticket and run the hardware fence —
  // combining must not change single-threaded semantics or cost shape.
  const metrics::Snapshot before = metrics::snapshot();
  FenceCombiner c;
  int hw = 0;
  for (int i = 0; i < 5; ++i) c.fence([&] { ++hw; });
  EXPECT_EQ(hw, 5);
  EXPECT_EQ(c.started(), 5u);
  EXPECT_EQ(c.completed(), 5u);
  const metrics::Snapshot d = metrics::snapshot() - before;
  EXPECT_EQ(d[metrics::Counter::kFencesCombined], 5u);
  EXPECT_EQ(d[metrics::Counter::kFencesElided], 0u);
  EXPECT_EQ(d[metrics::Counter::kCombinerSpinFallbacks], 0u);
}

TEST(FenceCombiner, EpochClockIsMonotoneUnderContention) {
  constexpr std::size_t kThreads = 4;
  constexpr int kRounds = 500;
  const metrics::Snapshot before = metrics::snapshot();
  FenceCombiner c;
  std::atomic<std::uint64_t> hw_calls{0};
  std::atomic<int> monotonicity_violations{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      std::uint64_t prev = 0;
      for (int i = 0; i < kRounds; ++i) {
        const std::uint64_t cur = c.completed();
        if (cur < prev) monotonicity_violations.fetch_add(1);
        prev = cur;
        c.fence([&] { hw_calls.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(monotonicity_violations.load(), 0);
  // Quiescent: every claimed ticket has been published.
  EXPECT_EQ(c.completed(), c.started());
  // Accounting closes: each call either elided, combined, or fell back,
  // and the hardware fence ran exactly once per non-elided call.
  const metrics::Snapshot d = metrics::snapshot() - before;
  const std::uint64_t elided = d[metrics::Counter::kFencesElided];
  const std::uint64_t combined = d[metrics::Counter::kFencesCombined];
  const std::uint64_t fallbacks = d[metrics::Counter::kCombinerSpinFallbacks];
  EXPECT_EQ(elided + combined + fallbacks, kThreads * kRounds);
  EXPECT_EQ(hw_calls.load(), combined + fallbacks);
  EXPECT_EQ(c.started(), combined);
}

TEST(FenceCombiner, BoundedSpinFallsBackToSelfFence) {
  // A thread that loses the ticket race sees started_ already at its
  // target: its claim CAS can never succeed, and it must not wait
  // unboundedly for the winner (who may be preempted mid-fence).  Build
  // that state deterministically: a holder thread claims ticket 1 and
  // blocks inside the hardware fence, then the main thread runs the
  // protocol body against the same target.
  const metrics::Snapshot before = metrics::snapshot();
  FenceCombiner c;
  std::atomic<bool> in_hw{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    c.fence([&] {
      in_hw.store(true);
      while (!release.load()) std::this_thread::yield();
    });
  });
  while (!in_hw.load()) std::this_thread::yield();
  // Ticket 1 is claimed but not completed — the lost-race state.
  EXPECT_EQ(c.started(), 1u);
  EXPECT_EQ(c.completed(), 0u);

  int self_fences = 0;
  c.set_spin_limit(0);  // fall back on the first failed claim
  c.fence_at(1, [&] { ++self_fences; });
  EXPECT_EQ(self_fences, 1);
  c.set_spin_limit(64);  // spin the full budget, then still fall back
  c.fence_at(1, [&] { ++self_fences; });
  EXPECT_EQ(self_fences, 2);

  release.store(true);
  holder.join();
  EXPECT_EQ(c.completed(), 1u);
  const metrics::Snapshot d = metrics::snapshot() - before;
  EXPECT_EQ(d[metrics::Counter::kCombinerSpinFallbacks], 2u);
  EXPECT_EQ(d[metrics::Counter::kFencesCombined], 1u);
  EXPECT_EQ(d[metrics::Counter::kFencesElided], 0u);
}

TEST(FenceCombiner, AlreadyCompletedEpochElidesTheFence) {
  // The elide path, deterministically: a waiter whose announced epoch is
  // <= completed_ got its drain from the epoch's fencer and must return
  // without touching the hardware.
  const metrics::Snapshot before = metrics::snapshot();
  FenceCombiner c;
  c.fence([] {});  // completed_ = 1
  int hw = 0;
  c.fence_at(1, [&] { ++hw; });
  EXPECT_EQ(hw, 0) << "epoch 1 already drained: the fence must be elided";
  const metrics::Snapshot d = metrics::snapshot() - before;
  EXPECT_EQ(d[metrics::Counter::kFencesElided], 1u);
  EXPECT_EQ(d[metrics::Counter::kFencesCombined], 1u);
}

TEST(FenceCombiner, CombinedFenceFiresCrashHookInsideWindow) {
  // The crash-injection contract must survive combining: a combined
  // persist still passes through the backend's flush and fence hooks, so
  // a KillSwitch countdown can land inside the combined flush→fence
  // window exactly as it can on the raw path.
  EmulatedNvmContext ctx(1 << 16,
                         EmulatedNvmBackend(EmulationParams{0, 0}));
  HookLog log;
  ctx.backend().set_crash_hook(&HookLog::hook, &log);
  int* p = alloc_object<int>(ctx, 7);
  ctx.persist_combined(p, sizeof(*p));
  EXPECT_EQ(log.flush, 1);
  // Single-threaded, so the combiner claims and performs the real fence.
  EXPECT_EQ(log.fence, 1);
  EXPECT_EQ(log.fence_done, 1);
}

TEST(FenceCombiner, RuntimeKnobRoutesAroundCombiner) {
  const bool saved = fence_combining_enabled();
  EmulatedNvmContext ctx(1 << 16,
                         EmulatedNvmBackend(EmulationParams{0, 0}));
  int* p = alloc_object<int>(ctx, 1);
  set_fence_combining_enabled(false);
  ctx.persist_combined(p, sizeof(*p));
  EXPECT_EQ(ctx.combiner().started(), 0u)
      << "disabled: the combiner must not see the fence";
  set_fence_combining_enabled(true);
  ctx.persist_combined(p, sizeof(*p));
#if DSSQ_FENCE_COMBINING_ENABLED
  EXPECT_EQ(ctx.combiner().started(), 1u);
#else
  // Compile gate off: the getter is constant-false, so even an enabled
  // runtime knob must route straight to the backend.
  EXPECT_EQ(ctx.combiner().started(), 0u);
#endif
  set_fence_combining_enabled(saved);
}

TEST(Context, AllocObjectConstructs) {
  VolatileContext ctx(1 << 16);
  struct Pod {
    int a;
    int b;
  };
  Pod* p = alloc_object<Pod>(ctx, Pod{1, 2});
  EXPECT_EQ(p->a, 1);
  EXPECT_EQ(p->b, 2);
  auto* arr = alloc_array<std::uint64_t>(ctx, 16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(arr[i], 0u);
}

}  // namespace
}  // namespace dssq::pmem
