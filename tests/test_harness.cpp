// Tests of the harness utilities: table rendering, adapters, the
// throughput driver's accounting, and the crash-storm runner's outcome
// bookkeeping.

#include <gtest/gtest.h>

#include <chrono>

#include "harness/adapters.hpp"
#include "harness/crash_harness.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"
#include "queues/ms_queue.hpp"

namespace dssq::harness {
namespace {

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // All lines equal length (alignment) except possibly trailing spaces…
  // check the separator covers the widest row.
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, WrongCellCountThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 3), "1.000");
}

TEST(Adapters, DirectAndDetectableEquivalentResults) {
  pmem::VolatileContext ctx(1 << 22);
  queues::MsQueue<pmem::VolatileContext> ms(ctx, 1, 64);
  DirectAdapter<decltype(ms)> direct{ms};
  direct.enqueue(0, 5);
  EXPECT_EQ(direct.dequeue(0), 5);

  pmem::ShadowPool pool(1 << 22);
  pmem::CrashPoints points;
  pmem::SimContext sctx(pool, points);
  queues::DssQueue<pmem::SimContext> dss(sctx, 1, 64);
  DetectableAdapter<decltype(dss)> det{dss};
  det.enqueue(0, 7);
  EXPECT_EQ(det.dequeue(0), 7);
  // The detectable adapter must have used the prep/exec path (X set).
  EXPECT_NE(dss.x_word(0), 0u);
}

TEST(Workload, CountsRoughlyMatchDuration) {
  pmem::VolatileContext ctx(1 << 22);
  queues::MsQueue<pmem::VolatileContext> ms(ctx, 2, 512);
  DirectAdapter<decltype(ms)> adapter{ms};
  seed_queue(adapter, 16);
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.duration = std::chrono::milliseconds(40);
  cfg.warmup = std::chrono::milliseconds(5);
  cfg.repetitions = 2;
  const WorkloadResult res = run_throughput(adapter, cfg);
  EXPECT_GT(res.mean_mops, 0.0);
  EXPECT_EQ(res.samples.count(), 2u);
}

TEST(CrashStorm, OutcomesAccountForEveryThread) {
  pmem::ShadowPool pool(1 << 23);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  queues::DssQueue<pmem::SimContext> q(ctx, 3, 256);
  const auto outcomes = run_crash_storm(q, 3, /*ops_per_thread=*/50, points,
                                        /*crash_after=*/60, /*seed=*/9);
  ASSERT_EQ(outcomes.size(), 3u);
  bool any_crashed = false;
  for (const auto& o : outcomes) any_crashed |= o.crashed;
  EXPECT_TRUE(any_crashed) << "the injector was armed well within the run";
  // A thread that did not crash must have completed all its operations
  // with no pending op.
  for (const auto& o : outcomes) {
    if (!o.crashed) {
      EXPECT_EQ(o.pending, ThreadOutcome::Pending::kNone);
    }
  }
}

TEST(CrashStorm, NoCrashWhenArmedBeyondWorkload) {
  pmem::ShadowPool pool(1 << 23);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  queues::DssQueue<pmem::SimContext> q(ctx, 2, 256);
  const auto outcomes = run_crash_storm(q, 2, /*ops_per_thread=*/10, points,
                                        /*crash_after=*/1'000'000,
                                        /*seed=*/9);
  for (const auto& o : outcomes) {
    EXPECT_FALSE(o.crashed);
    EXPECT_EQ(o.enqueued.size() + o.dequeued.size() +
                  static_cast<std::size_t>(o.pending !=
                                           ThreadOutcome::Pending::kNone),
              o.enqueued.size() + o.dequeued.size());
  }
}

}  // namespace
}  // namespace dssq::harness
