// TaggedWord edge cases: 48-bit pointer boundaries, null-with-tag words,
// tag overflow/masking, and the address_bits/fits_in_address_bits helpers
// the persistency lint steers code toward.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/tagged_ptr.hpp"

namespace dssq {
namespace {

struct Dummy {
  int payload = 0;
};

TEST(TaggedPtr, MasksPartitionTheWord) {
  EXPECT_EQ(kAddressMask & kTagMask, 0u);
  EXPECT_EQ(kAddressMask | kTagMask, ~std::uint64_t{0});
  EXPECT_EQ(kAddressMask, (std::uint64_t{1} << 48) - 1);
}

TEST(TaggedPtr, TagBitsCoverExactlyTheTagField) {
  std::uint64_t all = 0;
  for (unsigned i = 0; i < 16; ++i) {
    const TaggedWord bit = tag_bit(i);
    EXPECT_EQ(bit & kAddressMask, 0u) << "tag_bit(" << i << ") leaks low";
    EXPECT_EQ(bit & all, 0u) << "tag_bit(" << i << ") overlaps another";
    all |= bit;
  }
  EXPECT_EQ(all, kTagMask);
  EXPECT_EQ(tag_bit(0), std::uint64_t{1} << 48);
  EXPECT_EQ(tag_bit(15), std::uint64_t{1} << 63);
}

TEST(TaggedPtr, RoundTripsRealPointerWithEveryTagBit) {
  Dummy d;
  for (unsigned i = 0; i < 16; ++i) {
    const TaggedWord w = make_tagged(&d, tag_bit(i));
    EXPECT_EQ(untag<Dummy>(w), &d);
    EXPECT_EQ(tags_of(w), tag_bit(i));
    EXPECT_TRUE(has_tag(w, tag_bit(i)));
    EXPECT_FALSE(is_null_ptr(w));
  }
}

TEST(TaggedPtr, FortyEightBitBoundaryAddresses) {
  // Highest representable address and its neighbors, synthesized as
  // integers (not dereferenced): the address field must hold them exactly.
  const std::uint64_t top = kAddressMask;         // 2^48 - 1
  const std::uint64_t low = 1;                    // lowest nonzero
  for (std::uint64_t addr : {low, top, top - 1, std::uint64_t{1} << 47}) {
    const TaggedWord w = addr | tag_bit(3);
    EXPECT_EQ(address_bits(w), addr);
    EXPECT_EQ(tags_of(w), tag_bit(3));
    EXPECT_EQ(reinterpret_cast<std::uint64_t>(untag<Dummy>(w)), addr);
  }
}

TEST(TaggedPtr, NullWithTagIsNullButTagged) {
  // The DSS queue's EMPTY_TAG case: a tag word with no pointer.
  const TaggedWord w = make_tagged<Dummy>(nullptr, tag_bit(7));
  EXPECT_TRUE(is_null_ptr(w));
  EXPECT_EQ(untag<Dummy>(w), nullptr);
  EXPECT_TRUE(has_tag(w, tag_bit(7)));
  EXPECT_NE(w, 0u);  // tagged null is distinguishable from raw zero
}

TEST(TaggedPtr, MakeTaggedMasksOverflowingInputs) {
  Dummy d;
  // Tags argument with address bits set: only the tag field survives.
  const TaggedWord w = make_tagged(&d, ~std::uint64_t{0});
  EXPECT_EQ(untag<Dummy>(w), &d);
  EXPECT_EQ(tags_of(w), kTagMask);
  // A "pointer" with tag bits set (e.g. a kernel-space-style address):
  // make_tagged truncates it into the address field.
  const TaggedWord fake = make_tagged(
      reinterpret_cast<Dummy*>(static_cast<std::uintptr_t>(~std::uint64_t{0})),
      0);
  EXPECT_EQ(fake, kAddressMask);
  EXPECT_EQ(tags_of(fake), 0u);
}

TEST(TaggedPtr, WithAndWithoutTagAreInverses) {
  Dummy d;
  const TaggedWord base = make_tagged(&d, tag_bit(1));
  const TaggedWord more = with_tag(base, tag_bit(2) | tag_bit(9));
  EXPECT_TRUE(has_tag(more, tag_bit(1) | tag_bit(2) | tag_bit(9)));
  EXPECT_TRUE(has_any_tag(more, tag_bit(2)));
  const TaggedWord back = without_tag(more, tag_bit(2) | tag_bit(9));
  EXPECT_EQ(back, base);
  EXPECT_FALSE(has_any_tag(without_tag(more, kTagMask), kTagMask));
}

TEST(TaggedPtr, FitsInAddressBits) {
  EXPECT_TRUE(fits_in_address_bits(0));
  EXPECT_TRUE(fits_in_address_bits(kAddressMask));
  EXPECT_FALSE(fits_in_address_bits(kAddressMask + 1));
  EXPECT_FALSE(fits_in_address_bits(tag_bit(0)));
  EXPECT_FALSE(fits_in_address_bits(~std::uint64_t{0}));
}

TEST(TaggedPtr, AddressBitsDropsEveryTagCombination) {
  const std::uint64_t addr = 0x0000'7fff'ffff'fff8;  // plausible heap address
  for (TaggedWord tags : {TaggedWord{0}, tag_bit(0), kTagMask,
                          tag_bit(15) | tag_bit(13)}) {
    EXPECT_EQ(address_bits(addr | tags), addr);
  }
}

}  // namespace
}  // namespace dssq
