// Crash-recovery property tests for the DSS queue — the heart of the
// reproduction.  These tests realize the paper's failure model against the
// shadow-pool simulator:
//
//   * exhaustive single-threaded crash sweeps: for EVERY instrumented
//     crash location inside prep/exec (countdown k = 0, 1, 2, ... until an
//     uninterrupted run), under every survival adversary, the post-crash
//     recover+resolve outcome must match the DSS semantics of Figure 2 —
//     resolve reports (op, r) with r ≠ ⊥ iff the operation's effect is
//     actually in the recovered queue;
//   * exactly-once re-execution: a ⊥ resolution followed by a retry yields
//     exactly one copy; an OK resolution followed by NO retry also yields
//     exactly one copy;
//   * the independent-recovery variant (Section 3.3, "no auxiliary
//     state"): the same sweep with per-thread recover_independent;
//   * crash-during-recovery: recovery is idempotent under repeated crashes;
//   * multi-threaded crash storms with full multiset verification.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "harness/crash_harness.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"

namespace dssq::queues {
namespace {

using SimQ = DssQueue<pmem::SimContext>;
using pmem::ShadowPool;
using pmem::SimulatedCrash;

struct Adversary {
  ShadowPool::CrashOptions options;
  const char* name;
};

std::vector<Adversary> adversaries() {
  std::vector<Adversary> out;
  out.push_back({{ShadowPool::Survival::kNone, 0.0, 1}, "none"});
  out.push_back({{ShadowPool::Survival::kAll, 1.0, 1}, "all"});
  for (std::uint64_t seed : {7ull, 21ull, 99ull}) {
    out.push_back({{ShadowPool::Survival::kRandom, 0.5, seed}, "random"});
  }
  return out;
}

std::vector<Value> sorted_drain(const SimQ& q) {
  std::vector<Value> rest;
  q.drain_to(rest);
  std::sort(rest.begin(), rest.end());
  return rest;
}

bool contains(const std::vector<Value>& v, Value x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// ---- exhaustive single-threaded sweeps ------------------------------------------

class CrashSweep : public ::testing::TestWithParam<std::size_t> {};

// Sweep crash points through a detectable enqueue.  The queue is pre-seeded
// with {1,2,3}; the op under test enqueues 100.
TEST_P(CrashSweep, EnqueueEveryCrashLocationResolvesConsistently) {
  const Adversary adv = adversaries()[GetParam()];
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 1, 64);
    for (Value v = 1; v <= 3; ++v) q.enqueue(0, v);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      q.prep_enqueue(0, 100);
      q.exec_enqueue(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();

    if (!crashed) {
      // Sweep exhausted: the whole operation ran without the injector
      // firing; final sanity check and stop.
      EXPECT_TRUE(contains(sorted_drain(q), 100));
      ASSERT_GT(k, 3) << "suspiciously few crash points instrumented";
      break;
    }

    pool.crash(adv.options);
    q.recover();
    const Resolved r = q.resolve(0);
    const auto rest = sorted_drain(q);

    if (r.op == Resolved::Op::kEnqueue && r.arg == 100) {
      if (r.response.has_value()) {
        EXPECT_EQ(*r.response, kOk);
        EXPECT_TRUE(contains(rest, 100))
            << adv.name << " k=" << k
            << ": resolve says OK but the value is not in the queue";
      } else {
        EXPECT_FALSE(contains(rest, 100))
            << adv.name << " k=" << k
            << ": resolve says ⊥ but the value is in the queue";
      }
    } else {
      // Crash inside prep before X persisted (Figure 2 case (d)): the
      // record may be absent, but then the effect must be absent too.
      EXPECT_FALSE(contains(rest, 100)) << adv.name << " k=" << k;
    }
    // Pre-seeded values are never lost (their enqueues completed).
    for (Value v = 1; v <= 3; ++v) {
      EXPECT_TRUE(contains(rest, v)) << adv.name << " k=" << k;
    }
  }
}

// Sweep crash points through a detectable dequeue of a seeded queue.
TEST_P(CrashSweep, DequeueEveryCrashLocationResolvesConsistently) {
  const Adversary adv = adversaries()[GetParam()];
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 1, 64);
    for (Value v = 1; v <= 3; ++v) q.enqueue(0, v);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      q.prep_dequeue(0);
      (void)q.exec_dequeue(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();

    if (!crashed) break;

    pool.crash(adv.options);
    q.recover();
    const Resolved r = q.resolve(0);
    const auto rest = sorted_drain(q);

    if (r.op == Resolved::Op::kDequeue && r.response.has_value()) {
      ASSERT_NE(*r.response, kEmpty)
          << adv.name << " k=" << k << ": queue was non-empty";
      EXPECT_EQ(*r.response, 1) << "FIFO: only the head can be dequeued";
      EXPECT_FALSE(contains(rest, 1))
          << adv.name << " k=" << k
          << ": resolve says value dequeued but it is still queued";
      EXPECT_TRUE(contains(rest, 2));
      EXPECT_TRUE(contains(rest, 3));
    } else {
      // ⊥ (or a stale record): the dequeue must not have removed anything.
      EXPECT_EQ(rest, (std::vector<Value>{1, 2, 3}))
          << adv.name << " k=" << k
          << ": resolve says no effect but a value vanished";
    }
  }
}

// Dequeue sweep against an EMPTY queue: resolve must report EMPTY or ⊥,
// and the queue stays empty.
TEST_P(CrashSweep, EmptyDequeueCrashLocations) {
  const Adversary adv = adversaries()[GetParam()];
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 1, 64);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      q.prep_dequeue(0);
      (void)q.exec_dequeue(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash(adv.options);
    q.recover();
    const Resolved r = q.resolve(0);
    EXPECT_TRUE(sorted_drain(q).empty());
    if (r.op == Resolved::Op::kDequeue && r.response.has_value()) {
      EXPECT_EQ(*r.response, kEmpty);
    }
  }
}

std::string adversary_name(
    const ::testing::TestParamInfo<std::size_t>& info) {
  static const char* names[] = {"none", "all", "random7", "random21",
                                "random99"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllAdversaries, CrashSweep,
                         ::testing::Range<std::size_t>(0, 5),
                         adversary_name);

// ---- exactly-once retry -------------------------------------------------------------

class RetrySweep : public ::testing::TestWithParam<std::size_t> {};

// After any crash, the application protocol "resolve; if ⊥ then re-prep
// and re-exec" must deliver the value exactly once.
TEST_P(RetrySweep, EnqueueRetriesExactlyOnce) {
  const Adversary adv = adversaries()[GetParam()];
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 1, 64);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      q.prep_enqueue(0, 100);
      q.exec_enqueue(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash(adv.options);
    q.recover();
    const Resolved r = q.resolve(0);
    const bool took_effect = r.op == Resolved::Op::kEnqueue &&
                             r.arg == 100 && r.response.has_value();
    if (!took_effect) {
      q.prep_enqueue(0, 100);  // retry
      q.exec_enqueue(0);
    }
    const auto rest = sorted_drain(q);
    EXPECT_EQ(std::count(rest.begin(), rest.end(), 100), 1)
        << adv.name << " k=" << k << ": not exactly-once";
  }
}

TEST_P(RetrySweep, DequeueRetriesConsumeEachValueOnce) {
  const Adversary adv = adversaries()[GetParam()];
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 1, 64);
    for (Value v = 1; v <= 3; ++v) q.enqueue(0, v);

    bool crashed = false;
    std::vector<Value> got;
    points.arm_countdown(k);
    try {
      q.prep_dequeue(0);
      got.push_back(q.exec_dequeue(0));
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash(adv.options);
    q.recover();
    const Resolved r = q.resolve(0);
    if (r.op == Resolved::Op::kDequeue && r.response.has_value()) {
      got.push_back(*r.response);  // recovered the interrupted response
    } else {
      q.prep_dequeue(0);  // retry
      got.push_back(q.exec_dequeue(0));
    }
    // Consume the rest.
    for (;;) {
      q.prep_dequeue(0);
      const Value v = q.exec_dequeue(0);
      if (v == kEmpty) break;
      got.push_back(v);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<Value>{1, 2, 3}))
        << adv.name << " k=" << k
        << ": dequeue sequence lost or duplicated a value";
  }
}

INSTANTIATE_TEST_SUITE_P(AllAdversaries, RetrySweep,
                         ::testing::Range<std::size_t>(0, 5));

// ---- independent recovery (Section 3.3) ------------------------------------------------

class IndependentRecoverySweep
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IndependentRecoverySweep, EnqueueSweepWithoutCentralizedPhase) {
  const Adversary adv = adversaries()[GetParam()];
  for (std::int64_t k = 0;; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 1, 64);
    for (Value v = 1; v <= 3; ++v) q.enqueue(0, v);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      q.prep_enqueue(0, 100);
      q.exec_enqueue(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash(adv.options);
    // No Figure-6 pass: the thread repairs only its own X entry.
    q.recover_independent(0);
    q.rebuild_free_lists();
    const Resolved r = q.resolve(0);
    const auto rest = sorted_drain(q);
    if (r.op == Resolved::Op::kEnqueue && r.arg == 100) {
      EXPECT_EQ(r.response.has_value(), contains(rest, 100))
          << adv.name << " k=" << k;
    } else {
      EXPECT_FALSE(contains(rest, 100));
    }
  }
}

TEST_P(IndependentRecoverySweep, QueueRemainsOperationalWithoutRepair) {
  // After an independent recovery (which repairs neither head nor tail),
  // the helping paths must self-heal: subsequent operations still work.
  const Adversary adv = adversaries()[GetParam()];
  for (std::int64_t k = 0; k < 12; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 1, 64);
    for (Value v = 1; v <= 3; ++v) q.enqueue(0, v);

    points.arm_countdown(k);
    try {
      q.prep_enqueue(0, 100);
      q.exec_enqueue(0);
      q.prep_dequeue(0);
      (void)q.exec_dequeue(0);
    } catch (const SimulatedCrash&) {
    }
    points.disarm();

    pool.crash(adv.options);
    q.recover_independent(0);
    q.rebuild_free_lists();
    (void)q.resolve(0);
    // Post-crash operation must succeed and preserve FIFO of survivors.
    q.prep_enqueue(0, 200);
    q.exec_enqueue(0);
    std::vector<Value> out;
    for (;;) {
      q.prep_dequeue(0);
      const Value v = q.exec_dequeue(0);
      if (v == kEmpty) break;
      out.push_back(v);
    }
    EXPECT_FALSE(out.empty());
    EXPECT_EQ(out.back(), 200) << adv.name << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAdversaries, IndependentRecoverySweep,
                         ::testing::Range<std::size_t>(0, 5));

// ---- crash during recovery ---------------------------------------------------------------

TEST(CrashDuringRecovery, RecoveryIsIdempotentUnderRepeatedCrashes) {
  for (std::int64_t k = 0; k < 40; ++k) {
    ShadowPool pool(1 << 22);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 2, 64);
    for (Value v = 1; v <= 4; ++v) q.enqueue(0, v);

    // First crash: mid-dequeue.
    points.arm_at_label("dss:exec-deq:marked");
    try {
      q.prep_dequeue(1);
      (void)q.exec_dequeue(1);
    } catch (const SimulatedCrash&) {
    }
    points.disarm();
    pool.crash();

    // Second crash: inside recovery itself, at point k.
    points.arm_countdown(k);
    bool recovery_crashed = false;
    try {
      q.recover();
    } catch (const SimulatedCrash&) {
      recovery_crashed = true;
    }
    points.disarm();
    if (recovery_crashed) {
      pool.crash();
      q.recover();  // second recovery attempt must succeed
    }

    const Resolved r = q.resolve(1);
    ASSERT_EQ(r.op, Resolved::Op::kDequeue);
    ASSERT_TRUE(r.response.has_value())
        << "the mark was persisted before the crash";
    EXPECT_EQ(*r.response, 1);
    const auto rest = sorted_drain(q);
    EXPECT_EQ(rest, (std::vector<Value>{2, 3, 4})) << "k=" << k;
    if (!recovery_crashed) break;  // sweep exhausted recovery's points
  }
}

// ---- multi-threaded crash storms ------------------------------------------------------------

struct StormResult {
  std::size_t crashes = 0;
};

void run_storm(std::size_t threads, std::int64_t crash_after,
               const ShadowPool::CrashOptions& adv, std::uint64_t seed) {
  ShadowPool pool(1 << 24);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  SimQ q(ctx, threads, 512);

  auto outcomes = harness::run_crash_storm(q, threads, /*ops_per_thread=*/400,
                                           points, crash_after, seed);
  pool.crash(adv);
  q.recover();

  // Assemble effective multisets from completed knowledge + resolution.
  std::multiset<Value> enqueued, dequeued;
  for (std::size_t t = 0; t < threads; ++t) {
    const auto& out = outcomes[t];
    for (const Value v : out.enqueued) enqueued.insert(v);
    for (const Value v : out.dequeued) dequeued.insert(v);
    if (!out.crashed || out.pending == harness::ThreadOutcome::Pending::kNone) {
      continue;
    }
    const Resolved r = q.resolve(t);
    if (out.pending == harness::ThreadOutcome::Pending::kEnqueue) {
      if (r.op == Resolved::Op::kEnqueue && r.arg == out.pending_arg &&
          r.response.has_value()) {
        enqueued.insert(out.pending_arg);
      }
    } else {
      // Filter the Figure 2(d) stale-record case: a crash inside
      // prep-dequeue before X persisted leaves the previous (already
      // counted) dequeue's record in X.
      if (r.op == Resolved::Op::kDequeue && r.response.has_value() &&
          *r.response != kEmpty &&
          std::find(out.dequeued.begin(), out.dequeued.end(),
                    *r.response) == out.dequeued.end()) {
        dequeued.insert(*r.response);
      }
    }
  }

  std::multiset<Value> remaining;
  {
    std::vector<Value> rest;
    q.drain_to(rest);
    remaining.insert(rest.begin(), rest.end());
  }

  // Exactly-once accounting: enqueued == dequeued ⊎ remaining.
  std::multiset<Value> consumed_plus_left = dequeued;
  consumed_plus_left.insert(remaining.begin(), remaining.end());
  EXPECT_EQ(enqueued, consumed_plus_left)
      << "value lost or duplicated across the crash "
      << "(threads=" << threads << " crash_after=" << crash_after
      << " seed=" << seed << ")";
}

TEST(CrashStorm, TwoThreadsEarlyCrash) {
  run_storm(2, 25, {ShadowPool::Survival::kNone, 0.0, 1}, 11);
}

TEST(CrashStorm, FourThreadsMidCrashNoSurvival) {
  run_storm(4, 400, {ShadowPool::Survival::kNone, 0.0, 2}, 22);
}

TEST(CrashStorm, FourThreadsMidCrashFullSurvival) {
  run_storm(4, 400, {ShadowPool::Survival::kAll, 1.0, 3}, 33);
}

TEST(CrashStorm, FourThreadsRandomSurvivalSeeds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    run_storm(4, 700, {ShadowPool::Survival::kRandom, 0.5, seed}, seed * 7);
  }
}

TEST(CrashStorm, EightThreadsLateCrash) {
  run_storm(8, 3000, {ShadowPool::Survival::kRandom, 0.3, 5}, 55);
}

TEST(CrashStorm, RepeatedCrashRecoverContinueCycles) {
  ShadowPool pool(1 << 24);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  constexpr std::size_t kThreads = 3;
  SimQ q(ctx, kThreads, 512);

  std::multiset<Value> enqueued, dequeued;
  std::uint64_t seed = 1000;
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto outcomes = harness::run_crash_storm(q, kThreads, 150, points,
                                             /*crash_after=*/200, seed++);
    pool.crash({ShadowPool::Survival::kRandom, 0.5, seed});
    q.recover();
    for (std::size_t t = 0; t < kThreads; ++t) {
      const auto& out = outcomes[t];
      for (const Value v : out.enqueued) enqueued.insert(v);
      for (const Value v : out.dequeued) dequeued.insert(v);
      if (!out.crashed ||
          out.pending == harness::ThreadOutcome::Pending::kNone) {
        continue;
      }
      const Resolved r = q.resolve(t);
      if (out.pending == harness::ThreadOutcome::Pending::kEnqueue) {
        if (r.op == Resolved::Op::kEnqueue &&
            r.arg == out.pending_arg && r.response.has_value()) {
          enqueued.insert(out.pending_arg);
        }
      } else if (r.op == Resolved::Op::kDequeue &&
                 r.response.has_value() && *r.response != kEmpty &&
                 std::find(out.dequeued.begin(), out.dequeued.end(),
                           *r.response) == out.dequeued.end()) {
        dequeued.insert(*r.response);
      }
    }
  }
  std::multiset<Value> remaining;
  std::vector<Value> rest;
  q.drain_to(rest);
  remaining.insert(rest.begin(), rest.end());
  std::multiset<Value> consumed_plus_left = dequeued;
  consumed_plus_left.insert(remaining.begin(), remaining.end());
  EXPECT_EQ(enqueued, consumed_plus_left);
}

}  // namespace
}  // namespace dssq::queues
