// Application-managed nesting of DSS-based objects (Section 2.2).
//
// The paper: "Any base object of type T in this algorithm can be replaced
// with a strictly linearizable implementation of either T or D⟨T⟩, since
// D⟨T⟩ provides all the non-detectable operations of T."  We demonstrate
// exactly that: a Treiber stack whose head is a D⟨CAS⟩ object —
//   * the stack's ordinary operations use only the base object's
//     NON-detectable cas/read (Axiom 4 operations of D⟨CAS⟩);
//   * a detectable push uses the base object's prep/exec/resolve, giving
//     the application crash detection for the outermost mutation with no
//     framework support — nesting is managed by the application.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "objects/detectable_cas.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"

namespace dssq::objects {
namespace {

/// A Treiber stack over a D⟨CAS⟩ head.  Node storage is a persistent
/// table; the head CAS value is a node index (0 = empty).
class NestedStack {
 public:
  static constexpr std::int64_t kEmptyStack = -1;

  NestedStack(pmem::SimContext& ctx, std::size_t max_threads,
              std::size_t capacity)
      : ctx_(ctx), head_(ctx, max_threads), capacity_(capacity) {
    nodes_ = pmem::alloc_array<NodeSlot>(ctx, capacity + 1);  // 1-based
    next_free_ = pmem::alloc_object<std::atomic<std::uint64_t>>(ctx,
                                                                std::uint64_t{1});
  }

  /// Non-detectable push: uses only the plain (Axiom 4) operations of the
  /// nested D⟨CAS⟩ object.
  void push(std::size_t tid, std::int64_t v) {
    const std::uint64_t idx = alloc_node(v);
    for (;;) {
      const std::int64_t h = head_.read();
      nodes_[idx].next.store(h, std::memory_order_relaxed);
      ctx_.persist(&nodes_[idx], sizeof(NodeSlot));
      if (head_.cas(tid, h, static_cast<std::int64_t>(idx))) return;
    }
  }

  std::int64_t pop(std::size_t tid) {
    for (;;) {
      const std::int64_t h = head_.read();
      if (h == 0) return kEmptyStack;
      const std::int64_t next =
          nodes_[h].next.load(std::memory_order_acquire);
      if (head_.cas(tid, h, next)) return nodes_[h].value;
    }
  }

  /// DETECTABLE push: the application drives the nested object's
  /// prep/exec, recording enough context (the node index) to interpret
  /// resolve after a crash.
  void prep_push(std::size_t tid, std::int64_t v) {
    const std::uint64_t idx = alloc_node(v);
    const std::int64_t h = head_.read();
    nodes_[idx].next.store(h, std::memory_order_relaxed);
    ctx_.persist(&nodes_[idx], sizeof(NodeSlot));
    head_.prep_cas(tid, h, static_cast<std::int64_t>(idx));
  }

  bool exec_push(std::size_t tid) {
    if (head_.exec_cas(tid)) return true;
    // Contention: re-read and re-prepare (each attempt is a fresh
    // detectable CAS; the application owns the retry loop).
    const auto r = head_.resolve(tid);
    const std::int64_t idx = r.arg.desired;
    for (;;) {
      const std::int64_t h = head_.read();
      nodes_[idx].next.store(h, std::memory_order_relaxed);
      ctx_.persist(&nodes_[idx], sizeof(NodeSlot));
      head_.prep_cas(tid, h, idx);
      if (head_.exec_cas(tid)) return true;
    }
  }

  /// Post-crash: did my prepared push take effect?
  bool resolve_push(std::size_t tid) const {
    const auto r = head_.resolve(tid);
    return r.prepared() && r.response.has_value() && *r.response;
  }

  std::int64_t peek_value_of_prepared(std::size_t tid) const {
    const auto r = head_.resolve(tid);
    return r.prepared() ? nodes_[r.arg.desired].value : kEmptyStack;
  }

 private:
  struct alignas(kCacheLineSize) NodeSlot {
    std::atomic<std::int64_t> next{0};
    std::int64_t value{0};
  };

  std::uint64_t alloc_node(std::int64_t v) {
    const std::uint64_t idx =
        next_free_->fetch_add(1, std::memory_order_relaxed);
    if (idx > capacity_) throw std::bad_alloc();
    nodes_[idx].value = v;
    return idx;
  }

  pmem::SimContext& ctx_;
  DetectableCas<pmem::SimContext> head_;
  std::size_t capacity_;
  NodeSlot* nodes_ = nullptr;
  std::atomic<std::uint64_t>* next_free_ = nullptr;
};

struct NestingFixture : ::testing::Test {
  pmem::ShadowPool pool{1 << 21};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

TEST_F(NestingFixture, StackOverDetectableCasLifo) {
  NestedStack s(ctx, 2, 64);
  s.push(0, 1);
  s.push(0, 2);
  s.push(1, 3);
  EXPECT_EQ(s.pop(0), 3);
  EXPECT_EQ(s.pop(1), 2);
  EXPECT_EQ(s.pop(0), 1);
  EXPECT_EQ(s.pop(0), NestedStack::kEmptyStack);
}

TEST_F(NestingFixture, DetectablePushResolves) {
  NestedStack s(ctx, 1, 64);
  s.prep_push(0, 42);
  EXPECT_FALSE(s.resolve_push(0)) << "not yet executed";
  EXPECT_TRUE(s.exec_push(0));
  EXPECT_TRUE(s.resolve_push(0));
  EXPECT_EQ(s.pop(0), 42);
}

TEST_F(NestingFixture, DetectablePushSurvivesCrashSweep) {
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 21);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    NestedStack s(ctx, 1, 64);
    s.push(0, 7);  // baseline element

    bool crashed = false;
    points.arm_countdown(k);
    try {
      s.prep_push(0, 42);
      s.exec_push(0);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash();
    const bool landed = s.resolve_push(0);
    const std::int64_t top = s.pop(0);
    if (landed) {
      EXPECT_EQ(top, 42) << "k=" << k;
      EXPECT_EQ(s.pop(0), 7);
    } else {
      EXPECT_EQ(top, 7) << "k=" << k << ": phantom push";
    }
  }
}

TEST_F(NestingFixture, ConcurrentNestedStackConsistent) {
  NestedStack s(ctx, 4, 4096);
  std::vector<std::vector<std::int64_t>> popped(4);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        s.push(t, static_cast<std::int64_t>(t * 10'000 + i));
        const std::int64_t v = s.pop(t);
        if (v != NestedStack::kEmptyStack) popped[t].push_back(v);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<std::int64_t> all;
  for (auto& p : popped) all.insert(all.end(), p.begin(), p.end());
  std::vector<std::int64_t> rest;
  while (true) {
    const std::int64_t v = s.pop(0);
    if (v == NestedStack::kEmptyStack) break;
    rest.push_back(v);
  }
  EXPECT_EQ(all.size() + rest.size(), 4u * 200u)
      << "nested stack lost or duplicated values";
}

}  // namespace
}  // namespace dssq::objects
