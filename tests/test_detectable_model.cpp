// Tests of the generic D⟨T⟩ transformation (Section 2.1, Figure 1) and of
// the Figure 2 register scenarios, using the DetectableModel reference
// object.  These tests pin down the *specification*; the queue algorithm
// tests then check the implementation against the same semantics.

#include <gtest/gtest.h>

#include <variant>

#include "dss/detectable.hpp"
#include "dss/specs/counter_spec.hpp"
#include "dss/specs/queue_spec.hpp"
#include "dss/specs/register_spec.hpp"

namespace dssq::dss {
namespace {

using DReg = DetectableSpec<RegisterSpec>;
using DQueue = DetectableSpec<QueueSpec>;

// ---- Axiom 1: prep ------------------------------------------------------------

TEST(DetectableAxioms, PrepRecordsAandClearsR) {
  auto st = DReg::initial();
  DReg::apply(st, DReg::Prep{RegisterSpec::Write{1}}, 3);
  EXPECT_TRUE(st.A[3].has_value());
  EXPECT_EQ(*st.A[3], RegisterSpec::Op{RegisterSpec::Write{1}});
  EXPECT_FALSE(st.R[3].has_value());
}

TEST(DetectableAxioms, PrepIsTotalAndIdempotent) {
  auto st = DReg::initial();
  const DReg::Op prep{DReg::Prep{RegisterSpec::Write{1}}};
  EXPECT_TRUE(DReg::enabled(st, prep, 0));
  DReg::apply(st, prep, 0);
  const auto snapshot = st;
  EXPECT_TRUE(DReg::enabled(st, prep, 0));  // callable again
  DReg::apply(st, prep, 0);
  EXPECT_EQ(st, snapshot) << "repeated prep must be a no-op";
}

TEST(DetectableAxioms, PrepDoesNotChangeBaseState) {
  auto st = DReg::initial();
  DReg::apply(st, DReg::Prep{RegisterSpec::Write{9}}, 0);
  EXPECT_EQ(st.s, RegisterSpec::initial()) << "Axiom 1 implies s' = s";
}

TEST(DetectableAxioms, PrepOverwritesPreviousPrep) {
  auto st = DReg::initial();
  DReg::apply(st, DReg::Prep{RegisterSpec::Write{1}}, 0);
  DReg::apply(st, DReg::Exec{}, 0);
  DReg::apply(st, DReg::Prep{RegisterSpec::Write{2}}, 0);
  EXPECT_EQ(*st.A[0], RegisterSpec::Op{RegisterSpec::Write{2}});
  EXPECT_FALSE(st.R[0].has_value()) << "new prep resets R[p] to ⊥";
}

// ---- Axiom 2: exec ------------------------------------------------------------

TEST(DetectableAxioms, ExecAppliesDeltaAndRecordsRho) {
  auto st = DReg::initial();
  DReg::apply(st, DReg::Prep{RegisterSpec::Write{7}}, 0);
  const auto resp = DReg::apply(st, DReg::Exec{}, 0);
  EXPECT_EQ(std::get<RegisterSpec::Resp>(resp), kOk);
  EXPECT_EQ(st.s, 7);
  ASSERT_TRUE(st.R[0].has_value());
  EXPECT_EQ(*st.R[0], kOk);
}

TEST(DetectableAxioms, ExecRequiresPrep) {
  auto st = DReg::initial();
  EXPECT_FALSE(DReg::enabled(st, DReg::Op{DReg::Exec{}}, 0));
  EXPECT_THROW(DReg::apply(st, DReg::Exec{}, 0), std::logic_error);
}

TEST(DetectableAxioms, ExecNotEnabledTwice) {
  auto st = DReg::initial();
  DReg::apply(st, DReg::Prep{RegisterSpec::Write{7}}, 0);
  DReg::apply(st, DReg::Exec{}, 0);
  EXPECT_FALSE(DReg::enabled(st, DReg::Op{DReg::Exec{}}, 0))
      << "Axiom 2 precondition requires R[p] = ⊥";
}

TEST(DetectableAxioms, ExecOfOneProcessDoesNotTouchAnother) {
  auto st = DReg::initial();
  DReg::apply(st, DReg::Prep{RegisterSpec::Write{1}}, 0);
  DReg::apply(st, DReg::Prep{RegisterSpec::Write{2}}, 1);
  DReg::apply(st, DReg::Exec{}, 0);
  EXPECT_FALSE(st.R[1].has_value());
  EXPECT_EQ(*st.A[1], RegisterSpec::Op{RegisterSpec::Write{2}});
}

// ---- Axiom 3: resolve -----------------------------------------------------------

TEST(DetectableAxioms, ResolveReturnsAandR) {
  auto st = DReg::initial();
  DReg::apply(st, DReg::Prep{RegisterSpec::Write{4}}, 2);
  auto r1 = std::get<DReg::ResolveResult>(
      DReg::apply(st, DReg::Resolve{}, 2));
  EXPECT_EQ(*r1.op, RegisterSpec::Op{RegisterSpec::Write{4}});
  EXPECT_FALSE(r1.resp.has_value());
  DReg::apply(st, DReg::Exec{}, 2);
  auto r2 = std::get<DReg::ResolveResult>(
      DReg::apply(st, DReg::Resolve{}, 2));
  EXPECT_EQ(*r2.resp, kOk);
}

TEST(DetectableAxioms, ResolveIsTotalIdempotentAndSideEffectFree) {
  auto st = DReg::initial();
  const auto snapshot = st;
  auto r = std::get<DReg::ResolveResult>(DReg::apply(st, DReg::Resolve{}, 0));
  EXPECT_FALSE(r.op.has_value());   // (⊥, ⊥) before any prep
  EXPECT_FALSE(r.resp.has_value());
  EXPECT_EQ(st, snapshot);
  // Arbitrarily many calls (recovery hampered by repeated crashes).
  for (int i = 0; i < 5; ++i) {
    auto again =
        std::get<DReg::ResolveResult>(DReg::apply(st, DReg::Resolve{}, 0));
    EXPECT_EQ(again, r);
  }
}

// ---- Axiom 4: non-detectable op --------------------------------------------------

TEST(DetectableAxioms, PlainOpHasNoDetectabilitySideEffect) {
  auto st = DReg::initial();
  const auto resp = DReg::apply(st, DReg::Plain{RegisterSpec::Write{6}}, 0);
  EXPECT_EQ(std::get<RegisterSpec::Resp>(resp), kOk);
  EXPECT_EQ(st.s, 6);
  EXPECT_FALSE(st.A[0].has_value());
  EXPECT_FALSE(st.R[0].has_value());
}

// ---- Figure 2 scenarios ------------------------------------------------------------
// The model realizes exactly the post-crash states Figure 2 allows.  A
// crash erases nothing from the *abstract* detectable state (that is the
// point of the DSS); the four cases differ in which operations took effect
// before the crash.

TEST(Figure2, CaseA_ExecCompletedThenCrash) {
  DetectableModel<RegisterSpec> model;
  model.prep(0, RegisterSpec::Write{1});
  model.exec(0);
  // -- crash --
  const auto r = model.resolve(0);
  EXPECT_EQ(*r.op, RegisterSpec::Op{RegisterSpec::Write{1}});
  EXPECT_EQ(*r.resp, kOk);
}

TEST(Figure2, CaseB_CrashDuringExec_BothAnswersLegal) {
  // The exec either took effect or it did not; in both worlds A[p] records
  // write(1).  We enumerate both abstract outcomes.
  for (const bool effect : {false, true}) {
    DetectableModel<RegisterSpec> model;
    model.prep(0, RegisterSpec::Write{1});
    if (effect) model.exec(0);
    // -- crash mid-exec --
    const auto r = model.resolve(0);
    EXPECT_EQ(*r.op, RegisterSpec::Op{RegisterSpec::Write{1}});
    EXPECT_EQ(r.resp.has_value(), effect);
  }
}

TEST(Figure2, CaseC_CrashBeforeExec) {
  DetectableModel<RegisterSpec> model;
  model.prep(0, RegisterSpec::Write{1});
  // -- crash before exec-write --
  const auto r = model.resolve(0);
  EXPECT_EQ(*r.op, RegisterSpec::Op{RegisterSpec::Write{1}});
  EXPECT_FALSE(r.resp.has_value()) << "must resolve as (write(1), ⊥)";
}

TEST(Figure2, CaseD_CrashDuringPrep_BothAnswersLegal) {
  for (const bool prepared : {false, true}) {
    DetectableModel<RegisterSpec> model;
    if (prepared) model.prep(0, RegisterSpec::Write{1});
    // -- crash mid-prep --
    const auto r = model.resolve(0);
    if (prepared) {
      EXPECT_EQ(*r.op, RegisterSpec::Op{RegisterSpec::Write{1}});
    } else {
      EXPECT_FALSE(r.op.has_value());
    }
    EXPECT_FALSE(r.resp.has_value());
  }
}

// ---- queue-flavoured D⟨T⟩ ------------------------------------------------------------

TEST(DetectableQueueModel, PrepExecResolveDequeue) {
  DetectableModel<QueueSpec> model;
  model.plain(1, QueueSpec::Enq{10});
  model.prep(0, QueueSpec::Deq{});
  EXPECT_EQ(model.exec(0), 10);
  const auto r = model.resolve(0);
  EXPECT_EQ(*r.op, QueueSpec::Op{QueueSpec::Deq{}});
  EXPECT_EQ(*r.resp, 10);
}

TEST(DetectableQueueModel, EmptyDequeueDetectable) {
  DetectableModel<QueueSpec> model;
  model.prep(0, QueueSpec::Deq{});
  EXPECT_EQ(model.exec(0), kEmpty);
  EXPECT_EQ(*model.resolve(0).resp, kEmpty);
}

TEST(DetectableQueueModel, MixedDetectableAndPlain) {
  DetectableModel<QueueSpec> model;
  model.prep(0, QueueSpec::Enq{1});
  model.exec(0);
  model.plain(1, QueueSpec::Enq{2});
  model.prep(1, QueueSpec::Deq{});
  EXPECT_EQ(model.exec(1), 1);
  EXPECT_EQ(model.plain(0, QueueSpec::Deq{}), 2);
  // Plain dequeue by 0 must not disturb 0's detectability record.
  const auto r = model.resolve(0);
  EXPECT_EQ(*r.op, QueueSpec::Op{QueueSpec::Enq{1}});
  EXPECT_EQ(*r.resp, kOk);
}

// ---- the disambiguation remedy (Section 2.1) ---------------------------------------

TEST(DetectableModel, RepeatedOpDisambiguatedByMarker) {
  DetectableModel<CounterSpec> model;
  model.prep(0, CounterSpec::Add{1, /*marker=*/1});
  model.exec(0);
  model.prep(0, CounterSpec::Add{1, /*marker=*/2});
  // -- crash before second exec --
  const auto r = model.resolve(0);
  EXPECT_EQ(*r.op, CounterSpec::Op{(CounterSpec::Add{1, 2})});
  EXPECT_FALSE(r.resp.has_value())
      << "the marker distinguishes the second add from the completed first";
}

// ---- D⟨D⟨T⟩⟩ is well-formed (Section 2.2 nesting claim) ------------------------------

TEST(DetectableModel, TransformationComposes) {
  using DD = DetectableSpec<DetectableSpec<RegisterSpec>>;
  auto st = DD::initial();
  // Prepare, at the outer level, a *plain inner* write.
  const DReg::Op inner_op{DReg::Plain{RegisterSpec::Write{3}}};
  DD::apply(st, DD::Prep{inner_op}, 0);
  DD::apply(st, DD::Exec{}, 0);
  auto r = std::get<DD::ResolveResult>(DD::apply(st, DD::Resolve{}, 0));
  ASSERT_TRUE(r.resp.has_value());
  EXPECT_EQ(st.s.s, 3) << "inner register state must reflect the write";
}

}  // namespace
}  // namespace dssq::dss
