// Tests of the strict-linearizability checker on hand-constructed
// histories, including crash eras and D⟨T⟩ operations.

#include <gtest/gtest.h>

#include "dss/checker.hpp"
#include "dss/detectable.hpp"
#include "dss/history.hpp"
#include "dss/specs/queue_spec.hpp"

namespace dssq::dss {
namespace {

using DQ = DetectableSpec<QueueSpec>;

// Convenience builder: append a completed op.
template <SequentialSpec Spec>
void op(History<Spec>& h, Pid pid, typename Spec::Op o,
        std::uint64_t inv, std::uint64_t res, typename Spec::Resp resp,
        std::size_t era = 0) {
  HistoryOp<Spec> rec;
  rec.pid = pid;
  rec.op = std::move(o);
  rec.invoked_at = inv;
  rec.responded_at = res;
  rec.resp = std::move(resp);
  rec.era = era;
  h.ops.push_back(std::move(rec));
}

// Append a pending op (no response; cut off by its era's crash).
template <SequentialSpec Spec>
void pending(History<Spec>& h, Pid pid, typename Spec::Op o,
             std::uint64_t inv, std::size_t era = 0) {
  HistoryOp<Spec> rec;
  rec.pid = pid;
  rec.op = std::move(o);
  rec.invoked_at = inv;
  rec.era = era;
  h.ops.push_back(std::move(rec));
}

TEST(Checker, EmptyHistoryIsLinearizable) {
  History<QueueSpec> h;
  EXPECT_TRUE(check_strict_linearizability(h).linearizable);
}

TEST(Checker, SequentialFifoAccepted) {
  History<QueueSpec> h;
  op(h, 0, QueueSpec::Op{QueueSpec::Enq{1}}, 0, 1, kOk);
  op(h, 0, QueueSpec::Op{QueueSpec::Enq{2}}, 2, 3, kOk);
  op(h, 0, QueueSpec::Op{QueueSpec::Deq{}}, 4, 5, 1);
  op(h, 0, QueueSpec::Op{QueueSpec::Deq{}}, 6, 7, 2);
  op(h, 0, QueueSpec::Op{QueueSpec::Deq{}}, 8, 9, kEmpty);
  EXPECT_TRUE(check_strict_linearizability(h).linearizable);
}

TEST(Checker, LifoOrderRejected) {
  History<QueueSpec> h;
  op(h, 0, QueueSpec::Op{QueueSpec::Enq{1}}, 0, 1, kOk);
  op(h, 0, QueueSpec::Op{QueueSpec::Enq{2}}, 2, 3, kOk);
  op(h, 0, QueueSpec::Op{QueueSpec::Deq{}}, 4, 5, 2);  // LIFO: wrong
  EXPECT_FALSE(check_strict_linearizability(h).linearizable);
}

TEST(Checker, ConcurrentOverlapPermitsEitherOrder) {
  // Two overlapping enqueues, then dequeues observing either order.
  for (const Value first : {1, 2}) {
    History<QueueSpec> h;
    op(h, 0, QueueSpec::Op{QueueSpec::Enq{1}}, 0, 10, kOk);
    op(h, 1, QueueSpec::Op{QueueSpec::Enq{2}}, 1, 9, kOk);
    op(h, 0, QueueSpec::Op{QueueSpec::Deq{}}, 11, 12, first);
    op(h, 1, QueueSpec::Op{QueueSpec::Deq{}}, 13, 14, first == 1 ? 2 : 1);
    EXPECT_TRUE(check_strict_linearizability(h).linearizable)
        << "first=" << first;
  }
}

TEST(Checker, RealTimeOrderEnforced) {
  // e(1) completes strictly before e(2) begins; a dequeue returning 2
  // before any dequeue of 1 violates FIFO + real time.
  History<QueueSpec> h;
  op(h, 0, QueueSpec::Op{QueueSpec::Enq{1}}, 0, 1, kOk);
  op(h, 1, QueueSpec::Op{QueueSpec::Enq{2}}, 2, 3, kOk);
  op(h, 0, QueueSpec::Op{QueueSpec::Deq{}}, 4, 5, 2);
  EXPECT_FALSE(check_strict_linearizability(h).linearizable);
}

TEST(Checker, EmptyDequeueMustBeJustifiable) {
  // A dequeue overlapping nothing, on a non-empty queue, cannot return
  // EMPTY.
  History<QueueSpec> h;
  op(h, 0, QueueSpec::Op{QueueSpec::Enq{1}}, 0, 1, kOk);
  op(h, 0, QueueSpec::Op{QueueSpec::Deq{}}, 2, 3, kEmpty);
  EXPECT_FALSE(check_strict_linearizability(h).linearizable);
}

// ---- crash eras -------------------------------------------------------------------

TEST(Checker, PendingOpMayTakeEffectBeforeCrash) {
  // Enqueue pending at the crash; a post-crash dequeue sees its value:
  // legal iff the enqueue linearized before the crash.
  History<QueueSpec> h;
  pending(h, 0, QueueSpec::Op{QueueSpec::Enq{5}}, 0, /*era=*/0);
  h.crash_times.push_back(1);
  op(h, 1, QueueSpec::Op{QueueSpec::Deq{}}, 2, 3, 5, /*era=*/1);
  EXPECT_TRUE(check_strict_linearizability(h).linearizable);
}

TEST(Checker, PendingOpMayVanish) {
  // Same pending enqueue, but the post-crash dequeue finds the queue
  // empty: legal iff the enqueue never took effect.
  History<QueueSpec> h;
  pending(h, 0, QueueSpec::Op{QueueSpec::Enq{5}}, 0, /*era=*/0);
  h.crash_times.push_back(1);
  op(h, 1, QueueSpec::Op{QueueSpec::Deq{}}, 2, 3, kEmpty, /*era=*/1);
  EXPECT_TRUE(check_strict_linearizability(h).linearizable);
}

TEST(Checker, CompletedOpMustSurviveCrash) {
  // Enqueue COMPLETED before the crash; a post-crash EMPTY dequeue would
  // mean the completed op evaporated — strict linearizability forbids it.
  History<QueueSpec> h;
  op(h, 0, QueueSpec::Op{QueueSpec::Enq{5}}, 0, 1, kOk, /*era=*/0);
  h.crash_times.push_back(2);
  op(h, 1, QueueSpec::Op{QueueSpec::Deq{}}, 3, 4, kEmpty, /*era=*/1);
  EXPECT_FALSE(check_strict_linearizability(h).linearizable);
}

TEST(Checker, PendingOpCannotLinearizeAfterCrash) {
  // The pending enqueue's value is dequeued, then a SECOND dequeue also
  // returns it — double delivery is illegal in every linearization.
  History<QueueSpec> h;
  pending(h, 0, QueueSpec::Op{QueueSpec::Enq{5}}, 0, /*era=*/0);
  h.crash_times.push_back(1);
  op(h, 1, QueueSpec::Op{QueueSpec::Deq{}}, 2, 3, 5, /*era=*/1);
  op(h, 1, QueueSpec::Op{QueueSpec::Deq{}}, 4, 5, 5, /*era=*/1);
  EXPECT_FALSE(check_strict_linearizability(h).linearizable);
}

TEST(Checker, MultipleErasCarryState) {
  History<QueueSpec> h;
  op(h, 0, QueueSpec::Op{QueueSpec::Enq{1}}, 0, 1, kOk, 0);
  h.crash_times.push_back(2);
  op(h, 0, QueueSpec::Op{QueueSpec::Enq{2}}, 3, 4, kOk, 1);
  h.crash_times.push_back(5);
  op(h, 0, QueueSpec::Op{QueueSpec::Deq{}}, 6, 7, 1, 2);
  op(h, 0, QueueSpec::Op{QueueSpec::Deq{}}, 8, 9, 2, 2);
  EXPECT_TRUE(check_strict_linearizability(h).linearizable);
}

// ---- condition hierarchy: strict vs persistent atomicity -------------------------

TEST(Conditions, LateEffectAcceptedOnlyUnderPersistentAtomicity) {
  // enqueue(5) pending at the crash; post-crash (by ANOTHER process):
  // dequeue -> EMPTY, then dequeue -> 5.  Under strict linearizability the
  // pending enqueue must linearize before the crash, so the first dequeue
  // could not return EMPTY: rejected.  Under persistent atomicity the
  // enqueue may linearize between the two dequeues (its process never
  // invoked again): accepted.  This is exactly the strongest-to-weakest
  // ordering of Section 2.2.
  History<QueueSpec> h;
  pending(h, 0, QueueSpec::Op{QueueSpec::Enq{5}}, 0, /*era=*/0);
  h.crash_times.push_back(1);
  op(h, 1, QueueSpec::Op{QueueSpec::Deq{}}, 2, 3, kEmpty, /*era=*/1);
  op(h, 1, QueueSpec::Op{QueueSpec::Deq{}}, 4, 5, 5, /*era=*/1);
  EXPECT_FALSE(check_strict_linearizability(h).linearizable);
  EXPECT_TRUE(check_persistent_atomicity(h).linearizable);
}

TEST(Conditions, LateEffectAfterOwnersNextOpRejectedEverywhere) {
  // Same shape, but the ENQUEUER itself performs the EMPTY dequeue after
  // the crash.  Persistent atomicity requires the pending enqueue to take
  // effect before its own process's next operation — it cannot linearize
  // between p0's dequeue and the later dequeue.  Both conditions reject.
  History<QueueSpec> h;
  pending(h, 0, QueueSpec::Op{QueueSpec::Enq{5}}, 0, /*era=*/0);
  h.crash_times.push_back(1);
  op(h, 0, QueueSpec::Op{QueueSpec::Deq{}}, 2, 3, kEmpty, /*era=*/1);
  op(h, 1, QueueSpec::Op{QueueSpec::Deq{}}, 4, 5, 5, /*era=*/1);
  EXPECT_FALSE(check_strict_linearizability(h).linearizable);
  EXPECT_FALSE(check_persistent_atomicity(h).linearizable);
}

TEST(Conditions, PersistentAtomicityAllowsEffectBeforeOwnersNextOp) {
  // The enqueuer's next operation comes AFTER another process consumed 5:
  // the carryover may linearize before it.  Accepted under PA.
  History<QueueSpec> h;
  pending(h, 0, QueueSpec::Op{QueueSpec::Enq{5}}, 0, /*era=*/0);
  h.crash_times.push_back(1);
  op(h, 1, QueueSpec::Op{QueueSpec::Deq{}}, 2, 3, kEmpty, /*era=*/1);
  op(h, 1, QueueSpec::Op{QueueSpec::Deq{}}, 4, 5, 5, /*era=*/1);
  op(h, 0, QueueSpec::Op{QueueSpec::Deq{}}, 6, 7, kEmpty, /*era=*/1);
  EXPECT_TRUE(check_persistent_atomicity(h).linearizable);
}

TEST(Conditions, StrictSubsetOfPersistentAtomicity) {
  // Everything strictly linearizable is persistently atomic (the
  // conditions form a hierarchy): spot-check on assorted histories.
  History<QueueSpec> h;
  op(h, 0, QueueSpec::Op{QueueSpec::Enq{1}}, 0, 1, kOk, 0);
  pending(h, 1, QueueSpec::Op{QueueSpec::Enq{2}}, 2, 0);
  h.crash_times.push_back(3);
  op(h, 0, QueueSpec::Op{QueueSpec::Deq{}}, 4, 5, 1, 1);
  ASSERT_TRUE(check_strict_linearizability(h).linearizable);
  EXPECT_TRUE(check_persistent_atomicity(h).linearizable);
}

TEST(Conditions, CarryoverAcrossMultipleEras) {
  // The pending enqueue's effect shows up two crashes later — its process
  // stays silent throughout.  PA accepts; strict rejects.
  History<QueueSpec> h;
  pending(h, 0, QueueSpec::Op{QueueSpec::Enq{9}}, 0, /*era=*/0);
  h.crash_times.push_back(1);
  op(h, 1, QueueSpec::Op{QueueSpec::Deq{}}, 2, 3, kEmpty, /*era=*/1);
  h.crash_times.push_back(4);
  op(h, 1, QueueSpec::Op{QueueSpec::Deq{}}, 5, 6, 9, /*era=*/2);
  EXPECT_FALSE(check_strict_linearizability(h).linearizable);
  EXPECT_TRUE(check_persistent_atomicity(h).linearizable);
}

// ---- D⟨T⟩ histories ------------------------------------------------------------------

TEST(Checker, DetectableHistoryWithResolveAccepted) {
  // prep; exec pending at crash; resolve afterwards reports effect — the
  // canonical detectability scenario, checked end to end as a history of
  // D⟨queue⟩.
  History<DQ> h;
  op(h, 0, DQ::Op{DQ::Prep{QueueSpec::Op{QueueSpec::Enq{5}}}}, 0, 1,
     DQ::Resp{std::monostate{}}, 0);
  pending(h, 0, DQ::Op{DQ::Exec{}}, 2, 0);
  h.crash_times.push_back(3);
  op(h, 0, DQ::Op{DQ::Resolve{}}, 4, 5,
     DQ::Resp{DQ::ResolveResult{QueueSpec::Op{QueueSpec::Enq{5}}, kOk}}, 1);
  op(h, 1, DQ::Op{DQ::Plain{QueueSpec::Op{QueueSpec::Deq{}}}}, 6, 7,
     DQ::Resp{QueueSpec::Resp{5}}, 1);
  EXPECT_TRUE(check_strict_linearizability(h).linearizable);
}

TEST(Checker, ResolveContradictingStateRejected) {
  // resolve claims the exec took effect (returns (enq(5), OK)) but the
  // post-crash dequeue finds the queue empty — inconsistent.
  History<DQ> h;
  op(h, 0, DQ::Op{DQ::Prep{QueueSpec::Op{QueueSpec::Enq{5}}}}, 0, 1,
     DQ::Resp{std::monostate{}}, 0);
  pending(h, 0, DQ::Op{DQ::Exec{}}, 2, 0);
  h.crash_times.push_back(3);
  op(h, 0, DQ::Op{DQ::Resolve{}}, 4, 5,
     DQ::Resp{DQ::ResolveResult{QueueSpec::Op{QueueSpec::Enq{5}}, kOk}}, 1);
  op(h, 1, DQ::Op{DQ::Plain{QueueSpec::Op{QueueSpec::Deq{}}}}, 6, 7,
     DQ::Resp{QueueSpec::Resp{kEmpty}}, 1);
  EXPECT_FALSE(check_strict_linearizability(h).linearizable);
}

TEST(Checker, ResolveReportsNoEffectConsistently) {
  // resolve says (enq(5), ⊥); then the queue must actually be empty.
  History<DQ> h;
  op(h, 0, DQ::Op{DQ::Prep{QueueSpec::Op{QueueSpec::Enq{5}}}}, 0, 1,
     DQ::Resp{std::monostate{}}, 0);
  pending(h, 0, DQ::Op{DQ::Exec{}}, 2, 0);
  h.crash_times.push_back(3);
  op(h, 0, DQ::Op{DQ::Resolve{}}, 4, 5,
     DQ::Resp{DQ::ResolveResult{QueueSpec::Op{QueueSpec::Enq{5}},
                                std::nullopt}},
     1);
  op(h, 1, DQ::Op{DQ::Plain{QueueSpec::Op{QueueSpec::Deq{}}}}, 6, 7,
     DQ::Resp{QueueSpec::Resp{kEmpty}}, 1);
  EXPECT_TRUE(check_strict_linearizability(h).linearizable);
}

// ---- recorder ---------------------------------------------------------------------

TEST(Recorder, AssignsMonotoneTimestampsAndEras) {
  HistoryRecorder<QueueSpec> rec;
  const auto t1 = rec.invoke(0, QueueSpec::Op{QueueSpec::Enq{1}});
  rec.respond(t1, kOk);
  rec.crash();
  const auto t2 = rec.invoke(1, QueueSpec::Op{QueueSpec::Deq{}});
  rec.respond(t2, 1);
  const auto h = rec.take();
  ASSERT_EQ(h.ops.size(), 2u);
  EXPECT_EQ(h.ops[0].era, 0u);
  EXPECT_EQ(h.ops[1].era, 1u);
  EXPECT_LT(h.ops[0].invoked_at, h.ops[0].responded_at);
  EXPECT_LT(h.ops[0].responded_at, h.crash_times[0]);
  EXPECT_LT(h.crash_times[0], h.ops[1].invoked_at);
  EXPECT_TRUE(check_strict_linearizability(h).linearizable);
}

TEST(Recorder, PendingOpsStayPending) {
  HistoryRecorder<QueueSpec> rec;
  rec.invoke(0, QueueSpec::Op{QueueSpec::Enq{1}});
  rec.crash();
  const auto h = rec.take();
  EXPECT_TRUE(h.ops[0].pending());
}

TEST(Checker, EffortBoundReportsInconclusive) {
  // A wide all-concurrent history with an impossible response forces the
  // checker to exhaust a tiny budget.
  History<QueueSpec> h;
  for (int i = 0; i < 10; ++i) {
    op(h, i, QueueSpec::Op{QueueSpec::Enq{i + 1}}, 0, 100, kOk);
  }
  op(h, 10, QueueSpec::Op{QueueSpec::Deq{}}, 0, 100, 99);
  const auto res = check_strict_linearizability(h, /*max_configs=*/50);
  EXPECT_FALSE(res.linearizable);
  EXPECT_EQ(res.message, "search effort exceeded (inconclusive)");
}

}  // namespace
}  // namespace dssq::dss
