// Unit tests for the UringTable submission/completion rings: round trips,
// wraparound past the ring capacity, full-ring backpressure, refusal of
// torn (checksum-failing) submissions, idempotent re-drain after a lost
// index publish — and a real fork-and-SIGKILL orphan (countdown swept
// across every persistence point of the submit/drain pipeline) whose
// submission ring must be settled during lease reclamation BEFORE the
// slot is reissued, with the exactly-once multiset intact after.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/fork_crash.hpp"
#include "pmem/dss_uring.hpp"
#include "pmem/persistent_heap.hpp"
#include "pmem/slot_lease.hpp"
#include "queues/dss_queue.hpp"

namespace dssq::pmem {
namespace {

std::string temp_heap_path(const char* tag) {
  return ::testing::TempDir() + "dssq-uring-" + tag + "-" +
         std::to_string(::getpid()) + ".bin";
}

struct PathGuard {
  std::string path;
  explicit PathGuard(std::string p) : path(std::move(p)) {
    ::unlink(path.c_str());
  }
  ~PathGuard() { ::unlink(path.c_str()); }
};

/// A queue plus a formatted ring table in a throwaway heap.
struct RingFixture {
  static constexpr std::size_t kSlots = 2;
  static constexpr std::size_t kCapacity = 4;

  PathGuard guard;
  PersistentHeap heap;
  MmapContext ctx;
  queues::DssQueue<MmapContext> q;
  UringTable rings;

  explicit RingFixture(const char* tag)
      : guard(temp_heap_path(tag)),
        heap(guard.path, PersistentHeap::OpenMode::kCreate,
             [] {
               PersistentHeap::Options o;
               o.bytes = 8u << 20;
               return o;
             }()),
        ctx(heap),
        q(ctx, kSlots, 256),
        rings([&] {
          void* base = heap.raw_alloc(
              UringTable::bytes_for(kSlots, kCapacity), kCacheLineSize);
          UringTable::format(base, kSlots, kCapacity, heap.backend());
          return static_cast<UringTable::Header*>(base);
        }()) {}
};

TEST(UringTable, GeometryAndFormatChecks) {
  RingFixture f("geometry");
  EXPECT_EQ(f.rings.slots(), RingFixture::kSlots);
  EXPECT_EQ(f.rings.capacity(), RingFixture::kCapacity);
  EXPECT_NO_THROW(UringTable::attach_check(f.rings.header(), "t"));
  UringTable::Header bad;
  bad.magic = UringTable::kMagic ^ 1;
  EXPECT_THROW(UringTable::attach_check(&bad, "t"), HeapOpenError);
  EXPECT_THROW(UringTable::attach_check(nullptr, "t"), HeapOpenError);
  // Non-power-of-two capacities are refused at format time.
  void* scratch = f.heap.raw_alloc(UringTable::bytes_for(1, 4),
                                   kCacheLineSize);
  EXPECT_THROW(UringTable::format(scratch, 1, 3, f.heap.backend()),
               std::invalid_argument);
}

TEST(UringTable, SubmitDrainPollRoundTrip) {
  RingFixture f("roundtrip");
  ASSERT_TRUE(f.rings.submit(f.ctx, 0, UringTable::kOpEnqueue, 42));
  EXPECT_EQ(f.rings.depth(0), 1u);
  EXPECT_FALSE(f.rings.poll(0, 0).has_value()) << "nothing drained yet";
  EXPECT_EQ(f.rings.drain(f.ctx, f.q, 0), 1u);
  const auto c1 = f.rings.poll(0, 0);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->seq, 1u);
  EXPECT_EQ(c1->op, UringTable::kOpEnqueue);
  EXPECT_EQ(c1->result, queues::kOk);
  EXPECT_FALSE(c1->refused());

  ASSERT_TRUE(f.rings.submit(f.ctx, 0, UringTable::kOpDequeue, 0));
  EXPECT_EQ(f.rings.drain(f.ctx, f.q, 0), 1u);
  const auto c2 = f.rings.poll(0, 1);
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->seq, 2u);
  EXPECT_EQ(c2->result, 42);

  // Dequeue on empty reports kEmpty through the completion, not a hang.
  ASSERT_TRUE(f.rings.submit(f.ctx, 0, UringTable::kOpDequeue, 0));
  EXPECT_EQ(f.rings.drain(f.ctx, f.q, 0), 1u);
  const auto c3 = f.rings.poll(0, 2);
  ASSERT_TRUE(c3.has_value());
  EXPECT_EQ(c3->result, queues::kEmpty);
  EXPECT_EQ(f.rings.depth(0), 0u);
}

TEST(UringTable, StagedEntriesInvisibleUntilPublished) {
  RingFixture f("staged");
  // Three staged entries: written and flushed, but the tail never moved —
  // the drainer must see an empty ring.
  ASSERT_TRUE(f.rings.stage(f.ctx, 0, 0, UringTable::kOpEnqueue, 11));
  ASSERT_TRUE(f.rings.stage(f.ctx, 0, 1, UringTable::kOpEnqueue, 12));
  ASSERT_TRUE(f.rings.stage(f.ctx, 0, 2, UringTable::kOpEnqueue, 13));
  EXPECT_EQ(f.rings.depth(0), 0u);
  EXPECT_EQ(f.rings.drain(f.ctx, f.q, 0), 0u);

  // Staging counts against capacity: a 4th stage fits a capacity-4 ring,
  // a 5th does not.
  ASSERT_TRUE(f.rings.stage(f.ctx, 0, 3, UringTable::kOpEnqueue, 14));
  EXPECT_FALSE(f.rings.stage(f.ctx, 0, 4, UringTable::kOpEnqueue, 15));

  // One publish announces the whole batch; sequences and FIFO order match
  // the staging order.
  f.rings.publish_staged(f.ctx, 0, 4);
  EXPECT_EQ(f.rings.depth(0), 4u);
  EXPECT_EQ(f.rings.drain(f.ctx, f.q, 0), 4u);
  for (std::uint64_t s = 0; s < 4; ++s) {
    const auto c = f.rings.poll(0, s);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->seq, s + 1);
    EXPECT_FALSE(c->refused());
  }
  std::vector<queues::Value> rest;
  f.q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<queues::Value>{11, 12, 13, 14}));

  // publish_staged(0) is a no-op (no fence, no tail movement).
  const std::uint64_t tail = f.rings.sub_tail(0);
  f.rings.publish_staged(f.ctx, 0, 0);
  EXPECT_EQ(f.rings.sub_tail(0), tail);
}

TEST(UringTable, WraparoundManyTimesCapacity) {
  RingFixture f("wrap");
  // 6 full revolutions of a capacity-4 ring, in window-1 submit/drain/poll
  // steps; FIFO order must survive every cell reuse.
  std::uint64_t cursor = 0;
  for (queues::Value v = 1; v <= 24; ++v) {
    ASSERT_TRUE(f.rings.submit(f.ctx, 0, UringTable::kOpEnqueue, v));
    ASSERT_EQ(f.rings.drain(f.ctx, f.q, 0), 1u);
    const auto c = f.rings.poll(0, cursor++);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->seq, static_cast<std::uint64_t>(v));
  }
  for (queues::Value v = 1; v <= 24; ++v) {
    ASSERT_TRUE(f.rings.submit(f.ctx, 0, UringTable::kOpDequeue, 0));
    ASSERT_EQ(f.rings.drain(f.ctx, f.q, 0), 1u);
    const auto c = f.rings.poll(0, cursor++);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->result, v) << "FIFO order broken after wraparound";
  }
  EXPECT_EQ(f.rings.sub_tail(0), 48u);
  EXPECT_EQ(f.rings.comp_tail(0), 48u);
}

TEST(UringTable, FullRingExertsBackpressure) {
  RingFixture f("backpressure");
  for (queues::Value v = 0; v < 4; ++v) {
    ASSERT_TRUE(f.rings.submit(f.ctx, 0, UringTable::kOpEnqueue, v));
  }
  EXPECT_FALSE(f.rings.submit(f.ctx, 0, UringTable::kOpEnqueue, 99))
      << "capacity submissions outstanding: the ring must refuse";
  EXPECT_EQ(f.rings.sub_tail(0), 4u) << "refused submit must not publish";
  // A partial drain frees exactly that much headroom.
  EXPECT_EQ(f.rings.drain(f.ctx, f.q, 0, 2), 2u);
  EXPECT_TRUE(f.rings.submit(f.ctx, 0, UringTable::kOpEnqueue, 4));
  EXPECT_TRUE(f.rings.submit(f.ctx, 0, UringTable::kOpEnqueue, 5));
  EXPECT_FALSE(f.rings.submit(f.ctx, 0, UringTable::kOpEnqueue, 99));
  EXPECT_EQ(f.rings.drain(f.ctx, f.q, 0), 4u);
  std::vector<queues::Value> rest;
  f.q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<queues::Value>{0, 1, 2, 3, 4, 5}));
}

TEST(UringTable, TornSubmissionIsRefusedNeverExecuted) {
  RingFixture f("torn");
  // Forge what a client dying mid-submit leaves behind: entry bytes
  // published by the tail store, checksum wrong (payload half-written).
  UringTable::SubEntry& s = f.rings.sub_entries(0)[0];
  s.seq.store(1, std::memory_order_relaxed);
  s.op.store(UringTable::kOpEnqueue, std::memory_order_relaxed);
  s.arg.store(777, std::memory_order_relaxed);
  s.t_submit.store(0, std::memory_order_relaxed);
  s.checksum.store(0xDEAD, std::memory_order_relaxed);
  f.rings.client_ctl(0).sub_tail.store(1, std::memory_order_release);

  EXPECT_EQ(f.rings.drain(f.ctx, f.q, 0), 1u);
  const auto c = f.rings.poll(0, 0);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(c->refused());
  EXPECT_EQ(f.rings.torn_refused(0), 1u);
  std::vector<queues::Value> rest;
  f.q.drain_to(rest);
  EXPECT_TRUE(rest.empty()) << "a torn submission must never execute";

  // The ring keeps serving: the next (whole) submission lands as seq 2.
  ASSERT_TRUE(f.rings.submit(f.ctx, 0, UringTable::kOpEnqueue, 5));
  EXPECT_EQ(f.rings.drain(f.ctx, f.q, 0), 1u);
  const auto c2 = f.rings.poll(0, 1);
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->seq, 2u);
  EXPECT_FALSE(c2->refused());
}

TEST(UringTable, UnknownOpcodeIsRefusedToo) {
  RingFixture f("badop");
  UringTable::SubEntry& s = f.rings.sub_entries(0)[0];
  const std::uint64_t bogus = 99;
  s.seq.store(1, std::memory_order_relaxed);
  s.op.store(bogus, std::memory_order_relaxed);
  s.arg.store(1, std::memory_order_relaxed);
  s.t_submit.store(0, std::memory_order_relaxed);
  // A CORRECT checksum over a nonsense opcode: still refused.
  s.checksum.store(UringTable::sub_checksum(1, bogus, 1, 0),
                   std::memory_order_relaxed);
  f.rings.client_ctl(0).sub_tail.store(1, std::memory_order_release);
  EXPECT_EQ(f.rings.drain(f.ctx, f.q, 0), 1u);
  const auto c = f.rings.poll(0, 0);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(c->refused());
}

// A drainer that executed entries but died before the batch-end index
// publish persisted: the journal (done_seq) survived, the indexes did
// not.  Re-draining must re-ack from the journal — never re-apply.
TEST(UringTable, RedrainAfterLostIndexPublishNeverDoubleApplies) {
  RingFixture f("redrain");
  for (queues::Value v = 10; v < 13; ++v) {
    ASSERT_TRUE(f.rings.submit(f.ctx, 0, UringTable::kOpEnqueue, v));
  }
  ASSERT_EQ(f.rings.drain(f.ctx, f.q, 0), 3u);
  // Simulate the crash: the control-line stores evaporate (as if their
  // persist never landed), the journal fields keep their values.
  UringTable::ExecCtl& e = f.rings.exec_ctl(0);
  ASSERT_EQ(e.done_seq.load(std::memory_order_relaxed), 3u);
  e.sub_head.store(0, std::memory_order_relaxed);
  e.comp_tail.store(0, std::memory_order_relaxed);

  EXPECT_EQ(f.rings.drain(f.ctx, f.q, 0), 3u) << "all three re-acked";
  for (std::uint64_t cur = 0; cur < 3; ++cur) {
    const auto c = f.rings.poll(0, cur);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->seq, cur + 1);
    EXPECT_FALSE(c->refused());
  }
  std::vector<queues::Value> rest;
  f.q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<queues::Value>{10, 11, 12}))
      << "journaled entries must not execute twice";
}

#if !DSSQ_UNDER_TSAN
/// One fork-and-SIGKILL round at a fixed KillSwitch countdown: the child
/// leases slot 0, begins an oracle op, submits it into its ring and pumps
/// — dying at the countdown-th persistence/crash point (or finishing, on
/// overshoot).  The parent then reclaims the orphaned lease; the settle
/// callback MUST drain the orphan's ring (after per-slot recovery, before
/// settle_pending reads X) — then exactly-once must hold.
void orphan_round(std::int64_t countdown, bool* overshot) {
  PathGuard g(temp_heap_path("orphan"));
  constexpr std::size_t kSlots = 2;
  constexpr std::size_t kCapacity = 8;
  PersistentHeap::Options opt;
  opt.bytes = 8u << 20;
  PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
  MmapContext ctx(heap);
  queues::DssQueue<MmapContext> q(ctx, kSlots, 128);
  harness::Oracle oracle(heap, kSlots, 64);
  (void)q.make_root();  // shared-serving mode (durable cursors, no reuse)
  void* lbase =
      heap.raw_alloc(SlotLeaseTable::bytes_for(kSlots), kCacheLineSize);
  SlotLeaseTable::format(lbase, kSlots, heap.backend());
  SlotLeaseTable leases(lbase);
  void* ubase = heap.raw_alloc(UringTable::bytes_for(kSlots, kCapacity),
                               kCacheLineSize);
  UringTable::format(ubase, kSlots, kCapacity, heap.backend());
  UringTable rings(static_cast<UringTable::Header*>(ubase));

  // Seed one committed value so a crashed dequeue has something to take.
  {
    const queues::Value v = oracle.begin_enqueue(1);
    q.prep_enqueue(1, v);
    q.exec_enqueue(1);
    oracle.complete_enqueue(1);
  }

  static harness::KillSwitch ks;  // static: lives in the forked child too
  const harness::ChildResult res = harness::run_in_child([&] {
    const std::size_t slot = leases.acquire(heap.backend());
    if (slot == SlotLeaseTable::kNoSlot) return 3;
    ctx.set_crash_hook(harness::KillSwitch::hook, &ks);
    ks.arm(countdown);
    // One enqueue, then one dequeue, each submit→pump→poll (window 1,
    // matching the oracle's one-pending-op constraint).
    std::uint64_t cursor = rings.comp_tail(slot);
    {
      const queues::Value v = oracle.begin_enqueue(slot);
      if (!rings.submit(ctx, slot, UringTable::kOpEnqueue, v)) return 4;
      while (rings.drain(ctx, q, slot) == 0 &&
             !rings.poll(slot, cursor).has_value()) {
      }
      if (!rings.poll(slot, cursor).has_value()) return 5;
      ++cursor;
      oracle.complete_enqueue(slot);
    }
    {
      oracle.begin_dequeue(slot);
      if (!rings.submit(ctx, slot, UringTable::kOpDequeue, 0)) return 4;
      (void)rings.drain(ctx, q, slot);
      const auto c = rings.poll(slot, cursor);
      if (!c.has_value()) return 5;
      oracle.complete_dequeue(slot, c->result);
    }
    ks.disarm();
    ctx.set_crash_hook(nullptr, nullptr);
    leases.release(slot, heap.backend());
    return 7;  // overshoot: the countdown outlived both ops
  });

  if (!res.sigkilled()) {
    ASSERT_TRUE(res.exited && res.exit_code == 7)
        << "child failed (exited=" << res.exited
        << " code=" << res.exit_code << " sig=" << res.term_signal << ")";
    *overshot = true;
  }

  // Reclaim every dead lease; every settle drains the orphan's ring
  // first.  On overshoot nothing is held, and that's fine too.
  std::size_t settled = 0;
  std::size_t lost = 0;
  UringTable::SettleStats total;
  for (;;) {
    const std::size_t i =
        leases.reclaim_dead(heap.backend(), [&](std::size_t t) {
          oracle.repair_slot(t);
          q.recover_independent(t);
          const UringTable::SettleStats st = rings.settle(ctx, q, t);
          total.entries += st.entries;
          total.acked += st.acked;
          total.reexecuted += st.reexecuted;
          total.refused += st.refused;
          harness::settle_pending(q, oracle, t, &settled, &lost);
        });
    if (i == SlotLeaseTable::kNoSlot) break;
    leases.release(i, heap.backend());
  }
  if (res.sigkilled()) {
    EXPECT_EQ(rings.settle_passes(0), 1u)
        << "the orphan's ring was not settled during reclamation";
  }

  // After settling, no slot's ring may hold an unconsumed submission.
  for (std::size_t i = 0; i < kSlots; ++i) {
    EXPECT_EQ(rings.depth(i), 0u);
    EXPECT_EQ(rings.comp_tail(i), rings.sub_tail(i));
  }
  q.recover();
  for (std::size_t t = 0; t < oracle.threads(); ++t) oracle.repair_slot(t);
  const harness::VerifyResult vr = harness::verify_exactly_once(q, oracle);
  EXPECT_TRUE(vr.ok) << "countdown " << countdown << ": " << vr.error;
  heap.close();
}

TEST(UringTable, SigkilledClientsRingIsSettledBeforeReissue) {
  // Sweep the kill countdown across the whole submit/drain pipeline:
  // entry persists, tail publishes, journal persists, exec persists,
  // batch publishes — every prefix of the protocol gets a run.  Stop
  // once a sweep overshoots both ops end-to-end.
  bool overshot = false;
  for (std::int64_t countdown = 1; countdown <= 160 && !overshot;
       ++countdown) {
    SCOPED_TRACE("countdown " + std::to_string(countdown));
    orphan_round(countdown, &overshot);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_TRUE(overshot) << "sweep never reached a clean full run; the "
                           "countdown ceiling is too low";
}
#endif  // !DSSQ_UNDER_TSAN

}  // namespace
}  // namespace dssq::pmem
