// Unit tests for the named-object directory: publish/lookup round trips,
// idempotent re-publish, conflict and type-tag refusal, torn-entry
// refusal (forged checksum), persistence across reopen, and the adopt
// path end to end — two sequential "processes" sharing a queue by name.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "pmem/directory.hpp"
#include "pmem/persistent_heap.hpp"
#include "queues/dss_queue.hpp"

namespace dssq::pmem {
namespace {

std::string temp_heap_path(const char* tag) {
  return ::testing::TempDir() + "dssq-dir-" + tag + "-" +
         std::to_string(::getpid()) + ".bin";
}

struct PathGuard {
  std::string path;
  explicit PathGuard(std::string p) : path(std::move(p)) {
    ::unlink(path.c_str());
  }
  ~PathGuard() { ::unlink(path.c_str()); }
};

struct Widget {
  std::uint64_t payload = 0;
};
struct Gadget {
  std::uint64_t payload = 0;
};

TEST(Directory, PublishLookupRoundTrip) {
  PathGuard g(temp_heap_path("roundtrip"));
  PersistentHeap::Options opt;
  opt.bytes = 1u << 20;
  PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
  auto* w = static_cast<Widget*>(heap.raw_alloc(sizeof(Widget), 8));
  w->payload = 42;
  heap.publish<Widget>("app/widget", w);
  EXPECT_EQ(heap.lookup<Widget>("app/widget"), w);
  EXPECT_EQ(heap.lookup<Widget>("app/widget")->payload, 42u);
  // Absent names are nullptr, not errors.
  EXPECT_EQ(heap.lookup<Widget>("app/nothing"), nullptr);
  heap.close();
}

TEST(Directory, TypeTagMismatchIsRefused) {
  PathGuard g(temp_heap_path("typetag"));
  PersistentHeap::Options opt;
  opt.bytes = 1u << 20;
  PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
  auto* w = static_cast<Widget*>(heap.raw_alloc(sizeof(Widget), 8));
  heap.publish<Widget>("app/widget", w);
  // Same name, different type: a lookup must never hand back a pointer
  // the caller will reinterpret wrongly.
  EXPECT_THROW(heap.lookup<Gadget>("app/widget"), DirectoryError);
  heap.close();
}

TEST(Directory, RepublishIdenticalIsIdempotentConflictThrows) {
  PathGuard g(temp_heap_path("conflict"));
  PersistentHeap::Options opt;
  opt.bytes = 1u << 20;
  PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
  auto* w1 = static_cast<Widget*>(heap.raw_alloc(sizeof(Widget), 8));
  auto* w2 = static_cast<Widget*>(heap.raw_alloc(sizeof(Widget), 8));
  heap.publish<Widget>("app/widget", w1);
  EXPECT_NO_THROW(heap.publish<Widget>("app/widget", w1));  // idempotent
  EXPECT_THROW(heap.publish<Widget>("app/widget", w2), DirectoryError);
  EXPECT_EQ(heap.lookup<Widget>("app/widget"), w1);  // binding unchanged
  heap.close();
}

TEST(Directory, BindingsSurviveReopen) {
  PathGuard g(temp_heap_path("reopen"));
  PersistentHeap::Options opt;
  opt.bytes = 1u << 20;
  std::uintptr_t addr = 0;
  {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
    auto* w = static_cast<Widget*>(heap.raw_alloc(sizeof(Widget), 8));
    w->payload = 7;
    heap.persist(w, sizeof(Widget));
    addr = reinterpret_cast<std::uintptr_t>(w);
    heap.publish<Widget>("app/widget", w);
    // No close(): a crashed publisher's completed publishes must still be
    // visible (the kValid flip persisted before publish returned).
  }
  {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kOpen);
    Widget* w = heap.lookup<Widget>("app/widget");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w), addr);
    EXPECT_EQ(w->payload, 7u);
    heap.close();
  }
}

TEST(Directory, TornEntryIsRefusedNotReturned) {
  PathGuard g(temp_heap_path("torn"));
  PersistentHeap::Options opt;
  opt.bytes = 1u << 20;
  PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
  auto* w = static_cast<Widget*>(heap.raw_alloc(sizeof(Widget), 8));
  heap.publish<Widget>("app/widget", w);
  // Scribble the payload of the valid entry without updating its
  // checksum, as a torn line would: lookup must REFUSE, never return the
  // scribbled pointer.
  Directory dir(heap.dir_base(), heap.dir_bytes());
  auto* entries = reinterpret_cast<Directory::Entry*>(
      static_cast<Directory::Header*>(heap.dir_base()) + 1);
  bool scribbled = false;
  for (std::size_t i = 0; i < dir.count(); ++i) {
    if (entries[i].state.load() == Directory::kValid) {
      entries[i].root_addr ^= 0x1000;
      scribbled = true;
      break;
    }
  }
  ASSERT_TRUE(scribbled);
  EXPECT_THROW(heap.lookup<Widget>("app/widget"), DirectoryError);
  heap.close();
}

TEST(Directory, ForEachListsValidBindings) {
  PathGuard g(temp_heap_path("foreach"));
  PersistentHeap::Options opt;
  opt.bytes = 1u << 20;
  PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
  auto* w = static_cast<Widget*>(heap.raw_alloc(sizeof(Widget), 8));
  auto* x = static_cast<Gadget*>(heap.raw_alloc(sizeof(Gadget), 8));
  heap.publish<Widget>("app/widget", w);
  heap.publish<Gadget>("app/gadget", x);
  Directory dir(heap.dir_base(), heap.dir_bytes());
  std::size_t seen = 0;
  dir.for_each([&](const std::string& name, std::uint64_t tag,
                   std::uint64_t addr) {
    ++seen;
    EXPECT_NE(addr, 0u);
    if (name == "app/widget") {
      EXPECT_EQ(tag, type_tag_of<Widget>());
      EXPECT_EQ(addr, reinterpret_cast<std::uintptr_t>(w));
    } else {
      EXPECT_EQ(name, "app/gadget");
      EXPECT_EQ(tag, type_tag_of<Gadget>());
    }
  });
  EXPECT_EQ(seen, 2u);
  heap.close();
}

TEST(Directory, NameTooLongIsRefused) {
  PathGuard g(temp_heap_path("longname"));
  PersistentHeap::Options opt;
  opt.bytes = 1u << 20;
  PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
  auto* w = static_cast<Widget*>(heap.raw_alloc(sizeof(Widget), 8));
  const std::string long_name(Directory::kMaxNameLen + 1, 'x');
  EXPECT_THROW(heap.publish<Widget>(long_name, w), DirectoryError);
  heap.close();
}

// The end-to-end adopt path the serving layer is built on: a creator
// publishes a queue root; a second heap handle (a stand-in for a second
// process — same fixed base, no allocation replay) adopts it by name and
// sees the creator's values.
TEST(Directory, QueueAdoptByNameAcrossReopen) {
  PathGuard g(temp_heap_path("adopt"));
  PersistentHeap::Options opt;
  opt.bytes = 8u << 20;
  {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
    MmapContext ctx(heap);
    queues::DssQueue<MmapContext> q(ctx, 2, 64);
    q.prep_enqueue(0, 11);
    q.exec_enqueue(0);
    q.prep_enqueue(0, 22);
    q.exec_enqueue(0);
    heap.publish<queues::QueueRoot>("svc/queue", q.make_root());
    heap.close();
  }
  {
    PersistentHeap heap(g.path, PersistentHeap::OpenMode::kOpen);
    auto* root = heap.lookup<queues::QueueRoot>("svc/queue");
    ASSERT_NE(root, nullptr);
    MmapContext ctx(heap);
    queues::DssQueue<MmapContext> q(pmem::adopt, ctx, *root);
    q.prep_dequeue(1);
    EXPECT_EQ(q.exec_dequeue(1), 11);
    q.prep_enqueue(1, 33);  // adopted queues serve, not just read
    q.exec_enqueue(1);
    std::vector<queues::Value> rest;
    q.drain_to(rest);
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0], 22);
    EXPECT_EQ(rest[1], 33);
    heap.close();
  }
}

// A forged root descriptor must be refused by the adopt constructor, not
// dereferenced.
TEST(Directory, AdoptRefusesCorruptRoot) {
  PathGuard g(temp_heap_path("badroot"));
  PersistentHeap::Options opt;
  opt.bytes = 8u << 20;
  PersistentHeap heap(g.path, PersistentHeap::OpenMode::kCreate, opt);
  MmapContext ctx(heap);
  auto* fake = static_cast<queues::QueueRoot*>(
      heap.raw_alloc(sizeof(queues::QueueRoot), alignof(queues::QueueRoot)));
  *fake = queues::QueueRoot{};
  fake->magic = queues::QueueRoot::kMagic;
  fake->kind = queues::QueueRoot::kKindSingle;  // geometry fields all zero
  EXPECT_THROW((queues::DssQueue<MmapContext>(pmem::adopt, ctx, *fake)),
               std::runtime_error);
  heap.close();
}

}  // namespace
}  // namespace dssq::pmem
