// Tests of the durable queue (Friedman et al.): recoverable semantics,
// returnedValues reporting, and recovery — but NOT detectability (that is
// the DSS queue's addition).

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/durable_queue.hpp"

namespace dssq::queues {
namespace {

using SimQ = DurableQueue<pmem::SimContext>;

struct SimFixture : ::testing::Test {
  pmem::ShadowPool pool{1 << 22};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

TEST_F(SimFixture, FifoSingleThread) {
  SimQ q(ctx, 1, 64);
  for (Value v = 1; v <= 10; ++v) q.enqueue(0, v);
  for (Value v = 1; v <= 10; ++v) EXPECT_EQ(q.dequeue(0), v);
  EXPECT_EQ(q.dequeue(0), kEmpty);
}

TEST_F(SimFixture, ReturnedValueRecordsLastDequeue) {
  SimQ q(ctx, 1, 64);
  q.enqueue(0, 42);
  EXPECT_EQ(q.dequeue(0), 42);
  EXPECT_EQ(q.returned_value(0), 42);
  EXPECT_EQ(q.dequeue(0), kEmpty);
  EXPECT_EQ(q.returned_value(0), kEmpty);
}

TEST_F(SimFixture, CompletedOperationsSurviveCrash) {
  SimQ q(ctx, 1, 64);
  for (Value v = 1; v <= 5; ++v) q.enqueue(0, v);
  EXPECT_EQ(q.dequeue(0), 1);
  pool.crash();
  q.recover();
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<Value>{2, 3, 4, 5}))
      << "completed enqueues/dequeues must survive";
}

TEST_F(SimFixture, RecoveryReportsMarkedDequeue) {
  SimQ q(ctx, 1, 64);
  q.enqueue(0, 7);
  // Crash after the dequeue marks the node but before it returns.
  points.arm_at_label("durable:deq:marked");
  EXPECT_THROW(q.dequeue(0), pmem::SimulatedCrash);
  points.disarm();
  pool.crash();
  q.recover();
  // The recovery phase reports the response through returnedValues.
  EXPECT_EQ(q.returned_value(0), 7);
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_TRUE(rest.empty()) << "the marked node's value was consumed";
}

TEST_F(SimFixture, CrashBeforeMarkLosesNothing) {
  SimQ q(ctx, 1, 64);
  q.enqueue(0, 7);
  points.arm_at_label("durable:deq:pre-mark");
  EXPECT_THROW(q.dequeue(0), pmem::SimulatedCrash);
  points.disarm();
  pool.crash();
  q.recover();
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<Value>{7})) << "unmarked value must remain";
}

TEST_F(SimFixture, UnlinkedEnqueueVanishesAndNodeIsReclaimed) {
  SimQ q(ctx, 1, 4);
  points.arm_at_label("durable:enq:node-persisted");
  EXPECT_THROW(q.enqueue(0, 9), pmem::SimulatedCrash);
  points.disarm();
  pool.crash();
  q.recover();
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_TRUE(rest.empty());
  // All 4 pool slots must be reusable again (no leak).
  for (Value v = 0; v < 4; ++v) q.enqueue(0, v);
  for (Value v = 0; v < 4; ++v) EXPECT_EQ(q.dequeue(0), v);
}

TEST_F(SimFixture, RepeatedCrashRecoverCycles) {
  SimQ q(ctx, 2, 128);
  Value next = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 10; ++i) q.enqueue(0, next++);
    for (int i = 0; i < 5; ++i) q.dequeue(1);
    pool.crash();
    q.recover();
  }
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest.size(), 25u);
  EXPECT_TRUE(std::is_sorted(rest.begin(), rest.end()));
}

TEST(DurableQueuePerf, ConcurrentMultisetInvariant) {
  pmem::EmulatedNvmContext ctx(1 << 24, pmem::EmulatedNvmBackend(
                                            pmem::EmulationParams{0, 0}));
  DurableQueue<pmem::EmulatedNvmContext> q(ctx, 4, 256);
  constexpr int kOps = 1500;
  std::vector<std::vector<Value>> popped(4);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        q.enqueue(t, static_cast<Value>(t * 1'000'000 + i));
        const Value v = q.dequeue(t);
        if (v != kEmpty) popped[t].push_back(v);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<Value> all;
  for (const auto& p : popped) all.insert(all.end(), p.begin(), p.end());
  std::vector<Value> rest;
  q.drain_to(rest);
  all.insert(all.end(), rest.begin(), rest.end());
  std::sort(all.begin(), all.end());
  std::vector<Value> expected;
  for (std::size_t t = 0; t < 4; ++t) {
    for (int i = 0; i < kOps; ++i) {
      expected.push_back(static_cast<Value>(t * 1'000'000 + i));
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(all, expected);
}

}  // namespace
}  // namespace dssq::queues
