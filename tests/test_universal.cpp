// Tests of the wait-free recoverable universal construction of D⟨T⟩
// (Section 2.2's universality claim): sequential semantics for several
// specs, helping/wait-freedom behaviour, crash sweeps with resolve, and
// cross-checks against the DetectableModel oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <thread>
#include <vector>

#include "dss/detectable.hpp"
#include "dss/specs/cas_spec.hpp"
#include "dss/specs/counter_spec.hpp"
#include "dss/specs/queue_spec.hpp"
#include "dss/specs/register_spec.hpp"
#include "dss/universal.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"

namespace dssq::dss {
namespace {

struct UniFixture : ::testing::Test {
  pmem::ShadowPool pool{1 << 23};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

TEST_F(UniFixture, QueueSemantics) {
  UniversalObject<QueueSpec, pmem::SimContext> q(ctx, 2, 256);
  EXPECT_EQ(q.apply(0, QueueSpec::Op{QueueSpec::Enq{1}}), kOk);
  EXPECT_EQ(q.apply(1, QueueSpec::Op{QueueSpec::Enq{2}}), kOk);
  EXPECT_EQ(q.apply(0, QueueSpec::Op{QueueSpec::Deq{}}), 1);
  EXPECT_EQ(q.apply(0, QueueSpec::Op{QueueSpec::Deq{}}), 2);
  EXPECT_EQ(q.apply(1, QueueSpec::Op{QueueSpec::Deq{}}), kEmpty);
  EXPECT_EQ(q.log_length(), 5u);
}

TEST_F(UniFixture, RegisterSemantics) {
  UniversalObject<RegisterSpec, pmem::SimContext> reg(ctx, 2, 256);
  EXPECT_EQ(reg.apply(0, RegisterSpec::Op{RegisterSpec::Read{}}), 0);
  EXPECT_EQ(reg.apply(0, RegisterSpec::Op{RegisterSpec::Write{7}}), kOk);
  EXPECT_EQ(reg.apply(1, RegisterSpec::Op{RegisterSpec::Read{}}), 7);
  EXPECT_EQ(reg.materialize(), 7);
}

TEST_F(UniFixture, CounterFetchAddResponses) {
  UniversalObject<CounterSpec, pmem::SimContext> c(ctx, 2, 256);
  EXPECT_EQ(c.apply(0, CounterSpec::Op{CounterSpec::Add{5}}), 0);
  EXPECT_EQ(c.apply(1, CounterSpec::Op{CounterSpec::Add{3}}), 5);
  EXPECT_EQ(c.apply(0, CounterSpec::Op{CounterSpec::Get{}}), 8);
}

TEST_F(UniFixture, CasSemantics) {
  UniversalObject<CasSpec, pmem::SimContext> cas(ctx, 2, 256);
  EXPECT_EQ(cas.apply(0, CasSpec::Op{CasSpec::Cas{0, 9}}), 1);
  EXPECT_EQ(cas.apply(1, CasSpec::Op{CasSpec::Cas{0, 5}}), 0);
  EXPECT_EQ(cas.apply(1, CasSpec::Op{CasSpec::CasRead{}}), 9);
}

TEST_F(UniFixture, DetectableLifecycle) {
  UniversalObject<QueueSpec, pmem::SimContext> q(ctx, 1, 256);
  auto r = q.resolve(0);
  EXPECT_FALSE(r.op.has_value());  // (⊥, ⊥)
  q.prep(0, QueueSpec::Op{QueueSpec::Enq{42}});
  r = q.resolve(0);
  ASSERT_TRUE(r.op.has_value());
  EXPECT_EQ(*r.op, QueueSpec::Op{QueueSpec::Enq{42}});
  EXPECT_FALSE(r.resp.has_value());
  EXPECT_EQ(q.exec(0), kOk);
  r = q.resolve(0);
  ASSERT_TRUE(r.resp.has_value());
  EXPECT_EQ(*r.resp, kOk);
  // Idempotent resolve, idempotent exec.
  EXPECT_EQ(q.exec(0), kOk);
  EXPECT_EQ(q.log_length(), 1u);
}

TEST_F(UniFixture, ResponsesMemoizedAcrossResolvers) {
  UniversalObject<QueueSpec, pmem::SimContext> q(ctx, 2, 256);
  q.apply(0, QueueSpec::Op{QueueSpec::Enq{1}});
  q.prep(1, QueueSpec::Op{QueueSpec::Deq{}});
  EXPECT_EQ(q.exec(1), 1);
  for (int i = 0; i < 3; ++i) {
    const auto r = q.resolve(1);
    ASSERT_TRUE(r.resp.has_value());
    EXPECT_EQ(*r.resp, 1);
  }
}

TEST_F(UniFixture, HelpingAppendsAnotherThreadsAnnouncement) {
  // Thread 0 prepares and announces but "stalls" (we never call its
  // exec).  Thread 1's operations must still complete — and by the
  // priority rule thread 0's announcement gets appended by thread 1.
  UniversalObject<QueueSpec, pmem::SimContext> q(ctx, 2, 256);
  q.prep(0, QueueSpec::Op{QueueSpec::Enq{77}});
  // Manually announce without driving the append (simulate a stall
  // between the announce and the help loop): exec would do both, so we
  // reproduce its first half via a crash injection at that exact point.
  points.arm_at_label("universal:exec:announced");
  EXPECT_THROW(q.exec(0), pmem::SimulatedCrash);
  points.disarm();
  // Thread 1 runs a few ops; helping must append 77 within n positions.
  for (int i = 0; i < 4; ++i) {
    q.apply(1, QueueSpec::Op{QueueSpec::Enq{i}});
  }
  const auto r = q.resolve(0);
  ASSERT_TRUE(r.resp.has_value())
      << "stalled announcement was never helped";
  EXPECT_EQ(*r.resp, kOk);
}

TEST_F(UniFixture, ConcurrentCounterTotalExact) {
  UniversalObject<CounterSpec, pmem::SimContext> c(ctx, 4, 1024);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        c.prep(t, CounterSpec::Op{CounterSpec::Add{1, static_cast<int>(i)}});
        c.exec(t);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.materialize(), 800);
  EXPECT_EQ(c.log_length(), 800u);
}

TEST_F(UniFixture, ConcurrentFetchAddResponsesAreAPermutation) {
  // Every fetch-add response must be unique and the set must be exactly
  // {0, 1, ..., total-1} — the strongest single-object linearizability
  // witness for a counter.
  UniversalObject<CounterSpec, pmem::SimContext> c(ctx, 4, 1024);
  std::vector<std::vector<std::int64_t>> responses(4);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 150; ++i) {
        responses[t].push_back(
            c.apply(t, CounterSpec::Op{CounterSpec::Add{1}}));
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<std::int64_t> all;
  for (auto& r : responses) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  for (std::int64_t i = 0; i < 600; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i);
  }
}

// ---- crash sweeps -------------------------------------------------------------

TEST(UniversalCrash, SweepResolveMatchesDurableLog) {
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 23);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    UniversalObject<QueueSpec, pmem::SimContext> q(ctx, 1, 256);
    q.apply(0, QueueSpec::Op{QueueSpec::Enq{1}});

    bool crashed = false;
    points.arm_countdown(k);
    try {
      q.prep(0, QueueSpec::Op{QueueSpec::Enq{100}});
      q.exec(0);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash();
    q.recover();
    const auto r = q.resolve(0);
    const auto state = q.materialize();
    const bool in_queue =
        std::find(state.begin(), state.end(), 100) != state.end();
    if (r.op.has_value() && *r.op == QueueSpec::Op{QueueSpec::Enq{100}}) {
      EXPECT_EQ(r.resp.has_value(), in_queue) << "k=" << k;
    } else {
      EXPECT_FALSE(in_queue) << "k=" << k;
    }
    // The pre-crash completed enqueue must have survived.
    EXPECT_TRUE(std::find(state.begin(), state.end(), 1) != state.end())
        << "k=" << k;
  }
}

TEST(UniversalCrash, RetryAfterCrashIsExactlyOnce) {
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 23);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    UniversalObject<CounterSpec, pmem::SimContext> c(ctx, 1, 256);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      c.prep(0, CounterSpec::Op{CounterSpec::Add{5, /*marker=*/1}});
      c.exec(0);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash();
    c.recover();
    const auto r = c.resolve(0);
    const bool mine = r.op.has_value() &&
                      *r.op == CounterSpec::Op{(CounterSpec::Add{5, 1})};
    if (!mine || !r.resp.has_value()) {
      c.prep(0, CounterSpec::Op{CounterSpec::Add{5, /*marker=*/2}});
      c.exec(0);
    }
    EXPECT_EQ(c.materialize(), 5) << "k=" << k << ": not exactly-once";
  }
}

TEST(UniversalCrash, StaleAnnouncementCannotResurrectAfterRecovery) {
  // Crash right after the announce persists but before the append; after
  // recovery the operation resolved as not-taken-effect must NEVER appear,
  // even when another thread's later operations drive the helping loop.
  pmem::ShadowPool pool(1 << 23);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  UniversalObject<QueueSpec, pmem::SimContext> q(ctx, 2, 256);

  points.arm_at_label("universal:exec:announced");
  try {
    q.prep(0, QueueSpec::Op{QueueSpec::Enq{666}});
    q.exec(0);
  } catch (const pmem::SimulatedCrash&) {
  }
  points.disarm();
  pool.crash();
  q.recover();

  const auto r = q.resolve(0);
  ASSERT_TRUE(r.op.has_value());
  EXPECT_FALSE(r.resp.has_value()) << "append never persisted";

  // Thread 1 hammers the object; helping must not append the stale node.
  for (int i = 0; i < 8; ++i) q.apply(1, QueueSpec::Op{QueueSpec::Enq{i}});
  const auto state = q.materialize();
  EXPECT_TRUE(std::find(state.begin(), state.end(), 666) == state.end())
      << "abandoned operation resurrected after its owner observed ⊥";
}

TEST(UniversalDifferential, LockstepWithModelAcrossCrashes) {
  // Random single-threaded program on the universal queue, mirrored on the
  // DetectableModel oracle, with crash+recover+resolve every era.  Every
  // response must match the oracle exactly.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    pmem::ShadowPool pool(1 << 23);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    UniversalObject<QueueSpec, pmem::SimContext> q(ctx, 1, 1024);
    DetectableModel<QueueSpec> oracle;
    Xoshiro256 rng(seed * 31);
    Value next = 1;

    for (int era = 0; era < 4; ++era) {
      points.arm_countdown(static_cast<std::int64_t>(rng.next_below(80)));
      bool crashed = false;
      std::optional<QueueSpec::Op> pending;
      try {
        const int ops = 4 + static_cast<int>(rng.next_below(10));
        for (int i = 0; i < ops; ++i) {
          QueueSpec::Op op;
          if (rng.next_bool(0.55)) {
            op = QueueSpec::Enq{next++};
          } else {
            op = QueueSpec::Deq{};
          }
          pending = op;
          q.prep(0, op);
          const auto got = q.exec(0);
          oracle.prep(0, op);
          const auto want = oracle.exec(0);
          ASSERT_EQ(got, want) << "seed=" << seed << " era=" << era;
          pending.reset();
        }
      } catch (const pmem::SimulatedCrash&) {
        crashed = true;
      }
      points.disarm();
      if (crashed) {
        pool.crash({pmem::ShadowPool::Survival::kRandom, 0.5, seed + era});
        q.recover();
        const auto r = q.resolve(0);
        // Mirror the outcome onto the oracle: if the pending op took
        // effect, apply it there too (the oracle had not executed it).
        // Figure 2(d) caveat: a crash inside prep can leave the PREVIOUS
        // op's record in X, and two Deq{} ops compare equal — so dequeue
        // records are attributed to the pending op only when the response
        // matches what the pending dequeue would return (values are
        // unique, so a stale dequeue's response cannot collide).
        if (pending.has_value() && r.op.has_value() && *r.op == *pending &&
            r.resp.has_value()) {
          bool attribute = true;
          if (std::holds_alternative<QueueSpec::Deq>(*pending)) {
            const auto state = oracle.snapshot().s;
            const Value expect = state.empty() ? kEmpty : state.front();
            attribute = *r.resp == expect;
          }
          if (attribute) {
            oracle.prep(0, *pending);
            const auto want = oracle.exec(0);
            ASSERT_EQ(*r.resp, want) << "seed=" << seed << " era=" << era;
          }
        }
      }
      // Cross-check full state at the era boundary.
      ASSERT_EQ(q.materialize(), oracle.snapshot().s)
          << "seed=" << seed << " era=" << era;
    }
  }
}

TEST(UniversalCrash, ConcurrentStormExactlyOnce) {
  // Multi-threaded storm on the universal counter: each thread runs
  // detectable adds with unique markers; after the crash, resolve decides
  // which pending add landed.  The final materialized total must equal
  // the number of adds that are known-or-resolved to have taken effect.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    pmem::ShadowPool pool(1 << 24);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    constexpr std::size_t kThreads = 3;
    UniversalObject<CounterSpec, pmem::SimContext> c(ctx, kThreads, 2048);

    struct Outcome {
      std::int64_t completed = 0;
      bool crashed = false;
      bool has_pending = false;
      std::int64_t pending_marker = 0;
    };
    std::vector<Outcome> outcomes(kThreads);
    points.arm_countdown(400);
    {
      std::vector<std::thread> workers;
      for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
          Outcome& o = outcomes[t];
          try {
            for (int i = 0; i < 150; ++i) {
              const std::int64_t marker =
                  static_cast<std::int64_t>(t) * 1'000'000 + i;
              o.has_pending = true;
              o.pending_marker = marker;
              c.prep(t, CounterSpec::Op{CounterSpec::Add{1, marker}});
              c.exec(t);
              o.has_pending = false;
              ++o.completed;
            }
          } catch (const pmem::SimulatedCrash&) {
            o.crashed = true;
          }
        });
      }
      for (auto& w : workers) w.join();
    }
    points.disarm();
    pool.crash({pmem::ShadowPool::Survival::kRandom, 0.5, seed});
    c.recover();

    std::int64_t expected = 0;
    for (std::size_t t = 0; t < kThreads; ++t) {
      const Outcome& o = outcomes[t];
      expected += o.completed;
      if (!o.crashed || !o.has_pending) continue;
      const auto r = c.resolve(t);
      const CounterSpec::Op pending_op{
          CounterSpec::Add{1, o.pending_marker}};
      if (r.op.has_value() && *r.op == pending_op && r.resp.has_value()) {
        ++expected;  // the interrupted add landed
      }
    }
    EXPECT_EQ(c.materialize(), expected) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace dssq::dss
