// Tests of the log queue (Friedman et al.'s detectable queue): FIFO
// semantics, log-based resolve, helping, recovery, and crash sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/log_queue.hpp"

namespace dssq::queues {
namespace {

using SimQ = LogQueue<pmem::SimContext>;

struct LogFixture : ::testing::Test {
  pmem::ShadowPool pool{1 << 23};
  pmem::CrashPoints points;
  pmem::SimContext ctx{pool, points};
};

TEST_F(LogFixture, FifoSingleThread) {
  SimQ q(ctx, 1, 64);
  for (Value v = 1; v <= 10; ++v) q.enqueue(0, v);
  for (Value v = 1; v <= 10; ++v) EXPECT_EQ(q.dequeue(0), v);
  EXPECT_EQ(q.dequeue(0), kEmpty);
}

TEST_F(LogFixture, ResolveReflectsLastOperation) {
  SimQ q(ctx, 1, 64);
  q.enqueue(0, 42);
  Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kEnqueue);
  EXPECT_EQ(r.arg, 42);
  EXPECT_EQ(r.response, kOk);

  EXPECT_EQ(q.dequeue(0), 42);
  r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kDequeue);
  EXPECT_EQ(r.response, 42);

  EXPECT_EQ(q.dequeue(0), kEmpty);
  r = q.resolve(0);
  EXPECT_EQ(r.response, kEmpty);
}

TEST_F(LogFixture, ResolveBeforeAnyOperation) {
  SimQ q(ctx, 1, 64);
  EXPECT_EQ(q.resolve(0).op, Resolved::Op::kNone);
}

TEST_F(LogFixture, EntryRecyclingThroughManyRounds) {
  SimQ q(ctx, 1, 32);
  for (int round = 0; round < 3000; ++round) {
    q.enqueue(0, round);
    ASSERT_EQ(q.dequeue(0), round);
  }
}

TEST_F(LogFixture, CrashAfterAnnounceBeforeLink) {
  SimQ q(ctx, 1, 64);
  points.arm_at_label("log:enq:announced");
  EXPECT_THROW(q.enqueue(0, 9), pmem::SimulatedCrash);
  points.disarm();
  pool.crash();
  q.recover();
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kEnqueue);
  EXPECT_EQ(r.arg, 9);
  EXPECT_FALSE(r.response.has_value()) << "never linked: no effect";
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_TRUE(rest.empty());
}

TEST_F(LogFixture, CrashAfterLinkRecoveryCompletesTheLog) {
  SimQ q(ctx, 1, 64);
  points.arm_at_label("log:enq:linked");
  EXPECT_THROW(q.enqueue(0, 9), pmem::SimulatedCrash);
  points.disarm();
  pool.crash();
  q.recover();
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kEnqueue);
  EXPECT_EQ(r.response, kOk) << "linked and persisted: recovery completes it";
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<Value>{9}));
}

TEST_F(LogFixture, CrashAfterClaimRecoveryReportsDequeuedValue) {
  SimQ q(ctx, 1, 64);
  q.enqueue(0, 7);
  points.arm_at_label("log:deq:claimed");
  EXPECT_THROW(q.dequeue(0), pmem::SimulatedCrash);
  points.disarm();
  pool.crash();
  q.recover();
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kDequeue);
  EXPECT_EQ(r.response, 7);
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_TRUE(rest.empty());
}

TEST_F(LogFixture, CrashBeforeClaimLeavesValueQueued) {
  SimQ q(ctx, 1, 64);
  q.enqueue(0, 7);
  points.arm_at_label("log:deq:pre-claim");
  EXPECT_THROW(q.dequeue(0), pmem::SimulatedCrash);
  points.disarm();
  pool.crash();
  q.recover();
  const Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, Resolved::Op::kDequeue);
  EXPECT_FALSE(r.response.has_value());
  std::vector<Value> rest;
  q.drain_to(rest);
  EXPECT_EQ(rest, (std::vector<Value>{7}));
}

// Exhaustive crash sweep through one enqueue + one dequeue, all survival
// policies: resolve must always agree with the recovered queue state.
class LogSweep : public ::testing::TestWithParam<int> {};

TEST_P(LogSweep, EnqueueSweepResolveConsistent) {
  const auto survival = static_cast<pmem::ShadowPool::Survival>(GetParam());
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 23);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 1, 64);
    q.enqueue(0, 1);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      q.enqueue(0, 100);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash({survival, 0.5, 13});
    q.recover();
    const Resolved r = q.resolve(0);
    std::vector<Value> rest;
    q.drain_to(rest);
    const bool in_queue =
        std::find(rest.begin(), rest.end(), 100) != rest.end();
    if (r.op == Resolved::Op::kEnqueue && r.arg == 100) {
      EXPECT_EQ(r.response.has_value(), in_queue) << "k=" << k;
    } else {
      EXPECT_FALSE(in_queue) << "k=" << k;
    }
    EXPECT_TRUE(std::find(rest.begin(), rest.end(), 1) != rest.end());
  }
}

TEST_P(LogSweep, DequeueSweepResolveConsistent) {
  const auto survival = static_cast<pmem::ShadowPool::Survival>(GetParam());
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 23);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    SimQ q(ctx, 1, 64);
    q.enqueue(0, 1);
    q.enqueue(0, 2);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      (void)q.dequeue(0);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();
    if (!crashed) break;

    pool.crash({survival, 0.5, 29});
    q.recover();
    const Resolved r = q.resolve(0);
    std::vector<Value> rest;
    q.drain_to(rest);
    std::sort(rest.begin(), rest.end());
    if (r.op == Resolved::Op::kDequeue && r.response.has_value()) {
      EXPECT_EQ(*r.response, 1) << "FIFO head only, k=" << k;
      EXPECT_EQ(rest, (std::vector<Value>{2}));
    } else {
      EXPECT_EQ(rest, (std::vector<Value>{1, 2})) << "k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Survival, LogSweep, ::testing::Values(0, 1, 2));

TEST(LogQueueStorm, MultiThreadCrashRecoverExactlyOnce) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    pmem::ShadowPool pool(1 << 24);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    constexpr std::size_t kThreads = 3;
    LogQueue<pmem::SimContext> q(ctx, kThreads, 512);

    struct Outcome {
      std::vector<Value> enqueued, dequeued;
      bool crashed = false;
      bool pending_is_enq = false;
      Value pending_arg = 0;
      bool has_pending = false;
    };
    std::vector<Outcome> outcomes(kThreads);

    points.arm_countdown(250);
    {
      std::vector<std::thread> workers;
      for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
          Outcome& o = outcomes[t];
          Xoshiro256 rng(seed * 7919 + t);
          Value next = static_cast<Value>(t + 1) * 1'000'000;
          try {
            for (int i = 0; i < 200; ++i) {
              if (rng.next_bool(0.5)) {
                const Value v = next++;
                o.has_pending = true;
                o.pending_is_enq = true;
                o.pending_arg = v;
                q.enqueue(t, v);
                o.enqueued.push_back(v);
              } else {
                o.has_pending = true;
                o.pending_is_enq = false;
                const Value v = q.dequeue(t);
                if (v != kEmpty) o.dequeued.push_back(v);
              }
              o.has_pending = false;
            }
          } catch (const pmem::SimulatedCrash&) {
            o.crashed = true;
          }
        });
      }
      for (auto& w : workers) w.join();
    }
    points.disarm();
    pool.crash({pmem::ShadowPool::Survival::kRandom, 0.5, seed * 3});
    q.recover();

    std::multiset<Value> enqueued, dequeued;
    for (std::size_t t = 0; t < kThreads; ++t) {
      const Outcome& o = outcomes[t];
      for (const Value v : o.enqueued) enqueued.insert(v);
      for (const Value v : o.dequeued) dequeued.insert(v);
      if (!o.crashed || !o.has_pending) continue;
      const Resolved r = q.resolve(t);
      if (o.pending_is_enq) {
        if (r.op == Resolved::Op::kEnqueue && r.arg == o.pending_arg &&
            r.response.has_value()) {
          enqueued.insert(o.pending_arg);
        }
      } else if (r.op == Resolved::Op::kDequeue &&
                 r.response.has_value() && *r.response != kEmpty &&
                 std::find(o.dequeued.begin(), o.dequeued.end(),
                           *r.response) == o.dequeued.end()) {
        // (stale-anchor filtering as in the DSS queue storms)
        dequeued.insert(*r.response);
      }
    }
    std::multiset<Value> remaining;
    {
      std::vector<Value> rest;
      q.drain_to(rest);
      remaining.insert(rest.begin(), rest.end());
    }
    std::multiset<Value> consumed_plus_left = dequeued;
    consumed_plus_left.insert(remaining.begin(), remaining.end());
    EXPECT_EQ(enqueued, consumed_plus_left) << "seed=" << seed;
  }
}

TEST(LogQueuePerf, ConcurrentMultisetInvariant) {
  pmem::EmulatedNvmContext ctx(1 << 25, pmem::EmulatedNvmBackend(
                                            pmem::EmulationParams{0, 0}));
  LogQueue<pmem::EmulatedNvmContext> q(ctx, 4, 512);
  constexpr int kOps = 1200;
  std::vector<std::vector<Value>> popped(4);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        q.enqueue(t, static_cast<Value>(t * 1'000'000 + i));
        const Value v = q.dequeue(t);
        if (v != kEmpty) popped[t].push_back(v);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<Value> all;
  for (const auto& p : popped) all.insert(all.end(), p.begin(), p.end());
  std::vector<Value> rest;
  q.drain_to(rest);
  all.insert(all.end(), rest.begin(), rest.end());
  std::sort(all.begin(), all.end());
  std::vector<Value> expected;
  for (std::size_t t = 0; t < 4; ++t) {
    for (int i = 0; i < kOps; ++i) {
      expected.push_back(static_cast<Value>(t * 1'000'000 + i));
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(all, expected);
}

}  // namespace
}  // namespace dssq::queues
