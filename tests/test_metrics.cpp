// Tests for the observability layer (src/common/metrics.hpp):
//
//   * per-thread slot isolation — concurrent threads get distinct slots and
//     nothing is lost in aggregation;
//   * counter correctness — a known operation sequence on the emulated-NVM
//     DSS queue produces the exact flush/fence counts implied by Figure 3,
//     and the detectable path strictly out-flushes the non-detectable one
//     (the price of detectability, made into a testable ratio);
//   * recovery tracing — after an injected crash, the queue's
//     last_recovery() trace reports the Figure-6 walk (works even in
//     DSSQ_METRICS=OFF builds: RecoveryTrace is never compiled out);
//   * the JSON writer the reports are built from.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "common/json_writer.hpp"
#include "common/metrics.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"

namespace dssq {
namespace {

using metrics::Counter;
using metrics::Snapshot;

// ---- slot isolation -------------------------------------------------------

TEST(MetricsSlots, ThreadsGetDistinctSlotsAndNoLostUpdates) {
  if (!metrics::kEnabled) GTEST_SKIP() << "metrics compiled out";

  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;

  const Snapshot before = metrics::snapshot();
  std::vector<std::size_t> slot_ids(kThreads);
  std::atomic<bool> go{false};
  std::atomic<std::size_t> arrived{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        metrics::add(Counter::kCasRetries);
      }
      slot_ids[t] = metrics::slot_id();
      // Slots are leased for the thread's lifetime and recycled at exit;
      // distinctness is only guaranteed while the leases overlap, so hold
      // every thread alive until all of them own a slot.
      arrived.fetch_add(1, std::memory_order_acq_rel);
      while (arrived.load(std::memory_order_acquire) < kThreads) {
        std::this_thread::yield();
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const Snapshot delta = metrics::snapshot() - before;

  // Far fewer threads than registry capacity: every thread owns its slot.
  const std::set<std::size_t> distinct(slot_ids.begin(), slot_ids.end());
  EXPECT_EQ(distinct.size(), kThreads);
  for (const std::size_t id : slot_ids) EXPECT_LE(id, metrics::max_slots());

  // Relaxed per-slot adds with no sharing: totals are exact, not sampled.
  EXPECT_EQ(delta[Counter::kCasRetries], kThreads * kPerThread);
}

TEST(MetricsSlots, SnapshotDeltaIsolatesARun) {
  if (!metrics::kEnabled) GTEST_SKIP() << "metrics compiled out";
  const Snapshot a = metrics::snapshot();
  metrics::add(Counter::kOps, 7);
  const Snapshot b = metrics::snapshot();
  const Snapshot d = b - a;
  EXPECT_EQ(d[Counter::kOps], 7u);
  EXPECT_EQ(d[Counter::kFences], 0u);
}

// ---- counter correctness on a known sequence ------------------------------

using NvmQ = queues::DssQueue<pmem::EmulatedNvmContext>;

// Figure 3's persistence schedule, counted.  A non-detectable enqueue
// persists (a) the initialized node and (b) the link; each persist is one
// flush call + one fence on the emulated backend.  The detectable path
// adds (c) the X[p] announcement in prep and (d) the X[p] completion —
// exactly 2 extra flushes and 2 extra fences per operation.
TEST(MetricsCounters, EnqueueFlushCountsMatchFigure3) {
  if (!metrics::kEnabled) GTEST_SKIP() << "metrics compiled out";

  constexpr std::uint64_t kOps = 10;

  pmem::EmulatedNvmContext ctx(1 << 22);
  NvmQ q(ctx, 1, 64);
  const Snapshot before = metrics::snapshot();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    q.enqueue(0, static_cast<queues::Value>(i) + 1);
  }
  const Snapshot nondet = metrics::snapshot() - before;

  pmem::EmulatedNvmContext ctx2(1 << 22);
  NvmQ q2(ctx2, 1, 64);
  const Snapshot before2 = metrics::snapshot();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    q2.prep_enqueue(0, static_cast<queues::Value>(i) + 1);
    q2.exec_enqueue(0);
  }
  const Snapshot det = metrics::snapshot() - before2;

  EXPECT_EQ(nondet[Counter::kFlushCalls], 2 * kOps);
  EXPECT_EQ(nondet[Counter::kFences], 2 * kOps);
  EXPECT_EQ(det[Counter::kFlushCalls], 4 * kOps);
  EXPECT_EQ(det[Counter::kFences], 4 * kOps);

  // The invariant the fig5a JSON report lets CI assert.
  EXPECT_GT(det[Counter::kFlushCalls], nondet[Counter::kFlushCalls]);

  // Single-threaded, uncontended: no CAS retries, no reclamation.
  EXPECT_EQ(nondet[Counter::kCasRetries], 0u);
  EXPECT_EQ(det[Counter::kCasRetries], 0u);
  EXPECT_EQ(det[Counter::kEbrRetired], 0u);
}

// ---- recovery tracing -----------------------------------------------------

using SimQ = queues::DssQueue<pmem::SimContext>;

TEST(MetricsRecovery, TraceReportsTheFigure6Walk) {
  pmem::ShadowPool pool(1 << 22);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  SimQ q(ctx, 1, 64);
  for (queues::Value v = 1; v <= 3; ++v) q.enqueue(0, v);

  // Crash right after the link CAS persisted: the node is in the list but
  // X[0] still lacks ENQ_COMPL, so recovery must repair exactly one tag.
  q.prep_enqueue(0, 100);
  points.arm_at_label("dss:exec-enq:linked");
  bool crashed = false;
  try {
    q.exec_enqueue(0);
  } catch (const pmem::SimulatedCrash&) {
    crashed = true;
  }
  points.disarm();
  ASSERT_TRUE(crashed);

  pool.crash({pmem::ShadowPool::Survival::kAll, 1.0, 1});
  const metrics::Snapshot before = metrics::snapshot();
  q.recover();
  const metrics::Snapshot delta = metrics::snapshot() - before;

  const metrics::RecoveryTrace& trace = q.last_recovery();
  // Sentinel + {1,2,3} + the linked 100-node.
  EXPECT_EQ(trace.nodes_scanned, 5u);
  EXPECT_EQ(trace.tags_repaired, 1u);

  if (metrics::kEnabled) {
    EXPECT_EQ(delta[Counter::kRecoveryNodesScanned], trace.nodes_scanned);
    EXPECT_EQ(delta[Counter::kRecoveryTagsRepaired], trace.tags_repaired);
  }

  const queues::Resolved r = q.resolve(0);
  EXPECT_EQ(r.op, queues::Resolved::Op::kEnqueue);
  EXPECT_EQ(r.arg, 100);
  ASSERT_TRUE(r.response.has_value());
  EXPECT_EQ(*r.response, queues::kOk);
}

TEST(MetricsRecovery, CleanRecoveryRepairsNothing) {
  pmem::ShadowPool pool(1 << 22);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  SimQ q(ctx, 1, 64);
  for (queues::Value v = 1; v <= 3; ++v) q.enqueue(0, v);

  pool.crash({pmem::ShadowPool::Survival::kAll, 1.0, 1});
  q.recover();

  EXPECT_EQ(q.last_recovery().tags_repaired, 0u);
  EXPECT_EQ(q.last_recovery().nodes_scanned, 4u);  // sentinel + {1,2,3}
}

// ---- JSON writer ----------------------------------------------------------

TEST(JsonWriter, EmitsValidNestedDocument) {
  json::Writer w;
  w.begin_object();
  w.kv("name", "fig\"5a\"");
  w.kv("enabled", true);
  w.kv("count", std::uint64_t{42});
  w.kv("ratio", 0.5);
  w.key("series");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.end_object();

  EXPECT_EQ(w.str(),
            "{\"name\":\"fig\\\"5a\\\"\",\"enabled\":true,\"count\":42,"
            "\"ratio\":0.5,\"series\":[1,2]}");
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  json::Writer w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, EscapesControlCharacters) {
  json::Writer w;
  w.value(std::string_view("a\nb\tc\x01"));
  EXPECT_EQ(w.str(), "\"a\\nb\\tc\\u0001\"");
}

}  // namespace
}  // namespace dssq
