// DSS over message passing: exactly-once RPC.
//
// The paper claims the DSS is model-agnostic (desideratum D2) — sequential
// specifications compose with message passing just as well as with shared
// memory.  This example runs the classic hard case of distributed systems,
// the ambiguous RPC: a client sends a write to a server, the server
// crashes, and the client cannot tell whether the write was applied.  With
// the DSS protocol (prep → exec → resolve as RPCs against a server whose
// detectability records live in persistent storage) the ambiguity is
// resolved after restart and the write happens exactly once.

#include <cstdio>

#include "msgsim/msgsim.hpp"

using namespace dssq;
using namespace dssq::msgsim;

int main() {
  std::printf("=== exactly-once RPC via DSS prep/exec/resolve ===\n\n");

  // Sweep the server crash through every persistence-relevant point of
  // the request processing; the client recovers each time.
  int runs = 0;
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 20);
    pmem::CrashPoints points;
    RegisterServer server(pool, points, 1);
    Network net(/*seed=*/100 + static_cast<std::uint64_t>(k));
    WriteClient client(0, 777);
    client.start(net);

    bool crashed = false;
    points.arm_countdown(k);
    try {
      run_until_quiet(net, server, {&client});
    } catch (const pmem::SimulatedCrash& c) {
      crashed = true;
      std::printf("run %2ld: server crashed at '%s'", k, c.label);
    }
    points.disarm();

    if (!crashed) {
      std::printf("run %2ld: no crash — protocol completed normally\n", k);
      break;
    }

    // Power failure: in-flight messages die with the server; the DSS
    // records in persistent storage survive.
    server.crash(net);
    // The client times out, reconnects, and asks what happened.
    client.begin_recovery(net);
    run_until_quiet(net, server, {&client});
    std::printf(" -> recovered, value=%ld (%s)\n", server.current_value(),
                client.write_took_effect() ? "write confirmed"
                                           : "write lost?!");
    if (server.current_value() != 777 || !client.write_took_effect()) {
      std::printf("FAILURE: exactly-once violated\n");
      return 1;
    }
    ++runs;
  }

  std::printf(
      "\nserver crashed in %d distinct protocol positions; the write was\n"
      "applied exactly once in every run — no lost updates, no double\n"
      "applies, no client-side guessing.\n",
      runs);
  return 0;
}
