// Exactly-once RPC across REAL process crashes, served through the
// multi-process layer: named-object directory + slot leases, with every
// attach going through the dss::Session facade (one attach() + open<>()
// per client instead of the raw heap/lookup/adopt/lease sequence).
//
// The classic ambiguous-RPC problem: a client submits a write, dies before
// hearing back, and nobody can tell whether the write was applied.  Here
// the "server" is a DSS queue living in a shared persistent heap:
//
//   publisher   creates the heap, builds the queue, PUBLISHES its root
//               under a name in the heap's directory, and exits — the
//               heap file is now a self-describing service endpoint;
//   client A    opens the same file, finds the queue BY NAME (no shared
//               setup code, no hand-rolled root plumbing), leases a
//               detectability slot, prep-enqueues a payment… and is
//               SIGKILLed before it can observe the outcome;
//   client B    attaches later, proves A dead (pid + kernel birth stamp),
//               RECLAIMS its lease — which resolves A's prepared write
//               BEFORE the slot is reissued — and applies it exactly once:
//               if the write took effect it is acknowledged, if not it is
//               resubmitted, never both.
//
// Run it; the output shows which of the two paths this run took.  Both end
// with the payment in the queue exactly once.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "dss/session.hpp"
#include "harness/fork_crash.hpp"
#include "pmem/persistent_heap.hpp"
#include "pmem/slot_lease.hpp"
#include "queues/dss_queue.hpp"

using namespace dssq;

namespace {

constexpr const char* kQueueName = "rpc/payments";
constexpr const char* kLeaseName = "rpc/leases";
constexpr std::size_t kSlots = 4;
constexpr queues::Value kPayment = 777;

std::string heap_path() {
  return "/tmp/rpc_register." + std::to_string(::getpid()) + ".heap";
}

/// Publisher: build the service state and bind it to names.  After close()
/// the file alone describes the service — no process remembers anything.
void publish(const std::string& path) {
  dss::Session::Options opt;
  opt.bytes = 8u << 20;
  dss::Session session = dss::Session::create(path, opt);
  queues::DssQueue<pmem::MmapContext> q(session.ctx(), kSlots, 256);
  queues::QueueRoot* qroot = q.make_root();
  void* lbase = session.heap().raw_alloc(
      pmem::SlotLeaseTable::bytes_for(kSlots), kCacheLineSize);
  pmem::SlotLeaseTable::format(lbase, kSlots, session.heap().backend());
  session.publish<queues::QueueRoot>(kQueueName, qroot);
  session.publish<pmem::SlotLeaseTable::Header>(
      kLeaseName, static_cast<pmem::SlotLeaseTable::Header*>(lbase));
  session.close();
  std::printf("publisher: queue published as '%s' in %s\n", kQueueName,
              path.c_str());
}

/// Client A: attach by name, lease a slot, prepare the write — then die at
/// a point where the outcome is ambiguous to everyone else.
int doomed_client(const std::string& path, bool execute_before_dying) {
  dss::Session session = dss::Session::attach(path);
  auto q = session.open<queues::DssQueue<pmem::MmapContext>>(kQueueName);
  auto leases = session.open<pmem::SlotLeaseTable>(kLeaseName);
  const std::size_t slot = leases.acquire(session.heap().backend());
  if (slot == pmem::SlotLeaseTable::kNoSlot) return 3;
  std::printf("client A (pid %d): leased slot %zu, prep-enqueue(%ld)%s\n",
              ::getpid(), slot, kPayment,
              execute_before_dying ? " + exec" : "");
  q.prep_enqueue(slot, kPayment);
  if (execute_before_dying) q.exec_enqueue(slot);
  // Die without releasing anything: lease held, operation unresolved.
  ::kill(::getpid(), SIGKILL);
  return 125;  // unreachable
}

/// Client B: attach later, reclaim A's lease (which resolves A's write
/// before the slot serves again), and finish the RPC exactly once.
int recovering_client(const std::string& path) {
  dss::Session session = dss::Session::attach(path);
  auto q = session.open<queues::DssQueue<pmem::MmapContext>>(kQueueName);
  auto leases = session.open<pmem::SlotLeaseTable>(kLeaseName);

  bool applied = false;
  // Not acquire_or_reclaim: B wants A's dead lease specifically (three free
  // slots sit right next to it), because the reclaim IS the recovery.
  const std::size_t slot =
      leases.reclaim_dead(session.heap().backend(), [&](std::size_t t) {
        q.recover_independent(t);  // repair the dead client's X[t]
        const queues::Resolved r = q.resolve(t);
        std::printf("client B (pid %d): slot %zu's last op resolves to %s\n",
                    ::getpid(), t, r.to_string().c_str());
        applied = r.op == dss::ResolvedOp::kEnqueue && r.took_effect();
        if (!applied) {
          // The write provably never happened — resubmit it on the very
          // slot we are settling (we own it exclusively right now).
          q.prep_enqueue(t, kPayment);
          q.exec_enqueue(t);
          std::printf("client B: write was lost; resubmitted\n");
        } else {
          std::printf("client B: write already applied; acknowledging\n");
        }
      });
  if (slot == pmem::SlotLeaseTable::kNoSlot) {
    std::fprintf(stderr, "client B: no dead lease to reclaim?!\n");
    return 3;
  }

  // Exactly-once check: the payment must be in the queue once, not zero
  // times, not twice.
  std::vector<queues::Value> rest;
  q.drain_to(rest);
  std::size_t copies = 0;
  for (const queues::Value v : rest) copies += (v == kPayment) ? 1 : 0;
  std::printf("client B: queue holds %zu copy(ies) of the payment\n", copies);
  leases.release(slot, session.heap().backend());
  session.close();
  return copies == 1 ? 0 : 4;
}

}  // namespace

int main() {
  // The interesting prints happen in children that die by SIGKILL or
  // _exit — unbuffered stdout so their last words actually escape.
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf("=== exactly-once RPC via directory attach + lease reclaim "
              "===\n\n");
  const std::string path = heap_path();
  ::unlink(path.c_str());

  // Both ambiguity flavors: A dies before exec (write lost) and after exec
  // (write applied) — B must end with exactly one payment either way.
  for (const bool executed : {false, true}) {
    std::printf("--- run: client A dies %s executing ---\n",
                executed ? "AFTER" : "BEFORE");
    publish(path);
    const harness::ChildResult a = harness::run_in_child(
        [&] { return doomed_client(path, executed); });
    if (!a.sigkilled()) {
      std::fprintf(stderr, "client A did not die as scripted\n");
      return 1;
    }
    const harness::ChildResult b =
        harness::run_in_child([&] { return recovering_client(path); });
    if (!b.clean()) {
      std::fprintf(stderr, "FAILURE: exactly-once violated (code %d)\n",
                   b.exit_code);
      return 1;
    }
    ::unlink(path.c_str());
    std::printf("\n");
  }
  std::printf("the payment was applied exactly once in both runs — no lost\n"
              "updates, no double applies, no client-side guessing.\n");
  return 0;
}
