// Application-managed nesting of DSS objects (paper, Section 2.2) and the
// generic D⟨T⟩ transformation in action.
//
// Part 1 uses the mechanical DetectableSpec<Spec> transformation on a
// register — the reference model of the paper's Figure 2 — and walks its
// four crash scenarios.
//
// Part 2 nests: a Treiber stack built over a D⟨CAS⟩ base object.  The
// stack's plain operations use only the non-detectable CAS (Axiom 4 of the
// base object), while a detectable push drives the base object's
// prep/exec/resolve — "DSS-based objects can be nested ... nesting is left
// to application code."

#include <cstdio>

#include "dss/detectable.hpp"
#include "dss/specs/register_spec.hpp"
#include "objects/detectable_cas.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"

using namespace dssq;

namespace {

void figure2_walkthrough() {
  using Spec = dss::RegisterSpec;
  std::printf("-- Figure 2: the four crash positions of a detectable "
              "write(1) --\n");

  {  // (a) crash after exec completes
    dss::DetectableModel<Spec> reg;
    reg.prep(0, Spec::Write{1});
    reg.exec(0);
    const auto r = reg.resolve(0);
    std::printf("(a) crash after exec:   resolve -> (%s, %s)\n",
                Spec::to_string(*r.op).c_str(),
                Spec::resp_to_string(*r.resp).c_str());
  }
  {  // (b) crash during exec — both worlds possible; show the "no effect"
    dss::DetectableModel<Spec> reg;
    reg.prep(0, Spec::Write{1});
    const auto r = reg.resolve(0);
    std::printf("(b) crash during exec:  resolve -> (%s, ⊥) or (write(1), "
                "OK)\n",
                Spec::to_string(*r.op).c_str());
  }
  {  // (c) crash before exec
    dss::DetectableModel<Spec> reg;
    reg.prep(0, Spec::Write{1});
    const auto r = reg.resolve(0);
    std::printf("(c) crash before exec:  resolve -> (%s, ⊥)\n",
                Spec::to_string(*r.op).c_str());
  }
  {  // (d) crash during prep
    dss::DetectableModel<Spec> reg;
    const auto r = reg.resolve(0);
    std::printf("(d) crash during prep:  resolve -> (%s, ⊥)\n",
                r.op ? Spec::to_string(*r.op).c_str() : "⊥");
  }
  std::printf("\n");
}

// A minimal Treiber stack whose head is a D⟨CAS⟩ object; node storage is a
// flat persistent table indexed by the CAS value.
class StackOnDetectableCas {
 public:
  StackOnDetectableCas(pmem::SimContext& ctx, std::size_t threads,
                       std::size_t capacity)
      : ctx_(ctx), head_(ctx, threads) {
    nodes_ = pmem::alloc_array<Node>(ctx, capacity + 1);
    capacity_ = capacity;
  }

  // Ordinary push: only the NON-detectable operations of D⟨CAS⟩.
  void push(std::size_t tid, std::int64_t v) {
    const std::int64_t idx = alloc(v);
    for (;;) {
      const std::int64_t h = head_.read();
      nodes_[idx].next = h;
      ctx_.persist(&nodes_[idx], sizeof(Node));
      if (head_.cas(tid, h, idx)) return;
    }
  }

  // Detectable push: prep/exec on the base object; resolve after a crash.
  void detectable_push(std::size_t tid, std::int64_t v) {
    const std::int64_t idx = alloc(v);
    const std::int64_t h = head_.read();
    nodes_[idx].next = h;
    ctx_.persist(&nodes_[idx], sizeof(Node));
    head_.prep_cas(tid, h, idx);
    head_.exec_cas(tid);
  }

  bool push_landed(std::size_t tid) const {
    const auto r = head_.resolve(tid);
    return r.prepared() && r.response.has_value() && *r.response;
  }

  std::int64_t pop(std::size_t tid) {
    for (;;) {
      const std::int64_t h = head_.read();
      if (h == 0) return -1;
      if (head_.cas(tid, h, nodes_[h].next)) return nodes_[h].value;
    }
  }

 private:
  struct alignas(64) Node {
    std::int64_t next = 0;
    std::int64_t value = 0;
  };

  std::int64_t alloc(std::int64_t v) {
    const std::int64_t idx = ++next_;
    if (static_cast<std::size_t>(idx) > capacity_) throw std::bad_alloc();
    nodes_[idx].value = v;
    return idx;
  }

  pmem::SimContext& ctx_;
  objects::DetectableCas<pmem::SimContext> head_;
  Node* nodes_ = nullptr;
  std::size_t capacity_ = 0;
  std::int64_t next_ = 0;
};

void nested_stack_demo() {
  std::printf("-- nesting: a stack over a D⟨CAS⟩ base object --\n");
  pmem::ShadowPool pool(1 << 20);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  StackOnDetectableCas stack(ctx, 1, 64);

  stack.push(0, 10);
  stack.push(0, 20);
  std::printf("pushed 10, 20 via plain ops; pop -> %ld\n", stack.pop(0));

  // Crash in the middle of a detectable push, right after the swap lands.
  points.arm_at_label("cas:exec:swapped");
  try {
    stack.detectable_push(0, 30);
  } catch (const pmem::SimulatedCrash&) {
    std::printf("crash mid-push of 30\n");
  }
  points.disarm();
  pool.crash({pmem::ShadowPool::Survival::kAll, 1.0, 7});

  if (stack.push_landed(0)) {
    std::printf("resolve: push landed -> not retrying\n");
  } else {
    std::printf("resolve: push lost -> retrying\n");
    stack.detectable_push(0, 30);
  }
  const std::int64_t first = stack.pop(0);
  const std::int64_t second = stack.pop(0);
  std::printf("pop -> %ld (expected 30), pop -> %ld (expected 10)\n", first,
              second);
}

}  // namespace

int main() {
  figure2_walkthrough();
  nested_stack_demo();
  return 0;
}
