// A two-stage processing pipeline with end-to-end exactly-once semantics
// across a crash.
//
// Stage A consumes from an ingress queue, transforms (here: ×10), and
// produces into an egress queue; stage B consumes the egress queue.  Both
// queues are detectable DSS queues.  The hard part of pipelines under
// crashes is the MIDDLE: a stage-A worker may have consumed an item and
// not yet produced its output (or produced it and not yet learned so).
// With detectability, the worker's post-crash protocol is mechanical:
//
//   resolve(dequeue on ingress):
//     ⊥            -> nothing consumed; just continue
//     value v      -> v is OURS; resolve(enqueue on egress):
//                       arg == f(v) and OK  -> output already produced
//                       otherwise           -> produce f(v) now (once)
//
// The audit at the end checks every ingress item appears exactly once,
// transformed, at the egress side.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"

using namespace dssq;
using Queue = queues::DssQueue<pmem::SimContext>;

namespace {

constexpr queues::Value kItems = 200;

// Stage A body: consume one ingress item detectably, produce its
// transform detectably.  Crash can strike anywhere inside.
bool stage_a_step(Queue& ingress, Queue& egress, std::size_t tid) {
  ingress.prep_dequeue(tid);
  const queues::Value v = ingress.exec_dequeue(tid);
  if (v == queues::kEmpty) return false;
  egress.prep_enqueue(tid, v * 10);
  egress.exec_enqueue(tid);
  return true;
}

// Post-crash repair for a stage-A worker, per the protocol above.
void stage_a_recover(Queue& ingress, Queue& egress, std::size_t tid) {
  const auto in = ingress.resolve(tid);
  if (in.op != queues::Resolved::Op::kDequeue ||
      !in.response.has_value() || *in.response == queues::kEmpty) {
    return;  // no item was consumed by the interrupted step
  }
  const queues::Value mine = *in.response;
  const auto out = egress.resolve(tid);
  const bool produced = out.op == queues::Resolved::Op::kEnqueue &&
                        out.arg == mine * 10 && out.response.has_value();
  if (!produced) {
    std::printf("  worker %zu: item %ld consumed but output missing -> "
                "producing %ld now\n",
                tid, mine, mine * 10);
    egress.prep_enqueue(tid, mine * 10);
    egress.exec_enqueue(tid);
  } else {
    std::printf("  worker %zu: item %ld fully processed pre-crash\n", tid,
                mine);
  }
}

}  // namespace

int main() {
  pmem::ShadowPool pool(1 << 23);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  Queue ingress(ctx, 2, 1024);
  Queue egress(ctx, 2, 1024);

  for (queues::Value v = 1; v <= kItems; ++v) ingress.enqueue(0, v);
  std::printf("ingress loaded with %ld items\n", kItems);

  // Stage A runs; a power failure strikes mid-stream.
  points.arm_countdown(700);
  std::size_t processed = 0;
  try {
    while (stage_a_step(ingress, egress, 0)) ++processed;
  } catch (const pmem::SimulatedCrash& c) {
    std::printf("crash at '%s' after %zu completed steps\n", c.label,
                processed);
  }
  points.disarm();
  pool.crash({pmem::ShadowPool::Survival::kRandom, 0.5, 99});
  ingress.recover();
  egress.recover();

  // The worker revives, settles its interrupted step, and continues.
  stage_a_recover(ingress, egress, 0);
  while (stage_a_step(ingress, egress, 0)) {
  }

  // Stage B + audit.
  std::vector<queues::Value> outputs;
  for (;;) {
    const queues::Value v = egress.dequeue(1);
    if (v == queues::kEmpty) break;
    outputs.push_back(v);
  }
  std::sort(outputs.begin(), outputs.end());
  bool ok = static_cast<queues::Value>(outputs.size()) == kItems;
  for (queues::Value i = 0; ok && i < kItems; ++i) {
    ok = outputs[static_cast<std::size_t>(i)] == (i + 1) * 10;
  }
  std::printf("egress received %zu items; exactly-once end-to-end: %s\n",
              outputs.size(), ok ? "YES" : "NO — PIPELINE CORRUPTED");
  return ok ? 0 : 1;
}
