// A crash-tolerant task queue with exactly-once dispatch.
//
// The scenario the paper's introduction motivates: a system without
// transactions, where "the application is directly responsible for
// deciding the correct redo and undo actions".  Worker threads pull task
// IDs from a shared persistent queue and process them.  The whole machine
// crashes mid-run; after recovery each worker resolves its interrupted
// dequeue:
//   * if the dequeue took effect, the worker owns that task and completes
//     it (no other worker will ever see it — no lost tasks);
//   * if not, the worker simply pulls again (no double dispatch).
// The run ends with every submitted task processed exactly once despite
// the crash.

#include <algorithm>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"

using namespace dssq;

namespace {

constexpr std::size_t kWorkers = 4;
constexpr queues::Value kNumTasks = 500;

struct Worker {
  std::vector<queues::Value> processed;
  bool crashed = false;
};

}  // namespace

int main() {
  pmem::ShadowPool pool(1 << 23);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  queues::DssQueue<pmem::SimContext> queue(ctx, kWorkers + 1, 2048);

  // The submitter (tid kWorkers) enqueues every task durably.
  for (queues::Value task = 1; task <= kNumTasks; ++task) {
    queue.prep_enqueue(kWorkers, task);
    queue.exec_enqueue(kWorkers);
  }
  std::printf("submitted %ld tasks\n", kNumTasks);

  std::vector<Worker> workers(kWorkers);
  auto worker_body = [&](std::size_t tid) {
    try {
      for (;;) {
        queue.prep_dequeue(tid);
        const queues::Value task = queue.exec_dequeue(tid);
        if (task == queues::kEmpty) return;
        workers[tid].processed.push_back(task);  // "process" the task
      }
    } catch (const pmem::SimulatedCrash&) {
      workers[tid].crashed = true;
    }
  };

  // Run the fleet; a system-wide power failure strikes mid-run.
  points.arm_countdown(900);
  {
    std::vector<std::thread> fleet;
    for (std::size_t t = 0; t < kWorkers; ++t) {
      fleet.emplace_back(worker_body, t);
    }
    for (auto& w : fleet) w.join();
  }
  points.disarm();
  std::size_t before = 0;
  for (const auto& w : workers) before += w.processed.size();
  std::printf("crash struck; %zu tasks handled before the failure\n",
              before);

  // Power failure + centralized recovery phase.
  pool.crash({pmem::ShadowPool::Survival::kRandom, 0.5, 2026});
  queue.recover();

  // Each worker revives under its old ID, settles its interrupted
  // operation, then the fleet continues.
  for (std::size_t t = 0; t < kWorkers; ++t) {
    if (!workers[t].crashed) continue;
    const auto r = queue.resolve(t);
    if (r.op == queues::Resolved::Op::kDequeue &&
        r.response.has_value() && *r.response != queues::kEmpty) {
      std::printf("worker %zu: interrupted dequeue DID take effect -> "
                  "claiming task %ld\n",
                  t, *r.response);
      workers[t].processed.push_back(*r.response);
    } else {
      std::printf("worker %zu: interrupted dequeue did not take effect\n",
                  t);
    }
  }

  {
    std::vector<std::thread> fleet;
    for (std::size_t t = 0; t < kWorkers; ++t) {
      fleet.emplace_back(worker_body, t);
    }
    for (auto& w : fleet) w.join();
  }

  // ---- audit: exactly-once ------------------------------------------------
  std::vector<queues::Value> all;
  for (const auto& w : workers) {
    all.insert(all.end(), w.processed.begin(), w.processed.end());
  }
  std::sort(all.begin(), all.end());
  const bool no_dupes = std::adjacent_find(all.begin(), all.end()) ==
                        all.end();
  const bool complete = static_cast<queues::Value>(all.size()) == kNumTasks &&
                        all.front() == 1 && all.back() == kNumTasks;
  std::printf("processed %zu tasks; duplicates: %s; complete: %s\n",
              all.size(), no_dupes ? "none" : "FOUND", complete ? "yes"
                                                                : "NO");
  return (no_dupes && complete) ? 0 : 1;
}
