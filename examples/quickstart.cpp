// Quickstart: the DSS queue in five minutes.
//
// Shows the full detectable life cycle on a simulated persistent-memory
// pool: prep → exec → (crash) → recover → resolve → retry-if-needed.
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"

using namespace dssq;

int main() {
  // A simulated persistent-memory pool with crash semantics: writes reach
  // the "persistence domain" only via flush+fence, exactly like real
  // hardware with a volatile cache.
  pmem::ShadowPool pool(1 << 22);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);

  constexpr std::size_t kThreads = 4;
  queues::DssQueue<pmem::SimContext> queue(ctx, kThreads,
                                           /*nodes_per_thread=*/1024);

  // ---- non-detectable operations (ordinary queue use, Axiom 4) ----------
  queue.enqueue(/*tid=*/0, 100);
  queue.enqueue(0, 200);
  std::printf("plain dequeue -> %ld\n", queue.dequeue(0));  // 100

  // ---- detectable operations --------------------------------------------
  // Declare intent first (prep), then apply (exec).  If a crash interrupts
  // anything after prep, resolve() can tell what happened.
  queue.prep_enqueue(/*tid=*/1, 300);
  queue.exec_enqueue(1);
  auto r = queue.resolve(1);
  std::printf("after exec-enqueue(300), resolve(1) -> %s\n",
              r.to_string().c_str());  // (enqueue(300), OK)

  // ---- a crash mid-operation ----------------------------------------------
  // Arm the injector to kill the process state at the step right after the
  // enqueue's link CAS persists but before its completion record does —
  // the hardest window for detectability.
  points.arm_at_label("dss:exec-enq:linked");
  try {
    queue.prep_enqueue(2, 400);
    queue.exec_enqueue(2);
  } catch (const pmem::SimulatedCrash& crash) {
    std::printf("crash at '%s' — volatile state lost\n", crash.label);
  }
  points.disarm();

  // Power failure: every cache line that was not flushed+fenced is gone.
  pool.crash();

  // Recovery (Figure 6 of the paper): repairs head/tail, completes
  // detectability tags, rebuilds the allocator's free lists.
  queue.recover();

  // The thread revives under the same ID and asks what happened:
  r = queue.resolve(2);
  std::printf("after crash+recovery, resolve(2) -> %s\n",
              r.to_string().c_str());
  if (!r.response.has_value()) {
    std::printf("  -> did not take effect; retrying exactly once\n");
    queue.prep_enqueue(2, 400);
    queue.exec_enqueue(2);
  } else {
    std::printf("  -> took effect; NOT retrying (exactly-once)\n");
  }

  // Drain and show the final state: 200, 300, 400 — each exactly once.
  std::printf("final queue contents:");
  for (;;) {
    const queues::Value v = queue.dequeue(0);
    if (v == queues::kEmpty) break;
    std::printf(" %ld", v);
  }
  std::printf("\n");
  return 0;
}
