// A crash-consistent ledger from detectable base objects.
//
// Demonstrates the DSS beyond queues: account balances are
// DetectableCounter objects (whose detection is *exact* — see
// src/objects/detectable_counter.hpp), and a transfer is the pair
// (withdraw, deposit), each run detectably.  After a crash the
// application replays the transfer from its resolve states:
//   * withdraw and deposit both landed  -> nothing to do;
//   * withdraw landed, deposit did not  -> re-exec the deposit (redo);
//   * withdraw did not land             -> re-run the whole transfer.
// Money is conserved across every crash location — the sweep in this
// example proves it for all of them.

#include <cstdio>

#include "objects/detectable_counter.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"

using namespace dssq;

namespace {

constexpr std::int64_t kInitialBalance = 1000;
constexpr std::int64_t kAmount = 250;

struct Bank {
  objects::DetectableCounter<pmem::SimContext> alice;
  objects::DetectableCounter<pmem::SimContext> bob;

  explicit Bank(pmem::SimContext& ctx) : alice(ctx, 1), bob(ctx, 1) {
    alice.add(0, kInitialBalance);
    bob.add(0, kInitialBalance);
  }

  std::int64_t total() const { return alice.read() + bob.read(); }

  // A transfer = detectable withdraw then detectable deposit.
  void transfer_alice_to_bob(std::int64_t amount) {
    alice.prep_add(0, -amount);
    alice.exec_add(0);
    bob.prep_add(0, amount);
    bob.exec_add(0);
  }

  // Post-crash replay: finish whatever the resolve states say is missing.
  const char* replay_transfer(std::int64_t amount) {
    const auto w = alice.resolve(0);
    const bool withdraw_done =
        w.prepared() && w.arg == -amount && w.response.has_value();
    if (!withdraw_done) {
      transfer_alice_to_bob(amount);
      return "replayed whole transfer";
    }
    const auto d = bob.resolve(0);
    const bool deposit_done =
        d.prepared() && d.arg == amount && d.response.has_value();
    if (!deposit_done) {
      if (d.prepared() && d.arg == amount) {
        bob.exec_add(0);  // prep survived: finish the deposit
      } else {
        bob.prep_add(0, amount);
        bob.exec_add(0);
      }
      return "completed missing deposit";
    }
    return "already complete";
  }
};

}  // namespace

int main() {
  std::printf("transfer %ld from alice to bob under a crash at every "
              "possible point:\n\n",
              kAmount);

  int failures = 0;
  for (std::int64_t k = 0;; ++k) {
    pmem::ShadowPool pool(1 << 20);
    pmem::CrashPoints points;
    pmem::SimContext ctx(pool, points);
    Bank bank(ctx);

    bool crashed = false;
    points.arm_countdown(k);
    const char* outcome = "no crash";
    try {
      bank.transfer_alice_to_bob(kAmount);
    } catch (const pmem::SimulatedCrash&) {
      crashed = true;
    }
    points.disarm();

    if (crashed) {
      pool.crash();  // power failure: unflushed lines are gone
      outcome = bank.replay_transfer(kAmount);
    }

    const std::int64_t a = bank.alice.read();
    const std::int64_t b = bank.bob.read();
    const bool ok = a == kInitialBalance - kAmount &&
                    b == kInitialBalance + kAmount &&
                    bank.total() == 2 * kInitialBalance;
    std::printf("crash point %2ld: alice=%4ld bob=%4ld  (%s)  %s\n", k, a,
                b, outcome, ok ? "OK" : "MONEY LOST OR DUPLICATED");
    if (!ok) ++failures;
    if (!crashed) break;  // swept past the last crash point
  }

  std::printf("\n%s\n", failures == 0
                            ? "ledger consistent at every crash point"
                            : "LEDGER CORRUPTION DETECTED");
  return failures == 0 ? 0 : 1;
}
