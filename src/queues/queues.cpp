// Anchor translation unit: instantiate every queue over both context
// families so template errors surface at library build time.

#include "queues/dss_queue.hpp"
#include "queues/dss_ring.hpp"
#include "queues/dss_stack.hpp"
#include "queues/durable_queue.hpp"
#include "queues/log_queue.hpp"
#include "queues/ms_queue.hpp"
#include "queues/sharded_queue.hpp"
#include "pmem/persistent_heap.hpp"

namespace dssq::queues {

template class MsQueue<pmem::VolatileContext>;
template class MsQueue<pmem::EmulatedNvmContext>;
template class MsQueue<pmem::SimContext>;

template class DurableQueue<pmem::EmulatedNvmContext>;
template class DurableQueue<pmem::SimContext>;

template class DssQueue<pmem::EmulatedNvmContext>;
template class DssQueue<pmem::EmulatedNvmContext, DssUnsafeReusePolicy>;
template class DssQueue<pmem::ClwbContext>;
template class DssQueue<pmem::MmapContext>;
template class DssQueue<pmem::SimContext>;

template class ShardedDssQueue<pmem::EmulatedNvmContext>;
template class ShardedDssQueue<pmem::EmulatedNvmContext, DssUnsafeReusePolicy>;
template class ShardedDssQueue<pmem::ClwbContext>;
template class ShardedDssQueue<pmem::MmapContext>;
template class ShardedDssQueue<pmem::SimContext>;

template class DssRing<pmem::EmulatedNvmContext>;
template class DssRing<pmem::SimContext>;

template class DssStack<pmem::EmulatedNvmContext>;
template class DssStack<pmem::SimContext>;

template class LogQueue<pmem::EmulatedNvmContext>;
template class LogQueue<pmem::SimContext>;

// Every detectable container resolves through the unified dss::Resolved
// surface (the dss::Detectable concept); the volatile MS queue and the
// durable queue deliberately do not — they have no resolve.
static_assert(dss::Detectable<DssQueue<pmem::EmulatedNvmContext>>);
static_assert(dss::Detectable<ShardedDssQueue<pmem::EmulatedNvmContext>>);
static_assert(dss::Detectable<DssStack<pmem::EmulatedNvmContext>>);
static_assert(dss::Detectable<DssRing<pmem::EmulatedNvmContext>>);
static_assert(dss::Detectable<LogQueue<pmem::EmulatedNvmContext>>);
static_assert(!dss::Detectable<MsQueue<pmem::VolatileContext>>);

}  // namespace dssq::queues
