// The log queue — Friedman, Herlihy, Marathe & Petrank's detectable queue
// (PPoPP'18), reimplemented as the paper's Figure 5b competitor.
//
// Detectability here comes from per-thread *logs* rather than the DSS
// queue's tagged X array: every operation dynamically allocates a log
// entry holding the operation kind, argument and (eventually) its return
// value; the thread's log-anchor slot points at its current entry.  Queue
// nodes carry a `remover` pointer to the dequeuing operation's log entry
// (in place of the durable queue's deqThreadID), and concurrent helpers
// write the dequeued value *into the winner's log entry* before advancing
// the head — "operation arguments and return values are stored directly in
// the logs, and are accessed by other threads via helping mechanisms"
// (Li & Golab, Section 4).
//
// The contrast the paper draws (and Figure 5b measures): the DSS queue's
// detectability state is statically allocated and effectively private,
// while the log queue allocates log objects dynamically in addition to
// queue nodes, and those objects are shared during concurrent dequeues —
// costing extra persists and cache traffic.
#pragma once

#include <cassert>
#include <cstddef>
#include <unordered_set>
#include <thread>
#include <vector>

#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "common/spin.hpp"
#include "ebr/ebr.hpp"
#include "pmem/context.hpp"
#include "pmem/node_arena.hpp"
#include "queues/types.hpp"

namespace dssq::queues {

template <class Ctx>
class LogQueue {
 public:
  /// Sentinel stored in LogEntry::result before the response is known.
  static constexpr Value kUnset = INT64_MIN;

  enum class OpKind : std::uint64_t { kNone = 0, kEnqueue = 1, kDequeue = 2 };

  struct alignas(kCacheLineSize) LogEntry {
    std::atomic<std::uint64_t> kind{0};  // OpKind
    Value arg{0};
    std::atomic<void*> node{nullptr};    // enqueue: the node being inserted
    std::atomic<Value> result{kUnset};
  };
  static_assert(sizeof(LogEntry) == kCacheLineSize);

  struct alignas(kCacheLineSize) LogNode {
    std::atomic<LogNode*> next{nullptr};
    std::atomic<LogEntry*> remover{nullptr};
    Value value{0};
  };
  static_assert(sizeof(LogNode) == kCacheLineSize);

  LogQueue(Ctx& ctx, std::size_t max_threads, std::size_t nodes_per_thread)
      : ctx_(ctx),
        nodes_(ctx, max_threads, nodes_per_thread),
        // Log entries churn once per operation and linger in EBR limbo for
        // up to a grace period plus a drain interval, so the entry pool is
        // sized with generous headroom over the node pool.
        entries_(ctx, max_threads, nodes_per_thread + 512),
        ebr_(max_threads),
        max_threads_(max_threads) {
    head_ = pmem::alloc_object<PaddedPtr>(ctx_);
    tail_ = pmem::alloc_object<PaddedPtr>(ctx_);
    anchors_ = pmem::alloc_array<Anchor>(ctx_, max_threads);
    LogNode* sentinel = pmem::alloc_object<LogNode>(ctx_);
    ctx_.persist(sentinel, sizeof(LogNode));
    head_->ptr.store(sentinel, std::memory_order_relaxed);
    tail_->ptr.store(sentinel, std::memory_order_relaxed);
    ctx_.persist(head_, sizeof(PaddedPtr));
    ctx_.persist(tail_, sizeof(PaddedPtr));
    ebr_.set_pre_reclaim_hook(
        [this](std::size_t) { ctx_.persist_combined(head_, sizeof(PaddedPtr)); });
  }

  /// Detectable enqueue (every log-queue operation is detectable; there is
  /// no on-demand knob — one of the contrasts with the DSS approach).
  void enqueue(std::size_t tid, Value v) {
    trace::OpScope scope(trace::Op::kEnqueue);
    // Allocate outside the epoch region (pool-dry acquisition pumps
    // epochs, which a held reservation would cap).
    LogEntry* e = new_entry(tid, OpKind::kEnqueue, v);
    LogNode* node = acquire_node(tid);
    node->next.store(nullptr, std::memory_order_relaxed);
    node->remover.store(nullptr, std::memory_order_relaxed);
    node->value = v;
    e->node.store(node, std::memory_order_relaxed);
    ctx_.persist_combined(node, sizeof(LogNode));
    ctx_.persist_combined(e, sizeof(LogEntry));
    ebr::EpochGuard guard(ebr_, tid);
    publish_anchor(tid, e);
    ctx_.crash_point("log:enq:announced");

    Backoff backoff;
    for (;;) {
      LogNode* last = tail_->ptr.load(std::memory_order_acquire);
      LogNode* next = last->next.load(std::memory_order_acquire);
      if (last != tail_->ptr.load(std::memory_order_acquire)) {
        metrics::add(metrics::Counter::kCasRetries);
        trace::cas_retry();
        continue;
      }
      if (next == nullptr) {
        if (last->next.compare_exchange_strong(next, node)) {
          ctx_.persist_combined(&last->next, sizeof(last->next));
          ctx_.crash_point("log:enq:linked");
          // Record the response in the log (the extra persist the DSS
          // queue's tag-in-X trick avoids).
          e->result.store(kOk, std::memory_order_release);
          ctx_.persist_combined(&e->result, sizeof(e->result));
          tail_->ptr.compare_exchange_strong(last, node);
          return;
        }
        metrics::add(metrics::Counter::kCasRetries);  // lost the link CAS
        trace::cas_retry();
        backoff.pause();
      } else {
        metrics::add(metrics::Counter::kCasRetries);
        trace::cas_retry();
        ctx_.persist_combined(&last->next, sizeof(last->next));
        tail_->ptr.compare_exchange_strong(last, next);
      }
    }
  }

  /// Detectable dequeue.
  Value dequeue(std::size_t tid) {
    trace::OpScope scope(trace::Op::kDequeue);
    LogEntry* e = new_entry(tid, OpKind::kDequeue, 0);  // outside the region
    ctx_.persist_combined(e, sizeof(LogEntry));
    ebr::EpochGuard guard(ebr_, tid);
    publish_anchor(tid, e);
    ctx_.crash_point("log:deq:announced");

    Backoff backoff;
    for (;;) {
      LogNode* first = head_->ptr.load(std::memory_order_acquire);
      LogNode* last = tail_->ptr.load(std::memory_order_acquire);
      LogNode* next = first->next.load(std::memory_order_acquire);
      if (first != head_->ptr.load(std::memory_order_acquire)) {
        metrics::add(metrics::Counter::kCasRetries);
        trace::cas_retry();
        continue;
      }
      if (first == last) {
        if (next == nullptr) {
          e->result.store(kEmpty, std::memory_order_release);
          ctx_.persist_combined(&e->result, sizeof(e->result));
          ctx_.crash_point("log:deq:empty-recorded");
          return kEmpty;
        }
        metrics::add(metrics::Counter::kCasRetries);  // stale tail
        trace::cas_retry();
        ctx_.persist_combined(&last->next, sizeof(last->next));
        tail_->ptr.compare_exchange_strong(last, next);
      } else {
        LogEntry* expected = nullptr;
        ctx_.crash_point("log:deq:pre-claim");
        if (next->remover.compare_exchange_strong(expected, e)) {
          ctx_.persist_combined(&next->remover, sizeof(next->remover));
          ctx_.crash_point("log:deq:claimed");
          e->result.store(next->value, std::memory_order_release);
          ctx_.persist_combined(&e->result, sizeof(e->result));
          if (head_->ptr.compare_exchange_strong(first, next)) {
            retire_node(tid, first);
          }
          return next->value;
        }
        // Help the winner: persist its claim, complete its log entry, and
        // advance the head.
        metrics::add(metrics::Counter::kCasRetries);  // lost the claim CAS
        trace::cas_retry();
        if (head_->ptr.load(std::memory_order_acquire) == first) {
          LogEntry* winner = next->remover.load(std::memory_order_acquire);
          if (winner != nullptr) {
            ctx_.persist_combined(&next->remover, sizeof(next->remover));
            Value unset = kUnset;
            if (winner->result.compare_exchange_strong(unset, next->value)) {
              ctx_.persist_combined(&winner->result, sizeof(winner->result));
            }
            if (head_->ptr.compare_exchange_strong(first, next)) {
              retire_node(tid, first);
            }
          }
        }
        backoff.pause();
      }
    }
  }

  /// Detection: the status of this thread's most recent operation,
  /// reconstructed from its log anchor.
  Resolved resolve(std::size_t tid) const {
    const LogEntry* e = anchors_[tid].cur.load(std::memory_order_acquire);
    if (e == nullptr) return Resolved::none();
    const auto kind =
        static_cast<OpKind>(e->kind.load(std::memory_order_acquire));
    const Value result = e->result.load(std::memory_order_acquire);
    const std::optional<Value> resp =
        result != kUnset ? std::optional<Value>(result) : std::nullopt;
    return kind == OpKind::kEnqueue ? Resolved::enqueue(e->arg, resp)
                                    : Resolved::dequeue(resp);
  }

  /// Centralized recovery: repair head/tail, complete log entries whose
  /// operation took effect but whose result was not persisted, rebuild
  /// free lists.  Requires quiescence.
  void recover() {
    ebr_.drain_all_unsafe_without_reclaiming();
    nodes_.reset_volatile_state();
    entries_.reset_volatile_state();

    LogNode* old_head = head_->ptr.load(std::memory_order_relaxed);
    std::unordered_set<LogNode*> reachable;
    LogNode* last = old_head;
    reachable.insert(old_head);
    while (LogNode* next = last->next.load(std::memory_order_relaxed)) {
      last = next;
      reachable.insert(last);
    }
    trace::recovery_step(trace::RecoveryStep::kScan, reachable.size());
    const bool tail_moved = tail_->ptr.load(std::memory_order_relaxed) != last;
    tail_->ptr.store(last, std::memory_order_relaxed);
    ctx_.persist(tail_, sizeof(PaddedPtr));
    trace::recovery_step(trace::RecoveryStep::kTailRepair,
                         tail_moved ? 1 : 0);
    metrics::add(metrics::Counter::kRecoveryNodesScanned, reachable.size());

    // Complete interrupted operations from the logs.
    std::uint64_t log_repairs = 0;
    for (std::size_t i = 0; i < max_threads_; ++i) {
      LogEntry* e = anchors_[i].cur.load(std::memory_order_relaxed);
      if (e == nullptr) continue;
      if (e->result.load(std::memory_order_relaxed) != kUnset) continue;
      const auto kind =
          static_cast<OpKind>(e->kind.load(std::memory_order_relaxed));
      if (kind == OpKind::kEnqueue) {
        auto* node =
            static_cast<LogNode*>(e->node.load(std::memory_order_relaxed));
        const bool linked =
            node != nullptr &&
            (reachable.contains(node) ||
             node->remover.load(std::memory_order_relaxed) != nullptr);
        if (linked) {
          e->result.store(kOk, std::memory_order_relaxed);
          ctx_.persist(&e->result, sizeof(e->result));
          metrics::add(metrics::Counter::kRecoveryTagsRepaired);
          ++log_repairs;
        }
      } else if (kind == OpKind::kDequeue) {
        // The dequeue took effect iff some node names e as its remover.
        for (LogNode* n = old_head; n != nullptr;
             n = n->next.load(std::memory_order_relaxed)) {
          if (n->remover.load(std::memory_order_relaxed) == e) {
            e->result.store(n->value, std::memory_order_relaxed);
            ctx_.persist(&e->result, sizeof(e->result));
            metrics::add(metrics::Counter::kRecoveryTagsRepaired);
            ++log_repairs;
            break;
          }
        }
      }
    }

    // Advance head past claimed nodes.
    LogNode* new_head = old_head;
    for (LogNode* n = old_head->next.load(std::memory_order_relaxed);
         n != nullptr &&
         n->remover.load(std::memory_order_relaxed) != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      new_head = n;
    }
    head_->ptr.store(new_head, std::memory_order_relaxed);
    ctx_.persist(head_, sizeof(PaddedPtr));
    trace::recovery_step(trace::RecoveryStep::kHeadRepair,
                         new_head != old_head ? 1 : 0);
    trace::recovery_step(trace::RecoveryStep::kTagRepair, log_repairs);

    // Free lists: keep reachable nodes, anchored entries, and nodes/entries
    // they reference.
    std::unordered_set<const LogNode*> keep_nodes;
    std::unordered_set<const LogEntry*> keep_entries;
    for (LogNode* n = new_head; n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      keep_nodes.insert(n);
    }
    for (std::size_t i = 0; i < max_threads_; ++i) {
      const LogEntry* e = anchors_[i].cur.load(std::memory_order_relaxed);
      if (e == nullptr) continue;
      keep_entries.insert(e);
      if (const auto* node =
              static_cast<const LogNode*>(e->node.load(
                  std::memory_order_relaxed))) {
        keep_nodes.insert(node);
      }
    }
    std::uint64_t reclaimed = 0;
    nodes_.for_each_allocated([&](std::size_t, LogNode* n) {
      if (!keep_nodes.contains(n)) {
        nodes_.release_to_owner(n);
        ++reclaimed;
      }
    });
    entries_.for_each_allocated([&](std::size_t, LogEntry* e) {
      if (!keep_entries.contains(e)) {
        entries_.release_to_owner(e);
        ++reclaimed;
      }
    });
    trace::recovery_step(trace::RecoveryStep::kReclaim, reclaimed);
  }

  void drain_to(std::vector<Value>& out) const {
    LogNode* n = head_->ptr.load(std::memory_order_relaxed)
                     ->next.load(std::memory_order_relaxed);
    while (n != nullptr) {
      if (n->remover.load(std::memory_order_relaxed) == nullptr) {
        out.push_back(n->value);
      }
      n = n->next.load(std::memory_order_relaxed);
    }
  }

  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  struct alignas(kCacheLineSize) PaddedPtr {
    std::atomic<LogNode*> ptr{nullptr};
  };
  struct alignas(kCacheLineSize) Anchor {
    std::atomic<LogEntry*> cur{nullptr};
  };

  /// Pool-dry acquisition pumps epochs; callers are outside any region.
  LogNode* acquire_node(std::size_t tid) {
    LogNode* node = nodes_.try_acquire(tid);
    for (int i = 0; i < 4096 && node == nullptr; ++i) {
      ebr_.try_advance_and_drain(tid);
      std::this_thread::yield();
      node = nodes_.try_acquire(tid);
    }
    if (node == nullptr) throw std::bad_alloc();
    return node;
  }

  LogEntry* new_entry(std::size_t tid, OpKind kind, Value arg) {
    LogEntry* e = entries_.try_acquire(tid);
    for (int i = 0; i < 4096 && e == nullptr; ++i) {
      ebr_.try_advance_and_drain(tid);
      std::this_thread::yield();
      e = entries_.try_acquire(tid);
    }
    if (e == nullptr) throw std::bad_alloc();
    // dssq-lint: allow(persist-after-store) the entry is thread-private
    // until publish_anchor(); both callers persist the whole LogEntry once
    // before publishing, which is cheaper than a flush per field.
    e->kind.store(static_cast<std::uint64_t>(kind),
                  std::memory_order_relaxed);
    e->arg = arg;
    // dssq-lint: allow(persist-after-store) private until publish; see above.
    e->node.store(nullptr, std::memory_order_relaxed);
    // dssq-lint: allow(persist-after-store) private until publish; see above.
    e->result.store(kUnset, std::memory_order_relaxed);
    return e;
  }

  void publish_anchor(std::size_t tid, LogEntry* e) {
    LogEntry* prev = anchors_[tid].cur.load(std::memory_order_relaxed);
    anchors_[tid].cur.store(e, std::memory_order_release);
    ctx_.persist_combined(&anchors_[tid], sizeof(Anchor));
    if (prev != nullptr) retire_entry(tid, prev);
  }

  void retire_node(std::size_t tid, LogNode* node) {
    ebr_.retire(tid, node, [this, tid](void* p) {
      nodes_.release(tid, static_cast<LogNode*>(p));
    });
  }

  /// A superseded log entry may still be written by helpers completing the
  /// previous operation, so it passes through a grace period before reuse.
  void retire_entry(std::size_t tid, LogEntry* e) {
    ebr_.retire(tid, e, [this, tid](void* p) {
      entries_.release(tid, static_cast<LogEntry*>(p));
    });
  }

  Ctx& ctx_;
  pmem::NodeArena<LogNode> nodes_;
  pmem::NodeArena<LogEntry> entries_;
  ebr::EpochManager ebr_;
  std::size_t max_threads_;
  PaddedPtr* head_ = nullptr;
  PaddedPtr* tail_ = nullptr;
  Anchor* anchors_ = nullptr;
};

}  // namespace dssq::queues
