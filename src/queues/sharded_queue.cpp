// Environment glue for the sharded DSS queue: lane-count and lane-pick
// knobs live here so the header stays free of <cstdlib> string parsing.

#include "queues/sharded_queue.hpp"

#include <cstdlib>
#include <cstring>
#include <thread>

namespace dssq::queues {

std::size_t default_lane_count() noexcept {
  static const std::size_t lanes = [] {
    const char* v = std::getenv("DSSQ_LANES");
    if (v != nullptr && *v != '\0') {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v, &end, 10);
      if (end != v && n >= 1) {
        return std::min<std::size_t>(static_cast<std::size_t>(n), kMaxLanes);
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return std::min<std::size_t>(hw == 0 ? 1 : hw, 8);
  }();
  return lanes;
}

bool lane_pick_affinity_from_env() noexcept {
  static const bool affinity = [] {
    const char* v = std::getenv("DSSQ_LANE_PICK");
    return v != nullptr && std::strcmp(v, "affinity") == 0;
  }();
  return affinity;
}

}  // namespace dssq::queues
