// DssRing — a detectable, recoverable, wait-free bounded SPSC ring buffer.
//
// A fourth structural shape for the DSS recipe, and a deliberately
// contrasting one: where the queue/stack/set detect through tagged
// pointers and node marks, the ring detects through MONOTONIC INDICES —
// and gets *exact* detection (like the counter in
// objects/detectable_counter.hpp, Figure 2's case (b) never stays
// ambiguous):
//
//   * `tail` counts enqueues ever completed, `head` dequeues; both only
//     ever grow, each written by exactly one role (single producer,
//     single consumer), each update a single failure-atomic 64-bit store;
//   * prep-enqueue records the target index (the current tail) in the
//     producer's X; the enqueue took effect iff tail has advanced past
//     the target — no third possibility, regardless of where the crash
//     hit;
//   * dequeue additionally records the read value in X BEFORE advancing
//     head, because the slot itself becomes writable the moment head
//     moves (resolve must never read a possibly-recycled slot — the same
//     principle as the unbounded queue's X-pinning, solved here by
//     copying instead of pinning).
//
// The ordering discipline making the indices trustworthy: a slot is
// persisted before the index that publishes it, and the index is
// persisted before the operation completes (and before the X completion
// record).  Recovery is therefore a no-op for the structure itself —
// head/tail/slots are always consistent — which is the wait-free bounded
// design's reward.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/cacheline.hpp"
#include "pmem/context.hpp"
#include "queues/types.hpp"

namespace dssq::queues {

/// Response of enqueue on a full ring.
inline constexpr Value kFull = INT64_MIN + 4;

template <class Ctx>
class DssRing {
 public:
  /// The unified resolve response; response carries kOk / kFull / value /
  /// kEmpty, or ⊥.
  using Resolved = queues::Resolved;

  /// Capacity is rounded up to a power of two.
  DssRing(Ctx& ctx, std::size_t capacity) : ctx_(ctx) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = pmem::alloc_array<Slot>(ctx_, cap);
    head_ = pmem::alloc_object<Index>(ctx_);
    tail_ = pmem::alloc_object<Index>(ctx_);
    px_ = pmem::alloc_object<ProducerX>(ctx_);
    cx_ = pmem::alloc_object<ConsumerX>(ctx_);
    ctx_.persist(slots_, sizeof(Slot) * cap);
    ctx_.persist(head_, sizeof(Index));
    ctx_.persist(tail_, sizeof(Index));
    ctx_.persist(px_, sizeof(ProducerX));
    ctx_.persist(cx_, sizeof(ConsumerX));
  }

  // ---- producer side (single thread) --------------------------------------

  void prep_enqueue(Value v) {
    px_->arg.store(v, std::memory_order_relaxed);
    px_->target.store(tail_->i.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    px_->state.store(kPrepared, std::memory_order_release);
    ctx_.persist_combined(px_, sizeof(ProducerX));
    ctx_.crash_point("ring:prep-enq");
  }

  /// Wait-free: no loops, no CAS.  Returns kOk or kFull.
  Value exec_enqueue() {
    const std::uint64_t target = px_->target.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_->i.load(std::memory_order_relaxed);
    if (tail != target) {
      // Already executed (crash-recovery re-exec): report the recorded
      // outcome.
      return px_->state.load(std::memory_order_relaxed) == kDoneFull
                 ? kFull
                 : kOk;
    }
    if (tail - head_->i.load(std::memory_order_acquire) > mask_) {
      px_->state.store(kDoneFull, std::memory_order_release);
      ctx_.persist_combined(px_, sizeof(ProducerX));
      ctx_.crash_point("ring:exec-enq:full");
      return kFull;
    }
    Slot& slot = slots_[tail & mask_];
    slot.value.store(px_->arg.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    ctx_.persist_combined(&slot, sizeof(Slot));
    ctx_.crash_point("ring:exec-enq:slot-written");
    tail_->i.store(tail + 1, std::memory_order_release);  // publish
    ctx_.persist_combined(tail_, sizeof(Index));
    ctx_.crash_point("ring:exec-enq:published");
    px_->state.store(kDoneOk, std::memory_order_release);
    ctx_.persist_combined(px_, sizeof(ProducerX));
    ctx_.crash_point("ring:exec-enq:completed");
    return kOk;
  }

  /// Exact detection: the enqueue took effect iff tail passed the target.
  Resolved resolve_producer() const {
    const std::uint64_t st = px_->state.load(std::memory_order_acquire);
    if (st == kIdle) return Resolved::none();
    const Value arg = px_->arg.load(std::memory_order_relaxed);
    if (st == kDoneFull) {
      return Resolved::enqueue(arg, kFull);
    }
    if (tail_->i.load(std::memory_order_acquire) >
        px_->target.load(std::memory_order_relaxed)) {
      return Resolved::enqueue(arg, kOk);
    }
    return Resolved::enqueue(arg);
  }

  // ---- consumer side (single thread) ----------------------------------------

  void prep_dequeue() {
    cx_->target.store(head_->i.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    cx_->state.store(kPrepared, std::memory_order_release);
    ctx_.persist_combined(cx_, sizeof(ConsumerX));
    ctx_.crash_point("ring:prep-deq");
  }

  /// Wait-free.  Returns the value or kEmpty.
  Value exec_dequeue() {
    const std::uint64_t target = cx_->target.load(std::memory_order_relaxed);
    const std::uint64_t head = head_->i.load(std::memory_order_relaxed);
    if (head != target) {
      return cx_->state.load(std::memory_order_relaxed) == kDoneEmpty
                 ? kEmpty
                 : cx_->value.load(std::memory_order_relaxed);
    }
    if (head == tail_->i.load(std::memory_order_acquire)) {
      cx_->state.store(kDoneEmpty, std::memory_order_release);
      ctx_.persist_combined(cx_, sizeof(ConsumerX));
      ctx_.crash_point("ring:exec-deq:empty");
      return kEmpty;
    }
    const Value v =
        slots_[head & mask_].value.load(std::memory_order_acquire);
    // Copy the value into the detectability record BEFORE the slot can be
    // recycled (head++ makes it writable by the producer).
    cx_->value.store(v, std::memory_order_relaxed);
    ctx_.persist_combined(cx_, sizeof(ConsumerX));
    ctx_.crash_point("ring:exec-deq:value-saved");
    head_->i.store(head + 1, std::memory_order_release);  // consume
    ctx_.persist_combined(head_, sizeof(Index));
    ctx_.crash_point("ring:exec-deq:consumed");
    cx_->state.store(kDoneValue, std::memory_order_release);
    ctx_.persist_combined(cx_, sizeof(ConsumerX));
    ctx_.crash_point("ring:exec-deq:completed");
    return v;
  }

  Resolved resolve_consumer() const {
    const std::uint64_t st = cx_->state.load(std::memory_order_acquire);
    if (st == kIdle) return Resolved::none();
    if (st == kDoneEmpty) {
      return Resolved::dequeue(kEmpty);
    }
    if (head_->i.load(std::memory_order_acquire) >
        cx_->target.load(std::memory_order_relaxed)) {
      return Resolved::dequeue(cx_->value.load(std::memory_order_relaxed));
    }
    return Resolved::dequeue();
  }

  /// Concept-conforming entry point: the ring has one detectability record
  /// per role, not per thread — tid 0 is the producer, any other tid the
  /// consumer.
  Resolved resolve(std::size_t tid) const {
    return tid == 0 ? resolve_producer() : resolve_consumer();
  }

  // ---- non-detectable paths & introspection ----------------------------------

  Value enqueue(Value v) {
    prep_enqueue(v);
    return exec_enqueue();
  }
  Value dequeue() {
    prep_dequeue();
    return exec_dequeue();
  }

  /// No structural recovery is ever needed (see file comment); provided
  /// for interface symmetry and as an assertion of that claim.
  void recover() const {
    assert(head_->i.load(std::memory_order_relaxed) <=
           tail_->i.load(std::memory_order_relaxed));
    assert(tail_->i.load(std::memory_order_relaxed) -
               head_->i.load(std::memory_order_relaxed) <=
           mask_ + 1);
  }

  std::size_t size() const {
    return static_cast<std::size_t>(tail_->i.load(std::memory_order_acquire) -
                                    head_->i.load(std::memory_order_acquire));
  }
  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::uint64_t kPrepared = 1;
  static constexpr std::uint64_t kDoneOk = 2;
  static constexpr std::uint64_t kDoneFull = 3;
  static constexpr std::uint64_t kDoneEmpty = 4;
  static constexpr std::uint64_t kDoneValue = 5;

  struct alignas(kCacheLineSize) Slot {
    std::atomic<Value> value{0};
  };
  struct alignas(kCacheLineSize) Index {
    std::atomic<std::uint64_t> i{0};
  };
  struct alignas(kCacheLineSize) ProducerX {
    std::atomic<Value> arg{0};
    std::atomic<std::uint64_t> target{0};
    std::atomic<std::uint64_t> state{kIdle};
  };
  struct alignas(kCacheLineSize) ConsumerX {
    std::atomic<Value> value{0};
    std::atomic<std::uint64_t> target{0};
    std::atomic<std::uint64_t> state{kIdle};
  };

  Ctx& ctx_;
  std::size_t mask_ = 0;
  Slot* slots_ = nullptr;
  Index* head_ = nullptr;
  Index* tail_ = nullptr;
  ProducerX* px_ = nullptr;
  ConsumerX* cx_ = nullptr;
};

}  // namespace dssq::queues
