// The durable queue of Friedman, Herlihy, Marathe & Petrank (PPoPP'18) —
// recoverable but NOT detectable.
//
// This is the algorithm the DSS queue transforms (Section 3: "We transform
// the n-thread durable queue into a DSS-based data structure...").  It adds
// to the MS queue:
//   * flushes that persist every pointer before it becomes reachable,
//   * the deq_tid marking protocol (a marked node's value is consumed),
//   * a returnedValues array through which the post-crash recovery phase
//     reports the responses of completed-but-uncollected dequeues.
//
// Durable linearizability is provided; detectability is not: a thread that
// crashes between completing an operation and observing its response
// cannot, by itself, learn whether the operation took effect — precisely
// the gap the DSS closes.
#pragma once

#include <cassert>
#include <cstddef>
#include <unordered_set>
#include <thread>
#include <vector>

#include "common/flight_recorder.hpp"
#include "common/spin.hpp"
#include "ebr/ebr.hpp"
#include "pmem/context.hpp"
#include "pmem/node_arena.hpp"
#include "queues/types.hpp"

namespace dssq::queues {

template <class Ctx>
class DurableQueue {
 public:
  /// returnedValues[tid] sentinel meaning "no response recorded".
  static constexpr Value kNoReturnedValue = INT64_MIN;

  DurableQueue(Ctx& ctx, std::size_t max_threads,
               std::size_t nodes_per_thread)
      : ctx_(ctx),
        arena_(ctx, max_threads, nodes_per_thread),
        ebr_(max_threads),
        max_threads_(max_threads) {
    head_ = pmem::alloc_object<PaddedPtr>(ctx_);
    tail_ = pmem::alloc_object<PaddedPtr>(ctx_);
    returned_ = pmem::alloc_array<ReturnedSlot>(ctx_, max_threads);
    for (std::size_t i = 0; i < max_threads; ++i) {
      returned_[i].value.store(kNoReturnedValue, std::memory_order_relaxed);
    }
    // Recovery reads returnedValues before any operation may have persisted
    // a slot, so the sentinel initialization itself must be durable.
    ctx_.persist(returned_, max_threads * sizeof(ReturnedSlot));
    Node* sentinel = pmem::alloc_object<Node>(ctx_);
    ctx_.persist(sentinel, sizeof(Node));
    head_->ptr.store(sentinel, std::memory_order_relaxed);
    tail_->ptr.store(sentinel, std::memory_order_relaxed);
    ctx_.persist(head_, sizeof(PaddedPtr));
    ctx_.persist(tail_, sizeof(PaddedPtr));
    // Persist-before-reuse (see DssQueue): recovery walks the chain from
    // the persisted head, so a node may be recycled only once the
    // persisted head is past it.  One head persist per reclamation batch.
    ebr_.set_pre_reclaim_hook(
        [this](std::size_t) { ctx_.persist_combined(head_, sizeof(PaddedPtr)); });
  }

  void enqueue(std::size_t tid, Value v) {
    trace::OpScope scope(trace::Op::kEnqueue);
    Node* node = acquire_node(tid);  // outside the region: may pump epochs
    node->next.store(nullptr, std::memory_order_relaxed);
    node->deq_tid.store(kUnmarked, std::memory_order_relaxed);
    node->value = v;
    ctx_.persist_combined(node, sizeof(Node));
    ctx_.crash_point("durable:enq:node-persisted");
    ebr::EpochGuard guard(ebr_, tid);
    Backoff backoff;
    for (;;) {
      Node* last = tail_->ptr.load();
      Node* next = last->next.load();
      if (last != tail_->ptr.load()) continue;
      if (next == nullptr) {
        if (last->next.compare_exchange_strong(next, node)) {
          ctx_.persist_combined(&last->next, sizeof(last->next));
          ctx_.crash_point("durable:enq:linked");
          tail_->ptr.compare_exchange_strong(last, node);
          return;
        }
        backoff.pause();
      } else {  // help the lagging enqueuer
        ctx_.persist_combined(&last->next, sizeof(last->next));
        tail_->ptr.compare_exchange_strong(last, next);
      }
    }
  }

  Value dequeue(std::size_t tid) {
    trace::OpScope scope(trace::Op::kDequeue);
    ebr::EpochGuard guard(ebr_, tid);
    returned_[tid].value.store(kNoReturnedValue, std::memory_order_relaxed);
    ctx_.persist_combined(&returned_[tid], sizeof(ReturnedSlot));
    Backoff backoff;
    for (;;) {
      Node* first = head_->ptr.load();
      Node* last = tail_->ptr.load();
      Node* next = first->next.load();
      if (first != head_->ptr.load()) continue;
      if (first == last) {
        if (next == nullptr) {
          returned_[tid].value.store(kEmpty, std::memory_order_relaxed);
          ctx_.persist_combined(&returned_[tid], sizeof(ReturnedSlot));
          return kEmpty;
        }
        ctx_.persist_combined(&last->next, sizeof(last->next));
        tail_->ptr.compare_exchange_strong(last, next);
      } else {
        const Value v = next->value;
        std::int64_t unmarked = kUnmarked;
        ctx_.crash_point("durable:deq:pre-mark");
        if (next->deq_tid.compare_exchange_strong(
                unmarked, static_cast<std::int64_t>(tid))) {
          ctx_.persist_combined(&next->deq_tid, sizeof(next->deq_tid));
          ctx_.crash_point("durable:deq:marked");
          returned_[tid].value.store(v, std::memory_order_relaxed);
          ctx_.persist_combined(&returned_[tid], sizeof(ReturnedSlot));
          if (head_->ptr.compare_exchange_strong(first, next)) {
            retire(tid, first);
          }
          return v;
        }
        // Help the winning dequeuer persist its mark and advance head.
        if (head_->ptr.load() == first) {
          ctx_.persist_combined(&next->deq_tid, sizeof(next->deq_tid));
          if (head_->ptr.compare_exchange_strong(first, next)) {
            retire(tid, first);
          }
        }
        backoff.pause();
      }
    }
  }

  /// The response the recovery phase reported for `tid`'s interrupted
  /// dequeue, or kNoReturnedValue when none was recorded.
  Value returned_value(std::size_t tid) const {
    return returned_[tid].value.load(std::memory_order_relaxed);
  }

  /// Centralized single-threaded recovery (style of [20]): repair tail,
  /// advance head past marked nodes, report dequeued values through
  /// returnedValues, rebuild free lists.  Requires quiescence.
  void recover() {
    ebr_.drain_all_unsafe_without_reclaiming();
    arena_.reset_volatile_state();

    // Repair tail: last node reachable from head.
    Node* first = head_->ptr.load();
    Node* last = first;
    std::uint64_t scanned = 1;
    while (Node* next = last->next.load()) {
      last = next;
      ++scanned;
    }
    trace::recovery_step(trace::RecoveryStep::kScan, scanned);
    const bool tail_moved = tail_->ptr.load() != last;
    tail_->ptr.store(last, std::memory_order_relaxed);
    ctx_.persist(tail_, sizeof(PaddedPtr));
    trace::recovery_step(trace::RecoveryStep::kTailRepair,
                         tail_moved ? 1 : 0);

    // Advance head to the last marked node (the new sentinel) and report
    // each marked node's value to its dequeuer.
    Node* new_head = first;
    std::uint64_t reported = 0;
    for (Node* n = first->next.load(); n != nullptr; n = n->next.load()) {
      const std::int64_t tid = n->deq_tid.load(std::memory_order_relaxed);
      if (tid == kUnmarked) break;  // first unconsumed node
      const auto slot = static_cast<std::size_t>(tid) & 0xffffffffu;
      if (slot < max_threads_) {
        returned_[slot].value.store(n->value, std::memory_order_relaxed);
        ctx_.persist(&returned_[slot], sizeof(ReturnedSlot));
        ++reported;
      }
      new_head = n;
    }
    head_->ptr.store(new_head, std::memory_order_relaxed);
    ctx_.persist(head_, sizeof(PaddedPtr));
    trace::recovery_step(trace::RecoveryStep::kHeadRepair,
                         new_head != first ? 1 : 0);
    trace::recovery_step(trace::RecoveryStep::kTagRepair, reported);

    // Reclaim every node that is not reachable from the new head: nodes the
    // head passed over, and nodes allocated by an in-flight enqueue that
    // never linked (the durable queue has no detectability state keeping
    // such nodes referenced).
    std::unordered_set<Node*> live;
    for (Node* n = new_head; n != nullptr; n = n->next.load()) live.insert(n);
    std::uint64_t reclaimed = 0;
    arena_.for_each_allocated([&](std::size_t, Node* n) {
      if (!live.contains(n)) {
        arena_.release_to_owner(n);
        ++reclaimed;
      }
    });
    trace::recovery_step(trace::RecoveryStep::kReclaim, reclaimed);
  }

  void drain_to(std::vector<Value>& out) {
    Node* n = head_->ptr.load()->next.load();
    while (n != nullptr) {
      if (n->deq_tid.load(std::memory_order_relaxed) == kUnmarked) {
        out.push_back(n->value);
      }
      n = n->next.load();
    }
  }

  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  struct alignas(kCacheLineSize) PaddedPtr {
    std::atomic<Node*> ptr{nullptr};
  };
  struct alignas(kCacheLineSize) ReturnedSlot {
    std::atomic<Value> value{kNoReturnedValue};
  };

  /// See MsQueue::acquire_node: pool-dry acquisition pumps the epoch, so it
  /// must run outside any epoch region.
  Node* acquire_node(std::size_t tid) {
    Node* node = arena_.try_acquire(tid);
    for (int i = 0; i < 4096 && node == nullptr; ++i) {
      ebr_.try_advance_and_drain(tid);
      std::this_thread::yield();  // let region-holders run (slow path only)
      node = arena_.try_acquire(tid);
    }
    if (node == nullptr) throw std::bad_alloc();
    return node;
  }

  void retire(std::size_t tid, Node* node) {
    ebr_.retire(tid, node, [this, tid](void* p) {
      arena_.release(tid, static_cast<Node*>(p));
    });
  }

  Ctx& ctx_;
  pmem::NodeArena<Node> arena_;
  ebr::EpochManager ebr_;
  std::size_t max_threads_;
  PaddedPtr* head_ = nullptr;
  PaddedPtr* tail_ = nullptr;
  ReturnedSlot* returned_ = nullptr;
};

}  // namespace dssq::queues
