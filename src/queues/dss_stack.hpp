// DssStack — a detectable, recoverable, lock-free LIFO stack.
//
// Not in the paper; built to demonstrate that the DSS-queue technique
// (Section 3) is a reusable *recipe*, not a queue-specific trick.  The
// ingredients transfer one-to-one from the Michael–Scott base to Treiber's
// stack:
//
//   * per-thread X array of tagged node pointers for detectability
//     (PUSH_PREP / PUSH_COMPL / POP_PREP / EMPTY — same bits as the
//     queue's ENQ/DEQ tags);
//   * prep-push allocates and persists the node and announces it;
//     exec-push links it with a head CAS, persists the head, then records
//     PUSH_COMPL — a crash in between is repaired by recovery exactly as
//     the queue's Figure 6 repairs ENQ_COMPL (linked-or-consumed ⇒ took
//     effect);
//   * pops claim the node FIRST with a CAS on its `popper` field (the
//     analogue of deqThreadID: the claim is the linearization point and
//     is persisted before the head moves), so a successful pop is
//     self-detecting: resolve re-reads top->popper.  The head CAS is mere
//     cleanup, and stale heads self-heal: any thread finding a claimed
//     node at the head helps advance past it;
//   * recovery advances the persisted head past the claimed prefix,
//     completes PUSH_COMPL tags, and rebuilds free lists;
//   * the same two hardening rules as the queue apply (persist-before-
//     reuse and X-pinning), for the same reasons.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/metrics.hpp"
#include "common/spin.hpp"
#include "common/tagged_ptr.hpp"
#include "ebr/ebr.hpp"
#include "pmem/context.hpp"
#include "pmem/node_arena.hpp"
#include "queues/types.hpp"

namespace dssq::queues {

// Stack-flavoured aliases of the shared tag bits.
inline constexpr TaggedWord kPushPrepTag = kEnqPrepTag;
inline constexpr TaggedWord kPushComplTag = kEnqComplTag;
inline constexpr TaggedWord kPopPrepTag = kDeqPrepTag;

template <class Ctx>
class DssStack {
 public:
  struct alignas(kCacheLineSize) StackNode {
    std::atomic<StackNode*> next{nullptr};
    std::atomic<std::int64_t> popper{kUnmarked};
    Value value{0};
  };
  static_assert(sizeof(StackNode) == kCacheLineSize);

  DssStack(Ctx& ctx, std::size_t max_threads, std::size_t nodes_per_thread)
      : ctx_(ctx),
        arena_(ctx, max_threads, nodes_per_thread),
        ebr_(max_threads),
        max_threads_(max_threads),
        deferred_(max_threads) {
    head_ = pmem::alloc_object<PaddedPtr>(ctx_);
    x_ = pmem::alloc_array<XSlot>(ctx_, max_threads);
    ctx_.persist(head_, sizeof(PaddedPtr));
    ctx_.persist(x_, sizeof(XSlot) * max_threads);
    ebr_.set_pre_reclaim_hook(
        [this](std::size_t t) { persist_head_for_reuse(t); });
  }

  // ---- detectable operations ----------------------------------------------

  void prep_push(std::size_t tid, Value val) {
    reclaim_failed_prep(tid);
    StackNode* node = acquire_node(tid);
    node->next.store(nullptr, std::memory_order_relaxed);
    node->popper.store(kUnmarked, std::memory_order_relaxed);
    node->value = val;
    ctx_.persist_combined(node, sizeof(StackNode));
    ctx_.crash_point("stack:prep-push:node-persisted");
    x_[tid].word.store(make_tagged(node, kPushPrepTag),
                       std::memory_order_release);
    ctx_.persist_combined(&x_[tid], sizeof(XSlot));
    ctx_.crash_point("stack:prep-push:announced");
  }

  void exec_push(std::size_t tid) {
    const TaggedWord xw = x_[tid].word.load(std::memory_order_acquire);
    assert(has_tag(xw, kPushPrepTag) && "exec-push without prep");
    if (has_tag(xw, kPushComplTag)) return;  // already took effect
    StackNode* node = untag<StackNode>(xw);
    ebr::EpochGuard guard(ebr_, tid);
    push_loop(tid, node, /*detectable=*/true);
  }

  void prep_pop(std::size_t tid) {
    x_[tid].word.store(kPopPrepTag, std::memory_order_release);
    ctx_.persist_combined(&x_[tid], sizeof(XSlot));
    ctx_.crash_point("stack:prep-pop:announced");
  }

  Value exec_pop(std::size_t tid) {
    assert(has_tag(x_[tid].word.load(std::memory_order_relaxed),
                   kPopPrepTag) &&
           "exec-pop without prep");
    ebr::EpochGuard guard(ebr_, tid);
    return pop_loop(tid, /*detectable=*/true);
  }

  /// resolve: status of the most recently prepared operation.
  Resolved resolve(std::size_t tid) const {
    const TaggedWord xw = x_[tid].word.load(std::memory_order_acquire);
    if (has_tag(xw, kPushPrepTag)) {  // "insert" role: push
      const Value arg = untag<StackNode>(xw)->value;
      if (has_tag(xw, kPushComplTag)) return Resolved::enqueue(arg, kOk);
      return Resolved::enqueue(arg);
    }
    if (has_tag(xw, kPopPrepTag)) {  // "remove" role: pop
      if (xw == (kPopPrepTag | kEmptyTag)) {
        return Resolved::dequeue(kEmpty);
      }
      const StackNode* target = untag<const StackNode>(xw);
      if (target != nullptr &&
          target->popper.load(std::memory_order_acquire) ==
              static_cast<std::int64_t>(tid)) {
        return Resolved::dequeue(target->value);
      }
      return Resolved::dequeue();
    }
    return Resolved::none();
  }

  // ---- non-detectable operations --------------------------------------------

  void push(std::size_t tid, Value val) {
    StackNode* node = acquire_node(tid);
    node->next.store(nullptr, std::memory_order_relaxed);
    node->popper.store(kUnmarked, std::memory_order_relaxed);
    node->value = val;
    ctx_.persist_combined(node, sizeof(StackNode));
    ebr::EpochGuard guard(ebr_, tid);
    push_loop(tid, node, /*detectable=*/false);
  }

  Value pop(std::size_t tid) {
    ebr::EpochGuard guard(ebr_, tid);
    return pop_loop(tid, /*detectable=*/false);
  }

  // ---- recovery ----------------------------------------------------------------

  /// Centralized recovery; quiescence required.
  void recover() {
    ebr_.drain_all_unsafe_without_reclaiming();
    arena_.reset_volatile_state();
    for (auto& d : deferred_) d.clear();

    // Collect the chain from the persisted head; the claimed prefix is
    // exactly the pops whose claims persisted before the crash.
    StackNode* old_head = head_->ptr.load(std::memory_order_relaxed);
    std::unordered_set<StackNode*> all_nodes;
    for (StackNode* n = old_head; n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      all_nodes.insert(n);
    }
    metrics::add(metrics::Counter::kRecoveryNodesScanned, all_nodes.size());
    StackNode* new_head = old_head;
    while (new_head != nullptr &&
           new_head->popper.load(std::memory_order_relaxed) != kUnmarked) {
      new_head = new_head->next.load(std::memory_order_relaxed);
    }
    head_->ptr.store(new_head, std::memory_order_relaxed);
    ctx_.persist(head_, sizeof(PaddedPtr));

    // Complete PUSH_COMPL tags (Figure-6 analogue): a prepared push took
    // effect iff its node entered the chain — still reachable, or already
    // claimed by a popper.
    for (std::size_t i = 0; i < max_threads_; ++i) {
      const TaggedWord xw = x_[i].word.load(std::memory_order_relaxed);
      if (!has_tag(xw, kPushPrepTag) || has_tag(xw, kPushComplTag)) continue;
      StackNode* d = untag<StackNode>(xw);
      if (d == nullptr) continue;
      const bool in_chain = all_nodes.contains(d);
      const bool popped_already =
          !in_chain && d->popper.load(std::memory_order_relaxed) != kUnmarked;
      if (in_chain || popped_already) {
        x_[i].word.store(with_tag(xw, kPushComplTag),
                         std::memory_order_relaxed);
        ctx_.persist(&x_[i], sizeof(XSlot));
        metrics::add(metrics::Counter::kRecoveryTagsRepaired);
      }
    }

    rebuild_free_lists(new_head);
  }

  /// Per-thread recovery (no centralized phase; the stale head self-heals
  /// through the helping path in pop_loop).
  void recover_independent(std::size_t tid) {
    const TaggedWord xw = x_[tid].word.load(std::memory_order_acquire);
    if (!has_tag(xw, kPushPrepTag) || has_tag(xw, kPushComplTag)) return;
    StackNode* d = untag<StackNode>(xw);
    if (d == nullptr) return;
    bool took_effect =
        d->popper.load(std::memory_order_relaxed) != kUnmarked;
    for (StackNode* n = head_->ptr.load(std::memory_order_acquire);
         !took_effect && n != nullptr;
         n = n->next.load(std::memory_order_acquire)) {
      took_effect = n == d;
    }
    if (took_effect) {
      x_[tid].word.store(with_tag(xw, kPushComplTag),
                         std::memory_order_release);
      ctx_.persist(&x_[tid], sizeof(XSlot));
    }
  }

  void rebuild_free_lists() {
    ebr_.drain_all_unsafe_without_reclaiming();
    arena_.reset_volatile_state();
    for (auto& d : deferred_) d.clear();
    rebuild_free_lists(head_->ptr.load(std::memory_order_relaxed));
  }

  // ---- introspection --------------------------------------------------------------

  /// Unconsumed elements, top first.  Quiescence required.
  void drain_to(std::vector<Value>& out) const {
    for (StackNode* n = head_->ptr.load(std::memory_order_relaxed);
         n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
      if (n->popper.load(std::memory_order_relaxed) == kUnmarked) {
        out.push_back(n->value);
      }
    }
  }

  TaggedWord x_word(std::size_t tid) const {
    return x_[tid].word.load(std::memory_order_acquire);
  }

  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  struct alignas(kCacheLineSize) PaddedPtr {
    std::atomic<StackNode*> ptr{nullptr};
  };

  void push_loop(std::size_t tid, StackNode* node, bool detectable) {
    Backoff backoff;
    for (;;) {
      StackNode* top = head_->ptr.load(std::memory_order_acquire);
      node->next.store(top, std::memory_order_relaxed);
      ctx_.persist_combined(&node->next, sizeof(node->next));
      ctx_.crash_point("stack:exec-push:pre-link");
      if (head_->ptr.compare_exchange_strong(top, node)) {
        ctx_.crash_point("stack:exec-push:linked-unflushed");
        // The push must be durable before it is acknowledged: persist the
        // head (the chain root) before recording completion.
        ctx_.persist_combined(head_, sizeof(PaddedPtr));
        ctx_.crash_point("stack:exec-push:linked");
        if (detectable) {
          const TaggedWord xw = x_[tid].word.load(std::memory_order_relaxed);
          x_[tid].word.store(with_tag(xw, kPushComplTag),
                             std::memory_order_release);
          ctx_.persist_combined(&x_[tid], sizeof(XSlot));
          ctx_.crash_point("stack:exec-push:completed");
        }
        return;
      }
      metrics::add(metrics::Counter::kCasRetries);  // lost the head CAS
      backoff.pause();
    }
  }

  Value pop_loop(std::size_t tid, bool detectable) {
    Backoff backoff;
    for (;;) {
      StackNode* top = head_->ptr.load(std::memory_order_acquire);
      if (top == nullptr) {
        if (detectable) {
          const TaggedWord xw = x_[tid].word.load(std::memory_order_relaxed);
          x_[tid].word.store(with_tag(xw, kEmptyTag),
                             std::memory_order_release);
          ctx_.persist_combined(&x_[tid], sizeof(XSlot));
          ctx_.crash_point("stack:exec-pop:empty-recorded");
        }
        return kEmpty;
      }
      const std::int64_t claimed =
          top->popper.load(std::memory_order_acquire);
      if (claimed != kUnmarked) {
        // Help the claimant: persist its claim and advance the head.
        metrics::add(metrics::Counter::kCasRetries);
        ctx_.persist_combined(&top->popper, sizeof(top->popper));
        StackNode* next = top->next.load(std::memory_order_acquire);
        if (head_->ptr.compare_exchange_strong(top, next)) {
          retire(tid, top);
        }
        continue;
      }
      if (detectable) {
        // Save the candidate BEFORE claiming (the queue's lines 47–48
        // idiom): a successful claim is then self-detecting.
        x_[tid].word.store(make_tagged(top, kPopPrepTag),
                           std::memory_order_release);
        ctx_.persist_combined(&x_[tid], sizeof(XSlot));
        ctx_.crash_point("stack:exec-pop:candidate-saved");
      }
      const std::int64_t mark =
          detectable ? static_cast<std::int64_t>(tid)
                     : static_cast<std::int64_t>(tid) | kNonDetectableMark;
      std::int64_t unmarked = kUnmarked;
      if (top->popper.compare_exchange_strong(unmarked, mark)) {
        ctx_.crash_point("stack:exec-pop:claimed-unflushed");
        ctx_.persist_combined(&top->popper, sizeof(top->popper));
        ctx_.crash_point("stack:exec-pop:claimed");
        StackNode* expected = top;
        if (head_->ptr.compare_exchange_strong(
                expected, top->next.load(std::memory_order_acquire))) {
          retire(tid, top);
        }
        return top->value;
      }
      metrics::add(metrics::Counter::kCasRetries);  // lost the popper CAS
      backoff.pause();
    }
  }

  void reclaim_failed_prep(std::size_t tid) {
    const TaggedWord xw = x_[tid].word.load(std::memory_order_relaxed);
    if (has_tag(xw, kPushPrepTag) && !has_tag(xw, kPushComplTag)) {
      StackNode* node = untag<StackNode>(xw);
      if (node != nullptr) arena_.release(tid, node);
    }
  }

  StackNode* acquire_node(std::size_t tid) {
    StackNode* node = arena_.try_acquire(tid);
    for (int i = 0; i < 4096 && node == nullptr; ++i) {
      ebr_.try_advance_and_drain(tid);
      std::this_thread::yield();
      node = arena_.try_acquire(tid);
    }
    if (node == nullptr) throw std::bad_alloc();
    return node;
  }

  void retire(std::size_t tid, StackNode* node) {
    ebr_.retire(tid, node, [this, tid](void* p) {
      StackNode* n = static_cast<StackNode*>(p);
      if (pinned_by_x(n)) {
        deferred_[tid].push_back(n);
      } else {
        arena_.release(tid, n);
      }
    });
  }

  bool pinned_by_x(const StackNode* node) const {
    for (std::size_t i = 0; i < max_threads_; ++i) {
      if (untag<const StackNode>(
              x_[i].word.load(std::memory_order_acquire)) == node) {
        return true;
      }
    }
    return false;
  }

  void persist_head_for_reuse(std::size_t tid) {
    ctx_.persist_combined(head_, sizeof(PaddedPtr));
    auto& deferred = deferred_[tid];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < deferred.size(); ++i) {
      if (pinned_by_x(deferred[i])) {
        deferred[kept++] = deferred[i];
      } else {
        arena_.release(tid, deferred[i]);
      }
    }
    deferred.resize(kept);
  }

  void rebuild_free_lists(StackNode* from_head) {
    std::unordered_set<const StackNode*> keep;
    for (StackNode* n = from_head; n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      keep.insert(n);
    }
    for (std::size_t i = 0; i < max_threads_; ++i) {
      if (const StackNode* d = untag<const StackNode>(
              x_[i].word.load(std::memory_order_relaxed))) {
        keep.insert(d);
      }
    }
    arena_.for_each_allocated([&](std::size_t, StackNode* n) {
      if (!keep.contains(n)) arena_.release_to_owner(n);
    });
  }

  Ctx& ctx_;
  pmem::NodeArena<StackNode> arena_;
  ebr::EpochManager ebr_;
  std::size_t max_threads_;
  PaddedPtr* head_ = nullptr;
  XSlot* x_ = nullptr;
  std::vector<std::vector<StackNode*>> deferred_;
};

}  // namespace dssq::queues
