// The DSS queue — Li & Golab, DISC'21, Section 3.
//
// A lock-free, strictly-linearizable implementation of D⟨queue⟩ for the
// asynchronous shared-memory model with persistent memory, volatile cache
// and system-wide crash failures.  Based on the Michael–Scott queue and
// Friedman et al.'s durable queue; detectability state lives in a
// per-thread array X of tagged node pointers:
//
//   prep-enqueue  (Fig. 3): allocate+persist the node, X[t] = node|ENQ_PREP.
//   exec-enqueue  (Fig. 3): MS-queue insert with flushes; after the link
//                 CAS persists, X[t] |= ENQ_COMPL (lines 13–14) — the
//                 completion record resolve will consult.
//   prep-dequeue  (Fig. 4): X[t] = null|DEQ_PREP.
//   exec-dequeue  (Fig. 4): on the empty path X[t] |= EMPTY (lines 41–42);
//                 on the non-empty path X[t] = pred|DEQ_PREP is persisted
//                 *before* the deq_tid CAS (lines 47–48), so a successful
//                 mark is already detectable: resolve re-derives the
//                 outcome from pred->next->deq_tid.
//   resolve       (Figs. 3–4): the pure detection function; idempotent,
//                 callable any number of times.
//   recovery      (Fig. 6): centralized post-crash pass that repairs
//                 head/tail, completes ENQ_COMPL tags for enqueues whose
//                 link persisted but whose completion record did not, and
//                 (our extension, as the paper prescribes) rebuilds the
//                 free lists without leaking nodes.
//   recover_independent (Section 3.3): the variant with *no auxiliary
//                 state* — each thread repairs only its own X entry by
//                 directly testing whether its prepared enqueue took
//                 effect; no centralized phase is required because the
//                 MS-queue helping paths self-heal stale head/tail.
//
// Non-detectable enqueue/dequeue are the same code paths minus every X
// access (and dequeue marks nodes with tid|kNonDetectableMark so resolve
// cannot confuse them with the caller's detectable dequeue).
//
// Memory-safety additions beyond the paper's pseudocode (both are
// load-bearing for crash-recoverability and documented in DESIGN.md):
//   * persist-before-reuse: a dequeued node may be handed back to an
//     allocation pool only after the persistent head pointer has advanced
//     past it (one head persist per reclamation batch), so the recovery
//     walk from the persisted head never crosses recycled memory;
//   * X-pinning: a node still referenced by any X entry — directly (a
//     prepared/completed enqueue's node, a dequeue's predecessor) or as
//     the predecessor's successor (the node resolve-dequeue would read) —
//     is deferred rather than reused, so resolve never dereferences
//     recycled nodes.
#pragma once

#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <unordered_set>
#include <thread>
#include <vector>

#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "common/spin.hpp"
#include "common/tagged_ptr.hpp"
#include "ebr/ebr.hpp"
#include "pmem/context.hpp"
#include "pmem/node_arena.hpp"
#include "queues/types.hpp"

namespace dssq::queues {

/// Memory-safety policy for the DSS queue.  The default enables both
/// hardening rules; DssUnsafeReusePolicy exists ONLY for the ablation
/// bench that quantifies their cost (a queue built with it is not
/// crash-safe against the node-reuse hazards described above).
struct DssHardenedPolicy {
  static constexpr bool kPinXOnReclaim = true;
  static constexpr bool kPersistHeadBeforeReuse = true;
};
struct DssUnsafeReusePolicy {
  static constexpr bool kPinXOnReclaim = false;
  static constexpr bool kPersistHeadBeforeReuse = false;
};

template <class Ctx, class Policy = DssHardenedPolicy>
class DssQueue {
 public:
  DssQueue(Ctx& ctx, std::size_t max_threads, std::size_t nodes_per_thread)
      : ctx_(ctx),
        arena_(ctx, max_threads, nodes_per_thread),
        ebr_(max_threads),
        max_threads_(max_threads),
        deferred_(max_threads) {
    head_ = pmem::alloc_object<PaddedPtr>(ctx_);
    tail_ = pmem::alloc_object<PaddedPtr>(ctx_);
    x_ = pmem::alloc_array<XSlot>(ctx_, max_threads);
    Node* sentinel = pmem::alloc_object<Node>(ctx_);
    ctx_.persist(sentinel, sizeof(Node));
    head_->ptr.store(sentinel, std::memory_order_relaxed);
    tail_->ptr.store(sentinel, std::memory_order_relaxed);
    ctx_.persist(head_, sizeof(PaddedPtr));
    ctx_.persist(tail_, sizeof(PaddedPtr));
    ctx_.persist(x_, sizeof(XSlot) * max_threads);
    ebr_.set_pre_reclaim_hook(
        [this](std::size_t t) { persist_head_for_reuse(t); });
  }

  /// Attach to a queue that already lives in `ctx`'s recovered persistent
  /// heap (same geometry as the crashed process — callers persist it in the
  /// heap's root block).  Replays the normal constructor's allocation
  /// sequence positionally, so head_/tail_/x_/sentinel/slabs resolve to the
  /// crashed process's addresses, but performs NO initialization: the
  /// persisted state is the whole point.  The caller must run recover()
  /// (or recover_independent() per thread) before using the queue.
  DssQueue(pmem::attach_t, Ctx& ctx, std::size_t max_threads,
           std::size_t nodes_per_thread)
      : ctx_(ctx),
        arena_(pmem::attach, ctx, max_threads, nodes_per_thread),
        ebr_(max_threads),
        max_threads_(max_threads),
        deferred_(max_threads) {
    head_ = static_cast<PaddedPtr*>(
        ctx_.raw_alloc(sizeof(PaddedPtr), alignof(PaddedPtr)));
    tail_ = static_cast<PaddedPtr*>(
        ctx_.raw_alloc(sizeof(PaddedPtr), alignof(PaddedPtr)));
    x_ = static_cast<XSlot*>(
        ctx_.raw_alloc(sizeof(XSlot) * max_threads, alignof(XSlot)));
    // The sentinel occupies the next slot of the sequence; it is reachable
    // from the recovered head_, so only the cursor bump matters here.
    (void)ctx_.raw_alloc(sizeof(Node), alignof(Node));
    if (head_->ptr.load(std::memory_order_relaxed) == nullptr) {
      // A never-initialized queue (or a geometry mismatch) replays to a
      // null head; refuse rather than walk garbage in recover().
      throw std::runtime_error(
          "DssQueue: attach found no initialized queue at the replayed "
          "addresses (wrong geometry or heap never held this queue?)");
    }
    ebr_.set_pre_reclaim_hook(
        [this](std::size_t t) { persist_head_for_reuse(t); });
  }

  /// Adopt a queue by ROOT DESCRIPTOR (multi-process attach): every
  /// persistent region is taken by the raw address the creator recorded in
  /// `root` — no allocation, no replay, so any number of processes can
  /// adopt concurrently while the creator keeps serving.  The instance is
  /// in shared-serving mode from birth (see make_root).  The caller must
  /// hold a lease on every slot it drives (pmem/slot_lease.hpp).
  DssQueue(pmem::adopt_t, Ctx& ctx, const QueueRoot& root)
      : ctx_(ctx),
        arena_(pmem::adopt,
               reinterpret_cast<std::byte*>(checked_root(root).slab_addr),
               reinterpret_cast<pmem::SlotCursor*>(root.cursors_addr),
               root.max_threads, root.nodes_per_thread),
        ebr_(root.max_threads),
        max_threads_(root.max_threads),
        deferred_(root.max_threads),
        shared_serving_(true) {
    head_ = reinterpret_cast<PaddedPtr*>(root.head_addr);
    tail_ = reinterpret_cast<PaddedPtr*>(root.tail_addr);
    x_ = reinterpret_cast<XSlot*>(root.x_addr);
    if (head_->ptr.load(std::memory_order_acquire) == nullptr) {
      throw std::runtime_error(
          "DssQueue: root descriptor points at an uninitialized queue");
    }
    ebr_.set_pre_reclaim_hook(
        [this](std::size_t t) { persist_head_for_reuse(t); });
  }

  /// Build and persist a root descriptor so OTHER processes can adopt this
  /// queue, and switch THIS instance into shared-serving mode: fresh nodes
  /// are drawn through durable per-slot cursors (a concurrent attacher
  /// cannot replay our allocation cursor), and dequeued nodes are deferred
  /// instead of reused (EBR grace periods are per-process — no epoch here
  /// can prove a FOREIGN process holds no reference).  Call once; publish
  /// the result in the heap's directory.
  QueueRoot* make_root() {
    auto* cursors = pmem::alloc_array<pmem::SlotCursor>(ctx_, max_threads_);
    arena_.install_cursors(ctx_, cursors);
    QueueRoot* r = pmem::alloc_object<QueueRoot>(ctx_);
    r->magic = QueueRoot::kMagic;
    r->kind = QueueRoot::kKindSingle;
    r->max_threads = max_threads_;
    r->nodes_per_thread = arena_.capacity_per_thread();
    r->x_addr = reinterpret_cast<std::uintptr_t>(x_);
    r->slab_addr = reinterpret_cast<std::uintptr_t>(arena_.slab());
    r->cursors_addr = reinterpret_cast<std::uintptr_t>(cursors);
    r->head_addr = reinterpret_cast<std::uintptr_t>(head_);
    r->tail_addr = reinterpret_cast<std::uintptr_t>(tail_);
    ctx_.persist(r, sizeof(QueueRoot));
    shared_serving_ = true;
    return r;
  }

  // ---- detectable operations (Figures 3 and 4) --------------------------

  /// prep-enqueue(val): create and persist the node, announce it in X.
  void prep_enqueue(std::size_t tid, Value val) {
    trace::OpScope scope(trace::Op::kEnqueue, trace::Phase::kPrep);
    reclaim_failed_prep(tid);
    Node* node = acquire_node(tid);  // line 1
    node->next.store(nullptr, std::memory_order_relaxed);
    node->deq_tid.store(kUnmarked, std::memory_order_relaxed);
    node->value = val;
    ctx_.persist_combined(node, sizeof(Node));  // line 2
    ctx_.crash_point("dss:prep-enq:node-persisted");
    x_[tid].word.store(make_tagged(node, kEnqPrepTag),
                       std::memory_order_release);  // line 3
    ctx_.persist_combined(&x_[tid], sizeof(XSlot));          // line 4
    ctx_.crash_point("dss:prep-enq:announced");
  }

  /// exec-enqueue(): apply the prepared enqueue detectably.
  void exec_enqueue(std::size_t tid) {
    trace::OpScope scope(trace::Op::kEnqueue, trace::Phase::kExec);
    const TaggedWord xw = x_[tid].word.load(std::memory_order_acquire);
    assert(has_tag(xw, kEnqPrepTag) &&
           "exec-enqueue without a prepared enqueue (Axiom 2 precondition)");
    if (has_tag(xw, kEnqComplTag)) return;  // R[t] ≠ ⊥: already took effect
    Node* node = untag<Node>(xw);  // line 5
    ebr::EpochGuard guard(ebr_, tid);
    enqueue_loop(tid, node, /*detectable=*/true);
  }

  /// prep-dequeue(): announce the intent to dequeue.
  void prep_dequeue(std::size_t tid) {
    trace::OpScope scope(trace::Op::kDequeue, trace::Phase::kPrep);
    x_[tid].word.store(kDeqPrepTag, std::memory_order_release);  // line 32
    ctx_.persist_combined(&x_[tid], sizeof(XSlot));                       // line 33
    ctx_.crash_point("dss:prep-deq:announced");
  }

  /// exec-dequeue(): apply the prepared dequeue detectably.
  Value exec_dequeue(std::size_t tid) {
    trace::OpScope scope(trace::Op::kDequeue, trace::Phase::kExec);
    assert(has_tag(x_[tid].word.load(std::memory_order_relaxed),
                   kDeqPrepTag) &&
           "exec-dequeue without a prepared dequeue (Axiom 2 precondition)");
    ebr::EpochGuard guard(ebr_, tid);
    return dequeue_loop(tid, /*detectable=*/true);
  }

  /// resolve (Figure 3, lines 20–27): the status of the most recently
  /// prepared operation.  Total and idempotent.
  Resolved resolve(std::size_t tid) const {
    trace::OpScope scope(trace::Op::kNone, trace::Phase::kResolve);
    const TaggedWord xw = x_[tid].word.load(std::memory_order_acquire);
    if (has_tag(xw, kEnqPrepTag)) {        // line 20
      return resolve_enqueue(xw);          // lines 21–22
    }
    if (has_tag(xw, kDeqPrepTag)) {        // line 23
      return resolve_dequeue(tid, xw);     // lines 24–25
    }
    return Resolved::none();               // line 27: (⊥, ⊥)
  }

  // ---- non-detectable operations (Axiom 4) -------------------------------

  /// enqueue = prep-enqueue; exec-enqueue with every X access omitted.
  void enqueue(std::size_t tid, Value val) {
    trace::OpScope scope(trace::Op::kEnqueue);
    Node* node = acquire_node(tid);
    node->next.store(nullptr, std::memory_order_relaxed);
    node->deq_tid.store(kUnmarked, std::memory_order_relaxed);
    node->value = val;
    ctx_.persist_combined(node, sizeof(Node));
    ebr::EpochGuard guard(ebr_, tid);
    enqueue_loop(tid, node, /*detectable=*/false);
  }

  /// dequeue with every X access omitted; marks with tid|kNonDetectableMark.
  Value dequeue(std::size_t tid) {
    trace::OpScope scope(trace::Op::kDequeue);
    ebr::EpochGuard guard(ebr_, tid);
    return dequeue_loop(tid, /*detectable=*/false);
  }

  // ---- recovery ----------------------------------------------------------

  /// Centralized recovery (Figure 6 + free-list rebuild).  Precondition:
  /// quiescence — run by the main thread before application threads revive.
  /// What the pass did is recorded in last_recovery() and mirrored into the
  /// global recovery counters.
  void recover() {
    last_recovery_ = metrics::RecoveryTrace{};
    ebr_.drain_all_unsafe_without_reclaiming();
    arena_.reset_volatile_state();
    for (auto& d : deferred_) d.clear();

    // Line 64: AllNodes := nodes reachable from head.
    Node* old_head = head_->ptr.load(std::memory_order_relaxed);
    std::unordered_set<Node*> all_nodes;
    Node* last = old_head;
    all_nodes.insert(old_head);
    while (Node* next = last->next.load(std::memory_order_relaxed)) {
      last = next;
      all_nodes.insert(last);
    }
    last_recovery_.nodes_scanned = all_nodes.size();
    trace::recovery_step(trace::RecoveryStep::kScan,
                         last_recovery_.nodes_scanned);
    // Lines 65–66: tail := last reachable node.
    last_recovery_.tail_moved =
        tail_->ptr.load(std::memory_order_relaxed) != last;
    tail_->ptr.store(last, std::memory_order_relaxed);
    ctx_.persist(tail_, sizeof(PaddedPtr));
    trace::recovery_step(trace::RecoveryStep::kTailRepair,
                         last_recovery_.tail_moved ? 1 : 0);
    // Lines 67–69: head := last marked node reachable from oldHead.
    Node* new_head = old_head;
    for (Node* n = old_head->next.load(std::memory_order_relaxed);
         n != nullptr && n->deq_tid.load(std::memory_order_relaxed) !=
                             kUnmarked;
         n = n->next.load(std::memory_order_relaxed)) {
      new_head = n;
    }
    last_recovery_.head_moved = new_head != old_head;
    head_->ptr.store(new_head, std::memory_order_relaxed);
    ctx_.persist(head_, sizeof(PaddedPtr));
    trace::recovery_step(trace::RecoveryStep::kHeadRepair,
                         last_recovery_.head_moved ? 1 : 0);

    // Lines 70–76: complete ENQ_COMPL for enqueues that took effect.
    for (std::size_t i = 0; i < max_threads_; ++i) {
      const TaggedWord xw = x_[i].word.load(std::memory_order_relaxed);
      if (!has_tag(xw, kEnqPrepTag) || has_tag(xw, kEnqComplTag)) continue;
      Node* d = untag<Node>(xw);
      if (d == nullptr) continue;
      const bool in_list = all_nodes.contains(d);             // lines 71–74
      const bool dequeued_already =                           // lines 75–76
          !in_list &&
          d->deq_tid.load(std::memory_order_relaxed) != kUnmarked;
      if (in_list || dequeued_already) {
        x_[i].word.store(with_tag(xw, kEnqComplTag),
                         std::memory_order_relaxed);
        ctx_.persist(&x_[i], sizeof(XSlot));
        ++last_recovery_.tags_repaired;
      }
    }

    trace::recovery_step(trace::RecoveryStep::kTagRepair,
                         last_recovery_.tags_repaired);
    last_recovery_.nodes_reclaimed = rebuild_free_lists(new_head);
    trace::recovery_step(trace::RecoveryStep::kReclaim,
                         last_recovery_.nodes_reclaimed);
    metrics::add(metrics::Counter::kRecoveryNodesScanned,
                 last_recovery_.nodes_scanned);
    metrics::add(metrics::Counter::kRecoveryTagsRepaired,
                 last_recovery_.tags_repaired);
  }

  /// Thread-local recovery (Section 3.3's "recover independently" variant,
  /// which "eliminates the last trace of auxiliary state"): repair only
  /// this thread's X entry.  Stale head/tail need no repair — the helping
  /// paths of exec-enqueue/exec-dequeue self-heal them during normal
  /// operation.  Does not reclaim memory; call rebuild_free_lists() from
  /// any single thread at a quiescent moment if reuse is needed.
  void recover_independent(std::size_t tid) {
    const TaggedWord xw = x_[tid].word.load(std::memory_order_acquire);
    if (!has_tag(xw, kEnqPrepTag) || has_tag(xw, kEnqComplTag)) return;
    Node* d = untag<Node>(xw);
    if (d == nullptr) return;
    // The enqueue took effect iff the node entered the list: it is marked
    // (already dequeued) or still reachable from head.
    bool took_effect =
        d->deq_tid.load(std::memory_order_relaxed) != kUnmarked;
    if (!took_effect) {
      for (Node* n = head_->ptr.load(std::memory_order_acquire); n != nullptr;
           n = n->next.load(std::memory_order_acquire)) {
        metrics::add(metrics::Counter::kRecoveryNodesScanned);
        if (n == d) {
          took_effect = true;
          break;
        }
      }
    }
    if (took_effect) {
      x_[tid].word.store(with_tag(xw, kEnqComplTag),
                         std::memory_order_release);
      ctx_.persist(&x_[tid], sizeof(XSlot));
      metrics::add(metrics::Counter::kRecoveryTagsRepaired);
    }
  }

  /// Rebuild the per-thread free lists after a crash: every allocated node
  /// that is neither reachable from head nor pinned by an X entry returns
  /// to its owner's pool.  Precondition: quiescence.
  void rebuild_free_lists() {
    ebr_.drain_all_unsafe_without_reclaiming();
    arena_.reset_volatile_state();
    for (auto& d : deferred_) d.clear();
    rebuild_free_lists(head_->ptr.load(std::memory_order_relaxed));
  }

  // ---- introspection ------------------------------------------------------

  /// Raw X entry (white-box tests).
  TaggedWord x_word(std::size_t tid) const {
    return x_[tid].word.load(std::memory_order_acquire);
  }

  /// What the most recent recover() call did (zeroed at its start).
  /// Available in every build — recovery is off the hot path.
  const metrics::RecoveryTrace& last_recovery() const noexcept {
    return last_recovery_;
  }

  /// Remaining (unconsumed) elements in FIFO order (quiescence required).
  void drain_to(std::vector<Value>& out) const {
    Node* n =
        head_->ptr.load(std::memory_order_relaxed)->next.load(
            std::memory_order_relaxed);
    while (n != nullptr) {
      if (n->deq_tid.load(std::memory_order_relaxed) == kUnmarked) {
        out.push_back(n->value);
      }
      n = n->next.load(std::memory_order_relaxed);
    }
  }

  std::size_t max_threads() const noexcept { return max_threads_; }
  std::size_t free_count(std::size_t tid) const {
    return arena_.free_count(tid);
  }

 private:
  struct alignas(kCacheLineSize) PaddedPtr {
    std::atomic<Node*> ptr{nullptr};
  };

  // ---- exec-enqueue body (Figure 3, lines 6–19) ---------------------------
  void enqueue_loop(std::size_t tid, Node* node, bool detectable) {
    Backoff backoff;
    for (;;) {  // line 6
      Node* last = tail_->ptr.load(std::memory_order_acquire);   // line 7
      Node* next = last->next.load(std::memory_order_acquire);   // line 8
      if (last != tail_->ptr.load(std::memory_order_acquire)) {  // line 9
        metrics::add(metrics::Counter::kCasRetries);
        trace::cas_retry();
        continue;
      }
      if (next == nullptr) {  // line 10: at tail
        ctx_.crash_point("dss:exec-enq:pre-link");
        if (last->next.compare_exchange_strong(next, node)) {  // line 11
          ctx_.crash_point("dss:exec-enq:linked-unflushed");
          ctx_.persist_combined(&last->next, sizeof(last->next));  // line 12
          ctx_.crash_point("dss:exec-enq:linked");
          if (detectable) {
            // Lines 13–14: record that the enqueue took effect.
            const TaggedWord xw =
                x_[tid].word.load(std::memory_order_relaxed);
            x_[tid].word.store(with_tag(xw, kEnqComplTag),
                               std::memory_order_release);
            ctx_.persist_combined(&x_[tid], sizeof(XSlot));
            ctx_.crash_point("dss:exec-enq:completed");
          }
          tail_->ptr.compare_exchange_strong(last, node);  // line 15
          return;                                          // line 16
        }
        metrics::add(metrics::Counter::kCasRetries);  // lost the line-11 CAS
        trace::cas_retry();
        backoff.pause();
      } else {  // lines 17–19: help another enqueuing thread
        metrics::add(metrics::Counter::kCasRetries);
        trace::cas_retry();
        ctx_.persist_combined(&last->next, sizeof(last->next));  // line 18
        tail_->ptr.compare_exchange_strong(last, next);  // line 19
      }
    }
  }

  // ---- exec-dequeue body (Figure 4, lines 34–55) --------------------------
  Value dequeue_loop(std::size_t tid, bool detectable) {
    Backoff backoff;
    for (;;) {                                                    // line 34
      Node* first = head_->ptr.load(std::memory_order_acquire);   // line 35
      Node* last = tail_->ptr.load(std::memory_order_acquire);    // line 36
      Node* next = first->next.load(std::memory_order_acquire);   // line 37
      if (first != head_->ptr.load(std::memory_order_acquire)) {  // line 38
        metrics::add(metrics::Counter::kCasRetries);
        trace::cas_retry();
        continue;
      }
      if (first == last) {   // line 39: empty queue?
        if (next == nullptr) {  // line 40: nothing newly appended
          if (detectable) {
            // Lines 41–42: record that the dequeue saw an empty queue.
            const TaggedWord xw =
                x_[tid].word.load(std::memory_order_relaxed);
            x_[tid].word.store(with_tag(xw, kEmptyTag),
                               std::memory_order_release);
            ctx_.persist_combined(&x_[tid], sizeof(XSlot));
            ctx_.crash_point("dss:exec-deq:empty-recorded");
          }
          return kEmpty;  // line 43
        }
        metrics::add(metrics::Counter::kCasRetries);  // stale tail
        trace::cas_retry();
        ctx_.persist_combined(&last->next, sizeof(last->next));   // line 44
        tail_->ptr.compare_exchange_strong(last, next);  // line 45
      } else {  // line 46: non-empty queue
        if (detectable) {
          // Lines 47–48: save the predecessor of the node to be dequeued
          // *before* attempting to claim it — this makes a successful mark
          // self-detecting.
          x_[tid].word.store(make_tagged(first, kDeqPrepTag),
                             std::memory_order_release);
          ctx_.persist_combined(&x_[tid], sizeof(XSlot));
          ctx_.crash_point("dss:exec-deq:pred-saved");
        }
        const std::int64_t mark =
            detectable ? static_cast<std::int64_t>(tid)
                       : static_cast<std::int64_t>(tid) | kNonDetectableMark;
        std::int64_t unmarked = kUnmarked;
        if (next->deq_tid.compare_exchange_strong(unmarked, mark)) {  // l. 49
          ctx_.crash_point("dss:exec-deq:marked-unflushed");
          ctx_.persist_combined(&next->deq_tid, sizeof(next->deq_tid));  // line 50
          ctx_.crash_point("dss:exec-deq:marked");
          if (head_->ptr.compare_exchange_strong(first, next)) {  // line 51
            retire(tid, first);
          }
          return next->value;  // line 52
        }
        metrics::add(metrics::Counter::kCasRetries);  // lost the line-49 CAS
        trace::cas_retry();
        if (head_->ptr.load(std::memory_order_acquire) == first) {  // l. 53
          // Lines 54–55: help the winning dequeuer.
          ctx_.persist_combined(&next->deq_tid, sizeof(next->deq_tid));
          if (head_->ptr.compare_exchange_strong(first, next)) {
            retire(tid, first);
          }
        }
        backoff.pause();
      }
    }
  }

  // ---- resolve helpers ----------------------------------------------------

  /// resolve-enqueue (Figure 3, lines 28–31).
  Resolved resolve_enqueue(TaggedWord xw) const {
    const Value arg = untag<Node>(xw)->value;
    if (has_tag(xw, kEnqComplTag)) {
      return Resolved::enqueue(arg, kOk);  // line 29: took effect
    }
    return Resolved::enqueue(arg);  // line 31: prepared, no effect — ⊥
  }

  /// resolve-dequeue (Figure 4, lines 56–63).
  Resolved resolve_dequeue(std::size_t tid, TaggedWord xw) const {
    // Line 58: EMPTY is a membership test, not an exact word match — a
    // failed non-empty attempt leaves its saved predecessor in the word,
    // and the exec loop then ORs EMPTY onto it (lines 41–42).  An empty
    // outcome after such an attempt must still resolve to kEmpty, not
    // fall through to the stale predecessor.
    if (has_tag(xw, kEmptyTag)) {
      return Resolved::dequeue(kEmpty);  // line 59
    }
    if (without_tag(xw, kDeqPrepTag) == 0) {  // line 56: prepared, no effect
      return Resolved::dequeue();             // line 57: ⊥
    }
    Node* pred = untag<Node>(xw);
    Node* target =
        pred != nullptr ? pred->next.load(std::memory_order_acquire)
                        : nullptr;
    if (target != nullptr &&
        target->deq_tid.load(std::memory_order_acquire) ==
            static_cast<std::int64_t>(tid)) {  // line 60
      return Resolved::dequeue(target->value);  // line 61
    }
    // Line 62: crashed between saving the predecessor (line 47) and a
    // successful mark (line 49) — the successor may be unmarked, marked by
    // another thread, or marked by this thread's *non-detectable* dequeue.
    return Resolved::dequeue();  // line 63: ⊥
  }

  // ---- memory management ---------------------------------------------------

  /// On the next prep-enqueue, a previous prepared-but-never-effective
  /// enqueue's node (ENQ_PREP without ENQ_COMPL) is provably unlinked and
  /// unmarked, so it can be reused instead of leaked (the paper's
  /// "prevent memory leaks, such as due to a crash in prep-enqueue").
  void reclaim_failed_prep(std::size_t tid) {
    const TaggedWord xw = x_[tid].word.load(std::memory_order_relaxed);
    if (has_tag(xw, kEnqPrepTag) && !has_tag(xw, kEnqComplTag)) {
      Node* node = untag<Node>(xw);
      if (node != nullptr) arena_.release(tid, node);
    }
  }

  /// Acquire a node, pumping the epoch when the pool is dry (retired nodes
  /// may be waiting out their grace period in limbo).  Must run outside any
  /// epoch region — a held reservation would cap the advance at one epoch,
  /// not the two a grace period needs.  Both call sites (prep-enqueue and
  /// the non-detectable enqueue) acquire before entering their region.
  Node* acquire_node(std::size_t tid) {
    Node* node = arena_.try_acquire(ctx_, tid);
    for (int i = 0; i < 4096 && node == nullptr; ++i) {
      ebr_.try_advance_and_drain(tid);
      std::this_thread::yield();  // let region-holders run (slow path only)
      node = arena_.try_acquire(ctx_, tid);
    }
    if (node == nullptr) throw std::bad_alloc();
    return node;
  }

  void retire(std::size_t tid, Node* node) {
    ebr_.retire(tid, node, [this, tid](void* p) {
      reclaim(tid, static_cast<Node*>(p));
    });
  }

  /// EBR reclaim callback: reuse the node unless an X entry still pins it.
  /// In shared-serving mode EVERY node is deferred: this process's EBR
  /// grace period says nothing about readers in other processes, so reuse
  /// waits for a quiescent recover()/rebuild_free_lists().
  void reclaim(std::size_t tid, Node* node) {
    if (shared_serving_) {
      deferred_[tid].push_back(node);
      return;
    }
    if constexpr (Policy::kPinXOnReclaim) {
      if (pinned_by_x(node)) {
        deferred_[tid].push_back(node);
        return;
      }
    }
    arena_.release(tid, node);
  }

  /// True iff some X entry references `node` directly, or as the successor
  /// of a saved dequeue predecessor (the node resolve-dequeue would read).
  bool pinned_by_x(const Node* node) const {
    for (std::size_t i = 0; i < max_threads_; ++i) {
      const TaggedWord xw = x_[i].word.load(std::memory_order_acquire);
      const Node* d = untag<const Node>(xw);
      if (d == node) return true;
      if (has_tag(xw, kDeqPrepTag) && d != nullptr &&
          d->next.load(std::memory_order_acquire) == node) {
        return true;
      }
    }
    return false;
  }

  /// Pre-reclaim hook: runs once per EBR drain batch, before any node of
  /// the batch becomes reusable.  Persisting head here maintains the
  /// persist-before-reuse invariant (recovery's walk from the persisted
  /// head never reaches a recycled node) at a cost amortized over the
  /// whole batch.  Also retries previously deferred (X-pinned) nodes.
  void persist_head_for_reuse(std::size_t tid) {
    if constexpr (Policy::kPersistHeadBeforeReuse) {
      ctx_.persist_combined(head_, sizeof(PaddedPtr));
    }
    auto& deferred = deferred_[tid];
    if (shared_serving_) return;  // deferred nodes wait for quiescence
    if (!deferred.empty()) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < deferred.size(); ++i) {
        if (pinned_by_x(deferred[i])) {
          deferred[kept++] = deferred[i];
        } else {
          arena_.release(tid, deferred[i]);
        }
      }
      deferred.resize(kept);
    }
  }

  std::size_t rebuild_free_lists(Node* from_head) {
    std::unordered_set<const Node*> keep;
    for (Node* n = from_head; n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      keep.insert(n);
    }
    for (std::size_t i = 0; i < max_threads_; ++i) {
      const TaggedWord xw = x_[i].word.load(std::memory_order_relaxed);
      const Node* d = untag<const Node>(xw);
      if (d == nullptr) continue;
      keep.insert(d);
      if (has_tag(xw, kDeqPrepTag)) {
        if (const Node* succ = d->next.load(std::memory_order_relaxed)) {
          keep.insert(succ);
        }
      }
    }
    std::size_t reclaimed = 0;
    arena_.for_each_allocated([&](std::size_t, Node* n) {
      if (!keep.contains(n)) {
        arena_.release_to_owner(n);
        ++reclaimed;
      }
    });
    return reclaimed;
  }

  /// Validated pass-through for the adopt constructor's member-init list
  /// (the root must be checked BEFORE the arena dereferences its fields).
  static const QueueRoot& checked_root(const QueueRoot& r) {
    return validate_queue_root(r, QueueRoot::kKindSingle, "DssQueue");
  }

  Ctx& ctx_;
  pmem::NodeArena<Node> arena_;
  ebr::EpochManager ebr_;
  std::size_t max_threads_;
  PaddedPtr* head_ = nullptr;
  PaddedPtr* tail_ = nullptr;
  XSlot* x_ = nullptr;
  std::vector<std::vector<Node*>> deferred_;
  bool shared_serving_ = false;  // multi-process: no node reuse in-flight
  metrics::RecoveryTrace last_recovery_;
};

}  // namespace dssq::queues
