// NRL-style recovery on top of the DSS queue.
//
// The paper contrasts the two recovery semantics (Section 1, point 2 of
// the comparison): "In DSS and NRL+, the recovery procedure allows a
// thread to determine whether or not an operation it intended to invoke
// prior to a failure took effect... In NRL, the purpose of the recovery
// procedure is to ENSURE that an invoked operation took effect, and
// determine its response."
//
// This adapter shows that the NRL discipline is an application-level
// policy over the DSS interface: `recover_and_complete` resolves the
// interrupted operation and, if it did not take effect, re-executes it to
// completion — returning the response either way.  Exactly-once semantics
// come from resolve; completion comes from the retry.  Nothing in the
// queue changes, which is the point: detectability is the primitive,
// ensure-completion is derived.
#pragma once

#include <cstddef>

#include "queues/dss_queue.hpp"
#include "queues/types.hpp"

namespace dssq::queues {

template <class Ctx>
class NrlRecoveryAdapter {
  // The ensure-completion policy is derived purely from the detectable
  // interface; the concept is exactly the contract this adapter needs.
  static_assert(dss::Detectable<DssQueue<Ctx>>);

 public:
  explicit NrlRecoveryAdapter(DssQueue<Ctx>& queue) : queue_(&queue) {}

  /// NRL-flavoured recovery for thread `tid`: whatever operation was
  /// prepared before the crash is driven to completion, and its response
  /// returned.  Precondition: the queue has been recovered (centralized
  /// or independent) and thread `tid` has been revived under its old ID.
  ///
  /// Returns the operation's response:
  ///   * enqueue  -> kOk,
  ///   * dequeue  -> the dequeued value or kEmpty,
  /// or kNothingPending when no operation was prepared (A[t] = ⊥; NRL has
  /// no counterpart of this case — its recovery function is only invoked
  /// for an operation that was pending).
  static constexpr Value kNothingPending = INT64_MIN + 3;

  Value recover_and_complete(std::size_t tid) {
    const Resolved r = queue_->resolve(tid);
    switch (r.op) {
      case Resolved::Op::kNone:
        return kNothingPending;
      case Resolved::Op::kEnqueue:
        if (r.took_effect()) return *r.response;  // already applied
        // Did not take effect: complete it now.  The prepared node is
        // still announced in X, so exec-enqueue resumes the same
        // operation instance (same argument, exactly once).
        queue_->exec_enqueue(tid);
        return kOk;
      case Resolved::Op::kDequeue:
        if (r.took_effect()) return *r.response;
        queue_->prep_dequeue(tid);  // re-arm and complete
        return queue_->exec_dequeue(tid);
    }
    return kNothingPending;  // unreachable
  }

 private:
  DssQueue<Ctx>* queue_;
};

}  // namespace dssq::queues
