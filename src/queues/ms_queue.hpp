// The Michael & Scott lock-free queue (PODC'96) — the volatile baseline.
//
// This is the classic algorithm the DSS queue builds on, and the fastest
// curve of the paper's Figure 5a ("an implementation of the classic MS
// queue obtained from the non-detectable DSS queue by removing flushes").
// It is expressed over the same Context/NodeArena/EBR substrate as the
// persistent queues so the comparison isolates exactly the persistence
// cost; with Ctx = PerfContext<NullBackend> all flush calls are no-ops and
// inline away.
#pragma once

#include <cassert>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/spin.hpp"
#include "ebr/ebr.hpp"
#include "pmem/context.hpp"
#include "pmem/node_arena.hpp"
#include "queues/types.hpp"

namespace dssq::queues {

template <class Ctx>
class MsQueue {
 public:
  MsQueue(Ctx& ctx, std::size_t max_threads, std::size_t nodes_per_thread)
      : ctx_(ctx),
        arena_(ctx, max_threads, nodes_per_thread),
        ebr_(max_threads),
        max_threads_(max_threads) {
    head_ = pmem::alloc_object<PaddedPtr>(ctx_);
    tail_ = pmem::alloc_object<PaddedPtr>(ctx_);
    Node* sentinel = pmem::alloc_object<Node>(ctx_);
    head_->ptr.store(sentinel, std::memory_order_relaxed);
    tail_->ptr.store(sentinel, std::memory_order_relaxed);
  }

  void enqueue(std::size_t tid, Value v) {
    // Acquire before entering the epoch region: when the pool is dry the
    // acquire path pumps the global epoch, which only helps while this
    // thread holds no reservation.
    Node* node = acquire_node(tid);
    node->next.store(nullptr, std::memory_order_relaxed);
    node->deq_tid.store(kUnmarked, std::memory_order_relaxed);
    node->value = v;
    ebr::EpochGuard guard(ebr_, tid);
    Backoff backoff;
    for (;;) {
      Node* last = tail_->ptr.load();
      Node* next = last->next.load();
      if (last != tail_->ptr.load()) continue;
      if (next == nullptr) {
        if (last->next.compare_exchange_strong(next, node)) {
          tail_->ptr.compare_exchange_strong(last, node);
          return;
        }
        backoff.pause();
      } else {
        tail_->ptr.compare_exchange_strong(last, next);
      }
    }
  }

  Value dequeue(std::size_t tid) {
    ebr::EpochGuard guard(ebr_, tid);
    Backoff backoff;
    for (;;) {
      Node* first = head_->ptr.load();
      Node* last = tail_->ptr.load();
      Node* next = first->next.load();
      if (first != head_->ptr.load()) continue;
      if (first == last) {
        if (next == nullptr) return kEmpty;
        tail_->ptr.compare_exchange_strong(last, next);
      } else {
        const Value v = next->value;
        if (head_->ptr.compare_exchange_strong(first, next)) {
          retire(tid, first);
          return v;
        }
        backoff.pause();
      }
    }
  }

  /// Drain remaining elements into `out` (single-threaded teardown/tests).
  void drain_to(std::vector<Value>& out) {
    Node* n = head_->ptr.load()->next.load();
    while (n != nullptr) {
      out.push_back(n->value);
      n = n->next.load();
    }
  }

  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  struct alignas(kCacheLineSize) PaddedPtr {
    std::atomic<Node*> ptr{nullptr};
  };

  /// Acquire a node, pumping the epoch when the pool is dry (retired nodes
  /// may be waiting out their grace period in limbo).  Precondition: the
  /// caller is NOT inside an epoch region (a held reservation would cap
  /// the advance at one epoch, not the two a grace period needs).
  Node* acquire_node(std::size_t tid) {
    Node* node = arena_.try_acquire(tid);
    for (int i = 0; i < 4096 && node == nullptr; ++i) {
      ebr_.try_advance_and_drain(tid);
      std::this_thread::yield();  // let region-holders run (slow path only)
      node = arena_.try_acquire(tid);
    }
    if (node == nullptr) throw std::bad_alloc();
    return node;
  }

  void retire(std::size_t tid, Node* node) {
    ebr_.retire(tid, node, [this, tid](void* p) {
      arena_.release(tid, static_cast<Node*>(p));
    });
  }

  Ctx& ctx_;
  pmem::NodeArena<Node> arena_;
  ebr::EpochManager ebr_;
  std::size_t max_threads_;
  PaddedPtr* head_ = nullptr;
  PaddedPtr* tail_ = nullptr;
};

}  // namespace dssq::queues
