// Shared queue-node layout, detectability tags and resolve results.
//
// Every queue in this library (MS, durable, DSS, log, CASWithEffect) links
// cache-line-aligned nodes carrying:
//   next     — successor pointer (the MS-queue linked list);
//   deq_tid  — ID of the thread that dequeued the node's value, or -1;
//              a node with deq_tid != -1 is *marked* (durable queue [20]);
//   value    — the enqueued element.
//
// The DSS queue's per-thread detectability array X stores node pointers
// tagged in the 16 spare high bits (paper, footnote 5):
//   ENQ_PREP  — a detectable enqueue was prepared;
//   ENQ_COMPL — ... and took effect;
//   DEQ_PREP  — a detectable dequeue was prepared;
//   EMPTY     — ... and took effect on an empty queue.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/cacheline.hpp"
#include "common/tagged_ptr.hpp"
#include "dss/detectable.hpp"
#include "dss/specs/queue_spec.hpp"

namespace dssq::dss {

/// Pretty-printer for the queue family's resolve result, found by ADL from
/// dss::Resolved::to_string().  Lives here (not in detectable.hpp) because
/// it renders responses through QueueSpec.
inline std::string resolved_to_string(const Resolved<ResolvedOp, Value>& r) {
  std::string op_s;
  switch (r.op) {
    case ResolvedOp::kNone:
      return "(⊥, ⊥)";
    case ResolvedOp::kEnqueue:
      op_s = "enqueue(" + std::to_string(r.arg) + ")";
      break;
    case ResolvedOp::kDequeue:
      op_s = "dequeue()";
      break;
  }
  std::string r_s = "⊥";
  if (r.response.has_value()) {
    r_s = QueueSpec::resp_to_string(*r.response);
  }
  return "(" + op_s + ", " + r_s + ")";
}

}  // namespace dssq::dss

namespace dssq::queues {

using dss::is_app_value;
using dss::kEmpty;
using dss::kOk;
using dss::Value;

/// deq_tid value of an unmarked node.
inline constexpr std::int64_t kUnmarked = -1;

/// Non-detectable dequeues mark nodes with (tid | kNonDetectableMark) so a
/// later resolve cannot mistake them for the caller's detectable dequeue
/// (Section 3.2: "combines the TID with another special tag").
inline constexpr std::int64_t kNonDetectableMark = std::int64_t{1} << 32;

struct alignas(kCacheLineSize) Node {
  std::atomic<Node*> next{nullptr};
  std::atomic<std::int64_t> deq_tid{kUnmarked};
  Value value{0};
  /// Global enqueue ticket (sharded queues only): stamped by the lane
  /// combiner at link time, strictly increasing along every lane's list,
  /// globally unique across lanes.  0 = never stamped (sentinels, and all
  /// nodes of the single-lane queues, which ignore the field).
  std::atomic<std::uint64_t> seq{0};
};
static_assert(sizeof(Node) == kCacheLineSize,
              "Node must occupy exactly one persistence granule");

// ---- DSS queue tag bits (stored in X[tid], bits 48..63) -------------------
inline constexpr TaggedWord kEnqPrepTag = tag_bit(0);
inline constexpr TaggedWord kEnqComplTag = tag_bit(1);
inline constexpr TaggedWord kDeqPrepTag = tag_bit(2);
inline constexpr TaggedWord kEmptyTag = tag_bit(3);

/// One X entry per thread, padded to its own cache line: the array is
/// "statically allocated and effectively private" (Section 4), and padding
/// keeps one thread's persists from invalidating another's entry.
struct alignas(kCacheLineSize) XSlot {
  std::atomic<TaggedWord> word{0};
};
static_assert(sizeof(XSlot) == kCacheLineSize);

/// One cache-line-padded shared sequencing word.  The sharded queue's
/// global enqueue ticket and per-lane link epochs are per-process
/// volatiles in single-process mode; under multi-process serving they must
/// be words EVERY attached process sees, so make_root() moves them into
/// heap lines of this shape.  Deliberately never persisted: recovery
/// recomputes both from the node lists (volatile semantics, shared
/// visibility).
struct alignas(kCacheLineSize) PaddedSeq {
  std::atomic<std::uint64_t> v{0};
};
static_assert(sizeof(PaddedSeq) == kCacheLineSize);

/// Persistent root descriptor for a queue published in a heap's named
/// directory: everything a foreign process needs to ADOPT the queue's
/// persistent regions by raw address (valid verbatim — every attacher maps
/// the heap at the same fixed base) instead of replaying allocations.
/// Built once by make_root() after the queue's constructor has allocated
/// all regions; immutable afterwards, so a single persist covers it.
struct alignas(kCacheLineSize) QueueRoot {
  static constexpr std::uint64_t kMagic = 0x44535351'524F4F54ULL;  // ROOT
  static constexpr std::uint64_t kKindSingle = 1;   // DssQueue
  static constexpr std::uint64_t kKindSharded = 2;  // ShardedDssQueue

  std::uint64_t magic = 0;
  std::uint64_t kind = 0;
  std::uint64_t max_threads = 0;      // detectability slots n
  std::uint64_t nodes_per_thread = 0; // arena slab slice per slot
  std::uint64_t lanes = 0;            // sharded only; 0 for single
  std::uint64_t x_addr = 0;           // XSlot[max_threads]
  std::uint64_t slab_addr = 0;        // NodeArena slab base
  std::uint64_t cursors_addr = 0;     // SlotCursor[max_threads]
  std::uint64_t head_addr = 0;        // single: PaddedPtr head
  std::uint64_t tail_addr = 0;        // single: PaddedPtr tail
  std::uint64_t anchors_addr = 0;     // sharded: LaneAnchors*[lanes] table
  std::uint64_t ticket_addr = 0;      // sharded: PaddedSeq global ticket
  std::uint64_t epochs_addr = 0;      // sharded: PaddedSeq[lanes] link epochs
  std::uint64_t reserved[3] = {};
};
static_assert(sizeof(QueueRoot) == 2 * kCacheLineSize);

/// Hard cap on lane count (the lane tag field allows 4096; 256 is already
/// far past any sensible sharding of one queue).
inline constexpr std::size_t kMaxLanes = 256;

/// THE validation point for adopting a published QueueRoot — every adopt
/// path (the queues' checked_root pass-throughs, dss::Session::open<Q>)
/// funnels through here so the type-tag/kind, geometry, and region-address
/// checks live in exactly one place.  `who` names the adopter for the
/// error message.  Returns its argument so it composes in member-init
/// lists.
inline const QueueRoot& validate_queue_root(const QueueRoot& r,
                                            std::uint64_t kind,
                                            const char* who) {
  const bool common_ok = r.magic == QueueRoot::kMagic && r.kind == kind &&
                         r.max_threads != 0 && r.nodes_per_thread != 0 &&
                         r.x_addr != 0 && r.slab_addr != 0 &&
                         r.cursors_addr != 0;
  const bool shape_ok =
      kind == QueueRoot::kKindSingle
          ? (r.head_addr != 0 && r.tail_addr != 0)
          : (r.lanes != 0 && r.lanes <= kMaxLanes && r.anchors_addr != 0 &&
             r.ticket_addr != 0 && r.epochs_addr != 0);
  if (!common_ok || !shape_ok) {
    throw std::runtime_error(
        std::string(who) + ": root descriptor is not a valid " +
        (kind == QueueRoot::kKindSingle ? "single-lane" : "sharded") +
        " queue root");
  }
  return r;
}

/// Response of resolve: the paper's (A[p], R[p]) pair specialised to the
/// queue type — an instantiation of the unified dss::Resolved.
/// `op == kNone` encodes A[p] = ⊥ (nothing prepared); `response == nullopt`
/// encodes R[p] = ⊥ (did not take effect).
using Resolved = dss::Resolved<dss::ResolvedOp, Value>;

/// Pre-unification name, kept source-compatible for one release.
using ResolveResult [[deprecated(
    "use queues::Resolved (an alias of dss::Resolved<dss::ResolvedOp, "
    "Value>); queues::ResolveResult will be removed next release")]] =
    Resolved;

}  // namespace dssq::queues
