// The sharded DSS queue — N single-lane sub-queues behind one
// detectability surface, with operation-level (flat) combining per lane.
//
// DssQueue's single head/tail pair is the scalability ceiling visible in
// fig5a at high thread counts: every enqueue contends on one tail cache
// line, every dequeue on one head, and every detectable operation pays its
// own persist barriers against them.  This queue splits the list into N
// lanes (env/ctor knob DSSQ_LANES), each a Michael–Scott sub-list with its
// own head/tail anchors, and restores a single linearizable FIFO across
// lanes with a global enqueue ticket:
//
//   * enqueue ORDER: every link goes through the lane's OpCombiner — the
//     combiner thread reserves a contiguous range of the global ticket
//     clock (one fetch_add per batch), stamps each node's `seq`, chains
//     the batch and links the whole chain with ONE tail CAS, one flush
//     pass and one fence.  Combiner exclusivity per lane makes each lane's
//     list strictly increasing in seq.
//   * dequeue ORDER: a bounded lane scan takes the first unmarked node of
//     each lane and claims the one with the minimum seq (the global FIFO
//     head).  An element the scan missed was linked after the scan read
//     its lane — concurrent with this dequeue, so ordering the dequeue
//     first is a legal linearization (the full argument, including the
//     empty case, is in docs/algorithms.md).
//   * EMPTY: per-lane link epochs (a seqlock bumped odd/even around every
//     link) double-checked after a fruitless scan certify that no link
//     overlapped it — at the instant the last lane was read, every lane
//     was simultaneously empty.
//
// Detectability is WORD-FOR-WORD the single-lane story: one per-thread X
// entry holds a tagged node pointer, with the operation's lane packed into
// spare tag bits (tagged_ptr.hpp's lane field) so prep/exec/resolve remain
// single failure-atomic 64-bit transitions.  resolve() never needs the
// lane — an enqueue resolves from its node's ENQ_COMPL tag, a dequeue from
// pred->next->deq_tid — so the resolve code is the single-lane code; the
// lane field steers recovery's reachability checks and exec-enqueue's
// combiner choice.  Recovery is the Figure-6 pass iterated per lane plus
// one global repair: the volatile ticket clock restarts above the maximum
// seq reachable in any lane.
//
// Memory-safety hardening (persist-before-reuse, X-pinning) carries over
// unchanged from DssQueue; the pre-reclaim hook persists every lane's head
// with one combined fence per batch.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "common/spin.hpp"
#include "common/tagged_ptr.hpp"
#include "ebr/ebr.hpp"
#include "pmem/combiner.hpp"
#include "pmem/context.hpp"
#include "pmem/node_arena.hpp"
#include "queues/dss_queue.hpp"
#include "queues/types.hpp"

namespace dssq::queues {

// kMaxLanes lives in queues/types.hpp next to validate_queue_root (the
// root validation needs it).

/// Lane count from DSSQ_LANES, else min(hardware threads, 8), clamped to
/// [1, kMaxLanes].
std::size_t default_lane_count() noexcept;

/// True when DSSQ_LANE_PICK=affinity: enqueuers stick to lane tid % N
/// instead of the default per-thread round-robin ticket.
bool lane_pick_affinity_from_env() noexcept;

template <class Ctx, class Policy = DssHardenedPolicy>
class ShardedDssQueue {
 public:
  /// `lanes` = 0 resolves through default_lane_count() (DSSQ_LANES).
  ShardedDssQueue(Ctx& ctx, std::size_t max_threads,
                  std::size_t nodes_per_thread, std::size_t lanes = 0)
      : ctx_(ctx),
        arena_(ctx, max_threads, nodes_per_thread),
        ebr_(max_threads),
        max_threads_(max_threads),
        deferred_(max_threads),
        cursor_(max_threads),
        affinity_(lane_pick_affinity_from_env()) {
    const std::size_t n = resolve_lane_count(lanes);
    x_ = pmem::alloc_array<XSlot>(ctx_, max_threads);
    ctx_.persist(x_, sizeof(XSlot) * max_threads);
    lanes_.reserve(n);
    for (std::size_t l = 0; l < n; ++l) {
      auto lane = std::make_unique<LaneState>(max_threads);
      LaneAnchors* a = pmem::alloc_object<LaneAnchors>(ctx_);
      Node* sentinel = pmem::alloc_object<Node>(ctx_);
      ctx_.persist(sentinel, sizeof(Node));
      a->head.ptr.store(sentinel, std::memory_order_relaxed);
      a->tail.ptr.store(sentinel, std::memory_order_relaxed);
      ctx_.persist(a, sizeof(LaneAnchors));
      lane->anchors = a;
      lanes_.push_back(std::move(lane));
    }
    ebr_.set_pre_reclaim_hook(
        [this](std::size_t t) { persist_heads_for_reuse(t); });
  }

  /// Attach to a queue already living in `ctx`'s recovered heap.  Replays
  /// the normal constructor's allocation sequence positionally (arena
  /// slabs, X array, then per-lane anchors + sentinel), so `lanes` must be
  /// the crashed process's resolved lane count — callers persist it in the
  /// heap's root block alongside the thread/node geometry.  No
  /// initialization is performed; run recover() before use.
  ShardedDssQueue(pmem::attach_t, Ctx& ctx, std::size_t max_threads,
                  std::size_t nodes_per_thread, std::size_t lanes = 0)
      : ctx_(ctx),
        arena_(pmem::attach, ctx, max_threads, nodes_per_thread),
        ebr_(max_threads),
        max_threads_(max_threads),
        deferred_(max_threads),
        cursor_(max_threads),
        affinity_(lane_pick_affinity_from_env()) {
    const std::size_t n = resolve_lane_count(lanes);
    x_ = static_cast<XSlot*>(
        ctx_.raw_alloc(sizeof(XSlot) * max_threads, alignof(XSlot)));
    lanes_.reserve(n);
    for (std::size_t l = 0; l < n; ++l) {
      auto lane = std::make_unique<LaneState>(max_threads);
      lane->anchors = static_cast<LaneAnchors*>(
          ctx_.raw_alloc(sizeof(LaneAnchors), alignof(LaneAnchors)));
      // The sentinel occupies the next slot of the sequence; it is
      // reachable from the recovered head, so only the cursor bump matters.
      (void)ctx_.raw_alloc(sizeof(Node), alignof(Node));
      lanes_.push_back(std::move(lane));
    }
    if (lanes_[0]->anchors->head.ptr.load(std::memory_order_relaxed) ==
        nullptr) {
      throw std::runtime_error(
          "ShardedDssQueue: attach found no initialized queue at the "
          "replayed addresses (wrong geometry/lane count, or the heap "
          "never held this queue?)");
    }
    ebr_.set_pre_reclaim_hook(
        [this](std::size_t t) { persist_heads_for_reuse(t); });
  }

  /// Adopt a queue by ROOT DESCRIPTOR (multi-process attach; see the
  /// single-lane overload).  The global ticket clock and per-lane link
  /// epochs come from HEAP-SHARED words recorded in the root — a foreign
  /// process drawing tickets from a private clock would collide seqs and
  /// break every lane's sort order, and a private epoch word would blind
  /// the EMPTY certification to other processes' links.
  ShardedDssQueue(pmem::adopt_t, Ctx& ctx, const QueueRoot& root)
      : ctx_(ctx),
        arena_(pmem::adopt,
               reinterpret_cast<std::byte*>(checked_root(root).slab_addr),
               reinterpret_cast<pmem::SlotCursor*>(root.cursors_addr),
               root.max_threads, root.nodes_per_thread),
        ebr_(root.max_threads),
        max_threads_(root.max_threads),
        deferred_(root.max_threads),
        cursor_(root.max_threads),
        shared_serving_(true),
        affinity_(lane_pick_affinity_from_env()) {
    x_ = reinterpret_cast<XSlot*>(root.x_addr);
    enq_seq_p_ = &reinterpret_cast<PaddedSeq*>(root.ticket_addr)->v;
    const auto* anchor_tab =
        reinterpret_cast<const std::uint64_t*>(root.anchors_addr);
    auto* epochs = reinterpret_cast<PaddedSeq*>(root.epochs_addr);
    lanes_.reserve(root.lanes);
    for (std::size_t l = 0; l < root.lanes; ++l) {
      auto lane = std::make_unique<LaneState>(max_threads_);
      lane->anchors = reinterpret_cast<LaneAnchors*>(anchor_tab[l]);
      lane->epoch = &epochs[l].v;
      lanes_.push_back(std::move(lane));
    }
    if (lanes_[0]->anchors->head.ptr.load(std::memory_order_acquire) ==
        nullptr) {
      throw std::runtime_error(
          "ShardedDssQueue: root descriptor points at an uninitialized "
          "queue");
    }
    ebr_.set_pre_reclaim_hook(
        [this](std::size_t t) { persist_heads_for_reuse(t); });
  }

  /// Build and persist a root descriptor so OTHER processes can adopt this
  /// queue, and switch THIS instance into shared-serving mode (durable
  /// fresh-node cursors, no in-flight node reuse).  The volatile ticket
  /// clock and link epochs MIGRATE into heap lines here — every attacher,
  /// this process included, sequences through the same words from now on.
  /// Call once, at quiescence, before publishing.
  QueueRoot* make_root() {
    auto* cursors = pmem::alloc_array<pmem::SlotCursor>(ctx_, max_threads_);
    arena_.install_cursors(ctx_, cursors);
    auto* ticket = pmem::alloc_object<PaddedSeq>(ctx_);
    auto* epochs = pmem::alloc_array<PaddedSeq>(ctx_, lanes_.size());
    auto* anchor_tab = static_cast<std::uint64_t*>(ctx_.raw_alloc(
        sizeof(std::uint64_t) * lanes_.size(), kCacheLineSize));
    ticket->v.store(enq_seq_p_->load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      epochs[l].v.store(lanes_[l]->epoch->load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      anchor_tab[l] = reinterpret_cast<std::uintptr_t>(lanes_[l]->anchors);
      lanes_[l]->epoch = &epochs[l].v;
    }
    ctx_.persist(anchor_tab, sizeof(std::uint64_t) * lanes_.size());
    enq_seq_p_ = &ticket->v;
    QueueRoot* r = pmem::alloc_object<QueueRoot>(ctx_);
    r->magic = QueueRoot::kMagic;
    r->kind = QueueRoot::kKindSharded;
    r->max_threads = max_threads_;
    r->nodes_per_thread = arena_.capacity_per_thread();
    r->lanes = lanes_.size();
    r->x_addr = reinterpret_cast<std::uintptr_t>(x_);
    r->slab_addr = reinterpret_cast<std::uintptr_t>(arena_.slab());
    r->cursors_addr = reinterpret_cast<std::uintptr_t>(cursors);
    r->anchors_addr = reinterpret_cast<std::uintptr_t>(anchor_tab);
    r->ticket_addr = reinterpret_cast<std::uintptr_t>(ticket);
    r->epochs_addr = reinterpret_cast<std::uintptr_t>(epochs);
    ctx_.persist(r, sizeof(QueueRoot));
    shared_serving_ = true;
    return r;
  }

  // ---- detectable operations (Figures 3 and 4, per lane) ------------------

  /// prep-enqueue(val): pick a lane, create and persist the node, announce
  /// node AND lane in X — one failure-atomic word, exactly like the
  /// single-lane prep.
  void prep_enqueue(std::size_t tid, Value val) {
    trace::OpScope scope(trace::Op::kEnqueue, trace::Phase::kPrep);
    reclaim_failed_prep(tid);
    const std::size_t lane = pick_lane(tid);
    Node* node = acquire_node(tid);
    node->next.store(nullptr, std::memory_order_relaxed);
    node->deq_tid.store(kUnmarked, std::memory_order_relaxed);
    node->seq.store(0, std::memory_order_relaxed);
    node->value = val;
    ctx_.persist_combined(node, sizeof(Node));
    ctx_.crash_point("shard:prep-enq:node-persisted");
    x_[tid].word.store(make_tagged(node, kEnqPrepTag) | lane_field(lane),
                       std::memory_order_release);
    ctx_.persist_combined(&x_[tid], sizeof(XSlot));
    ctx_.crash_point("shard:prep-enq:announced");
  }

  /// exec-enqueue(): hand the prepared node to its lane's combiner.  On
  /// return the link AND the ENQ_COMPL record are persisted (the combiner
  /// publishes completions before releasing the batch).
  void exec_enqueue(std::size_t tid) {
    trace::OpScope scope(trace::Op::kEnqueue, trace::Phase::kExec);
    const TaggedWord xw = x_[tid].word.load(std::memory_order_acquire);
    assert(has_tag(xw, kEnqPrepTag) &&
           "exec-enqueue without a prepared enqueue (Axiom 2 precondition)");
    if (has_tag(xw, kEnqComplTag)) return;  // R[t] ≠ ⊥: already took effect
    Node* node = untag<Node>(xw);
    const std::size_t lane = lane_of(xw);
    ebr::EpochGuard guard(ebr_, tid);
    run_combined_enqueue(tid, lane, node, /*detectable=*/true);
  }

  /// prep-dequeue(): announce the intent; the lane is bound later, by the
  /// exec attempt that saves a predecessor.
  void prep_dequeue(std::size_t tid) {
    trace::OpScope scope(trace::Op::kDequeue, trace::Phase::kPrep);
    x_[tid].word.store(kDeqPrepTag, std::memory_order_release);
    ctx_.persist_combined(&x_[tid], sizeof(XSlot));
    ctx_.crash_point("shard:prep-deq:announced");
  }

  /// exec-dequeue(): min-seq lane scan + Figure-4 claim.
  Value exec_dequeue(std::size_t tid) {
    trace::OpScope scope(trace::Op::kDequeue, trace::Phase::kExec);
    assert(has_tag(x_[tid].word.load(std::memory_order_relaxed),
                   kDeqPrepTag) &&
           "exec-dequeue without a prepared dequeue (Axiom 2 precondition)");
    ebr::EpochGuard guard(ebr_, tid);
    return dequeue_loop(tid, /*detectable=*/true);
  }

  /// resolve: identical decision tree to the single-lane queue — the lane
  /// field rides along in the word but the outcome never depends on it.
  Resolved resolve(std::size_t tid) const {
    trace::OpScope scope(trace::Op::kNone, trace::Phase::kResolve);
    const TaggedWord xw = x_[tid].word.load(std::memory_order_acquire);
    if (has_tag(xw, kEnqPrepTag)) {
      return resolve_enqueue(xw);
    }
    if (has_tag(xw, kDeqPrepTag)) {
      return resolve_dequeue(tid, xw);
    }
    return Resolved::none();
  }

  // ---- non-detectable operations (Axiom 4) --------------------------------

  /// enqueue still routes through the lane combiner — combiner exclusivity
  /// is what keeps every lane seq-sorted, so ALL links must take it — but
  /// skips every X access.
  void enqueue(std::size_t tid, Value val) {
    trace::OpScope scope(trace::Op::kEnqueue);
    const std::size_t lane = pick_lane(tid);
    Node* node = acquire_node(tid);
    node->next.store(nullptr, std::memory_order_relaxed);
    node->deq_tid.store(kUnmarked, std::memory_order_relaxed);
    node->seq.store(0, std::memory_order_relaxed);
    node->value = val;
    ctx_.persist_combined(node, sizeof(Node));
    ebr::EpochGuard guard(ebr_, tid);
    run_combined_enqueue(tid, lane, node, /*detectable=*/false);
  }

  /// dequeue with every X access omitted; marks with tid|kNonDetectableMark.
  Value dequeue(std::size_t tid) {
    trace::OpScope scope(trace::Op::kDequeue);
    ebr::EpochGuard guard(ebr_, tid);
    return dequeue_loop(tid, /*detectable=*/false);
  }

  // ---- recovery -----------------------------------------------------------

  /// Centralized recovery: the Figure-6 pass per lane, the thread-directed
  /// ENQ_COMPL repair over the one X array, ticket-clock repair, free-list
  /// rebuild.  Precondition: quiescence.
  void recover() {
    last_recovery_ = metrics::RecoveryTrace{};
    ebr_.drain_all_unsafe_without_reclaiming();
    arena_.reset_volatile_state();
    for (auto& d : deferred_) d.clear();

    std::unordered_set<Node*> all_nodes;
    std::uint64_t max_seq = 0;
    std::size_t tails_moved = 0;
    std::size_t heads_moved = 0;
    for (auto& lane : lanes_) {
      lane->comb.reset();
      lane->epoch->store(0, std::memory_order_relaxed);
      LaneAnchors* a = lane->anchors;
      // Line 64 per lane: AllNodes ∪= nodes reachable from this head.
      Node* old_head = a->head.ptr.load(std::memory_order_relaxed);
      Node* last = old_head;
      all_nodes.insert(old_head);
      ++last_recovery_.nodes_scanned;
      while (Node* next = last->next.load(std::memory_order_relaxed)) {
        last = next;
        all_nodes.insert(last);
        max_seq = std::max(max_seq, last->seq.load(std::memory_order_relaxed));
        ++last_recovery_.nodes_scanned;
      }
      // Lines 65–66: tail := last reachable node.
      tails_moved += a->tail.ptr.load(std::memory_order_relaxed) != last;
      a->tail.ptr.store(last, std::memory_order_relaxed);
      ctx_.persist(&a->tail, sizeof(a->tail));
      // Lines 67–69: head := last marked node reachable from oldHead.
      Node* new_head = old_head;
      for (Node* n = old_head->next.load(std::memory_order_relaxed);
           n != nullptr &&
           n->deq_tid.load(std::memory_order_relaxed) != kUnmarked;
           n = n->next.load(std::memory_order_relaxed)) {
        new_head = n;
      }
      heads_moved += new_head != old_head;
      a->head.ptr.store(new_head, std::memory_order_relaxed);
      ctx_.persist(&a->head, sizeof(a->head));
    }
    last_recovery_.tail_moved = tails_moved != 0;
    last_recovery_.head_moved = heads_moved != 0;
    trace::recovery_step(trace::RecoveryStep::kScan,
                         last_recovery_.nodes_scanned);
    trace::recovery_step(trace::RecoveryStep::kTailRepair, tails_moved);
    trace::recovery_step(trace::RecoveryStep::kHeadRepair, heads_moved);

    // Lines 70–76: complete ENQ_COMPL for enqueues that took effect.  One
    // pass over the one X array; reachability is checked against the union
    // of all lanes (a node lives in exactly the lane its X word names).
    for (std::size_t i = 0; i < max_threads_; ++i) {
      const TaggedWord xw = x_[i].word.load(std::memory_order_relaxed);
      if (!has_tag(xw, kEnqPrepTag) || has_tag(xw, kEnqComplTag)) continue;
      Node* d = untag<Node>(xw);
      if (d == nullptr) continue;
      const bool in_list = all_nodes.contains(d);
      const bool dequeued_already =
          !in_list &&
          d->deq_tid.load(std::memory_order_relaxed) != kUnmarked;
      if (in_list || dequeued_already) {
        x_[i].word.store(with_tag(xw, kEnqComplTag),
                         std::memory_order_relaxed);
        ctx_.persist(&x_[i], sizeof(XSlot));
        ++last_recovery_.tags_repaired;
      }
    }
    trace::recovery_step(trace::RecoveryStep::kTagRepair,
                         last_recovery_.tags_repaired);

    // The volatile ticket clock restarts above every stamped seq, so
    // post-recovery enqueues sort after every surviving element.
    enq_seq_p_->store(max_seq + 1, std::memory_order_relaxed);

    last_recovery_.nodes_reclaimed = rebuild_free_lists_from(all_nodes);
    trace::recovery_step(trace::RecoveryStep::kReclaim,
                         last_recovery_.nodes_reclaimed);
    metrics::add(metrics::Counter::kRecoveryNodesScanned,
                 last_recovery_.nodes_scanned);
    metrics::add(metrics::Counter::kRecoveryTagsRepaired,
                 last_recovery_.tags_repaired);
  }

  /// Thread-local recovery: repair only this thread's X entry, walking
  /// only the lane its word names.  Stale lane heads/tails self-heal in
  /// normal operation, exactly as in the single-lane queue.
  void recover_independent(std::size_t tid) {
    const TaggedWord xw = x_[tid].word.load(std::memory_order_acquire);
    if (!has_tag(xw, kEnqPrepTag) || has_tag(xw, kEnqComplTag)) return;
    Node* d = untag<Node>(xw);
    if (d == nullptr) return;
    bool took_effect =
        d->deq_tid.load(std::memory_order_relaxed) != kUnmarked;
    if (!took_effect) {
      LaneAnchors* a = lanes_[lane_of(xw) % lanes_.size()]->anchors;
      for (Node* n = a->head.ptr.load(std::memory_order_acquire);
           n != nullptr; n = n->next.load(std::memory_order_acquire)) {
        metrics::add(metrics::Counter::kRecoveryNodesScanned);
        if (n == d) {
          took_effect = true;
          break;
        }
      }
    }
    if (took_effect) {
      x_[tid].word.store(with_tag(xw, kEnqComplTag),
                         std::memory_order_release);
      ctx_.persist(&x_[tid], sizeof(XSlot));
      metrics::add(metrics::Counter::kRecoveryTagsRepaired);
    }
  }

  /// Rebuild the free lists after a crash (quiescence required).
  void rebuild_free_lists() {
    ebr_.drain_all_unsafe_without_reclaiming();
    arena_.reset_volatile_state();
    for (auto& d : deferred_) d.clear();
    std::unordered_set<Node*> reachable;
    for (auto& lane : lanes_) {
      for (Node* n = lane->anchors->head.ptr.load(std::memory_order_relaxed);
           n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
        reachable.insert(n);
      }
    }
    rebuild_free_lists_from(reachable);
  }

  // ---- introspection ------------------------------------------------------

  TaggedWord x_word(std::size_t tid) const {
    return x_[tid].word.load(std::memory_order_acquire);
  }

  const metrics::RecoveryTrace& last_recovery() const noexcept {
    return last_recovery_;
  }

  /// Remaining elements in FIFO order — ascending seq across every lane
  /// (quiescence required).
  void drain_to(std::vector<Value>& out) const {
    std::vector<std::pair<std::uint64_t, Value>> rest;
    for (const auto& lane : lanes_) {
      Node* n = lane->anchors->head.ptr.load(std::memory_order_relaxed)
                    ->next.load(std::memory_order_relaxed);
      for (; n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
        if (n->deq_tid.load(std::memory_order_relaxed) == kUnmarked) {
          rest.emplace_back(n->seq.load(std::memory_order_relaxed), n->value);
        }
      }
    }
    std::sort(rest.begin(), rest.end());
    for (const auto& [seq, value] : rest) out.push_back(value);
  }

  std::size_t max_threads() const noexcept { return max_threads_; }
  std::size_t lane_count() const noexcept { return lanes_.size(); }
  std::size_t free_count(std::size_t tid) const {
    return arena_.free_count(tid);
  }
  /// Next global enqueue ticket (white-box tests).
  std::uint64_t next_seq() const noexcept {
    return enq_seq_p_->load(std::memory_order_relaxed);
  }
  /// Force/disable thread-affine lane picking (bench + deterministic tests;
  /// default comes from DSSQ_LANE_PICK).
  void set_lane_affinity(bool on) noexcept { affinity_ = on; }

  // ---- deterministic-combining test seam (the fence_at analogue) ----------

  /// Announce tid's prepared enqueue on its lane WITHOUT waiting for a
  /// combiner.  Pair with combine_lane(): tests announce several prepared
  /// enqueues, then drive one combining pass by hand to construct a batch
  /// deterministically.  After the pass the operation has taken effect and
  /// exec_enqueue(tid) is a no-op.
  void announce_enqueue(std::size_t tid) {
    const TaggedWord xw = x_[tid].word.load(std::memory_order_acquire);
    assert(has_tag(xw, kEnqPrepTag) && !has_tag(xw, kEnqComplTag));
    lanes_[lane_of(xw)]->comb.announce(
        tid, request_word(untag<Node>(xw), /*detectable=*/true));
  }

  /// Drive one combining pass over `lane` on the calling thread; returns
  /// the batch size (SIZE_MAX when another thread holds the combiner role).
  std::size_t combine_lane(std::size_t lane) {
    ebr::EpochGuard guard(ebr_, 0);
    return lanes_[lane]->comb.try_combine(
        [&](const pmem::OpCombiner::Request* reqs, std::size_t n) {
          apply_enqueue_batch(lane, reqs, n);
        });
  }

 private:
  struct alignas(kCacheLineSize) PaddedPtr {
    std::atomic<Node*> ptr{nullptr};
  };
  /// One lane's persistent anchors, co-allocated so attach replays one
  /// allocation per lane.
  struct LaneAnchors {
    PaddedPtr head;
    PaddedPtr tail;
  };
  /// One lane's volatile state.
  struct LaneState {
    explicit LaneState(std::size_t max_threads)
        : comb(max_threads), epoch(&epoch_own.v) {}
    LaneAnchors* anchors = nullptr;
    pmem::OpCombiner comb;
    /// Seqlock over this lane's link section: odd while a combiner is
    /// between reserving tickets and finishing the link, bumped even
    /// after.  The dequeue empty path double-reads these to certify that
    /// no link overlapped its scan.  Accessed through `epoch`: per-process
    /// storage in single-process mode, a heap-shared line once make_root/
    /// adopt wires multi-process serving (a private word would hide other
    /// processes' links from the certification).
    PaddedSeq epoch_own;
    std::atomic<std::uint64_t>* epoch;
  };
  struct alignas(kCacheLineSize) PaddedCursor {
    std::size_t v = 0;
  };

  /// Payload flag: the announced enqueue is detectable (publish ENQ_COMPL).
  /// Nodes are cache-line aligned, so bit 1 never collides with an address
  /// (and the word stays distinct from OpCombiner::kIdle/kDone).
  static constexpr std::uintptr_t kDetectableReq = 2;

  static std::uintptr_t request_word(Node* node, bool detectable) noexcept {
    return reinterpret_cast<std::uintptr_t>(node) |
           (detectable ? kDetectableReq : 0);
  }
  static Node* request_node(std::uintptr_t payload) noexcept {
    return reinterpret_cast<Node*>(payload & ~kDetectableReq);
  }

  static std::size_t resolve_lane_count(std::size_t lanes) {
    if (lanes == 0) lanes = default_lane_count();
    return std::clamp<std::size_t>(lanes, 1, kMaxLanes);
  }

  /// Lane choice: per-thread round-robin ticket by default (each thread
  /// spreads its enqueues over every lane), thread affinity on request.
  std::size_t pick_lane(std::size_t tid) noexcept {
    const std::size_t n = lanes_.size();
    if (n == 1) return 0;
    if (affinity_) return tid % n;
    return (tid + cursor_[tid].v++) % n;
  }

  // ---- combined exec-enqueue ----------------------------------------------

  void run_combined_enqueue(std::size_t tid, std::size_t lane, Node* node,
                            bool detectable) {
    lanes_[lane]->comb.run(
        tid, request_word(node, detectable),
        [&](const pmem::OpCombiner::Request* reqs, std::size_t n) {
          apply_enqueue_batch(lane, reqs, n);
        });
  }

  /// The combiner body: applied once per batch, on whichever thread holds
  /// the lane's combiner role.  Orders exactly like n single-lane
  /// exec-enqueues collapsed together:
  ///   1. reserve n global tickets (one fetch_add), stamp + chain the
  ///      batch, flush every node, ONE fence;
  ///   2. link the chain with one tail CAS, persist the link;
  ///   3. publish every detectable caller's ENQ_COMPL, flush them all,
  ///      ONE fence.
  /// A batch of n detectable enqueues thus pays 3 fences instead of 2n.
  void apply_enqueue_batch(std::size_t lane,
                           const pmem::OpCombiner::Request* reqs,
                           std::size_t n) {
    LaneState& ln = *lanes_[lane];
    const std::uint64_t s0 =
        enq_seq_p_->fetch_add(n, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      Node* node = request_node(reqs[i].payload);
      node->seq.store(s0 + i, std::memory_order_relaxed);
      node->next.store(
          i + 1 < n ? request_node(reqs[i + 1].payload) : nullptr,
          std::memory_order_relaxed);
      ctx_.flush(node, sizeof(Node));
    }
    ctx_.fence_combined();  // one fence persists the whole stamped chain
    ctx_.crash_point("shard:combine:batch-persisted");

    Node* first = request_node(reqs[0].payload);
    Node* last_new = request_node(reqs[n - 1].payload);
    ln.epoch->fetch_add(1, std::memory_order_acq_rel);  // odd: linking
    for (;;) {
      Node* last = ln.anchors->tail.ptr.load(std::memory_order_acquire);
      Node* next = last->next.load(std::memory_order_acquire);
      if (last != ln.anchors->tail.ptr.load(std::memory_order_acquire)) {
        metrics::add(metrics::Counter::kCasRetries);
        trace::cas_retry();
        continue;
      }
      if (next == nullptr) {
        ctx_.crash_point("shard:combine:pre-link");
        if (last->next.compare_exchange_strong(next, first)) {
          ctx_.crash_point("shard:combine:linked-unflushed");
          ctx_.persist_combined(&last->next, sizeof(last->next));
          ctx_.crash_point("shard:combine:linked");
          ln.anchors->tail.ptr.compare_exchange_strong(last, last_new);
          break;
        }
        metrics::add(metrics::Counter::kCasRetries);
        trace::cas_retry();
      } else {
        // The tail lags (a dequeuer helped it into the middle of an
        // earlier chain, or a crash left it stale): help it forward.
        metrics::add(metrics::Counter::kCasRetries);
        trace::cas_retry();
        ctx_.persist_combined(&last->next, sizeof(last->next));
        ln.anchors->tail.ptr.compare_exchange_strong(last, next);
      }
    }
    ln.epoch->fetch_add(1, std::memory_order_release);  // even: done

    bool any_detectable = false;
    for (std::size_t i = 0; i < n; ++i) {
      if ((reqs[i].payload & kDetectableReq) == 0) continue;
      const std::size_t t = reqs[i].slot;
      // The owner is parked in run() until the batch completes, so this
      // read-modify-write cannot race its own stores.
      const TaggedWord w = x_[t].word.load(std::memory_order_relaxed);
      x_[t].word.store(with_tag(w, kEnqComplTag), std::memory_order_release);
      ctx_.flush(&x_[t], sizeof(XSlot));
      any_detectable = true;
    }
    if (any_detectable) ctx_.fence_combined();
    ctx_.crash_point("shard:combine:completed");
  }

  // ---- exec-dequeue body --------------------------------------------------

  Value dequeue_loop(std::size_t tid, bool detectable) {
    Backoff backoff;
    const std::size_t nl = lanes_.size();
    std::uint64_t epochs[kMaxLanes];
    for (;;) {
      metrics::add(metrics::Counter::kLaneScans);
      trace::lane_scan_event(nl);
      std::size_t best_lane = nl;
      Node* best_pred = nullptr;
      Node* best_node = nullptr;
      std::uint64_t best_seq = ~std::uint64_t{0};
      for (std::size_t l = 0; l < nl; ++l) {
        LaneState& ln = *lanes_[l];
        // Epoch first (acquire): the lane walk below cannot hoist above it.
        epochs[l] = ln.epoch->load(std::memory_order_acquire);
        Node* pred = ln.anchors->head.ptr.load(std::memory_order_acquire);
        Node* n = pred->next.load(std::memory_order_acquire);
        while (n != nullptr &&
               n->deq_tid.load(std::memory_order_acquire) != kUnmarked) {
          pred = n;
          n = n->next.load(std::memory_order_acquire);
        }
        if (n != nullptr) {
          // Lanes are seq-sorted, so the first unmarked node carries the
          // lane minimum; the link CAS released the stamp our acquire walk
          // synchronized with.
          const std::uint64_t s = n->seq.load(std::memory_order_relaxed);
          if (s < best_seq) {
            best_seq = s;
            best_lane = l;
            best_pred = pred;
            best_node = n;
          }
        }
      }
      if (best_node != nullptr) {
        if (detectable) {
          // Save predecessor + lane before attempting the claim — a
          // successful mark is then self-detecting (Fig. 4 lines 47–48).
          x_[tid].word.store(
              make_tagged(best_pred, kDeqPrepTag) | lane_field(best_lane),
              std::memory_order_release);
          ctx_.persist_combined(&x_[tid], sizeof(XSlot));
          ctx_.crash_point("shard:exec-deq:pred-saved");
        }
        const std::int64_t mark =
            detectable ? static_cast<std::int64_t>(tid)
                       : static_cast<std::int64_t>(tid) | kNonDetectableMark;
        std::int64_t unmarked = kUnmarked;
        if (best_node->deq_tid.compare_exchange_strong(unmarked, mark)) {
          ctx_.crash_point("shard:exec-deq:marked-unflushed");
          ctx_.persist_combined(&best_node->deq_tid,
                                sizeof(best_node->deq_tid));
          ctx_.crash_point("shard:exec-deq:marked");
          advance_head(best_lane, tid);
          return best_node->value;
        }
        metrics::add(metrics::Counter::kCasRetries);  // lost the claim
        trace::cas_retry();
        backoff.pause();
        continue;
      }
      // Every lane looked empty.  Certify simultaneity: if no lane's link
      // epoch moved (and none was mid-link), no link overlapped the scan,
      // so at the instant the LAST lane was read every lane was still
      // empty — a legal linearization point for EMPTY.
      //
      // dssq-lint: allow(raw-fence) volatile-memory acquire ordering for
      // the seqlock validation reads below (the lane walks must not sink
      // past them); this orders CPU loads, not persistence, so
      // Ctx::fence() — a persist drain — would be the wrong tool.
      std::atomic_thread_fence(std::memory_order_acquire);
      bool certified = true;
      for (std::size_t l = 0; l < nl; ++l) {
        if ((epochs[l] & 1) != 0 ||
            lanes_[l]->epoch->load(std::memory_order_acquire) !=
                epochs[l]) {
          certified = false;
          break;
        }
      }
      if (certified) {
        if (detectable) {
          const TaggedWord xw = x_[tid].word.load(std::memory_order_relaxed);
          x_[tid].word.store(with_tag(xw, kEmptyTag),
                             std::memory_order_release);
          ctx_.persist_combined(&x_[tid], sizeof(XSlot));
          ctx_.crash_point("shard:exec-deq:empty-recorded");
        }
        return kEmpty;
      }
      metrics::add(metrics::Counter::kCasRetries);  // a link raced the scan
      trace::cas_retry();
      backoff.pause();
    }
  }

  /// Advance `lane`'s head past its marked prefix, retiring passed nodes.
  /// Helps persist each mark first, so the persisted-head order of the
  /// pre-reclaim hook never commits an unpersisted dequeue.
  void advance_head(std::size_t lane, std::size_t tid) {
    LaneAnchors* a = lanes_[lane]->anchors;
    for (;;) {
      Node* h = a->head.ptr.load(std::memory_order_acquire);
      Node* n = h->next.load(std::memory_order_acquire);
      if (n == nullptr ||
          n->deq_tid.load(std::memory_order_acquire) == kUnmarked) {
        return;
      }
      ctx_.persist_combined(&n->deq_tid, sizeof(n->deq_tid));
      if (a->head.ptr.compare_exchange_strong(h, n)) {
        retire(tid, h);
      }
    }
  }

  // ---- resolve helpers ----------------------------------------------------

  Resolved resolve_enqueue(TaggedWord xw) const {
    const Value arg = untag<Node>(xw)->value;
    if (has_tag(xw, kEnqComplTag)) {
      return Resolved::enqueue(arg, kOk);
    }
    return Resolved::enqueue(arg);
  }

  Resolved resolve_dequeue(std::size_t tid, TaggedWord xw) const {
    if (has_tag(xw, kEmptyTag)) {
      return Resolved::dequeue(kEmpty);
    }
    Node* pred = untag<Node>(xw);
    if (pred == nullptr) {  // prepared, no attempt recorded
      return Resolved::dequeue();
    }
    Node* target = pred->next.load(std::memory_order_acquire);
    if (target != nullptr &&
        target->deq_tid.load(std::memory_order_acquire) ==
            static_cast<std::int64_t>(tid)) {
      return Resolved::dequeue(target->value);
    }
    return Resolved::dequeue();
  }

  // ---- memory management --------------------------------------------------

  void reclaim_failed_prep(std::size_t tid) {
    const TaggedWord xw = x_[tid].word.load(std::memory_order_relaxed);
    if (has_tag(xw, kEnqPrepTag) && !has_tag(xw, kEnqComplTag)) {
      Node* node = untag<Node>(xw);
      if (node != nullptr) arena_.release(tid, node);
    }
  }

  Node* acquire_node(std::size_t tid) {
    Node* node = arena_.try_acquire(ctx_, tid);
    for (int i = 0; i < 4096 && node == nullptr; ++i) {
      ebr_.try_advance_and_drain(tid);
      std::this_thread::yield();
      node = arena_.try_acquire(ctx_, tid);
    }
    if (node == nullptr) throw std::bad_alloc();
    return node;
  }

  void retire(std::size_t tid, Node* node) {
    ebr_.retire(tid, node, [this, tid](void* p) {
      reclaim(tid, static_cast<Node*>(p));
    });
  }

  /// In shared-serving mode EVERY node is deferred: this process's EBR
  /// grace period says nothing about readers in other processes, so reuse
  /// waits for a quiescent recover()/rebuild_free_lists().
  void reclaim(std::size_t tid, Node* node) {
    if (shared_serving_) {
      deferred_[tid].push_back(node);
      return;
    }
    if constexpr (Policy::kPinXOnReclaim) {
      if (pinned_by_x(node)) {
        deferred_[tid].push_back(node);
        return;
      }
    }
    arena_.release(tid, node);
  }

  bool pinned_by_x(const Node* node) const {
    for (std::size_t i = 0; i < max_threads_; ++i) {
      const TaggedWord xw = x_[i].word.load(std::memory_order_acquire);
      const Node* d = untag<const Node>(xw);
      if (d == node) return true;
      if (has_tag(xw, kDeqPrepTag) && d != nullptr &&
          d->next.load(std::memory_order_acquire) == node) {
        return true;
      }
    }
    return false;
  }

  /// Pre-reclaim hook: persist EVERY lane's head (one flush per lane, one
  /// combined fence) before any node of the batch becomes reusable, then
  /// retry deferred X-pinned nodes.
  void persist_heads_for_reuse(std::size_t tid) {
    if constexpr (Policy::kPersistHeadBeforeReuse) {
      for (auto& lane : lanes_) {
        ctx_.flush(&lane->anchors->head, sizeof(PaddedPtr));
      }
      ctx_.fence_combined();
    }
    auto& deferred = deferred_[tid];
    if (shared_serving_) return;  // deferred nodes wait for quiescence
    if (!deferred.empty()) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < deferred.size(); ++i) {
        if (pinned_by_x(deferred[i])) {
          deferred[kept++] = deferred[i];
        } else {
          arena_.release(tid, deferred[i]);
        }
      }
      deferred.resize(kept);
    }
  }

  std::size_t rebuild_free_lists_from(
      const std::unordered_set<Node*>& reachable) {
    std::unordered_set<const Node*> keep(reachable.begin(), reachable.end());
    for (std::size_t i = 0; i < max_threads_; ++i) {
      const TaggedWord xw = x_[i].word.load(std::memory_order_relaxed);
      const Node* d = untag<const Node>(xw);
      if (d == nullptr) continue;
      keep.insert(d);
      if (has_tag(xw, kDeqPrepTag)) {
        if (const Node* succ = d->next.load(std::memory_order_relaxed)) {
          keep.insert(succ);
        }
      }
    }
    std::size_t reclaimed = 0;
    arena_.for_each_allocated([&](std::size_t, Node* n) {
      if (!keep.contains(n)) {
        arena_.release_to_owner(n);
        ++reclaimed;
      }
    });
    return reclaimed;
  }

  /// Validated pass-through for the adopt constructor's member-init list
  /// (the root must be checked BEFORE the arena dereferences its fields).
  static const QueueRoot& checked_root(const QueueRoot& r) {
    return validate_queue_root(r, QueueRoot::kKindSharded,
                               "ShardedDssQueue");
  }

  Ctx& ctx_;
  pmem::NodeArena<Node> arena_;
  ebr::EpochManager ebr_;
  std::size_t max_threads_;
  XSlot* x_ = nullptr;
  std::vector<std::unique_ptr<LaneState>> lanes_;
  /// Global enqueue ticket clock, accessed through enq_seq_p_: the owned
  /// word in single-process mode, a heap-shared line after make_root/
  /// adopt.  Volatile by design either way: recovery recomputes it as
  /// (max reachable seq) + 1, so it never needs its own persists.
  PaddedSeq enq_seq_own_{{1}};
  std::atomic<std::uint64_t>* enq_seq_p_ = &enq_seq_own_.v;
  std::vector<std::vector<Node*>> deferred_;
  std::vector<PaddedCursor> cursor_;
  bool shared_serving_ = false;  // multi-process: no node reuse in-flight
  bool affinity_ = false;
  metrics::RecoveryTrace last_recovery_;
};

}  // namespace dssq::queues
