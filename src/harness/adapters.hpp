// Uniform queue adapters for the workload driver.
//
// The paper's evaluation runs the same workload (alternating
// enqueue/dequeue pairs) against queues with different interfaces:
// non-detectable operations, DSS prep/exec pairs, and always-detectable
// queues.  Adapters normalise them to `enqueue(tid, v)` / `dequeue(tid)`.
#pragma once

#include <cstddef>

#include "common/flight_recorder.hpp"
#include "common/histogram.hpp"
#include "common/metrics.hpp"
#include "queues/types.hpp"

namespace dssq::harness {

/// Plain pass-through (MS queue, durable queue, DSS queue non-detectable
/// path, log queue, CASWithEffect queues).
template <class Q>
struct DirectAdapter {
  Q& q;
  void enqueue(std::size_t tid, queues::Value v) {
    const std::uint64_t t0 = trace::now_ns();
    q.enqueue(tid, v);
    hist::record(trace::now_ns() - t0);
    metrics::add(metrics::Counter::kOps);
  }
  queues::Value dequeue(std::size_t tid) {
    const std::uint64_t t0 = trace::now_ns();
    const queues::Value v = q.dequeue(tid);
    hist::record(trace::now_ns() - t0);
    metrics::add(metrics::Counter::kOps);
    return v;
  }
};

/// DSS detectable path: every operation is prepared then executed
/// ("DSS queue detectable" in Figure 5a; resolve is not invoked in
/// failure-free runs, matching the paper's measurement).
template <class Q>
struct DetectableAdapter {
  // The detectable path only makes sense for objects whose pending
  // operation is recoverable through the unified resolve surface.
  static_assert(dss::Detectable<Q>,
                "DetectableAdapter requires a dss::Detectable object");

  Q& q;
  void enqueue(std::size_t tid, queues::Value v) {
    const std::uint64_t t0 = trace::now_ns();
    q.prep_enqueue(tid, v);
    q.exec_enqueue(tid);
    hist::record(trace::now_ns() - t0);
    metrics::add(metrics::Counter::kOps);
  }
  queues::Value dequeue(std::size_t tid) {
    const std::uint64_t t0 = trace::now_ns();
    q.prep_dequeue(tid);
    const queues::Value v = q.exec_dequeue(tid);
    hist::record(trace::now_ns() - t0);
    metrics::add(metrics::Counter::kOps);
    return v;
  }
};

}  // namespace dssq::harness
