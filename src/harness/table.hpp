// Plain-text table printer for the bench harnesses — each bench prints the
// same rows/series as the paper's figure it regenerates.
#pragma once

#include <string>
#include <vector>

namespace dssq::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns.
  std::string to_string() const;

  /// Render as CSV (for post-processing / plotting).
  std::string to_csv() const;

  /// Print to stdout (aligned form).
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
std::string fmt(double value, int precision = 3);

}  // namespace dssq::harness
