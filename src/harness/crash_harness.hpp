// Crash-storm harness: drive a detectable queue from several threads,
// crash the world mid-flight, recover, resolve, and hand the pieces to a
// verifier.
//
// The harness realizes the paper's failure model end to end:
//   1. worker threads run random detectable operations against a queue
//      living in a ShadowPool, each recording the operations it *knows*
//      completed (its volatile knowledge);
//   2. at a random instant the injector fires: every thread dies at its
//      next crash point (throws SimulatedCrash, caught at thread top
//      level — the thread loses everything volatile since its last
//      completed op);
//   3. the pool's crash() reconstructs memory as the persistence domain
//      would see it under a chosen survival adversary;
//   4. the queue's recovery procedure runs (centralized, as in Figure 6);
//   5. each thread's interrupted operation is resolved, and the verifier
//      checks exactly-once semantics against the combined knowledge.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "pmem/crash.hpp"
#include "queues/types.hpp"

namespace dssq::harness {

/// What one worker thread knows at the moment of the crash.
struct ThreadOutcome {
  /// Values whose enqueue completed (exec-enqueue returned) pre-crash.
  std::vector<queues::Value> enqueued;
  /// Values whose dequeue completed and returned them pre-crash.
  std::vector<queues::Value> dequeued;
  /// The operation in flight when the crash hit, if any.
  enum class Pending : std::uint8_t { kNone, kEnqueue, kDequeue };
  Pending pending = Pending::kNone;
  queues::Value pending_arg = 0;
  bool crashed = false;  // thread was killed by the injector
};

/// Run `threads` workers against `queue` (prep/exec detectable interface),
/// arming the countdown injector at `crash_after_points`.  Returns each
/// thread's knowledge.  On return all workers have stopped (crashed or
/// completed `ops_per_thread`); the caller then crashes the pool, recovers,
/// and verifies.
template <class Q>
std::vector<ThreadOutcome> run_crash_storm(Q& queue, std::size_t threads,
                                           std::size_t ops_per_thread,
                                           pmem::CrashPoints& points,
                                           std::int64_t crash_after_points,
                                           std::uint64_t seed) {
  std::vector<ThreadOutcome> outcomes(threads);
  points.arm_countdown(crash_after_points);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadOutcome& out = outcomes[t];
      Xoshiro256 rng(hash_combine(seed, t));
      queues::Value next_value =
          static_cast<queues::Value>(t + 1) * 1'000'000;
      try {
        for (std::size_t i = 0; i < ops_per_thread; ++i) {
          if (rng.next_bool(0.5)) {
            const queues::Value v = next_value++;
            out.pending = ThreadOutcome::Pending::kEnqueue;
            out.pending_arg = v;
            queue.prep_enqueue(t, v);
            queue.exec_enqueue(t);
            out.enqueued.push_back(v);
          } else {
            out.pending = ThreadOutcome::Pending::kDequeue;
            queue.prep_dequeue(t);
            const queues::Value v = queue.exec_dequeue(t);
            if (v != queues::kEmpty) out.dequeued.push_back(v);
          }
          out.pending = ThreadOutcome::Pending::kNone;
        }
      } catch (const pmem::SimulatedCrash&) {
        out.crashed = true;  // volatile state of the op in flight is lost
      }
    });
  }
  for (auto& w : workers) w.join();
  points.disarm();
  return outcomes;
}

}  // namespace dssq::harness
