// InterleavingExplorer — stateless model checking of persistence-step
// interleavings.
//
// The crash-point instrumentation that powers the crash sweeps doubles as
// a set of *scheduling* points: between two consecutive points an
// algorithm executes a bounded burst of instructions (typically one
// store/CAS plus its flush).  The explorer serializes threads so that
// exactly one runs at a time, preempting only at points, and then
// enumerates ALL schedules — every interleaving of point-delimited steps —
// by depth-first search over the scheduling decisions.  Each complete
// schedule's outcome is handed to a user check (typically: record the
// history and run the strict-linearizability checker).
//
// What this buys over stress testing: determinism and exhaustiveness at
// step granularity.  A bug that needs a precise interleaving of, say, the
// link CAS of one enqueue between another thread's pred-save and claim
// CAS will be found on every run, not with luck.  The granularity caveat:
// instructions *between* two points of one thread execute atomically
// under this scheduler, so races finer than the instrumentation are out
// of scope here (the multi-threaded storm tests keep covering those).
//
// Scenarios are kept small on purpose: the schedule count is
// combinatorial (two threads with s1/s2 steps -> C(s1+s2, s1) schedules).
// `max_runs` bounds the exploration; hitting the bound is reported so a
// test can fail loudly rather than silently under-explore.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "pmem/crash.hpp"

namespace dssq::harness {

class InterleavingExplorer {
 public:
  struct Stats {
    std::size_t runs = 0;           // complete schedules explored
    bool exhausted = true;          // false if max_runs cut the search
    std::size_t max_steps_seen = 0; // longest schedule
  };

  /// One run's world: the explorer constructs a fresh world per schedule.
  /// `Body(world, tid)` runs thread tid's operations; `Check(world, run)`
  /// validates the final state of a completed schedule (throw or
  /// ADD_FAILURE inside it to fail the test).
  struct RunHandle {
    const std::vector<int>& schedule;
  };

  explicit InterleavingExplorer(std::size_t threads,
                                std::size_t max_runs = 20'000,
                                std::size_t max_steps_per_run = 4'000)
      : threads_(threads),
        max_runs_(max_runs),
        max_steps_per_run_(max_steps_per_run) {}

  /// Run ONE truncated schedule: execute exactly `prefix` scheduling
  /// decisions, then kill every thread at its next point (the system-wide
  /// crash, placed at an exact position within an exact interleaving) and
  /// hand the world to `after_crash` for pool-crash/recovery/verification.
  /// Composes with explore(): enumerate schedules first, then sweep the
  /// crash through every position of interesting schedules.
  template <class MakeWorld, class Body, class AfterCrash>
  void run_truncated(const std::vector<int>& prefix, MakeWorld&& make_world,
                     Body&& body, AfterCrash&& after_crash) {
    RunTrace trace;
    auto no_check = [](auto&, const RunHandle&) {};
    auto world = run_one(prefix, make_world, body, no_check, trace,
                         /*stop_after_prefix=*/true);
    after_crash(*world);
  }

  /// Explore all schedules.  `make_world` returns a world whose
  /// CrashPoints instance is accessible; the explorer installs its hook
  /// into the CrashPoints you pass it via the factory's out-parameter.
  template <class MakeWorld, class Body, class Check>
  Stats explore(MakeWorld&& make_world, Body&& body, Check&& check) {
    Stats stats;
    // DFS over schedule prefixes.  Each run returns the concrete decision
    // sequence and, per decision, the set of enabled threads; unexplored
    // alternatives become new prefixes.
    std::vector<std::vector<int>> stack;
    stack.push_back({});
    while (!stack.empty()) {
      if (stats.runs >= max_runs_) {
        stats.exhausted = false;
        break;
      }
      const std::vector<int> prefix = std::move(stack.back());
      stack.pop_back();

      RunTrace trace;
      run_one(prefix, make_world, body, check, trace,
              /*stop_after_prefix=*/false);
      ++stats.runs;
      stats.max_steps_seen =
          std::max(stats.max_steps_seen, trace.choices.size());

      // Branch: for every decision at or after the prefix, queue the
      // not-taken enabled alternatives.
      for (std::size_t i = prefix.size(); i < trace.choices.size(); ++i) {
        for (const int alt : trace.enabled[i]) {
          if (alt == trace.choices[i]) continue;
          std::vector<int> next(trace.choices.begin(),
                                trace.choices.begin() +
                                    static_cast<std::ptrdiff_t>(i));
          next.push_back(alt);
          stack.push_back(std::move(next));
        }
      }
    }
    return stats;
  }

 private:
  struct RunTrace {
    std::vector<int> choices;
    std::vector<std::vector<int>> enabled;
  };

  enum class ThreadState { kRunning, kParked, kDone };

  struct SharedState {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<ThreadState> state;
    std::vector<bool> granted;
    bool abort = false;
  };

  template <class MakeWorld, class Body, class Check>
  auto run_one(const std::vector<int>& prefix, MakeWorld& make_world,
               Body& body, Check& check, RunTrace& trace,
               bool stop_after_prefix) {
    auto world = make_world();
    pmem::CrashPoints& points = world->points();

    SharedState sh;
    sh.state.assign(threads_, ThreadState::kRunning);
    sh.granted.assign(threads_, false);

    // The scheduler hook: park until granted.  Threads identify
    // themselves via a thread_local id set in the worker lambda.
    // Scheduling happens at ALGORITHM-level points only: the low-level
    // pmem:flush / pmem:fence points fire several times per algorithm
    // step and would blow the schedule count combinatorially without
    // adding meaningfully distinct interleavings (they bracket the same
    // store the adjacent algorithm point brackets).
    points.set_hook([&sh](const char* label) {
      if (std::strncmp(label, "pmem:", 5) == 0) return;
      const int tid = tl_tid();
      std::unique_lock lock(sh.mu);
      sh.state[static_cast<std::size_t>(tid)] = ThreadState::kParked;
      sh.cv.notify_all();
      sh.cv.wait(lock, [&] {
        return sh.granted[static_cast<std::size_t>(tid)] || sh.abort;
      });
      if (sh.abort) throw pmem::SimulatedCrash{"explorer:abort"};
      sh.granted[static_cast<std::size_t>(tid)] = false;
      sh.state[static_cast<std::size_t>(tid)] = ThreadState::kRunning;
      sh.cv.notify_all();  // the scheduler waits for grant consumption
    });

    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads_; ++t) {
      workers.emplace_back([&, t] {
        tl_tid() = static_cast<int>(t);
        try {
          // Every thread parks once before its first step so the
          // scheduler controls execution from the very beginning.
          points.point("explorer:start");
          body(*world, t);
        } catch (const pmem::SimulatedCrash&) {
        }
        std::lock_guard lock(sh.mu);
        sh.state[t] = ThreadState::kDone;
        sh.cv.notify_all();
      });
    }

    // Scheduler loop.
    std::size_t decision = 0;
    {
      std::unique_lock lock(sh.mu);
      for (;;) {
        // Wait until no thread is running (all parked or done).
        sh.cv.wait(lock, [&] {
          for (const auto s : sh.state) {
            if (s == ThreadState::kRunning) return false;
          }
          return true;
        });
        std::vector<int> enabled;
        for (std::size_t t = 0; t < threads_; ++t) {
          if (sh.state[t] == ThreadState::kParked) {
            enabled.push_back(static_cast<int>(t));
          }
        }
        if (enabled.empty()) break;  // all done
        if (stop_after_prefix && decision >= prefix.size()) {
          // The crash strikes here: every thread dies at its next point.
          sh.abort = true;
          sh.cv.notify_all();
          break;
        }
        if (decision >= max_steps_per_run_) {
          sh.abort = true;
          sh.cv.notify_all();
          break;
        }
        int choice = enabled.front();
        if (decision < prefix.size()) {
          choice = prefix[decision];
          bool ok = false;
          for (const int e : enabled) ok |= e == choice;
          if (!ok) {
            // The prefix diverged (should not happen with deterministic
            // steps); fall back to the default choice.
            choice = enabled.front();
          }
        }
        trace.choices.push_back(choice);
        trace.enabled.push_back(std::move(enabled));
        ++decision;
        sh.granted[static_cast<std::size_t>(choice)] = true;
        sh.cv.notify_all();
        // Wait until the grantee consumes the grant (otherwise the main
        // wait predicate can observe it still parked and re-grant).
        sh.cv.wait(lock, [&] {
          return !sh.granted[static_cast<std::size_t>(choice)];
        });
      }
    }
    for (auto& w : workers) w.join();
    points.set_hook(nullptr);
    if (!sh.abort) {
      check(*world, RunHandle{trace.choices});
    } else if (!stop_after_prefix) {
      throw std::runtime_error(
          "InterleavingExplorer: step budget exceeded — scenario too large "
          "or a step spins without reaching a crash point");
    }
    // stop_after_prefix aborts are the deliberately placed crash.
    return world;
  }

  static int& tl_tid() {
    thread_local int tid = -1;
    return tid;
  }

  std::size_t threads_;
  std::size_t max_runs_;
  std::size_t max_steps_per_run_;
};

}  // namespace dssq::harness
