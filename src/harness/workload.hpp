// Throughput workload driver — the paper's Section 4 measurement loop.
//
// "In each experiment, the queue is initialized with 16 queue nodes, and
// each thread executes alternating pairs of enqueue and dequeue operations
// for 30 seconds.  Each point plotted ... is the mean throughput value
// (millions of operations per second) computed over a sample of ten runs."
//
// Durations and repetitions are configurable (and default far below the
// paper's so the whole figure regenerates in seconds); the structure —
// seeded queue, alternating pairs, mean-of-samples with CoV reporting —
// matches the paper.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/flight_recorder.hpp"
#include "common/stats.hpp"
#include "queues/types.hpp"

namespace dssq::harness {

struct WorkloadConfig {
  std::size_t threads = 1;
  std::chrono::milliseconds duration{200};
  std::chrono::milliseconds warmup{20};
  std::size_t initial_items = 16;  // the paper's 16 seed nodes
  std::size_t repetitions = 3;     // the paper uses 10
};

struct WorkloadResult {
  double mean_mops = 0.0;
  double cov = 0.0;  // sample stddev / mean (paper reports < 2%)
  Stats samples;
};

/// Run alternating enqueue/dequeue pairs on `adapter` from `threads`
/// threads for the configured duration; returns throughput statistics over
/// the configured repetitions.  The adapter must be thread-safe and accept
/// tids in [0, threads).
template <class Adapter>
WorkloadResult run_throughput(Adapter adapter, const WorkloadConfig& cfg) {
  WorkloadResult result;
  for (std::size_t rep = 0; rep < cfg.repetitions; ++rep) {
    // Phase control: 0 = warmup, 1 = measure, 2 = stop.
    std::atomic<int> phase{0};
    std::atomic<std::uint64_t> total_ops{0};

    auto body = [&](std::size_t tid) {
      // One recorder ring per paper tid (no-op when none is installed).
      trace::ThreadRing ring(tid);
      queues::Value v = static_cast<queues::Value>(tid) * 1'000'000;
      std::uint64_t ops = 0;
      int seen = 0;
      while (seen < 2) {
        adapter.enqueue(tid, v++);
        (void)adapter.dequeue(tid);
        const int p = phase.load(std::memory_order_relaxed);
        if (p != seen) {
          if (p == 1) ops = 0;  // measurement starts now
          seen = p;
        }
        ops += 2;
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    };

    std::vector<std::thread> workers;
    workers.reserve(cfg.threads);
    for (std::size_t t = 0; t < cfg.threads; ++t) {
      workers.emplace_back(body, t);
    }
    std::this_thread::sleep_for(cfg.warmup);
    phase.store(1, std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(cfg.duration);
    phase.store(2, std::memory_order_relaxed);
    for (auto& w : workers) w.join();
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const double mops =
        static_cast<double>(total_ops.load()) / elapsed / 1e6;
    result.samples.add(mops);
  }
  result.mean_mops = result.samples.mean();
  result.cov = result.samples.coeff_of_variation();
  return result;
}

/// Seed the queue with the paper's initial 16 (configurable) items.
template <class Adapter>
void seed_queue(Adapter adapter, std::size_t items) {
  for (std::size_t i = 0; i < items; ++i) {
    adapter.enqueue(0, static_cast<queues::Value>(i) + 1);
  }
}

}  // namespace dssq::harness
