// Fork-based crash-restart harness: real process death, real recovery.
//
// The in-process storms (crash_harness.hpp) validate the algorithms under a
// *simulated* persistence adversary.  This harness removes the simulation:
// a child process runs a detectable-queue workload against a PersistentHeap
// (file-backed, fixed base) and is SIGKILLed mid-operation; a fresh process
// re-maps the file, replays the attach constructors, runs Figure-6
// recovery, and verifies — so the bytes being recovered are exactly what
// the kernel's page cache kept, not what a shadow pool decided to keep.
//
// Three pieces:
//   KillSwitch — a CrashHook that counts persistence/crash points and, at
//     a randomized countdown, SIGKILLs the process.  SIGKILL is the
//     harshest crash a process can model: no destructors, no atexit, no
//     final flushes.
//   Oracle — a persisted per-thread operation log living in the SAME heap
//     as the queue, with its own crash-consistent append protocol
//     (entry persisted before the op starts, completion persisted after),
//     so the verifying process knows what each thread was doing at death.
//   run_in_child / verify_exactly_once — fork plumbing and the
//     exactly-once multiset check (enqueued == dequeued + remaining),
//     including settling each crashed thread's pending op from resolve().
#pragma once

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cacheline.hpp"
#include "common/flight_recorder.hpp"
#include "dss/session.hpp"
#include "pmem/node_arena.hpp"
#include "pmem/persistent_heap.hpp"
#include "queues/types.hpp"

namespace dssq::harness {

/// CrashHook implementation that SIGKILLs the current process at the Nth
/// crash point it observes (persistence primitives and dss:* algorithm
/// points alike).  Disarmed, it costs one relaxed load per point.
class KillSwitch {
 public:
  /// Die at the `countdown`-th observed point (1 = the very next one).
  void arm(std::int64_t countdown) noexcept {
    remaining_.store(countdown, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }
  void disarm() noexcept { armed_.store(false, std::memory_order_release); }

  /// The CrashHook adapter: pass &kill_switch as the state pointer.
  static void hook(void* state, const char* label) noexcept {
    auto* self = static_cast<KillSwitch*>(state);
    if (!self->armed_.load(std::memory_order_acquire)) return;
    if (self->remaining_.fetch_sub(1, std::memory_order_acq_rel) <= 1) {
      // Leave the fatal crash point as this incarnation's final flight-
      // recorder record.  SIGKILL does not lose retired stores — the dirty
      // pages stay in the page cache — so the forensic timeline ends at
      // exactly the label the process died on.
      trace::crash_point_armed(label);
      ::kill(::getpid(), SIGKILL);
    }
  }

 private:
  std::atomic<std::int64_t> remaining_{0};
  std::atomic<bool> armed_{false};
};

/// Persisted per-thread operation log.  Lives in the heap via positional
/// allocation (construct it at the same point of the allocation sequence
/// in every process); needs NO create/attach distinction because a freshly
/// created heap is all-zeros and zero is the log's empty state.
///
/// Append protocol (all within one thread's private slots):
///   begin:    entry[completed] = {op, arg, done=0}; persist(entry)
///   complete: entry.result/.done = 1;  persist(entry);
///             completed += 1;          persist(slot)
/// A crash between the two completion persists leaves a done entry above
/// `completed`; the constructor repairs the count (idempotent).  A crash
/// after begin leaves a pending entry that the verifier settles from
/// resolve() — see verify_exactly_once.
class Oracle {
 public:
  static constexpr std::uint64_t kOpEnqueue = 1;
  static constexpr std::uint64_t kOpDequeue = 2;

  struct alignas(kCacheLineSize) Entry {
    std::uint64_t op = 0;  // 0 = never used
    queues::Value arg = 0;
    queues::Value result = 0;
    std::uint64_t done = 0;
  };
  struct alignas(kCacheLineSize) Slot {
    std::uint64_t completed = 0;
    std::uint64_t seq = 0;  // enqueue values drawn, across all generations
  };

  /// Root descriptor for multi-process adoption (published in the heap's
  /// named directory alongside the queue's).
  struct alignas(kCacheLineSize) Root {
    static constexpr std::uint64_t kMagic = 0x44535351'4F52434CULL;  // ORCL
    std::uint64_t magic = 0;
    std::uint64_t threads = 0;
    std::uint64_t capacity = 0;
    std::uint64_t slots_addr = 0;
    std::uint64_t entries_addr = 0;
    std::uint64_t reserved[3] = {};
  };
  static_assert(sizeof(Root) == kCacheLineSize);

  Oracle(pmem::PersistentHeap& heap, std::size_t threads, std::size_t capacity)
      : heap_(&heap), threads_(threads), capacity_(capacity) {
    slots_ = static_cast<Slot*>(
        heap.raw_alloc(sizeof(Slot) * threads, alignof(Slot)));
    entries_ = static_cast<Entry*>(
        heap.raw_alloc(sizeof(Entry) * threads * capacity, alignof(Entry)));
    // Count repair: a crash between persisting an entry's `done` and the
    // bumped `completed` leaves the count one short.
    for (std::size_t t = 0; t < threads; ++t) repair_slot(t);
  }

  /// Adopt an oracle by root descriptor (multi-process attach).  NO count
  /// repair here: other slots may be live in other processes, and their
  /// counts are theirs to advance.  Call repair_slot(t) for each slot this
  /// process comes to own exclusively (its own lease, or a reclaimed one).
  Oracle(pmem::adopt_t, pmem::PersistentHeap& heap, const Root& root)
      : heap_(&heap),
        threads_(root.threads),
        capacity_(root.capacity) {
    if (root.magic != Root::kMagic || root.threads == 0 ||
        root.capacity == 0 || root.slots_addr == 0 ||
        root.entries_addr == 0) {
      throw std::runtime_error(
          "Oracle: root descriptor is not a valid oracle root");
    }
    slots_ = reinterpret_cast<Slot*>(root.slots_addr);
    entries_ = reinterpret_cast<Entry*>(root.entries_addr);
  }

  /// Build and persist a root descriptor for other processes to adopt.
  Root* make_root() {
    auto* r = static_cast<Root*>(
        heap_->raw_alloc(sizeof(Root), kCacheLineSize));
    r->magic = Root::kMagic;
    r->threads = threads_;
    r->capacity = capacity_;
    r->slots_addr = reinterpret_cast<std::uintptr_t>(slots_);
    r->entries_addr = reinterpret_cast<std::uintptr_t>(entries_);
    heap_->persist(r, sizeof(Root));
    return r;
  }

  /// Repair one slot's completed count (a crash between persisting an
  /// entry's `done` and the bumped count leaves it one short).  Idempotent;
  /// requires exclusive ownership of slot t.
  void repair_slot(std::size_t t) {
    Slot& s = slots_[t];
    while (s.completed < capacity_ && entry(t, s.completed).done == 1) {
      s.completed += 1;
      heap_->persist(&s, sizeof(Slot));
    }
  }

  /// Begin an enqueue: draws a globally unique value ((tid+1)·10⁶ + seq,
  /// seq persisted so values never repeat across crash generations) and
  /// persists the pending entry before the caller touches the queue.
  queues::Value begin_enqueue(std::size_t tid) {
    Slot& s = slots_[tid];
    s.seq += 1;
    heap_->persist(&s, sizeof(Slot));
    const auto v = static_cast<queues::Value>((tid + 1) * 1'000'000 +
                                              s.seq);
    begin(tid, kOpEnqueue, v);
    return v;
  }
  void begin_dequeue(std::size_t tid) { begin(tid, kOpDequeue, 0); }

  void complete_enqueue(std::size_t tid) { complete(tid, queues::kOk); }
  void complete_dequeue(std::size_t tid, queues::Value result) {
    complete(tid, result);
  }

  /// The thread's pending (begun, not completed) entry, or nullptr.
  Entry* pending(std::size_t tid) {
    Entry& e = entry(tid, slots_[tid].completed);
    return (e.op != 0 && e.done == 0) ? &e : nullptr;
  }

  /// Settle a pending entry after recovery.  `took_effect` records it as a
  /// completed op with `result`; otherwise the entry is erased (the op
  /// provably never happened; its value, if any, is abandoned — seq is
  /// never reused, so no later value collides with it).
  void settle(std::size_t tid, bool took_effect, queues::Value result) {
    Slot& s = slots_[tid];
    Entry& e = entry(tid, s.completed);
    if (took_effect) {
      e.result = result;
      e.done = 1;
      heap_->persist(&e, sizeof(Entry));
      s.completed += 1;
      heap_->persist(&s, sizeof(Slot));
    } else {
      e = Entry{};
      heap_->persist(&e, sizeof(Entry));
    }
  }

  template <class F>
  void for_each_completed(std::size_t tid, F&& visit) {
    for (std::uint64_t i = 0; i < slots_[tid].completed; ++i) {
      visit(entry(tid, i));
    }
  }

  std::size_t threads() const noexcept { return threads_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t completed(std::size_t tid) const noexcept {
    return slots_[tid].completed;
  }

 private:
  Entry& entry(std::size_t tid, std::uint64_t i) noexcept {
    return entries_[tid * capacity_ + i];
  }

  void begin(std::size_t tid, std::uint64_t op, queues::Value arg) {
    Entry& e = entry(tid, slots_[tid].completed);
    e.op = op;
    e.arg = arg;
    e.result = 0;
    e.done = 0;
    heap_->persist(&e, sizeof(Entry));
  }

  void complete(std::size_t tid, queues::Value result) {
    Slot& s = slots_[tid];
    Entry& e = entry(tid, s.completed);
    e.result = result;
    e.done = 1;
    heap_->persist(&e, sizeof(Entry));
    s.completed += 1;
    heap_->persist(&s, sizeof(Slot));
  }

  pmem::PersistentHeap* heap_;
  std::size_t threads_;
  std::size_t capacity_;
  Slot* slots_ = nullptr;
  Entry* entries_ = nullptr;
};

}  // namespace dssq::harness

namespace dssq::dss {

/// Session::open<harness::Oracle>(name): adopt the persisted op log by its
/// published root.  Validation beyond the adopt constructor's own checks
/// is unnecessary — it refuses corrupt roots itself.
template <>
struct SessionTraits<harness::Oracle> {
  using Root = harness::Oracle::Root;
  static void validate(const Root&, const std::string&) {}
  static harness::Oracle adopt(Session& s, const Root& r) {
    return harness::Oracle(pmem::adopt, s.heap(), r);
  }
};

}  // namespace dssq::dss

namespace dssq::harness {

/// How a forked child ended.
struct ChildResult {
  bool exited = false;    // normal _exit
  int exit_code = -1;     // valid when exited
  bool signaled = false;  // killed by a signal
  int term_signal = 0;    // valid when signaled

  bool clean() const noexcept { return exited && exit_code == 0; }
  bool sigkilled() const noexcept {
    return signaled && term_signal == SIGKILL;
  }
};

/// Fork, run `fn` in the child (its return value becomes the exit code —
/// reached only if the KillSwitch never fires), reap, decode.  stdio is
/// flushed first so the child cannot replay buffered parent output.
template <class F>
ChildResult run_in_child(F&& fn) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ChildResult r;
    r.exited = true;
    r.exit_code = 127;  // fork failure surfaces as a dirty exit
    return r;
  }
  if (pid == 0) {
    int rc = 125;
    try {
      rc = fn();
    } catch (...) {
      rc = 126;
    }
    ::_exit(rc);  // never run parent-inherited atexit/destructors
  }
  int status = 0;
  ChildResult r;
  if (::waitpid(pid, &status, 0) != pid) return r;
  if (WIFEXITED(status)) {
    r.exited = true;
    r.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    r.signaled = true;
    r.term_signal = WTERMSIG(status);
  }
  return r;
}

/// Result of the post-recovery audit.
struct VerifyResult {
  bool ok = true;
  std::size_t pendings_settled = 0;  // crashed ops resolved to "took effect"
  std::size_t pendings_lost = 0;     // crashed ops resolved to "no effect"
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t remaining = 0;
  std::string error;  // human-readable first violation
};

/// True when slot t's COMPLETED log already accounts for dequeuing `v`.
/// Sound as a stale-record test without any global view: values are
/// globally unique, X[t] is written only by slot t, and a dequeue record
/// in X[t] names a node marked with tid t — so if the record is stale
/// (prep's X persist never landed), the op it describes is necessarily
/// one of THIS slot's previously completed dequeues.
inline bool already_dequeued(Oracle& oracle, std::size_t t,
                             queues::Value v) {
  bool found = false;
  oracle.for_each_completed(t, [&](const Oracle::Entry& e) {
    if (e.op == Oracle::kOpDequeue && e.result == v) found = true;
  });
  return found;
}

/// Settle slot t's pending (begun, never completed) oracle entry against
/// resolve() — the step shared by the quiescent verifier and by mid-storm
/// lease reclamation (slot_lease.hpp's settle callback).  Preconditions:
/// the caller exclusively owns slot t, oracle.repair_slot(t) has run, and
/// X[t] has been repaired (queue.recover_independent(t), or a full
/// recover()).  Returns true if there was a pending entry and it resolved
/// to "took effect".
///
/// resolve() is the system under test; its answers are cross-checked, not
/// believed — a claimed enqueue must match the pending entry's op AND
/// argument, and a claimed dequeue result must not already be accounted
/// for in the slot's own completed log (the stale-X-record case; see
/// docs/algorithms.md on stale-record attribution).
template <class Q>
bool settle_pending(Q& queue, Oracle& oracle, std::size_t t,
                    std::size_t* settled = nullptr,
                    std::size_t* lost = nullptr) {
  Oracle::Entry* p = oracle.pending(t);
  if (p == nullptr) return false;
  const queues::Resolved r = queue.resolve(t);
  bool effect;
  queues::Value result = 0;
  if (p->op == Oracle::kOpEnqueue) {
    effect = r.op == dss::ResolvedOp::kEnqueue && r.arg == p->arg &&
             r.took_effect();
    result = queues::kOk;
  } else {
    effect = r.op == dss::ResolvedOp::kDequeue && r.took_effect();
    if (effect && *r.response != queues::kEmpty &&
        already_dequeued(oracle, t, *r.response)) {
      effect = false;  // stale record: that dequeue already completed
    }
    if (effect) result = *r.response;
  }
  if (effect) {
    if (settled != nullptr) ++*settled;
  } else {
    if (lost != nullptr) ++*lost;
  }
  oracle.settle(t, effect, result);
  return effect;
}

/// Exactly-once audit of a freshly recovered queue against the persisted
/// oracle.  Precondition: quiescence and queue.recover() already ran (the
/// resolve() calls below consult the repaired X entries).  Settles every
/// pending oracle entry as a side effect, leaving the log consistent for
/// the next crash generation.
///
/// Trust model: see settle_pending — every pending entry is settled through
/// the same cross-checked path the mid-storm lease reclaimer uses (the
/// stale-dequeue test is per-slot there, which is equivalent to the global
/// test: a stale X record always describes the SAME slot's previous
/// completed op, and values are globally unique).  The final multiset
/// identity (enqueued == dequeued ⊎ remaining) would expose any falsely
/// settled op as a duplicate or a loss.
template <class Q>
VerifyResult verify_exactly_once(Q& queue, Oracle& oracle) {
  VerifyResult vr;
  for (std::size_t t = 0; t < oracle.threads(); ++t) {
    settle_pending(queue, oracle, t, &vr.pendings_settled, &vr.pendings_lost);
  }
  // With every log entry now completed, the audit is a pure fold.
  std::map<queues::Value, std::uint64_t> enq;  // value → multiplicity
  std::map<queues::Value, std::uint64_t> deq;
  for (std::size_t t = 0; t < oracle.threads(); ++t) {
    oracle.for_each_completed(t, [&](const Oracle::Entry& e) {
      if (e.op == Oracle::kOpEnqueue) {
        enq[e.arg] += 1;
      } else if (e.op == Oracle::kOpDequeue && e.result != queues::kEmpty) {
        deq[e.result] += 1;
      }
    });
  }
  std::map<queues::Value, std::uint64_t> left;
  {
    std::vector<queues::Value> rest;
    queue.drain_to(rest);
    for (const queues::Value v : rest) left[v] += 1;
  }
  for (const auto& [v, n] : enq) vr.enqueued += n;
  for (const auto& [v, n] : deq) vr.dequeued += n;
  for (const auto& [v, n] : left) vr.remaining += n;

  // enqueued == dequeued ⊎ remaining, value by value.
  auto complain = [&vr](queues::Value v, std::uint64_t in, std::uint64_t out) {
    vr.ok = false;
    if (vr.error.empty()) {
      vr.error = "value " + std::to_string(v) + ": enqueued " +
                 std::to_string(in) + "x, accounted " + std::to_string(out) +
                 "x";
    }
  };
  for (const auto& [v, n] : enq) {
    const std::uint64_t out =
        (deq.contains(v) ? deq.at(v) : 0) + (left.contains(v) ? left.at(v) : 0);
    if (out != n) complain(v, n, out);
  }
  for (const auto& [v, n] : deq) {
    if (!enq.contains(v)) complain(v, 0, n);
  }
  for (const auto& [v, n] : left) {
    if (!enq.contains(v)) complain(v, 0, n);
  }
  return vr;
}

}  // namespace dssq::harness
