#include "harness/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dssq::harness {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong cell count");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = headers_.size() > 0 ? 2 * (headers_.size() - 1) : 0;
  for (const auto w : widths) total += w;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace dssq::harness
