// Epoch-based reclamation (EBR), Fraser-style.
//
// The paper returns dequeued nodes to per-thread free pools "using
// epoch-based reclamation (EBR) [17]", borrowing the implementation from
// microsoft/pmwcas.  We implement the classic three-epoch scheme from
// scratch:
//
//   * a global epoch counter E;
//   * each thread, while inside a critical region, publishes the epoch it
//     observed on entry (its reservation);
//   * retiring a node stamps it with the current epoch; a node may be
//     reused once the global epoch has advanced twice past its stamp,
//     because by then no thread can still hold a reference from before the
//     retirement;
//   * the epoch advances only when every thread currently inside a region
//     has caught up with it.
//
// The callback on reclamation (typically NodeArena::release) runs on the
// retiring thread.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/cacheline.hpp"

namespace dssq::ebr {

class EpochManager {
 public:
  /// `threads` is the fixed number of participating identities (0..n-1).
  explicit EpochManager(std::size_t threads);

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Enter a critical region: publish the current epoch as this thread's
  /// reservation.  Regions must not nest.
  void enter(std::size_t tid) noexcept;

  /// Leave the critical region.
  void exit(std::size_t tid) noexcept;

  /// Retire `node`; `reclaim` runs once no reader can still see it.
  /// Must be called inside the caller's own critical region.
  void retire(std::size_t tid, void* node, std::function<void(void*)> reclaim);

  /// Attempt to advance the global epoch and drain this thread's limbo
  /// lists.  Called automatically by retire() every kDrainInterval
  /// retirements; exposed for tests and quiescent points.
  void try_advance_and_drain(std::size_t tid);

  /// Reclaim everything immediately.  Requires external quiescence (no
  /// thread inside a region) — used at shutdown.
  void drain_all_unsafe();

  /// Drop all limbo entries WITHOUT running their reclaim callbacks.  Used
  /// after a simulated crash, where limbo'd nodes are instead recovered by
  /// the data structure's own free-list rebuild (running the callbacks too
  /// would double-release them).
  void drain_all_unsafe_without_reclaiming();

  /// Install a hook that runs once per drain batch, on the draining thread,
  /// before the first node of the batch is reclaimed.  The persistent
  /// queues use this for their persist-before-reuse invariant (persist the
  /// head pointer once, amortized over the whole batch).
  void set_pre_reclaim_hook(std::function<void(std::size_t tid)> hook) {
    pre_reclaim_hook_ = std::move(hook);
  }

  std::uint64_t global_epoch() const noexcept {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// Nodes waiting in limbo (diagnostics / leak tests).
  std::size_t limbo_size() const;

 private:
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};
  static constexpr std::size_t kDrainInterval = 64;

  struct alignas(kCacheLineSize) Reservation {
    std::atomic<std::uint64_t> epoch{kIdle};
  };

  struct Retired {
    void* node;
    std::uint64_t epoch;
    std::function<void(void*)> reclaim;
  };

  struct alignas(kCacheLineSize) PerThread {
    std::vector<Retired> limbo;
    std::size_t since_drain = 0;
  };

  bool all_threads_caught_up(std::uint64_t epoch) const noexcept;
  void drain(std::size_t tid, std::uint64_t safe_before);

  std::atomic<std::uint64_t> global_epoch_{1};
  std::vector<Reservation> reservations_;
  std::vector<PerThread> per_thread_;
  std::function<void(std::size_t)> pre_reclaim_hook_;
};

/// RAII critical-region guard.
class EpochGuard {
 public:
  EpochGuard(EpochManager& mgr, std::size_t tid) noexcept
      : mgr_(&mgr), tid_(tid) {
    mgr_->enter(tid_);
  }
  ~EpochGuard() { mgr_->exit(tid_); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* mgr_;
  std::size_t tid_;
};

}  // namespace dssq::ebr
