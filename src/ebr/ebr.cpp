#include "ebr/ebr.hpp"

#include <stdexcept>
#include <utility>

#include "common/metrics.hpp"

namespace dssq::ebr {

EpochManager::EpochManager(std::size_t threads)
    : reservations_(threads), per_thread_(threads) {
  if (threads == 0) throw std::invalid_argument("EpochManager: zero threads");
}

void EpochManager::enter(std::size_t tid) noexcept {
  assert(tid < reservations_.size());
  assert(reservations_[tid].epoch.load(std::memory_order_relaxed) == kIdle &&
         "EBR regions must not nest");
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  reservations_[tid].epoch.store(e, std::memory_order_seq_cst);
}

void EpochManager::exit(std::size_t tid) noexcept {
  assert(tid < reservations_.size());
  reservations_[tid].epoch.store(kIdle, std::memory_order_release);
}

void EpochManager::retire(std::size_t tid, void* node,
                          std::function<void(void*)> reclaim) {
  assert(tid < per_thread_.size());
  PerThread& pt = per_thread_[tid];
  pt.limbo.push_back(Retired{node, global_epoch_.load(std::memory_order_acquire),
                             std::move(reclaim)});
  metrics::add(metrics::Counter::kEbrRetired);
  if (++pt.since_drain >= kDrainInterval) {
    pt.since_drain = 0;
    try_advance_and_drain(tid);
  }
}

bool EpochManager::all_threads_caught_up(std::uint64_t epoch) const noexcept {
  for (const auto& r : reservations_) {
    const std::uint64_t e = r.epoch.load(std::memory_order_seq_cst);
    if (e != kIdle && e < epoch) return false;
  }
  return true;
}

void EpochManager::try_advance_and_drain(std::size_t tid) {
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  if (all_threads_caught_up(e)) {
    // A failed CAS means another thread advanced it — equally good.
    std::uint64_t expected = e;
    global_epoch_.compare_exchange_strong(expected, e + 1,
                                          std::memory_order_acq_rel);
  }
  // Nodes retired at epoch r are safe once global >= r + 2: every region
  // active at retirement (reservation <= r) must have exited before the
  // epoch could advance past r + 1.
  const std::uint64_t now = global_epoch_.load(std::memory_order_acquire);
  if (now >= 2) drain(tid, now - 1);
}

void EpochManager::drain(std::size_t tid, std::uint64_t safe_before) {
  PerThread& pt = per_thread_[tid];
  std::size_t kept = 0;
  bool hook_ran = false;
  for (std::size_t i = 0; i < pt.limbo.size(); ++i) {
    Retired& r = pt.limbo[i];
    if (r.epoch < safe_before) {
      if (!hook_ran && pre_reclaim_hook_) {
        pre_reclaim_hook_(tid);
        hook_ran = true;
      }
      r.reclaim(r.node);
      metrics::add(metrics::Counter::kEbrReclaimed);
    } else {
      if (kept != i) pt.limbo[kept] = std::move(r);
      ++kept;
    }
  }
  pt.limbo.resize(kept);
}

void EpochManager::drain_all_unsafe() {
  for (std::size_t tid = 0; tid < per_thread_.size(); ++tid) {
    PerThread& pt = per_thread_[tid];
    if (!pt.limbo.empty() && pre_reclaim_hook_) pre_reclaim_hook_(tid);
    for (Retired& r : pt.limbo) r.reclaim(r.node);
    metrics::add(metrics::Counter::kEbrReclaimed, pt.limbo.size());
    pt.limbo.clear();
    pt.since_drain = 0;
  }
}

void EpochManager::drain_all_unsafe_without_reclaiming() {
  for (auto& pt : per_thread_) {
    pt.limbo.clear();
    pt.since_drain = 0;
  }
}

std::size_t EpochManager::limbo_size() const {
  std::size_t total = 0;
  for (const auto& pt : per_thread_) total += pt.limbo.size();
  return total;
}

}  // namespace dssq::ebr
