// Sequential specifications.
//
// Section 2.1 of the paper models an object type T as a tuple
// (S, s0, OP, R, δ, ρ): abstract states, an initial state, operations,
// responses, a state-transition function and a response function (both
// taking the calling process's ID, because detectable types encode
// per-process recovery state).
//
// In code, a sequential specification is any type satisfying the
// `SequentialSpec` concept below.  δ and ρ are fused into a single
// `apply(State&, Op, pid) -> Resp` (they are always consulted together),
// and `enabled` exposes operation preconditions for the model and the
// linearizability checker.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>

namespace dssq::dss {

/// Process IDs within the model (the paper's Π).
using Pid = int;

// clang-format off
template <class S>
concept SequentialSpec = requires(typename S::State& state,
                                  const typename S::State& cstate,
                                  const typename S::Op& op,
                                  Pid pid) {
  typename S::State;
  typename S::Op;
  typename S::Resp;
  { S::initial() } -> std::same_as<typename S::State>;
  { S::enabled(cstate, op, pid) } -> std::same_as<bool>;
  { S::apply(state, op, pid) } -> std::same_as<typename S::Resp>;
  { S::hash(cstate) } -> std::same_as<std::uint64_t>;
  { S::to_string(op) } -> std::same_as<std::string>;
  { S::resp_to_string(std::declval<const typename S::Resp&>()) }
      -> std::same_as<std::string>;
  requires std::equality_comparable<typename S::Resp>;
  requires std::equality_comparable<typename S::Op>;
};
// clang-format on

}  // namespace dssq::dss
