// A wait-free recoverable universal construction of D⟨T⟩.
//
// Section 2.2: "a wait-free recoverable implementation of D⟨T⟩ for any
// conventional type T can be obtained in the shared memory model using
// Herlihy's universal construction, which was shown by Berryhill, Golab,
// and Tripunitara to yield recoverable linearizability ... We believe that
// this construction can be extended easily from the 'private cache' model
// ... to the more general model with volatile cache and explicit
// persistence instructions."  This module is that extension.
//
// Structure (Herlihy 1991, adapted for persistence + DSS detectability):
//
//   * The object is a persistent append-only log of operation nodes,
//     rooted at a sentinel.  Appending to the log (a CAS on the last
//     node's next pointer) is the linearization point of the operation.
//   * Wait-freedom comes from announce-array helping with round-robin
//     priority: position seq+1 in the log preferentially goes to the
//     announcement of thread (seq+1) mod n, so every announced operation
//     is appended within n log positions.
//   * Persistence discipline (the volatile-cache extension): a node is
//     fully persisted before it is announced; every traversal persists a
//     next pointer before acting on what it links to; an appended node's
//     link is persisted before its position number, and the position
//     before the tail hint advances.  Consequently the persisted portion
//     of the log is always a prefix, and a crash truncates the history to
//     a prefix of linearized operations — exactly strict linearizability's
//     requirement that interrupted operations take effect before the crash
//     or not at all.
//   * Detectability follows the DSS queue's pattern: prep-op creates and
//     persists the node and records it in X[t]; resolve checks whether the
//     node acquired a log position (== the operation took effect) and, if
//     so, computes its response by replaying the log prefix (responses are
//     memoized in the nodes, so each position is computed once).
//
// Costs, stated plainly: responses come from replaying the log, amortized
// to O(1) per operation by an incrementally advancing volatile replay
// cache (with a wait-free private-replay fallback when the cache lock is
// contended), but a cold resolve after a crash replays the whole prefix,
// and the log is never reclaimed — the textbook construction's cost
// profile, useful as a universality witness and as a reference
// implementation for any Spec, not as a performance contender (that is
// what the hand-built DSS queue is for).  Measured in bench/micro_universal.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_set>

#include "common/atomic_bytes.hpp"
#include "common/cacheline.hpp"
#include "dss/spec.hpp"
#include "pmem/context.hpp"
#include "pmem/node_arena.hpp"

namespace dssq::dss {

template <SequentialSpec Spec, class Ctx>
class UniversalObject {
 public:
  using Op = typename Spec::Op;
  using Resp = typename Spec::Resp;

  struct ResolveOutput {
    std::optional<Op> op;      // A[t]: the prepared operation, or ⊥
    std::optional<Resp> resp;  // R[t]: its response if it took effect
  };

  UniversalObject(Ctx& ctx, std::size_t max_threads,
                  std::size_t log_capacity_per_thread)
      : ctx_(ctx),
        arena_(ctx, max_threads, log_capacity_per_thread),
        max_threads_(max_threads) {
    root_ = pmem::alloc_object<Node>(ctx_);
    root_->position.store(1, std::memory_order_relaxed);
    ctx_.persist(root_, sizeof(Node));
    tail_hint_ = pmem::alloc_object<PaddedPtr>(ctx_);
    tail_hint_->ptr.store(root_, std::memory_order_relaxed);
    ctx_.persist(tail_hint_, sizeof(PaddedPtr));
    announce_ = pmem::alloc_array<PaddedPtr>(ctx_, max_threads);
    x_ = pmem::alloc_array<PaddedPtr>(ctx_, max_threads);
    ctx_.persist(announce_, sizeof(PaddedPtr) * max_threads);
    ctx_.persist(x_, sizeof(PaddedPtr) * max_threads);
  }

  // ---- DSS interface -------------------------------------------------------

  /// prep-op: create and persist the operation node, record it in X[t].
  void prep(std::size_t tid, const Op& op) {
    // A fresh prep supersedes any previous announcement by this thread
    // (the previous operation was either appended — immortal in the log —
    // or abandoned).
    announce_[tid].ptr.store(nullptr, std::memory_order_release);
    ctx_.persist(&announce_[tid], sizeof(PaddedPtr));
    Node* node = arena_.acquire(tid);
    node->op = op;
    node->invoker = static_cast<Pid>(tid);
    node->next.store(nullptr, std::memory_order_relaxed);
    node->position.store(0, std::memory_order_relaxed);
    node->resp_ready.store(0, std::memory_order_relaxed);
    ctx_.persist(node, sizeof(Node));
    ctx_.crash_point("universal:prep:node-persisted");
    x_[tid].ptr.store(node, std::memory_order_release);
    ctx_.persist(&x_[tid], sizeof(PaddedPtr));
    ctx_.crash_point("universal:prep:announced");
  }

  /// exec-op: append the prepared node (wait-free) and return its response.
  Resp exec(std::size_t tid) {
    Node* mine = x_[tid].ptr.load(std::memory_order_acquire);
    assert(mine != nullptr && "exec without prep (Axiom 2 precondition)");
    if (mine->position.load(std::memory_order_acquire) == 0) {
      announce_[tid].ptr.store(mine, std::memory_order_release);
      ctx_.persist(&announce_[tid], sizeof(PaddedPtr));
      ctx_.crash_point("universal:exec:announced");
      append(mine);
    }
    return response_of(mine);
  }

  /// resolve: did the prepared operation take effect, and with what
  /// response?  Total, idempotent, read-mostly (memoized responses are
  /// persisted as they are first computed).
  ResolveOutput resolve(std::size_t tid) {
    ResolveOutput out;
    Node* mine = x_[tid].ptr.load(std::memory_order_acquire);
    if (mine == nullptr) return out;  // (⊥, ⊥)
    out.op = mine->op;
    if (mine->position.load(std::memory_order_acquire) != 0) {
      out.resp = response_of(mine);
    }
    return out;
  }

  /// Non-detectable operation (Axiom 4): append without touching X.
  Resp apply(std::size_t tid, const Op& op) {
    Node* node = arena_.acquire(tid);
    node->op = op;
    node->invoker = static_cast<Pid>(tid);
    node->next.store(nullptr, std::memory_order_relaxed);
    node->position.store(0, std::memory_order_relaxed);
    node->resp_ready.store(0, std::memory_order_relaxed);
    ctx_.persist(node, sizeof(Node));
    announce_[tid].ptr.store(node, std::memory_order_release);
    ctx_.persist(&announce_[tid], sizeof(PaddedPtr));
    append(node);
    return response_of(node);
  }

  /// Linearizable read of the current abstract state (replays the log).
  typename Spec::State materialize() {
    typename Spec::State state = Spec::initial();
    for (Node* n = next_persisted(root_); n != nullptr;
         n = next_persisted(n)) {
      Spec::apply(state, n->op, n->invoker);
    }
    return state;
  }

  // ---- recovery --------------------------------------------------------------

  /// Centralized post-crash pass.  Quiescence required.  Repairs position
  /// numbers along the surviving log prefix, truncates any node that lost
  /// its link, clears stale announcements (so helpers cannot append a
  /// pre-crash operation AFTER its owner resolved it as not-taken-effect),
  /// and rebuilds the allocator free lists.
  void recover() {
    arena_.reset_volatile_state();
    {
      std::lock_guard lock(cache_mu_);
      cache_upto_ = nullptr;  // the replay cache is volatile: rebuild lazily
    }
    // Repair positions along the surviving prefix.
    Node* last = root_;
    std::uint64_t pos = root_->position.load(std::memory_order_relaxed);
    while (Node* n = last->next.load(std::memory_order_relaxed)) {
      ++pos;
      if (n->position.load(std::memory_order_relaxed) != pos) {
        n->position.store(pos, std::memory_order_relaxed);
        ctx_.persist(&n->position, sizeof(n->position));
      }
      last = n;
    }
    tail_hint_->ptr.store(last, std::memory_order_relaxed);
    ctx_.persist(tail_hint_, sizeof(PaddedPtr));
    // Drop announcements of operations that did not make it into the log.
    for (std::size_t t = 0; t < max_threads_; ++t) {
      Node* a = announce_[t].ptr.load(std::memory_order_relaxed);
      if (a != nullptr && a->position.load(std::memory_order_relaxed) == 0) {
        announce_[t].ptr.store(nullptr, std::memory_order_relaxed);
        ctx_.persist(&announce_[t], sizeof(PaddedPtr));
      }
    }
    // Reclaim nodes that are neither in the log nor referenced by X.
    rebuild_free_lists();
  }

  std::size_t log_length() {
    std::size_t len = 0;
    for (Node* n = root_->next.load(std::memory_order_acquire); n != nullptr;
         n = n->next.load(std::memory_order_acquire)) {
      ++len;
    }
    return len;
  }

  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  struct alignas(kCacheLineSize) Node {
    Op op{};
    Pid invoker = -1;
    std::atomic<Node*> next{nullptr};
    /// 1-based log position; 0 = not (durably) appended.
    std::atomic<std::uint64_t> position{0};
    std::atomic<std::uint32_t> resp_ready{0};
    /// Memoized response.  Accessed only via atomic_{load,store}_object:
    /// concurrent replayers memoize identical bytes (deterministic log),
    /// and the shadow pool snapshots the line during write-back emulation.
    Resp resp{};
  };
  static_assert(std::is_trivially_destructible_v<Op> &&
                    std::is_trivially_destructible_v<Resp>,
                "universal-construction operations live in pmem");

  struct alignas(kCacheLineSize) PaddedPtr {
    std::atomic<Node*> ptr{nullptr};
  };

  /// Follow a next pointer durably: persist the link before acting on it,
  /// so the persisted log is always prefix-closed.
  Node* next_persisted(Node* n) {
    Node* next = n->next.load(std::memory_order_acquire);
    if (next != nullptr) ctx_.persist(&n->next, sizeof(n->next));
    return next;
  }

  /// Wait-free append with round-robin priority helping.
  void append(Node* mine) {
    while (mine->position.load(std::memory_order_acquire) == 0) {
      // Find the current end of the log from the (possibly stale) hint.
      Node* last = tail_hint_->ptr.load(std::memory_order_acquire);
      while (Node* next = next_persisted(last)) {
        finalize_append(last, next);
        last = next;
      }
      // Herlihy's priority rule: log position last->position + 1 belongs
      // first to the announcement of thread (position mod n).
      const std::uint64_t pos =
          last->position.load(std::memory_order_acquire);
      const std::size_t preferred =
          static_cast<std::size_t>((pos + 1) % max_threads_);
      Node* candidate =
          announce_[preferred].ptr.load(std::memory_order_acquire);
      if (candidate == nullptr ||
          candidate->position.load(std::memory_order_acquire) != 0) {
        candidate = mine;
      }
      Node* expected = nullptr;
      last->next.compare_exchange_strong(expected, candidate);
      // Whoever won, drive the append to a durable, position-stamped
      // state before retrying.  The link can only move nullptr -> node, so
      // after the CAS it is always set; persist unconditionally.
      Node* appended = last->next.load(std::memory_order_acquire);
      ctx_.persist(&last->next, sizeof(last->next));
      if (appended != nullptr) {
        ctx_.crash_point("universal:append:linked");
        finalize_append(last, appended);
      }
    }
  }

  void finalize_append(Node* pred, Node* node) {
    const std::uint64_t pos =
        pred->position.load(std::memory_order_acquire) + 1;
    std::uint64_t expected = 0;
    node->position.compare_exchange_strong(expected, pos);
    ctx_.persist(&node->position, sizeof(node->position));
    ctx_.crash_point("universal:append:positioned");
    Node* hint = tail_hint_->ptr.load(std::memory_order_acquire);
    if (hint->position.load(std::memory_order_acquire) < pos) {
      tail_hint_->ptr.compare_exchange_strong(hint, node);
    }
  }

  /// Response of an appended node, memoized in the log (deterministic, so
  /// concurrent memo writers agree).  Fast path: a volatile replay cache
  /// advances incrementally, making steady-state appends O(1) amortized.
  /// If the cache lock is contended, the caller falls back to a private
  /// full replay — the construction stays wait-free.
  Resp response_of(Node* target) {
    if (target->resp_ready.load(std::memory_order_acquire) != 0) {
      return atomic_load_object(&target->resp);
    }
    {
      std::unique_lock lock(cache_mu_, std::try_to_lock);
      if (lock.owns_lock()) return response_via_cache(target);
    }
    typename Spec::State state = Spec::initial();
    for (Node* n = next_persisted(root_); n != nullptr;
         n = next_persisted(n)) {
      const Resp r = Spec::apply(state, n->op, n->invoker);
      memoize(n, r);
      if (n == target) return r;
    }
    assert(false && "response_of: node not reachable in the log");
    return Resp{};
  }

  /// Advance the shared replay cache to `target`.  Caller holds cache_mu_.
  Resp response_via_cache(Node* target) {
    if (cache_upto_ == nullptr) {
      cache_state_ = Spec::initial();
      cache_upto_ = root_;
    }
    // If the target is already covered by the cache, its memo is set
    // (memoization happens as the cache advances).
    if (target->resp_ready.load(std::memory_order_acquire) != 0) {
      return atomic_load_object(&target->resp);
    }
    for (Node* n = next_persisted(cache_upto_); n != nullptr;
         n = next_persisted(n)) {
      const Resp r = Spec::apply(cache_state_, n->op, n->invoker);
      memoize(n, r);
      cache_upto_ = n;
      if (n == target) return r;
    }
    assert(false && "response_via_cache: node not reachable");
    return Resp{};
  }

  void memoize(Node* n, const Resp& r) {
    if (n->resp_ready.load(std::memory_order_acquire) == 0) {
      // Concurrent memoizers replay the same deterministic prefix, so they
      // write identical bytes; word-wise relaxed atomics make the overlap
      // well-defined (resp_ready's release store publishes the result).
      atomic_store_object(&n->resp, r);
      ctx_.flush(&n->resp, sizeof(n->resp));
      n->resp_ready.store(1, std::memory_order_release);
      ctx_.persist(&n->resp_ready, sizeof(n->resp_ready));
    }
  }

  void rebuild_free_lists() {
    // Keep log nodes and X-referenced nodes; everything else returns to
    // its owner's pool.
    std::unordered_set<const Node*> keep;
    keep.insert(root_);
    for (Node* n = root_->next.load(std::memory_order_relaxed); n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      keep.insert(n);
    }
    for (std::size_t t = 0; t < max_threads_; ++t) {
      if (const Node* xn = x_[t].ptr.load(std::memory_order_relaxed)) {
        keep.insert(xn);
      }
    }
    arena_.for_each_allocated([&](std::size_t, Node* n) {
      if (!keep.contains(n)) arena_.release_to_owner(n);
    });
  }

  Ctx& ctx_;
  pmem::NodeArena<Node> arena_;
  std::size_t max_threads_;
  Node* root_ = nullptr;
  PaddedPtr* tail_hint_ = nullptr;
  PaddedPtr* announce_ = nullptr;
  PaddedPtr* x_ = nullptr;
  // Volatile replay cache (response_of fast path); reset by recover().
  std::mutex cache_mu_;
  typename Spec::State cache_state_ = Spec::initial();
  Node* cache_upto_ = nullptr;
};

}  // namespace dssq::dss
