// dss::Session — the unified client lifecycle over a persistent heap.
//
// Before this facade every multi-process client ran the same four-step
// attach dance by hand: PersistentHeap::open → directory lookup<T> →
// adopt constructor → SlotLeaseTable lease — four chances per call site to
// skip a validation or adopt with the wrong kind.  Session folds the
// sequence into three calls:
//
//   dss::Session s = dss::Session::attach(path);        // open + map
//   auto q = s.open<queues::DssQueue<pmem::MmapContext>>("app/queue");
//   auto h = dss::Handle(s, q, rings, slot);            // submit/poll/await
//
// open<Q>() routes every adoptable type through one SessionTraits<Q>
// specialization, so the type-tag, geometry, and root checks live in
// exactly one place per type (and, for the queue family, in exactly one
// function: queues::validate_queue_root).  The raw four-step path keeps
// working — Session is sugar over the same primitives — but new call
// sites should not use it (see docs/api.md).
//
// Session is move-less by construction (it owns the mapped heap); rely on
// guaranteed copy elision: `Session s = Session::attach(path);` constructs
// in place.  The same applies to the non-movable queue types returned by
// open<Q>() — they are prvalues all the way into the caller's variable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/spin.hpp"
#include "pmem/dss_uring.hpp"
#include "pmem/persistent_heap.hpp"
#include "pmem/slot_lease.hpp"
#include "queues/dss_queue.hpp"
#include "queues/sharded_queue.hpp"
#include "queues/types.hpp"

namespace dssq::dss {

class Session;

/// How Session::open<Q>(name) adopts a published object: the published
/// root type, its validation, and the adopt construction.  Specialize for
/// every adoptable type (the queue family, SlotLeaseTable, UringTable here;
/// harness::Oracle in harness/fork_crash.hpp).
template <class Q>
struct SessionTraits;

class Session {
 public:
  using Options = pmem::PersistentHeap::Options;

  /// Open an existing heap (the serving-client path).
  static Session attach(const std::string& path) {
    return Session(path, pmem::PersistentHeap::OpenMode::kOpen, Options{});
  }
  /// Create a fresh heap (the creator path; pair with publish()).
  static Session create(const std::string& path, Options opt) {
    return Session(path, pmem::PersistentHeap::OpenMode::kCreate, opt);
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  pmem::PersistentHeap& heap() noexcept { return heap_; }
  pmem::MmapContext& ctx() noexcept { return ctx_; }

  /// Adopt the object published under `name`, validated through its
  /// SessionTraits.  Throws when the name is absent (or bound to a
  /// different type) or when the root fails validation.
  template <class Q>
  Q open(const std::string& name) {
    using Traits = SessionTraits<Q>;
    auto* root = heap_.lookup<typename Traits::Root>(name);
    if (root == nullptr) {
      throw std::runtime_error("dss::Session::open: no object named '" +
                               name + "' (of the requested type) in " +
                               path_);
    }
    Traits::validate(*root, name);
    return Traits::adopt(*this, *root);
  }

  /// The published QueueRoot kind under `name` (kKindSingle/kKindSharded),
  /// or 0 when no queue is published there — the dispatch a call site
  /// needs before choosing which queue type to open<>().
  std::uint64_t queue_kind(const std::string& name) {
    const auto* r = heap_.lookup<queues::QueueRoot>(name);
    return r == nullptr ? 0 : r->kind;
  }

  /// Directory passthroughs for creators (publish) and probes (lookup).
  template <class T>
  void publish(const std::string& name, T* root) {
    heap_.publish<T>(name, root);
  }
  template <class T>
  T* lookup(const std::string& name) {
    return heap_.lookup<T>(name);
  }

  /// The heap's user root block, viewed as T (application config).
  template <class T>
  T* root() noexcept {
    return static_cast<T*>(heap_.root());
  }

  /// One slot-acquisition attempt: a free lease, else ONE dead holder
  /// reclaimed (`settle` runs the dead client's recovery before the slot
  /// is reissued — slot_lease.hpp's safety contract), else kNoSlot (all
  /// slots held by live peers; back off and retry).
  template <class Settle>
  std::size_t acquire_or_reclaim(pmem::SlotLeaseTable& leases,
                                 Settle&& settle) {
    const std::size_t s = leases.acquire(heap_.backend());
    if (s != pmem::SlotLeaseTable::kNoSlot) return s;
    return leases.reclaim_dead(heap_.backend(),
                               std::forward<Settle>(settle));
  }

  const std::string& path() const noexcept { return path_; }

  /// Orderly shutdown (sets the clean flag); optional — dying without it
  /// is exactly the crash the recovery paths exist for.
  void close() { heap_.close(); }

 private:
  Session(const std::string& path, pmem::PersistentHeap::OpenMode mode,
          Options opt)
      : path_(path), heap_(path, mode, opt), ctx_(heap_) {}

  std::string path_;
  pmem::PersistentHeap heap_;
  pmem::MmapContext ctx_;
};

// ---- SessionTraits specializations ----------------------------------------

template <>
struct SessionTraits<queues::DssQueue<pmem::MmapContext>> {
  using Root = queues::QueueRoot;
  static void validate(const Root& r, const std::string& name) {
    queues::validate_queue_root(
        r, queues::QueueRoot::kKindSingle,
        ("dss::Session::open(\"" + name + "\")").c_str());
  }
  static queues::DssQueue<pmem::MmapContext> adopt(Session& s,
                                                   const Root& r) {
    return queues::DssQueue<pmem::MmapContext>(pmem::adopt, s.ctx(), r);
  }
};

template <>
struct SessionTraits<queues::ShardedDssQueue<pmem::MmapContext>> {
  using Root = queues::QueueRoot;
  static void validate(const Root& r, const std::string& name) {
    queues::validate_queue_root(
        r, queues::QueueRoot::kKindSharded,
        ("dss::Session::open(\"" + name + "\")").c_str());
  }
  static queues::ShardedDssQueue<pmem::MmapContext> adopt(Session& s,
                                                          const Root& r) {
    return queues::ShardedDssQueue<pmem::MmapContext>(pmem::adopt, s.ctx(),
                                                      r);
  }
};

template <>
struct SessionTraits<pmem::SlotLeaseTable> {
  using Root = pmem::SlotLeaseTable::Header;
  static void validate(Root& r, const std::string& name) {
    pmem::SlotLeaseTable::attach_check(&r, name);
  }
  static pmem::SlotLeaseTable adopt(Session&, Root& r) {
    return pmem::SlotLeaseTable(&r);
  }
};

template <>
struct SessionTraits<pmem::UringTable> {
  using Root = pmem::UringTable::Header;
  static void validate(const Root& r, const std::string& name) {
    pmem::UringTable::attach_check(&r, name);
  }
  static pmem::UringTable adopt(Session&, Root& r) {
    return pmem::UringTable(&r);
  }
};

// ---- Handle — the async submit/poll/await surface --------------------------

/// A leased slot's client view of its rings: submit ops, poll completions,
/// await one.  The completion cursor starts at the published completion
/// tail — sound because settle-before-reissue drains an orphan's rings
/// completely before the slot can be leased again.
///
/// kSelfDrain (default): the client IS the slot's executor — await() pumps
/// its own submission ring through the queue.  kExternalDrain: an executor
/// pool owns the draining (one drainer per slot, always); await() only
/// polls and spins.
template <class Q>
class Handle {
 public:
  enum class Drain : std::uint8_t { kSelf, kExternal };

  Handle(Session& s, Q& q, pmem::UringTable& rings, std::size_t slot,
         Drain drain = Drain::kSelf)
      : ctx_(&s.ctx()),
        q_(&q),
        rings_(&rings),
        slot_(slot),
        drain_(drain),
        cursor_(rings.comp_tail(slot)) {}

  /// False = ring full (backpressure); retry after polling completions.
  bool submit_enqueue(queues::Value v) {
    return rings_->submit(*ctx_, slot_, pmem::UringTable::kOpEnqueue, v);
  }
  bool submit_dequeue() {
    return rings_->submit(*ctx_, slot_, pmem::UringTable::kOpDequeue, 0);
  }

  /// Next completion, if one is published; advances the cursor.
  std::optional<pmem::UringTable::Completion> poll() {
    auto c = rings_->poll(slot_, cursor_);
    if (c.has_value()) ++cursor_;
    return c;
  }

  /// Drain this slot's own submission ring (kSelfDrain mode only).
  std::size_t pump(std::size_t budget = SIZE_MAX) {
    return rings_->drain(*ctx_, *q_, slot_, budget);
  }

  /// Block (spin) until the next completion.
  pmem::UringTable::Completion await() {
    for (;;) {
      if (auto c = poll(); c.has_value()) return *c;
      if (drain_ == Drain::kSelf) {
        (void)pump();
      } else {
        cpu_pause();
      }
    }
  }

  std::size_t slot() const noexcept { return slot_; }
  std::uint64_t cursor() const noexcept { return cursor_; }
  Q& queue() noexcept { return *q_; }
  pmem::UringTable& rings() noexcept { return *rings_; }

 private:
  pmem::MmapContext* ctx_;
  Q* q_;
  pmem::UringTable* rings_;
  std::size_t slot_;
  Drain drain_;
  std::uint64_t cursor_;
};

}  // namespace dssq::dss
