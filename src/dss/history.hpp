// Concurrent histories with crash markers.
//
// A history is the sequence of invocation / response / system-crash events
// observed at an object's interface.  The recorder assigns every event a
// global logical timestamp (an atomic counter incremented at the moment the
// event occurs), so the real-time precedence order used by strict
// linearizability is captured without clock reads.
//
// Crash events are system-wide (the paper's failure model): a crash ends an
// *era*; operations invoked in era e that have no response by the crash are
// the era's pending operations, and under strict linearizability
// [Aguilera & Frølund] each must take effect before the crash or not at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

#include "dss/spec.hpp"

namespace dssq::dss {

inline constexpr std::uint64_t kNoTimestamp =
    std::numeric_limits<std::uint64_t>::max();

/// One completed-or-pending operation instance in a history.
template <SequentialSpec Spec>
struct HistoryOp {
  Pid pid = 0;
  typename Spec::Op op;
  std::uint64_t invoked_at = kNoTimestamp;
  std::uint64_t responded_at = kNoTimestamp;  // kNoTimestamp: pending
  std::optional<typename Spec::Resp> resp;    // set iff responded
  std::size_t era = 0;                        // index of the era of invocation

  bool pending() const noexcept { return responded_at == kNoTimestamp; }
};

template <SequentialSpec Spec>
struct History {
  std::vector<HistoryOp<Spec>> ops;
  /// Timestamps at which crashes occurred; era i is the interval between
  /// crash i-1 (or the start) and crash i.
  std::vector<std::uint64_t> crash_times;

  std::size_t num_eras() const noexcept { return crash_times.size() + 1; }
};

/// Thread-safe history recorder.  The instrument pattern:
///
///   auto tok = rec.invoke(pid, op);
///   resp = object.do_op(...);
///   rec.respond(tok, resp);        // skipped if the op "crashed"
///
/// and, once all worker threads have stopped, rec.crash().
template <SequentialSpec Spec>
class HistoryRecorder {
 public:
  using Token = std::size_t;

  Token invoke(Pid pid, typename Spec::Op op) {
    std::lock_guard lock(mu_);
    HistoryOp<Spec> rec;
    rec.pid = pid;
    rec.op = std::move(op);
    rec.invoked_at = clock_++;
    rec.era = history_.crash_times.size();
    history_.ops.push_back(std::move(rec));
    return history_.ops.size() - 1;
  }

  void respond(Token token, typename Spec::Resp resp) {
    std::lock_guard lock(mu_);
    HistoryOp<Spec>& rec = history_.ops.at(token);
    rec.responded_at = clock_++;
    rec.resp = std::move(resp);
  }

  /// Record a system-wide crash.  Caller must have stopped all workers.
  void crash() {
    std::lock_guard lock(mu_);
    history_.crash_times.push_back(clock_++);
  }

  /// Extract the recorded history (leaves the recorder empty).
  History<Spec> take() {
    std::lock_guard lock(mu_);
    History<Spec> out = std::move(history_);
    history_ = {};
    return out;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return history_.ops.size();
  }

 private:
  mutable std::mutex mu_;
  History<Spec> history_;
  std::uint64_t clock_ = 0;
};

}  // namespace dssq::dss
