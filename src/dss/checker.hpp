// Strict-linearizability checker for histories with crashes.
//
// The paper composes D⟨T⟩ with an off-the-shelf correctness condition; its
// queue algorithm guarantees the strongest of the candidates, *strict
// linearizability* (Aguilera & Frølund): every operation appears to take
// effect atomically between its invocation and its response, and an
// operation interrupted by a crash takes effect before the crash or not at
// all.
//
// The checker is a Wing–Gong style depth-first search over linearization
// orders, processed era by era (an era ends at a crash):
//
//   * within an era, an unlinearized operation is a *candidate* iff no
//     other unlinearized operation of the era responded before it was
//     invoked (real-time order preservation);
//   * linearizing a completed operation must reproduce its recorded
//     response; a pending operation (cut off by the era's crash) may
//     linearize with any legal response, or be dropped when the era closes;
//   * closing an era requires every completed operation to be linearized;
//     the object state then carries into the next era.
//
// Failed configurations are memoized by a 64-bit hash of
// (era, linearized-set, abstract state).  A hash collision could in
// principle prune a viable branch and mis-report a violation; with a
// 64-bit mixed hash and test-sized histories the probability is
// negligible, and a reported *success* is always backed by a concrete
// witness order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "dss/history.hpp"
#include "dss/spec.hpp"

namespace dssq::dss {

/// Which correctness condition to check.  The paper (Section 2.2) lists
/// the conditions the DSS composes with, strongest to weakest:
///   * strict linearizability [Aguilera & Frølund] — an operation pending
///     at a crash takes effect before the crash or not at all;
///   * persistent atomicity [Guerraoui & Levy] — a pending operation may
///     also take effect after the crash, as long as it is ordered before
///     the same process's next operation;
///   * recoverable linearizability [Berryhill, Golab & Tripunitara] —
///     like persistent atomicity, but the "before the process's next
///     operation" bound applies per object (program-order inversion is
///     possible across distinct objects).  For the single-object
///     histories this checker handles, it coincides with persistent
///     atomicity, so kPersistentAtomicity checks both.
enum class Condition {
  kStrictLinearizability,
  kPersistentAtomicity,
};

struct CheckResult {
  bool linearizable = false;
  /// Total DFS configurations explored (diagnostics; also lets tests bound
  /// checker effort).
  std::uint64_t configurations = 0;
  std::string message;
};

template <SequentialSpec Spec>
class StrictLinChecker {
 public:
  /// `max_configurations` bounds search effort; exceeding it yields a
  /// result with linearizable=false and an "effort exceeded" message, which
  /// tests must treat as inconclusive rather than as a violation.
  explicit StrictLinChecker(
      std::uint64_t max_configurations = 50'000'000,
      Condition condition = Condition::kStrictLinearizability)
      : max_configs_(max_configurations), condition_(condition) {}

  CheckResult check(const History<Spec>& history) {
    history_ = &history;
    eras_.assign(history.num_eras(), {});
    for (std::size_t i = 0; i < history.ops.size(); ++i) {
      eras_.at(history.ops[i].era).push_back(i);
    }
    for (auto& era : eras_) {
      std::sort(era.begin(), era.end(), [&](std::size_t a, std::size_t b) {
        return history.ops[a].invoked_at < history.ops[b].invoked_at;
      });
    }
    result_ = {};
    failed_.clear();
    LinearizedSet done(history.ops.size(), false);
    auto state = Spec::initial();
    const bool ok = search_era(0, done, state);
    result_.linearizable = ok;
    if (!ok && result_.message.empty()) {
      result_.message = condition_ == Condition::kStrictLinearizability
                            ? "no strict linearization exists"
                            : "no persistently-atomic linearization exists";
    }
    return result_;
  }

 private:
  using LinearizedSet = std::vector<bool>;

  bool search_era(std::size_t era, LinearizedSet& done,
                  typename Spec::State& state) {
    if (era == eras_.size()) return true;  // every era closed: witness found

    if (++result_.configurations > max_configs_) {
      result_.message = "search effort exceeded (inconclusive)";
      return false;
    }

    const std::uint64_t key = config_hash(era, done, state);
    if (failed_.contains(key)) return false;

    const auto& ops = *history_;

    // Candidates: this era's unlinearized ops, plus — under persistent
    // atomicity — pending operations carried over from earlier eras.
    candidates_.clear();
    for (const std::size_t idx : eras_[era]) {
      if (!done[idx]) candidates_.push_back(idx);
    }
    if (condition_ == Condition::kPersistentAtomicity) {
      for (std::size_t e = 0; e < era; ++e) {
        for (const std::size_t idx : eras_[e]) {
          if (!done[idx] && ops.ops[idx].pending()) {
            candidates_.push_back(idx);
          }
        }
      }
    }
    const std::vector<std::size_t> candidates = candidates_;

    // Earliest response among this era's unlinearized completed ops bounds
    // which invocations may linearize next (carryovers are pending, hence
    // unbounded, and their pre-crash invocation times precede everything
    // in this era).
    std::uint64_t min_response = kNoTimestamp;
    bool all_completed_done = true;
    for (const std::size_t idx : eras_[era]) {
      if (done[idx]) continue;
      const auto& op = ops.ops[idx];
      if (!op.pending()) {
        all_completed_done = false;
        min_response = std::min(min_response, op.responded_at);
      }
    }

    // Branch 1: close the era.  Under strict linearizability the era's
    // still-unlinearized pending ops are dropped here (they may never take
    // effect later); under persistent atomicity they carry forward.
    if (all_completed_done) {
      if (search_era(era + 1, done, state)) return true;
    }

    // Branch 2: linearize (or, for pending ops under persistent atomicity,
    // permanently drop) some candidate next.
    for (const std::size_t idx : candidates) {
      if (done[idx]) continue;
      const auto& op = ops.ops[idx];
      const bool carryover = op.era != era;
      if (!carryover && op.invoked_at > min_response) continue;  // real time
      // Persistent atomicity's per-process order: an operation of process
      // p may linearize only once no pending carryover of p from an
      // earlier era remains undecided.
      if (condition_ == Condition::kPersistentAtomicity &&
          has_open_carryover_before(done, op.pid, op.era)) {
        continue;
      }

      if (Spec::enabled(state, op.op, op.pid)) {
        typename Spec::State next_state = state;
        const auto resp = Spec::apply(next_state, op.op, op.pid);
        if (op.pending() || resp == *op.resp) {
          done[idx] = true;
          const bool ok = search_era(era, done, next_state);
          done[idx] = false;
          if (ok) return true;
          if (!result_.message.empty()) return false;  // effort exceeded
        }
      }
      if (carryover) {
        // Drop branch: the carried-over pending op never takes effect.
        done[idx] = true;
        const bool ok = search_era(era, done, state);
        done[idx] = false;
        if (ok) return true;
        if (!result_.message.empty()) return false;
      }
    }

    failed_.insert(key);
    return false;
  }

  /// True iff process `pid` still has an undecided pending operation from
  /// an era earlier than `era`.
  bool has_open_carryover_before(const LinearizedSet& done, Pid pid,
                                 std::size_t era) const {
    for (std::size_t e = 0; e < era; ++e) {
      for (const std::size_t idx : eras_[e]) {
        const auto& op = history_->ops[idx];
        if (!done[idx] && op.pending() && op.pid == pid) return true;
      }
    }
    return false;
  }

  std::uint64_t config_hash(std::size_t era, const LinearizedSet& done,
                            const typename Spec::State& state) const {
    std::uint64_t h = mix64(era + 0x5151);
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < done.size(); ++i) {
      word = (word << 1) | (done[i] ? 1u : 0u);
      if (i % 64 == 63) {
        h = hash_combine(h, word);
        word = 0;
      }
    }
    h = hash_combine(h, word);
    return hash_combine(h, Spec::hash(state));
  }

  const History<Spec>* history_ = nullptr;
  std::vector<std::vector<std::size_t>> eras_;
  std::vector<std::size_t> candidates_;
  std::unordered_set<std::uint64_t> failed_;
  CheckResult result_;
  std::uint64_t max_configs_;
  Condition condition_;
};

/// Convenience entry points.
template <SequentialSpec Spec>
CheckResult check_strict_linearizability(const History<Spec>& history,
                                         std::uint64_t max_configs =
                                             50'000'000) {
  StrictLinChecker<Spec> checker(max_configs,
                                 Condition::kStrictLinearizability);
  return checker.check(history);
}

/// Persistent atomicity; for single-object histories this also decides
/// recoverable linearizability (see Condition).
template <SequentialSpec Spec>
CheckResult check_persistent_atomicity(const History<Spec>& history,
                                       std::uint64_t max_configs =
                                           50'000'000) {
  StrictLinChecker<Spec> checker(max_configs,
                                 Condition::kPersistentAtomicity);
  return checker.check(history);
}

}  // namespace dssq::dss
