// The D⟨T⟩ transformation — the paper's main contribution (Section 2.1).
//
// Given a sequential specification T = (S, s0, OP, R, δ, ρ), its detectable
// embodiment D⟨T⟩ is the sequential specification whose states are tuples
// (s, A, R) — A[p] remembering the operation process p most recently
// prepared, R[p] its response if the prepared operation's execution took
// effect — and whose operations are OP plus, for every op ∈ OP, the
// auxiliary prep-op and exec-op, plus resolve.  The four axioms of
// Figure 1:
//
//   (1) prep-op / p / ⊥        : A'[p] = op, R'[p] = ⊥        (total, idempotent)
//   (2) {A[p] = op ∧ R[p] = ⊥}
//       exec-op / p / ρ(s,op,p): s' = δ(s,op,p), R'[p] = ρ(s,op,p)
//   (3) resolve / p / (A[p], R[p]) : no side effect            (total, idempotent)
//   (4) op / p / ρ(s,op,p)     : s' = δ(s,op,p)               (non-detectable)
//
// DetectableSpec<Spec> realizes this transformation mechanically for any
// SequentialSpec — and is itself a SequentialSpec, so detectable types
// compose with the history checker, and D⟨D⟨T⟩⟩ is well-formed.
//
// DetectableModel<Spec> wraps the transformed spec in a mutex, yielding a
// trivially strictly-linearizable reference object: the oracle used by the
// property tests and the examples.
//
// This header also defines the unified *implementation-side* resolve
// surface: dss::Resolved<Op, Resp[, Arg]> — the one (A[p], R[p]) response
// type every lock-free detectable object in this repository returns from
// resolve() — and the dss::Detectable concept that statically checks an
// object exposes it.
#pragma once

#include <cassert>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "dss/spec.hpp"

namespace dssq::dss {

// ---- unified resolve result -------------------------------------------------

/// Operation kinds of the queue family (DssQueue/DssStack/DssRing/LogQueue/
/// CasWithEffect queue — a stack's push/pop reuse the enqueue/dequeue kinds;
/// only the container's ordering differs, not the resolve algebra).
enum class ResolvedOp : std::uint8_t { kNone = 0, kEnqueue, kDequeue };

/// The paper's resolve response (A[p], R[p]) (Axiom 3), shared by every
/// detectable object in this repository:
///
///   * `K`     — an enum of operation kinds whose zero value (`K{}`,
///               conventionally kNone) encodes A[p] = ⊥;
///   * `RespT` — the base type's response R;
///   * `ArgT`  — the prepared operation's argument payload (defaults to
///               RespT; DetectableCas uses a two-field struct).
///
/// `response == nullopt` encodes R[p] = ⊥ (the prepared operation is not
/// known to have taken effect).  Construction on resolve paths goes through
/// the none()/enqueue()/dequeue()/make() factories so a response can never
/// be populated without its operation kind — the unset-response bug class
/// the per-object hand-rolled structs allowed.
template <class K, class RespT, class ArgT = RespT>
struct Resolved {
  static_assert(std::is_enum_v<K>,
                "Resolved<K, ...>: K is the operation-kind enum; its zero "
                "value encodes A[p] = ⊥");

  using Op = K;
  using Response = RespT;
  using Argument = ArgT;

  Op op = Op{};                    // A[p]; Op{} (kNone) encodes ⊥
  ArgT arg{};                      // the prepared operation's argument(s)
  std::optional<RespT> response;   // R[p]; nullopt encodes ⊥

  /// A[p] ≠ ⊥: an operation was prepared.
  constexpr bool prepared() const noexcept { return op != Op{}; }
  /// R[p] ≠ ⊥: the prepared operation took effect.
  constexpr bool took_effect() const noexcept { return response.has_value(); }

  bool operator==(const Resolved&) const = default;

  /// (⊥, ⊥): nothing prepared.
  static constexpr Resolved none() noexcept { return Resolved{}; }

  /// A prepared operation of kind `o` with argument `a` and (optional)
  /// effect `r`.
  static constexpr Resolved make(Op o, ArgT a,
                                 std::optional<RespT> r = std::nullopt) {
    return Resolved{o, std::move(a), std::move(r)};
  }

  /// Queue-family factories, available when K names kEnqueue/kDequeue.
  static constexpr Resolved enqueue(ArgT a,
                                    std::optional<RespT> r = std::nullopt)
    requires requires { K::kEnqueue; }
  {
    return Resolved{K::kEnqueue, std::move(a), std::move(r)};
  }
  static constexpr Resolved dequeue(std::optional<RespT> r = std::nullopt)
    requires requires { K::kDequeue; }
  {
    return Resolved{K::kDequeue, ArgT{}, std::move(r)};
  }

  /// Rendering is an ADL customization point: an instantiation is
  /// printable when a `resolved_to_string(const Resolved<...>&)` overload
  /// exists in an associated namespace (the queue family's lives next to
  /// QueueSpec in queues/types.hpp).
  std::string to_string() const
    requires requires(const Resolved& r) { resolved_to_string(r); }
  {
    return resolved_to_string(*this);
  }
};

template <class T>
struct is_resolved : std::false_type {};
template <class K, class RespT, class ArgT>
struct is_resolved<Resolved<K, RespT, ArgT>> : std::true_type {};
template <class T>
inline constexpr bool is_resolved_v =
    is_resolved<std::remove_cvref_t<T>>::value;

/// A detectable object in the paper's sense, as implemented here: it
/// exposes resolve(tid) — total, idempotent, const — returning the unified
/// (A[p], R[p]) pair.  DssQueue, DssStack, DssRing, LogQueue, the CasWE
/// queue and the three detectable base objects all model this concept
/// (statically checked in their anchor translation units).
template <class T>
concept Detectable = requires(const T& obj, std::size_t tid) {
  requires is_resolved_v<decltype(obj.resolve(tid))>;
};

// ---- the D⟨T⟩ spec transformation ------------------------------------------

template <SequentialSpec Spec>
struct DetectableSpec {
  using BaseOp = typename Spec::Op;
  using BaseResp = typename Spec::Resp;

  // ---- operations of D⟨T⟩ ----------------------------------------------
  struct Prep {  // prep-op, for each op ∈ OP
    BaseOp op;
    bool operator==(const Prep&) const = default;
  };
  struct Exec {  // exec-op; the operation executed is the prepared A[p]
    bool operator==(const Exec&) const = default;
  };
  struct Resolve {
    bool operator==(const Resolve&) const = default;
  };
  struct Plain {  // op ∈ OP, applied non-detectably (Axiom 4)
    BaseOp op;
    bool operator==(const Plain&) const = default;
  };
  using Op = std::variant<Prep, Exec, Resolve, Plain>;

  // ---- responses of D⟨T⟩: R̄ = R ∪ (OP ∪ {⊥}) × (R ∪ {⊥}) ---------------
  struct ResolveResult {
    std::optional<BaseOp> op;     // A[p]; nullopt encodes ⊥
    std::optional<BaseResp> resp;  // R[p]; nullopt encodes ⊥
    bool operator==(const ResolveResult&) const = default;
  };
  /// monostate is the ⊥ response of prep-op.
  using Resp = std::variant<std::monostate, BaseResp, ResolveResult>;

  // ---- states of D⟨T⟩: (s, A, R) ----------------------------------------
  struct State {
    typename Spec::State s = Spec::initial();
    std::vector<std::optional<BaseOp>> A;
    std::vector<std::optional<BaseResp>> R;
    bool operator==(const State&) const = default;
  };

  /// Number of process slots in A and R.  The paper's Π is finite; the
  /// model sizes its maps up front.
  static constexpr std::size_t kMaxProcs = 64;

  static State initial() {
    State st;
    st.A.resize(kMaxProcs);
    st.R.resize(kMaxProcs);
    return st;
  }

  static bool enabled(const State& st, const Op& op, Pid pid) {
    const auto p = static_cast<std::size_t>(pid);
    if (p >= st.A.size()) return false;
    if (std::holds_alternative<Prep>(op)) {
      return true;  // prep-op is total (Axiom 1 precondition: {true})
    }
    if (std::holds_alternative<Exec>(op)) {
      // Axiom 2 precondition: A[p] = op ∧ R[p] = ⊥.
      return st.A[p].has_value() && !st.R[p].has_value() &&
             Spec::enabled(st.s, *st.A[p], pid);
    }
    if (std::holds_alternative<Resolve>(op)) return true;  // total (Axiom 3)
    const auto& plain = std::get<Plain>(op);
    return Spec::enabled(st.s, plain.op, pid);
  }

  static Resp apply(State& st, const Op& op, Pid pid) {
    if (!enabled(st, op, pid)) {
      throw std::logic_error("DetectableSpec::apply: operation not enabled (" +
                             to_string(op) + " by p" + std::to_string(pid) +
                             ")");
    }
    const auto p = static_cast<std::size_t>(pid);
    if (const auto* prep = std::get_if<Prep>(&op)) {
      st.A[p] = prep->op;   // A'[p] = op
      st.R[p] = std::nullopt;  // R'[p] = ⊥
      return std::monostate{};
    }
    if (std::holds_alternative<Exec>(op)) {
      const BaseResp r = Spec::apply(st.s, *st.A[p], pid);  // s' = δ(s,op,p)
      st.R[p] = r;                                          // R'[p] = ρ(...)
      return r;
    }
    if (std::holds_alternative<Resolve>(op)) {
      return ResolveResult{st.A[p], st.R[p]};
    }
    const auto& plain = std::get<Plain>(op);
    return Spec::apply(st.s, plain.op, pid);  // Axiom 4: no A/R side effect
  }

  static std::uint64_t hash(const State& st) {
    std::uint64_t h = Spec::hash(st.s);
    for (std::size_t p = 0; p < st.A.size(); ++p) {
      if (st.A[p].has_value()) {
        h = hash_combine(h, mix64(p * 2 + 1));
        h = hash_combine(h, hash_op(*st.A[p]));
      }
      if (st.R[p].has_value()) {
        h = hash_combine(h, mix64(p * 2 + 2));
        h = hash_combine(h, hash_resp(*st.R[p]));
      }
    }
    return h;
  }

  static std::string to_string(const Op& op) {
    if (const auto* prep = std::get_if<Prep>(&op)) {
      return "prep-" + Spec::to_string(prep->op);
    }
    if (std::holds_alternative<Exec>(op)) return "exec";
    if (std::holds_alternative<Resolve>(op)) return "resolve";
    return Spec::to_string(std::get<Plain>(op).op);
  }

  static std::string resp_to_string(const Resp& r) {
    if (std::holds_alternative<std::monostate>(r)) return "⊥";
    if (const auto* base = std::get_if<BaseResp>(&r)) {
      return Spec::resp_to_string(*base);
    }
    const auto& rr = std::get<ResolveResult>(r);
    const std::string op_s = rr.op ? Spec::to_string(*rr.op) : "⊥";
    const std::string re_s = rr.resp ? Spec::resp_to_string(*rr.resp) : "⊥";
    return "(" + op_s + ", " + re_s + ")";
  }

 private:
  static std::uint64_t hash_op(const BaseOp& op) {
    // Hash via the printable form: cheap, stable, and collision-safe enough
    // for memoization (to_string is injective for all specs in this repo).
    const std::string s = Spec::to_string(op);
    std::uint64_t h = 0;
    for (const char c : s) h = hash_combine(h, static_cast<std::uint64_t>(c));
    return h;
  }
  static std::uint64_t hash_resp(const BaseResp& r) {
    const std::string s = Spec::resp_to_string(r);
    std::uint64_t h = 0;
    for (const char c : s) h = hash_combine(h, static_cast<std::uint64_t>(c));
    return h;
  }
};

/// A runnable, trivially strictly-linearizable reference implementation of
/// D⟨Spec⟩: the transformed spec under a single mutex.  Used as the test
/// oracle and in examples that need a correct detectable object without
/// the lock-free machinery.
template <SequentialSpec Spec>
class DetectableModel {
 public:
  using D = DetectableSpec<Spec>;
  using BaseOp = typename Spec::Op;
  using BaseResp = typename Spec::Resp;
  using ResolveResult = typename D::ResolveResult;

  DetectableModel() : state_(D::initial()) {}

  void prep(Pid pid, const BaseOp& op) {
    std::lock_guard lock(mu_);
    D::apply(state_, typename D::Prep{op}, pid);
  }

  BaseResp exec(Pid pid) {
    std::lock_guard lock(mu_);
    return std::get<BaseResp>(D::apply(state_, typename D::Exec{}, pid));
  }

  ResolveResult resolve(Pid pid) {
    std::lock_guard lock(mu_);
    return std::get<ResolveResult>(
        D::apply(state_, typename D::Resolve{}, pid));
  }

  BaseResp plain(Pid pid, const BaseOp& op) {
    std::lock_guard lock(mu_);
    return std::get<BaseResp>(D::apply(state_, typename D::Plain{op}, pid));
  }

  /// Snapshot of the abstract state (tests only).
  typename D::State snapshot() const {
    std::lock_guard lock(mu_);
    return state_;
  }

 private:
  mutable std::mutex mu_;
  typename D::State state_;
};

}  // namespace dssq::dss
