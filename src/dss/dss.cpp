// Anchor translation unit for the dss target.  The specification framework
// (spec.hpp, detectable.hpp, history.hpp, checker.hpp) is header-only
// templates; this file instantiates the transformation for every spec
// shipped in the library, so concept violations and template errors
// surface when the library itself is built, not first in client code.

#include "dss/checker.hpp"
#include "dss/detectable.hpp"
#include "dss/history.hpp"
#include "dss/spec.hpp"
#include "dss/universal.hpp"
#include "dss/specs/cas_spec.hpp"
#include "dss/specs/counter_spec.hpp"
#include "dss/specs/queue_spec.hpp"
#include "dss/specs/register_spec.hpp"
#include "dss/specs/stack_spec.hpp"

namespace dssq::dss {

// D⟨T⟩ of every shipped spec is itself a SequentialSpec, so it composes
// with the checker — and the transformation is closed under itself
// (D⟨D⟨T⟩⟩ is well-formed), which we assert here as the paper's claim that
// DSS-based objects can serve as base objects of other DSS-based objects.
static_assert(SequentialSpec<DetectableSpec<QueueSpec>>);
static_assert(SequentialSpec<DetectableSpec<RegisterSpec>>);
static_assert(SequentialSpec<DetectableSpec<CounterSpec>>);
static_assert(SequentialSpec<DetectableSpec<CasSpec>>);
static_assert(SequentialSpec<DetectableSpec<StackSpec>>);
static_assert(SequentialSpec<DetectableSpec<DetectableSpec<QueueSpec>>>);

template class StrictLinChecker<QueueSpec>;
template class StrictLinChecker<DetectableSpec<QueueSpec>>;
template class StrictLinChecker<DetectableSpec<RegisterSpec>>;
template class DetectableModel<QueueSpec>;
template class DetectableModel<RegisterSpec>;
template class DetectableModel<CounterSpec>;
template class DetectableModel<CasSpec>;

template class UniversalObject<QueueSpec, pmem::SimContext>;
template class UniversalObject<RegisterSpec, pmem::SimContext>;
template class UniversalObject<CounterSpec, pmem::SimContext>;
template class UniversalObject<CasSpec, pmem::SimContext>;
template class UniversalObject<QueueSpec, pmem::EmulatedNvmContext>;

}  // namespace dssq::dss
