// Sequential specification of a read/write register.
//
// The register is the running example of the paper's Figure 2, which
// illustrates the four crash positions of a detectable write(1) and the
// responses resolve may return in each.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/rng.hpp"
#include "dss/spec.hpp"
#include "dss/specs/queue_spec.hpp"  // Value / kOk

namespace dssq::dss {

struct RegisterSpec {
  struct Write {
    Value value;
    bool operator==(const Write&) const = default;
  };
  struct Read {
    bool operator==(const Read&) const = default;
  };

  using Op = std::variant<Write, Read>;
  using Resp = Value;  // reads return the value; writes return kOk
  using State = Value;

  static State initial() { return 0; }

  static bool enabled(const State&, const Op&, Pid) { return true; }

  static Resp apply(State& s, const Op& op, Pid) {
    if (const auto* w = std::get_if<Write>(&op)) {
      s = w->value;
      return kOk;
    }
    return s;
  }

  static std::uint64_t hash(const State& s) {
    return mix64(static_cast<std::uint64_t>(s));
  }

  static std::string to_string(const Op& op) {
    if (const auto* w = std::get_if<Write>(&op)) {
      return "write(" + std::to_string(w->value) + ")";
    }
    return "read()";
  }

  static std::string resp_to_string(const Resp& r) {
    return r == kOk ? "OK" : std::to_string(r);
  }
};

static_assert(SequentialSpec<RegisterSpec>);

}  // namespace dssq::dss
