// Sequential specification of a Compare-And-Swap object.
//
// CAS is one of the two base-object types (with read/write registers) from
// which the DSS queue is constructed, and Section 2.2 uses D⟨CAS⟩ to
// demonstrate application-managed nesting of DSS-based objects.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/rng.hpp"
#include "dss/spec.hpp"

namespace dssq::dss {

struct CasSpec {
  struct Cas {
    std::int64_t expected;
    std::int64_t desired;
    /// Auxiliary disambiguation argument (Section 2.1), ignored by δ.
    std::int64_t marker = 0;
    bool operator==(const Cas&) const = default;
  };
  struct CasRead {
    bool operator==(const CasRead&) const = default;
  };

  using Op = std::variant<Cas, CasRead>;
  /// Cas returns 1 on success, 0 on failure; CasRead returns the value.
  using Resp = std::int64_t;
  using State = std::int64_t;

  static State initial() { return 0; }

  static bool enabled(const State&, const Op&, Pid) { return true; }

  static Resp apply(State& s, const Op& op, Pid) {
    if (const auto* cas = std::get_if<Cas>(&op)) {
      if (s == cas->expected) {
        s = cas->desired;
        return 1;
      }
      return 0;
    }
    return s;
  }

  static std::uint64_t hash(const State& s) {
    return mix64(static_cast<std::uint64_t>(s));
  }

  static std::string to_string(const Op& op) {
    if (const auto* cas = std::get_if<Cas>(&op)) {
      return "cas(" + std::to_string(cas->expected) + "," +
             std::to_string(cas->desired) + "#" + std::to_string(cas->marker) +
             ")";
    }
    return "read()";
  }

  static std::string resp_to_string(const Resp& r) { return std::to_string(r); }
};

static_assert(SequentialSpec<CasSpec>);

}  // namespace dssq::dss
