// Sequential specification of a LIFO stack.
//
// Not part of the paper's evaluation, but the natural second witness that
// the DSS methodology generalizes: src/queues/dss_stack.hpp implements
// D⟨stack⟩ with the same tagged-X technique as the DSS queue, and this
// spec is its model/checker counterpart.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "dss/spec.hpp"
#include "dss/specs/queue_spec.hpp"  // Value / kOk / kEmpty

namespace dssq::dss {

struct StackSpec {
  struct Push {
    Value value;
    bool operator==(const Push&) const = default;
  };
  struct Pop {
    bool operator==(const Pop&) const = default;
  };

  using Op = std::variant<Push, Pop>;
  using Resp = Value;  // push -> kOk; pop -> value or kEmpty
  using State = std::vector<Value>;  // back = top

  static State initial() { return {}; }

  static bool enabled(const State&, const Op&, Pid) { return true; }

  static Resp apply(State& s, const Op& op, Pid) {
    if (const auto* push = std::get_if<Push>(&op)) {
      s.push_back(push->value);
      return kOk;
    }
    if (s.empty()) return kEmpty;
    const Value top = s.back();
    s.pop_back();
    return top;
  }

  static std::uint64_t hash(const State& s) {
    std::uint64_t h = mix64(s.size() + 0x57AC);
    for (const Value v : s) h = hash_combine(h, static_cast<std::uint64_t>(v));
    return h;
  }

  static std::string to_string(const Op& op) {
    if (const auto* push = std::get_if<Push>(&op)) {
      return "push(" + std::to_string(push->value) + ")";
    }
    return "pop()";
  }

  static std::string resp_to_string(const Resp& r) {
    if (r == kOk) return "OK";
    if (r == kEmpty) return "EMPTY";
    return std::to_string(r);
  }
};

static_assert(SequentialSpec<StackSpec>);

}  // namespace dssq::dss
