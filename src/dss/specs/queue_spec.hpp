// Sequential specification of a FIFO queue over 64-bit values.
//
// This is the type T whose detectable embodiment D⟨queue⟩ the DSS queue of
// Section 3 implements.  Values are std::int64_t; two reserved sentinels
// encode the non-value responses:
//   kOk    — the response of enqueue;
//   kEmpty — the response of dequeue on an empty queue (the paper's EMPTY).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <variant>

#include "common/rng.hpp"
#include "dss/spec.hpp"

namespace dssq::dss {

/// Queue element type used throughout the library.
using Value = std::int64_t;

/// Response of a successful enqueue (the paper's OK).
inline constexpr Value kOk = INT64_MIN + 1;
/// Response of dequeue on an empty queue (the paper's EMPTY).
inline constexpr Value kEmpty = INT64_MIN + 2;

/// True iff v is an application value (not a reserved sentinel).
constexpr bool is_app_value(Value v) noexcept {
  return v != kOk && v != kEmpty;
}

struct QueueSpec {
  struct Enq {
    Value value;
    bool operator==(const Enq&) const = default;
  };
  struct Deq {
    bool operator==(const Deq&) const = default;
  };

  using Op = std::variant<Enq, Deq>;
  using Resp = Value;
  using State = std::deque<Value>;

  static State initial() { return {}; }

  static bool enabled(const State&, const Op&, Pid) { return true; }

  static Resp apply(State& s, const Op& op, Pid) {
    if (const auto* enq = std::get_if<Enq>(&op)) {
      s.push_back(enq->value);
      return kOk;
    }
    if (s.empty()) return kEmpty;
    const Value front = s.front();
    s.pop_front();
    return front;
  }

  static std::uint64_t hash(const State& s) {
    std::uint64_t h = mix64(s.size());
    for (const Value v : s) h = hash_combine(h, static_cast<std::uint64_t>(v));
    return h;
  }

  static std::string to_string(const Op& op) {
    if (const auto* enq = std::get_if<Enq>(&op)) {
      return "enqueue(" + std::to_string(enq->value) + ")";
    }
    return "dequeue()";
  }

  static std::string resp_to_string(const Resp& r) {
    if (r == kOk) return "OK";
    if (r == kEmpty) return "EMPTY";
    return std::to_string(r);
  }
};

static_assert(SequentialSpec<QueueSpec>);

}  // namespace dssq::dss
