// Sequential specification of a fetch-and-add counter.
//
// Used to exercise the generic D⟨T⟩ transformation on a type whose
// operations return *distinct* responses for repeated applications — the
// case the paper flags as ambiguous when the same operation is prepared
// repeatedly, motivating the auxiliary-argument remedy of Section 2.1
// (the `marker` field below, which is recorded in A[p] but ignored by δ).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/rng.hpp"
#include "dss/spec.hpp"

namespace dssq::dss {

struct CounterSpec {
  struct Add {
    std::int64_t amount;
    /// Auxiliary argument per Section 2.1: saved in A[p] for disambiguating
    /// repeated identical operations, ignored by the state transition.
    std::int64_t marker = 0;
    bool operator==(const Add&) const = default;
  };
  struct Get {
    bool operator==(const Get&) const = default;
  };

  using Op = std::variant<Add, Get>;
  using Resp = std::int64_t;  // Add returns the pre-increment value
  using State = std::int64_t;

  static State initial() { return 0; }

  static bool enabled(const State&, const Op&, Pid) { return true; }

  static Resp apply(State& s, const Op& op, Pid) {
    if (const auto* add = std::get_if<Add>(&op)) {
      const Resp before = s;
      s += add->amount;
      return before;
    }
    return s;
  }

  static std::uint64_t hash(const State& s) {
    return mix64(static_cast<std::uint64_t>(s));
  }

  static std::string to_string(const Op& op) {
    if (const auto* add = std::get_if<Add>(&op)) {
      return "add(" + std::to_string(add->amount) + "#" +
             std::to_string(add->marker) + ")";
    }
    return "get()";
  }

  static std::string resp_to_string(const Resp& r) { return std::to_string(r); }
};

static_assert(SequentialSpec<CounterSpec>);

}  // namespace dssq::dss
