// Anchor translation unit for the detectable base objects.

#include "objects/detectable_cas.hpp"
#include "objects/detectable_counter.hpp"
#include "objects/detectable_register.hpp"
#include "objects/nrlplus_cas.hpp"

namespace dssq::objects {

template class DetectableRegister<pmem::EmulatedNvmContext>;
template class DetectableRegister<pmem::SimContext>;
template class DetectableCounter<pmem::EmulatedNvmContext>;
template class DetectableCounter<pmem::SimContext>;
template class DetectableCas<pmem::EmulatedNvmContext>;
template class DetectableCas<pmem::SimContext>;
template class NrlPlusCas<pmem::SimContext>;
template class NrlPlusCas<pmem::SimContext, 2, 6>;

// Every base object resolves through the unified dss::Resolved surface.
static_assert(dss::Detectable<DetectableRegister<pmem::SimContext>>);
static_assert(dss::Detectable<DetectableCounter<pmem::SimContext>>);
static_assert(dss::Detectable<DetectableCas<pmem::SimContext>>);

}  // namespace dssq::objects
