// NRL+-style detectable CAS — the sequence-number design the paper argues
// against, built for comparison.
//
// The paper (Section 1, point 4 and footnote 1) contrasts the DSS with
// NRL+ [Ben-David, Blelloch, Friedman, Wei]: "NRL+ is ... formalized
// using unbounded sequence numbers to identify different operations,
// which complicates implementation.  In practice, sequence numbers are
// embedded in program variables, which reduces the number of bits
// available to store other state (e.g., a process ID and a data value in
// Algorithm 1 of [7]).  This is especially problematic on current
// generation hardware, which supports only 64-bit failure-atomic writes."
//
// This class makes that trade-off measurable.  The CAS word packs
//   [ seq : SeqBits | tid : TidBits | value : 64 - SeqBits - TidBits ]
// so every bit of sequence number comes directly out of the value range —
// with the default 16-bit seq and 6-bit tid, values are limited to 42
// bits (the DSS queue's tagged-pointer X needs only 4 tag bits and the
// hand-built D⟨CAS⟩ in detectable_cas.hpp gets away with an 8-bit
// parity-style counter because prep/resolve, not the word, carry the
// operation identity).
//
// And the sequence number is NOT actually unbounded: after 2^SeqBits
// operations by one process, detection can alias — a stale helper record
// or word from 2^SeqBits operations ago becomes indistinguishable from
// the current operation.  The test suite demonstrates the aliasing
// concretely with SeqBits = 2 (see test_nrlplus_cas.cpp), turning the
// paper's footnote into an executable counterexample.
//
// Every operation is detectable (NRL/NRL+ have no on-demand knob); the
// per-operation protocol matches detectable_cas.hpp otherwise, so the
// comparison isolates the identification scheme.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/cacheline.hpp"
#include "common/tagged_ptr.hpp"
#include "pmem/context.hpp"

namespace dssq::objects {

template <class Ctx, unsigned SeqBits = 16, unsigned TidBits = 6>
class NrlPlusCas {
 public:
  static_assert(SeqBits >= 1 && TidBits >= 1 && SeqBits + TidBits < 64);
  static constexpr unsigned kValueBits = 64 - SeqBits - TidBits;
  static constexpr std::int64_t kMaxValue =
      (std::int64_t{1} << kValueBits) - 1;
  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << SeqBits) - 1;

  struct Recovered {
    std::int64_t expected = 0;
    std::int64_t desired = 0;
    std::optional<bool> succeeded;  // nullopt: cannot determine (⊥)
  };

  NrlPlusCas(Ctx& ctx, std::size_t max_threads)
      : ctx_(ctx), max_threads_(max_threads) {
    assert(max_threads <= (std::size_t{1} << TidBits));
    word_ = pmem::alloc_object<PaddedWord>(ctx_);
    ann_ = pmem::alloc_array<Announce>(ctx_, max_threads);
    help_ = pmem::alloc_array<HelpEntry>(ctx_, max_threads);
    ctx_.persist(word_, sizeof(PaddedWord));
    ctx_.persist(ann_, sizeof(Announce) * max_threads);
    ctx_.persist(help_, sizeof(HelpEntry) * max_threads);
  }

  /// Detectable CAS (always detectable — no prep phase; the sequence
  /// number in the announce record identifies the operation instance).
  bool cas(std::size_t tid, std::int64_t expected, std::int64_t desired) {
    assert(expected >= 0 && expected <= kMaxValue && desired >= 0 &&
           desired <= kMaxValue);
    Announce& a = ann_[tid];
    const std::uint64_t seq =
        (a.seq.load(std::memory_order_relaxed) + 1) & kSeqMask;
    a.seq.store(seq, std::memory_order_relaxed);
    a.expected.store(expected, std::memory_order_relaxed);
    a.desired.store(desired, std::memory_order_relaxed);
    a.outcome.store(kPending, std::memory_order_release);
    ctx_.persist(&a, sizeof(Announce));
    ctx_.crash_point("nrlplus:announced");

    for (;;) {
      std::uint64_t cur = word_->w.load(std::memory_order_acquire);
      if (unpack_value(cur) != expected) {
        a.outcome.store(kFailed, std::memory_order_release);
        ctx_.persist(&a, sizeof(Announce));
        return false;
      }
      help_previous(cur);
      ctx_.crash_point("nrlplus:pre-swap");
      if (word_->w.compare_exchange_strong(cur,
                                           pack(desired, tid, seq))) {
        ctx_.persist(word_, sizeof(PaddedWord));
        ctx_.crash_point("nrlplus:swapped");
        a.outcome.store(kSucceeded, std::memory_order_release);
        ctx_.persist(&a, sizeof(Announce));
        return true;
      }
    }
  }

  std::int64_t read() const {
    return unpack_value(word_->w.load(std::memory_order_acquire));
  }

  /// NRL-flavoured recovery: determine the outcome of this thread's most
  /// recently INVOKED cas.  Returns nullopt fields when no operation was
  /// ever invoked.  The `succeeded` field is nullopt (⊥) exactly in the
  /// aliasing-prone window the file comment describes.
  Recovered recover(std::size_t tid) const {
    const Announce& a = ann_[tid];
    Recovered r;
    r.expected = a.expected.load(std::memory_order_relaxed);
    r.desired = a.desired.load(std::memory_order_relaxed);
    const std::uint64_t outcome = a.outcome.load(std::memory_order_acquire);
    if (outcome == kSucceeded) {
      r.succeeded = true;
      return r;
    }
    if (outcome == kFailed) {
      r.succeeded = false;
      return r;
    }
    if (outcome != kPending) return r;  // never invoked
    // Pending: inspect the word and the helper record, keyed by (tid, seq)
    // — the scheme whose soundness window is 2^SeqBits operations.
    const std::uint64_t seq = a.seq.load(std::memory_order_relaxed);
    const std::uint64_t cur = word_->w.load(std::memory_order_acquire);
    if (unpack_tid(cur) == tid && unpack_seq(cur) == seq) {
      r.succeeded = true;
      return r;
    }
    const std::uint64_t rec =
        help_[tid].record.load(std::memory_order_acquire);
    if (rec == (kHelpValid | seq)) r.succeeded = true;
    return r;
  }

  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::uint64_t kPending = 1;
  static constexpr std::uint64_t kSucceeded = 2;
  static constexpr std::uint64_t kFailed = 3;
  static constexpr std::uint64_t kHelpValid = tag_bit(15);

  struct alignas(kCacheLineSize) PaddedWord {
    std::atomic<std::uint64_t> w{0};
  };
  struct alignas(kCacheLineSize) Announce {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::int64_t> expected{0};
    std::atomic<std::int64_t> desired{0};
    std::atomic<std::uint64_t> outcome{kIdle};
  };
  struct alignas(kCacheLineSize) HelpEntry {
    std::atomic<std::uint64_t> record{0};
  };

  static std::uint64_t pack(std::int64_t v, std::size_t tid,
                            std::uint64_t seq) noexcept {
    return (seq << (kValueBits + TidBits)) |
           (static_cast<std::uint64_t>(tid) << kValueBits) |
           static_cast<std::uint64_t>(v);
  }
  static std::int64_t unpack_value(std::uint64_t w) noexcept {
    return static_cast<std::int64_t>(w &
                                     ((std::uint64_t{1} << kValueBits) - 1));
  }
  static std::size_t unpack_tid(std::uint64_t w) noexcept {
    return static_cast<std::size_t>((w >> kValueBits) &
                                    ((std::uint64_t{1} << TidBits) - 1));
  }
  static std::uint64_t unpack_seq(std::uint64_t w) noexcept {
    return w >> (kValueBits + TidBits);
  }

  /// Record the current owner's completion before displacing it.
  void help_previous(std::uint64_t cur) {
    const std::size_t owner = unpack_tid(cur);
    if (owner >= max_threads_ || cur == 0) return;
    HelpEntry& h = help_[owner];
    const std::uint64_t rec = kHelpValid | unpack_seq(cur);
    if (h.record.load(std::memory_order_acquire) != rec) {
      h.record.store(rec, std::memory_order_release);
      ctx_.persist(&h, sizeof(HelpEntry));
    }
  }

  Ctx& ctx_;
  std::size_t max_threads_;
  PaddedWord* word_ = nullptr;
  Announce* ann_ = nullptr;
  HelpEntry* help_ = nullptr;
};

}  // namespace dssq::objects
