// D⟨CAS⟩ — a recoverable, detectable Compare-And-Swap object.
//
// With D⟨register⟩, the second base-object type from which Section 2.2
// nests a D⟨queue⟩.  The construction follows the recoverable-CAS idiom of
// Attiya, Ben-Baruch & Hendler (and the space lower bound of Ben-Baruch,
// Hendler & Rusanovsky applies: per-process helping state is unavoidable
// for this "doubly-perturbing" type):
//
//   * the object's word packs (value, owner-tid, owner-seq), so the word
//     itself witnesses the most recent successful CAS;
//   * before overwriting the word, a CASer first persists a completion
//     record for the *current* owner — so a successful CAS remains
//     detectable by its issuer even after being overwritten;
//   * resolve succeeds a prepared CAS iff the word still carries the
//     issuer's (tid, seq), or a completion record names it; a CAS whose
//     expected value mismatched is resolved as failed only when the
//     failure record was persisted — otherwise it reports ⊥ and the
//     application re-runs exec (CAS, like any DSS op, is made exactly-once
//     by the prep/exec/resolve protocol, not by blind retry).
//
// Word layout: [ value:48 | tid:8 | seq:8 ].
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/cacheline.hpp"
#include "common/tagged_ptr.hpp"
#include "dss/detectable.hpp"
#include "pmem/context.hpp"

namespace dssq::objects {

/// The CAS object's single operation kind.
enum class CasOp : std::uint8_t { kNone = 0, kCas };

/// A CAS takes two arguments, so its Resolved carries them as a pair.
struct CasArgs {
  std::int64_t expected = 0;
  std::int64_t desired = 0;
  bool operator==(const CasArgs&) const = default;
};

template <class Ctx>
class DetectableCas {
 public:
  /// arg carries (expected, desired); response is success/failure, or ⊥.
  using Resolved = dss::Resolved<CasOp, bool, CasArgs>;

  DetectableCas(Ctx& ctx, std::size_t max_threads)
      : ctx_(ctx), max_threads_(max_threads) {
    assert(max_threads <= 255);
    word_ = pmem::alloc_object<PaddedWord>(ctx_);
    x_ = pmem::alloc_array<XEntry>(ctx_, max_threads);
    help_ = pmem::alloc_array<HelpEntry>(ctx_, max_threads);
    word_->w.store(pack(0, 0xff, 0), std::memory_order_relaxed);
    ctx_.persist(word_, sizeof(PaddedWord));
    ctx_.persist(x_, sizeof(XEntry) * max_threads);
    ctx_.persist(help_, sizeof(HelpEntry) * max_threads);
  }

  /// prep-cas(expected, desired).
  void prep_cas(std::size_t tid, std::int64_t expected, std::int64_t desired) {
    assert(fits_in_address_bits(static_cast<std::uint64_t>(expected)) &&
           fits_in_address_bits(static_cast<std::uint64_t>(desired)));
    XEntry& x = x_[tid];
    const std::uint8_t seq =
        static_cast<std::uint8_t>(x.seq.load(std::memory_order_relaxed) + 1);
    x.seq.store(seq, std::memory_order_relaxed);
    x.expected.store(expected, std::memory_order_relaxed);
    x.desired.store(desired, std::memory_order_relaxed);
    x.state.store(kPrepared, std::memory_order_release);
    ctx_.persist(&x, sizeof(XEntry));
    ctx_.crash_point("cas:prep");
  }

  /// exec-cas: attempt the prepared CAS; returns success.
  bool exec_cas(std::size_t tid) {
    XEntry& x = x_[tid];
    const std::int64_t expected = x.expected.load(std::memory_order_relaxed);
    const std::int64_t desired = x.desired.load(std::memory_order_relaxed);
    const std::uint8_t seq = x.seq.load(std::memory_order_relaxed);
    for (;;) {
      std::uint64_t cur = word_->w.load(std::memory_order_acquire);
      if (unpack_value(cur) != expected) {
        // Record the failure so resolve can report it deterministically.
        ctx_.crash_point("cas:exec:pre-fail-record");
        x.state.store(kFailed, std::memory_order_release);
        ctx_.persist(&x, sizeof(XEntry));
        return false;
      }
      // Help the current owner's detectability before displacing it.
      record_completion_of(cur);
      ctx_.crash_point("cas:exec:pre-swap");
      if (word_->w.compare_exchange_strong(cur, pack(desired, tid, seq))) {
        ctx_.persist(word_, sizeof(PaddedWord));
        ctx_.crash_point("cas:exec:swapped");
        x.state.store(kSucceeded, std::memory_order_release);
        ctx_.persist(&x, sizeof(XEntry));
        ctx_.crash_point("cas:exec:completed");
        return true;
      }
      // Lost a race: the word changed; re-evaluate from the top.
    }
  }

  /// Non-detectable CAS (Axiom 4).
  bool cas(std::size_t tid, std::int64_t expected, std::int64_t desired) {
    (void)tid;
    for (;;) {
      std::uint64_t cur = word_->w.load(std::memory_order_acquire);
      if (unpack_value(cur) != expected) return false;
      record_completion_of(cur);
      // Owner 0xff, seq 0: never resolved.
      if (word_->w.compare_exchange_strong(cur, pack(desired, 0xff, 0))) {
        ctx_.persist(word_, sizeof(PaddedWord));
        return true;
      }
    }
  }

  /// Linearizable read.
  std::int64_t read() const {
    return unpack_value(word_->w.load(std::memory_order_acquire));
  }

  /// resolve: (A[t], R[t]).  Idempotent and total.
  Resolved resolve(std::size_t tid) const {
    const XEntry& x = x_[tid];
    const std::uint64_t st = x.state.load(std::memory_order_acquire);
    if (st == kIdle) return Resolved::none();
    const CasArgs args{x.expected.load(std::memory_order_relaxed),
                       x.desired.load(std::memory_order_relaxed)};
    if (st == kSucceeded) {
      return Resolved::make(CasOp::kCas, args, true);
    }
    if (st == kFailed) {
      return Resolved::make(CasOp::kCas, args, false);
    }
    // Prepared, no persisted outcome: did the swap land anyway?
    const std::uint8_t seq = x.seq.load(std::memory_order_relaxed);
    const std::uint64_t cur = word_->w.load(std::memory_order_acquire);
    if (unpack_tid(cur) == tid && unpack_seq(cur) == seq) {
      return Resolved::make(CasOp::kCas, args, true);
    }
    const std::uint64_t rec =
        help_[tid].record.load(std::memory_order_acquire);
    if (rec == (kHelpValid | seq)) {
      return Resolved::make(CasOp::kCas, args, true);
    }
    return Resolved::make(CasOp::kCas, args);  // ⊥: the app may re-exec
  }

  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::uint64_t kPrepared = 1;
  static constexpr std::uint64_t kSucceeded = 2;
  static constexpr std::uint64_t kFailed = 3;
  /// Help records carry this tag so a zero-initialized slot (seq 0) is
  /// distinguishable from a recorded completion of seq 0.
  static constexpr std::uint64_t kHelpValid = tag_bit(15);

  struct alignas(kCacheLineSize) PaddedWord {
    std::atomic<std::uint64_t> w{0};
  };
  struct alignas(kCacheLineSize) XEntry {
    std::atomic<std::int64_t> expected{0};
    std::atomic<std::int64_t> desired{0};
    std::atomic<std::uint8_t> seq{0};
    std::atomic<std::uint64_t> state{kIdle};
  };
  struct alignas(kCacheLineSize) HelpEntry {
    std::atomic<std::uint64_t> record{0};
  };

  static std::uint64_t pack(std::int64_t v, std::size_t tid,
                            std::uint8_t seq) noexcept {
    return (static_cast<std::uint64_t>(v) << 16) |
           (static_cast<std::uint64_t>(tid) << 8) | seq;
  }
  static std::int64_t unpack_value(std::uint64_t w) noexcept {
    return static_cast<std::int64_t>(w >> 16);
  }
  static std::size_t unpack_tid(std::uint64_t w) noexcept {
    return static_cast<std::size_t>((w >> 8) & 0xff);
  }
  static std::uint8_t unpack_seq(std::uint64_t w) noexcept {
    return static_cast<std::uint8_t>(w & 0xff);
  }

  void record_completion_of(std::uint64_t cur) {
    const std::size_t owner = unpack_tid(cur);
    if (owner >= max_threads_) return;  // non-detectable or initial owner
    HelpEntry& h = help_[owner];
    const std::uint64_t rec = kHelpValid | unpack_seq(cur);
    if (h.record.load(std::memory_order_acquire) != rec) {
      h.record.store(rec, std::memory_order_release);
      ctx_.persist(&h, sizeof(HelpEntry));
    }
  }

  Ctx& ctx_;
  std::size_t max_threads_;
  PaddedWord* word_ = nullptr;
  XEntry* x_ = nullptr;
  HelpEntry* help_ = nullptr;
};

}  // namespace dssq::objects
