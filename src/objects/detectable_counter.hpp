// D⟨counter⟩ — a recoverable, detectable increment counter.
//
// The counter is the textbook case where detectability is *exact* even for
// a crash in the middle of exec (Figure 2 case (b) never stays ambiguous):
// the counter's value is the sum of per-thread slots, each slot written
// only by its owner, and a slot update is a single failure-atomic 64-bit
// store.  resolve compares the slot against the pre-value recorded at
// prep time: slot == old means the add did not take effect, slot == old +
// amount means it did — there is no third possibility.
//
// This per-thread-slot construction also makes the object wait-free: an
// add is one store + one persist, with no retry loop.
//
// Layout per thread (each on its own cache line):
//   slot[t]  — thread t's contribution to the sum (persistent);
//   X[t]     — (old, amount, prepared?, completed?) detectability record.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/cacheline.hpp"
#include "dss/detectable.hpp"
#include "pmem/context.hpp"

namespace dssq::objects {

/// The counter's single operation kind.
enum class CounterOp : std::uint8_t { kNone = 0, kAdd };

template <class Ctx>
class DetectableCounter {
 public:
  /// arg is the prepared add's amount; response the slot's new value.
  using Resolved = dss::Resolved<CounterOp, std::int64_t>;

  DetectableCounter(Ctx& ctx, std::size_t max_threads)
      : ctx_(ctx), max_threads_(max_threads) {
    slots_ = pmem::alloc_array<Slot>(ctx_, max_threads);
    x_ = pmem::alloc_array<XEntry>(ctx_, max_threads);
    ctx_.persist(slots_, sizeof(Slot) * max_threads);
    ctx_.persist(x_, sizeof(XEntry) * max_threads);
  }

  /// prep-add: remember the slot's current value and the intended amount.
  /// amount must be nonzero: a zero add has no observable state transition,
  /// so "took effect" would be undetectable (and uninteresting).
  void prep_add(std::size_t tid, std::int64_t amount) {
    assert(amount != 0 && "zero adds are not detectable");
    XEntry& x = x_[tid];
    x.old_value.store(slots_[tid].value.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    x.amount.store(amount, std::memory_order_relaxed);
    x.state.store(kPrepared, std::memory_order_release);
    ctx_.persist(&x, sizeof(XEntry));
    ctx_.crash_point("counter:prep-add");
  }

  /// exec-add: apply the prepared add.  Wait-free: one store, one persist.
  void exec_add(std::size_t tid) {
    XEntry& x = x_[tid];
    const std::int64_t old = x.old_value.load(std::memory_order_relaxed);
    const std::int64_t amount = x.amount.load(std::memory_order_relaxed);
    ctx_.crash_point("counter:exec-add:pre-store");
    slots_[tid].value.store(old + amount, std::memory_order_release);
    ctx_.persist(&slots_[tid], sizeof(Slot));
    ctx_.crash_point("counter:exec-add:stored");
    // The completion record is a pure optimisation for resolve; the slot
    // itself is the ground truth.
    x.state.store(kCompleted, std::memory_order_release);
    ctx_.persist(&x, sizeof(XEntry));
    ctx_.crash_point("counter:exec-add:completed");
  }

  /// Non-detectable add (Axiom 4).
  void add(std::size_t tid, std::int64_t amount) {
    Slot& s = slots_[tid];
    s.value.store(s.value.load(std::memory_order_relaxed) + amount,
                  std::memory_order_release);
    ctx_.persist(&s, sizeof(Slot));
  }

  /// Linearizable read: the sum of all slots.  For an increment-only
  /// counter a slot-by-slot scan is linearizable (every scan result lies
  /// between the sums at the scan's start and end).
  std::int64_t read() const {
    std::int64_t sum = 0;
    for (std::size_t t = 0; t < max_threads_; ++t) {
      sum += slots_[t].value.load(std::memory_order_acquire);
    }
    return sum;
  }

  /// resolve: exact detection.  Idempotent and total.
  Resolved resolve(std::size_t tid) const {
    const XEntry& x = x_[tid];
    const std::uint64_t st = x.state.load(std::memory_order_acquire);
    if (st == kIdle) return Resolved::none();  // (⊥, ⊥)
    const std::int64_t amount = x.amount.load(std::memory_order_relaxed);
    const std::int64_t old = x.old_value.load(std::memory_order_relaxed);
    const std::int64_t cur = slots_[tid].value.load(std::memory_order_acquire);
    if (st == kCompleted || cur == old + amount) {
      return Resolved::make(CounterOp::kAdd, amount, cur);  // took effect
    }
    return Resolved::make(CounterOp::kAdd, amount);
  }

  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::uint64_t kPrepared = 1;
  static constexpr std::uint64_t kCompleted = 2;

  struct alignas(kCacheLineSize) Slot {
    std::atomic<std::int64_t> value{0};
  };
  struct alignas(kCacheLineSize) XEntry {
    std::atomic<std::int64_t> old_value{0};
    std::atomic<std::int64_t> amount{0};
    std::atomic<std::uint64_t> state{kIdle};
  };

  Ctx& ctx_;
  std::size_t max_threads_;
  Slot* slots_ = nullptr;
  XEntry* x_ = nullptr;
};

}  // namespace dssq::objects
