// D⟨read/write register⟩ — a recoverable, detectable multi-writer register.
//
// The running example of the paper's Figure 2.  The register word packs
// (value, writer-tid, sequence-parity) into a single failure-atomic 64-bit
// word, so detection can ask "is my write still the register's content?".
// A write that was overwritten before its completion record persisted is
// the hard case (this is why Ben-Baruch, Hendler & Rusanovsky prove
// detectable objects of "perturbing" types need helping state): before
// installing its own value, every writer *helps* the previous writer by
// recording that writer's (tid, seq) as completed in a shared completion
// table.  resolve then reports a write as taken-effect iff
//   * its own completion record was persisted (crash after lines 13–14
//     equivalent), or
//   * the register still holds the write's packed word, or
//   * a later writer's help record names it.
//
// Word layout: [ value:48 | tid:8 | seq:8 ].  Values are therefore
// restricted to 48 bits and thread ids to 255; the sequence parity is a
// per-thread counter maintained by prep (the paper's Section 2.1 remedy
// for repeated identical operations — "a single bit ... is sufficient",
// we keep 8 bits for robustness against deep helping races).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/cacheline.hpp"
#include "common/tagged_ptr.hpp"
#include "dss/detectable.hpp"
#include "pmem/context.hpp"

namespace dssq::objects {

/// The register's single operation kind.
enum class RegisterOp : std::uint8_t { kNone = 0, kWrite };

template <class Ctx>
class DetectableRegister {
 public:
  /// arg is the prepared write's argument; a write's response is its own
  /// argument (the value the register then held).
  using Resolved = dss::Resolved<RegisterOp, std::int64_t>;

  DetectableRegister(Ctx& ctx, std::size_t max_threads)
      : ctx_(ctx), max_threads_(max_threads) {
    assert(max_threads <= 255);
    word_ = pmem::alloc_object<PaddedWord>(ctx_);
    x_ = pmem::alloc_array<XEntry>(ctx_, max_threads);
    help_ = pmem::alloc_array<HelpEntry>(ctx_, max_threads);
    ctx_.persist(word_, sizeof(PaddedWord));
    ctx_.persist(x_, sizeof(XEntry) * max_threads);
    ctx_.persist(help_, sizeof(HelpEntry) * max_threads);
  }

  /// prep-write(v): advance this thread's sequence parity and announce.
  void prep_write(std::size_t tid, std::int64_t v) {
    assert(v >= 0 && fits_in_address_bits(static_cast<std::uint64_t>(v)) &&
           "register values are limited to 48 bits");
    XEntry& x = x_[tid];
    const std::uint8_t seq =
        static_cast<std::uint8_t>(x.seq.load(std::memory_order_relaxed) + 1);
    x.seq.store(seq, std::memory_order_relaxed);
    x.value.store(v, std::memory_order_relaxed);
    x.state.store(kPrepared, std::memory_order_release);
    ctx_.persist(&x, sizeof(XEntry));
    ctx_.crash_point("register:prep-write");
  }

  /// exec-write: install pack(v, tid, seq); record completion.
  void exec_write(std::size_t tid) {
    XEntry& x = x_[tid];
    const std::int64_t v = x.value.load(std::memory_order_relaxed);
    const std::uint8_t seq = x.seq.load(std::memory_order_relaxed);
    help_previous_writer();
    ctx_.crash_point("register:exec-write:pre-store");
    word_->w.store(pack(v, tid, seq), std::memory_order_seq_cst);
    ctx_.persist(word_, sizeof(PaddedWord));
    ctx_.crash_point("register:exec-write:stored");
    x.state.store(kCompleted, std::memory_order_release);
    ctx_.persist(&x, sizeof(XEntry));
    ctx_.crash_point("register:exec-write:completed");
  }

  /// Non-detectable write (Axiom 4); still helps, still persists.
  void write(std::size_t tid, std::int64_t v) {
    assert(fits_in_address_bits(static_cast<std::uint64_t>(v)));
    help_previous_writer();
    // Sequence 0xff marks non-detectable writes; they are never resolved.
    word_->w.store(pack(v, tid, 0xff), std::memory_order_seq_cst);
    ctx_.persist(word_, sizeof(PaddedWord));
  }

  /// Linearizable read.
  std::int64_t read() const {
    return unpack_value(word_->w.load(std::memory_order_acquire));
  }

  /// resolve: (A[t], R[t]).  Idempotent and total.
  Resolved resolve(std::size_t tid) const {
    const XEntry& x = x_[tid];
    const std::uint64_t st = x.state.load(std::memory_order_acquire);
    if (st == kIdle) return Resolved::none();
    const std::int64_t value = x.value.load(std::memory_order_relaxed);
    if (st == kCompleted) {
      return Resolved::make(RegisterOp::kWrite, value, value);
    }
    const std::uint8_t seq = x.seq.load(std::memory_order_relaxed);
    // Still the register's content?
    if (word_->w.load(std::memory_order_acquire) == pack(value, tid, seq)) {
      return Resolved::make(RegisterOp::kWrite, value, value);
    }
    // Did a later writer record our completion while overwriting us?
    const std::uint64_t help = help_[tid].record.load(
        std::memory_order_acquire);
    if (help == (kHelpValid | seq)) {
      return Resolved::make(RegisterOp::kWrite, value, value);
    }
    return Resolved::make(RegisterOp::kWrite, value);
  }

  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::uint64_t kPrepared = 1;
  static constexpr std::uint64_t kCompleted = 2;
  /// Help records carry this tag so a zero-initialized slot (seq 0) is
  /// distinguishable from a recorded completion of seq 0.
  static constexpr std::uint64_t kHelpValid = tag_bit(15);

  struct alignas(kCacheLineSize) PaddedWord {
    std::atomic<std::uint64_t> w{0};
  };
  struct alignas(kCacheLineSize) XEntry {
    std::atomic<std::int64_t> value{0};
    std::atomic<std::uint8_t> seq{0};
    std::atomic<std::uint64_t> state{kIdle};
  };
  struct alignas(kCacheLineSize) HelpEntry {
    // bit 63 set | seq of the helped (completed) write.
    std::atomic<std::uint64_t> record{0};
  };

  static std::uint64_t pack(std::int64_t v, std::size_t tid,
                            std::uint8_t seq) noexcept {
    return (static_cast<std::uint64_t>(v) << 16) |
           (static_cast<std::uint64_t>(tid) << 8) | seq;
  }
  static std::int64_t unpack_value(std::uint64_t w) noexcept {
    return static_cast<std::int64_t>(w >> 16);
  }
  static std::size_t unpack_tid(std::uint64_t w) noexcept {
    return static_cast<std::size_t>((w >> 8) & 0xff);
  }
  static std::uint8_t unpack_seq(std::uint64_t w) noexcept {
    return static_cast<std::uint8_t>(w & 0xff);
  }

  /// Record the current content's (tid, seq) as completed before we
  /// overwrite it, so its writer can resolve correctly even if it crashed
  /// between its store and its completion record.
  void help_previous_writer() {
    const std::uint64_t cur = word_->w.load(std::memory_order_acquire);
    const std::size_t prev_tid = unpack_tid(cur);
    const std::uint8_t prev_seq = unpack_seq(cur);
    if (prev_seq == 0xff || prev_tid >= max_threads_) return;  // ND write
    if (cur == 0) return;  // initial state: no writer to help
    HelpEntry& h = help_[prev_tid];
    const std::uint64_t rec = kHelpValid | prev_seq;
    if (h.record.load(std::memory_order_acquire) != rec) {
      h.record.store(rec, std::memory_order_release);
      ctx_.persist(&h, sizeof(HelpEntry));
    }
  }

  Ctx& ctx_;
  std::size_t max_threads_;
  PaddedWord* word_ = nullptr;
  XEntry* x_ = nullptr;
  HelpEntry* help_ = nullptr;
};

}  // namespace dssq::objects
