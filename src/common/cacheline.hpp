// Cache-line geometry helpers.
//
// Persistence on current-generation hardware is cache-line granular: CLWB /
// CLFLUSHOPT write back whole 64-byte lines, and after a crash the
// persistence domain contains some set of complete lines.  Everything in the
// pmem substrate (flush tracking, the shadow-pool crash simulator, the
// emulated-latency backend) therefore reasons in units of cache lines.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dssq {

/// Size of a cache line (and of the persistence granule) in bytes.
inline constexpr std::size_t kCacheLineSize = 64;

/// Round `addr` down to the start of its cache line.
constexpr std::uintptr_t cache_line_base(std::uintptr_t addr) noexcept {
  return addr & ~static_cast<std::uintptr_t>(kCacheLineSize - 1);
}

/// Index of the cache line containing `addr`, relative to `base`.
/// Precondition: base <= addr.
constexpr std::size_t cache_line_index(std::uintptr_t base,
                                       std::uintptr_t addr) noexcept {
  return static_cast<std::size_t>((addr - base) / kCacheLineSize);
}

/// Number of cache lines spanned by the byte range [addr, addr + size).
/// A zero-sized range still touches one line (matches CLWB of its address).
constexpr std::size_t cache_lines_spanned(std::uintptr_t addr,
                                          std::size_t size) noexcept {
  if (size == 0) return 1;
  const std::uintptr_t first = cache_line_base(addr);
  const std::uintptr_t last = cache_line_base(addr + size - 1);
  return static_cast<std::size_t>((last - first) / kCacheLineSize) + 1;
}

/// Round `n` up to a multiple of the cache-line size.
constexpr std::size_t round_up_to_line(std::size_t n) noexcept {
  return (n + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
}

}  // namespace dssq
