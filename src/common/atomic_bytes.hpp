// Word-wise atomic copies of trivially-copyable objects.
//
// Some persistent-memory code paths deliberately let several threads write
// the SAME value to the same location — e.g. the universal construction's
// response memoization, where every replayer of the deterministic log
// computes identical bytes, and the shadow pool's write-back emulation,
// which snapshots cache lines while application threads store into them.
// Those overlaps are benign on real hardware (x86-64 never tears an
// aligned 8-byte store), but they are data races in the C++ abstract
// machine, and ThreadSanitizer rightly reports mixed plain/atomic access.
//
// These helpers make the discipline explicit: an object covered by them is
// only ever read and written through relaxed atomic word (and trailing
// byte) accesses, so concurrent identical writes and concurrent snapshot
// reads are well-defined.  Relaxed suffices — callers publish with their
// own release/acquire flag (e.g. resp_ready), exactly as the flush/fence
// protocol publishes with its own persist ordering.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace dssq {

namespace detail {

inline bool word_aligned(const void* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & (sizeof(std::uint64_t) - 1)) ==
         0;
}

}  // namespace detail

/// Store `src` into `*dst` through relaxed atomic words (trailing bytes via
/// relaxed atomic bytes).  Concurrent callers storing identical bytes — and
/// concurrent atomic_load_object / shadow-pool line snapshots — are
/// well-defined.
template <class T>
void atomic_store_object(T* dst, const T& src) noexcept {
  static_assert(std::is_trivially_copyable_v<T>,
                "atomic_store_object requires a trivially copyable type");
  unsigned char buf[sizeof(T)];
  std::memcpy(buf, &src, sizeof(T));
  auto* out = reinterpret_cast<unsigned char*>(dst);
  std::size_t i = 0;
  if (detail::word_aligned(out)) {
    for (; i + sizeof(std::uint64_t) <= sizeof(T); i += sizeof(std::uint64_t)) {
      std::uint64_t w;
      std::memcpy(&w, buf + i, sizeof(w));
      std::atomic_ref<std::uint64_t>(
          *reinterpret_cast<std::uint64_t*>(out + i))
          .store(w, std::memory_order_relaxed);
    }
  }
  for (; i < sizeof(T); ++i) {
    std::atomic_ref<unsigned char>(out[i]).store(buf[i],
                                                 std::memory_order_relaxed);
  }
}

/// Load `*src` through relaxed atomic words (see atomic_store_object).
template <class T>
T atomic_load_object(const T* src) noexcept {
  static_assert(std::is_trivially_copyable_v<T>,
                "atomic_load_object requires a trivially copyable type");
  unsigned char buf[sizeof(T)];
  auto* in = reinterpret_cast<unsigned char*>(const_cast<T*>(src));
  std::size_t i = 0;
  if (detail::word_aligned(in)) {
    for (; i + sizeof(std::uint64_t) <= sizeof(T); i += sizeof(std::uint64_t)) {
      const std::uint64_t w =
          std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(
                                             in + i))
              .load(std::memory_order_relaxed);
      std::memcpy(buf + i, &w, sizeof(w));
    }
  }
  for (; i < sizeof(T); ++i) {
    buf[i] = std::atomic_ref<unsigned char>(in[i]).load(
        std::memory_order_relaxed);
  }
  T out;
  std::memcpy(&out, buf, sizeof(T));
  return out;
}

}  // namespace dssq
