// Small, fast, deterministic pseudo-random generators.
//
// Used by workload generators, the shadow-pool crash adversary (which picks
// the subset of unflushed cache lines that "survive" a crash) and the
// property-based tests.  Determinism under a fixed seed is a requirement:
// every crash-injection test must be replayable from its seed.
#pragma once

#include <cstdint>

namespace dssq {

/// SplitMix64 — used to seed Xoshiro and for cheap one-off hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — general-purpose generator for workloads and adversaries.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Precondition: bound > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Hash a 64-bit value (SplitMix64 finalizer); used by the linearizability
/// checker's memoization table.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Combine two hashes (boost-style).
constexpr std::uint64_t hash_combine(std::uint64_t h,
                                     std::uint64_t v) noexcept {
  return h ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace dssq
