// Log-bucketed latency histograms (HDR-histogram style).
//
// Detectability's cost is paid in per-operation persist stalls, so the
// interesting latency numbers are the TAIL percentiles — a mean hides the
// occasional fence that costs 100× the median op.  Recording every sample
// is out of the question on the bench hot path; instead each sample lands
// in one of ~1200 buckets whose width grows geometrically: exact buckets
// below 32 ns, then 32 sub-buckets per power of two (≤ ~3.2% relative
// width) up to ~37 minutes, saturating above.  A histogram add is a
// bounds-free array increment; percentiles are recovered offline by
// nearest-rank over the bucket counts, mirroring Stats::percentile.
//
// The value type below is always compiled (it is pure arithmetic, used by
// tools and tests); the per-thread recording glue in namespace dssq::hist
// follows the metrics.hpp discipline and compiles to no-ops when the
// DSSQ_TRACE CMake option is OFF.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#ifndef DSSQ_TRACE_ENABLED
#define DSSQ_TRACE_ENABLED 1
#endif

namespace dssq {

class LatencyHistogram {
 public:
  /// log2 of the sub-bucket count: 32 sub-buckets per octave keeps the
  /// relative bucket width under 1/32 ≈ 3.2%.
  static constexpr std::size_t kSubBits = 5;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  /// Values below 2^kSubBits get an exact bucket each.
  static constexpr std::uint64_t kIdentityLimit = std::uint64_t{1}
                                                  << kSubBits;
  /// Largest value exponent with its own octave (2^(kMaxExp+1)-1 ns is
  /// ~37 minutes); larger values saturate into the final bucket.
  static constexpr std::size_t kMaxExp = 40;
  static constexpr std::size_t kBucketCount =
      (kMaxExp - kSubBits + 1) * kSubBuckets + kSubBuckets;

  /// Bucket index for value `v`; total over the identity region and one
  /// group of kSubBuckets per octave, saturating at kBucketCount-1.
  static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kIdentityLimit) return static_cast<std::size_t>(v);
    std::size_t exp = static_cast<std::size_t>(std::bit_width(v)) - 1;
    if (exp > kMaxExp) return kBucketCount - 1;
    const std::size_t sub =
        static_cast<std::size_t>(v >> (exp - kSubBits)) & (kSubBuckets - 1);
    return (exp - kSubBits + 1) * kSubBuckets + sub;
  }

  /// Smallest value mapping to bucket `idx`.
  static constexpr std::uint64_t bucket_lower(std::size_t idx) noexcept {
    if (idx < kSubBuckets) return idx;
    const std::size_t exp = idx / kSubBuckets + kSubBits - 1;
    const std::uint64_t sub = idx % kSubBuckets;
    return (std::uint64_t{1} << exp) | (sub << (exp - kSubBits));
  }

  /// Largest value mapping to bucket `idx` (inclusive).
  static constexpr std::uint64_t bucket_upper(std::size_t idx) noexcept {
    if (idx < kSubBuckets) return idx;
    const std::size_t exp = idx / kSubBuckets + kSubBits - 1;
    return bucket_lower(idx) + (std::uint64_t{1} << (exp - kSubBits)) - 1;
  }

  void add(std::uint64_t v, std::uint64_t n = 1) noexcept {
    if (n == 0) return;
    buckets_[bucket_index(v)] += n;
    count_ += n;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    if (other.count_ > 0) {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
  }

  /// Widen min/max to cover the exact extremes [lo, hi] of samples whose
  /// bucket counts were transferred via add(bucket_lower, n) — which only
  /// sees bucket lower bounds.  Counts are unaffected; no-op when empty.
  void note_extremes(std::uint64_t lo, std::uint64_t hi) noexcept {
    if (count_ == 0) return;
    if (lo < min_) min_ = lo;
    if (hi > max_) max_ = hi;
  }

  std::uint64_t count() const noexcept { return count_; }
  /// Exact observed extremes (0 when empty).
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }

  /// Nearest-rank percentile, p in [0,100] (Stats::percentile semantics:
  /// rank = ceil(p/100 * count), element rank-1 of the sorted samples).
  /// Returns the matching bucket's midpoint clamped to [min, max] — exact
  /// in the identity region, within ~3.2% above it.  0 when empty.
  std::uint64_t percentile(double p) const noexcept;

  const std::array<std::uint64_t, kBucketCount>& buckets() const noexcept {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

// ---- per-thread recording glue (mirrors dssq::metrics) ----------------------

namespace hist {

#if DSSQ_TRACE_ENABLED

inline constexpr bool kEnabled = true;

/// Record one operation latency (ns) into the calling thread's slot.
void record(std::uint64_t ns) noexcept;

/// Sum of all per-thread slots (call at a quiescent point).
LatencyHistogram merged() noexcept;

/// Zero every slot (between measured bench cells).
void reset() noexcept;

#else

inline constexpr bool kEnabled = false;

inline void record(std::uint64_t) noexcept {}
inline LatencyHistogram merged() noexcept { return {}; }
inline void reset() noexcept {}

#endif  // DSSQ_TRACE_ENABLED

}  // namespace hist

}  // namespace dssq
