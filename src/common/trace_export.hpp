// Chrome-tracing / Perfetto JSON export of flight-recorder contents.
//
// Renders a FlightRecorder — live from the current process, or forensically
// from the raw bytes of a crashed heap file — as a JSON trace loadable in
// ui.perfetto.dev (or chrome://tracing): one track per ring, op begin/end
// pairs as duration slices named "<op>/<phase>", CAS retries and
// persistence primitives as thread-scoped instants, Figure-6 recovery
// steps as "recovery:<step>" instants, and the armed crash point — the
// KillSwitch's final act — as "crash-point:<label>".
//
// Forensic reads go through export_file(), which reads the heap file's raw
// bytes and scans them for the recorder block.  It deliberately does NOT
// open the file as a PersistentHeap: opening a heap mutates it (generation
// bump, clean-shutdown bookkeeping), and a post-mortem must not disturb
// the evidence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/flight_recorder.hpp"

namespace dssq::trace {

struct ExportMeta {
  /// Shown as the Perfetto process name.
  std::string process_name = "dssq";
  /// Per-ring boundary sequence numbers: records with seq <= boundary were
  /// written by the crashed incarnation, later ones by the recovering one
  /// (annotated in each event's args).  Empty = no incarnation split.
  std::vector<std::uint64_t> boundary_seq;
};

/// Render `rec` (all rings) as a Chrome-tracing JSON document.
std::string export_chrome_json(const FlightRecorder& rec,
                               const ExportMeta& meta = {});

/// Forensic export: read `in_path`'s raw bytes, locate the recorder block,
/// and write the Chrome-tracing JSON to `out_path`.  On failure returns
/// false and, when `err` is non-null, a one-line reason.
bool export_file(const std::string& in_path, const std::string& out_path,
                 const ExportMeta& meta = {}, std::string* err = nullptr);

}  // namespace dssq::trace
