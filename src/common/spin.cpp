#include "common/spin.hpp"

#include <atomic>
#include <chrono>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace dssq {

void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

namespace {

// One calibration pass: time a large fixed number of pause iterations.
double calibrate_iterations_per_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  constexpr std::uint64_t kIters = 200'000;
  // Warm up so frequency scaling settles.
  for (std::uint64_t i = 0; i < kIters / 10; ++i) cpu_pause();
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) cpu_pause();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count();
  if (elapsed <= 0) return 1.0;
  return static_cast<double>(kIters) / static_cast<double>(elapsed);
}

double iterations_per_ns_cached() noexcept {
  static const double value = calibrate_iterations_per_ns();
  return value;
}

}  // namespace

double spin_iterations_per_ns() noexcept { return iterations_per_ns_cached(); }

void spin_for_ns(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  const double per_ns = iterations_per_ns_cached();
  std::uint64_t iters =
      static_cast<std::uint64_t>(per_ns * static_cast<double>(ns));
  if (iters == 0) iters = 1;
  for (std::uint64_t i = 0; i < iters; ++i) cpu_pause();
}

}  // namespace dssq
