// Tagged-pointer utilities.
//
// The DSS queue (Li & Golab, DISC'21, Section 3) stores per-thread
// detectability state in an array X of 64-bit words, each holding a node
// pointer whose most-significant bits are borrowed for status tags
// (ENQ_PREP_TAG, ENQ_COMPL_TAG, DEQ_PREP_TAG, EMPTY_TAG).  Modern x86-64
// implements 48 address bits, leaving 16 bits available for tags (paper,
// footnote 5).  These helpers pack/unpack such words.
//
// The same representation is reused by the PMwCAS substrate (descriptor /
// dirty / RDCSS flag bits) and by the detectable base objects.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace dssq {

/// A 64-bit word that is either a (possibly null) pointer with tag bits in
/// positions 48..63, or a pure tag word.  All operations are constexpr and
/// total; the caller is responsible for tag-bit allocation.
using TaggedWord = std::uint64_t;

/// Mask covering the 48 architectural address bits.
inline constexpr TaggedWord kAddressMask = (std::uint64_t{1} << 48) - 1;

/// Mask covering the 16 tag bits.
inline constexpr TaggedWord kTagMask = ~kAddressMask;

/// Make a tag constant occupying bit `bit_index` of the tag field
/// (0 <= bit_index < 16, i.e. physical bit 48 + bit_index).
constexpr TaggedWord tag_bit(unsigned bit_index) noexcept {
  return std::uint64_t{1} << (48 + bit_index);
}

/// Pack a pointer and a set of tags into one word.
template <typename T>
constexpr TaggedWord make_tagged(T* ptr, TaggedWord tags = 0) noexcept {
  return (std::bit_cast<std::uintptr_t>(ptr) & kAddressMask) |
         (tags & kTagMask);
}

/// Extract the pointer, discarding all tags.
template <typename T>
T* untag(TaggedWord word) noexcept {
  return std::bit_cast<T*>(static_cast<std::uintptr_t>(word & kAddressMask));
}

/// True iff all bits of `tags` are set in `word`.
constexpr bool has_tag(TaggedWord word, TaggedWord tags) noexcept {
  return (word & tags) == tags;
}

/// True iff any bit of `tags` is set in `word`.
constexpr bool has_any_tag(TaggedWord word, TaggedWord tags) noexcept {
  return (word & tags) != 0;
}

/// Return `word` with `tags` set.
constexpr TaggedWord with_tag(TaggedWord word, TaggedWord tags) noexcept {
  return word | tags;
}

/// Return `word` with `tags` cleared.
constexpr TaggedWord without_tag(TaggedWord word, TaggedWord tags) noexcept {
  return word & ~tags;
}

/// The tag bits of `word`.
constexpr TaggedWord tags_of(TaggedWord word) noexcept {
  return word & kTagMask;
}

/// The 48 address bits of `word` (the payload of a pure-value word).
constexpr TaggedWord address_bits(TaggedWord word) noexcept {
  return word & kAddressMask;
}

/// True iff `value` occupies only the 48 address bits, i.e. packing it into
/// a TaggedWord cannot collide with any tag.
constexpr bool fits_in_address_bits(std::uint64_t value) noexcept {
  return (value & kTagMask) == 0;
}

/// True iff the address part of `word` is null.
constexpr bool is_null_ptr(TaggedWord word) noexcept {
  return (word & kAddressMask) == 0;
}

// ---- lane field (sharded queues) ------------------------------------------
//
// The sharded DSS queue records which lane an operation targeted alongside
// the usual tagged node pointer: tag bits 0..3 keep the ENQ/DEQ status
// tags, tag bits 4..15 hold a lane index.  Packing the lane into the same
// word keeps a thread's whole detectability record a single failure-atomic
// 64-bit store — prep/exec/resolve transition it exactly like the
// single-lane X entry, with no second word to tear against.

/// Physical bit of the first lane-field bit (tag bit 4).
inline constexpr unsigned kLaneFieldShift = 48 + 4;

/// Largest encodable lane index (12 lane bits → lanes 0..4095).
inline constexpr std::uint64_t kLaneFieldMax = (std::uint64_t{1} << 12) - 1;

/// Mask covering the lane field.
inline constexpr TaggedWord kLaneFieldMask = kLaneFieldMax << kLaneFieldShift;

/// The lane field with index `lane` (callers keep lane <= kLaneFieldMax).
constexpr TaggedWord lane_field(std::size_t lane) noexcept {
  return (static_cast<TaggedWord>(lane) & kLaneFieldMax) << kLaneFieldShift;
}

/// Extract the lane index from a word's lane field.
constexpr std::size_t lane_of(TaggedWord word) noexcept {
  return static_cast<std::size_t>((word >> kLaneFieldShift) & kLaneFieldMax);
}

}  // namespace dssq
