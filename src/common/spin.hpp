// Calibrated busy-waiting and contention backoff.
//
// The emulated-NVM backend models Optane write-back latency by spinning for
// a configured number of nanoseconds on every flushed cache line.  The spin
// must not yield or sleep (a real CLWB+SFENCE stalls the core), so we use a
// calibrated pause loop.
#pragma once

#include <cstdint>

namespace dssq {

/// Issue a CPU pause/yield hint appropriate for spin loops.
void cpu_pause() noexcept;

/// Busy-spin for approximately `ns` nanoseconds without yielding the core.
/// Calibrated once per process on first use; accuracy is within a few
/// percent for ns >= ~50, which is sufficient for latency emulation.
void spin_for_ns(std::uint64_t ns) noexcept;

/// Number of pause iterations per nanosecond, as calibrated (exposed for
/// tests and diagnostics).
double spin_iterations_per_ns() noexcept;

/// Truncated exponential backoff for CAS retry loops (CP.free: keep retry
/// loops from hammering the coherence fabric under contention).
class Backoff {
 public:
  constexpr Backoff() noexcept = default;

  void pause() noexcept {
    for (std::uint32_t i = 0; i < current_; ++i) cpu_pause();
    if (current_ < kMaxSpins) current_ *= 2;
  }

  constexpr void reset() noexcept { current_ = kMinSpins; }

 private:
  static constexpr std::uint32_t kMinSpins = 4;
  static constexpr std::uint32_t kMaxSpins = 1024;
  std::uint32_t current_ = kMinSpins;
};

}  // namespace dssq
