// Stable small thread identifiers.
//
// All algorithms in this library follow the paper's model: a set Π of n
// processes with distinct small IDs 1..n (we use 0..n-1), where a process
// that recovers after a crash *keeps its ID* so it can refer to its earlier
// actions (paper, Section 2; the "secondary identity that survives crash
// failures" discussed in Section 5).  Operations therefore take an explicit
// `tid`.  The registry hands out and recycles such identities for harness
// code that spawns OS threads.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

namespace dssq {

class ThreadRegistry {
 public:
  /// Create a registry for up to `max_threads` simultaneous identities.
  explicit ThreadRegistry(std::size_t max_threads);

  ThreadRegistry(const ThreadRegistry&) = delete;
  ThreadRegistry& operator=(const ThreadRegistry&) = delete;

  /// Claim the lowest free ID.  Throws std::runtime_error when exhausted.
  std::size_t acquire();

  /// Claim a specific ID (used by recovery: a revived thread reclaims the
  /// identity it held before the crash).  Throws if already taken.
  void acquire_exact(std::size_t tid);

  /// Release an ID for reuse.
  void release(std::size_t tid);

  std::size_t max_threads() const noexcept { return in_use_.size(); }
  std::size_t active() const;

 private:
  mutable std::mutex mu_;
  std::vector<bool> in_use_;
};

/// RAII identity lease.
class ThreadIdentity {
 public:
  explicit ThreadIdentity(ThreadRegistry& reg)
      : reg_(&reg), tid_(reg.acquire()) {}
  ThreadIdentity(ThreadRegistry& reg, std::size_t exact_tid)
      : reg_(&reg), tid_(exact_tid) {
    reg.acquire_exact(exact_tid);
  }
  ~ThreadIdentity() {
    if (reg_ != nullptr) reg_->release(tid_);
  }
  ThreadIdentity(ThreadIdentity&& other) noexcept
      : reg_(other.reg_), tid_(other.tid_) {
    other.reg_ = nullptr;
  }
  ThreadIdentity& operator=(ThreadIdentity&&) = delete;
  ThreadIdentity(const ThreadIdentity&) = delete;
  ThreadIdentity& operator=(const ThreadIdentity&) = delete;

  std::size_t tid() const noexcept { return tid_; }

 private:
  ThreadRegistry* reg_;
  std::size_t tid_;
};

}  // namespace dssq
