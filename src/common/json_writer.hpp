// Minimal streaming JSON emitter — no external dependencies.
//
// Just enough JSON for the bench reports (BENCH_<name>.json) and metric
// dumps: objects, arrays, strings (escaped), integers, doubles and bools.
// Emission is strictly sequential; the writer tracks nesting and inserts
// commas, so call sites read like the document they produce:
//
//   json::Writer w;
//   w.begin_object();
//     w.kv("bench", "fig5a");
//     w.key("series"); w.begin_array();
//       ...
//     w.end_array();
//   w.end_object();
//   w.write_file("BENCH_fig5a.json");
//
// Non-finite doubles serialize as null (JSON has no NaN/Inf).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cmath>
#include <string>
#include <string_view>
#include <vector>

namespace dssq::json {

class Writer {
 public:
  void begin_object() {
    comma();
    out_ += '{';
    scopes_.push_back(true);
  }
  void end_object() {
    scopes_.pop_back();
    out_ += '}';
  }
  void begin_array() {
    comma();
    out_ += '[';
    scopes_.push_back(true);
  }
  void end_array() {
    scopes_.pop_back();
    out_ += ']';
  }

  /// Member name inside an object; the next value/begin_* is its value.
  void key(std::string_view k) {
    comma();
    append_string(k);
    out_ += ':';
    after_key_ = true;
  }

  void value(std::string_view s) {
    comma();
    append_string(s);
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b) {
    comma();
    out_ += b ? "true" : "false";
  }
  void value(std::uint64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
  }
  void value(std::int64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out_ += buf;
  }
  void value(double v) {
    comma();
    if (!std::isfinite(v)) {
      out_ += "null";
      return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    out_ += buf;
  }

  template <class V>
  void kv(std::string_view k, V v) {
    key(k);
    value(v);
  }

  const std::string& str() const noexcept { return out_; }

  /// Write the document (plus a trailing newline) to `path`.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok =
        std::fwrite(out_.data(), 1, out_.size(), f) == out_.size() &&
        std::fputc('\n', f) != EOF;
    return std::fclose(f) == 0 && ok;
  }

 private:
  void comma() {
    if (after_key_) {
      after_key_ = false;
      return;  // value directly after its key
    }
    if (!scopes_.empty()) {
      if (scopes_.back()) {
        scopes_.back() = false;  // first element of this scope
      } else {
        out_ += ',';
      }
    }
  }

  void append_string(std::string_view s) {
    out_ += '"';
    for (const char ch : s) {
      const auto c = static_cast<unsigned char>(ch);
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += ch;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> scopes_;  // per open scope: "no element emitted yet"
  bool after_key_ = false;
};

}  // namespace dssq::json
