#include "common/histogram.hpp"

#include <atomic>
#include <cmath>

#if DSSQ_TRACE_ENABLED
#include "common/cacheline.hpp"
#include "common/thread_registry.hpp"
#endif

namespace dssq {

std::uint64_t LatencyHistogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const std::uint64_t lo = bucket_lower(i);
      const std::uint64_t hi = bucket_upper(i);
      std::uint64_t mid = lo + (hi - lo) / 2;
      if (mid < min_) mid = min_;
      if (mid > max_) mid = max_;
      return mid;
    }
  }
  return max_;
}

namespace hist {

#if DSSQ_TRACE_ENABLED

namespace {

// Same slot scheme as metrics.cpp: 64 leased slots plus one shared
// overflow slot.  Buckets are relaxed atomics so the overflow slot —
// which any number of threads may share — stays race-free; leased slots
// pay the same (uncontended) atomic add.
constexpr std::size_t kSlotCapacity = 64;

struct alignas(kCacheLineSize) Slot {
  std::atomic<std::uint64_t> buckets[LatencyHistogram::kBucketCount];
  std::atomic<std::uint64_t> min{UINT64_MAX};
  std::atomic<std::uint64_t> max{0};
};

Slot g_slots[kSlotCapacity + 1];

ThreadRegistry& slot_registry() {
  static ThreadRegistry registry(kSlotCapacity);
  return registry;
}

struct SlotLease {
  std::size_t id;
  SlotLease() noexcept {
    try {
      id = slot_registry().acquire();
    } catch (...) {
      id = kSlotCapacity;  // registry exhausted: share the overflow slot
    }
  }
  ~SlotLease() {
    if (id < kSlotCapacity) slot_registry().release(id);
  }
};

Slot& local_slot() noexcept {
  thread_local SlotLease lease;
  return g_slots[lease.id];
}

void atomic_floor(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_ceil(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void record(std::uint64_t ns) noexcept {
  Slot& s = local_slot();
  s.buckets[LatencyHistogram::bucket_index(ns)].fetch_add(
      1, std::memory_order_relaxed);
  atomic_floor(s.min, ns);
  atomic_ceil(s.max, ns);
}

LatencyHistogram merged() noexcept {
  LatencyHistogram out;
  for (std::size_t slot = 0; slot <= kSlotCapacity; ++slot) {
    const Slot& s = g_slots[slot];
    std::uint64_t slot_count = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
      const std::uint64_t n = s.buckets[i].load(std::memory_order_relaxed);
      if (n == 0) continue;
      slot_count += n;
      // Reconstruct through add() so count stays consistent; min/max are
      // overwritten below from the slot's exact extremes.
      out.add(LatencyHistogram::bucket_lower(i), n);
    }
    if (slot_count > 0) {
      out.note_extremes(s.min.load(std::memory_order_relaxed),
                        s.max.load(std::memory_order_relaxed));
    }
  }
  return out;
}

void reset() noexcept {
  for (std::size_t slot = 0; slot <= kSlotCapacity; ++slot) {
    Slot& s = g_slots[slot];
    for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
    s.min.store(UINT64_MAX, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

#endif  // DSSQ_TRACE_ENABLED

}  // namespace hist

}  // namespace dssq
