#include "common/rng.hpp"

// All generator code is constexpr in the header; this translation unit
// anchors the target and provides compile-time self-checks of the reference
// vectors so a miscompiled generator fails the build rather than producing
// silently-wrong adversary schedules.

namespace dssq {
namespace {

// Reference vector for SplitMix64 with seed 1234567
// (from the public-domain reference implementation by Sebastiano Vigna).
constexpr std::uint64_t splitmix_first(std::uint64_t seed) {
  SplitMix64 sm(seed);
  return sm.next();
}
static_assert(splitmix_first(1234567) == 6457827717110365317ULL,
              "SplitMix64 does not match the reference implementation");

constexpr bool xoshiro_nonzero() {
  Xoshiro256 x(42);
  std::uint64_t acc = 0;
  for (int i = 0; i < 8; ++i) acc |= x.next();
  return acc != 0;
}
static_assert(xoshiro_nonzero(), "Xoshiro256 produced an all-zero stream");

}  // namespace
}  // namespace dssq
