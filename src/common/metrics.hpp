// Observability counters — the measurement substrate behind every
// "measurably faster" claim in this repository.
//
// The paper's evaluation (Section 4) is about *attributed* cost: the gap
// between the MS queue, the non-detectable DSS queue and the detectable
// DSS queue is the price of persistence and of detectability, and that
// price is paid in concrete events — cache-line write-backs, persist
// fences, CAS retries.  This header provides cache-line-padded per-thread
// counter slots for those events, so benches can report not just "Mops/s"
// but "flushes per operation", turning the paper's prose claims (e.g. the
// detectable queue's extra X persists) into testable ratios.
//
// Design rules:
//   * counting must never perturb what it measures: each OS thread owns a
//     padded slot (leased from a ThreadRegistry on first use) and bumps it
//     with relaxed adds on its own cache line — no sharing, no fences;
//   * aggregation (snapshot/reset) is for quiescent or statistical use:
//     totals are sums of relaxed per-slot reads;
//   * the whole subsystem compiles to no-ops when the CMake option
//     DSSQ_METRICS is OFF (DSSQ_METRICS_ENABLED=0), so the hot path of a
//     metrics-free build is provably unchanged.
//
// Counter semantics and the paper lines they instrument are documented in
// docs/observability.md.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/cacheline.hpp"

#ifndef DSSQ_METRICS_ENABLED
#define DSSQ_METRICS_ENABLED 1
#endif

namespace dssq::metrics {

enum class Counter : std::size_t {
  kOps = 0,                // operations issued through a harness adapter
  kFlushCalls,             // backend flush() invocations (CLWB batches)
  kFlushLines,             // cache lines written back across those calls
  kFences,                 // backend fence() invocations (SFENCE)
  kFencesElided,           // combined fences satisfied by another thread
  kFencesCombined,         // combiner-issued fences that covered waiters
  kCombinerSpinFallbacks,  // bounded spin expired; thread self-fenced
  kCasRetries,             // failed-CAS / stale-snapshot loop repetitions
  kEbrRetired,             // nodes handed to EBR limbo
  kEbrReclaimed,           // nodes whose reclaim callback ran
  kRecoveryNodesScanned,   // nodes visited by a recovery pass
  kRecoveryTagsRepaired,   // X/log records completed by recovery
  kOpsCombined,            // operations applied by op-combining batches
  kLaneScans,              // full lane scans by a sharded dequeue
  kLeasesAcquired,         // detectability slots leased to a client
  kLeasesReclaimed,        // leases taken over from a provably dead client
  kCount
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Stable machine-readable counter name (used as the JSON key).
inline const char* name(Counter c) noexcept {
  switch (c) {
    case Counter::kOps: return "ops";
    case Counter::kFlushCalls: return "flush_calls";
    case Counter::kFlushLines: return "flush_lines";
    case Counter::kFences: return "fences";
    case Counter::kFencesElided: return "fences_elided";
    case Counter::kFencesCombined: return "fences_combined";
    case Counter::kCombinerSpinFallbacks: return "combiner_spin_fallbacks";
    case Counter::kCasRetries: return "cas_retries";
    case Counter::kEbrRetired: return "ebr_retired";
    case Counter::kEbrReclaimed: return "ebr_reclaimed";
    case Counter::kRecoveryNodesScanned: return "recovery_nodes_scanned";
    case Counter::kRecoveryTagsRepaired: return "recovery_tags_repaired";
    case Counter::kOpsCombined: return "ops_combined";
    case Counter::kLaneScans: return "lane_scans";
    case Counter::kLeasesAcquired: return "leases_acquired";
    case Counter::kLeasesReclaimed: return "leases_reclaimed";
    case Counter::kCount: break;
  }
  return "unknown";
}

/// Point-in-time totals (sum over every slot).  Snapshots taken before and
/// after a run subtract to the run's attribution; all counters are
/// monotonic between reset() calls, so deltas never underflow.
struct Snapshot {
  std::array<std::uint64_t, kCounterCount> values{};

  std::uint64_t operator[](Counter c) const noexcept {
    return values[static_cast<std::size_t>(c)];
  }
  Snapshot operator-(const Snapshot& rhs) const noexcept {
    Snapshot d;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      d.values[i] = values[i] - rhs.values[i];
    }
    return d;
  }
};

/// What one recovery pass did (the Figure-6 walk).  Kept separate from the
/// global counters so a white-box test can interrogate a specific queue's
/// last recovery even in a DSSQ_METRICS=OFF build — recovery is a cold
/// path, so this costs the hot path nothing.
struct RecoveryTrace {
  std::uint64_t nodes_scanned = 0;   // list walk from the persisted head
  std::uint64_t tags_repaired = 0;   // ENQ_COMPL (or log-result) completions
  std::uint64_t nodes_reclaimed = 0; // nodes returned to free lists
  bool head_moved = false;           // head advanced past marked prefix
  bool tail_moved = false;           // tail repaired to the last node
};

#if DSSQ_METRICS_ENABLED

inline constexpr bool kEnabled = true;

namespace detail {
// kCounterCount words exceed one line; alignment (not exact size) is what
// prevents two slots from sharing a line.
struct alignas(kCacheLineSize) Slot {
  std::array<std::atomic<std::uint64_t>, kCounterCount> c{};
};

/// The calling thread's slot (leased on first use, released at thread
/// exit; slot contents survive the lease so totals stay monotonic).
Slot& local_slot() noexcept;
}  // namespace detail

/// Bump a counter on the calling thread's slot.  Wait-free, no sharing.
inline void add(Counter c, std::uint64_t n = 1) noexcept {
  detail::local_slot().c[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

/// Index of the calling thread's slot (tests: slot-isolation assertions).
/// Threads beyond the registry's capacity share the overflow slot
/// (index == max_slots()).
std::size_t slot_id() noexcept;
std::size_t max_slots() noexcept;

/// One slot's current value (tests).  `slot` in [0, max_slots()].
std::uint64_t slot_value(std::size_t slot, Counter c) noexcept;

/// Sum of every slot, per counter.
Snapshot snapshot() noexcept;

/// Zero every slot.  Call only at quiescence (concurrent adds may be lost).
void reset() noexcept;

#else  // !DSSQ_METRICS_ENABLED — every entry point folds to nothing.

inline constexpr bool kEnabled = false;

inline void add(Counter, std::uint64_t = 1) noexcept {}
inline std::size_t slot_id() noexcept { return 0; }
inline std::size_t max_slots() noexcept { return 0; }
inline std::uint64_t slot_value(std::size_t, Counter) noexcept { return 0; }
inline Snapshot snapshot() noexcept { return {}; }
inline void reset() noexcept {}

#endif  // DSSQ_METRICS_ENABLED

}  // namespace dssq::metrics
