#include "common/metrics.hpp"

#if DSSQ_METRICS_ENABLED

#include "common/thread_registry.hpp"

namespace dssq::metrics {
namespace {

// 256 concurrent threads cover every harness in the repo with headroom
// (kMaxThreads is 32); index kSlotCapacity is the shared overflow slot for
// any excess, so add() never fails or blocks.
constexpr std::size_t kSlotCapacity = 256;

detail::Slot g_slots[kSlotCapacity + 1];

ThreadRegistry& slot_registry() {
  static ThreadRegistry registry(kSlotCapacity);
  return registry;
}

// RAII lease: a thread claims the lowest free slot on first use and returns
// it at thread exit.  The slot's counters are deliberately NOT cleared on
// either transition — totals are sums over all slots, and zeroing on reuse
// would silently drop the previous tenant's contribution.
struct SlotLease {
  std::size_t id;
  SlotLease() noexcept {
    try {
      id = slot_registry().acquire();
    } catch (...) {
      id = kSlotCapacity;  // registry exhausted: share the overflow slot
    }
  }
  ~SlotLease() {
    if (id < kSlotCapacity) slot_registry().release(id);
  }
};

std::size_t local_slot_id() noexcept {
  thread_local SlotLease lease;
  return lease.id;
}

}  // namespace

namespace detail {
Slot& local_slot() noexcept { return g_slots[local_slot_id()]; }
}  // namespace detail

std::size_t slot_id() noexcept { return local_slot_id(); }

std::size_t max_slots() noexcept { return kSlotCapacity; }

std::uint64_t slot_value(std::size_t slot, Counter c) noexcept {
  if (slot > kSlotCapacity) return 0;
  return g_slots[slot].c[static_cast<std::size_t>(c)].load(
      std::memory_order_relaxed);
}

Snapshot snapshot() noexcept {
  Snapshot s;
  for (std::size_t slot = 0; slot <= kSlotCapacity; ++slot) {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      s.values[i] += g_slots[slot].c[i].load(std::memory_order_relaxed);
    }
  }
  return s;
}

void reset() noexcept {
  for (std::size_t slot = 0; slot <= kSlotCapacity; ++slot) {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      g_slots[slot].c[i].store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace dssq::metrics

#endif  // DSSQ_METRICS_ENABLED
