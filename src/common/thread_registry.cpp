#include "common/thread_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace dssq {

ThreadRegistry::ThreadRegistry(std::size_t max_threads)
    : in_use_(max_threads, false) {
  if (max_threads == 0) {
    throw std::invalid_argument("ThreadRegistry: max_threads must be > 0");
  }
}

std::size_t ThreadRegistry::acquire() {
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < in_use_.size(); ++i) {
    if (!in_use_[i]) {
      in_use_[i] = true;
      return i;
    }
  }
  throw std::runtime_error("ThreadRegistry: all thread identities in use");
}

void ThreadRegistry::acquire_exact(std::size_t tid) {
  std::lock_guard lock(mu_);
  if (tid >= in_use_.size()) {
    throw std::out_of_range("ThreadRegistry: tid out of range");
  }
  if (in_use_[tid]) {
    throw std::runtime_error("ThreadRegistry: identity already in use");
  }
  in_use_[tid] = true;
}

void ThreadRegistry::release(std::size_t tid) {
  std::lock_guard lock(mu_);
  if (tid < in_use_.size()) in_use_[tid] = false;
}

std::size_t ThreadRegistry::active() const {
  std::lock_guard lock(mu_);
  return static_cast<std::size_t>(
      std::count(in_use_.begin(), in_use_.end(), true));
}

}  // namespace dssq
