#include "common/trace_export.hpp"

#include <cstdio>
#include <limits>

#include "common/json_writer.hpp"

namespace dssq::trace {

namespace {

std::string slice_name(const DecodedRecord& r) {
  std::string s = name(r.op);
  if (r.phase != Phase::kNone) {
    s += '/';
    s += name(r.phase);
  }
  return s;
}

/// Chrome-tracing timestamps are microseconds (doubles); keep full ns
/// precision in the fraction and rebase to the earliest record so the
/// viewer opens at t=0.
double to_us(std::uint64_t t, std::uint64_t t0) { return (t - t0) / 1000.0; }

void event_prelude(json::Writer& w, const std::string& name, const char* ph,
                   std::size_t ring, double ts) {
  w.begin_object();
  w.kv("name", name);
  w.kv("ph", ph);
  w.kv("pid", std::uint64_t{1});
  w.kv("tid", static_cast<std::uint64_t>(ring));
  w.kv("ts", ts);
}

void args_tail(json::Writer& w, const DecodedRecord& r,
               const ExportMeta& meta, std::size_t ring) {
  w.key("args");
  w.begin_object();
  w.kv("seq", r.seq);
  if (ring < meta.boundary_seq.size()) {
    w.kv("incarnation", r.seq <= meta.boundary_seq[ring]
                            ? "crashed"
                            : "recovering");
  }
  w.end_object();
}

}  // namespace

std::string export_chrome_json(const FlightRecorder& rec,
                               const ExportMeta& meta) {
  std::vector<std::vector<DecodedRecord>> rings;
  std::uint64_t t0 = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < rec.ring_count(); ++i) {
    rings.push_back(rec.decode_ring(i));
    for (const DecodedRecord& r : rings.back()) {
      if (r.time_ns < t0) t0 = r.time_ns;
    }
  }
  if (t0 == std::numeric_limits<std::uint64_t>::max()) t0 = 0;

  json::Writer w;
  w.begin_object();
  w.kv("displayTimeUnit", "ns");
  w.key("traceEvents");
  w.begin_array();

  // Metadata: process name, one named track per ring.
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", std::uint64_t{1});
  w.key("args");
  w.begin_object();
  w.kv("name", meta.process_name);
  w.end_object();
  w.end_object();
  for (std::size_t i = 0; i < rings.size(); ++i) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", std::uint64_t{1});
    w.kv("tid", static_cast<std::uint64_t>(i));
    w.key("args");
    w.begin_object();
    w.kv("name", "ring " + std::to_string(i));
    w.end_object();
    w.end_object();
  }

  for (std::size_t ring = 0; ring < rings.size(); ++ring) {
    std::vector<DecodedRecord> open;  // pending op-begins (stack)
    for (const DecodedRecord& r : rings[ring]) {
      switch (r.event) {
        case Event::kOpBegin:
          open.push_back(r);
          break;
        case Event::kOpEnd: {
          if (!open.empty()) {
            const DecodedRecord begin = open.back();
            open.pop_back();
            event_prelude(w, slice_name(r), "X", ring,
                          to_us(begin.time_ns, t0));
            w.kv("dur", to_us(r.time_ns, begin.time_ns));
            args_tail(w, begin, meta, ring);
            w.end_object();
          } else {
            // End without a surviving begin (the begin rolled off the
            // ring): show where the op finished at least.
            event_prelude(w, slice_name(r) + " (end)", "i", ring,
                          to_us(r.time_ns, t0));
            w.kv("s", "t");
            args_tail(w, r, meta, ring);
            w.end_object();
          }
          break;
        }
        case Event::kRecoveryStep: {
          const auto step = static_cast<RecoveryStep>(r.arg >> 40);
          event_prelude(w, std::string("recovery:") + name(step), "i", ring,
                        to_us(r.time_ns, t0));
          w.kv("s", "t");
          w.key("args");
          w.begin_object();
          w.kv("seq", r.seq);
          w.kv("count", r.arg & ((std::uint64_t{1} << 40) - 1));
          if (ring < meta.boundary_seq.size()) {
            w.kv("incarnation", r.seq <= meta.boundary_seq[ring]
                                    ? "crashed"
                                    : "recovering");
          }
          w.end_object();
          w.end_object();
          break;
        }
        case Event::kCrashPointArmed: {
          const char* text = rec.label(r.arg);
          std::string nm = "crash-point:";
          if (text != nullptr) {
            nm += text;
          } else {
            char buf[24];
            std::snprintf(buf, sizeof buf, "%#llx",
                          static_cast<unsigned long long>(r.arg));
            nm += buf;
          }
          event_prelude(w, nm, "i", ring, to_us(r.time_ns, t0));
          w.kv("s", "t");
          args_tail(w, r, meta, ring);
          w.end_object();
          break;
        }
        case Event::kCasRetry:
        case Event::kFlush:
        case Event::kFence:
        case Event::kFenceElided:
        case Event::kCombinerFallback:
        case Event::kOpCombined:
        case Event::kLaneScan:
        case Event::kLeaseAcquired:
        case Event::kLeaseReclaimed: {
          event_prelude(w, name(r.event), "i", ring, to_us(r.time_ns, t0));
          w.kv("s", "t");
          args_tail(w, r, meta, ring);
          w.end_object();
          break;
        }
        case Event::kNone:
          break;
      }
    }
    // Ops that began but never ended — the thread was mid-operation when
    // the recording stopped (likely the SIGKILL instant).
    for (const DecodedRecord& r : open) {
      event_prelude(w, slice_name(r) + " (incomplete)", "i", ring,
                    to_us(r.time_ns, t0));
      w.kv("s", "t");
      args_tail(w, r, meta, ring);
      w.end_object();
    }
  }

  w.end_array();
  w.end_object();
  return w.str();
}

bool export_file(const std::string& in_path, const std::string& out_path,
                 const ExportMeta& meta, std::string* err) {
  std::FILE* f = std::fopen(in_path.c_str(), "rb");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open " + in_path;
    return false;
  }
  std::vector<char> bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);

  const std::size_t off = FlightRecorder::find(bytes.data(), bytes.size());
  if (off == SIZE_MAX) {
    if (err != nullptr) *err = "no flight-recorder block in " + in_path;
    return false;
  }
  const FlightRecorder rec =
      FlightRecorder::attach(bytes.data() + off, bytes.size() - off);
  const std::string doc = export_chrome_json(rec, meta);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    if (err != nullptr) *err = "cannot write " + out_path;
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), out) == doc.size() &&
                  std::fputc('\n', out) != EOF;
  if (std::fclose(out) != 0 || !ok) {
    if (err != nullptr) *err = "short write to " + out_path;
    return false;
  }
  return true;
}

}  // namespace dssq::trace
