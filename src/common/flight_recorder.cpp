#include "common/flight_recorder.hpp"

#include <algorithm>

namespace dssq::trace {

const char* name(Event e) noexcept {
  switch (e) {
    case Event::kNone: return "none";
    case Event::kOpBegin: return "op-begin";
    case Event::kOpEnd: return "op-end";
    case Event::kCasRetry: return "cas-retry";
    case Event::kFlush: return "flush";
    case Event::kFence: return "fence";
    case Event::kFenceElided: return "fence-elided";
    case Event::kCombinerFallback: return "combiner-fallback";
    case Event::kRecoveryStep: return "recovery-step";
    case Event::kCrashPointArmed: return "crash-point-armed";
    case Event::kOpCombined: return "op-combined";
    case Event::kLaneScan: return "lane-scan";
    case Event::kLeaseAcquired: return "lease-acquired";
    case Event::kLeaseReclaimed: return "lease-reclaimed";
  }
  return "?";
}

const char* name(Op o) noexcept {
  switch (o) {
    case Op::kNone: return "op";
    case Op::kEnqueue: return "enqueue";
    case Op::kDequeue: return "dequeue";
  }
  return "?";
}

const char* name(Phase p) noexcept {
  switch (p) {
    case Phase::kNone: return "";
    case Phase::kPrep: return "prep";
    case Phase::kExec: return "exec";
    case Phase::kResolve: return "resolve";
  }
  return "?";
}

const char* name(RecoveryStep s) noexcept {
  switch (s) {
    case RecoveryStep::kScan: return "scan";
    case RecoveryStep::kTailRepair: return "tail-repair";
    case RecoveryStep::kHeadRepair: return "head-repair";
    case RecoveryStep::kTagRepair: return "tag-repair";
    case RecoveryStep::kReclaim: return "reclaim";
  }
  return "?";
}

std::size_t FlightRecorder::bytes_for(std::size_t rings,
                                      std::size_t records_per_ring) noexcept {
  return sizeof(RecorderHeader) + sizeof(Label) * kLabelCapacity +
         sizeof(RingControl) * rings + sizeof(Record) * rings *
                                           records_per_ring;
}

FlightRecorder FlightRecorder::format(void* mem, std::size_t rings,
                                      std::size_t records_per_ring) noexcept {
  std::memset(mem, 0, bytes_for(rings, records_per_ring));
  auto* hdr = new (mem) RecorderHeader;
  // dssq-lint: allow(header-persist) this is the RECORDER header, not the
  // heap's segment header: the block is volatile-by-design (its durability
  // comes from retired stores reaching MAP_SHARED pages, validated by
  // per-record stamps), and a persist here would trip trace-hot-path.
  hdr->version = kVersion;
  // dssq-lint: allow(header-persist) see above — recorder header, no
  // persist by design.
  hdr->ring_count = rings;
  // dssq-lint: allow(header-persist) see above — recorder header, no
  // persist by design.
  hdr->records_per_ring = records_per_ring;
  // dssq-lint: allow(header-persist) see above — recorder header, no
  // persist by design.
  hdr->label_capacity = kLabelCapacity;
  // Magic goes in last: a block is discoverable only once its geometry is
  // in place (matters when the block lives in a shared mapping).
  // dssq-lint: allow(header-persist) see above — recorder header, no
  // persist by design.
  hdr->magic = kMagic;
  return FlightRecorder(hdr, rings, records_per_ring);
}

FlightRecorder FlightRecorder::attach(void* mem, std::size_t bytes) noexcept {
  if (mem == nullptr || bytes < sizeof(RecorderHeader)) return {};
  auto* hdr = static_cast<RecorderHeader*>(mem);
  if (hdr->magic != kMagic || hdr->version != kVersion) return {};
  const std::uint64_t rings = hdr->ring_count;
  const std::uint64_t per_ring = hdr->records_per_ring;
  if (rings == 0 || rings > kMaxRings) return {};
  if (per_ring == 0 || per_ring > kMaxRecordsPerRing) return {};
  if (hdr->label_capacity != kLabelCapacity) return {};
  if (bytes_for(rings, per_ring) > bytes) return {};
  return FlightRecorder(hdr, rings, per_ring);
}

std::size_t FlightRecorder::find(const void* bytes, std::size_t n) noexcept {
  const char* base = static_cast<const char*>(bytes);
  if (n < sizeof(RecorderHeader)) return SIZE_MAX;
  for (std::size_t off = 0; off + sizeof(RecorderHeader) <= n;
       off += kCacheLineSize) {
    std::uint64_t magic;
    std::memcpy(&magic, base + off, sizeof(magic));
    if (magic != kMagic) continue;
    // attach() re-validates geometry; const_cast is fine because an
    // invalid candidate is never written through.
    if (FlightRecorder::attach(const_cast<char*>(base) + off, n - off)
            .valid()) {
      return off;
    }
  }
  return SIZE_MAX;
}

std::uint32_t FlightRecorder::intern_label(const char* text) noexcept {
  const std::uint32_t h = label_hash(text);
  Label* tab = labels();
  for (std::size_t i = 0; i < kLabelCapacity; ++i) {
    std::uint64_t cur = tab[i].hash.load(std::memory_order_acquire);
    if (cur == h) return h;  // already interned (by us or a peer)
    if (cur != 0) continue;
    std::uint64_t expected = 0;
    if (tab[i].hash.compare_exchange_strong(expected, h,
                                            std::memory_order_acq_rel)) {
      std::strncpy(tab[i].name, text, sizeof(tab[i].name) - 1);
      return h;
    }
    if (expected == h) return h;  // peer raced us to the same label
  }
  return h;  // table full: exports fall back to the bare hash
}

const char* FlightRecorder::label(std::uint64_t hash) const noexcept {
  if (hash == 0) return nullptr;
  const Label* tab = labels();
  for (std::size_t i = 0; i < kLabelCapacity; ++i) {
    if (tab[i].hash.load(std::memory_order_acquire) == hash) {
      return tab[i].name;
    }
  }
  return nullptr;
}

std::vector<DecodedRecord> FlightRecorder::decode_ring(
    std::size_t ring) const {
  std::vector<DecodedRecord> out;
  if (!valid() || ring >= rings_) return out;
  const Record* ring_base = records(ring);
  const auto validates = [&](std::uint64_t seq) {
    const Record& r = ring_base[(seq - 1) % per_ring_];
    return r.seq == seq && r.check == record_check(seq, r.time_ns, r.data);
  };
  // A crash between a record body and its count bump leaves the counter
  // one short of the newest complete record: probe forward past the
  // counter for records that already validate.
  std::uint64_t tail = controls()[ring].next_seq.load(std::memory_order_acquire);
  for (std::size_t probes = 0; probes < per_ring_ && validates(tail + 1);
       ++probes) {
    ++tail;
  }
  if (tail == 0) return out;
  const std::uint64_t first =
      tail >= per_ring_ ? tail - per_ring_ + 1 : 1;
  // Ascending scan.  Two kinds of damage can appear, both at the window's
  // edges: the OLDEST slot may be mid-overwrite by a record one lap ahead
  // (skip the invalid prefix), and the NEWEST may be torn (stop at the
  // first invalid record once the valid run has started, dropping exactly
  // the untrustworthy suffix).
  bool started = false;
  for (std::uint64_t seq = first; seq <= tail; ++seq) {
    if (!validates(seq)) {
      if (started) break;
      continue;
    }
    started = true;
    const Record& r = ring_base[(seq - 1) % per_ring_];
    DecodedRecord d;
    d.seq = seq;
    d.time_ns = r.time_ns;
    d.arg = r.data >> 16;
    d.event = static_cast<Event>(r.data & 0xff);
    d.op = static_cast<Op>((r.data >> 8) & 0xf);
    d.phase = static_cast<Phase>((r.data >> 12) & 0xf);
    out.push_back(d);
  }
  return out;
}

#if DSSQ_TRACE_ENABLED

namespace {

// The installed recorder, published as its header pointer (release) with
// the geometry written first — emitters acquire the pointer and may then
// read the geometry.  install()/uninstall() require emitter quiescence for
// ring-lease hygiene, but a late emitter never sees a half-published view.
std::atomic<RecorderHeader*> g_hdr{nullptr};
std::size_t g_rings = 0;
std::size_t g_per_ring = 0;
FlightRecorder g_rec;  // pre-attached view, published via g_hdr

// Epoch bumped by every install(), so stale thread-local bindings from a
// previous recorder are never carried into the next one.
std::atomic<std::uint64_t> g_epoch{1};

// Ring leases for threads that emit without an explicit bind_ring().
// Explicit binds (paper tids, low indices) also mark their claim so a
// leasing thread never shares a writer's ring; leases scan from the TOP to
// keep clear of not-yet-bound tids.
std::atomic<std::uint8_t> g_claims[FlightRecorder::kMaxRings];

std::atomic<std::uint64_t> g_dropped{0};

struct Binding {
  std::uint64_t epoch = 0;
  std::size_t ring = 0;
  bool bound = false;    // explicit bind_ring()
  bool leased = false;   // cooperative lease (released at thread exit)

  void release_lease() noexcept {
    if (leased && epoch == g_epoch.load(std::memory_order_acquire)) {
      g_claims[ring].store(0, std::memory_order_release);
    }
    leased = false;
  }
  ~Binding() { release_lease(); }
};

Binding& local_binding() noexcept {
  thread_local Binding b;
  return b;
}

/// The calling thread's ring under the current epoch, leasing one if
/// needed.  Returns SIZE_MAX when every ring is claimed.
std::size_t resolve_ring(std::size_t rings) noexcept {
  Binding& b = local_binding();
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (b.epoch == epoch && (b.bound || b.leased) && b.ring < rings) {
    return b.ring;
  }
  b.bound = false;
  b.leased = false;
  for (std::size_t i = rings; i-- > 0;) {
    std::uint8_t expected = 0;
    if (g_claims[i].compare_exchange_strong(expected, 1,
                                            std::memory_order_acq_rel)) {
      b.epoch = epoch;
      b.ring = i;
      b.leased = true;
      return i;
    }
  }
  return SIZE_MAX;
}

}  // namespace

void install(const FlightRecorder& r) noexcept {
  if (!r.valid()) return;
  g_rings = r.ring_count();
  g_per_ring = r.records_per_ring();
  g_rec = r;
  for (auto& c : g_claims) c.store(0, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  g_hdr.store(const_cast<RecorderHeader*>(
                  static_cast<const RecorderHeader*>(r.block())),
              std::memory_order_release);
}

void uninstall() noexcept {
  g_hdr.store(nullptr, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

FlightRecorder active() noexcept {
  if (g_hdr.load(std::memory_order_acquire) == nullptr) return {};
  return g_rec;
}

void bind_ring(std::size_t ring) noexcept {
  Binding& b = local_binding();
  b.release_lease();
  b.epoch = g_epoch.load(std::memory_order_acquire);
  b.ring = ring;
  b.bound = true;
  if (ring < FlightRecorder::kMaxRings) {
    g_claims[ring].store(1, std::memory_order_release);
  }
}

void unbind_ring() noexcept {
  Binding& b = local_binding();
  if (b.bound && b.epoch == g_epoch.load(std::memory_order_acquire) &&
      b.ring < FlightRecorder::kMaxRings) {
    g_claims[b.ring].store(0, std::memory_order_release);
  }
  b.bound = false;
  b.leased = false;
}

std::uint64_t dropped() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

void emit(Event e, Op o, Phase p, std::uint64_t arg) noexcept {
  if (g_hdr.load(std::memory_order_acquire) == nullptr) return;
  const std::size_t ring = resolve_ring(g_rings);
  if (ring == SIZE_MAX) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  g_rec.emit(ring, e, o, p, arg);
}

void crash_point_armed(const char* label) noexcept {
  if (g_hdr.load(std::memory_order_acquire) == nullptr) return;
  const std::uint32_t h = g_rec.intern_label(label);
  emit(Event::kCrashPointArmed, Op::kNone, Phase::kNone, h);
}

#endif  // DSSQ_TRACE_ENABLED

}  // namespace dssq::trace
