// Summary statistics for benchmark harnesses.
//
// The paper reports, per data point, the mean throughput over ten runs and
// notes that the sample standard deviation stays below 2% of the mean
// (Section 4).  The bench harness reproduces that reporting style.
#pragma once

#include <cstddef>
#include <vector>

namespace dssq {

/// Online accumulator (Welford) for mean / variance; also keeps the raw
/// samples so percentiles can be computed.
class Stats {
 public:
  void add(double x);

  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept { return mean_; }
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const noexcept;
  /// stddev / mean, as a fraction; 0 when mean is 0.
  double coeff_of_variation() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Percentile in [0,100] by nearest-rank on a sorted copy.
  double percentile(double p) const;

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dssq
