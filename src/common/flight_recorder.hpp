// Flight recorder — a crash-surviving black box for the DSS algorithms.
//
// PR 1's counters say *how many* flushes and CAS retries a run paid; this
// layer says *what each thread was doing, in order, right up to the
// instant it died*.  Each thread owns a cache-line-padded, fixed-size ring
// of 32-byte trace records (operation begin/end with the DSS phase, CAS
// retries, persistence primitives, Figure-6 recovery steps, and the crash
// point at which a KillSwitch fired).  The ring block is plain POD with no
// internal pointers, so it can live INSIDE a PersistentHeap: after a
// SIGKILL the next incarnation re-maps the heap and reads the dead
// process's last N events per thread — the forensic raw material behind
// tools/traceview and crashrun's post-crash Perfetto export.
//
// Design rules (the metrics.hpp discipline, applied to traces):
//   * recording must never perturb what it measures: one writer per ring,
//     plain stores on the writer's own cache lines, one relaxed-release
//     counter bump — and NO persist/flush/fence on the hot path.  The
//     recorder is best-effort-durable by design: whatever the kernel kept
//     is what recovery reads (enforced by pmem_lint's trace-hot-path rule);
//   * because nothing is persisted, the tail record may be torn.  Every
//     record carries a validity stamp (a mix of its sequence number,
//     timestamp and payload), and readers accept a ring's records oldest to
//     newest only while stamps and sequence numbers agree — a torn or
//     garbled record ends the timeline and drops exactly the torn suffix;
//   * live reads (repl `stats`, bench export) require quiescence; forensic
//     reads (a dead process's heap) are always safe — the writer is gone;
//   * the whole hot path compiles to no-ops when the CMake option
//     DSSQ_TRACE is OFF (DSSQ_TRACE_ENABLED=0), mirroring DSSQ_METRICS.
//
// Record layout, the torn-tail protocol and the Perfetto export are
// documented in docs/observability.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/cacheline.hpp"

#ifndef DSSQ_TRACE_ENABLED
#define DSSQ_TRACE_ENABLED 1
#endif

namespace dssq::trace {

// ---- event vocabulary -------------------------------------------------------

enum class Event : std::uint8_t {
  kNone = 0,
  kOpBegin,          // op/phase fields say which operation entered
  kOpEnd,            // ... and which returned
  kCasRetry,         // one failed-CAS / stale-snapshot loop repetition
  kFlush,            // backend flush() (CLWB batch / msync)
  kFence,            // backend fence() (SFENCE / fdatasync)
  kFenceElided,      // combined fence satisfied by another thread's fence
  kCombinerFallback, // combiner spin bound expired; the thread self-fenced
  kRecoveryStep,     // arg = (RecoveryStep << 40) | count
  kCrashPointArmed,  // arg = interned label hash; the KillSwitch fired here
  kOpCombined,       // a combiner applied a batch; arg = batch size
  kLaneScan,         // a sharded dequeue scanned every lane; arg = lanes
  kLeaseAcquired,    // a client leased a detectability slot; arg = slot
  kLeaseReclaimed,   // a dead client's lease was taken over; arg = slot
};

enum class Op : std::uint8_t { kNone = 0, kEnqueue, kDequeue };

enum class Phase : std::uint8_t { kNone = 0, kPrep, kExec, kResolve };

/// What a Figure-6 recovery pass is doing (one kRecoveryStep event each).
enum class RecoveryStep : std::uint8_t {
  kScan = 0,     // count = nodes reachable from the persisted head
  kTailRepair,   // count = 1 iff tail moved
  kHeadRepair,   // count = 1 iff head moved
  kTagRepair,    // count = completion tags repaired
  kReclaim,      // count = nodes returned to free lists
};

const char* name(Event e) noexcept;
const char* name(Op o) noexcept;
const char* name(Phase p) noexcept;
const char* name(RecoveryStep s) noexcept;

// ---- persistent record format ----------------------------------------------

/// One 32-byte trace record.  8-byte fields only (single-store failure
/// atomicity for each field); `check` is the validity stamp that detects a
/// torn tail — see record_check().
struct Record {
  std::uint64_t seq = 0;      // 1-based, monotone per ring
  std::uint64_t time_ns = 0;  // CLOCK_MONOTONIC, shared across processes
  std::uint64_t data = 0;     // event | op<<8 | phase<<12 | arg<<16
  std::uint64_t check = 0;    // mix of the three fields above
};
static_assert(sizeof(Record) == 32);

/// splitmix64 finalizer: every input bit avalanches into the output, so a
/// single torn byte in a record flips the stamp with overwhelming
/// probability.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

constexpr std::uint64_t record_check(std::uint64_t seq, std::uint64_t time_ns,
                                     std::uint64_t data) noexcept {
  // The salt keeps an all-zero record (fresh ring memory) invalid.
  return mix64(seq ^ mix64(time_ns ^ mix64(data ^ 0x9e3779b97f4a7c15ULL)));
}

constexpr std::uint64_t pack_data(Event e, Op o, Phase p,
                                  std::uint64_t arg) noexcept {
  return static_cast<std::uint64_t>(e) |
         (static_cast<std::uint64_t>(o) << 8) |
         (static_cast<std::uint64_t>(p) << 12) | (arg << 16);
}

/// FNV-1a over a label string, folded to 32 bits (collisions among the
/// handful of crash-point labels are negligible; 32 bits leave the arg
/// field room to spare).
constexpr std::uint32_t label_hash(const char* s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ULL;
  }
  const std::uint32_t folded =
      static_cast<std::uint32_t>(h) ^ static_cast<std::uint32_t>(h >> 32);
  return folded == 0 ? 1 : folded;  // 0 means "empty label slot"
}

// ---- the recorder block -----------------------------------------------------

/// Per-ring control line.  `next_seq` counts records written (the next
/// record gets next_seq+1); it is bumped with a release store AFTER the
/// record body, so a quiescent reader that acquires it sees complete
/// records — and a crash between body and bump at worst hides one record,
/// which the reader's forward probe recovers (see decode_ring).
struct alignas(kCacheLineSize) RingControl {
  std::atomic<std::uint64_t> next_seq{0};
  std::uint8_t pad_[kCacheLineSize - sizeof(std::atomic<std::uint64_t>)]{};
};
static_assert(sizeof(RingControl) == kCacheLineSize);

/// One interned label (crash-point names).  The hash doubles as the claim
/// word: slots are taken with a CAS from 0, then the text is filled in, so
/// forensic readers can map a record's label hash back to its string
/// without access to the dead process's binary.
struct Label {
  std::atomic<std::uint64_t> hash{0};
  char name[kCacheLineSize - sizeof(std::atomic<std::uint64_t>)]{};
};
static_assert(sizeof(Label) == kCacheLineSize);

/// Block header (one cache line).  Validated by attach()/find() before any
/// geometry is trusted.
struct alignas(kCacheLineSize) RecorderHeader {
  std::uint64_t magic = 0;
  std::uint64_t version = 0;
  std::uint64_t ring_count = 0;
  std::uint64_t records_per_ring = 0;
  std::uint64_t label_capacity = 0;
  std::uint64_t reserved[3] = {0, 0, 0};
};
static_assert(sizeof(RecorderHeader) == kCacheLineSize);

/// A decoded (validated) record.
struct DecodedRecord {
  std::uint64_t seq = 0;
  std::uint64_t time_ns = 0;
  std::uint64_t arg = 0;
  Event event = Event::kNone;
  Op op = Op::kNone;
  Phase phase = Phase::kNone;
};

/// Non-owning view over a recorder block (header + labels + rings) living
/// in any memory — a PersistentHeap, a malloc'd buffer, or a byte-for-byte
/// copy of a crashed heap file.  The block holds no pointers, so views at
/// different addresses (or in different processes) read the same state.
class FlightRecorder {
 public:
  static constexpr std::uint64_t kMagic = 0x44535351'54524143ULL;  // DSSQTRAC
  static constexpr std::uint64_t kVersion = 1;
  static constexpr std::size_t kLabelCapacity = 64;
  static constexpr std::size_t kMaxRings = 1024;
  static constexpr std::size_t kMaxRecordsPerRing = 1u << 20;

  FlightRecorder() = default;

  /// Bytes a block with this geometry occupies (header + labels + rings).
  static std::size_t bytes_for(std::size_t rings,
                               std::size_t records_per_ring) noexcept;

  /// Initialize a fresh block in `mem` (cache-line aligned, at least
  /// bytes_for() bytes).  Zeroes everything and writes the header.
  static FlightRecorder format(void* mem, std::size_t rings,
                               std::size_t records_per_ring) noexcept;

  /// View an existing block.  Returns an invalid view (valid() == false)
  /// when the header or geometry does not validate within `bytes`.
  static FlightRecorder attach(void* mem, std::size_t bytes) noexcept;

  /// Scan `bytes` for a recorder block at cache-line granularity (forensic
  /// discovery inside a heap image).  Returns the byte offset of the
  /// header, or SIZE_MAX when none validates.
  static std::size_t find(const void* bytes, std::size_t n) noexcept;

  bool valid() const noexcept { return hdr_ != nullptr; }
  std::size_t ring_count() const noexcept { return rings_; }
  std::size_t records_per_ring() const noexcept { return per_ring_; }
  const void* block() const noexcept { return hdr_; }

  // ---- hot path (single writer per ring; no persistence by design) --------

  void emit(std::size_t ring, Event e, Op o = Op::kNone,
            Phase p = Phase::kNone, std::uint64_t arg = 0) noexcept {
    RingControl& ctl = controls()[ring];
    const std::uint64_t seq =
        ctl.next_seq.load(std::memory_order_relaxed) + 1;
    Record& r = records(ring)[(seq - 1) % per_ring_];
    const std::uint64_t t = now_ns();
    const std::uint64_t data = pack_data(e, o, p, arg);
    r.seq = seq;
    r.time_ns = t;
    r.data = data;
    r.check = record_check(seq, t, data);
    ctl.next_seq.store(seq, std::memory_order_release);
  }

  /// CLOCK_MONOTONIC nanoseconds — system-wide, so records written by a
  /// crashed process and its recovering successor share one timebase.
  static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Records written to `ring` so far (its tail sequence number).
  std::uint64_t ring_seq(std::size_t ring) const noexcept {
    return controls()[ring].next_seq.load(std::memory_order_acquire);
  }

  /// Intern `label` into the block's table; returns its 32-bit hash (valid
  /// even when the table is full — the export then shows the bare hash).
  std::uint32_t intern_label(const char* label) noexcept;

  /// The interned text for `hash`, or nullptr when unknown.
  const char* label(std::uint64_t hash) const noexcept;

  // ---- read side ----------------------------------------------------------

  /// Validated decode of one ring, oldest to newest.  Trust protocol:
  /// start from the control line's count, probe FORWARD for records whose
  /// stamp and sequence already validate (a crash between a record body
  /// and its count bump hides at most one — this recovers it), then accept
  /// ascending records while stamps and sequence numbers agree.  The first
  /// invalid record — a torn tail, garbled bytes, or fresh zero memory —
  /// ends the timeline: exactly the untrustworthy suffix is dropped.
  /// Requires quiescence for live rings; always safe forensically.
  std::vector<DecodedRecord> decode_ring(std::size_t ring) const;

 private:
  FlightRecorder(RecorderHeader* hdr, std::size_t rings,
                 std::size_t per_ring) noexcept
      : hdr_(hdr), rings_(rings), per_ring_(per_ring) {}

  Label* labels() const noexcept {
    return reinterpret_cast<Label*>(reinterpret_cast<char*>(hdr_) +
                                    sizeof(RecorderHeader));
  }
  RingControl* controls() const noexcept {
    return reinterpret_cast<RingControl*>(
        reinterpret_cast<char*>(labels()) + sizeof(Label) * kLabelCapacity);
  }
  Record* records(std::size_t ring) const noexcept {
    return reinterpret_cast<Record*>(reinterpret_cast<char*>(controls()) +
                                     sizeof(RingControl) * rings_) +
           ring * per_ring_;
  }

  RecorderHeader* hdr_ = nullptr;
  std::size_t rings_ = 0;
  std::size_t per_ring_ = 0;
};

// ---- process-global recorder glue (mirrors metrics.hpp) ---------------------
//
// Algorithms do not hold a FlightRecorder; they call the free functions
// below, which route to the process's installed recorder (if any) and the
// calling thread's ring.  Threads that model a paper process bind their
// tid as the ring explicitly (crashrun workers, the workload driver);
// unbound threads lease a free ring cooperatively and are dropped — with a
// count — when every ring is taken.

#if DSSQ_TRACE_ENABLED

inline constexpr bool kEnabled = true;

/// Install `r` as the process-wide recorder (r.valid() required) and reset
/// ring leases.  uninstall() detaches; emission is a no-op while detached.
void install(const FlightRecorder& r) noexcept;
void uninstall() noexcept;
/// The installed recorder (invalid view when none).
FlightRecorder active() noexcept;

/// Pin the calling thread to `ring` until unbind_ring() (cooperative: the
/// caller owns that ring's single-writer role while bound).
void bind_ring(std::size_t ring) noexcept;
void unbind_ring() noexcept;

/// Events dropped because no ring could be leased (diagnostic).
std::uint64_t dropped() noexcept;

/// Timestamp for latency measurement; pairs with hist::record().
inline std::uint64_t now_ns() noexcept { return FlightRecorder::now_ns(); }

/// Emit into the installed recorder on the calling thread's ring.
void emit(Event e, Op o = Op::kNone, Phase p = Phase::kNone,
          std::uint64_t arg = 0) noexcept;

inline void op_begin(Op o, Phase p = Phase::kNone) noexcept {
  emit(Event::kOpBegin, o, p);
}
inline void op_end(Op o, Phase p = Phase::kNone) noexcept {
  emit(Event::kOpEnd, o, p);
}
inline void cas_retry() noexcept { emit(Event::kCasRetry); }
inline void flush_event() noexcept { emit(Event::kFlush); }
inline void fence_event() noexcept { emit(Event::kFence); }
inline void fence_elided_event() noexcept { emit(Event::kFenceElided); }
inline void combiner_fallback_event() noexcept {
  emit(Event::kCombinerFallback);
}
inline void op_combined_event(std::uint64_t batch) noexcept {
  emit(Event::kOpCombined, Op::kNone, Phase::kNone, batch);
}
inline void lane_scan_event(std::uint64_t lanes) noexcept {
  emit(Event::kLaneScan, Op::kNone, Phase::kNone, lanes);
}
inline void lease_acquired_event(std::uint64_t slot) noexcept {
  emit(Event::kLeaseAcquired, Op::kNone, Phase::kNone, slot);
}
inline void lease_reclaimed_event(std::uint64_t slot) noexcept {
  emit(Event::kLeaseReclaimed, Op::kNone, Phase::kNone, slot);
}
inline void recovery_step(RecoveryStep s, std::uint64_t count) noexcept {
  emit(Event::kRecoveryStep, Op::kNone, Phase::kNone,
       (static_cast<std::uint64_t>(s) << 40) | (count & ((1ULL << 40) - 1)));
}
/// The KillSwitch is about to SIGKILL this process at `label`: intern the
/// label and leave the armed-crash-point marker as the (likely) final
/// record of this incarnation.
void crash_point_armed(const char* label) noexcept;

/// RAII ring binding for worker threads (ring = the paper tid).
class ThreadRing {
 public:
  explicit ThreadRing(std::size_t ring) noexcept { bind_ring(ring); }
  ~ThreadRing() { unbind_ring(); }
  ThreadRing(const ThreadRing&) = delete;
  ThreadRing& operator=(const ThreadRing&) = delete;
};

/// RAII op-begin/op-end pair (robust across early returns).
class OpScope {
 public:
  explicit OpScope(Op o, Phase p = Phase::kNone) noexcept : o_(o), p_(p) {
    op_begin(o_, p_);
  }
  ~OpScope() { op_end(o_, p_); }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  Op o_;
  Phase p_;
};

#else  // !DSSQ_TRACE_ENABLED — every hot-path entry point folds to nothing.

inline constexpr bool kEnabled = false;

inline void install(const FlightRecorder&) noexcept {}
inline void uninstall() noexcept {}
inline FlightRecorder active() noexcept { return {}; }
inline void bind_ring(std::size_t) noexcept {}
inline void unbind_ring() noexcept {}
inline std::uint64_t dropped() noexcept { return 0; }
inline std::uint64_t now_ns() noexcept { return 0; }
inline void emit(Event, Op = Op::kNone, Phase = Phase::kNone,
                 std::uint64_t = 0) noexcept {}
inline void op_begin(Op, Phase = Phase::kNone) noexcept {}
inline void op_end(Op, Phase = Phase::kNone) noexcept {}
inline void cas_retry() noexcept {}
inline void flush_event() noexcept {}
inline void fence_event() noexcept {}
inline void fence_elided_event() noexcept {}
inline void combiner_fallback_event() noexcept {}
inline void op_combined_event(std::uint64_t) noexcept {}
inline void lane_scan_event(std::uint64_t) noexcept {}
inline void lease_acquired_event(std::uint64_t) noexcept {}
inline void lease_reclaimed_event(std::uint64_t) noexcept {}
inline void recovery_step(RecoveryStep, std::uint64_t) noexcept {}
inline void crash_point_armed(const char*) noexcept {}

class ThreadRing {
 public:
  explicit ThreadRing(std::size_t) noexcept {}
  ~ThreadRing() {}
  ThreadRing(const ThreadRing&) = delete;
  ThreadRing& operator=(const ThreadRing&) = delete;
};

class OpScope {
 public:
  explicit OpScope(Op, Phase = Phase::kNone) noexcept {}
  ~OpScope() {}
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;
};

#endif  // DSSQ_TRACE_ENABLED

}  // namespace dssq::trace
