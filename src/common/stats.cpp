#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dssq {

void Stats::add(double x) {
  samples_.push_back(x);
  const double n = static_cast<double>(samples_.size());
  const double delta = x - mean_;
  mean_ += delta / n;
  m2_ += delta * (x - mean_);
}

double Stats::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(samples_.size() - 1));
}

double Stats::coeff_of_variation() const noexcept {
  if (mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

double Stats::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::percentile(double p) const {
  if (samples_.empty()) {
    throw std::logic_error("Stats::percentile on empty sample set");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("Stats::percentile: p out of [0,100]");
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace dssq
