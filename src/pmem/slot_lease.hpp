// SlotLeaseTable — persistent leases binding OS processes to indices of
// the X[1..n] detectability array.
//
// The DSS protocol gives each *thread* t a private announcement word X[t]
// (prep writes it, resolve reads it, recovery repairs it).  In a single
// process, "thread t" is a stable identity for the life of the queue.  In
// the multi-process serving layer it is not: clients attach, crash, and
// are replaced, yet every serving client still needs exclusive ownership
// of some X[t] — two processes driving one slot would interleave prep
// records and destroy detectability.  The lease table is the persistent
// registry that hands out that ownership and, crucially, takes it back
// safely when a holder dies.
//
// ## Identity: pid + birth stamp
//
// A pid alone cannot prove liveness (pids recycle).  A lease therefore
// records {pid, birth}, where birth is the kernel's per-process start time
// (field 22 of /proc/<pid>/stat, in clock ticks since boot) — a value the
// kernel assigns once and never changes for the life of the process.  A
// holder is PROVABLY dead when its pid no longer exists, or exists with a
// different birth stamp (the pid was recycled).  Liveness probing is
// read-only on the table: no heartbeat deadline ever declares a slow
// process dead, so a paused holder can never be usurped while alive
// (heartbeats are advisory diagnostics only).  A /proc read that fails
// for any reason other than "no such process" proves nothing and is
// treated as ALIVE.
//
// The birth word is only TRUSTED in the kHeld state.  While a slot is
// mid-transition (kClaiming/kReclaiming) the stamp may still be the
// previous generation's — the new owner has won the owner-word CAS but
// not yet published its own stamp — so death verdicts on mid-transition
// slots use the stricter pid-gone test (the pid no longer exists at all,
// birth ignored).  This state split is what makes the blind birth store
// safe: a live-but-stalled claimer can never be usurped (its pid exists),
// so its pending store always lands on a slot it still owns; a dead
// claimer executes no further stores, so a post-death takeover can never
// have its stamp clobbered.  Hence in kHeld the stamp was always written
// by the current holder, and the {pid, birth} verdict is sound there.
//
// ## Owner-word protocol (one failure-atomic 8-byte word per slot)
//
//   owner = [63:62] state | [61:32] generation | [31:0] pid
//
//   acquire   CAS kFree -> kClaiming(gen+1, me), persist birth, then flip
//             to kHeld.  A crash mid-claim leaves kClaiming with a dead
//             pid — reclaimable like any dead holder, never misread as
//             live ownership.
//   release   kHeld(me) -> kFree(gen+1), persist.
//   reclaim   CAS <any>(dead) -> kReclaiming(gen+1, me), persist my birth,
//             run the caller's settle callback — the dead owner's Figure-6
//             per-slot recovery (repair X[t], settle the pending op
//             against the oracle) — and only then flip to kHeld.  The
//             settle-BEFORE-reissue order is the safety core: a recycled
//             slot can never double-apply its dead owner's operation,
//             because that operation was driven to a resolved state before
//             the slot serves again.  A crash during settle leaves
//             kReclaiming with a dead pid, which a later reclaimer takes
//             over and settles again (per-slot recovery is idempotent).
//             If settle THROWS, the takeover is abandoned — the slot is
//             handed back as kReclaiming(pid 0), which is provably dead
//             and thus immediately reclaimable by anyone (including the
//             thrower, retrying) — before the exception propagates.
//
// The generation field is ABA armor for the owner CAS: every transition
// bumps it, so a reclaimer that dozed off cannot complete a takeover CAS
// against a slot that has since been freed and re-leased.
//
// Competing reclaimers serialize on the takeover CAS; the loser simply
// moves on.  The reclaimer itself can die mid-settle — that is just
// another dead kReclaiming holder.
#pragma once

#include <cerrno>
#include <csignal>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include <atomic>

#include <sys/types.h>
#include <unistd.h>

#include "common/cacheline.hpp"
#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "pmem/mmap_backend.hpp"
#include "pmem/persistent_heap.hpp"

namespace dssq::pmem {

/// A process identity strong enough to survive pid recycling.
struct ClientIdentity {
  /// birth_of() result meaning "could not tell" (open or parse failure
  /// other than no-such-process).  Never a death verdict.
  static constexpr std::uint64_t kBirthUnknown = UINT64_MAX;

  std::uint32_t pid = 0;
  std::uint64_t birth = 0;  // kernel start time; 0 = no such process

  /// The kernel birth stamp of `pid`; 0 when the process does not exist,
  /// kBirthUnknown when /proc could not be read or parsed for any OTHER
  /// reason (e.g. EMFILE in the caller) — which proves nothing about the
  /// probed process and must never count as death.
  static std::uint64_t birth_of(std::uint32_t pid) noexcept {
    char path[64];
    std::snprintf(path, sizeof path, "/proc/%u/stat", pid);
    errno = 0;
    std::FILE* f = std::fopen(path, "rb");
    if (f == nullptr) return errno == ENOENT ? 0 : kBirthUnknown;
    char buf[1024];
    const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    // The comm field may contain spaces/parens; parse from the LAST ')'.
    // starttime is field 22 overall = the 20th space-separated token after
    // the comm's closing paren.
    const char* p = std::strrchr(buf, ')');
    if (p == nullptr) return kBirthUnknown;
    ++p;
    for (int field = 0; field < 19; ++field) {
      while (*p == ' ') ++p;
      while (*p != '\0' && *p != ' ') ++p;
      if (*p == '\0') return kBirthUnknown;
    }
    while (*p == ' ') ++p;
    std::uint64_t v = 0;
    bool any = false;
    while (*p >= '0' && *p <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(*p - '0');
      ++p;
      any = true;
    }
    return any ? v : kBirthUnknown;
  }

  static ClientIdentity self() noexcept {
    const auto pid = static_cast<std::uint32_t>(::getpid());
    return {pid, birth_of(pid)};
  }
};

/// Non-owning view over a lease-table region inside a PersistentHeap.
class SlotLeaseTable {
 public:
  static constexpr std::uint64_t kTableMagic = 0x44535351'4C454153ULL;  // LEAS
  static constexpr std::size_t kNoSlot = SIZE_MAX;

  // Owner-word states ([63:62]).
  static constexpr std::uint64_t kFree = 0;
  static constexpr std::uint64_t kClaiming = 1;
  static constexpr std::uint64_t kHeld = 2;
  static constexpr std::uint64_t kReclaiming = 3;

  struct alignas(kCacheLineSize) Header {
    std::uint64_t magic = 0;
    std::uint64_t slots = 0;
    std::uint64_t reserved[6] = {};
  };
  static_assert(sizeof(Header) == kCacheLineSize);

  struct alignas(kCacheLineSize) Slot {
    std::atomic<std::uint64_t> owner{0};      // state | generation | pid
    std::atomic<std::uint64_t> birth{0};      // owner's kernel birth stamp
                                              // (trusted in kHeld only)
    std::atomic<std::uint64_t> heartbeat{0};  // advisory liveness counter
    std::uint64_t acquires = 0;               // lifetime acquire count
    std::uint64_t reclaims = 0;               // lifetime takeover count
    std::uint64_t reserved[3] = {};
  };
  static_assert(sizeof(Slot) == kCacheLineSize);

  explicit SlotLeaseTable(void* base) noexcept
      : hdr_(static_cast<Header*>(base)) {}

  static std::size_t bytes_for(std::size_t slots) noexcept {
    return sizeof(Header) + slots * sizeof(Slot);
  }

  /// Initialize an all-zero region (zero owner = kFree, generation 0).
  static void format(void* base, std::size_t slots, MmapBackend& backend) {
    auto* h = static_cast<Header*>(base);
    h->magic = kTableMagic;
    h->slots = slots;
    backend.persist(h, sizeof(Header));
  }

  /// Validate a region at attach; throws on a foreign or corrupt header.
  static void attach_check(void* base, const std::string& what) {
    const auto* h = static_cast<const Header*>(base);
    if (h->magic != kTableMagic || h->slots == 0) {
      throw HeapOpenError("SlotLeaseTable(" + what +
                          "): refusing to attach: table header corrupt");
    }
  }

  std::size_t slots() const noexcept { return hdr_->slots; }

  // ---- owner-word packing --------------------------------------------------
  // The owner word is NOT a tagged pointer: it carries no address bits at
  // all (state | generation | pid), so the TaggedWord API does not apply.
  static constexpr std::uint64_t pack(std::uint64_t state, std::uint64_t gen,
                                      std::uint32_t pid) noexcept {
    // dssq-lint: allow(tagged-bits) owner word, not a pointer — no
    // address bits exist; layout is state[63:62] gen[61:32] pid[31:0].
    return (state << 62) | ((gen & ((1ULL << 30) - 1)) << 32) | pid;
  }
  static constexpr std::uint64_t state_of(std::uint64_t owner) noexcept {
    // dssq-lint: allow(tagged-bits) owner word, not a pointer (see pack).
    return owner >> 62;
  }
  static constexpr std::uint64_t gen_of(std::uint64_t owner) noexcept {
    return (owner >> 32) & ((1ULL << 30) - 1);
  }
  static constexpr std::uint32_t pid_of(std::uint64_t owner) noexcept {
    return static_cast<std::uint32_t>(owner);
  }

  /// True when the recorded holder cannot be a live process: the pid is
  /// gone, or exists with a different kernel birth stamp (recycled).
  /// Only sound when `birth` was written by the holder itself — i.e. for
  /// kHeld slots; mid-transition slots must use provably_gone instead.
  static bool provably_dead(std::uint32_t pid, std::uint64_t birth) noexcept {
    if (pid == 0) return true;
    const std::uint64_t now = ClientIdentity::birth_of(pid);
    if (now == ClientIdentity::kBirthUnknown) return false;  // can't tell
    return now == 0 || now != birth;
  }

  /// The stricter verdict for mid-transition (kClaiming/kReclaiming)
  /// slots, whose birth stamp may still be the previous generation's:
  /// dead only when the pid does not exist AT ALL.  A live-but-stalled
  /// owner therefore can never be usurped mid-transition, which is what
  /// keeps its pending birth store from landing on someone else's lease.
  static bool provably_gone(std::uint32_t pid) noexcept {
    return pid == 0 || ClientIdentity::birth_of(pid) == 0;
  }

  /// Lease a free slot to the calling process.  Returns the slot index or
  /// kNoSlot when every slot is held (dead holders are NOT auto-reclaimed
  /// here — reclamation must run recovery, which is reclaim_dead's job).
  std::size_t acquire(MmapBackend& backend) noexcept {
    const ClientIdentity me = ClientIdentity::self();
    for (std::size_t i = 0; i < slots(); ++i) {
      Slot& s = slot(i);
      std::uint64_t cur = s.owner.load(std::memory_order_acquire);
      if (state_of(cur) != kFree) continue;
      const std::uint64_t gen = gen_of(cur) + 1;
      // A failed claim wrote nothing; the winning path persists the whole
      // slot line below.
      if (!s.owner.compare_exchange_strong(cur, pack(kClaiming, gen, me.pid),
                                           std::memory_order_acq_rel)) {
        continue;  // lost to a concurrent claimer; try the next slot
      }
      // Safe to store blind: mid-claim slots are only reclaimable when
      // our pid is GONE (provably_gone, never birth mismatch), so while
      // we live no one can usurp the slot, and if we die first this
      // store never executes — either way it cannot land on a lease
      // that has since become someone else's.
      s.birth.store(me.birth, std::memory_order_release);
      s.acquires += 1;
      backend.persist(&s, sizeof(Slot));
      // Birth stamp durable; one failure-atomic word activates the lease.
      // CAS, not store — pure defense in depth: under the provably_gone
      // rule a live claimer cannot be usurped, but if a reclaimer ever
      // did take over (rule relaxed, /proc misbehaving), the slot is
      // its, not ours, and we must walk away rather than clobber it.
      std::uint64_t expect = pack(kClaiming, gen, me.pid);
      // A failed activation means a reclaimer owns the slot now; the
      // winning path persists below.
      if (!s.owner.compare_exchange_strong(expect, pack(kHeld, gen, me.pid),
                                           std::memory_order_acq_rel)) {
        continue;  // usurped mid-claim; find another slot
      }
      backend.persist(&s.owner, sizeof(s.owner));
      metrics::add(metrics::Counter::kLeasesAcquired);
      trace::lease_acquired_event(i);
      return i;
    }
    return kNoSlot;
  }

  /// Advisory liveness stamp (diagnostics only; never a death verdict).
  void beat(std::size_t i, MmapBackend& backend) noexcept {
    Slot& s = slot(i);
    s.heartbeat.store(s.heartbeat.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    backend.persist(&s.heartbeat, sizeof(s.heartbeat));
  }

  /// Return a held lease.  No-op unless the calling process holds it.
  void release(std::size_t i, MmapBackend& backend) noexcept {
    const ClientIdentity me = ClientIdentity::self();
    Slot& s = slot(i);
    std::uint64_t cur = s.owner.load(std::memory_order_acquire);
    if (state_of(cur) != kHeld || pid_of(cur) != me.pid) return;
    // A failed release wrote nothing (another process already reclaimed
    // us); success persists below.
    if (s.owner.compare_exchange_strong(cur, pack(kFree, gen_of(cur) + 1, 0),
                                        std::memory_order_acq_rel)) {
      backend.persist(&s.owner, sizeof(s.owner));
    }
  }

  /// Take over one provably dead holder's lease.  `settle(slot)` runs the
  /// dead owner's per-slot recovery BEFORE the lease is reactivated, so
  /// the slot can never double-apply its previous holder's operation.
  /// Returns the reclaimed slot index, or kNoSlot when no slot has a
  /// provably dead holder (or every takeover CAS was lost to a competing
  /// reclaimer).
  template <class Settle>
  std::size_t reclaim_dead(MmapBackend& backend, Settle&& settle) {
    const ClientIdentity me = ClientIdentity::self();
    for (std::size_t i = 0; i < slots(); ++i) {
      Slot& s = slot(i);
      std::uint64_t cur = s.owner.load(std::memory_order_acquire);
      const std::uint64_t st = state_of(cur);
      if (st == kFree) continue;
      // State-sensitive verdict: the birth stamp is trusted only in
      // kHeld, where the current holder provably wrote it.  A slot still
      // mid-transition may carry the PREVIOUS generation's stamp, so a
      // mismatch there proves nothing — require the pid gone outright.
      const bool dead =
          st == kHeld
              ? provably_dead(pid_of(cur),
                              s.birth.load(std::memory_order_acquire))
              : provably_gone(pid_of(cur));
      if (!dead) continue;
      const std::uint64_t gen = gen_of(cur) + 1;
      // A failed takeover wrote nothing (a competing reclaimer won);
      // success persists below.
      if (!s.owner.compare_exchange_strong(cur, pack(kReclaiming, gen, me.pid),
                                           std::memory_order_acq_rel)) {
        continue;
      }
      backend.persist(&s.owner, sizeof(s.owner));
      s.birth.store(me.birth, std::memory_order_release);
      s.reclaims += 1;
      backend.persist(&s, sizeof(Slot));
      try {
        settle(i);
      } catch (...) {
        // Abandon the takeover before propagating: flip to pid 0 (gen
        // bumped), which provably_gone() calls dead, so the slot stays
        // reclaimable — by a peer or by us retrying — instead of being
        // wedged on our live pid for as long as this process runs.
        // Settle is idempotent, so whoever takes over re-settles safely.
        std::uint64_t expect = pack(kReclaiming, gen, me.pid);
        if (s.owner.compare_exchange_strong(expect,
                                            pack(kReclaiming, gen + 1, 0),
                                            std::memory_order_acq_rel)) {
          backend.persist(&s.owner, sizeof(s.owner));
        }
        throw;
      }
      // Settled: reactivate.  CAS, not store — defense in depth, same as
      // acquire's activation: a live reclaimer cannot be usurped under
      // the provably_gone rule, but if the slot somehow changed hands we
      // must defer (the taker re-settles), never overwrite.
      std::uint64_t expect = pack(kReclaiming, gen, me.pid);
      // A failed reactivation means the slot is no longer ours to
      // persist; success persists below.
      if (!s.owner.compare_exchange_strong(expect, pack(kHeld, gen, me.pid),
                                           std::memory_order_acq_rel)) {
        continue;
      }
      backend.persist(&s.owner, sizeof(s.owner));
      metrics::add(metrics::Counter::kLeasesReclaimed);
      trace::lease_reclaimed_event(i);
      return i;
    }
    return kNoSlot;
  }

  // ---- introspection (tests, repl, JSONL) ----------------------------------
  std::uint64_t owner_word(std::size_t i) const noexcept {
    return slot(i).owner.load(std::memory_order_acquire);
  }
  std::uint64_t birth(std::size_t i) const noexcept {
    return slot(i).birth.load(std::memory_order_acquire);
  }
  std::uint64_t heartbeat(std::size_t i) const noexcept {
    return slot(i).heartbeat.load(std::memory_order_relaxed);
  }
  std::uint64_t acquire_count(std::size_t i) const noexcept {
    return slot(i).acquires;
  }
  std::uint64_t reclaim_count(std::size_t i) const noexcept {
    return slot(i).reclaims;
  }
  /// Sum of per-slot takeover counts (the CI gate's "≥1 reclaim" signal).
  std::uint64_t total_reclaims() const noexcept {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < slots(); ++i) n += slot(i).reclaims;
    return n;
  }
  static const char* state_name(std::uint64_t owner) noexcept {
    switch (state_of(owner)) {
      case kFree: return "free";
      case kClaiming: return "claiming";
      case kHeld: return "held";
      default: return "reclaiming";
    }
  }

  /// TEST SEAM: forge a slot's owner/birth (dead-holder scenarios without
  /// real fork storms).  Persists the slot line.
  void forge_owner(std::size_t i, std::uint64_t owner, std::uint64_t birth,
                   MmapBackend& backend) noexcept {
    Slot& s = slot(i);
    s.owner.store(owner, std::memory_order_release);
    s.birth.store(birth, std::memory_order_release);
    backend.persist(&s, sizeof(Slot));
  }

 private:
  Slot& slot(std::size_t i) const noexcept {
    return reinterpret_cast<Slot*>(hdr_ + 1)[i];
  }

  Header* hdr_;
};

}  // namespace dssq::pmem
