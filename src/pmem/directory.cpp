#include "pmem/directory.hpp"

#include <cstring>

namespace dssq::pmem {

namespace {

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

[[noreturn]] void dir_fail(const std::string& what) {
  throw DirectoryError("Directory: " + what);
}

}  // namespace

std::uint64_t Directory::entry_checksum(const Entry& e) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, &e.type_tag, sizeof(e.type_tag));
  h = fnv1a(h, &e.root_addr, sizeof(e.root_addr));
  h = fnv1a(h, &e.name_len, sizeof(e.name_len));
  const std::size_t len =
      e.name_len <= kMaxNameLen ? e.name_len : kMaxNameLen;
  h = fnv1a(h, e.name, len);
  return h;
}

void Directory::format(void* base, std::size_t bytes, MmapBackend& backend) {
  auto* h = static_cast<Header*>(base);
  h->magic = kDirMagic;
  h->entries = (bytes - sizeof(Header)) / sizeof(Entry);
  backend.persist(h, sizeof(Header));
  // Entries need no formatting: the fresh file is all-zeros and zero is
  // kFree, the empty state.
}

void Directory::attach_check(void* base, std::size_t bytes,
                             const std::string& path) {
  const auto* h = static_cast<const Header*>(base);
  if (h->magic != kDirMagic ||
      bytes_for(h->entries) > bytes) {
    throw HeapOpenError("PersistentHeap(" + path +
                        "): refusing to open: directory header corrupt");
  }
}

void Directory::publish(const char* name, std::uint64_t type_tag,
                        std::uint64_t addr, MmapBackend& backend) {
  const std::size_t len = std::strlen(name);
  if (len == 0 || len > kMaxNameLen) {
    dir_fail("name length must be 1.." + std::to_string(kMaxNameLen));
  }
  if (addr == 0) dir_fail("cannot publish a null root");
  for (;;) {
    std::size_t free_at = count();
    for (std::size_t i = 0; i < count(); ++i) {
      Entry& e = entry(i);
      const std::uint64_t st = e.state.load(std::memory_order_acquire);
      if (st == kFree) {
        if (free_at == count()) free_at = i;
        continue;
      }
      if (st != kValid) continue;  // kWriting: a crashed or in-flight claim
      if (e.name_len != len || std::memcmp(e.name, name, len) != 0) continue;
      if (entry_checksum(e) != e.checksum) {
        dir_fail("entry for '" + std::string(name) +
                 "' is torn (checksum mismatch); refusing to rebind");
      }
      if (e.type_tag == type_tag && e.root_addr == addr) return;  // idempotent
      dir_fail("'" + std::string(name) +
               "' is already bound to a different object");
    }
    if (free_at == count()) dir_fail("table full");
    Entry& e = entry(free_at);
    std::uint64_t expect = kFree;
    if (!e.state.compare_exchange_strong(expect, kWriting,
                                         std::memory_order_acq_rel)) {
      continue;  // lost the claim to a concurrent publisher; rescan
    }
    backend.persist(&e.state, sizeof(e.state));
    e.type_tag = type_tag;
    e.root_addr = addr;
    e.name_len = len;
    std::memcpy(e.name, name, len);
    e.name[len] = '\0';
    e.checksum = entry_checksum(e);
    backend.persist(&e, sizeof(Entry));
    // The payload (and its checksum) is durable; one failure-atomic word
    // makes the binding visible.
    e.state.store(kValid, std::memory_order_release);
    backend.persist(&e.state, sizeof(e.state));
    return;
  }
}

std::uint64_t Directory::lookup(const char* name,
                                std::uint64_t type_tag) const {
  const std::size_t len = std::strlen(name);
  for (std::size_t i = 0; i < count(); ++i) {
    const Entry& e = entry(i);
    if (e.state.load(std::memory_order_acquire) != kValid) continue;
    if (e.name_len != len || std::memcmp(e.name, name, len) != 0) continue;
    if (entry_checksum(e) != e.checksum) {
      dir_fail("entry for '" + std::string(name) +
               "' is torn (checksum mismatch); refusing the binding");
    }
    if (e.type_tag != type_tag) {
      dir_fail("'" + std::string(name) +
               "' is bound to a different type (type-tag mismatch)");
    }
    return e.root_addr;
  }
  return 0;
}

}  // namespace dssq::pmem
