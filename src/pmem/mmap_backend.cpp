#include "pmem/mmap_backend.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include "common/cacheline.hpp"

namespace dssq::pmem {

namespace {

std::size_t page_size() noexcept {
  static const std::size_t size =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

}  // namespace

void MmapBackend::flush(const void* addr, std::size_t n) noexcept {
  if (hook_ != nullptr) hook_(hook_state_, "pmem:flush");
  if (mode_ == Mode::kClwb) {
    // DAX mapping: the CPU write-back instructions reach the persistence
    // domain directly; ClwbBackend implements the tier selection (and the
    // flush metrics, so we do not double-count here).
    ClwbBackend{}.flush(addr, n);
    return;
  }
  metrics::add(metrics::Counter::kFlushCalls);
  metrics::add(metrics::Counter::kFlushLines,
               cache_lines_spanned(reinterpret_cast<std::uintptr_t>(addr), n));
  trace::flush_event();
  if (fd_ < 0) return;  // disengaged backend
  // Page-cache mapping: initiate write-back of the affected pages.  msync
  // wants a page-aligned range inside the mapping.
  const std::size_t page = page_size();
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t lo = (a & ~(page - 1));
  const std::uintptr_t hi = a + (n == 0 ? 1 : n);
  if (lo < base_ || hi > base_ + bytes_) return;  // not ours (DRAM scratch)
  ::msync(reinterpret_cast<void*>(lo), hi - lo, MS_ASYNC);
}

void MmapBackend::fence() noexcept {
  if (hook_ != nullptr) hook_(hook_state_, "pmem:fence");
  if (mode_ == Mode::kClwb) {
    ClwbBackend{}.fence();  // counts kFences itself
  } else {
    metrics::add(metrics::Counter::kFences);
    trace::fence_event();
    if (fd_ >= 0) {
      // Await completion of the write-back initiated by prior flushes
      // (fdatasync is the file-granular SFENCE of the msync tier).
      ::fdatasync(fd_);
    }
  }
  if (hook_ != nullptr) hook_(hook_state_, "pmem:fence-done");
}

}  // namespace dssq::pmem
