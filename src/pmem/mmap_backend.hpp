// MmapBackend — persistence primitives for a file-backed (mmap'd) heap.
//
// This is the first backend whose flush/fence pair survives a *process*
// failure for real: the mapping is MAP_SHARED over a file, so the kernel's
// page cache — not the dying process — owns the data the moment a store
// retires.  A fresh process that re-maps the file observes every store the
// crashed process made, which is exactly the guarantee the fork/SIGKILL
// harness (src/harness/fork_crash.hpp, tools/crashrun) exercises.
//
// Power-failure durability is a second, stronger tier and depends on how
// the file is mapped:
//
//   kClwb  — the file sits on DAX-capable persistent memory and was mapped
//            with MAP_SYNC: CLWB + SFENCE reach the persistence domain
//            directly, byte-addressably (the paper's deployment model).
//   kMsync — ordinary page-cache-backed file: flush() initiates write-back
//            with msync(MS_ASYNC) on the affected pages and fence() awaits
//            completion with fdatasync(), the portable mapping of the
//            CLWB/SFENCE contract onto POSIX.
//
// PersistentHeap picks the mode at mmap time (MAP_SYNC when the filesystem
// grants it, msync otherwise).  Like every backend, flush/fence/persist
// carry the metrics counters, and a CrashHook can be armed so injection
// fires on flush AND fence (symmetric with EmulatedNvmBackend/SimContext).
//
// All mmap/msync system calls live in src/pmem/ — pmem_lint's
// mmap-confined rule keeps it that way.
#pragma once

#include <cstddef>
#include <cstdint>

#include "pmem/backend.hpp"

namespace dssq::pmem {

class MmapBackend {
 public:
  enum class Mode : std::uint8_t {
    kMsync,  // page-cache file: msync(MS_ASYNC) + fdatasync
    kClwb,   // DAX/MAP_SYNC mapping: CLWB/CLFLUSHOPT + SFENCE
  };

  /// A disengaged backend (no mapping); flush/fence are no-ops.  Exists so
  /// contexts can default-construct before a heap is attached.
  MmapBackend() = default;

  MmapBackend(void* base, std::size_t bytes, int fd, Mode mode) noexcept
      : base_(reinterpret_cast<std::uintptr_t>(base)),
        bytes_(bytes),
        fd_(fd),
        mode_(mode) {}

  static constexpr const char* name() noexcept { return "mmap"; }
  /// Instance-level name including the sync mode ("mmap-msync"/"mmap-clwb").
  const char* mode_name() const noexcept {
    return mode_ == Mode::kClwb ? "mmap-clwb" : "mmap-msync";
  }
  Mode mode() const noexcept { return mode_; }

  /// Arm (or disarm with nullptr) crash injection; fires on flush() AND
  /// fence(), mirroring EmulatedNvmBackend and SimContext.
  void set_crash_hook(CrashHook hook, void* state) noexcept {
    hook_ = hook;
    hook_state_ = state;
  }

  void flush(const void* addr, std::size_t n) noexcept;
  void fence() noexcept;
  void persist(const void* addr, std::size_t n) noexcept {
    flush(addr, n);
    fence();
  }

 private:
  std::uintptr_t base_ = 0;
  std::size_t bytes_ = 0;
  int fd_ = -1;
  Mode mode_ = Mode::kMsync;
  CrashHook hook_ = nullptr;
  void* hook_state_ = nullptr;
};

}  // namespace dssq::pmem
