// Named-object directory — persistent `name → {type tag, root address}`
// bindings inside a PersistentHeap.
//
// Positional allocation replay (persistent_heap.hpp) reconstructs pointers
// by replaying a constructor sequence — which presumes exactly one
// attacher driving the sequence.  The directory is the multi-process
// replacement: the creating process builds its objects, then *publishes*
// each root pointer under a string name; any concurrently attached process
// *looks up* the name and adopts the pointer directly (valid verbatim,
// because every attacher maps the heap at the same fixed base).  This is
// the zeroipc `table.h` discovery idiom, carried over to a checksummed,
// crash-consistent table.
//
// ## Entry protocol (crash consistency)
//
// Each entry is a 64-byte meta line (state word, type tag, root address,
// name length, FNV-1a checksum over the payload) followed by a 128-byte
// name buffer.  publish() claims a free entry by CAS (kFree → kWriting),
// writes and persists the payload, then persists the checksum and flips
// the state to kValid with a final single-word store+persist.  A crash at
// any earlier point leaves the entry in kWriting — invisible to lookup
// (the slot is leaked, never misread).  lookup() re-verifies the checksum
// of every kValid entry it reads and REFUSES (DirectoryError) a valid
// entry whose payload does not match — a torn or scribbled binding is an
// error, never a dangling pointer handed to the caller.
//
// ## Concurrency contract
//
// Concurrent publishes of DISTINCT names from multiple processes are safe
// (the CAS claims distinct entries).  Publishing the SAME name is the
// creator's job exactly once; a later identical re-publish is idempotent,
// a conflicting one throws.  Two processes racing to first-publish one
// name is outside the contract (both may win distinct entries; lookup then
// returns the first) — the serving layer's creator/attacher split never
// does this.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/cacheline.hpp"
#include "pmem/mmap_backend.hpp"
#include "pmem/persistent_heap.hpp"

namespace dssq::pmem {

/// Non-owning view over a heap's directory region.  Stateless: construct
/// freely, per call if convenient (PersistentHeap::publish/lookup do).
class Directory {
 public:
  static constexpr std::uint64_t kDirMagic = 0x44535351'44495221ULL;  // DIR!
  static constexpr std::size_t kMaxNameLen = 127;

  static constexpr std::uint64_t kFree = 0;
  static constexpr std::uint64_t kWriting = 1;
  static constexpr std::uint64_t kValid = 2;

  struct alignas(kCacheLineSize) Header {
    std::uint64_t magic = 0;
    std::uint64_t entries = 0;
    std::uint64_t reserved[6] = {};
  };
  static_assert(sizeof(Header) == kCacheLineSize);

  struct alignas(kCacheLineSize) Entry {
    std::atomic<std::uint64_t> state{kFree};
    std::uint64_t type_tag = 0;
    std::uint64_t root_addr = 0;
    std::uint64_t name_len = 0;
    std::uint64_t checksum = 0;  // FNV-1a over type_tag/root_addr/name
    std::uint64_t reserved[3] = {};
    char name[2 * kCacheLineSize] = {};
  };
  static_assert(sizeof(Entry) == 3 * kCacheLineSize);

  Directory(void* base, std::size_t bytes) noexcept
      : hdr_(static_cast<Header*>(base)), bytes_(bytes) {}

  /// Region size needed for `entries` bindings.
  static std::size_t bytes_for(std::size_t entries) noexcept {
    return sizeof(Header) + entries * sizeof(Entry);
  }

  /// Initialize an all-zero region (create path; the heap file is fresh).
  static void format(void* base, std::size_t bytes, MmapBackend& backend);

  /// Validate a region at attach; throws HeapOpenError on a foreign or
  /// corrupt directory header.
  static void attach_check(void* base, std::size_t bytes,
                           const std::string& path);

  void publish(const char* name, std::uint64_t type_tag, std::uint64_t addr,
               MmapBackend& backend);
  /// Address bound to `name`, or 0 when absent.  Throws DirectoryError on
  /// a checksum (torn entry) or type-tag mismatch.
  std::uint64_t lookup(const char* name, std::uint64_t type_tag) const;

  /// Visit every valid binding: f(name, type_tag, root_addr).  Torn
  /// entries are reported with root_addr = 0 rather than thrown, so
  /// inspection tools can render a damaged table.
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < count(); ++i) {
      const Entry& e = entry(i);
      if (e.state.load(std::memory_order_acquire) != kValid) continue;
      const bool ok = entry_checksum(e) == e.checksum &&
                      e.name_len <= kMaxNameLen;
      f(std::string(e.name, ok ? e.name_len : 0), e.type_tag,
        ok ? e.root_addr : 0);
    }
  }

  std::size_t count() const noexcept { return hdr_->entries; }

 private:
  Entry& entry(std::size_t i) const noexcept {
    return reinterpret_cast<Entry*>(hdr_ + 1)[i];
  }
  static std::uint64_t entry_checksum(const Entry& e) noexcept;

  Header* hdr_;
  std::size_t bytes_;
};

}  // namespace dssq::pmem
