// Crash-point injection.
//
// The paper's model has system-wide crash failures that may strike between
// any two steps of an algorithm.  To test the DSS queue's detectability
// guarantees (the case analysis of Figure 2 and the recovery procedure of
// Figure 6), algorithm code running under the simulation context is
// instrumented with named crash points — one per persistence-relevant step.
// Labels follow the convention "<structure>:<operation>:<step>" (e.g.
// "dss:exec-enq:linked" names the window right after the line-11 link CAS
// of Figure 3 persisted); the paper's line numbers appear as comments next
// to each instrumented step, not in the label itself.  SimContext adds the
// generic labels "pmem:flush" / "pmem:fence" / "pmem:fence-done" around
// every persistence primitive.
//
// A test arms the injector in one of two modes:
//   * countdown — crash at the k-th crash point reached (sweeping k over
//     [0, total) enumerates every instrumented crash location);
//   * label     — crash at the i-th occurrence of a specific label.
//
// Crashing is modelled by throwing SimulatedCrash, which worker threads
// catch at top level ("the thread loses its volatile state"); the harness
// then invokes ShadowPool::crash() to reconstruct memory as the persistence
// domain would see it, and runs the algorithm's recovery procedure.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>

namespace dssq::pmem {

/// Thrown to simulate a system-wide crash at an instrumented point.
struct SimulatedCrash {
  const char* label;
};

class CrashPoints {
 public:
  CrashPoints() = default;
  CrashPoints(const CrashPoints&) = delete;
  CrashPoints& operator=(const CrashPoints&) = delete;

  /// Crash when the countdown reaches zero: the crash fires at the
  /// (n+1)-th crash point reached after arming (n = 0 crashes at the next
  /// point).  Counting is global across threads.
  void arm_countdown(std::int64_t n) noexcept {
    // The release store of armed_ publishes the whole trigger
    // configuration; point() reads it only after its acquire load of
    // armed_ observes true.
    target_label_.store(nullptr, std::memory_order_relaxed);
    countdown_.store(n, std::memory_order_relaxed);
    fired_.store(false, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }

  /// Crash at the `occurrence`-th time (0-based) a point with this exact
  /// label is reached.  `label` must outlive the armed period (string
  /// literals in practice).
  void arm_at_label(const char* label, std::int64_t occurrence = 0) noexcept {
    target_label_.store(label, std::memory_order_relaxed);
    countdown_.store(occurrence, std::memory_order_relaxed);
    fired_.store(false, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }

  void disarm() noexcept {
    armed_.store(false, std::memory_order_release);
    fired_.store(false, std::memory_order_release);
  }

  /// True once the trigger has fired (and until disarm()).
  bool fired() const noexcept {
    return fired_.load(std::memory_order_acquire);
  }
  bool armed() const noexcept { return armed_.load(std::memory_order_acquire); }

  /// Total points reached since the last reset_hits(); counted whether or
  /// not the injector is armed, so a probe run can discover the sweep bound.
  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  void reset_hits() noexcept { hits_.store(0, std::memory_order_relaxed); }

  /// Install a hook invoked at every point (same thread, before the crash
  /// check).  Used by the interleaving explorer to turn crash points into
  /// scheduling points.  Set only while no instrumented code is running.
  void set_hook(std::function<void(const char*)> hook) {
    hook_ = std::move(hook);
  }

  /// Called by instrumented code.  Throws SimulatedCrash when armed and the
  /// trigger condition is met.  Crashes are system-wide: once the trigger
  /// fires, EVERY thread dies at its next crash point, until disarm().
  void point(const char* label) {
    if (hook_) hook_(label);
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (!armed_.load(std::memory_order_acquire)) return;
    if (fired_.load(std::memory_order_acquire)) {
      throw SimulatedCrash{label};
    }
    const char* target = target_label_.load(std::memory_order_acquire);
    if (target != nullptr) {
      if (target != label && std::strcmp(target, label) != 0) {
        return;
      }
    }
    if (countdown_.fetch_sub(1, std::memory_order_acq_rel) == 0) {
      fired_.store(true, std::memory_order_release);
      throw SimulatedCrash{label};
    }
  }

 private:
  std::atomic<bool> armed_{false};
  std::atomic<bool> fired_{false};
  std::atomic<std::int64_t> countdown_{0};
  // Atomic: point() reads the label concurrently with a racing arm_*
  // (worker threads keep hitting points while the driver re-arms); the
  // armed_ release/acquire pair orders publication, and the atomic makes
  // the mixed-thread access well-defined.
  std::atomic<const char*> target_label_{nullptr};
  std::atomic<std::uint64_t> hits_{0};
  std::function<void(const char*)> hook_;
};

}  // namespace dssq::pmem
