// Persistence contexts — the policy that threads an algorithm's persistence
// and crash-injection behaviour through its code.
//
// Every algorithm in this library (DSS queue, durable queue, log queue,
// PMwCAS, detectable base objects) is a template over a Context type `Ctx`
// providing:
//
//   void* raw_alloc(std::size_t size, std::size_t align);
//   void  flush(const void* addr, std::size_t n);     // CLWB
//   void  fence();                                    // SFENCE
//   void  persist(const void* addr, std::size_t n);   // flush + fence
//   void  fence_combined();                           // fence via coalescer
//   void  persist_combined(const void* addr, std::size_t n);
//   void  crash_point(const char* label);             // may throw SimulatedCrash
//   static constexpr bool kSimulated;                  // sim vs perf build
//   const char* backend_name() const;
//
// Two families are provided:
//
//   PerfContext<Backend> — for benchmarks and examples.  Allocation is a
//   bump arena in ordinary DRAM; persistence goes to the backend
//   (emulated-latency, real CLWB, or no-op); crash_point compiles to
//   nothing, so the instrumentation is zero-cost in measured code.
//
//   SimContext — for crash-recovery testing.  Allocation comes from a
//   ShadowPool (so every persistent byte is covered by the crash
//   simulator) and crash_point consults a CrashPoints injector.  flush and
//   fence additionally pass through injection points, so a countdown sweep
//   visits the window between a store and its flush, and between a flush
//   and its fence — the windows where detectability is hard.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "pmem/backend.hpp"
#include "pmem/combiner.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"

namespace dssq::pmem {

/// Benchmark/production context.  Backend is a value type (inlined calls).
template <class Backend>
class PerfContext {
 public:
  static constexpr bool kSimulated = false;

  explicit PerfContext(std::size_t arena_bytes = kDefaultArenaBytes,
                       Backend backend = Backend{})
      : backend_(std::move(backend)), bytes_(arena_bytes) {
    arena_ = static_cast<std::byte*>(
        ::operator new(bytes_, std::align_val_t{kCacheLineSize}));
    // Touch the arena so first-use page faults don't pollute measurements,
    // and so the memory starts zeroed like a fresh pmem pool.
    std::memset(arena_, 0, bytes_);
  }

  ~PerfContext() { ::operator delete(arena_, std::align_val_t{kCacheLineSize}); }

  PerfContext(const PerfContext&) = delete;
  PerfContext& operator=(const PerfContext&) = delete;

  void* raw_alloc(std::size_t size, std::size_t align) {
    if (align == 0 || (align & (align - 1)) != 0) {
      throw std::invalid_argument("PerfContext::raw_alloc: bad alignment");
    }
    std::size_t offset = next_.load(std::memory_order_relaxed);
    for (;;) {
      const std::size_t aligned = (offset + align - 1) & ~(align - 1);
      const std::size_t end = aligned + size;
      if (end > bytes_) throw std::bad_alloc();
      if (next_.compare_exchange_weak(offset, end,
                                      std::memory_order_relaxed)) {
        return arena_ + aligned;
      }
    }
  }

  void flush(const void* addr, std::size_t n) { backend_.flush(addr, n); }
  void fence() { backend_.fence(); }
  void persist(const void* addr, std::size_t n) { backend_.persist(addr, n); }

  /// Combined fence: identical per-thread contract to fence() — on return
  /// the caller's prior flushes are drained — but the drain may have been
  /// performed by another thread's fence (see pmem/combiner.hpp).
  void fence_combined() {
    if constexpr (Backend::kNoopFence) {
      backend_.fence();
    } else {
      if (!fence_combining_enabled()) {
        backend_.fence();
        return;
      }
      combiner_.fence([this] { backend_.fence(); });
    }
  }

  void persist_combined(const void* addr, std::size_t n) {
    backend_.flush(addr, n);
    fence_combined();
  }

  void crash_point(const char*) noexcept {}

  const char* backend_name() const noexcept { return Backend::name(); }
  Backend& backend() noexcept { return backend_; }
  FenceCombiner& combiner() noexcept { return combiner_; }

 private:
  static constexpr std::size_t kDefaultArenaBytes = 64u << 20;  // 64 MiB
  Backend backend_;
  FenceCombiner combiner_;
  std::byte* arena_ = nullptr;
  std::size_t bytes_;
  std::atomic<std::size_t> next_{0};
};

using VolatileContext = PerfContext<NullBackend>;
using EmulatedNvmContext = PerfContext<EmulatedNvmBackend>;
using ClwbContext = PerfContext<ClwbBackend>;

/// Crash-testing context: allocation and persistence route to a ShadowPool,
/// and every persistence step is a crash-injection point.
class SimContext {
 public:
  static constexpr bool kSimulated = true;

  SimContext(ShadowPool& pool, CrashPoints& points) noexcept
      : pool_(&pool), points_(&points) {}

  void* raw_alloc(std::size_t size, std::size_t align) {
    return pool_->alloc(size, align);
  }

  void flush(const void* addr, std::size_t n) {
    metrics::add(metrics::Counter::kFlushCalls);
    metrics::add(metrics::Counter::kFlushLines,
                 cache_lines_spanned(reinterpret_cast<std::uintptr_t>(addr),
                                     n));
    trace::flush_event();
    points_->point("pmem:flush");
    pool_->flush(addr, n);
  }

  void fence() {
    metrics::add(metrics::Counter::kFences);
    trace::fence_event();
    points_->point("pmem:fence");
    pool_->fence();
    points_->point("pmem:fence-done");
  }

  void persist(const void* addr, std::size_t n) {
    flush(addr, n);
    fence();
  }

  /// Crash sweeps must stay deterministic, so the sim tier never elides a
  /// fence: the combined entry points alias the plain ones.  (The superset
  /// argument means any execution the combiner produces is also an
  /// execution of this context.)
  void fence_combined() { fence(); }
  void persist_combined(const void* addr, std::size_t n) { persist(addr, n); }

  void crash_point(const char* label) { points_->point(label); }

  const char* backend_name() const noexcept { return "shadow-sim"; }
  ShadowPool& pool() noexcept { return *pool_; }
  CrashPoints& points() noexcept { return *points_; }

 private:
  ShadowPool* pool_;
  CrashPoints* points_;
};

/// Placement-construct a T in context-owned persistent memory.
/// The object is never destroyed through this path (persistent objects
/// outlive the process in the model); T must be trivially destructible.
template <class T, class Ctx, class... Args>
T* alloc_object(Ctx& ctx, Args&&... args) {
  static_assert(std::is_trivially_destructible_v<T>,
                "persistent objects must be trivially destructible");
  void* mem = ctx.raw_alloc(sizeof(T), alignof(T));
  return ::new (mem) T(std::forward<Args>(args)...);
}

/// Allocate a zero-initialized persistent array of T.
template <class T, class Ctx>
T* alloc_array(Ctx& ctx, std::size_t count) {
  static_assert(std::is_trivially_destructible_v<T>,
                "persistent objects must be trivially destructible");
  void* mem = ctx.raw_alloc(sizeof(T) * count, alignof(T));
  return ::new (mem) T[count]();
}

}  // namespace dssq::pmem
