// ShadowPool — a simulated persistent-memory pool with crash semantics.
//
// The pool owns two images of the same arena:
//
//   live   — the memory application threads actually read and write
//            (models DRAM + volatile caches);
//   shadow — the persistence domain: the state that is guaranteed to
//            survive a crash.
//
// flush(addr, n) records the cache lines overlapping [addr, addr+n) in the
// calling thread's pending set (CLWB initiates write-back but guarantees
// nothing until a fence); fence() copies each pending line live → shadow
// (SFENCE awaits completion).  This gives flush/fence exactly the
// guarantee contract of the hardware.
//
// crash() reconstructs memory as a real power failure would: every line
// whose live and shadow images differ is "dirty"; flushed-and-fenced data
// is already in the shadow; for each dirty line the survival adversary
// decides whether the cache happened to write it back before the failure
// (kAll), definitely did not (kNone), or did so for a seeded-random subset
// (kRandom).  Afterwards live == shadow and recovery code runs on it.
// This is *stronger* adversarial coverage than real hardware, where one
// cannot choose which unflushed lines survive.
//
// Thread-safety: flush/fence may be called concurrently from any number of
// threads.  crash() and allocation-introspection require external
// quiescence (all worker threads stopped), which is exactly the paper's
// system-wide-failure model.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/cacheline.hpp"

namespace dssq::pmem {

class ShadowPool {
 public:
  enum class Survival : std::uint8_t {
    kNone,    // only flushed+fenced data survives (worst case)
    kAll,     // every dirty line happens to be written back (best case)
    kRandom,  // each dirty line survives independently with probability p
  };

  struct CrashOptions {
    Survival survival = Survival::kNone;
    double p_survive = 0.5;    // used by kRandom
    std::uint64_t seed = 1;    // adversary seed, for replayability
  };

  struct CrashReport {
    std::size_t dirty_lines = 0;     // lines that differed at crash time
    std::size_t survived_lines = 0;  // dirty lines the adversary persisted
  };

  /// Create a pool of `bytes` (rounded up to whole cache lines).
  explicit ShadowPool(std::size_t bytes);
  ~ShadowPool();

  ShadowPool(const ShadowPool&) = delete;
  ShadowPool& operator=(const ShadowPool&) = delete;

  /// Bump-allocate `size` bytes with `align` alignment from the live arena.
  /// Thread-safe.  Throws std::bad_alloc when exhausted.  Memory is
  /// zero-initialized in both images (a fresh pmem pool is zeroed).
  void* alloc(std::size_t size, std::size_t align);

  /// CLWB-equivalent: enqueue the lines of [addr, addr+n) for write-back by
  /// the calling thread.  `addr` must lie inside the pool.
  void flush(const void* addr, std::size_t n);

  /// SFENCE-equivalent: commit the calling thread's pending lines to shadow.
  void fence();

  /// flush + fence (pmem_persist).
  void persist(const void* addr, std::size_t n) {
    flush(addr, n);
    fence();
  }

  /// Commit every dirty line to shadow (models an orderly shutdown).
  /// Requires quiescence.
  void persist_everything();

  /// Simulate a power failure.  Requires quiescence.  All pending flush
  /// sets (of every thread, including ones that no longer exist) are
  /// invalidated; live is rebuilt from shadow plus the adversary-chosen
  /// surviving dirty lines.
  CrashReport crash(const CrashOptions& options);
  CrashReport crash() { return crash(CrashOptions{}); }

  // ---- introspection ----------------------------------------------------
  void* base() noexcept { return live_; }
  const void* base() const noexcept { return live_; }
  std::size_t size_bytes() const noexcept { return bytes_; }
  std::size_t num_lines() const noexcept { return bytes_ / kCacheLineSize; }
  std::size_t bytes_allocated() const noexcept {
    return next_offset_.load(std::memory_order_relaxed);
  }
  bool contains(const void* p) const noexcept;
  /// True iff the line containing `p` differs between live and shadow.
  bool line_dirty(const void* p) const noexcept;
  /// Count of lines currently differing between the two images.
  std::size_t count_dirty_lines() const noexcept;
  /// Raw pointer into the shadow image corresponding to live address `p`
  /// (for white-box tests).
  const void* shadow_of(const void* p) const noexcept;

 private:
  std::size_t line_of(const void* p) const noexcept;
  void commit_line(std::size_t line) noexcept;   // live -> shadow
  void restore_line(std::size_t line) noexcept;  // shadow -> live
  bool line_differs(std::size_t line) const noexcept;

  struct PendingSet;  // thread-local pending-flush bookkeeping
  PendingSet& pending_for_this_thread();

  std::size_t bytes_;
  std::byte* live_ = nullptr;
  std::byte* shadow_ = nullptr;
  std::atomic<std::size_t> next_offset_{0};
  const std::uint64_t pool_gen_;                 // unique per pool instance
  std::atomic<std::uint64_t> crash_epoch_{0};    // bumped by crash()
};

}  // namespace dssq::pmem
