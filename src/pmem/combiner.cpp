#include "pmem/combiner.hpp"

#include <cstdlib>
#include <cstring>

namespace dssq::pmem {

namespace {

bool env_truthy_default_on(const char* name) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "FALSE") == 0);
}

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{env_truthy_default_on("DSSQ_FENCE_COMBINING")};
  return flag;
}

}  // namespace

bool fence_combining_enabled() noexcept {
#if DSSQ_FENCE_COMBINING_ENABLED
  return enabled_flag().load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void set_fence_combining_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::size_t combiner_slot_of_this_thread() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

std::uint64_t FenceCombiner::default_spin_limit() noexcept {
  static const std::uint64_t limit = [] {
    const char* v = std::getenv("DSSQ_COMBINER_SPIN");
    if (v != nullptr && *v != '\0') {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v, &end, 10);
      if (end != v) return static_cast<std::uint64_t>(n);
    }
    return std::uint64_t{4096};
  }();
  return limit;
}

}  // namespace dssq::pmem
