#include "pmem/backend.hpp"

#include <cstdlib>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace dssq::pmem {

namespace {

std::uint64_t env_u64(const char* var, std::uint64_t fallback) {
  const char* s = std::getenv(var);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s) return fallback;
  return static_cast<std::uint64_t>(v);
}

}  // namespace

EmulationParams emulation_params_from_env() {
  EmulationParams p;
  p.flush_ns_per_line = env_u64("DSSQ_FLUSH_NS", p.flush_ns_per_line);
  p.fence_ns = env_u64("DSSQ_FENCE_NS", p.fence_ns);
  return p;
}

const char* ClwbBackend::name() noexcept {
#if defined(__CLWB__)
  return "clwb";
#elif defined(__CLFLUSHOPT__)
  return "clflushopt";
#elif defined(__x86_64__)
  return "clflush";
#else
  return "fence-only";
#endif
}

bool ClwbBackend::has_native_writeback() noexcept {
#if defined(__CLWB__) || defined(__CLFLUSHOPT__) || defined(__x86_64__)
  return true;
#else
  return false;
#endif
}

void ClwbBackend::flush(const void* addr, std::size_t n) noexcept {
  metrics::add(metrics::Counter::kFlushCalls);
  metrics::add(metrics::Counter::kFlushLines,
               cache_lines_spanned(reinterpret_cast<std::uintptr_t>(addr), n));
  trace::flush_event();
  const auto start = cache_line_base(reinterpret_cast<std::uintptr_t>(addr));
  const auto end = reinterpret_cast<std::uintptr_t>(addr) + (n == 0 ? 1 : n);
  for (std::uintptr_t line = start; line < end; line += kCacheLineSize) {
#if defined(__CLWB__)
    // dssq-lint: allow(raw-writeback) ClwbBackend::flush is the backend
    // write-back primitive the rule funnels all other code into.
    _mm_clwb(reinterpret_cast<void*>(line));
#elif defined(__CLFLUSHOPT__)
    // dssq-lint: allow(raw-writeback) backend write-back primitive (fallback
    // tier for CPUs without CLWB).
    _mm_clflushopt(reinterpret_cast<void*>(line));
#elif defined(__x86_64__)
    // dssq-lint: allow(raw-writeback) backend write-back primitive (last
    // x86 fallback tier; eager-invalidate semantics accepted here).
    _mm_clflush(reinterpret_cast<void*>(line));
#else
    (void)line;
#endif
  }
}

void ClwbBackend::fence() noexcept {
  metrics::add(metrics::Counter::kFences);
  trace::fence_event();
#if defined(__x86_64__)
  // dssq-lint: allow(raw-fence) backend persist fence (SFENCE orders the
  // non-temporal write-backs issued by flush()); everything else goes
  // through Ctx::fence().
  _mm_sfence();
#else
  writeback_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace dssq::pmem
