// Cross-thread persist-fence combining (the "persist coalescer").
//
// The paper's Figure-5a gap between the detectable and non-detectable
// queues is the price of the extra flush/fence pairs detectability
// demands; Cho et al. (Practical Detectability for Persistent Lock-Free
// Data Structures) show that amortizing those barriers is the biggest
// practical lever for closing it.  The idea: a persist fence is a *drain*
// of everything flushed before it, by anyone — so when N threads have all
// finished flushing and each wants a fence, ONE fence issued after all N
// announcements satisfies all N.  This file implements that combining
// layer as a ticketed announcement protocol:
//
//   * `started_` is a ticket clock: ticket T is claimed by the thread that
//     CASes started_ from T-1 to T, and that thread performs one real
//     backend fence on behalf of everyone whose flushes precede the claim.
//   * A thread arriving at fence() computes target = started_ + 1 (one
//     seq_cst load) and waits for `completed_ >= target`, publishing the
//     target into its cache-line-padded slot once it actually waits.  Any
//     ticket >= target was claimed *after* that load (a seq_cst load that
//     returns T-1 precedes the RMW that writes T in the SC total order),
//     hence after the thread's flushes — so that ticket's fence drains
//     them.
//   * Fences for different tickets may finish out of order, so completion
//     is published as a monotone max on `completed_`.
//   * The wait is bounded: after `spin_limit()` pause rounds (the claimed
//     fencer may have been preempted mid-fence) the waiter falls back to
//     fencing for itself, which is always correct — a superset fence.
//
// The combiner never *adds* a fence and never removes one a thread's
// correctness depends on: on return from fence(), every write the calling
// thread flushed beforehand has been drained, exactly the contract of a
// raw backend fence.  Validity per backend tier is argued in
// docs/persistence-model.md (shared write-pending-queue drain for the
// emulated backend, file-global fdatasync/msync for MmapBackend, and the
// eADR/global-visibility assumption for raw CLWB hardware).
//
// Combiner state is volatile (DRAM): a crash discards announcements along
// with the threads that made them, so recovery sees exactly what a raw
// fence would have persisted or not persisted.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/cacheline.hpp"
#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "common/spin.hpp"

#ifndef DSSQ_FENCE_COMBINING_ENABLED
#define DSSQ_FENCE_COMBINING_ENABLED 1
#endif

namespace dssq::pmem {

/// Runtime knob (the CMake option DSSQ_FENCE_COMBINING is the compile
/// gate).  Initialized once from the environment variable
/// DSSQ_FENCE_COMBINING ("0"/"off"/"false" disable); benches flip it with
/// the setter to emit ON and OFF series from one process.  When the
/// compile gate is off the getter is constant-false and contexts compile
/// fence_combined() straight down to fence().
bool fence_combining_enabled() noexcept;
void set_fence_combining_enabled(bool on) noexcept;

/// Process-wide slot index for combiner announcement arrays (stable per
/// OS thread, assigned on first use).  Exposed for tests.
std::size_t combiner_slot_of_this_thread() noexcept;

class FenceCombiner {
 public:
  /// Announcement slots.  Slots are an observability surface showing what
  /// each *waiting* thread is waiting on (tests and the flight recorder
  /// read them); correctness rides on the ticket counters, so index
  /// collisions past kSlots threads are benign and uncontended calls skip
  /// the slot entirely.
  static constexpr std::size_t kSlots = 64;

  FenceCombiner() noexcept = default;
  FenceCombiner(const FenceCombiner&) = delete;
  FenceCombiner& operator=(const FenceCombiner&) = delete;

  /// Combined fence: on return, every write the calling thread flushed
  /// before the call has been drained.  `hw` performs one real backend
  /// fence when invoked; it is called at most once per fence() call.
  template <class HwFence>
  void fence(HwFence&& hw) noexcept {
    fence_at(started_.load(std::memory_order_seq_cst) + 1,
             std::forward<HwFence>(hw));
  }

  /// Protocol body against an externally supplied target epoch.  fence()
  /// always passes started()+1; tests call this directly to construct the
  /// interleavings a timing race can't reach deterministically — a target
  /// whose ticket is claimed but not completed (the lost-race state, which
  /// exercises bounded spin + self-fence fallback) or one already
  /// completed (the elide path).
  template <class HwFence>
  void fence_at(std::uint64_t target, HwFence&& hw) noexcept {
    const std::uint64_t limit = spin_limit();
    std::uint64_t spins = 0;
    // The slot is written only once this thread actually waits: the
    // uncontended claim (the overwhelmingly common case when threads are
    // not overlapping inside the fence window) must cost as little over a
    // raw fence as possible, and the announcement array is observability,
    // not correctness — the ticket counters carry the protocol.
    Slot* slot = nullptr;
    for (;;) {
      if (completed_.load(std::memory_order_acquire) >= target) {
        // A ticket claimed after our flushes has fenced: elide ours.
        if (slot != nullptr) slot->announced.store(0, std::memory_order_release);
        metrics::add(metrics::Counter::kFencesElided);
        trace::fence_elided_event();
        return;
      }
      std::uint64_t expect = target - 1;
      if (started_.compare_exchange_strong(expect, target,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed)) {
        // We own ticket `target`: one real fence retires every announced
        // epoch <= target.
        hw();
        publish_completed(target);
        if (slot != nullptr) slot->announced.store(0, std::memory_order_release);
        metrics::add(metrics::Counter::kFencesCombined);
        return;
      }
      if (slot == nullptr) {
        // Lost the claim race: from here on we are a waiter — announce so
        // tests and the flight recorder can see what we are waiting on.
        slot = &slots_[combiner_slot_of_this_thread() % kSlots];
        slot->announced.store(target, std::memory_order_release);
      }
      if (++spins >= limit) {
        // The fencer for our ticket may be preempted; a self-fence is
        // always a superset of the combined one, so fall back rather
        // than wait unboundedly.
        hw();
        slot->announced.store(0, std::memory_order_release);
        metrics::add(metrics::Counter::kCombinerSpinFallbacks);
        trace::combiner_fallback_event();
        return;
      }
      cpu_pause();
    }
  }

  // ---- test/observability surface ------------------------------------

  std::uint64_t started() const noexcept {
    return started_.load(std::memory_order_acquire);
  }
  std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_acquire);
  }
  /// Epoch currently announced in `slot` (0 = none).
  std::uint64_t announced(std::size_t slot) const noexcept {
    return slots_[slot % kSlots].announced.load(std::memory_order_acquire);
  }

  /// Bound on the pause rounds a waiter spends before self-fencing.
  /// Default comes from env DSSQ_COMBINER_SPIN (pause rounds), else 4096.
  /// 0 forces the fallback path on every contended wait (tests).
  std::uint64_t spin_limit() const noexcept {
    const std::uint64_t v = spin_limit_.load(std::memory_order_relaxed);
    return v != kSpinLimitUnset ? v : default_spin_limit();
  }
  void set_spin_limit(std::uint64_t rounds) noexcept {
    spin_limit_.store(rounds, std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kSpinLimitUnset = ~std::uint64_t{0};
  static std::uint64_t default_spin_limit() noexcept;

  void publish_completed(std::uint64_t upto) noexcept {
    std::uint64_t cur = completed_.load(std::memory_order_relaxed);
    while (cur < upto &&
           !completed_.compare_exchange_weak(cur, upto,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
    }
  }

  struct alignas(kCacheLineSize) Slot {
    std::atomic<std::uint64_t> announced{0};
  };

  alignas(kCacheLineSize) std::atomic<std::uint64_t> started_{0};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> spin_limit_{kSpinLimitUnset};
  std::array<Slot, kSlots> slots_{};
};

}  // namespace dssq::pmem
