// Cross-thread persist-fence combining (the "persist coalescer").
//
// The paper's Figure-5a gap between the detectable and non-detectable
// queues is the price of the extra flush/fence pairs detectability
// demands; Cho et al. (Practical Detectability for Persistent Lock-Free
// Data Structures) show that amortizing those barriers is the biggest
// practical lever for closing it.  The idea: a persist fence is a *drain*
// of everything flushed before it, by anyone — so when N threads have all
// finished flushing and each wants a fence, ONE fence issued after all N
// announcements satisfies all N.  This file implements that combining
// layer as a ticketed announcement protocol:
//
//   * `started_` is a ticket clock: ticket T is claimed by the thread that
//     CASes started_ from T-1 to T, and that thread performs one real
//     backend fence on behalf of everyone whose flushes precede the claim.
//   * A thread arriving at fence() computes target = started_ + 1 (one
//     seq_cst load) and waits for `completed_ >= target`, publishing the
//     target into its cache-line-padded slot once it actually waits.  Any
//     ticket >= target was claimed *after* that load (a seq_cst load that
//     returns T-1 precedes the RMW that writes T in the SC total order),
//     hence after the thread's flushes — so that ticket's fence drains
//     them.
//   * Fences for different tickets may finish out of order, so completion
//     is published as a monotone max on `completed_`.
//   * The wait is bounded: after `spin_limit()` pause rounds (the claimed
//     fencer may have been preempted mid-fence) the waiter falls back to
//     fencing for itself, which is always correct — a superset fence.
//
// The combiner never *adds* a fence and never removes one a thread's
// correctness depends on: on return from fence(), every write the calling
// thread flushed beforehand has been drained, exactly the contract of a
// raw backend fence.  Validity per backend tier is argued in
// docs/persistence-model.md (shared write-pending-queue drain for the
// emulated backend, file-global fdatasync/msync for MmapBackend, and the
// eADR/global-visibility assumption for raw CLWB hardware).
//
// Combiner state is volatile (DRAM): a crash discards announcements along
// with the threads that made them, so recovery sees exactly what a raw
// fence would have persisted or not persisted.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cacheline.hpp"
#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "common/spin.hpp"

#ifndef DSSQ_FENCE_COMBINING_ENABLED
#define DSSQ_FENCE_COMBINING_ENABLED 1
#endif

namespace dssq::pmem {

/// Runtime knob (the CMake option DSSQ_FENCE_COMBINING is the compile
/// gate).  Initialized once from the environment variable
/// DSSQ_FENCE_COMBINING ("0"/"off"/"false" disable); benches flip it with
/// the setter to emit ON and OFF series from one process.  When the
/// compile gate is off the getter is constant-false and contexts compile
/// fence_combined() straight down to fence().
bool fence_combining_enabled() noexcept;
void set_fence_combining_enabled(bool on) noexcept;

/// Process-wide slot index for combiner announcement arrays (stable per
/// OS thread, assigned on first use).  Exposed for tests.
std::size_t combiner_slot_of_this_thread() noexcept;

class FenceCombiner {
 public:
  /// Announcement slots.  Slots are an observability surface showing what
  /// each *waiting* thread is waiting on (tests and the flight recorder
  /// read them); correctness rides on the ticket counters, so index
  /// collisions past kSlots threads are benign and uncontended calls skip
  /// the slot entirely.
  static constexpr std::size_t kSlots = 64;

  FenceCombiner() noexcept = default;
  FenceCombiner(const FenceCombiner&) = delete;
  FenceCombiner& operator=(const FenceCombiner&) = delete;

  /// Combined fence: on return, every write the calling thread flushed
  /// before the call has been drained.  `hw` performs one real backend
  /// fence when invoked; it is called at most once per fence() call.
  template <class HwFence>
  void fence(HwFence&& hw) noexcept {
    fence_at(started_.load(std::memory_order_seq_cst) + 1,
             std::forward<HwFence>(hw));
  }

  /// Protocol body against an externally supplied target epoch.  fence()
  /// always passes started()+1; tests call this directly to construct the
  /// interleavings a timing race can't reach deterministically — a target
  /// whose ticket is claimed but not completed (the lost-race state, which
  /// exercises bounded spin + self-fence fallback) or one already
  /// completed (the elide path).
  template <class HwFence>
  void fence_at(std::uint64_t target, HwFence&& hw) noexcept {
    const std::uint64_t limit = spin_limit();
    std::uint64_t spins = 0;
    // The slot is written only once this thread actually waits: the
    // uncontended claim (the overwhelmingly common case when threads are
    // not overlapping inside the fence window) must cost as little over a
    // raw fence as possible, and the announcement array is observability,
    // not correctness — the ticket counters carry the protocol.
    Slot* slot = nullptr;
    for (;;) {
      if (completed_.load(std::memory_order_acquire) >= target) {
        // A ticket claimed after our flushes has fenced: elide ours.
        if (slot != nullptr) slot->announced.store(0, std::memory_order_release);
        metrics::add(metrics::Counter::kFencesElided);
        trace::fence_elided_event();
        return;
      }
      std::uint64_t expect = target - 1;
      if (started_.compare_exchange_strong(expect, target,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed)) {
        // We own ticket `target`: one real fence retires every announced
        // epoch <= target.
        hw();
        publish_completed(target);
        if (slot != nullptr) slot->announced.store(0, std::memory_order_release);
        metrics::add(metrics::Counter::kFencesCombined);
        return;
      }
      if (slot == nullptr) {
        // Lost the claim race: from here on we are a waiter — announce so
        // tests and the flight recorder can see what we are waiting on.
        slot = &slots_[combiner_slot_of_this_thread() % kSlots];
        slot->announced.store(target, std::memory_order_release);
      }
      if (++spins >= limit) {
        // The fencer for our ticket may be preempted; a self-fence is
        // always a superset of the combined one, so fall back rather
        // than wait unboundedly.
        hw();
        slot->announced.store(0, std::memory_order_release);
        metrics::add(metrics::Counter::kCombinerSpinFallbacks);
        trace::combiner_fallback_event();
        return;
      }
      cpu_pause();
    }
  }

  // ---- test/observability surface ------------------------------------

  std::uint64_t started() const noexcept {
    return started_.load(std::memory_order_acquire);
  }
  std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_acquire);
  }
  /// Epoch currently announced in `slot` (0 = none).
  std::uint64_t announced(std::size_t slot) const noexcept {
    return slots_[slot % kSlots].announced.load(std::memory_order_acquire);
  }

  /// Bound on the pause rounds a waiter spends before self-fencing.
  /// Default comes from env DSSQ_COMBINER_SPIN (pause rounds), else 4096.
  /// 0 forces the fallback path on every contended wait (tests).
  std::uint64_t spin_limit() const noexcept {
    const std::uint64_t v = spin_limit_.load(std::memory_order_relaxed);
    return v != kSpinLimitUnset ? v : default_spin_limit();
  }
  void set_spin_limit(std::uint64_t rounds) noexcept {
    spin_limit_.store(rounds, std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kSpinLimitUnset = ~std::uint64_t{0};
  static std::uint64_t default_spin_limit() noexcept;

  void publish_completed(std::uint64_t upto) noexcept {
    std::uint64_t cur = completed_.load(std::memory_order_relaxed);
    while (cur < upto &&
           !completed_.compare_exchange_weak(cur, upto,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
    }
  }

  struct alignas(kCacheLineSize) Slot {
    std::atomic<std::uint64_t> announced{0};
  };

  alignas(kCacheLineSize) std::atomic<std::uint64_t> started_{0};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> spin_limit_{kSpinLimitUnset};
  std::array<Slot, kSlots> slots_{};
};

/// Operation-level flat combining — the FenceCombiner's idea, one level up.
///
/// The fence combiner amortizes the *barrier*; this class amortizes the
/// *operation*: threads announce a prepared operation as an opaque payload
/// word in a per-thread slot, one thread claims the combiner role, collects
/// every announced request and applies the whole batch through a
/// caller-supplied callback — e.g. the sharded DSS queue links a batch of
/// enqueues with ONE tail CAS, one flush pass over the batch and one fence,
/// then publishes each caller's completion record.  Waiters spin until
/// their slot reads kDone, re-attempting the combiner role each round, so
/// a preempted combiner stalls but never strands the queue: whoever holds
/// the role eventually releases it and any waiter can take over the next
/// batch.
///
/// Payload words are opaque to the combiner; they must differ from kIdle
/// and kDone.  Pointers to cache-line-aligned nodes satisfy this and leave
/// their low 6 bits free for caller flag bits.
///
/// All state is volatile (DRAM): a crash discards announcements along with
/// the threads that made them — recovery calls reset() and replays nothing,
/// exactly as with the fence combiner.  Unlike the lock-free single-lane
/// queue, combining is blocking in the crash-free sense (the role is a
/// lock); the crash model is whole-process SIGKILL, so a "crashed combiner
/// holding the lock" cannot outlive the volatile lock word itself.
class OpCombiner {
 public:
  static constexpr std::uintptr_t kIdle = 0;
  static constexpr std::uintptr_t kDone = 1;

  struct Request {
    std::size_t slot = 0;        // announcing slot (the paper's thread id)
    std::uintptr_t payload = 0;  // the announced word
  };

  explicit OpCombiner(std::size_t slots) : slots_(slots) {
    batch_.reserve(slots);
  }
  OpCombiner(const OpCombiner&) = delete;
  OpCombiner& operator=(const OpCombiner&) = delete;

  std::size_t slot_count() const noexcept { return slots_.size(); }

  /// Publish a request without waiting (test-seam half 1 — the fence_at
  /// analogue: tests announce several requests, then drive one combining
  /// pass by hand to construct a batch a timing race can't reach
  /// deterministically).  run() is announce() + wait.
  void announce(std::size_t slot, std::uintptr_t payload) noexcept {
    assert(payload != kIdle && payload != kDone &&
           "payload words must be distinguishable from slot states");
    slots_[slot].word.store(payload, std::memory_order_release);
  }

  /// True once an announced request has been applied by some combiner.
  bool done(std::size_t slot) const noexcept {
    return slots_[slot].word.load(std::memory_order_acquire) == kDone;
  }

  /// Acknowledge a completed request, returning the slot to kIdle.
  void retire(std::size_t slot) noexcept {
    slots_[slot].word.store(kIdle, std::memory_order_relaxed);
  }

  /// Try to claim the combiner role; on success collect every announced
  /// request, apply them in one `apply(const Request*, size_t)` call, mark
  /// the batch done and return its size (possibly 0).  Returns SIZE_MAX
  /// when another thread holds the role.  (Test-seam half 2.)
  template <class Apply>
  std::size_t try_combine(Apply&& apply) {
    if (lock_.exchange(true, std::memory_order_acquire)) return SIZE_MAX;
    // Scope guard rather than a trailing store: a simulated crash thrown
    // from `apply` must not leave the volatile role lock held, or the
    // post-crash incarnation of an in-process sweep would deadlock.
    Unlocker unlock{this};
    batch_.clear();
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      const std::uintptr_t w = slots_[s].word.load(std::memory_order_acquire);
      if (w != kIdle && w != kDone) batch_.push_back(Request{s, w});
    }
    if (!batch_.empty()) {
      apply(batch_.data(), batch_.size());
      for (const Request& r : batch_) {
        slots_[r.slot].word.store(kDone, std::memory_order_release);
      }
      metrics::add(metrics::Counter::kOpsCombined, batch_.size());
      trace::op_combined_event(batch_.size());
    }
    return batch_.size();
  }

  /// Announce + wait: returns once this slot's request has been applied —
  /// by this thread (it re-attempts the combiner role every spin round) or
  /// by another combiner that collected the announcement into its batch.
  template <class Apply>
  void run(std::size_t slot, std::uintptr_t payload, Apply&& apply) {
    announce(slot, payload);
    for (;;) {
      if (done(slot)) {
        retire(slot);
        return;
      }
      if (try_combine(apply) != SIZE_MAX) {
        // The announcement preceded the role claim, so the batch contained
        // this slot; the next round observes kDone.
        continue;
      }
      cpu_pause();
    }
  }

  /// Discard all volatile combining state (crash recovery, tests).
  void reset() noexcept {
    for (auto& s : slots_) s.word.store(kIdle, std::memory_order_relaxed);
    lock_.store(false, std::memory_order_relaxed);
  }

 private:
  struct Unlocker {
    OpCombiner* c;
    ~Unlocker() { c->lock_.store(false, std::memory_order_release); }
  };
  struct alignas(kCacheLineSize) Slot {
    std::atomic<std::uintptr_t> word{kIdle};
  };

  alignas(kCacheLineSize) std::atomic<bool> lock_{false};
  std::vector<Slot> slots_;
  std::vector<Request> batch_;  // combiner-private (guarded by lock_)
};

}  // namespace dssq::pmem
