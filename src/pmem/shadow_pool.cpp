#include "pmem/shadow_pool.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>

#include "common/rng.hpp"

namespace dssq::pmem {

namespace {

std::atomic<std::uint64_t> g_pool_gen{1};

// Copy one 64-byte line word-by-word with atomic accesses.  The live image
// may be written concurrently by application threads; per-word atomicity
// mirrors the hardware, which writes back a consistent snapshot of each
// 8-byte word (individual words are never torn on x86-64).
void copy_line_atomic(std::byte* dst, const std::byte* src) noexcept {
  auto* d = reinterpret_cast<std::uint64_t*>(dst);
  auto* s = reinterpret_cast<std::uint64_t*>(const_cast<std::byte*>(src));
  for (std::size_t w = 0; w < kCacheLineSize / sizeof(std::uint64_t); ++w) {
    const std::uint64_t v =
        std::atomic_ref<std::uint64_t>(s[w]).load(std::memory_order_relaxed);
    std::atomic_ref<std::uint64_t>(d[w]).store(v, std::memory_order_relaxed);
  }
}

bool lines_equal(const std::byte* a, const std::byte* b) noexcept {
  auto* x = reinterpret_cast<std::uint64_t*>(const_cast<std::byte*>(a));
  auto* y = reinterpret_cast<std::uint64_t*>(const_cast<std::byte*>(b));
  for (std::size_t w = 0; w < kCacheLineSize / sizeof(std::uint64_t); ++w) {
    const std::uint64_t vx =
        std::atomic_ref<std::uint64_t>(x[w]).load(std::memory_order_relaxed);
    const std::uint64_t vy =
        std::atomic_ref<std::uint64_t>(y[w]).load(std::memory_order_relaxed);
    if (vx != vy) return false;
  }
  return true;
}

}  // namespace

// Per-thread pending-flush sets.  A thread may interact with several pools
// over its lifetime (tests create and destroy pools), so entries are keyed
// by the pool's unique generation number; stale entries are recycled.
struct ShadowPool::PendingSet {
  std::uint64_t pool_gen = 0;
  std::uint64_t crash_epoch = 0;
  std::vector<std::uint32_t> lines;
};

ShadowPool::PendingSet& ShadowPool::pending_for_this_thread() {
  // One small vector per thread; entries are keyed by pool generation and
  // recycled, so a thread can interact with many pools over its lifetime.
  thread_local std::vector<PendingSet> sets;
  PendingSet* free_slot = nullptr;
  for (auto& s : sets) {
    if (s.pool_gen == pool_gen_) {
      // Invalidate pending lines recorded before the last crash: those
      // flushes never reached a fence before power was lost.
      const auto epoch = crash_epoch_.load(std::memory_order_acquire);
      if (s.crash_epoch != epoch) {
        s.lines.clear();
        s.crash_epoch = epoch;
      }
      return s;
    }
    if (free_slot == nullptr && s.pool_gen == 0) free_slot = &s;
  }
  if (free_slot == nullptr) {
    sets.emplace_back();
    free_slot = &sets.back();
  }
  free_slot->pool_gen = pool_gen_;
  free_slot->crash_epoch = crash_epoch_.load(std::memory_order_acquire);
  free_slot->lines.clear();
  return *free_slot;
}

ShadowPool::ShadowPool(std::size_t bytes)
    : bytes_(round_up_to_line(bytes)),
      pool_gen_(g_pool_gen.fetch_add(1, std::memory_order_relaxed)) {
  if (bytes_ == 0) throw std::invalid_argument("ShadowPool: zero size");
  live_ = static_cast<std::byte*>(
      ::operator new(bytes_, std::align_val_t{kCacheLineSize}));
  shadow_ = static_cast<std::byte*>(
      ::operator new(bytes_, std::align_val_t{kCacheLineSize}));
  std::memset(live_, 0, bytes_);
  std::memset(shadow_, 0, bytes_);
}

ShadowPool::~ShadowPool() {
  ::operator delete(live_, std::align_val_t{kCacheLineSize});
  ::operator delete(shadow_, std::align_val_t{kCacheLineSize});
}

void* ShadowPool::alloc(std::size_t size, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("ShadowPool::alloc: bad alignment");
  }
  std::size_t offset = next_offset_.load(std::memory_order_relaxed);
  for (;;) {
    const std::size_t aligned = (offset + align - 1) & ~(align - 1);
    const std::size_t end = aligned + size;
    if (end > bytes_) throw std::bad_alloc();
    if (next_offset_.compare_exchange_weak(offset, end,
                                           std::memory_order_relaxed)) {
      return live_ + aligned;
    }
  }
}

bool ShadowPool::contains(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  return b >= live_ && b < live_ + bytes_;
}

std::size_t ShadowPool::line_of(const void* p) const noexcept {
  assert(contains(p));
  return cache_line_index(reinterpret_cast<std::uintptr_t>(live_),
                          reinterpret_cast<std::uintptr_t>(p));
}

void ShadowPool::flush(const void* addr, std::size_t n) {
  if (!contains(addr)) {
    throw std::logic_error(
        "ShadowPool::flush: address outside the persistent pool "
        "(the algorithm flushed volatile memory)");
  }
  auto& pending = pending_for_this_thread();
  const std::size_t first = line_of(addr);
  const std::size_t count =
      cache_lines_spanned(reinterpret_cast<std::uintptr_t>(addr), n);
  for (std::size_t i = 0; i < count; ++i) {
    pending.lines.push_back(static_cast<std::uint32_t>(first + i));
  }
}

void ShadowPool::fence() {
  auto& pending = pending_for_this_thread();
  for (const std::uint32_t line : pending.lines) commit_line(line);
  pending.lines.clear();
}

void ShadowPool::persist_everything() {
  const std::size_t lines = num_lines();
  for (std::size_t i = 0; i < lines; ++i) {
    if (line_differs(i)) commit_line(i);
  }
}

ShadowPool::CrashReport ShadowPool::crash(const CrashOptions& options) {
  CrashReport report;
  Xoshiro256 rng(options.seed);
  const std::size_t lines = num_lines();
  for (std::size_t i = 0; i < lines; ++i) {
    if (!line_differs(i)) continue;
    ++report.dirty_lines;
    bool survives = false;
    switch (options.survival) {
      case Survival::kNone:
        survives = false;
        break;
      case Survival::kAll:
        survives = true;
        break;
      case Survival::kRandom:
        survives = rng.next_bool(options.p_survive);
        break;
    }
    if (survives) {
      commit_line(i);
      ++report.survived_lines;
    } else {
      restore_line(i);
    }
  }
  // Invalidate all threads' pending sets: flushes without a fence are lost.
  crash_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return report;
}

bool ShadowPool::line_dirty(const void* p) const noexcept {
  return line_differs(line_of(p));
}

std::size_t ShadowPool::count_dirty_lines() const noexcept {
  std::size_t dirty = 0;
  const std::size_t lines = num_lines();
  for (std::size_t i = 0; i < lines; ++i) {
    if (line_differs(i)) ++dirty;
  }
  return dirty;
}

const void* ShadowPool::shadow_of(const void* p) const noexcept {
  const auto off = static_cast<const std::byte*>(p) - live_;
  return shadow_ + off;
}

void ShadowPool::commit_line(std::size_t line) noexcept {
  copy_line_atomic(shadow_ + line * kCacheLineSize,
                   live_ + line * kCacheLineSize);
}

void ShadowPool::restore_line(std::size_t line) noexcept {
  copy_line_atomic(live_ + line * kCacheLineSize,
                   shadow_ + line * kCacheLineSize);
}

bool ShadowPool::line_differs(std::size_t line) const noexcept {
  return !lines_equal(live_ + line * kCacheLineSize,
                      shadow_ + line * kCacheLineSize);
}

}  // namespace dssq::pmem
