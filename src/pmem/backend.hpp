// Persistence backends.
//
// A backend supplies the two hardware primitives of the persistency model
// used by the paper (Section 3: "persistent memory, volatile cache"):
//
//   flush(addr, n) — initiate write-back of every cache line overlapping
//                    [addr, addr+n) to the persistence domain (CLWB /
//                    CLFLUSHOPT on x86-64);
//   fence()        — order and await completion of prior flushes (SFENCE).
//
// persist(addr, n) = flush(addr, n); fence() — the contract of PMDK's
// pmem_persist, which the paper's evaluation uses.
//
// The paper measures on Intel Optane DCPMM.  Without that hardware we offer:
//   * EmulatedNvmBackend — DRAM plus a calibrated spin-delay per flushed
//     line and per fence, the standard DRAM-emulation methodology for
//     persistent-memory evaluations.  Latencies are env-tunable
//     (DSSQ_FLUSH_NS / DSSQ_FENCE_NS).
//   * ClwbBackend — issues real CLWB/CLFLUSHOPT + SFENCE when the CPU
//     supports them (no delay emulation; on DRAM this measures instruction
//     cost only).
//   * NullBackend — no-ops; used for the volatile MS-queue baseline.
//
// Backends are plain value types used as template parameters of the
// persistence contexts, so the calls inline away in benchmarks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ctime>

#include "common/cacheline.hpp"
#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "common/spin.hpp"

namespace dssq::pmem {

#if defined(__SANITIZE_THREAD__)
#define DSSQ_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DSSQ_UNDER_TSAN 1
#endif
#endif
#ifndef DSSQ_UNDER_TSAN
#define DSSQ_UNDER_TSAN 0
#endif

/// std::atomic_thread_fence, except under ThreadSanitizer, where it compiles
/// to nothing: TSan does not model C++ thread fences (GCC warns via -Wtsan),
/// and these fences only model hardware write-back ordering (CLWB is ordered
/// by prior stores; SFENCE drains the write-combining buffers).  No algorithm
/// in this repository relies on them for cross-thread synchronization — they
/// all use acquire/release atomics directly — so eliding them under TSan
/// neither masks real races nor fabricates sync edges that would hide them.
inline void writeback_fence(std::memory_order order) noexcept {
#if DSSQ_UNDER_TSAN
  (void)order;
#else
  // dssq-lint: allow(raw-fence) this helper IS the backend fence every
  // Ctx::fence() bottoms out in; the rule exists to funnel callers here.
  std::atomic_thread_fence(order);
#endif
}

/// Optional crash-injection hook a backend fires at its persistence
/// primitives.  A plain function pointer (not std::function) so the
/// disarmed fast path is one branch on a cold pointer.  Labels follow the
/// SimContext convention: "pmem:flush" before write-back starts,
/// "pmem:fence" before the drain, "pmem:fence-done" after it — firing on
/// BOTH primitives matters: a crash in the flush→fence window (write-back
/// initiated, completion not guaranteed) is exactly where detectability is
/// hard, and an injector that only sees flushes can never land there.
/// State is an opaque pointer to the injector (CrashPoints, KillSwitch, a
/// test counter).
using CrashHook = void (*)(void* state, const char* label);

/// Default emulated latencies, roughly calibrated to published Optane
/// DCPMM write-back numbers (per-line write-back ≈ 60 ns; persist fence
/// drain ≈ 120 ns).  Overridable via environment for sweeps.
struct EmulationParams {
  std::uint64_t flush_ns_per_line = 60;
  std::uint64_t fence_ns = 120;
};

/// Read DSSQ_FLUSH_NS / DSSQ_FENCE_NS from the environment, falling back to
/// the defaults above.
EmulationParams emulation_params_from_env();

/// No-op backend: models a purely volatile object (the MS-queue baseline,
/// obtained in the paper "by removing flushes").
struct NullBackend {
  static constexpr const char* name() noexcept { return "null"; }
  /// fence() is free here, so contexts skip the combiner entirely.
  static constexpr bool kNoopFence = true;
  void flush(const void*, std::size_t) noexcept {}
  void fence() noexcept {}
  void persist(const void*, std::size_t) noexcept {}
};

/// DRAM emulation of NVM write-back latency.
class EmulatedNvmBackend {
 public:
  EmulatedNvmBackend() : params_(emulation_params_from_env()) {}
  explicit EmulatedNvmBackend(EmulationParams p) noexcept : params_(p) {}

  // Copies share configuration but not the drain clock (an atomic, which
  // deletes the implicit copy operations): a copied backend models a fresh
  // write-pending queue.
  EmulatedNvmBackend(const EmulatedNvmBackend& other) noexcept
      : params_(other.params_),
        hook_(other.hook_),
        hook_state_(other.hook_state_) {}
  EmulatedNvmBackend& operator=(const EmulatedNvmBackend& other) noexcept {
    params_ = other.params_;
    hook_ = other.hook_;
    hook_state_ = other.hook_state_;
    return *this;
  }

  static constexpr const char* name() noexcept { return "emulated-nvm"; }
  static constexpr bool kNoopFence = false;

  /// Arm (or, with nullptr, disarm) crash injection.  The hook fires on
  /// flush() AND on fence() — earlier revisions only instrumented the flush
  /// path at some call sites, which silently exempted the flush→fence
  /// window from crash coverage.
  void set_crash_hook(CrashHook hook, void* state) noexcept {
    hook_ = hook;
    hook_state_ = state;
  }

  void flush(const void* addr, std::size_t n) noexcept {
    const auto lines =
        cache_lines_spanned(reinterpret_cast<std::uintptr_t>(addr), n);
    metrics::add(metrics::Counter::kFlushCalls);
    metrics::add(metrics::Counter::kFlushLines, lines);
    trace::flush_event();
    if (hook_ != nullptr) hook_(hook_state_, "pmem:flush");
    // Order the flush after prior stores, as CLWB is ordered by them.
    writeback_fence(std::memory_order_release);
    spin_for_ns(params_.flush_ns_per_line * lines);
  }

  void fence() noexcept {
    metrics::add(metrics::Counter::kFences);
    trace::fence_event();
    if (hook_ != nullptr) hook_(hook_state_, "pmem:fence");
    writeback_fence(std::memory_order_seq_cst);
    if (params_.fence_ns > 0) {
      // The write-pending queue drain is a shared memory-controller
      // resource, not a per-core timer: concurrent fences serialize.
      // Reserve [max(now, previous reservation end), +fence_ns) on the
      // shared drain clock and wait out the absolute end, so N threads
      // fencing together pay N*fence_ns of wall time between them —
      // which is exactly what makes one combined fence worth N.
      const std::uint64_t now = now_ns();
      std::uint64_t prev = drain_end_.load(std::memory_order_relaxed);
      std::uint64_t end;
      do {
        end = (prev > now ? prev : now) + params_.fence_ns;
      } while (!drain_end_.compare_exchange_weak(prev, end,
                                                 std::memory_order_relaxed));
      while (now_ns() < end) cpu_pause();
    }
    if (hook_ != nullptr) hook_(hook_state_, "pmem:fence-done");
  }

  void persist(const void* addr, std::size_t n) noexcept {
    flush(addr, n);
    fence();
  }

  const EmulationParams& params() const noexcept { return params_; }

 private:
  static std::uint64_t now_ns() noexcept {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }

  EmulationParams params_;
  CrashHook hook_ = nullptr;
  void* hook_state_ = nullptr;
  std::atomic<std::uint64_t> drain_end_{0};
};

/// Real cache-line write-back instructions (when compiled for a CPU that
/// has them; falls back to CLFLUSH otherwise).  Useful on machines with
/// genuine persistent memory, and for measuring raw instruction cost.
struct ClwbBackend {
  static const char* name() noexcept;
  static constexpr bool kNoopFence = false;
  void flush(const void* addr, std::size_t n) noexcept;
  void fence() noexcept;
  void persist(const void* addr, std::size_t n) noexcept {
    flush(addr, n);
    fence();
  }
  /// True when the build selected a real write-back instruction.
  static bool has_native_writeback() noexcept;
};

}  // namespace dssq::pmem
