#include "pmem/persistent_heap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <new>

#include "common/tagged_ptr.hpp"
#include "pmem/directory.hpp"

namespace dssq::pmem {

namespace {

constexpr std::size_t align_up(std::size_t v, std::size_t a) noexcept {
  return (v + a - 1) & ~(a - 1);
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw HeapOpenError("PersistentHeap(" + path + "): " + what);
}

[[noreturn]] void fail_errno(const std::string& path, const std::string& what) {
  fail(path, what + ": " + std::strerror(errno));
}

/// Offset of the named-object directory region: header line, state line,
/// then the user root block, rounded to a fresh cache line.
std::size_t dir_start(std::size_t root_bytes) noexcept {
  return align_up(sizeof(HeapHeader) + sizeof(HeapState) + root_bytes,
                  kCacheLineSize);
}

/// First byte of the bump-allocation region: directly after the directory.
std::size_t data_start(std::size_t root_bytes, std::size_t dir_bytes) noexcept {
  return dir_start(root_bytes) + align_up(dir_bytes, kCacheLineSize);
}

struct MapResult {
  void* addr = MAP_FAILED;
  MmapBackend::Mode mode = MmapBackend::Mode::kMsync;
};

/// Map `bytes` of `fd` at `want` (0 = kernel's choice), preferring a DAX
/// MAP_SYNC mapping (CLWB tier) and falling back to a plain shared mapping
/// (msync tier).  A nonzero `want` either lands exactly there or fails —
/// never silently relocates.
MapResult map_file(int fd, std::size_t bytes, std::uintptr_t want) {
  MapResult r;
  int fixed = 0;
  if (want != 0) {
#ifdef MAP_FIXED_NOREPLACE
    fixed = MAP_FIXED_NOREPLACE;
#endif
  }
  void* hint = reinterpret_cast<void*>(want);
  const int prot = PROT_READ | PROT_WRITE;
#if defined(MAP_SYNC) && defined(MAP_SHARED_VALIDATE)
  r.addr = ::mmap(hint, bytes, prot, MAP_SHARED_VALIDATE | MAP_SYNC | fixed,
                  fd, 0);
  if (r.addr != MAP_FAILED) {
    r.mode = MmapBackend::Mode::kClwb;
    return r;
  }
#endif
  r.addr = ::mmap(hint, bytes, prot, MAP_SHARED | fixed, fd, 0);
  r.mode = MmapBackend::Mode::kMsync;
  if (r.addr != MAP_FAILED && want != 0 &&
      reinterpret_cast<std::uintptr_t>(r.addr) != want) {
    // Kernel without MAP_FIXED_NOREPLACE treated the address as a hint and
    // relocated; a relocated heap is useless (pointers would dangle).
    ::munmap(r.addr, bytes);
    r.addr = MAP_FAILED;
    errno = EEXIST;
  }
  return r;
}

}  // namespace

std::uint64_t PersistentHeap::header_checksum(const HeapHeader& h) noexcept {
  // FNV-1a over every field before `checksum`, field-wise (not byte-wise
  // over padding, of which HeapHeader has none before the checksum).
  const std::uint64_t fields[] = {h.magic, h.version,   h.base,    h.size,
                                  h.root_bytes, h.dir_bytes, h.reserved};
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint64_t f : fields) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (f >> (8 * i)) & 0xff;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

PersistentHeap::PersistentHeap(const std::string& path, OpenMode mode,
                               Options opt)
    : path_(path) {
  if (mode == OpenMode::kCreate) {
    create(opt);
  } else {
    open(opt);
  }
}

PersistentHeap::PersistentHeap(const std::string& path, OpenMode mode)
    : PersistentHeap(path, mode, Options{}) {}

void PersistentHeap::create(Options opt) {
  const std::size_t dir_bytes =
      align_up(Directory::bytes_for(opt.dir_entries), kCacheLineSize);
  if (opt.bytes < data_start(opt.root_bytes, dir_bytes) + kCacheLineSize) {
    fail(path_, "heap size too small for header + root block + directory");
  }
  const std::size_t bytes = align_up(opt.bytes, kCacheLineSize);
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) fail_errno(path_, "open for create failed");
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    ::close(fd_);
    fd_ = -1;
    fail_errno(path_, "ftruncate failed");
  }
  MapResult m = map_file(fd_, bytes, opt.base_hint);
  if (m.addr == MAP_FAILED) {
    ::close(fd_);
    fd_ = -1;
    fail_errno(path_, "mmap failed");
  }
  const auto base = reinterpret_cast<std::uintptr_t>(m.addr);
  if (!fits_in_address_bits(base + bytes)) {
    // Tagged words can only carry 48 address bits; a heap beyond them
    // could never round-trip its own pointers.
    ::munmap(m.addr, bytes);
    ::close(fd_);
    fd_ = -1;
    fail(path_, "mapping exceeds the 48-bit tagged-pointer address space");
  }
  map_base_ = base;
  bytes_ = bytes;
  backend_ = MmapBackend(m.addr, bytes, fd_, m.mode);
  data_cursor_ = data_start(opt.root_bytes, dir_bytes);

  HeapHeader* hdr = header();
  hdr->magic = kMagic;
  hdr->version = kVersion;
  hdr->base = base;
  hdr->size = bytes;
  hdr->root_bytes = opt.root_bytes;
  hdr->dir_bytes = dir_bytes;
  hdr->reserved = 0;
  persist_header();
  state()->generation.store(1, std::memory_order_relaxed);
  state()->clean_shutdown.store(0, std::memory_order_relaxed);
  backend_.persist(state(), sizeof(HeapState));
  my_generation_ = 1;
  Directory::format(dir_base(), dir_bytes, backend_);
  recovered_ = false;
  was_clean_ = false;
}

void PersistentHeap::open(Options opt) {
  (void)opt;  // geometry comes from the header, never the caller
  fd_ = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
  if (fd_ < 0) fail_errno(path_, "open failed");

  // Validate the header from a plain read BEFORE mapping anything: a
  // corrupt or foreign file must be refused without side effects.
  HeapHeader h{};
  const ssize_t got = ::pread(fd_, &h, sizeof(h), 0);
  if (got != static_cast<ssize_t>(sizeof(h))) {
    ::close(fd_);
    fd_ = -1;
    fail(path_, "file too small to hold a heap header");
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    fail_errno(path_, "fstat failed");
  }
  std::string reason;
  if (h.magic != kMagic) {
    reason = "bad magic (not a dssq heap, or header destroyed)";
  } else if (h.version != kVersion) {
    reason = "unsupported layout version " + std::to_string(h.version);
  } else if (h.checksum != header_checksum(h)) {
    reason = "header checksum mismatch (torn or corrupted header)";
  } else if (h.size != static_cast<std::uint64_t>(st.st_size)) {
    reason = "header size disagrees with file size (truncated?)";
  } else if (h.base == 0 || !fits_in_address_bits(h.base + h.size)) {
    reason = "recorded mapping base is not a valid 48-bit address";
  } else if (data_start(h.root_bytes, h.dir_bytes) + kCacheLineSize >
             h.size) {
    reason = "root block + directory larger than the heap";
  }
  if (!reason.empty()) {
    ::close(fd_);
    fd_ = -1;
    fail(path_, "refusing to open: " + reason);
  }

  MapResult m = map_file(fd_, h.size, h.base);
  if (m.addr == MAP_FAILED) {
    ::close(fd_);
    fd_ = -1;
    fail_errno(path_,
               "cannot re-map at recorded base 0x" +
                   std::to_string(h.base) +
                   " (address range occupied in this process?)");
  }
  map_base_ = h.base;
  bytes_ = h.size;
  backend_ = MmapBackend(m.addr, bytes_, fd_, m.mode);
  data_cursor_ = data_start(h.root_bytes, h.dir_bytes);
  recovered_ = true;
  Directory::attach_check(dir_base(), h.dir_bytes, path_);

  // Start this lifetime: per-attacher generation stamping.  The atomic
  // fetch_add is valid with any number of concurrently attached processes
  // (MAP_SHARED aliases the same physical line); the clean flag is read
  // before this attach clears it.
  was_clean_ =
      state()->clean_shutdown.load(std::memory_order_relaxed) == 1;
  my_generation_ =
      state()->generation.fetch_add(1, std::memory_order_acq_rel) + 1;
  state()->clean_shutdown.store(0, std::memory_order_release);
  backend_.persist(state(), sizeof(HeapState));
}

PersistentHeap::~PersistentHeap() {
  if (closed_) return;
  // Crash-equivalent teardown: no msync, clean flag stays 0.
  if (map_base_ != 0) ::munmap(reinterpret_cast<void*>(map_base_), bytes_);
  if (fd_ >= 0) ::close(fd_);
}

void PersistentHeap::close() {
  if (closed_) return;
  ::msync(reinterpret_cast<void*>(map_base_), bytes_, MS_SYNC);
  state()->clean_shutdown.store(1, std::memory_order_release);
  backend_.persist(state(), sizeof(HeapState));
  ::munmap(reinterpret_cast<void*>(map_base_), bytes_);
  ::close(fd_);
  map_base_ = 0;
  bytes_ = 0;
  fd_ = -1;
  backend_ = MmapBackend{};
  closed_ = true;
}

void* PersistentHeap::raw_alloc(std::size_t size, std::size_t align) {
  const std::size_t offset = align_up(data_cursor_, align);
  if (offset + size > bytes_) throw std::bad_alloc();
  data_cursor_ = offset + size;
  return reinterpret_cast<void*>(map_base_ + offset);
}

void* PersistentHeap::root() noexcept {
  return reinterpret_cast<void*>(map_base_ + sizeof(HeapHeader) +
                                 sizeof(HeapState));
}

std::size_t PersistentHeap::root_bytes() const noexcept {
  return reinterpret_cast<const HeapHeader*>(map_base_)->root_bytes;
}

void* PersistentHeap::dir_base() const noexcept {
  const auto* hdr = reinterpret_cast<const HeapHeader*>(map_base_);
  return reinterpret_cast<void*>(map_base_ + dir_start(hdr->root_bytes));
}

std::size_t PersistentHeap::dir_bytes() const noexcept {
  return reinterpret_cast<const HeapHeader*>(map_base_)->dir_bytes;
}

HeapHeader* PersistentHeap::header() noexcept {
  return reinterpret_cast<HeapHeader*>(map_base_);
}

HeapState* PersistentHeap::state() const noexcept {
  return reinterpret_cast<HeapState*>(map_base_ + sizeof(HeapHeader));
}

void PersistentHeap::persist_header() {
  HeapHeader* hdr = header();
  hdr->checksum = header_checksum(*hdr);
  backend_.persist(hdr, sizeof(HeapHeader));
}

void PersistentHeap::dir_publish(const char* name, std::uint64_t type_tag,
                                 std::uint64_t addr) {
  Directory dir(dir_base(), dir_bytes());
  dir.publish(name, type_tag, addr, backend_);
}

std::uint64_t PersistentHeap::dir_lookup(const char* name,
                                         std::uint64_t type_tag) const {
  Directory dir(dir_base(), dir_bytes());
  return dir.lookup(name, type_tag);
}

}  // namespace dssq::pmem
