// Per-thread node pools.
//
// Matches the paper's memory-management setup (Section 4): "each thread
// pre-allocates a fixed size pool of queue nodes at initialization, and
// dequeued nodes are returned to the free pool using epoch-based
// reclamation."  The slabs live in context-owned persistent memory, so in
// simulation mode nodes are covered by the crash simulator; the free lists
// are volatile (they are reconstructed by recovery, see
// DssQueue::recover()).
//
// ## Persistent cursors (multi-process serving)
//
// The volatile fresh-slot cursor presumes the single-attacher replay
// story: a recovering process re-learns the high-water mark by scanning.
// Under CONCURRENT multi-process serving there is no quiescent moment to
// scan in, so cursor mode (install_cursors / the adopt constructor) keeps
// a persistent per-slot reservation cursor instead: try_acquire(ctx, tid)
// refills a small local window by durably advancing the cursor kChunk
// slots at a time (read cursor, bump, persist, THEN use the window).  A
// crash forfeits at most the unconsumed remainder of one window per
// incarnation — leaked until the next quiescent recover() returns
// unreachable slots to the free lists — and never double-issues a slot,
// because the reservation is durable before any node from it is linked.
// Slot exclusivity (one process per `tid`) is the lease table's job
// (pmem/slot_lease.hpp).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <vector>

#include "common/cacheline.hpp"

namespace dssq::pmem {

/// Tag selecting the attach (re-open) constructors: replay the allocation
/// sequence over an already-initialized persistent heap WITHOUT
/// reconstructing the objects (placement-new would wipe persisted state).
struct attach_t {
  explicit attach_t() = default;
};
inline constexpr attach_t attach{};

/// Tag selecting the adopt constructors: take ownership of persistent
/// regions by RAW ADDRESS (from a published root descriptor) with no
/// allocation at all — the multi-process attach path, where positional
/// replay is impossible because another process owns the heap cursor.
struct adopt_t {
  explicit adopt_t() = default;
};
inline constexpr adopt_t adopt{};

/// One durable fresh-slot reservation cursor per detectability slot.
/// Single-writer (the slot's lease holder); its own cache line so one
/// client's refill persist never drags a neighbour's cursor along.
struct alignas(kCacheLineSize) SlotCursor {
  std::uint64_t reserved = 0;  // fresh slots durably handed to the owner
  std::uint64_t pad[7] = {};
};
static_assert(sizeof(SlotCursor) == kCacheLineSize);

/// Window grabbed per durable cursor bump: large enough to amortize the
/// persist, small enough that a crashed incarnation leaks at most this
/// many slots until the next quiescent recovery.
inline constexpr std::size_t kCursorChunk = 32;

template <class T>
class NodeArena {
 public:
  /// Carve per-thread slabs for `threads` threads, `per_thread` nodes each,
  /// out of context-owned persistent memory.  Node slots are
  /// cache-line-aligned so that a node's fields are never split across an
  /// unrelated object's line (persistence is line-granular).
  template <class Ctx>
  NodeArena(Ctx& ctx, std::size_t threads, std::size_t per_thread)
      : threads_(threads), per_thread_(per_thread) {
    if (threads == 0 || per_thread == 0) {
      throw std::invalid_argument("NodeArena: empty geometry");
    }
    slot_bytes_ = round_up_to_line(sizeof(T));
    slab_ = static_cast<std::byte*>(
        ctx.raw_alloc(slot_bytes_ * threads_ * per_thread_, kCacheLineSize));
    state_.resize(threads_);
    for (std::size_t t = 0; t < threads_; ++t) {
      state_[t].next_fresh = 0;
      state_[t].window_end = per_thread_;
      state_[t].free_list.reserve(per_thread_);
    }
  }

  /// Attach to slabs that already exist in a recovered persistent heap:
  /// performs the SAME raw_alloc call as the normal constructor (positional
  /// allocation replay — the heap hands back the crashed process's slab
  /// address) but touches no slot contents.  Every slot is conservatively
  /// treated as handed out (`next_fresh = per_thread`); the caller's
  /// recovery pass (DssQueue::recover → rebuild_free_lists) returns the
  /// dead ones to the free lists, including slots the crashed process never
  /// actually acquired.
  template <class Ctx>
  NodeArena(attach_t, Ctx& ctx, std::size_t threads, std::size_t per_thread)
      : threads_(threads), per_thread_(per_thread) {
    if (threads == 0 || per_thread == 0) {
      throw std::invalid_argument("NodeArena: empty geometry");
    }
    slot_bytes_ = round_up_to_line(sizeof(T));
    slab_ = static_cast<std::byte*>(
        ctx.raw_alloc(slot_bytes_ * threads_ * per_thread_, kCacheLineSize));
    state_.resize(threads_);
    for (std::size_t t = 0; t < threads_; ++t) {
      state_[t].next_fresh = per_thread_;
      state_[t].window_end = per_thread_;
      state_[t].free_list.reserve(per_thread_);
    }
  }

  /// Adopt existing slabs and persistent cursors by raw address (the
  /// multi-process attach path; see adopt_t).  Every thread starts with an
  /// EMPTY local window — the first acquire refills durably from its
  /// cursor — so adopting never re-issues slots a previous incarnation
  /// reserved.
  NodeArena(adopt_t, std::byte* slab, SlotCursor* cursors,
            std::size_t threads, std::size_t per_thread)
      : threads_(threads), per_thread_(per_thread), cursors_(cursors) {
    if (threads == 0 || per_thread == 0 || slab == nullptr ||
        cursors == nullptr) {
      throw std::invalid_argument("NodeArena: bad adopt geometry");
    }
    slot_bytes_ = round_up_to_line(sizeof(T));
    slab_ = slab;
    state_.resize(threads_);
    for (std::size_t t = 0; t < threads_; ++t) {
      const auto r = static_cast<std::size_t>(cursors_[t].reserved);
      state_[t].next_fresh = r;
      state_[t].window_end = r;  // empty window: refill on first acquire
      state_[t].free_list.reserve(per_thread_);
    }
  }

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  /// Switch a creator-built arena into cursor mode: record each thread's
  /// current fresh high-water mark in the (caller-allocated, zeroed)
  /// persistent cursor array and empty the local windows, so every later
  /// fresh slot is durably reserved before use.  Call once, before the
  /// arena's addresses are published for other processes to adopt.
  template <class Ctx>
  void install_cursors(Ctx& ctx, SlotCursor* cursors) {
    cursors_ = cursors;
    for (std::size_t t = 0; t < threads_; ++t) {
      cursors_[t].reserved = state_[t].next_fresh;
      state_[t].window_end = state_[t].next_fresh;  // force durable refill
    }
    ctx.persist(cursors_, threads_ * sizeof(SlotCursor));
  }

  SlotCursor* cursors() const noexcept { return cursors_; }
  std::byte* slab() const noexcept { return slab_; }

  /// Claim an uninitialized slot from thread `tid`'s pool, or nullptr when
  /// the pool is exhausted (the caller may then force reclamation and
  /// retry).  Only thread `tid` may call this with its own id.
  T* try_acquire(std::size_t tid) noexcept {
    assert(tid < threads_);
    PerThread& st = state_[tid];
    if (!st.free_list.empty()) {
      T* node = st.free_list.back();
      st.free_list.pop_back();
      return node;
    }
    if (st.next_fresh < st.window_end) {
      return slot_ptr(tid, st.next_fresh++);
    }
    return nullptr;
  }

  /// Cursor-aware acquire: like try_acquire(tid), but when the local
  /// window runs dry in cursor mode, durably reserve the next kCursorChunk
  /// slots (bump + persist the cursor BEFORE using any of them).  Without
  /// cursors this degrades to plain try_acquire.
  template <class Ctx>
  T* try_acquire(Ctx& ctx, std::size_t tid) noexcept {
    T* node = try_acquire(tid);
    if (node != nullptr || cursors_ == nullptr) return node;
    PerThread& st = state_[tid];
    const auto r = static_cast<std::size_t>(cursors_[tid].reserved);
    const std::size_t take =
        per_thread_ - r < kCursorChunk ? per_thread_ - r : kCursorChunk;
    if (take == 0) return nullptr;  // slab slice exhausted
    cursors_[tid].reserved = r + take;
    ctx.persist(&cursors_[tid], sizeof(SlotCursor));
    st.next_fresh = r;
    st.window_end = r + take;
    return slot_ptr(tid, st.next_fresh++);
  }

  /// Like try_acquire, but throws std::bad_alloc on exhaustion.
  T* acquire(std::size_t tid) {
    T* node = try_acquire(tid);
    if (node == nullptr) throw std::bad_alloc();
    return node;
  }

  /// Return a node to thread `tid`'s free pool.  The node may have been
  /// acquired by a different thread (dequeued nodes migrate); EBR above us
  /// guarantees no concurrent readers.  Only thread `tid` may call this.
  void release(std::size_t tid, T* node) {
    assert(tid < threads_);
    state_[tid].free_list.push_back(node);
  }

  /// Drop all volatile free lists and fresh-slot cursors need recomputing:
  /// used after a simulated crash, before recovery repopulates them via
  /// rebuild_free_lists().
  void reset_volatile_state() {
    for (auto& st : state_) st.free_list.clear();
  }

  /// Recovery support: visit every slot ever handed out (per thread, in
  /// allocation order) so recovery code can decide which nodes are live
  /// (reachable from the queue) and which should return to free lists.
  template <class F>
  void for_each_allocated(F&& visit) {
    for (std::size_t t = 0; t < threads_; ++t) {
      // In cursor mode the durable reservation is the high-water mark —
      // it covers windows a crashed incarnation reserved but never used
      // (recovery returns those unreachable slots to the free lists).
      const std::size_t high =
          cursors_ != nullptr ? static_cast<std::size_t>(cursors_[t].reserved)
                              : state_[t].next_fresh;
      for (std::size_t i = 0; i < high; ++i) {
        visit(t, slot_ptr(t, i));
      }
    }
  }

  /// Recovery support: mark a slot free again (pushes to its owner thread's
  /// free list; the owner is derivable from the address).
  void release_to_owner(T* node) {
    const auto off = reinterpret_cast<std::byte*>(node) - slab_;
    const std::size_t slot = static_cast<std::size_t>(off) / slot_bytes_;
    const std::size_t owner = slot / per_thread_;
    assert(owner < threads_);
    state_[owner].free_list.push_back(node);
  }

  bool contains(const void* p) const noexcept {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= slab_ && b < slab_ + slot_bytes_ * threads_ * per_thread_;
  }

  std::size_t threads() const noexcept { return threads_; }
  std::size_t capacity_per_thread() const noexcept { return per_thread_; }
  std::size_t free_count(std::size_t tid) const {
    const PerThread& st = state_[tid];
    const std::size_t unreserved =
        cursors_ != nullptr
            ? per_thread_ - static_cast<std::size_t>(cursors_[tid].reserved)
            : 0;
    return st.free_list.size() + (st.window_end - st.next_fresh) + unreserved;
  }

 private:
  struct PerThread {
    std::vector<T*> free_list;
    std::size_t next_fresh = 0;
    std::size_t window_end = 0;  // fresh slots usable without a cursor bump
  };

  T* slot_ptr(std::size_t tid, std::size_t index) noexcept {
    return reinterpret_cast<T*>(slab_ +
                                slot_bytes_ * (tid * per_thread_ + index));
  }

  std::size_t threads_;
  std::size_t per_thread_;
  std::size_t slot_bytes_ = 0;
  std::byte* slab_ = nullptr;
  SlotCursor* cursors_ = nullptr;  // null = volatile (single-attach) mode
  std::vector<PerThread> state_;
};

}  // namespace dssq::pmem
