// Per-thread node pools.
//
// Matches the paper's memory-management setup (Section 4): "each thread
// pre-allocates a fixed size pool of queue nodes at initialization, and
// dequeued nodes are returned to the free pool using epoch-based
// reclamation."  The slabs live in context-owned persistent memory, so in
// simulation mode nodes are covered by the crash simulator; the free lists
// are volatile (they are reconstructed by recovery, see
// DssQueue::recover()).
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <stdexcept>
#include <vector>

#include "common/cacheline.hpp"

namespace dssq::pmem {

/// Tag selecting the attach (re-open) constructors: replay the allocation
/// sequence over an already-initialized persistent heap WITHOUT
/// reconstructing the objects (placement-new would wipe persisted state).
struct attach_t {
  explicit attach_t() = default;
};
inline constexpr attach_t attach{};

template <class T>
class NodeArena {
 public:
  /// Carve per-thread slabs for `threads` threads, `per_thread` nodes each,
  /// out of context-owned persistent memory.  Node slots are
  /// cache-line-aligned so that a node's fields are never split across an
  /// unrelated object's line (persistence is line-granular).
  template <class Ctx>
  NodeArena(Ctx& ctx, std::size_t threads, std::size_t per_thread)
      : threads_(threads), per_thread_(per_thread) {
    if (threads == 0 || per_thread == 0) {
      throw std::invalid_argument("NodeArena: empty geometry");
    }
    slot_bytes_ = round_up_to_line(sizeof(T));
    slab_ = static_cast<std::byte*>(
        ctx.raw_alloc(slot_bytes_ * threads_ * per_thread_, kCacheLineSize));
    state_.resize(threads_);
    for (std::size_t t = 0; t < threads_; ++t) {
      state_[t].next_fresh = 0;
      state_[t].free_list.reserve(per_thread_);
    }
  }

  /// Attach to slabs that already exist in a recovered persistent heap:
  /// performs the SAME raw_alloc call as the normal constructor (positional
  /// allocation replay — the heap hands back the crashed process's slab
  /// address) but touches no slot contents.  Every slot is conservatively
  /// treated as handed out (`next_fresh = per_thread`); the caller's
  /// recovery pass (DssQueue::recover → rebuild_free_lists) returns the
  /// dead ones to the free lists, including slots the crashed process never
  /// actually acquired.
  template <class Ctx>
  NodeArena(attach_t, Ctx& ctx, std::size_t threads, std::size_t per_thread)
      : threads_(threads), per_thread_(per_thread) {
    if (threads == 0 || per_thread == 0) {
      throw std::invalid_argument("NodeArena: empty geometry");
    }
    slot_bytes_ = round_up_to_line(sizeof(T));
    slab_ = static_cast<std::byte*>(
        ctx.raw_alloc(slot_bytes_ * threads_ * per_thread_, kCacheLineSize));
    state_.resize(threads_);
    for (std::size_t t = 0; t < threads_; ++t) {
      state_[t].next_fresh = per_thread_;
      state_[t].free_list.reserve(per_thread_);
    }
  }

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  /// Claim an uninitialized slot from thread `tid`'s pool, or nullptr when
  /// the pool is exhausted (the caller may then force reclamation and
  /// retry).  Only thread `tid` may call this with its own id.
  T* try_acquire(std::size_t tid) noexcept {
    assert(tid < threads_);
    PerThread& st = state_[tid];
    if (!st.free_list.empty()) {
      T* node = st.free_list.back();
      st.free_list.pop_back();
      return node;
    }
    if (st.next_fresh < per_thread_) {
      return slot_ptr(tid, st.next_fresh++);
    }
    return nullptr;
  }

  /// Like try_acquire, but throws std::bad_alloc on exhaustion.
  T* acquire(std::size_t tid) {
    T* node = try_acquire(tid);
    if (node == nullptr) throw std::bad_alloc();
    return node;
  }

  /// Return a node to thread `tid`'s free pool.  The node may have been
  /// acquired by a different thread (dequeued nodes migrate); EBR above us
  /// guarantees no concurrent readers.  Only thread `tid` may call this.
  void release(std::size_t tid, T* node) {
    assert(tid < threads_);
    state_[tid].free_list.push_back(node);
  }

  /// Drop all volatile free lists and fresh-slot cursors need recomputing:
  /// used after a simulated crash, before recovery repopulates them via
  /// rebuild_free_lists().
  void reset_volatile_state() {
    for (auto& st : state_) st.free_list.clear();
  }

  /// Recovery support: visit every slot ever handed out (per thread, in
  /// allocation order) so recovery code can decide which nodes are live
  /// (reachable from the queue) and which should return to free lists.
  template <class F>
  void for_each_allocated(F&& visit) {
    for (std::size_t t = 0; t < threads_; ++t) {
      for (std::size_t i = 0; i < state_[t].next_fresh; ++i) {
        visit(t, slot_ptr(t, i));
      }
    }
  }

  /// Recovery support: mark a slot free again (pushes to its owner thread's
  /// free list; the owner is derivable from the address).
  void release_to_owner(T* node) {
    const auto off = reinterpret_cast<std::byte*>(node) - slab_;
    const std::size_t slot = static_cast<std::size_t>(off) / slot_bytes_;
    const std::size_t owner = slot / per_thread_;
    assert(owner < threads_);
    state_[owner].free_list.push_back(node);
  }

  bool contains(const void* p) const noexcept {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= slab_ && b < slab_ + slot_bytes_ * threads_ * per_thread_;
  }

  std::size_t threads() const noexcept { return threads_; }
  std::size_t capacity_per_thread() const noexcept { return per_thread_; }
  std::size_t free_count(std::size_t tid) const {
    return state_[tid].free_list.size() +
           (per_thread_ - state_[tid].next_fresh);
  }

 private:
  struct PerThread {
    std::vector<T*> free_list;
    std::size_t next_fresh = 0;
  };

  T* slot_ptr(std::size_t tid, std::size_t index) noexcept {
    return reinterpret_cast<T*>(slab_ +
                                slot_bytes_ * (tid * per_thread_ + index));
  }

  std::size_t threads_;
  std::size_t per_thread_;
  std::size_t slot_bytes_ = 0;
  std::byte* slab_ = nullptr;
  std::vector<PerThread> state_;
};

}  // namespace dssq::pmem
