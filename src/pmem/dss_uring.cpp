// UringTable format/attach — the non-template half of dss_uring.hpp.

#include "pmem/dss_uring.hpp"

#include <cstring>
#include <new>

#include "pmem/mmap_backend.hpp"
#include "pmem/persistent_heap.hpp"

namespace dssq::pmem {

void UringTable::format(void* base, std::size_t slots, std::size_t capacity,
                        MmapBackend& backend) {
  if (slots == 0 || capacity == 0 || (capacity & (capacity - 1)) != 0) {
    throw std::invalid_argument(
        "UringTable::format: slots must be nonzero and capacity a nonzero "
        "power of two");
  }
  const std::size_t bytes = bytes_for(slots, capacity);
  // Zero state IS the empty-rings state (0-based indexes, 1-based seqs),
  // so formatting is a wipe plus the header.
  std::memset(base, 0, bytes);
  auto* h = ::new (base) Header{};
  h->magic = kMagic;
  h->slots = slots;
  h->capacity = capacity;
  backend.persist(base, bytes);
}

void UringTable::attach_check(const Header* hdr, const std::string& what) {
  if (hdr == nullptr || hdr->magic != kMagic || hdr->slots == 0 ||
      hdr->capacity == 0 || (hdr->capacity & (hdr->capacity - 1)) != 0) {
    throw HeapOpenError("UringTable(" + what +
                        "): refusing to attach: ring table header corrupt");
  }
}

}  // namespace dssq::pmem
