// UringTable — io_uring-style submission/completion rings over the heap.
//
// The serving layer of slot_lease.hpp still makes clients CALL the queue:
// every operation is a synchronous prep/exec against the shared object.
// This file turns the submission interface itself into a detectable,
// persistent surface: each detectability slot owns a bounded SUBMISSION
// ring (written by the leased client) and a COMPLETION ring (written by
// whoever drains the slot — an executor thread, the client pumping its own
// ring, or a lease reclaimer settling an orphan).  Because both rings and
// the executor's progress journal live in the same persistent heap as the
// queue, a crashed client's in-flight requests are exactly as recoverable
// as the paper's X[t] words — re-attach, scan the submission ring against
// the journal and X[t], resolve, resubmit-or-ack, never double-apply.
//
// Publication protocol (the ring idiom pmem_lint's persist-order rule
// knows): a submission entry's payload AND checksum are persisted BEFORE
// the tail index that publishes it.  A published entry is therefore always
// whole; an entry that fails its checksum can only mean a client that died
// mid-protocol (or corrupted memory) and is REFUSED with a completion of
// op = kOpRefused rather than executed.
//
// Exactly-once across crashes hangs on the per-slot executor journal
// (ExecCtl), maintained with this ordering per consumed entry E of
// sequence s (sub_head = h, s = h+1):
//
//   1. prep(E)                      — X[slot] prepared record persisted
//   2. prepped_seq = s; persist     — "X[slot] is E's record, not a stale one"
//   3. exec(E)                      — effect + X completion record persisted
//   4. done_result = r; done_seq = s  (one line, result stored first);
//      persist                      — "every seq ≤ done_seq has executed"
//   5. completion entry written + flushed (fenced by the NEXT entry's
//      journal persists, or by the batch-end publish)
//   6. batch end: fence; comp_tail = sub_head = consumed; persist — ONE
//      combined persist+fence publishes the whole drained batch
//
// Crash anywhere, then re-drain (drain() is idempotent and is also the
// settle path):
//   s ≤ done_seq          — E executed; (re)post its completion.  The
//                           completion cell is durable for s < done_seq
//                           (its flush preceded a later journal persist);
//                           for s == done_seq the journal line itself
//                           still holds E's result; enqueue results are
//                           always kOk regardless.
//   s == prepped_seq      — X[slot] is E's record by step 2, so resolve()
//                           answers for E: took effect ⇒ ack; no effect ⇒
//                           exec the already-prepared record (resubmit).
//   neither               — step 2 never persisted, so step 3 never ran:
//                           E provably has no effect; run it from scratch
//                           (prep reclaims any orphaned prepped node).
//
// One drainer per slot at a time (the lease holder, an executor thread it
// is assigned to, or the reclaimer that holds the slot mid-reclaim) — the
// same exclusive-ownership contract every X[t] word already carries.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "common/cacheline.hpp"
#include "common/flight_recorder.hpp"
#include "dss/detectable.hpp"
#include "dss/specs/queue_spec.hpp"

namespace dssq::pmem {

class MmapBackend;

class UringTable {
 public:
  static constexpr std::uint64_t kMagic = 0x44535351'55524E47ULL;  // DSSQURNG

  /// Operation codes carried in submission entries.  kOpRefused appears
  /// only in COMPLETION entries: the drained submission was torn (checksum
  /// mismatch) and was closed out without executing.
  static constexpr std::uint64_t kOpRefused = 0;
  static constexpr std::uint64_t kOpEnqueue = 1;
  static constexpr std::uint64_t kOpDequeue = 2;

  struct alignas(kCacheLineSize) Header {
    std::uint64_t magic = 0;
    std::uint64_t slots = 0;
    std::uint64_t capacity = 0;  // entries per ring; power of two
  };
  static_assert(sizeof(Header) == kCacheLineSize);

  /// One submission-queue entry.  seq is the client-assigned sequence
  /// number, 1-based so an all-zero (never-written) cell can never pass
  /// validation; entry s lives in cell (s-1) & (capacity-1).
  struct alignas(kCacheLineSize) SubEntry {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> op{0};
    std::atomic<std::int64_t> arg{0};
    std::atomic<std::uint64_t> t_submit{0};  // ns; pipeline stage stamp
    std::atomic<std::uint64_t> checksum{0};  // FNV-1a over the four above
  };
  static_assert(sizeof(SubEntry) == kCacheLineSize);

  /// One completion-queue entry, same cell addressing.  The three stamps
  /// carry the per-stage pipeline latencies (submit→drain→exec→complete)
  /// back to the client.
  struct alignas(kCacheLineSize) CompEntry {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> op{0};  // kOpRefused = submission was torn
    std::atomic<std::int64_t> result{0};
    std::atomic<std::uint64_t> t_submit{0};
    std::atomic<std::uint64_t> t_drain{0};
    std::atomic<std::uint64_t> t_exec{0};
    std::atomic<std::uint64_t> checksum{0};
  };
  static_assert(sizeof(CompEntry) == kCacheLineSize);

  /// Client-side control line: written ONLY by the slot's leased client.
  struct alignas(kCacheLineSize) ClientCtl {
    std::atomic<std::uint64_t> sub_tail{0};  // submissions published
  };
  static_assert(sizeof(ClientCtl) == kCacheLineSize);

  /// Executor-side control line: indexes, the exactly-once journal, and
  /// durable statistics, written ONLY by the slot's current drainer.
  /// done_result and done_seq share this line and are stored result-first,
  /// so any persisted snapshot in which done_seq names entry s also holds
  /// s's result (the line persists whole; the seq store is last).
  struct alignas(kCacheLineSize) ExecCtl {
    std::atomic<std::uint64_t> sub_head{0};    // submissions consumed
    std::atomic<std::uint64_t> comp_tail{0};   // completions published
    std::atomic<std::int64_t> done_result{0};  // journal: result of done_seq
    std::atomic<std::uint64_t> done_seq{0};    // journal: seq ≤ this executed
    std::atomic<std::uint64_t> prepped_seq{0};  // journal: X is this seq's
    std::atomic<std::uint64_t> torn_refused{0};   // stat: torn entries refused
    std::atomic<std::uint64_t> settled{0};        // stat: entries settled
    std::atomic<std::uint64_t> settle_passes{0};  // stat: settle() calls
  };
  static_assert(sizeof(ExecCtl) == kCacheLineSize);

  /// A drained response, as handed back by poll().
  struct Completion {
    std::uint64_t seq = 0;
    std::uint64_t op = 0;
    dss::Value result = 0;
    std::uint64_t t_submit = 0;
    std::uint64_t t_drain = 0;
    std::uint64_t t_exec = 0;

    bool refused() const noexcept { return op == kOpRefused; }
  };

  /// What a settle pass over an orphaned slot's rings did.
  struct SettleStats {
    std::uint64_t entries = 0;     // submissions closed out
    std::uint64_t acked = 0;       // had provably executed; completion posted
    std::uint64_t reexecuted = 0;  // valid, provably no effect; run now
    std::uint64_t refused = 0;     // torn; refusal completion posted
  };

  // ---- geometry, format, attach -------------------------------------------

  static std::size_t bytes_for(std::size_t slots,
                               std::size_t capacity) noexcept {
    return sizeof(Header) + slots * slot_stride(capacity);
  }

  /// Zero-initialize and persist a table over `base` (creator only; the
  /// region must come from the heap so every attacher adopts it by
  /// address).  `capacity` must be a power of two.
  static void format(void* base, std::size_t slots, std::size_t capacity,
                     MmapBackend& backend);

  /// Validate a header found through the heap directory; throws
  /// HeapOpenError with `what` in the message on any mismatch.
  static void attach_check(const Header* hdr, const std::string& what);

  /// Attach a view (run attach_check first when the base came from an
  /// untrusted directory entry).
  explicit UringTable(Header* hdr) noexcept
      : hdr_(hdr), capacity_(hdr->capacity), mask_(hdr->capacity - 1) {}

  std::size_t slots() const noexcept { return hdr_->slots; }
  std::size_t capacity() const noexcept { return capacity_; }

  // ---- client side ---------------------------------------------------------

  /// Publish one operation into slot i's submission ring.  False when the
  /// ring is full (backpressure: capacity submissions not yet consumed).
  /// The entry (payload + checksum) is persisted BEFORE the tail store
  /// that publishes it — the lint-checked ring publish idiom.
  template <class Ctx>
  bool submit(Ctx& ctx, std::size_t i, std::uint64_t op, dss::Value arg) {
    if (!stage(ctx, i, 0, op, arg)) return false;
    publish_staged(ctx, i, 1);
    return true;
  }

  /// Write and flush (but do NOT publish) the operation destined for ring
  /// position sub_tail + `staged`.  Staging amortises the publication cost
  /// over a submission window: stage k entries, then publish_staged(k)
  /// pays ONE fence plus ONE tail persist for all k, instead of one pair
  /// per operation.  Crash-safe for free — a staged entry is invisible to
  /// the drainer and to recovery until the tail moves, exactly as if the
  /// operation had never been submitted.  False when the ring cannot hold
  /// another staged entry (count already-staged entries against capacity).
  template <class Ctx>
  bool stage(Ctx& ctx, std::size_t i, std::uint64_t staged, std::uint64_t op,
             dss::Value arg) {
    ClientCtl& c = client_ctl(i);
    ExecCtl& e = exec_ctl(i);
    const std::uint64_t t =
        c.sub_tail.load(std::memory_order_relaxed) + staged;
    if (t - e.sub_head.load(std::memory_order_acquire) >= capacity_) {
      return false;
    }
    SubEntry& s = sub_entries(i)[t & mask_];
    const std::uint64_t seq = t + 1;
    const std::uint64_t now = trace::now_ns();
    s.seq.store(seq, std::memory_order_relaxed);
    s.op.store(op, std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.t_submit.store(now, std::memory_order_relaxed);
    s.checksum.store(
        sub_checksum(seq, op, static_cast<std::uint64_t>(arg), now),
        std::memory_order_relaxed);
    ctx.flush(&s, sizeof(SubEntry));
    return true;
  }

  /// Publish `staged` previously staged entries: one fence makes every
  /// staged payload durable, then the tail store + persist announces them
  /// all — the same persist-before-publish idiom as submit(), batched.
  template <class Ctx>
  void publish_staged(Ctx& ctx, std::size_t i, std::uint64_t staged) {
    if (staged == 0) return;
    ClientCtl& c = client_ctl(i);
    ctx.fence_combined();
    ctx.crash_point("uring:submit:entry-persisted");
    c.sub_tail.store(c.sub_tail.load(std::memory_order_relaxed) + staged,
                     std::memory_order_release);
    ctx.persist_combined(&c, sizeof(ClientCtl));
    ctx.crash_point("uring:submit:published");
  }

  /// Next completion at or past `cursor` (a consumed-completions count the
  /// caller advances on success).  nullopt when none is published yet, or
  /// when the cell was already overwritten because the caller let its
  /// cursor lag the completion tail by more than `capacity` (bound the
  /// submission window to the ring capacity to rule that out).
  std::optional<Completion> poll(std::size_t i,
                                 std::uint64_t cursor) const noexcept {
    const ExecCtl& e = exec_ctl(i);
    if (cursor >= e.comp_tail.load(std::memory_order_acquire)) {
      return std::nullopt;
    }
    const CompEntry& ce = comp_entries(i)[cursor & mask_];
    Completion out;
    out.seq = ce.seq.load(std::memory_order_relaxed);
    out.op = ce.op.load(std::memory_order_relaxed);
    out.result = ce.result.load(std::memory_order_relaxed);
    out.t_submit = ce.t_submit.load(std::memory_order_relaxed);
    out.t_drain = ce.t_drain.load(std::memory_order_relaxed);
    out.t_exec = ce.t_exec.load(std::memory_order_relaxed);
    if (out.seq != cursor + 1) return std::nullopt;
    return out;
  }

  // ---- executor / settle side ---------------------------------------------

  /// Drain up to `budget` published submissions of slot i through queue
  /// `q`, posting completions; returns the number of entries closed out.
  /// Idempotent and crash-resumable at every point (see the file comment's
  /// journal protocol), which makes it double as the settle pass a lease
  /// reclaimer runs over an orphan's rings: with `st` non-null, the
  /// per-branch counts are recorded there.  Caller must be slot i's sole
  /// drainer and, on a recovery path, must have run the queue's per-slot
  /// recovery (recover_independent(i)) first.
  template <class Ctx, class Q>
  std::size_t drain(Ctx& ctx, Q& q, std::size_t i,
                    std::size_t budget = SIZE_MAX,
                    SettleStats* st = nullptr) {
    ClientCtl& c = client_ctl(i);
    ExecCtl& e = exec_ctl(i);
    const std::uint64_t tail = c.sub_tail.load(std::memory_order_acquire);
    std::uint64_t head = e.sub_head.load(std::memory_order_relaxed);
    std::size_t n = 0;
    while (head < tail && n < budget) {
      const std::uint64_t seq = head + 1;
      SubEntry& s = sub_entries(i)[head & mask_];
      const std::uint64_t t_drain = trace::now_ns();
      const std::uint64_t sop = s.op.load(std::memory_order_relaxed);
      const dss::Value sarg = s.arg.load(std::memory_order_relaxed);
      const std::uint64_t tsub = s.t_submit.load(std::memory_order_relaxed);
      const bool valid =
          s.seq.load(std::memory_order_relaxed) == seq &&
          s.checksum.load(std::memory_order_relaxed) ==
              sub_checksum(seq, sop, static_cast<std::uint64_t>(sarg),
                           tsub) &&
          (sop == kOpEnqueue || sop == kOpDequeue);

      if (!valid) {
        // Torn submission: the publishing client died mid-protocol (or
        // never ran it).  Refuse — never execute bytes that fail their
        // own checksum.
        post(ctx, i, seq, kOpRefused, 0, tsub, t_drain, t_drain);
        e.torn_refused.fetch_add(1, std::memory_order_relaxed);
        if (st != nullptr) ++st->refused;
      } else if (seq <= e.done_seq.load(std::memory_order_relaxed)) {
        // Executed before a crash; never re-apply.  Re-post the
        // completion in case the original post never persisted.
        dss::Value result = dss::kOk;
        if (sop == kOpDequeue) {
          const CompEntry& ce = comp_entries(i)[head & mask_];
          result = comp_valid(ce, seq)
                       ? ce.result.load(std::memory_order_relaxed)
                       : e.done_result.load(std::memory_order_relaxed);
        }
        post(ctx, i, seq, sop, result, tsub, t_drain, t_drain);
        if (st != nullptr) ++st->acked;
      } else if (seq == e.prepped_seq.load(std::memory_order_relaxed)) {
        // X[i] is THIS entry's record (the journal persists after the
        // prep), so resolve() answers for it directly.
        const auto r = q.resolve(i);
        bool effect;
        dss::Value result = dss::kOk;
        if (sop == kOpEnqueue) {
          effect = r.op == dss::ResolvedOp::kEnqueue && r.arg == sarg &&
                   r.took_effect();
        } else {
          effect = r.op == dss::ResolvedOp::kDequeue && r.took_effect();
          if (effect) result = *r.response;
        }
        if (!effect) {
          // Prepared but provably never took effect: execute the
          // prepared record now (resubmit).  Re-prep only if X somehow
          // holds a foreign record (defense; the journal rules it out).
          const bool x_is_mine =
              sop == kOpEnqueue
                  ? (r.op == dss::ResolvedOp::kEnqueue && r.arg == sarg)
                  : r.op == dss::ResolvedOp::kDequeue;
          if (!x_is_mine) prep_op(q, i, sop, sarg);
          result = exec_op(q, i, sop);
        }
        journal_done(ctx, e, seq, result);
        post(ctx, i, seq, sop, result, tsub, t_drain, trace::now_ns());
        if (st != nullptr) effect ? ++st->acked : ++st->reexecuted;
      } else {
        // Fresh entry (or its prep journal never persisted — then the
        // exec provably never ran either): run it from scratch.
        prep_op(q, i, sop, sarg);
        e.prepped_seq.store(seq, std::memory_order_relaxed);
        ctx.persist_combined(&e, sizeof(ExecCtl));
        ctx.crash_point("uring:drain:prepped");
        const dss::Value result = exec_op(q, i, sop);
        journal_done(ctx, e, seq, result);
        ctx.crash_point("uring:drain:executed");
        post(ctx, i, seq, sop, result, tsub, t_drain, trace::now_ns());
        if (st != nullptr) ++st->reexecuted;
      }
      if (st != nullptr) ++st->entries;
      ++head;
      ++n;
    }
    if (n > 0) {
      // Batch publish: one fence orders every completion flush above,
      // then one persisted store of the control line releases the whole
      // batch — completions to the poller, ring cells to the submitter.
      // comp_tail only ever advances (an interrupted publish can leave it
      // ahead of sub_head; a budget-limited re-drain must not rewind it).
      ctx.fence_combined();
      if (head > e.comp_tail.load(std::memory_order_relaxed)) {
        e.comp_tail.store(head, std::memory_order_relaxed);
      }
      e.sub_head.store(head, std::memory_order_release);
      ctx.persist_combined(&e, sizeof(ExecCtl));
      ctx.crash_point("uring:drain:published");
    }
    return n;
  }

  /// Settle pass over an orphaned slot: drain everything still published,
  /// resolving each entry against the journal and X[i] (ack, resubmit, or
  /// refuse — never double-apply).  Run from SlotLeaseTable::reclaim_dead's
  /// settle callback, after oracle/queue per-slot recovery and BEFORE the
  /// slot is reissued.
  template <class Ctx, class Q>
  SettleStats settle(Ctx& ctx, Q& q, std::size_t i) {
    SettleStats st;
    (void)drain(ctx, q, i, SIZE_MAX, &st);
    ExecCtl& e = exec_ctl(i);
    e.settle_passes.fetch_add(1, std::memory_order_relaxed);
    if (st.entries > 0) {
      e.settled.fetch_add(st.entries, std::memory_order_relaxed);
    }
    ctx.persist_combined(&e, sizeof(ExecCtl));
    return st;
  }

  // ---- introspection (tests, repl, JSONL gates) ---------------------------

  std::uint64_t sub_tail(std::size_t i) const noexcept {
    return client_ctl(i).sub_tail.load(std::memory_order_acquire);
  }
  std::uint64_t sub_head(std::size_t i) const noexcept {
    return exec_ctl(i).sub_head.load(std::memory_order_acquire);
  }
  std::uint64_t comp_tail(std::size_t i) const noexcept {
    return exec_ctl(i).comp_tail.load(std::memory_order_acquire);
  }
  /// Published-but-unconsumed submissions.
  std::uint64_t depth(std::size_t i) const noexcept {
    return sub_tail(i) - sub_head(i);
  }
  std::uint64_t torn_refused(std::size_t i) const noexcept {
    return exec_ctl(i).torn_refused.load(std::memory_order_relaxed);
  }
  std::uint64_t settled(std::size_t i) const noexcept {
    return exec_ctl(i).settled.load(std::memory_order_relaxed);
  }
  std::uint64_t settle_passes(std::size_t i) const noexcept {
    return exec_ctl(i).settle_passes.load(std::memory_order_relaxed);
  }

  /// Raw views — the torn-submission tests forge entries through these.
  ClientCtl& client_ctl(std::size_t i) noexcept {
    return *reinterpret_cast<ClientCtl*>(slot_base(i));
  }
  const ClientCtl& client_ctl(std::size_t i) const noexcept {
    return *reinterpret_cast<const ClientCtl*>(slot_base(i));
  }
  ExecCtl& exec_ctl(std::size_t i) noexcept {
    return *reinterpret_cast<ExecCtl*>(slot_base(i) + sizeof(ClientCtl));
  }
  const ExecCtl& exec_ctl(std::size_t i) const noexcept {
    return *reinterpret_cast<const ExecCtl*>(slot_base(i) +
                                             sizeof(ClientCtl));
  }
  SubEntry* sub_entries(std::size_t i) noexcept {
    return reinterpret_cast<SubEntry*>(slot_base(i) + sizeof(ClientCtl) +
                                       sizeof(ExecCtl));
  }
  const SubEntry* sub_entries(std::size_t i) const noexcept {
    return reinterpret_cast<const SubEntry*>(
        slot_base(i) + sizeof(ClientCtl) + sizeof(ExecCtl));
  }
  CompEntry* comp_entries(std::size_t i) noexcept {
    return reinterpret_cast<CompEntry*>(slot_base(i) + sizeof(ClientCtl) +
                                        sizeof(ExecCtl) +
                                        capacity_ * sizeof(SubEntry));
  }
  const CompEntry* comp_entries(std::size_t i) const noexcept {
    return reinterpret_cast<const CompEntry*>(
        slot_base(i) + sizeof(ClientCtl) + sizeof(ExecCtl) +
        capacity_ * sizeof(SubEntry));
  }

  Header* header() noexcept { return hdr_; }

  /// FNV-1a over the submission payload, seq included — a half-written
  /// entry (or an all-zero cell: seq is 1-based) can never validate.
  static constexpr std::uint64_t sub_checksum(std::uint64_t seq,
                                              std::uint64_t op,
                                              std::uint64_t arg,
                                              std::uint64_t t) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = fnv_mix(h, seq);
    h = fnv_mix(h, op);
    h = fnv_mix(h, arg);
    return fnv_mix(h, t);
  }
  static constexpr std::uint64_t comp_checksum(std::uint64_t seq,
                                               std::uint64_t op,
                                               std::uint64_t result,
                                               std::uint64_t t) noexcept {
    return sub_checksum(seq, op, result, t) ^ kMagic;
  }

 private:
  static constexpr std::uint64_t fnv_mix(std::uint64_t h,
                                         std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  static std::size_t slot_stride(std::size_t capacity) noexcept {
    return sizeof(ClientCtl) + sizeof(ExecCtl) +
           capacity * (sizeof(SubEntry) + sizeof(CompEntry));
  }

  std::byte* slot_base(std::size_t i) const noexcept {
    return reinterpret_cast<std::byte*>(hdr_) + sizeof(Header) +
           i * slot_stride(capacity_);
  }

  static bool comp_valid(const CompEntry& ce, std::uint64_t seq) noexcept {
    const std::uint64_t cseq = ce.seq.load(std::memory_order_relaxed);
    return cseq == seq &&
           ce.checksum.load(std::memory_order_relaxed) ==
               comp_checksum(
                   cseq, ce.op.load(std::memory_order_relaxed),
                   static_cast<std::uint64_t>(
                       ce.result.load(std::memory_order_relaxed)),
                   ce.t_submit.load(std::memory_order_relaxed));
  }

  /// Write + flush one completion (NOT fenced: the batch-end publish —
  /// or, for entries that stay below done_seq, the next entry's journal
  /// persist — provides the ordering the recovery argument needs).
  template <class Ctx>
  void post(Ctx& ctx, std::size_t i, std::uint64_t seq, std::uint64_t op,
            dss::Value result, std::uint64_t t_submit, std::uint64_t t_drain,
            std::uint64_t t_exec) {
    CompEntry& ce = comp_entries(i)[(seq - 1) & mask_];
    ce.seq.store(seq, std::memory_order_relaxed);
    ce.op.store(op, std::memory_order_relaxed);
    ce.result.store(result, std::memory_order_relaxed);
    ce.t_submit.store(t_submit, std::memory_order_relaxed);
    ce.t_drain.store(t_drain, std::memory_order_relaxed);
    ce.t_exec.store(t_exec, std::memory_order_relaxed);
    ce.checksum.store(
        comp_checksum(seq, op, static_cast<std::uint64_t>(result), t_submit),
        std::memory_order_relaxed);
    ctx.flush(&ce, sizeof(CompEntry));
  }

  /// Journal "seq has executed with result": result stored before seq on
  /// the shared ExecCtl line, then one persist.
  template <class Ctx>
  void journal_done(Ctx& ctx, ExecCtl& e, std::uint64_t seq,
                    dss::Value result) {
    e.done_result.store(result, std::memory_order_relaxed);
    e.done_seq.store(seq, std::memory_order_release);
    ctx.persist_combined(&e, sizeof(ExecCtl));
  }

  template <class Q>
  static void prep_op(Q& q, std::size_t i, std::uint64_t op,
                      dss::Value arg) {
    if (op == kOpEnqueue) {
      q.prep_enqueue(i, arg);
    } else {
      q.prep_dequeue(i);
    }
  }

  template <class Q>
  static dss::Value exec_op(Q& q, std::size_t i, std::uint64_t op) {
    if (op == kOpEnqueue) {
      q.exec_enqueue(i);
      return dss::kOk;
    }
    return q.exec_dequeue(i);
  }

  Header* hdr_;
  std::size_t capacity_;
  std::uint64_t mask_;
};

}  // namespace dssq::pmem
