// PersistentHeap — a file-backed persistent heap mapped at a fixed base.
//
// The crash simulator (ShadowPool) proves the algorithms correct against
// an adversarial persistence model, but only *in-process*: the "crash" is
// a longjmp-style abandonment inside one address space.  PersistentHeap is
// the subsystem that takes the same algorithms through a real process
// failure: the heap lives in a file, a workload process is SIGKILLed
// mid-operation, and a *fresh* process re-maps the file and runs the
// Figure-6 recovery on whatever actually reached the page cache.
//
// ## Fixed-base mapping
//
// The DSS queue's detectability state X[1..n] stores raw node pointers
// (tagged in the 16 spare high bits — common/tagged_ptr.hpp), and the
// queue links nodes by raw pointer.  Those pointers are only meaningful if
// every attaching process maps the file at the SAME virtual address the
// creating process used.  The header therefore persists the mapping base;
// create() lets the kernel choose it (or honours an explicit hint) and
// open() re-maps with MAP_FIXED_NOREPLACE at the recorded base, refusing
// to open — rather than silently relocating — when the region is taken.
// The base and every address inside the heap must fit in the 48
// architectural address bits (checked at create), so tagged words
// round-trip heap pointers unchanged across process lifetimes.
//
// ## Segment header, heap state, and the generation protocol
//
// Offset 0 of the file holds the layout in two cache lines:
//
//   HeapHeader — IMMUTABLE after create(): magic, layout version, mapping
//     base, total size, root-block size, directory size, and a checksum
//     over all of the above.  Written once; any header that fails
//     validation (bad magic/version/checksum, size mismatch) makes open()
//     throw HeapOpenError — corrupt heaps are refused, never half-mapped.
//   HeapState — MUTABLE shared state: an atomic generation counter and an
//     atomic clean-shutdown flag.  These change while OTHER processes are
//     attached, so they cannot live under the header checksum (a
//     concurrent bump would tear it); each is a single 8-byte store,
//     which the x86 persistence model makes failure-atomic on its own.
//
// Every successful open() atomically increments the generation and clears
// the clean flag (persisted before user code runs) — per-attacher
// generation stamping, valid with any number of concurrent attachers.
// close() sets the flag after an msync of the whole range.  Under
// concurrent attach the flag is advisory (the LAST close wins); the
// multi-process serving layer derives crash facts from the slot-lease
// table (pmem/slot_lease.hpp), not from this flag.
//
// ## Positional allocation (the attach contract)
//
// raw_alloc is a bump allocator over the data region, and the cursor is
// deliberately volatile: every object in this repository performs ALL of
// its persistent allocation in its constructor, so a recovering process
// reconstructs pointers by replaying the same constructor sequence
// (NodeArena/DssQueue attach constructors do exactly this).  Allocation
// replay + fixed base ⇒ identical addresses, with no persistent allocator
// metadata to keep crash-consistent.
//
// A small user "root block" directly after the two header lines (root())
// gives callers a fixed-address place for bootstrap configuration.
//
// ## Named-object directory (multi-process discovery)
//
// Between the root block and the data region lives a persistent directory
// of `name → {type tag, root address}` bindings (pmem/directory.hpp).
// publish<T>() binds a name to a typed root object; lookup<T>() finds it
// from any concurrently attached process — the multi-process replacement
// for positional replay, which presumes exactly one attacher.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/cacheline.hpp"
#include "pmem/combiner.hpp"
#include "pmem/mmap_backend.hpp"

namespace dssq::pmem {

/// open()/create() failure with a human-readable reason (corrupt header,
/// unmappable base, bad geometry, ...).
struct HeapOpenError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Directory publish/lookup failure (duplicate binding with a different
/// target, torn entry, type-tag mismatch, table full).
struct DirectoryError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The persisted segment header at offset 0 of every heap file.  IMMUTABLE
/// after create(); 8-byte fields only, one cache line, checksummed.
struct alignas(kCacheLineSize) HeapHeader {
  std::uint64_t magic = 0;       // kMagic
  std::uint64_t version = 0;     // kVersion (layout revision)
  std::uint64_t base = 0;        // virtual address the file maps at
  std::uint64_t size = 0;        // mapped bytes (== file size)
  std::uint64_t root_bytes = 0;  // user root block size
  std::uint64_t dir_bytes = 0;   // named-object directory region size
  std::uint64_t reserved = 0;
  std::uint64_t checksum = 0;    // FNV-1a over the fields above
};
static_assert(sizeof(HeapHeader) == kCacheLineSize);

/// The mutable shared-state line directly after the header.  NOT under the
/// header checksum: these words change while other processes are attached,
/// and each update is a single failure-atomic 8-byte store.
struct alignas(kCacheLineSize) HeapState {
  std::atomic<std::uint64_t> generation{0};      // attaches so far (1 = create)
  std::atomic<std::uint64_t> clean_shutdown{0};  // 1 iff a close() completed
  std::uint64_t reserved[6] = {};
};
static_assert(sizeof(HeapState) == kCacheLineSize);

/// Compile-time type tag for directory bindings: FNV-1a of the decorated
/// function name, which embeds T.  Stable across processes of the same
/// binary (the only processes that may share a fixed-base heap anyway).
template <class T>
constexpr std::uint64_t type_tag_of() noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char* p = __PRETTY_FUNCTION__; *p != '\0'; ++p) {
    hash ^= static_cast<unsigned char>(*p);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

class PersistentHeap {
 public:
  static constexpr std::uint64_t kMagic = 0x44535351'48454150ULL;  // DSSQHEAP
  /// v2: split header/state lines + named-object directory region.
  static constexpr std::uint64_t kVersion = 2;

  struct Options {
    std::size_t bytes = 64u << 20;            // heap size (create only)
    std::size_t root_bytes = kCacheLineSize;  // user root block (create only)
    /// Capacity of the named-object directory (create only).
    std::size_t dir_entries = 64;
    /// 0 = kernel chooses the base (create only; open always uses the
    /// recorded one).  A nonzero hint is mapped with MAP_FIXED_NOREPLACE
    /// and create fails if the region is occupied.
    std::uintptr_t base_hint = 0;
  };

  enum class OpenMode : std::uint8_t {
    kCreate,  // truncate/initialize; the file's previous contents are gone
    kOpen,    // attach to an existing heap; throws if absent or corrupt
  };

  PersistentHeap(const std::string& path, OpenMode mode, Options opt);
  /// Same with default Options (separate overload: a `= {}` default
  /// argument cannot name a nested class's member initializers before the
  /// enclosing class is complete).
  PersistentHeap(const std::string& path, OpenMode mode);

  /// Destruction without close() is deliberately crash-equivalent: the
  /// mapping is torn down but the clean-shutdown flag stays 0, so the next
  /// open() sees a crashed heap (tests rely on this).
  ~PersistentHeap();

  PersistentHeap(const PersistentHeap&) = delete;
  PersistentHeap& operator=(const PersistentHeap&) = delete;

  /// Orderly shutdown: msync the whole range, set the clean flag, persist
  /// the state line, unmap.  The heap is unusable afterwards.
  void close();

  // ---- context allocation (positional; see file comment) -----------------
  void* raw_alloc(std::size_t size, std::size_t align);

  MmapBackend& backend() noexcept { return backend_; }
  /// Fence coalescer shared by every context handle onto this heap: one
  /// fdatasync/msync drains the whole file, so combining is per-heap, not
  /// per-handle.  State is volatile — it dies with the process, which is
  /// exactly the crash semantics a raw fence has.
  FenceCombiner& combiner() noexcept { return combiner_; }
  void flush(const void* addr, std::size_t n) noexcept {
    backend_.flush(addr, n);
  }
  void fence() noexcept { backend_.fence(); }
  void persist(const void* addr, std::size_t n) noexcept {
    backend_.persist(addr, n);
  }

  // ---- named-object directory --------------------------------------------

  /// Bind `name` to a typed root object living inside this heap.  Crash-
  /// consistent (an interrupted publish is invisible to lookup) and
  /// idempotent for an identical rebinding; a conflicting rebinding
  /// throws DirectoryError.
  template <class T>
  void publish(const std::string& name, T* root) {
    dir_publish(name.c_str(), type_tag_of<T>(),
                reinterpret_cast<std::uintptr_t>(root));
  }

  /// Find a published root by name.  nullptr when the name is absent;
  /// throws DirectoryError on a type-tag mismatch or a torn/corrupt entry.
  template <class T>
  T* lookup(const std::string& name) const {
    return reinterpret_cast<T*>(dir_lookup(name.c_str(), type_tag_of<T>()));
  }

  /// Untyped publish/lookup (implemented in directory.cpp).
  void dir_publish(const char* name, std::uint64_t type_tag,
                   std::uint64_t addr);
  std::uint64_t dir_lookup(const char* name, std::uint64_t type_tag) const;

  void* dir_base() const noexcept;
  std::size_t dir_bytes() const noexcept;

  // ---- introspection -----------------------------------------------------
  void* base() noexcept { return reinterpret_cast<void*>(map_base_); }
  std::size_t size_bytes() const noexcept { return bytes_; }
  /// The fixed-size user root block (zeroed at create).
  void* root() noexcept;
  std::size_t root_bytes() const noexcept;
  /// True when this handle attached to an existing heap (OpenMode::kOpen).
  bool recovered() const noexcept { return recovered_; }
  /// True when, at attach time, the most recent detach was a close().
  bool previous_shutdown_clean() const noexcept { return was_clean_; }
  /// THIS attacher's generation stamp (1 = the creating lifetime).  Under
  /// concurrent attach each process holds a distinct stamp.
  std::uint64_t generation() const noexcept { return my_generation_; }
  const std::string& path() const noexcept { return path_; }
  int fd() const noexcept { return fd_; }
  bool contains(const void* p) const noexcept {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    return a >= map_base_ && a < map_base_ + bytes_;
  }

  /// Checksum of a header's non-checksum fields (exposed for corruption
  /// tests, which forge headers byte-by-byte).
  static std::uint64_t header_checksum(const HeapHeader& h) noexcept;

 private:
  void create(Options opt);
  void open(Options opt);
  HeapHeader* header() noexcept;
  HeapState* state() const noexcept;
  void persist_header();

  std::string path_;
  int fd_ = -1;
  std::uintptr_t map_base_ = 0;
  std::size_t bytes_ = 0;
  std::size_t data_cursor_ = 0;  // volatile bump offset (replayed on attach)
  std::uint64_t my_generation_ = 0;
  MmapBackend backend_;
  FenceCombiner combiner_;
  bool recovered_ = false;
  bool was_clean_ = false;
  bool closed_ = false;
};

/// Perf-style persistence context over a PersistentHeap: allocation bumps
/// the heap, flush/fence go to the mmap backend, and crash_point forwards
/// to the heap backend's crash hook (so the fork harness can SIGKILL at
/// algorithm-labelled points, not just at flush/fence).
class MmapContext {
 public:
  static constexpr bool kSimulated = false;

  explicit MmapContext(PersistentHeap& heap) noexcept : heap_(&heap) {}

  void* raw_alloc(std::size_t size, std::size_t align) {
    return heap_->raw_alloc(size, align);
  }
  void flush(const void* addr, std::size_t n) { heap_->flush(addr, n); }
  void fence() { heap_->fence(); }
  void persist(const void* addr, std::size_t n) { heap_->persist(addr, n); }

  /// Combined fence over the heap's shared coalescer.  The crash point
  /// fires BEFORE the announcement so a KillSwitch countdown can land a
  /// SIGKILL inside the combined flush→fence window — the window whose
  /// shape this optimization changes.
  void fence_combined() {
    crash_point("pmem:fence-combined");
    if (!fence_combining_enabled()) {
      heap_->fence();
      return;
    }
    heap_->combiner().fence([this] { heap_->fence(); });
  }

  void persist_combined(const void* addr, std::size_t n) {
    heap_->flush(addr, n);
    fence_combined();
  }

  void crash_point(const char* label) {
    if (hook_ != nullptr) hook_(hook_state_, label);
  }

  /// Arm crash injection on algorithm points AND the backend's flush/fence.
  void set_crash_hook(CrashHook hook, void* state) noexcept {
    hook_ = hook;
    hook_state_ = state;
    heap_->backend().set_crash_hook(hook, state);
  }

  const char* backend_name() const noexcept {
    return heap_->backend().mode_name();
  }
  PersistentHeap& heap() noexcept { return *heap_; }

 private:
  PersistentHeap* heap_;
  CrashHook hook_ = nullptr;
  void* hook_state_ = nullptr;
};

}  // namespace dssq::pmem
