// PersistentHeap — a file-backed persistent heap mapped at a fixed base.
//
// The crash simulator (ShadowPool) proves the algorithms correct against
// an adversarial persistence model, but only *in-process*: the "crash" is
// a longjmp-style abandonment inside one address space.  PersistentHeap is
// the subsystem that takes the same algorithms through a real process
// failure: the heap lives in a file, a workload process is SIGKILLed
// mid-operation, and a *fresh* process re-maps the file and runs the
// Figure-6 recovery on whatever actually reached the page cache.
//
// ## Fixed-base mapping
//
// The DSS queue's detectability state X[1..n] stores raw node pointers
// (tagged in the 16 spare high bits — common/tagged_ptr.hpp), and the
// queue links nodes by raw pointer.  Those pointers are only meaningful if
// the recovering process maps the file at the SAME virtual address the
// crashed process used.  The header therefore persists the mapping base;
// create() lets the kernel choose it (or honours an explicit hint) and
// open() re-maps with MAP_FIXED_NOREPLACE at the recorded base, refusing
// to open — rather than silently relocating — when the region is taken.
// The base and every address inside the heap must fit in the 48
// architectural address bits (checked at create), so tagged words
// round-trip heap pointers unchanged across process lifetimes.
//
// ## Segment header and the generation protocol
//
// Offset 0 of the file holds a HeapHeader: magic, layout version, mapping
// base, total size, a generation counter, a clean-shutdown flag, and a
// checksum over all of the above.  Every successful open() increments the
// generation and clears the clean flag (persisted before user code runs);
// close() sets the flag after an msync of the whole range.  A recovering
// process can thus distinguish "orderly shutdown" from "crash" and knows
// how many lifetimes the heap has seen.  Any header that fails validation
// (bad magic/version/checksum, size mismatch with the file) makes open()
// throw HeapOpenError — corrupt heaps are refused, never half-mapped.
//
// ## Positional allocation (the attach contract)
//
// raw_alloc is a bump allocator over the data region, and the cursor is
// deliberately volatile: every object in this repository performs ALL of
// its persistent allocation in its constructor, so a recovering process
// reconstructs pointers by replaying the same constructor sequence
// (NodeArena/DssQueue attach constructors do exactly this).  Allocation
// replay + fixed base ⇒ identical addresses, with no persistent allocator
// metadata to keep crash-consistent.
//
// A small user "root block" directly after the header (root()) gives
// callers a fixed-address place for bootstrap configuration (geometry,
// oracle capacity, ...) so the recovering process can replay with the
// right parameters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/cacheline.hpp"
#include "pmem/combiner.hpp"
#include "pmem/mmap_backend.hpp"

namespace dssq::pmem {

/// open()/create() failure with a human-readable reason (corrupt header,
/// unmappable base, bad geometry, ...).
struct HeapOpenError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The persisted segment header at offset 0 of every heap file.
/// 8-byte fields only (single-store failure atomicity), one cache line.
struct alignas(kCacheLineSize) HeapHeader {
  std::uint64_t magic = 0;           // kMagic
  std::uint64_t version = 0;         // kVersion (layout revision)
  std::uint64_t base = 0;            // virtual address the file maps at
  std::uint64_t size = 0;            // mapped bytes (== file size)
  std::uint64_t root_bytes = 0;      // user root block size
  std::uint64_t generation = 0;      // successful opens (1 == just created)
  std::uint64_t clean_shutdown = 0;  // 1 iff close() completed
  std::uint64_t checksum = 0;        // FNV-1a over the fields above
};
static_assert(sizeof(HeapHeader) == kCacheLineSize);

class PersistentHeap {
 public:
  static constexpr std::uint64_t kMagic = 0x44535351'48454150ULL;  // DSSQHEAP
  static constexpr std::uint64_t kVersion = 1;

  struct Options {
    std::size_t bytes = 64u << 20;            // heap size (create only)
    std::size_t root_bytes = kCacheLineSize;  // user root block (create only)
    /// 0 = kernel chooses the base (create only; open always uses the
    /// recorded one).  A nonzero hint is mapped with MAP_FIXED_NOREPLACE
    /// and create fails if the region is occupied.
    std::uintptr_t base_hint = 0;
  };

  enum class OpenMode : std::uint8_t {
    kCreate,  // truncate/initialize; the file's previous contents are gone
    kOpen,    // attach to an existing heap; throws if absent or corrupt
  };

  PersistentHeap(const std::string& path, OpenMode mode, Options opt);
  /// Same with default Options (separate overload: a `= {}` default
  /// argument cannot name a nested class's member initializers before the
  /// enclosing class is complete).
  PersistentHeap(const std::string& path, OpenMode mode);

  /// Destruction without close() is deliberately crash-equivalent: the
  /// mapping is torn down but the clean-shutdown flag stays 0, so the next
  /// open() sees a crashed heap (tests rely on this).
  ~PersistentHeap();

  PersistentHeap(const PersistentHeap&) = delete;
  PersistentHeap& operator=(const PersistentHeap&) = delete;

  /// Orderly shutdown: msync the whole range, set the clean flag, persist
  /// the header, unmap.  The heap is unusable afterwards.
  void close();

  // ---- context allocation (positional; see file comment) -----------------
  void* raw_alloc(std::size_t size, std::size_t align);

  MmapBackend& backend() noexcept { return backend_; }
  /// Fence coalescer shared by every context handle onto this heap: one
  /// fdatasync/msync drains the whole file, so combining is per-heap, not
  /// per-handle.  State is volatile — it dies with the process, which is
  /// exactly the crash semantics a raw fence has.
  FenceCombiner& combiner() noexcept { return combiner_; }
  void flush(const void* addr, std::size_t n) noexcept {
    backend_.flush(addr, n);
  }
  void fence() noexcept { backend_.fence(); }
  void persist(const void* addr, std::size_t n) noexcept {
    backend_.persist(addr, n);
  }

  // ---- introspection -----------------------------------------------------
  void* base() noexcept { return reinterpret_cast<void*>(map_base_); }
  std::size_t size_bytes() const noexcept { return bytes_; }
  /// The fixed-size user root block (zeroed at create).
  void* root() noexcept;
  std::size_t root_bytes() const noexcept;
  /// True when this handle attached to an existing heap (OpenMode::kOpen).
  bool recovered() const noexcept { return recovered_; }
  /// True when the PREVIOUS lifetime ended with close().
  bool previous_shutdown_clean() const noexcept { return was_clean_; }
  std::uint64_t generation() const noexcept;
  const std::string& path() const noexcept { return path_; }
  int fd() const noexcept { return fd_; }
  bool contains(const void* p) const noexcept {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    return a >= map_base_ && a < map_base_ + bytes_;
  }

  /// Checksum of a header's non-checksum fields (exposed for corruption
  /// tests, which forge headers byte-by-byte).
  static std::uint64_t header_checksum(const HeapHeader& h) noexcept;

 private:
  void create(Options opt);
  void open(Options opt);
  HeapHeader* header() noexcept;
  void persist_header();

  std::string path_;
  int fd_ = -1;
  std::uintptr_t map_base_ = 0;
  std::size_t bytes_ = 0;
  std::size_t data_cursor_ = 0;  // volatile bump offset (replayed on attach)
  MmapBackend backend_;
  FenceCombiner combiner_;
  bool recovered_ = false;
  bool was_clean_ = false;
  bool closed_ = false;
};

/// Perf-style persistence context over a PersistentHeap: allocation bumps
/// the heap, flush/fence go to the mmap backend, and crash_point forwards
/// to the heap backend's crash hook (so the fork harness can SIGKILL at
/// algorithm-labelled points, not just at flush/fence).
class MmapContext {
 public:
  static constexpr bool kSimulated = false;

  explicit MmapContext(PersistentHeap& heap) noexcept : heap_(&heap) {}

  void* raw_alloc(std::size_t size, std::size_t align) {
    return heap_->raw_alloc(size, align);
  }
  void flush(const void* addr, std::size_t n) { heap_->flush(addr, n); }
  void fence() { heap_->fence(); }
  void persist(const void* addr, std::size_t n) { heap_->persist(addr, n); }

  /// Combined fence over the heap's shared coalescer.  The crash point
  /// fires BEFORE the announcement so a KillSwitch countdown can land a
  /// SIGKILL inside the combined flush→fence window — the window whose
  /// shape this optimization changes.
  void fence_combined() {
    crash_point("pmem:fence-combined");
    if (!fence_combining_enabled()) {
      heap_->fence();
      return;
    }
    heap_->combiner().fence([this] { heap_->fence(); });
  }

  void persist_combined(const void* addr, std::size_t n) {
    heap_->flush(addr, n);
    fence_combined();
  }

  void crash_point(const char* label) {
    if (hook_ != nullptr) hook_(hook_state_, label);
  }

  /// Arm crash injection on algorithm points AND the backend's flush/fence.
  void set_crash_hook(CrashHook hook, void* state) noexcept {
    hook_ = hook;
    hook_state_ = state;
    heap_->backend().set_crash_hook(hook, state);
  }

  const char* backend_name() const noexcept {
    return heap_->backend().mode_name();
  }
  PersistentHeap& heap() noexcept { return *heap_; }

 private:
  PersistentHeap* heap_;
  CrashHook hook_ = nullptr;
  void* hook_state_ = nullptr;
};

}  // namespace dssq::pmem
