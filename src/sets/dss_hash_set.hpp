// DssHashSet — a detectable, recoverable, lock-free hash set.
//
// The third shape of structure built with the paper's Section-3 recipe
// (after the FIFO queue and the LIFO stack): a fixed array of buckets,
// each an insert-at-head singly-linked persistent list, with removal by
// per-node claiming.  It demonstrates the recipe on an object whose
// operations can FAIL (insert of a present value, remove of an absent
// one) — so detectability must record boolean outcomes, not just values:
//
//   X[t] tag layout (shared tag bits plus two set-specific ones):
//     INS_PREP  [+ node payload]      insert prepared (node holds the arg)
//     INS_PREP|COMPL                   ... and inserted (response true)
//     INS_PREP|COMPL|FAIL              ... and found present (response false)
//     REM_PREP  [+ value payload]      remove prepared
//     REM_PREP|NODE [+ node payload]   candidate saved before the claim CAS
//                                      (the queue's lines 47–48 idiom);
//                                      node->claimer == t  ⇒ removed by us
//     REM_PREP|FAIL [+ value payload]  remove found the value absent
//
// Insert-at-head keeps the concurrency story simple and the persisted
// bucket chains prefix-closed (node->next is persisted before the head
// CAS; the head is persisted before the insert completes).  Removal is
// logical (a persisted claim); physical unlinking and node reuse are
// deferred to quiescent compaction (`compact()`, also run by recovery) —
// the same simplification Friedman et al.'s durable queue makes, adopted
// here deliberately and documented: it sidesteps the unlink-persist-
// before-reuse protocol that a fully online reclaimer would need.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/tagged_ptr.hpp"
#include "ebr/ebr.hpp"
#include "pmem/context.hpp"
#include "pmem/node_arena.hpp"
#include "queues/types.hpp"

namespace dssq::sets {

using queues::kUnmarked;
using queues::Value;

inline constexpr TaggedWord kInsPrepTag = tag_bit(0);
inline constexpr TaggedWord kComplTag = tag_bit(1);
inline constexpr TaggedWord kRemPrepTag = tag_bit(2);
inline constexpr TaggedWord kFailTag = tag_bit(3);
inline constexpr TaggedWord kNodePayloadTag = tag_bit(4);

/// Outcome of resolve on the hash set.
struct SetResolve {
  enum class Op : std::uint8_t { kNone, kInsert, kRemove };
  Op op = Op::kNone;
  Value arg = 0;
  std::optional<bool> response;  // nullopt = ⊥
  bool operator==(const SetResolve&) const = default;
};

template <class Ctx>
class DssHashSet {
 public:
  struct alignas(kCacheLineSize) SetNode {
    std::atomic<SetNode*> next{nullptr};
    std::atomic<std::int64_t> claimer{kUnmarked};
    Value value{0};
  };
  static_assert(sizeof(SetNode) == kCacheLineSize);

  DssHashSet(Ctx& ctx, std::size_t max_threads, std::size_t buckets,
             std::size_t nodes_per_thread)
      : ctx_(ctx),
        arena_(ctx, max_threads, nodes_per_thread),
        ebr_(max_threads),
        max_threads_(max_threads),
        bucket_mask_(round_up_pow2(buckets) - 1) {
    buckets_ = pmem::alloc_array<Bucket>(ctx_, bucket_mask_ + 1);
    x_ = pmem::alloc_array<queues::XSlot>(ctx_, max_threads);
    ctx_.persist(buckets_, sizeof(Bucket) * (bucket_mask_ + 1));
    ctx_.persist(x_, sizeof(queues::XSlot) * max_threads);
  }

  // ---- detectable insert ----------------------------------------------------

  void prep_insert(std::size_t tid, Value v) {
    assert(v >= 0 && fits_in_address_bits(static_cast<std::uint64_t>(v)));
    reclaim_failed_prep(tid);
    SetNode* node = acquire_node(tid);
    node->next.store(nullptr, std::memory_order_relaxed);
    node->claimer.store(kUnmarked, std::memory_order_relaxed);
    node->value = v;
    ctx_.persist(node, sizeof(SetNode));
    ctx_.crash_point("set:prep-ins:node-persisted");
    x_[tid].word.store(make_tagged(node, kInsPrepTag | kNodePayloadTag),
                       std::memory_order_release);
    ctx_.persist(&x_[tid], sizeof(queues::XSlot));
    ctx_.crash_point("set:prep-ins:announced");
  }

  /// exec-insert: returns true if the value was inserted, false if it was
  /// already present (another live node holds it).
  bool exec_insert(std::size_t tid) {
    const TaggedWord xw = x_[tid].word.load(std::memory_order_acquire);
    assert(has_tag(xw, kInsPrepTag) && "exec-insert without prep");
    SetNode* node = untag<SetNode>(xw);
    if (has_tag(xw, kComplTag)) return !has_tag(xw, kFailTag);
    const Value v = node->value;
    Bucket& b = bucket_of(v);
    ebr::EpochGuard guard(ebr_, tid);
    for (;;) {
      SetNode* head = b.head.load(std::memory_order_acquire);
      SetNode* found = find_live(head, v);
      if (found == node) {
        // Our own node is already linked (pre-crash exec got that far):
        // complete the record and report success.
        return record_insert_outcome(tid, /*inserted=*/true);
      }
      if (found != nullptr) {
        return record_insert_outcome(tid, /*inserted=*/false);
      }
      node->next.store(head, std::memory_order_relaxed);
      ctx_.persist(&node->next, sizeof(node->next));
      ctx_.crash_point("set:exec-ins:pre-link");
      if (b.head.compare_exchange_strong(head, node)) {
        ctx_.crash_point("set:exec-ins:linked-unflushed");
        ctx_.persist(&b.head, sizeof(b.head));
        ctx_.crash_point("set:exec-ins:linked");
        return record_insert_outcome(tid, /*inserted=*/true);
      }
    }
  }

  // ---- detectable remove -----------------------------------------------------

  void prep_remove(std::size_t tid, Value v) {
    assert(v >= 0 && fits_in_address_bits(static_cast<std::uint64_t>(v)));
    reclaim_failed_prep(tid);
    x_[tid].word.store(static_cast<TaggedWord>(v) | kRemPrepTag,
                       std::memory_order_release);
    ctx_.persist(&x_[tid], sizeof(queues::XSlot));
    ctx_.crash_point("set:prep-rem:announced");
  }

  /// exec-remove: returns true if this thread removed the value, false if
  /// it was absent.
  bool exec_remove(std::size_t tid) {
    TaggedWord xw = x_[tid].word.load(std::memory_order_acquire);
    assert(has_tag(xw, kRemPrepTag) && "exec-remove without prep");
    // Recover the argument from either payload form.
    const Value v = has_tag(xw, kNodePayloadTag)
                        ? untag<SetNode>(xw)->value
                        : static_cast<Value>(xw & kAddressMask);
    if (has_tag(xw, kFailTag)) return false;  // already resolved absent
    if (has_tag(xw, kNodePayloadTag)) {
      SetNode* cand = untag<SetNode>(xw);
      if (cand->claimer.load(std::memory_order_acquire) ==
          static_cast<std::int64_t>(tid)) {
        return true;  // already claimed by us (pre-crash exec succeeded)
      }
    }
    Bucket& b = bucket_of(v);
    ebr::EpochGuard guard(ebr_, tid);
    for (;;) {
      SetNode* found =
          find_live(b.head.load(std::memory_order_acquire), v);
      if (found == nullptr) {
        // Absent: record the false outcome (value payload + FAIL).
        // dssq-lint: allow(exec-single-store) candidate-save idiom: every
        // re-announcement of X[t] is persisted before the next heap
        // action, so each crash point still observes exactly one durable,
        // self-describing announcement (queue lines 47-48 argument).
        x_[tid].word.store(static_cast<TaggedWord>(v) | kRemPrepTag |
                               kFailTag,
                           std::memory_order_release);
        ctx_.persist(&x_[tid], sizeof(queues::XSlot));
        ctx_.crash_point("set:exec-rem:absent-recorded");
        return false;
      }
      // Save the candidate BEFORE claiming, so a successful claim is
      // self-detecting (the queue's lines 47–48 idiom).
      // dssq-lint: allow(exec-single-store) candidate-save idiom: the
      // store is persisted below before the claiming CAS, so the crash
      // window between announcements never exposes a torn announcement.
      x_[tid].word.store(
          make_tagged(found, kRemPrepTag | kNodePayloadTag),
          std::memory_order_release);
      ctx_.persist(&x_[tid], sizeof(queues::XSlot));
      ctx_.crash_point("set:exec-rem:candidate-saved");
      std::int64_t unmarked = kUnmarked;
      if (found->claimer.compare_exchange_strong(
              unmarked, static_cast<std::int64_t>(tid))) {
        ctx_.crash_point("set:exec-rem:claimed-unflushed");
        ctx_.persist(&found->claimer, sizeof(found->claimer));
        ctx_.crash_point("set:exec-rem:claimed");
        return true;
      }
      // Lost the race for this node; re-examine the bucket.
    }
  }

  /// resolve: (A[t], R[t]) for the most recently prepared operation.
  SetResolve resolve(std::size_t tid) const {
    const TaggedWord xw = x_[tid].word.load(std::memory_order_acquire);
    SetResolve r;
    if (has_tag(xw, kInsPrepTag)) {
      r.op = SetResolve::Op::kInsert;
      r.arg = untag<const SetNode>(xw)->value;
      if (has_tag(xw, kComplTag)) r.response = !has_tag(xw, kFailTag);
      return r;
    }
    if (has_tag(xw, kRemPrepTag)) {
      r.op = SetResolve::Op::kRemove;
      if (has_tag(xw, kNodePayloadTag)) {
        const SetNode* cand = untag<const SetNode>(xw);
        r.arg = cand->value;
        if (cand->claimer.load(std::memory_order_acquire) ==
            static_cast<std::int64_t>(tid)) {
          r.response = true;
        }
        return r;  // claimed by someone else / unclaimed: ⊥
      }
      r.arg = static_cast<Value>(xw & kAddressMask);
      if (has_tag(xw, kFailTag)) r.response = false;
      return r;
    }
    return r;  // (⊥, ⊥)
  }

  // ---- non-detectable operations -----------------------------------------------

  bool insert(std::size_t tid, Value v) {
    prep_insert(tid, v);  // reuse the machinery; X churn is acceptable for
    return exec_insert(tid);  // the demonstration structure
  }

  bool remove(std::size_t tid, Value v) {
    prep_remove(tid, v);
    return exec_remove(tid);
  }

  bool contains(std::size_t tid, Value v) {
    ebr::EpochGuard guard(ebr_, tid);
    return find_live(bucket_of(v).head.load(std::memory_order_acquire),
                     v) != nullptr;
  }

  // ---- recovery & compaction -------------------------------------------------------

  /// Centralized recovery: complete INS_COMPL records, then compact.
  /// Quiescence required.
  void recover() {
    // A prepared insert took effect iff its node is in its bucket's chain
    // or was already claimed (inserted then removed).
    for (std::size_t t = 0; t < max_threads_; ++t) {
      const TaggedWord xw = x_[t].word.load(std::memory_order_relaxed);
      if (!has_tag(xw, kInsPrepTag) || has_tag(xw, kComplTag)) continue;
      SetNode* node = untag<SetNode>(xw);
      if (node == nullptr) continue;
      bool in_chain = false;
      for (SetNode* n =
               bucket_of(node->value).head.load(std::memory_order_relaxed);
           n != nullptr && !in_chain;
           n = n->next.load(std::memory_order_relaxed)) {
        in_chain = n == node;
      }
      if (in_chain ||
          node->claimer.load(std::memory_order_relaxed) != kUnmarked) {
        x_[t].word.store(with_tag(xw, kComplTag),
                         std::memory_order_relaxed);
        ctx_.persist(&x_[t], sizeof(queues::XSlot));
      }
    }
    compact();
  }

  /// Quiescent compaction: physically unlink claimed nodes, persist the
  /// repaired chains, and rebuild the free lists (X-pinned nodes stay).
  void compact() {
    ebr_.drain_all_unsafe_without_reclaiming();
    arena_.reset_volatile_state();
    std::unordered_set<const SetNode*> keep;
    for (std::size_t t = 0; t < max_threads_; ++t) {
      const TaggedWord xw = x_[t].word.load(std::memory_order_relaxed);
      if (has_tag(xw, kNodePayloadTag)) {
        if (const SetNode* n = untag<const SetNode>(xw)) keep.insert(n);
      }
    }
    for (std::size_t i = 0; i <= bucket_mask_; ++i) {
      Bucket& b = buckets_[i];
      // Unlink claimed nodes (single-threaded: plain rewrites).
      SetNode* head = b.head.load(std::memory_order_relaxed);
      while (head != nullptr &&
             head->claimer.load(std::memory_order_relaxed) != kUnmarked) {
        head = head->next.load(std::memory_order_relaxed);
      }
      b.head.store(head, std::memory_order_relaxed);
      ctx_.persist(&b.head, sizeof(b.head));
      for (SetNode* n = head; n != nullptr;) {
        SetNode* next = n->next.load(std::memory_order_relaxed);
        while (next != nullptr && next->claimer.load(
                                      std::memory_order_relaxed) !=
                                      kUnmarked) {
          next = next->next.load(std::memory_order_relaxed);
        }
        if (n->next.load(std::memory_order_relaxed) != next) {
          n->next.store(next, std::memory_order_relaxed);
          ctx_.persist(&n->next, sizeof(n->next));
        }
        keep.insert(n);
        n = next;
      }
    }
    arena_.for_each_allocated([&](std::size_t, SetNode* n) {
      if (!keep.contains(n)) arena_.release_to_owner(n);
    });
  }

  /// All live values (quiescence required; unsorted).
  std::vector<Value> snapshot() const {
    std::vector<Value> out;
    for (std::size_t i = 0; i <= bucket_mask_; ++i) {
      for (SetNode* n = buckets_[i].head.load(std::memory_order_relaxed);
           n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
        if (n->claimer.load(std::memory_order_relaxed) == kUnmarked) {
          out.push_back(n->value);
        }
      }
    }
    return out;
  }

  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  struct alignas(kCacheLineSize) Bucket {
    std::atomic<SetNode*> head{nullptr};
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  Bucket& bucket_of(Value v) const {
    return buckets_[mix64(static_cast<std::uint64_t>(v)) & bucket_mask_];
  }

  /// First unclaimed node with value v in the chain, or nullptr.
  static SetNode* find_live(SetNode* head, Value v) {
    for (SetNode* n = head; n != nullptr;
         n = n->next.load(std::memory_order_acquire)) {
      if (n->value == v &&
          n->claimer.load(std::memory_order_acquire) == kUnmarked) {
        return n;
      }
    }
    return nullptr;
  }

  bool record_insert_outcome(std::size_t tid, bool inserted) {
    const TaggedWord xw = x_[tid].word.load(std::memory_order_relaxed);
    TaggedWord done = with_tag(xw, kComplTag);
    if (!inserted) done = with_tag(done, kFailTag);
    x_[tid].word.store(done, std::memory_order_release);
    ctx_.persist(&x_[tid], sizeof(queues::XSlot));
    ctx_.crash_point("set:exec-ins:completed");
    return inserted;
  }

  void reclaim_failed_prep(std::size_t tid) {
    const TaggedWord xw = x_[tid].word.load(std::memory_order_relaxed);
    // An insert node is reusable when it never entered a chain: the
    // prepared-but-never-effective case (no COMPL, post-recovery) and the
    // completed-as-duplicate case (COMPL|FAIL — the value was already
    // present, so this node was never linked).
    if (has_tag(xw, kInsPrepTag) &&
        (!has_tag(xw, kComplTag) || has_tag(xw, kFailTag))) {
      if (SetNode* node = untag<SetNode>(xw)) arena_.release(tid, node);
    }
  }

  SetNode* acquire_node(std::size_t tid) {
    SetNode* node = arena_.try_acquire(tid);
    for (int i = 0; i < 4096 && node == nullptr; ++i) {
      ebr_.try_advance_and_drain(tid);
      std::this_thread::yield();
      node = arena_.try_acquire(tid);
    }
    if (node == nullptr) throw std::bad_alloc();
    return node;
  }

  Ctx& ctx_;
  pmem::NodeArena<SetNode> arena_;
  ebr::EpochManager ebr_;
  std::size_t max_threads_;
  std::size_t bucket_mask_;
  Bucket* buckets_ = nullptr;
  queues::XSlot* x_ = nullptr;
};

}  // namespace dssq::sets
