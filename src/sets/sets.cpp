// Anchor translation unit for the detectable set structures.

#include "sets/dss_hash_set.hpp"

namespace dssq::sets {

template class DssHashSet<pmem::EmulatedNvmContext>;
template class DssHashSet<pmem::SimContext>;

}  // namespace dssq::sets
