// Anchor translation unit: instantiate the engine and both CASWithEffect
// variants over the context families used by tests and benchmarks.

#include "pmwcas/caswe_queue.hpp"
#include "pmwcas/pmwcas.hpp"

namespace dssq::pmwcas {

template class Engine<pmem::EmulatedNvmContext>;
template class Engine<pmem::SimContext>;

template class CasWithEffectQueue<pmem::EmulatedNvmContext, false>;
template class CasWithEffectQueue<pmem::EmulatedNvmContext, true>;
template class CasWithEffectQueue<pmem::SimContext, false>;
template class CasWithEffectQueue<pmem::SimContext, true>;

static_assert(
    dss::Detectable<CasWithEffectQueue<pmem::EmulatedNvmContext, false>>);
static_assert(
    dss::Detectable<CasWithEffectQueue<pmem::EmulatedNvmContext, true>>);

}  // namespace dssq::pmwcas
