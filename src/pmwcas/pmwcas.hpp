// Persistent Multi-word Compare-And-Swap (PMwCAS) — Wang, Levandoski &
// Larson (ICDE'18), reimplemented from scratch.
//
// PMwCAS atomically (and failure-atomically) changes up to kMaxWords
// 64-bit words from expected to desired values.  The paper's two
// CASWithEffect queues (Figure 5b) are built on it: they update the queue
// links and the per-thread detectability word in a single PMwCAS, which
// "simplifies the implementation greatly but becomes a performance
// bottleneck as contention rises".
//
// Protocol (two phases, descriptor-based, with helping):
//   * Phase 1 — install: for each target word (in address order), a
//     two-step RDCSS conditionally replaces the expected value with a
//     pointer to the whole-operation descriptor, but only while the
//     descriptor is still Undecided.  Any thread finding a mid-flight
//     RDCSS or an installed descriptor helps it forward.
//   * Decision: once every word is installed (and the installed words are
//     flushed — recovery must be able to see them), status moves
//     Undecided → Succeeded, else → Failed; the status word is persisted.
//   * Phase 2 — propagate: each word is CASed from the descriptor pointer
//     to the final value (desired on success, expected on failure) with a
//     DIRTY bit that readers clear after flushing — the standard
//     flush-before-depend discipline for persistent lock-free structures.
//
// Word format: bits 61..63 are reserved flags (descriptor / RDCSS / dirty),
// so application payloads are limited to 61 bits; 48-bit pointers and the
// queue's tag bits (48..51) fit untouched.
//
// The "Fast" optimisation (paper, Section 4): words the caller declares
// *private* (contended by no concurrent PMwCAS — e.g. a thread's own
// detectability word) skip the install phase entirely and are written
// directly during phase 2, saving one CAS and one flush per private word.
//
// Descriptor life cycle: per-thread descriptor pools, reuse gated by EBR
// plus an owner-side sweep that scrubs any descriptor/RDCSS pointer still
// visible in a target word before the descriptor is retired (see
// sweep_before_retire) — without the sweep, a stalled helper could
// re-install a pointer to an already-recycled descriptor.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <unordered_set>

#include "common/cacheline.hpp"
#include "common/tagged_ptr.hpp"
#include "ebr/ebr.hpp"
#include "pmem/context.hpp"
#include "pmem/node_arena.hpp"

namespace dssq::pmwcas {

inline constexpr std::uint64_t kDescriptorFlag = tag_bit(15);
inline constexpr std::uint64_t kRdcssFlag = tag_bit(14);
inline constexpr std::uint64_t kDirtyFlag = tag_bit(13);
inline constexpr std::uint64_t kFlagsMask =
    kDescriptorFlag | kRdcssFlag | kDirtyFlag;

/// Maximum words per PMwCAS (the queue needs 3: head-or-next, tail, X).
inline constexpr std::size_t kMaxWords = 4;

enum Status : std::uint32_t {
  kUndecided = 0,
  kSucceeded = 1,
  kFailed = 2,
};

struct Descriptor;

struct WordDescriptor {
  std::atomic<std::uint64_t>* addr = nullptr;
  std::uint64_t expected = 0;
  std::uint64_t desired = 0;
  Descriptor* parent = nullptr;
  bool is_private = false;
};

struct alignas(kCacheLineSize) Descriptor {
  std::atomic<std::uint32_t> status{kUndecided};
  std::uint32_t count = 0;
  WordDescriptor words[kMaxWords];
};

template <class Ctx>
class Engine {
 public:
  Engine(Ctx& ctx, std::size_t max_threads, std::size_t descriptors_per_thread)
      : ctx_(ctx),
        descriptors_(ctx, max_threads, descriptors_per_thread),
        ebr_(max_threads),
        max_threads_(max_threads) {
    anchors_ = pmem::alloc_array<Anchor>(ctx_, max_threads);
    ctx_.persist(anchors_, sizeof(Anchor) * max_threads);
  }

  /// Shared EBR instance: data structures built on the engine use it for
  /// their own node reclamation so one epoch system covers everything.
  ebr::EpochManager& ebr() noexcept { return ebr_; }

  /// Begin building a PMwCAS.  Caller must be inside an EBR region but must
  /// hold NO raw pointers read under it yet: when the descriptor pool is
  /// dry, allocation cycles the caller's reservation to pump the epoch,
  /// which invalidates previously read references.
  Descriptor* allocate(std::size_t tid) {
    Descriptor* d = descriptors_.try_acquire(tid);
    if (d == nullptr) {
      ebr_.exit(tid);
      for (int i = 0; i < 4096 && d == nullptr; ++i) {
        ebr_.try_advance_and_drain(tid);
        std::this_thread::yield();
        d = descriptors_.try_acquire(tid);
      }
      ebr_.enter(tid);
      if (d == nullptr) throw std::bad_alloc();
    }
    // dssq-lint: allow(persist-after-store) the descriptor is thread-private
    // until mwcas() publishes it; mwcas persists the fully-built descriptor
    // before the first install.
    d->status.store(kUndecided, std::memory_order_relaxed);
    d->count = 0;
    return d;
  }

  /// Return a descriptor that was never submitted to mwcas() (no word of
  /// it was ever published, so it needs no grace period).
  void discard(std::size_t tid, Descriptor* d) {
    descriptors_.release(tid, d);
  }

  /// Add one target word.  `is_private` selects the fast path for words no
  /// concurrent PMwCAS touches.  Values must not use the reserved bits.
  void add_word(Descriptor* d, std::atomic<std::uint64_t>* addr,
                std::uint64_t expected, std::uint64_t desired,
                bool is_private = false) {
    assert(d->count < kMaxWords);
    assert((expected & kFlagsMask) == 0 && (desired & kFlagsMask) == 0 &&
           "payload collides with reserved PMwCAS flag bits");
    d->words[d->count++] = WordDescriptor{addr, expected, desired, d,
                                          is_private};
  }

  /// Execute the PMwCAS.  Caller must be inside an EBR region and must not
  /// touch `d` afterwards (it is retired here).  Returns success.
  bool mwcas(std::size_t tid, Descriptor* d) {
    // Install order must be consistent across helpers: sort by address.
    std::sort(d->words, d->words + d->count,
              [](const WordDescriptor& a, const WordDescriptor& b) {
                return a.addr < b.addr;
              });
    // Persist only the used prefix of the descriptor (status + count +
    // d->count word slots), not the whole kMaxWords-sized record.
    ctx_.persist(d, offsetof(Descriptor, words) +
                        d->count * sizeof(WordDescriptor));
    // Anchor for recovery: the roll-forward/back pass must find in-flight
    // descriptors after a crash.
    anchors_[tid].desc.store(d, std::memory_order_release);
    ctx_.persist(&anchors_[tid], sizeof(Anchor));
    ctx_.crash_point("pmwcas:anchored");

    const bool ok = help(d);
    sweep_before_retire(d);
    ebr_.retire(tid, d, [this, tid](void* p) {
      descriptors_.release(tid, static_cast<Descriptor*>(p));
    });
    return ok;
  }

  /// Read a PMwCAS-managed word, helping any in-flight operation.  Caller
  /// must be inside an EBR region.  Returns a clean (flag-free) value.
  std::uint64_t read(std::atomic<std::uint64_t>* addr) {
    for (;;) {
      std::uint64_t v = addr->load(std::memory_order_acquire);
      if (v & kRdcssFlag) {
        complete_rdcss(untag_word(v));
        continue;
      }
      if (v & kDescriptorFlag) {
        help(untag_desc(v));
        continue;
      }
      if (v & kDirtyFlag) {
        persist_clear_dirty(addr, v);
        return v & ~kDirtyFlag;
      }
      return v;
    }
  }

  /// Post-crash roll-forward/back (single-threaded, quiescence required):
  /// every anchored descriptor is driven to a decided, fully-propagated,
  /// persisted state.  Succeeded operations complete; Undecided ones abort.
  void recover() {
    ebr_.drain_all_unsafe_without_reclaiming();
    descriptors_.reset_volatile_state();
    for (std::size_t t = 0; t < max_threads_; ++t) {
      Descriptor* d = anchors_[t].desc.load(std::memory_order_relaxed);
      if (d == nullptr) continue;
      handled_.insert(d);
      std::uint32_t st = d->status.load(std::memory_order_relaxed);
      if (st == kUndecided) {
        st = kFailed;  // not decided before the crash: abort
        d->status.store(kFailed, std::memory_order_relaxed);
        ctx_.persist(&d->status, sizeof(d->status));
      }
      for (std::size_t i = 0; i < d->count; ++i) {
        WordDescriptor& wd = d->words[i];
        const std::uint64_t raw = wd.addr->load(std::memory_order_relaxed);
        const std::uint64_t clean = raw & ~kDirtyFlag;
        const std::uint64_t final_value =
            st == kSucceeded ? wd.desired : wd.expected;
        if (clean == desc_word(d) || clean == rdcss_word(&wd)) {
          wd.addr->store(final_value, std::memory_order_relaxed);
          ctx_.persist(wd.addr, sizeof(std::uint64_t));
        } else if (st == kSucceeded && wd.is_private) {
          // Private words are only written in phase 2; re-apply.
          wd.addr->store(final_value, std::memory_order_relaxed);
          ctx_.persist(wd.addr, sizeof(std::uint64_t));
        } else if (raw & kDirtyFlag) {
          ctx_.persist(wd.addr, sizeof(std::uint64_t));
          // dssq-lint: allow(persist-after-store) dirty-bit protocol: the
          // persist above makes the payload durable, then the store clears
          // the volatile dirty mark.  Persist-then-store is the required
          // order; a flush after the store would be redundant.
          wd.addr->store(clean, std::memory_order_relaxed);
        }
      }
      anchors_[t].desc.store(nullptr, std::memory_order_relaxed);
      ctx_.persist(&anchors_[t], sizeof(Anchor));
      descriptors_.release_to_owner(d);
    }
    // Descriptors are transient: once every anchored operation is rolled
    // forward/back, every other allocated slot is free to reuse (their
    // operations completed before the crash).
    descriptors_.for_each_allocated([&](std::size_t, Descriptor* d) {
      if (!handled_.contains(d)) descriptors_.release_to_owner(d);
    });
    handled_.clear();
  }

  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  struct alignas(kCacheLineSize) Anchor {
    std::atomic<Descriptor*> desc{nullptr};
  };

  static Descriptor* untag_desc(std::uint64_t v) noexcept {
    return reinterpret_cast<Descriptor*>(v & ~kFlagsMask);
  }
  static WordDescriptor* untag_word(std::uint64_t v) noexcept {
    return reinterpret_cast<WordDescriptor*>(v & ~kFlagsMask);
  }
  static std::uint64_t desc_word(Descriptor* d) noexcept {
    return reinterpret_cast<std::uint64_t>(d) | kDescriptorFlag;
  }
  static std::uint64_t rdcss_word(WordDescriptor* wd) noexcept {
    return reinterpret_cast<std::uint64_t>(wd) | kRdcssFlag;
  }

  /// Drive `d` to completion from any intermediate point.  Idempotent;
  /// runs concurrently in the owner and any number of helpers.
  bool help(Descriptor* d) {
    if (d->status.load(std::memory_order_acquire) == kUndecided) {
      std::uint32_t decision = kSucceeded;
      for (std::size_t i = 0; i < d->count && decision == kSucceeded; ++i) {
        WordDescriptor& wd = d->words[i];
        if (wd.is_private) continue;
      retry_word:
        const std::uint64_t v = install_rdcss(&wd);
        if (v == wd.expected) continue;  // installed (by us or a helper)
        if ((v & ~kDirtyFlag) == desc_word(d)) continue;  // already in place
        if (v & kDescriptorFlag) {
          help(untag_desc(v));  // help the conflicting operation, then retry
          goto retry_word;
        }
        decision = kFailed;  // plain value mismatch
      }
      if (decision == kSucceeded) {
        // Persist installed descriptor pointers before deciding: recovery
        // must observe a Succeeded descriptor only with its installs
        // visible.
        for (std::size_t i = 0; i < d->count; ++i) {
          if (!d->words[i].is_private) {
            ctx_.flush(d->words[i].addr, sizeof(std::uint64_t));
          }
        }
        ctx_.fence();
      }
      ctx_.crash_point("pmwcas:pre-decision");
      std::uint32_t expected = kUndecided;
      d->status.compare_exchange_strong(expected, decision,
                                        std::memory_order_acq_rel);
      ctx_.persist(&d->status, sizeof(d->status));
      ctx_.crash_point("pmwcas:decided");
    }

    const bool succeeded =
        d->status.load(std::memory_order_acquire) == kSucceeded;
    // Phase 2: propagate final values.  Flushes are batched under a single
    // fence: write every word with its dirty bit, flush them all, fence
    // once, then clear the dirty bits.
    bool wrote[kMaxWords] = {};
    for (std::size_t i = 0; i < d->count; ++i) {
      WordDescriptor& wd = d->words[i];
      const std::uint64_t final_clean = succeeded ? wd.desired : wd.expected;
      if (wd.is_private) {
        if (succeeded) {
          // Only ever written here (by owner or helpers, same value).
          wd.addr->store(final_clean | kDirtyFlag, std::memory_order_release);
          ctx_.flush(wd.addr, sizeof(std::uint64_t));
          wrote[i] = true;
        }
        continue;
      }
      std::uint64_t expected_word = desc_word(d) | kDirtyFlag;
      // dssq-lint: allow(persist-after-cas, persist-order) dirty-bit
      // protocol: this CAS installs final_clean WITH the dirty bit set, so
      // readers know it is not yet durable and will flush+fence themselves
      // (persist_clear_dirty) before relying on it.  The batched flush of
      // every written word and the single fence() below make the values
      // durable; flushes from earlier loop iterations pending here are the
      // point of the batching, not a misordering.
      if (!wd.addr->compare_exchange_strong(expected_word,
                                            final_clean | kDirtyFlag)) {
        expected_word = desc_word(d);
        // dssq-lint: allow(persist-after-cas, persist-order) same dirty-bit
        // protocol as above — retry against the undirtied descriptor word.
        wd.addr->compare_exchange_strong(expected_word,
                                         final_clean | kDirtyFlag);
      }
      if (wd.addr->load(std::memory_order_acquire) ==
          (final_clean | kDirtyFlag)) {
        ctx_.flush(wd.addr, sizeof(std::uint64_t));
        wrote[i] = true;
      }
    }
    ctx_.fence();
    for (std::size_t i = 0; i < d->count; ++i) {
      if (!wrote[i]) continue;
      WordDescriptor& wd = d->words[i];
      const std::uint64_t final_clean = succeeded ? wd.desired : wd.expected;
      std::uint64_t dirty = final_clean | kDirtyFlag;
      // dssq-lint: allow(persist-after-cas) dirty-bit protocol: the flush +
      // fence above already made final_clean durable; this CAS only drops
      // the volatile dirty mark, so no further flush is needed.
      wd.addr->compare_exchange_strong(dirty, final_clean);
    }
    return succeeded;
  }

  /// RDCSS: install `desc_word(parent)` into wd->addr in place of
  /// wd->expected, but only while parent is Undecided.  Returns
  /// wd->expected on success, or the conflicting value.
  std::uint64_t install_rdcss(WordDescriptor* wd) {
    for (;;) {
      std::uint64_t v = wd->expected;
      // dssq-lint: allow(persist-after-cas) an RDCSS descriptor word is
      // transient by design — complete_rdcss() replaces it before any
      // durable value is published, and recovery treats descriptor words
      // as in-flight.  Durability happens when the final value lands with
      // its dirty bit (phase 2 of complete()).
      if (wd->addr->compare_exchange_strong(v, rdcss_word(wd))) {
        complete_rdcss(wd);
        return wd->expected;
      }
      if (v & kRdcssFlag) {
        complete_rdcss(untag_word(v));
        continue;
      }
      if ((v & kDirtyFlag) && !(v & kDescriptorFlag)) {
        persist_clear_dirty(wd->addr, v);
        continue;
      }
      return v;  // descriptor word or plain mismatch
    }
  }

  void complete_rdcss(WordDescriptor* wd) {
    const bool undecided =
        wd->parent->status.load(std::memory_order_acquire) == kUndecided;
    std::uint64_t expected = rdcss_word(wd);
    const std::uint64_t target =
        undecided ? (desc_word(wd->parent) | kDirtyFlag) : wd->expected;
    // dssq-lint: allow(persist-after-cas) both outcomes need no flush here:
    // installing the parent descriptor is transient state carrying the dirty
    // bit (whoever resolves it persists), and reverting to wd->expected
    // restores the value that was already durable before the RDCSS.
    wd->addr->compare_exchange_strong(expected, target);
  }

  void persist_clear_dirty(std::atomic<std::uint64_t>* addr,
                           std::uint64_t dirty_value) {
    ctx_.persist(addr, sizeof(std::uint64_t));
    std::uint64_t expected = dirty_value;
    // dssq-lint: allow(persist-after-cas) dirty-bit protocol: the persist
    // above is deliberately *before* the CAS — once the payload is durable
    // the CAS merely clears the volatile dirty mark.
    addr->compare_exchange_strong(expected, dirty_value & ~kDirtyFlag);
  }

  /// Scrub any pointer into `d` still visible in its target words before
  /// the descriptor can be recycled.  See the file comment for why this
  /// (with EBR) closes the stale-reinstall race.
  void sweep_before_retire(Descriptor* d) {
    for (std::size_t i = 0; i < d->count; ++i) {
      WordDescriptor& wd = d->words[i];
      if (wd.is_private) continue;
      std::uint64_t v = wd.addr->load(std::memory_order_acquire);
      if (v == rdcss_word(&wd)) {
        complete_rdcss(&wd);  // status is decided: reverts or finalizes
        v = wd.addr->load(std::memory_order_acquire);
      }
      if ((v & ~kDirtyFlag) == desc_word(d)) {
        const bool succeeded =
            d->status.load(std::memory_order_acquire) == kSucceeded;
        const std::uint64_t final_clean =
            succeeded ? wd.desired : wd.expected;
        std::uint64_t expected = v;
        if (wd.addr->compare_exchange_strong(expected,
                                             final_clean | kDirtyFlag)) {
          persist_clear_dirty(wd.addr, final_clean | kDirtyFlag);
        }
      }
    }
  }

  Ctx& ctx_;
  pmem::NodeArena<Descriptor> descriptors_;
  ebr::EpochManager ebr_;
  std::size_t max_threads_;
  Anchor* anchors_ = nullptr;
  std::unordered_set<const Descriptor*> handled_;  // recover() scratch
};

}  // namespace dssq::pmwcas
