// The CASWithEffect queues — Figure 5b's PMwCAS-based competitors.
//
// "General CASWithEffect queue: a simple queue algorithm where the linked
// list and detectability state (analogous to X in DSS queue) are
// manipulated using [PMwCAS].  Fast CASWithEffect queue: similar, except
// that PMwCAS is optimized for multi-word operations that access a
// combination of shared variables (queue head, tail, and next pointers)
// and private variables (detectability state)."  (Section 4.)
//
// The simplification PMwCAS buys: each operation is ONE failure-atomic
// multi-word CAS, so the queue needs no marking protocol, no helping paths
// of its own, and no completion tags —
//
//   enqueue:        { tail: last→node,  last->next: null→node,
//                     X[t]: v|ENQ_PREP → v|ENQ_PREP|ENQ_COMPL }
//   dequeue:        { head: h→n,        X[t]: DEQ_PREP → v|DEQ_PREP|DEQ_DONE }
//   dequeue(empty): { h->next: null→null (emptiness witness),
//                     X[t]: DEQ_PREP → DEQ_PREP|EMPTY }
//
// and the queue's whole crash story is the engine's descriptor
// roll-forward/back.  The price is the descriptor traffic on every
// operation — which is exactly what Figure 5b measures against the DSS
// queue's hand-tuned protocol.
//
// Because X here records the *value* rather than a node pointer (the
// spare 48 payload bits hold it directly), resolve never dereferences
// nodes and no X-pinning of nodes is needed; application values are
// restricted to [0, 2^48) for these two queues.
//
// The only difference between the two variants is `FastPrivateWords`:
// the Fast queue declares X private to the calling thread, letting the
// engine skip the X word's install phase (one CAS + one flush saved).
#pragma once

#include <cassert>
#include <cstddef>
#include <unordered_set>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/tagged_ptr.hpp"
#include "ebr/ebr.hpp"
#include "pmem/context.hpp"
#include "pmem/node_arena.hpp"
#include "pmwcas/pmwcas.hpp"
#include "queues/types.hpp"

namespace dssq::pmwcas {

using queues::kDeqPrepTag;
using queues::kEmptyTag;
using queues::kEnqComplTag;
using queues::kEnqPrepTag;
using queues::Resolved;
using queues::Value;

/// Tag marking a dequeue whose value is recorded in X's payload bits.
inline constexpr TaggedWord kDeqDoneTag = tag_bit(4);

template <class Ctx, bool FastPrivateWords>
class CasWithEffectQueue {
 public:
  struct alignas(kCacheLineSize) CweNode {
    std::atomic<std::uint64_t> next{0};  // PMwCAS-managed pointer word
    Value value{0};
  };
  static_assert(sizeof(CweNode) == kCacheLineSize);

  CasWithEffectQueue(Ctx& ctx, std::size_t max_threads,
                     std::size_t nodes_per_thread)
      : ctx_(ctx),
        engine_(ctx, max_threads, /*descriptors_per_thread=*/512),
        arena_(ctx, max_threads, nodes_per_thread),
        max_threads_(max_threads) {
    head_ = pmem::alloc_object<PaddedWord>(ctx_);
    tail_ = pmem::alloc_object<PaddedWord>(ctx_);
    x_ = pmem::alloc_array<PaddedWord>(ctx_, max_threads);
    CweNode* sentinel = pmem::alloc_object<CweNode>(ctx_);
    ctx_.persist(sentinel, sizeof(CweNode));
    head_->word.store(ptr_word(sentinel), std::memory_order_relaxed);
    tail_->word.store(ptr_word(sentinel), std::memory_order_relaxed);
    ctx_.persist(head_, sizeof(PaddedWord));
    ctx_.persist(tail_, sizeof(PaddedWord));
    engine_.ebr().set_pre_reclaim_hook(
        [this](std::size_t) { ctx_.persist(head_, sizeof(PaddedWord)); });
  }

  static const char* name() noexcept {
    return FastPrivateWords ? "fast-caswe" : "general-caswe";
  }

  // ---- detectable operations ----------------------------------------------

  void prep_enqueue(std::size_t tid, Value v) {
    assert(v >= 0 && (static_cast<std::uint64_t>(v) & ~kAddressMask) == 0 &&
           "CASWithEffect queues store values in X's 48 payload bits");
    x_[tid].word.store(static_cast<std::uint64_t>(v) | kEnqPrepTag,
                       std::memory_order_release);
    ctx_.persist(&x_[tid], sizeof(PaddedWord));
    ctx_.crash_point("caswe:prep-enq");
  }

  void exec_enqueue(std::size_t tid) {
    const std::uint64_t xw = x_[tid].word.load(std::memory_order_acquire) &
                             ~kDirtyFlag;
    assert(has_tag(xw, kEnqPrepTag));
    if (has_tag(xw, kEnqComplTag)) return;  // already took effect
    const Value v = static_cast<Value>(xw & kAddressMask);

    // Acquire the node outside the epoch region: pool-dry acquisition
    // pumps epochs, which a held reservation would cap.
    CweNode* node = arena_.try_acquire(tid);
    for (int i = 0; i < 4096 && node == nullptr; ++i) {
      engine_.ebr().try_advance_and_drain(tid);
      std::this_thread::yield();
      node = arena_.try_acquire(tid);
    }
    if (node == nullptr) throw std::bad_alloc();
    node->next.store(0, std::memory_order_relaxed);
    node->value = v;
    ctx_.persist(node, sizeof(CweNode));
    ebr::EpochGuard guard(engine_.ebr(), tid);

    for (;;) {
      // Allocate BEFORE reading any pointers: a pool-dry allocation cycles
      // the epoch reservation, invalidating prior reads.
      Descriptor* d = engine_.allocate(tid);
      const std::uint64_t last_w = engine_.read(&tail_->word);
      auto* last = reinterpret_cast<CweNode*>(last_w);
      const std::uint64_t next_w = engine_.read(&last->next);
      if (next_w != 0) {  // a concurrent enqueue is ahead; retry
        metrics::add(metrics::Counter::kCasRetries);
        engine_.discard(tid, d);
        continue;
      }
      engine_.add_word(d, &tail_->word, last_w, ptr_word(node));
      engine_.add_word(d, &last->next, 0, ptr_word(node));
      engine_.add_word(d, &x_[tid].word, xw, xw | kEnqComplTag,
                       FastPrivateWords);
      if (engine_.mwcas(tid, d)) {
        ctx_.crash_point("caswe:enq-done");
        return;
      }
      metrics::add(metrics::Counter::kCasRetries);  // PMwCAS lost
    }
  }

  void prep_dequeue(std::size_t tid) {
    x_[tid].word.store(kDeqPrepTag, std::memory_order_release);
    ctx_.persist(&x_[tid], sizeof(PaddedWord));
    ctx_.crash_point("caswe:prep-deq");
  }

  Value exec_dequeue(std::size_t tid) {
    const std::uint64_t xw = x_[tid].word.load(std::memory_order_acquire) &
                             ~kDirtyFlag;
    assert(has_tag(xw, kDeqPrepTag));

    ebr::EpochGuard guard(engine_.ebr(), tid);
    for (;;) {
      // Allocate before reading (see exec_enqueue).
      Descriptor* d = engine_.allocate(tid);
      const std::uint64_t head_w = engine_.read(&head_->word);
      auto* first = reinterpret_cast<CweNode*>(head_w);
      const std::uint64_t next_w = engine_.read(&first->next);
      if (next_w == 0) {
        // Empty: witness emptiness (first->next is still null — first can
        // only stop being the head after its next fills in) atomically
        // with the X update.
        engine_.add_word(d, &first->next, 0, 0);
        engine_.add_word(d, &x_[tid].word, xw, xw | kEmptyTag,
                         FastPrivateWords);
        if (engine_.mwcas(tid, d)) {
          ctx_.crash_point("caswe:deq-empty");
          return queues::kEmpty;
        }
        metrics::add(metrics::Counter::kCasRetries);  // PMwCAS lost
        continue;
      }
      auto* next = reinterpret_cast<CweNode*>(next_w);
      const Value v = next->value;
      engine_.add_word(d, &head_->word, head_w, next_w);
      engine_.add_word(d, &x_[tid].word, xw,
                       static_cast<std::uint64_t>(v) | kDeqPrepTag |
                           kDeqDoneTag,
                       FastPrivateWords);
      if (engine_.mwcas(tid, d)) {
        ctx_.crash_point("caswe:deq-done");
        retire(tid, first);
        return v;
      }
      metrics::add(metrics::Counter::kCasRetries);  // PMwCAS lost
    }
  }

  /// Logically const: a PMwCAS read may help in-flight descriptors along
  /// (hence the mutable engine), but the queue's abstract state is
  /// untouched.
  Resolved resolve(std::size_t tid) const {
    ebr::EpochGuard guard(engine_.ebr(), tid);
    const std::uint64_t xw = engine_.read(&x_[tid].word);
    if (has_tag(xw, kEnqPrepTag)) {
      const Value arg = static_cast<Value>(xw & kAddressMask);
      if (has_tag(xw, kEnqComplTag)) return Resolved::enqueue(arg, queues::kOk);
      return Resolved::enqueue(arg);
    }
    if (has_tag(xw, kDeqPrepTag)) {
      if (has_tag(xw, kEmptyTag)) {
        return Resolved::dequeue(queues::kEmpty);
      }
      if (has_tag(xw, kDeqDoneTag)) {
        return Resolved::dequeue(static_cast<Value>(xw & kAddressMask));
      }
      return Resolved::dequeue();
    }
    return Resolved::none();  // (⊥, ⊥)
  }

  // ---- convenience: whole detectable operations ---------------------------

  void enqueue(std::size_t tid, Value v) {
    prep_enqueue(tid, v);
    exec_enqueue(tid);
  }

  Value dequeue(std::size_t tid) {
    prep_dequeue(tid);
    return exec_dequeue(tid);
  }

  // ---- recovery ------------------------------------------------------------

  /// Post-crash recovery: roll descriptors forward/back (which restores
  /// head/tail/next/X to clean decided values), then rebuild free lists.
  /// Requires quiescence.
  void recover() {
    engine_.recover();
    arena_.reset_volatile_state();
    std::unordered_set<const CweNode*> live;
    auto* n = reinterpret_cast<CweNode*>(
        head_->word.load(std::memory_order_relaxed) & ~kFlagsMask);
    while (n != nullptr) {
      live.insert(n);
      n = reinterpret_cast<CweNode*>(n->next.load(std::memory_order_relaxed) &
                                     ~kFlagsMask);
    }
    arena_.for_each_allocated([&](std::size_t, CweNode* node) {
      if (!live.contains(node)) arena_.release_to_owner(node);
    });
  }

  void drain_to(std::vector<Value>& out) const {
    auto* n = reinterpret_cast<const CweNode*>(
        head_->word.load(std::memory_order_relaxed) & ~kFlagsMask);
    n = reinterpret_cast<const CweNode*>(
        n->next.load(std::memory_order_relaxed) & ~kFlagsMask);
    while (n != nullptr) {
      out.push_back(n->value);
      n = reinterpret_cast<const CweNode*>(
          n->next.load(std::memory_order_relaxed) & ~kFlagsMask);
    }
  }

  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  struct alignas(kCacheLineSize) PaddedWord {
    std::atomic<std::uint64_t> word{0};
  };

  static std::uint64_t ptr_word(CweNode* n) noexcept {
    return reinterpret_cast<std::uint64_t>(n);
  }

  void retire(std::size_t tid, CweNode* node) {
    engine_.ebr().retire(tid, node, [this, tid](void* p) {
      arena_.release(tid, static_cast<CweNode*>(p));
    });
  }

  Ctx& ctx_;
  mutable Engine<Ctx> engine_;
  pmem::NodeArena<CweNode> arena_;
  std::size_t max_threads_;
  PaddedWord* head_ = nullptr;
  PaddedWord* tail_ = nullptr;
  PaddedWord* x_ = nullptr;
};

template <class Ctx>
using GeneralCasWithEffectQueue = CasWithEffectQueue<Ctx, false>;
template <class Ctx>
using FastCasWithEffectQueue = CasWithEffectQueue<Ctx, true>;

}  // namespace dssq::pmwcas
