#include "msgsim/msgsim.hpp"

#include <cassert>
#include <stdexcept>

namespace dssq::msgsim {

RegisterServer::RegisterServer(pmem::ShadowPool& pool,
                               pmem::CrashPoints& points,
                               std::size_t max_clients)
    : pool_(&pool), ctx_(pool, points), max_clients_(max_clients) {
  value_ = pmem::alloc_object<ValueCell>(ctx_);
  records_ = pmem::alloc_array<ClientRecord>(ctx_, max_clients);
  ctx_.persist(value_, sizeof(ValueCell));
  ctx_.persist(records_, sizeof(ClientRecord) * max_clients);
}

void RegisterServer::handle(const Message& request, Network& net) {
  const auto client = static_cast<std::size_t>(request.src);
  if (client >= max_clients_) {
    throw std::out_of_range("RegisterServer: unknown client");
  }
  ClientRecord& rec = records_[client];
  Message reply;
  reply.src = kServer;
  reply.dst = request.src;
  reply.rpc_id = request.rpc_id;

  switch (request.kind) {
    case MsgKind::kPrepRequest: {
      // Axiom 1: A[client] = op, R[client] = ⊥.  Idempotent: a duplicate
      // PrepRequest (same rpc_id) re-applies harmlessly; a NEW rpc_id
      // overwrites the previous record.
      rec.op_value.store(request.value, std::memory_order_relaxed);
      rec.rpc_id.store(request.rpc_id, std::memory_order_relaxed);
      rec.state.store(1, std::memory_order_release);  // prepared
      ctx_.persist(&rec, sizeof(ClientRecord));
      ctx_.crash_point("msgsim:server:prepared");
      reply.kind = MsgKind::kPrepAck;
      break;
    }
    case MsgKind::kExecRequest: {
      // Axiom 2, guarded for duplicate delivery: apply only if this exact
      // rpc is prepared and not yet done ("exactly once" on the server).
      if (rec.rpc_id.load(std::memory_order_relaxed) == request.rpc_id &&
          rec.state.load(std::memory_order_acquire) == 1) {
        value_->value.store(rec.op_value.load(std::memory_order_relaxed),
                            std::memory_order_release);
        ctx_.persist(value_, sizeof(ValueCell));
        ctx_.crash_point("msgsim:server:applied");
        rec.state.store(2, std::memory_order_release);  // done
        ctx_.persist(&rec, sizeof(ClientRecord));
        ctx_.crash_point("msgsim:server:completed");
      }
      reply.kind = MsgKind::kExecAck;
      break;
    }
    case MsgKind::kResolveRequest: {
      // Axiom 3: report (A[client], R[client]); total and idempotent.
      reply.kind = MsgKind::kResolveAck;
      const std::uint64_t st = rec.state.load(std::memory_order_acquire);
      reply.prepared =
          st != 0 &&
          rec.rpc_id.load(std::memory_order_relaxed) == request.rpc_id;
      reply.prepared_value = rec.op_value.load(std::memory_order_relaxed);
      reply.took_effect = reply.prepared && st == 2;
      break;
    }
    case MsgKind::kReadRequest: {
      reply.kind = MsgKind::kReadAck;
      reply.value = value_->value.load(std::memory_order_acquire);
      break;
    }
    default:
      throw std::logic_error("RegisterServer: unexpected message kind");
  }
  net.send(reply);
}

void RegisterServer::crash(Network& net,
                           const pmem::ShadowPool::CrashOptions& options) {
  net.drop_all();
  pool_->crash(options);
}

std::int64_t RegisterServer::current_value() const {
  return value_->value.load(std::memory_order_acquire);
}

void WriteClient::on_message(const Message& m, Network& net) {
  if (m.rpc_id != rpc_id_) return;  // duplicate/stale reply: ignore
  switch (m.kind) {
    case MsgKind::kPrepAck:
      if (phase_ == Phase::kPreparing) {
        phase_ = Phase::kExecuting;
        net.send(Message{id_, kServer, MsgKind::kExecRequest, value_, false,
                         0, false, rpc_id_});
      }
      break;
    case MsgKind::kExecAck:
      if (phase_ == Phase::kExecuting) {
        // The ack alone does not say whether THIS exec applied (it may be
        // a duplicate against a completed record); confirm via resolve.
        phase_ = Phase::kResolving;
        net.send(Message{id_, kServer, MsgKind::kResolveRequest, 0, false,
                         0, false, rpc_id_});
      }
      break;
    case MsgKind::kResolveAck:
      if (phase_ == Phase::kResolving) {
        if (m.prepared && m.took_effect) {
          took_effect_ = true;
          phase_ = Phase::kDone;
        } else if (m.prepared) {
          // Prepared but not applied: re-drive the exec.
          phase_ = Phase::kExecuting;
          net.send(Message{id_, kServer, MsgKind::kExecRequest, value_,
                           false, 0, false, rpc_id_});
        } else {
          // Never prepared (prep lost): restart the whole protocol under
          // the same rpc id.
          phase_ = Phase::kPreparing;
          net.send(Message{id_, kServer, MsgKind::kPrepRequest, value_,
                           false, 0, false, rpc_id_});
        }
      }
      break;
    default:
      break;  // reads handled by the harness
  }
}

void run_until_quiet(Network& net, RegisterServer& server,
                     std::vector<WriteClient*> clients,
                     std::size_t max_steps) {
  for (std::size_t step = 0; step < max_steps; ++step) {
    const auto msg = net.deliver_one();
    if (!msg.has_value()) return;
    if (msg->dst == kServer) {
      server.handle(*msg, net);
      continue;
    }
    for (WriteClient* c : clients) {
      if (c->id() == msg->dst) {
        c->on_message(*msg, net);
        break;
      }
    }
  }
  throw std::runtime_error("run_until_quiet: simulation did not drain");
}

}  // namespace dssq::msgsim
