// DSS over message passing — the model-independence demonstration.
//
// Desideratum (D2) of the paper: "The definition should be independent of
// any particular model of computation or implementation style", and
// Section 2: "Sequential specifications in general are compatible with
// message passing, shared memory, and 'm&m' models."  This module makes
// that concrete: a detectable read/write register served over an
// unreliable message channel, where prep/exec/resolve are RPCs.
//
// The setting is the classic exactly-once-RPC problem.  A client sends an
// ExecRequest and the server may crash (a) before receiving it, (b) after
// applying it but before the reply escapes, or (c) the reply itself may be
// lost.  An application without detectability cannot distinguish these and
// must choose between at-most-once and at-least-once.  With the DSS
// protocol:
//
//   client: PrepRequest(op) ─►  server persists A[client] = op, R = ⊥
//   client: ExecRequest     ─►  server applies op, persists R[client]
//   (crash / message loss anywhere)
//   client: ResolveRequest  ─►  server returns (A[client], R[client])
//
// the client learns exactly whether its operation took effect and retries
// only when it did not.  The server's DSS state lives in (simulated)
// persistent storage and survives crashes; its volatile state — including
// any in-flight messages — does not.
//
// The simulation is single-threaded and deterministic under a seed:
// messages are delivered in randomized order, and crash/loss events are
// injected by the test harness between any two deliveries.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dss/detectable.hpp"
#include "dss/specs/register_spec.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"

namespace dssq::msgsim {

// ---- messages -------------------------------------------------------------

enum class MsgKind : std::uint8_t {
  kPrepRequest,
  kPrepAck,
  kExecRequest,
  kExecAck,
  kResolveRequest,
  kResolveAck,
  kReadRequest,
  kReadAck,
};

struct Message {
  int src = -1;  // client id, or kServer
  int dst = -1;
  MsgKind kind{};
  std::int64_t value = 0;       // write argument / read result
  bool prepared = false;        // ResolveAck: A[client] ≠ ⊥
  std::int64_t prepared_value = 0;
  bool took_effect = false;     // ResolveAck: R[client] ≠ ⊥
  std::uint64_t rpc_id = 0;     // per-client request counter
};

inline constexpr int kServer = -1;

/// An unreliable, reordering network.  Messages in flight are delivered in
/// seeded-random order; a server crash drops every in-flight message (the
/// kernel buffers died with the machine); the harness can also drop
/// individual messages to model loss.
class Network {
 public:
  explicit Network(std::uint64_t seed) : rng_(seed) {}

  void send(Message m) { in_flight_.push_back(m); }

  /// Deliver (remove and return) a random in-flight message, or nullopt.
  std::optional<Message> deliver_one() {
    if (in_flight_.empty()) return std::nullopt;
    const std::size_t i =
        static_cast<std::size_t>(rng_.next_below(in_flight_.size()));
    const Message m = in_flight_[i];
    in_flight_.erase(in_flight_.begin() +
                     static_cast<std::ptrdiff_t>(i));
    return m;
  }

  /// Drop every in-flight message (system-wide crash).
  void drop_all() { in_flight_.clear(); }

  /// Drop a specific fraction of in-flight messages (lossy link).
  void drop_randomly(double p) {
    std::deque<Message> kept;
    for (const Message& m : in_flight_) {
      if (!rng_.next_bool(p)) kept.push_back(m);
    }
    in_flight_ = std::move(kept);
  }

  std::size_t pending() const { return in_flight_.size(); }

 private:
  Xoshiro256 rng_;
  std::deque<Message> in_flight_;
};

// ---- server -----------------------------------------------------------------

/// A register server whose DSS state (value, A, R maps) lives in a
/// simulated persistent pool.  handle() processes one request; crash()
/// models a server failure: in-flight messages die with it, persistent
/// state (subject to the pool's survival adversary) does not.
class RegisterServer {
 public:
  RegisterServer(pmem::ShadowPool& pool, pmem::CrashPoints& points,
                 std::size_t max_clients);

  /// Process one request, emitting the reply into `net`.
  void handle(const Message& request, Network& net);

  /// Simulate a server crash: the pool's crash adversary runs and every
  /// in-flight message is dropped.  (The DSS state needs no repair — the
  /// per-client records are updated with single-word failure-atomic
  /// persists.)
  void crash(Network& net,
             const pmem::ShadowPool::CrashOptions& options = {});

  std::int64_t current_value() const;

 private:
  // Persistent layout: the register value plus per-client (A, R) records,
  // one cache line each.
  struct alignas(kCacheLineSize) ClientRecord {
    std::atomic<std::uint64_t> state{0};  // 0=idle, 1=prepared, 2=done
    std::atomic<std::int64_t> op_value{0};
    std::atomic<std::uint64_t> rpc_id{0};
  };
  struct alignas(kCacheLineSize) ValueCell {
    std::atomic<std::int64_t> value{0};
  };

  pmem::ShadowPool* pool_;
  pmem::SimContext ctx_;
  std::size_t max_clients_;
  ValueCell* value_ = nullptr;
  ClientRecord* records_ = nullptr;
};

// ---- client -----------------------------------------------------------------

/// A client driving detectable writes through the RPC protocol.  The
/// client is a state machine advanced by deliver(); the harness injects
/// crashes/losses between any two network steps and then calls
/// begin_recovery() to run the resolve round.
class WriteClient {
 public:
  enum class Phase : std::uint8_t {
    kIdle,
    kPreparing,   // PrepRequest sent, awaiting PrepAck
    kExecuting,   // ExecRequest sent, awaiting ExecAck
    kDone,        // write acknowledged
    kResolving,   // post-crash: ResolveRequest sent
  };

  WriteClient(int id, std::int64_t value) : id_(id), value_(value) {}

  /// Start the detectable write.
  void start(Network& net) {
    phase_ = Phase::kPreparing;
    net.send(Message{id_, kServer, MsgKind::kPrepRequest, value_, false, 0,
                     false, ++rpc_id_});
  }

  /// Feed a message addressed to this client; advances the protocol.
  void on_message(const Message& m, Network& net);

  /// After a suspected server crash: ask the server what happened.
  void begin_recovery(Network& net) {
    phase_ = Phase::kResolving;
    net.send(Message{id_, kServer, MsgKind::kResolveRequest, 0, false, 0,
                     false, rpc_id_});
  }

  Phase phase() const { return phase_; }
  bool write_took_effect() const { return took_effect_; }
  std::int64_t value() const { return value_; }
  int id() const { return id_; }

 private:
  int id_;
  std::int64_t value_;
  std::uint64_t rpc_id_ = 0;
  Phase phase_ = Phase::kIdle;
  bool took_effect_ = false;
};

/// Drive the simulation until the network drains or `max_steps` pass,
/// dispatching messages to the server or the right client.
void run_until_quiet(Network& net, RegisterServer& server,
                     std::vector<WriteClient*> clients,
                     std::size_t max_steps = 10'000);

// ---- a detectable queue served over RPC ---------------------------------------

/// Message kinds for the queue protocol reuse the register enum; the
/// queue server distinguishes enqueue/dequeue by the `value` field's sign
/// convention instead of adding kinds: PrepRequest with value >= 0
/// prepares an enqueue of that value, PrepRequest with value == kDeqMark
/// prepares a dequeue.  (Deliberately minimal — the point is the
/// prep/exec/resolve round-trip, not a wire format.)
inline constexpr std::int64_t kDeqMark = -1;

/// A server fronting a DssQueue: each client id maps to a queue thread id,
/// so the queue's own X array IS the per-client detectability state and
/// the server needs no bookkeeping of its own.  Crash handling: the
/// harness crashes the pool, then calls recover(), which runs the queue's
/// Figure-6 recovery.
class QueueServer {
 public:
  QueueServer(pmem::ShadowPool& pool, pmem::CrashPoints& points,
              std::size_t max_clients)
      : ctx_(pool, points),
        pool_(&pool),
        queue_(ctx_, max_clients, 1024),
        max_clients_(max_clients) {}

  void handle(const Message& request, Network& net) {
    const auto client = static_cast<std::size_t>(request.src);
    if (client >= max_clients_) {
      throw std::out_of_range("QueueServer: unknown client");
    }
    Message reply;
    reply.src = kServer;
    reply.dst = request.src;
    reply.rpc_id = request.rpc_id;
    switch (request.kind) {
      case MsgKind::kPrepRequest:
        if (request.value == kDeqMark) {
          queue_.prep_dequeue(client);
        } else {
          queue_.prep_enqueue(client, request.value);
        }
        reply.kind = MsgKind::kPrepAck;
        break;
      case MsgKind::kExecRequest: {
        reply.kind = MsgKind::kExecAck;
        // Idempotent by the queue's own exec semantics: a completed
        // enqueue short-circuits; a dequeue re-exec is guarded by resolve on
        // the client side, so the server only execs when asked.
        if (request.value == kDeqMark) {
          reply.value = queue_.exec_dequeue(client);
        } else {
          queue_.exec_enqueue(client);
          reply.value = request.value;
        }
        break;
      }
      case MsgKind::kResolveRequest: {
        reply.kind = MsgKind::kResolveAck;
        const queues::Resolved r = queue_.resolve(client);
        reply.prepared = r.prepared();
        reply.prepared_value =
            r.op == dss::ResolvedOp::kEnqueue ? r.arg : kDeqMark;
        reply.took_effect = r.took_effect();
        if (r.response.has_value()) reply.value = *r.response;
        break;
      }
      default:
        throw std::logic_error("QueueServer: unexpected message kind");
    }
    net.send(reply);
  }

  /// Power failure + centralized recovery.
  void crash_and_recover(Network& net,
                         const pmem::ShadowPool::CrashOptions& options) {
    net.drop_all();
    pool_->crash(options);
    queue_.recover();
  }

  queues::DssQueue<pmem::SimContext>& queue() { return queue_; }

 private:
  pmem::SimContext ctx_;
  pmem::ShadowPool* pool_;
  queues::DssQueue<pmem::SimContext> queue_;
  std::size_t max_clients_;
};

}  // namespace dssq::msgsim
