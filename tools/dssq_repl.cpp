// dssq_repl — an interactive sandbox for the DSS queue on simulated
// persistent memory.  Type `help` for commands; the canonical session:
//
//   > prep-enq 0 42
//   > exec-enq 0
//   > crash            # power failure: unflushed lines vanish
//   > recover          # Figure-6 recovery
//   > resolve 0        # (enqueue(42), OK) or (enqueue(42), ⊥)
//
// Useful for demos and for poking at the semantics without writing a test.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"

using namespace dssq;

namespace {

constexpr std::size_t kThreads = 8;

void print_help() {
  std::puts(
      "commands (tid in 0..7):\n"
      "  enq <tid> <v>        non-detectable enqueue\n"
      "  deq <tid>            non-detectable dequeue\n"
      "  prep-enq <tid> <v>   prep-enqueue(v)\n"
      "  exec-enq <tid>       exec-enqueue\n"
      "  prep-deq <tid>       prep-dequeue\n"
      "  exec-deq <tid>       exec-dequeue\n"
      "  resolve <tid>        resolve (A[t], R[t])\n"
      "  arm <k>              crash at the k-th upcoming persistence step\n"
      "  crash                power failure (unflushed lines are lost)\n"
      "  recover              centralized Figure-6 recovery\n"
      "  dump                 queue contents + every thread's X word\n"
      "  help | quit");
}

}  // namespace

int main() {
  pmem::ShadowPool pool(1 << 22);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  queues::DssQueue<pmem::SimContext> q(ctx, kThreads, 1024);

  std::puts("DSS queue REPL — simulated persistent memory. `help` for "
            "commands.");
  std::string line;
  while (std::printf("> "), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    std::size_t tid = 0;
    queues::Value v = 0;
    try {
      if (cmd.empty()) continue;
      if (cmd == "help") {
        print_help();
      } else if (cmd == "quit" || cmd == "exit") {
        break;
      } else if (cmd == "enq") {
        in >> tid >> v;
        q.enqueue(tid, v);
        std::puts("ok");
      } else if (cmd == "deq") {
        in >> tid;
        const queues::Value got = q.dequeue(tid);
        if (got == queues::kEmpty) std::puts("EMPTY");
        else std::printf("%ld\n", got);
      } else if (cmd == "prep-enq") {
        in >> tid >> v;
        q.prep_enqueue(tid, v);
        std::puts("prepared");
      } else if (cmd == "exec-enq") {
        in >> tid;
        q.exec_enqueue(tid);
        std::puts("executed");
      } else if (cmd == "prep-deq") {
        in >> tid;
        q.prep_dequeue(tid);
        std::puts("prepared");
      } else if (cmd == "exec-deq") {
        in >> tid;
        const queues::Value got = q.exec_dequeue(tid);
        if (got == queues::kEmpty) std::puts("EMPTY");
        else std::printf("%ld\n", got);
      } else if (cmd == "resolve") {
        in >> tid;
        std::printf("%s\n", q.resolve(tid).to_string().c_str());
      } else if (cmd == "arm") {
        std::int64_t k = 0;
        in >> k;
        points.arm_countdown(k);
        std::printf("armed: crash at persistence step %ld\n", k);
      } else if (cmd == "crash") {
        points.disarm();
        const auto report = pool.crash();
        std::printf("crashed: %zu dirty lines, %zu survived\n",
                    report.dirty_lines, report.survived_lines);
      } else if (cmd == "recover") {
        q.recover();
        std::puts("recovered");
      } else if (cmd == "dump") {
        std::vector<queues::Value> rest;
        q.drain_to(rest);
        std::printf("queue (front..back):");
        for (const queues::Value x : rest) std::printf(" %ld", x);
        std::printf("\nX:");
        for (std::size_t t = 0; t < kThreads; ++t) {
          const TaggedWord w = q.x_word(t);
          if (w != 0) {
            std::printf(" [%zu]=%s", t, q.resolve(t).to_string().c_str());
          }
        }
        std::printf("\n");
      } else {
        std::printf("unknown command '%s' (try `help`)\n", cmd.c_str());
      }
    } catch (const pmem::SimulatedCrash& c) {
      std::printf("** SIMULATED CRASH at '%s' — volatile state lost; use "
                  "`crash` then `recover` **\n",
                  c.label);
      points.disarm();
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}
